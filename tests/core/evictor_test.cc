#include "src/core/evictor.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

TEST(Evictor, LruOrder) {
  Evictor evictor;
  evictor.Insert(/*page=*/1, /*last_access=*/30, /*prefix_length=*/0);
  evictor.Insert(2, 10, 0);
  evictor.Insert(3, 20, 0);
  EXPECT_EQ(*evictor.PopVictim(), 2);
  EXPECT_EQ(*evictor.PopVictim(), 3);
  EXPECT_EQ(*evictor.PopVictim(), 1);
  EXPECT_FALSE(evictor.PopVictim().has_value());
}

TEST(Evictor, PrefixLengthBreaksTies) {
  // §5.1: among pages with the same last-access time, the deepest token (largest prefix
  // length) is evicted first — alignment across layer types.
  Evictor evictor;
  evictor.Insert(1, 5, 100);
  evictor.Insert(2, 5, 300);
  evictor.Insert(3, 5, 200);
  EXPECT_EQ(*evictor.PopVictim(), 2);
  EXPECT_EQ(*evictor.PopVictim(), 3);
  EXPECT_EQ(*evictor.PopVictim(), 1);
}

TEST(Evictor, LastAccessDominatesPrefixLength) {
  Evictor evictor;
  evictor.Insert(1, 5, 1);     // Older access, short prefix.
  evictor.Insert(2, 9, 1000);  // Newer access, long prefix.
  EXPECT_EQ(*evictor.PopVictim(), 1);
}

TEST(Evictor, UpdateLastAccessReorders) {
  Evictor evictor;
  evictor.Insert(1, 10, 0);
  evictor.Insert(2, 20, 0);
  evictor.UpdateLastAccess(1, 30);
  EXPECT_EQ(*evictor.PopVictim(), 2);
  EXPECT_EQ(*evictor.PopVictim(), 1);
}

TEST(Evictor, SetPrefixLengthReorders) {
  Evictor evictor;
  evictor.Insert(1, 5, 10);
  evictor.Insert(2, 5, 20);
  evictor.SetPrefixLength(1, 99);
  EXPECT_EQ(*evictor.PopVictim(), 1);
}

TEST(Evictor, UpdateOnAbsentPageIsNoOp) {
  Evictor evictor;
  evictor.UpdateLastAccess(42, 1);
  evictor.SetPrefixLength(42, 1);
  EXPECT_TRUE(evictor.empty());
}

TEST(Evictor, RemoveExcludesFromVictims) {
  Evictor evictor;
  evictor.Insert(1, 10, 0);
  evictor.Insert(2, 20, 0);
  evictor.Remove(1);
  EXPECT_FALSE(evictor.Contains(1));
  EXPECT_EQ(evictor.size(), 1u);
  EXPECT_EQ(*evictor.PopVictim(), 2);
}

TEST(Evictor, PeekOldestAccess) {
  Evictor evictor;
  EXPECT_FALSE(evictor.PeekOldestAccess().has_value());
  evictor.Insert(1, 17, 0);
  evictor.Insert(2, 3, 0);
  EXPECT_EQ(*evictor.PeekOldestAccess(), 3);
  EXPECT_EQ(evictor.size(), 2u);  // Peek does not pop.
}

TEST(Evictor, DeterministicTieBreakOnPageId) {
  Evictor evictor;
  evictor.Insert(7, 5, 50);
  evictor.Insert(3, 5, 50);
  EXPECT_EQ(*evictor.PopVictim(), 3);
}

TEST(EvictorDeath, DoubleInsert) {
  Evictor evictor;
  evictor.Insert(1, 0, 0);
  EXPECT_DEATH(evictor.Insert(1, 5, 5), "already in evictor");
}

}  // namespace
}  // namespace jenga
