#include "src/core/evictor.h"

#include <algorithm>
#include <functional>

#include "src/common/check.h"

namespace jenga {

void Evictor::Push(Key key) {
  heap_.push_back(key);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<Key>{});
}

void Evictor::DropStaleTop() const {
  while (!heap_.empty() && !IsLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Key>{});
    heap_.pop_back();
  }
}

void Evictor::MaybeCompact() {
  if (heap_.size() <= 64 || heap_.size() <= 2 * keys_.size()) {
    return;
  }
  heap_.clear();
  for (const auto& [page, key] : keys_) {
    heap_.push_back(key);
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<Key>{});
}

void Evictor::Insert(SmallPageId page, Tick last_access, int64_t prefix_length) {
  const Key key{last_access, -prefix_length, page};
  const auto [it, inserted] = keys_.emplace(page, key);
  JENGA_CHECK(inserted) << "page " << page << " already in evictor";
  Push(key);
  JENGA_AUDIT_HOOK(audit_, OnEvictorInsert(audit_group_, page, last_access, prefix_length));
}

void Evictor::Remove(SmallPageId page) {
  // Lazy: the heap entry becomes a tombstone, discarded at pop/peek/compaction time.
  const bool present = keys_.erase(page) > 0;
  MaybeCompact();
  if (present) {
    JENGA_AUDIT_HOOK(audit_, OnEvictorRemove(audit_group_, page));
  }
}

void Evictor::UpdateLastAccess(SmallPageId page, Tick last_access) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  it->second.last_access = last_access;
  Push(it->second);
  MaybeCompact();
  if (audit_ != nullptr) [[unlikely]] {
    const auto rekeyed = keys_.find(page);
    audit_->OnEvictorRekey(audit_group_, page, rekeyed->second.last_access,
                           -rekeyed->second.neg_prefix_length);
  }
}

void Evictor::SetPrefixLength(SmallPageId page, int64_t prefix_length) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  it->second.neg_prefix_length = -prefix_length;
  Push(it->second);
  MaybeCompact();
  if (audit_ != nullptr) [[unlikely]] {
    const auto rekeyed = keys_.find(page);
    audit_->OnEvictorRekey(audit_group_, page, rekeyed->second.last_access,
                           -rekeyed->second.neg_prefix_length);
  }
}

std::optional<SmallPageId> Evictor::PopVictim() {
  DropStaleTop();
  if (heap_.empty()) {
    return std::nullopt;
  }
  const Key key = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Key>{});
  heap_.pop_back();
  keys_.erase(key.page);
  JENGA_AUDIT_HOOK(audit_, OnEvictorPop(audit_group_, key.page));
  return key.page;
}

std::optional<Tick> Evictor::PeekOldestAccess() const {
  DropStaleTop();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.front().last_access;
}

}  // namespace jenga
