// Elastic memory governor bench (DESIGN.md §11, EXPERIMENTS.md): three self-checking
// scenarios exercising the governor end to end on real model profiles.
//
//   hot-swap    Mid-trace model repartition: the governor quiesces the engine, rebuilds the
//               LCM layout for the new model, and commits — while requests are in flight.
//               Self-check: the swap commits (once, and exactly once more attempt per
//               injected rollback) and NO in-flight request is aborted: every submitted
//               request finishes, none failed, none cancelled.
//   ladder      A burst against an undersized pool with and without the pressure ladder.
//               Self-check: the ladder engages, every submitted request is accounted for,
//               and the governor's sheds are the only cancellations (ledger identity).
//   adaptive    Fig. 19 follow-up: SmartSpec's static draft/target split vs an even static
//               split vs the adaptive governor split (ShiftSplit at run time). Self-check:
//               adaptive throughput >= both static splits.
//
// Any self-check violation prints FAILED and the process exits non-zero (the perf gate in
// scripts/check.sh runs `bench_elastic --quick`).
//
// Flags:
//   --quick    fewer requests (CI-friendly)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/elastic/memory_governor.h"
#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

std::vector<std::string> g_violations;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    g_violations.push_back(what);
    std::printf("FAILED self-check: %s\n", what.c_str());
  }
}

std::vector<Request> MmluBatch(int count, uint64_t seed) {
  MmluProDataset dataset(/*output_lo=*/64, /*output_hi=*/192);
  Rng rng(seed);
  return GenerateBatch(dataset, count, rng);
}

// --- Scenario 1: mid-trace hot swap -------------------------------------------------------

struct HotSwapResult {
  int64_t steps = 0;
  int64_t finished = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  MemoryGovernor::Stats gov;
  std::string final_model;
};

HotSwapResult RunHotSwap(int count, const char* fault_plan) {
  EngineConfig config = JengaProfile(Gemma2_9B(), H100());
  config.memory_sample_every = 0;
  JENGA_CHECK(FaultPlan::Parse(fault_plan, &config.fault.plan).ok()) << fault_plan;
  config.fault.seed = 0xE1A5;
  Engine engine(std::move(config));
  for (Request& r : MmluBatch(count, 0xE1A57)) {
    engine.Submit(std::move(r));
  }
  MemoryGovernor governor;
  governor.AttachTo(engine);

  HotSwapResult result;
  bool swap_requested = false;
  while (engine.StepOnce()) {
    result.steps += 1;
    // A few dozen steps in, every request is admitted or in flight: swap the model under it.
    if (!swap_requested && result.steps == 32) {
      governor.RequestHotSwap(Ministral8B());
      swap_requested = true;
    }
    JENGA_CHECK_LT(result.steps, 1000000) << "hot-swap bench did not converge";
  }
  for (const RequestRecord& r : engine.metrics().finished()) {
    result.finished += 1;
    result.failed += r.failed ? 1 : 0;
    result.cancelled += r.cancelled ? 1 : 0;
  }
  result.gov = governor.stats();
  result.final_model = engine.config().model.name;
  governor.DetachFrom(engine);
  return result;
}

void RunHotSwapScenario(bool quick) {
  const int count = quick ? 16 : 48;
  PrintHeader("bench_elastic: mid-trace hot swap (gemma-2-9b -> ministral-8b, H100)");
  PrintRow({{26, "variant"},
            {10, "steps"},
            {10, "finished"},
            {10, "aborted"},
            {10, "commits"},
            {10, "rollbacks"}});
  PrintRule();
  struct Variant {
    const char* label;
    const char* plan;
    int64_t expect_rollbacks;
  };
  const Variant variants[] = {
      {"clean", "", 0},
      // The commit site fires on the first attempt only: quiesce -> rollback -> retry ->
      // commit, all inside one trace.
      {"rollback-then-retry", "repartition_commit:at=0", 1},
  };
  for (const Variant& v : variants) {
    const HotSwapResult r = RunHotSwap(count, v.plan);
    PrintRow({{26, v.label},
              {10, FmtI(r.steps)},
              {10, FmtI(r.finished)},
              {10, FmtI(r.failed)},
              {10, FmtI(r.gov.hot_swaps_applied)},
              {10, FmtI(r.gov.hot_swap_rollbacks)}});
    const std::string tag = std::string("hot-swap[") + v.label + "] ";
    Check(r.gov.hot_swaps_applied == 1, tag + "swap did not commit");
    Check(r.gov.hot_swap_rollbacks == v.expect_rollbacks, tag + "unexpected rollback count");
    Check(r.final_model == Ministral8B().name, tag + "engine still runs the old model");
    Check(r.finished == count, tag + "requests lost across the repartition");
    Check(r.failed == 0 && r.cancelled == 0,
          tag + "in-flight requests were aborted by the swap");
  }
  std::printf(
      "\nIn-flight requests are quiesced to the waiting queue and recomputed against the new\n"
      "layout; a fired commit site rolls back to the old layout and the retry commits.\n");
}

// --- Scenario 2: pressure-spike ladder ----------------------------------------------------

void RunLadderScenario(bool quick) {
  const int count = quick ? 24 : 64;
  const ModelConfig model = Gemma2_9B();
  // Size the pool so one request always fits alone but the burst oversubscribes it ~8x:
  // sustained occupancy above the high watermark with real shed pressure.
  std::vector<Request> batch = MmluBatch(count, 0x1ADD);
  int64_t max_tokens = 0;
  for (const Request& r : batch) {
    max_tokens = std::max<int64_t>(max_tokens, r.prompt_len() + r.output_len);
  }
  const int64_t pool = model.KvBytesPerTokenAllLayers() * max_tokens * 2;

  PrintHeader("bench_elastic: pressure-spike degradation ladder (undersized pool)");
  PrintRow({{26, "variant"},
            {10, "finished"},
            {10, "failed"},
            {10, "parked"},
            {10, "shed"},
            {12, "preempts"},
            {12, "makespan"}});
  PrintRule();
  for (const bool governed : {false, true}) {
    EngineConfig config = JengaProfile(model, H100());
    config.memory_sample_every = 0;
    config.pool_bytes_override = pool;
    Engine engine(std::move(config));
    for (const Request& r : batch) {
      engine.Submit(r);
    }
    GovernorConfig gc;
    gc.high_watermark = 0.90;
    gc.low_watermark = 0.70;
    MemoryGovernor governor(gc);
    if (governed) {
      governor.AttachTo(engine);
    }
    engine.RunToCompletion();
    const EngineMetrics& m = engine.metrics();
    int64_t failed = 0;
    int64_t preemptions = 0;
    double makespan = 0.0;
    for (const RequestRecord& r : m.finished()) {
      failed += r.failed ? 1 : 0;
      preemptions += r.preemptions;
      makespan = std::max(makespan, r.finish_time);
    }
    PrintRow({{26, governed ? "governed (park+shed)" : "static (no governor)"},
              {10, FmtI(static_cast<int64_t>(m.finished().size()) - failed)},
              {10, FmtI(failed)},
              {10, FmtI(m.elastic_parked)},
              {10, FmtI(m.elastic_shed)},
              {12, FmtI(preemptions)},
              {12, Fmt("%.2f s", makespan)}});
    Check(static_cast<int>(m.finished().size()) == count,
          "ladder: requests unaccounted for at end of run");
    if (governed) {
      Check(m.ladder_activations >= 1, "ladder: governor never engaged under the spike");
      Check(m.cancelled_requests == m.shed_requests && m.elastic_shed == m.shed_requests,
            "ladder: cancellation ledger does not balance (governor sheds only)");
      governor.DetachFrom(engine);
    } else {
      Check(m.elastic_parked == 0 && m.elastic_shed == 0 && m.ladder_activations == 0,
            "ladder: elastic counters nonzero without a governor");
    }
  }
  std::printf(
      "\nThe ladder trades a bounded number of parks/sheds for sustained progress instead of\n"
      "letting the whole burst thrash the pool.\n");
}

// --- Scenario 3: adaptive draft/target split (Fig. 19 follow-up) --------------------------

struct SplitResult {
  double throughput = 0.0;
  int64_t shifts = 0;
};

SplitResult RunSplit(const std::vector<Request>& batch, int64_t pool, double draft_fraction,
                     bool adaptive) {
  SpecDecodeConfig config;
  config.target = Llama3_70B_Fp8();
  config.draft = Llama32_1B();
  config.gpu = H100();
  config.strategy = SpecStrategy::kVllmManual;
  config.seed = 0xF19E;
  config.pool_bytes_override = pool;
  config.manual_draft_fraction = draft_fraction;
  SpecDecodeEngine engine(std::move(config));
  for (const Request& r : batch) {
    engine.Submit(r);
  }
  GovernorConfig gc;
  gc.high_watermark = 0.90;
  gc.low_watermark = 0.70;
  gc.cooldown_steps = 2;
  // Per-shift grant sized so a donation lands as whole recipient pages for either direction.
  gc.split_shift_bytes = 1ll << 26;
  MemoryGovernor governor(gc);
  if (adaptive) {
    governor.AttachTo(engine);
  }
  engine.RunToCompletion();
  if (adaptive) {
    governor.DetachFrom(engine);
  }
  return SplitResult{engine.metrics().RequestThroughput(), governor.stats().split_shifts};
}

void RunAdaptiveScenario(bool quick) {
  const int count = quick ? 24 : 96;
  MmluProDataset dataset(/*output_lo=*/128, /*output_hi=*/512);
  Rng rng(0x19CC);
  std::vector<Request> batch = GenerateBatch(dataset, count, rng);
  int64_t max_tokens = 0;
  for (const Request& r : batch) {
    max_tokens = std::max<int64_t>(max_tokens, r.prompt_len() + r.output_len);
  }
  // Oversubscribed enough that the split placement decides throughput.
  const int64_t per_token =
      Llama3_70B_Fp8().KvBytesPerTokenAllLayers() + Llama32_1B().KvBytesPerTokenAllLayers();
  const int64_t pool = per_token * max_tokens * 4;

  PrintHeader("bench_elastic: adaptive draft/target split (llama-70b-fp8 + 1b, vLLM-manual)");
  const SplitResult even = RunSplit(batch, pool, /*draft_fraction=*/0.5, /*adaptive=*/false);
  const SplitResult smartspec =
      RunSplit(batch, pool, /*draft_fraction=*/-1.0, /*adaptive=*/false);
  const SplitResult adaptive = RunSplit(batch, pool, /*draft_fraction=*/-1.0, /*adaptive=*/true);
  // Adaptive recovery: start from the mis-tuned even split and let the governor rebalance.
  const SplitResult recovered =
      RunSplit(batch, pool, /*draft_fraction=*/0.5, /*adaptive=*/true);
  PrintRow({{30, "split"}, {12, "req/s"}, {10, "shifts"}, {16, "vs adaptive"}});
  PrintRule();
  PrintRow({{30, "static even (0.5)"}, {12, Fmt("%.3f", even.throughput)}, {10, "-"},
            {16, Fmt("%.2fx", adaptive.throughput / even.throughput)}});
  PrintRow({{30, "static smartspec"}, {12, Fmt("%.3f", smartspec.throughput)}, {10, "-"},
            {16, Fmt("%.2fx", adaptive.throughput / smartspec.throughput)}});
  PrintRow({{30, "adaptive (smartspec start)"}, {12, Fmt("%.3f", adaptive.throughput)},
            {10, FmtI(adaptive.shifts)}, {16, "1.00x"}});
  PrintRow({{30, "adaptive (even start)"}, {12, Fmt("%.3f", recovered.throughput)},
            {10, FmtI(recovered.shifts)},
            {16, Fmt("%.2fx", adaptive.throughput / recovered.throughput)}});
  Check(adaptive.throughput >= even.throughput, "adaptive split lost to the static even split");
  Check(adaptive.throughput >= smartspec.throughput,
        "adaptive split lost to the static smartspec split");
  Check(recovered.throughput >= even.throughput,
        "adaptive governor failed to recover from the mis-tuned even split");
  std::printf(
      "\nThe governor shifts capacity toward whichever pool is pressured; started from the\n"
      "SmartSpec proportional split it never does worse than the best static choice, and\n"
      "started from a mis-tuned even split it rebalances back toward it at run time.\n");
  (void)quick;
}

int RunAll(bool quick) {
  RunHotSwapScenario(quick);
  std::printf("\n");
  RunLadderScenario(quick);
  std::printf("\n");
  RunAdaptiveScenario(quick);
  if (!g_violations.empty()) {
    std::printf("\nbench_elastic: %zu self-check violation(s)\n", g_violations.size());
    return 1;
  }
  std::printf("\nbench_elastic: all self-checks passed\n");
  return 0;
}

}  // namespace
}  // namespace jenga

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  return jenga::RunAll(quick);
}
