# Empty compiler generated dependencies file for bench_micro_allocator.
# This may be replaced when dependencies are built.
