
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_hash.cc" "src/core/CMakeFiles/jenga_core.dir/block_hash.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/block_hash.cc.o.d"
  "/root/repo/src/core/evictor.cc" "src/core/CMakeFiles/jenga_core.dir/evictor.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/evictor.cc.o.d"
  "/root/repo/src/core/jenga_allocator.cc" "src/core/CMakeFiles/jenga_core.dir/jenga_allocator.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/jenga_allocator.cc.o.d"
  "/root/repo/src/core/layer_policy.cc" "src/core/CMakeFiles/jenga_core.dir/layer_policy.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/layer_policy.cc.o.d"
  "/root/repo/src/core/lcm_allocator.cc" "src/core/CMakeFiles/jenga_core.dir/lcm_allocator.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/lcm_allocator.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/jenga_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/policy_factory.cc.o.d"
  "/root/repo/src/core/small_page_allocator.cc" "src/core/CMakeFiles/jenga_core.dir/small_page_allocator.cc.o" "gcc" "src/core/CMakeFiles/jenga_core.dir/small_page_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/jenga_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/jenga_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
