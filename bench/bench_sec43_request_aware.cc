// §4.3 ablation: request-aware small-page placement vs naive (round-robin) placement. The
// Figure-8 scenario: K requests allocate pages interleaved, then all but one request free
// everything. Request-aware placement dedicates large pages to requests, so freed memory
// returns to the LCM allocator; naive placement strands large pages that mix live and dead
// small pages (internal fragmentation).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/jenga_allocator.h"
#include "src/model/kv_spec.h"

namespace jenga {
namespace {

KvSpec OneGroupSpec(int64_t page_bytes, int pages_per_large) {
  KvSpec spec;
  KvGroupSpec group;
  group.name = "kv";
  group.kind = GroupKind::kFullAttention;
  group.num_layers = 1;
  group.bytes_per_token_per_layer = page_bytes / 16;
  group.tokens_per_page = 16;
  group.page_bytes = page_bytes;
  spec.groups.push_back(group);
  // Force the large page to hold `pages_per_large` small pages.
  spec.groups.push_back(group);
  spec.groups.back().name = "pad";
  spec.groups.back().page_bytes = page_bytes * pages_per_large;
  return spec;
}

struct FragResult {
  int64_t large_pages_held = 0;
  int64_t ideal_large_pages = 0;
  double frag_fraction = 0.0;
};

// `request_aware` = pass real request ids; otherwise every allocation shares one synthetic
// id, so small pages pack sequentially across requests regardless of owner — exactly the
// interleaved Figure-8a placement of a request-oblivious allocator.
FragResult RunScenario(bool request_aware, int num_requests, int pages_each,
                       int pages_per_large) {
  const KvSpec spec = OneGroupSpec(/*page_bytes=*/4096, pages_per_large);
  JengaAllocator alloc(spec, /*pool_bytes=*/spec.LcmPageBytes() * 4096);
  constexpr RequestId kSharedId = 1000000;
  std::vector<std::vector<SmallPageId>> pages(static_cast<size_t>(num_requests));
  for (int i = 0; i < pages_each; ++i) {
    for (int r = 0; r < num_requests; ++r) {
      const RequestId id = request_aware ? r : kSharedId;
      const auto page = alloc.group(0).Allocate(id, i);
      pages[static_cast<size_t>(r)].push_back(*page);
    }
  }
  // All requests but request 0 complete and free their pages.
  for (int r = 1; r < num_requests; ++r) {
    for (const SmallPageId p : pages[static_cast<size_t>(r)]) {
      alloc.group(0).Release(p, /*keep_cached=*/false);
    }
  }
  FragResult result;
  result.large_pages_held = alloc.lcm().num_allocated();
  result.ideal_large_pages =
      (pages_each + pages_per_large - 1) / pages_per_large;  // Request 0 alone.
  result.frag_fraction =
      1.0 - static_cast<double>(result.ideal_large_pages) /
                static_cast<double>(std::max<int64_t>(1, result.large_pages_held));
  return result;
}

void Run() {
  PrintHeader("Sec 4.3: Request-aware allocation vs naive placement (Figure 8 scenario)");
  PrintRow({{12, "requests"},
            {12, "pages/req"},
            {12, "pages/large"},
            {16, "naive larges"},
            {16, "aware larges"},
            {12, "ideal"},
            {14, "naive frag"},
            {14, "aware frag"}});
  PrintRule();
  for (const int pages_per_large : {2, 4, 8}) {
    for (const int num_requests : {4, 16, 64}) {
      const int pages_each = 64;
      const FragResult naive = RunScenario(false, num_requests, pages_each, pages_per_large);
      const FragResult aware = RunScenario(true, num_requests, pages_each, pages_per_large);
      PrintRow({{12, FmtI(num_requests)},
                {12, FmtI(pages_each)},
                {12, FmtI(pages_per_large)},
                {16, FmtI(naive.large_pages_held)},
                {16, FmtI(aware.large_pages_held)},
                {12, FmtI(aware.ideal_large_pages)},
                {14, Pct(naive.frag_fraction)},
                {14, Pct(aware.frag_fraction)}});
    }
  }
  std::printf(
      "\nShape check: with interleaved allocation, naive placement strands up to\n"
      "(pages_per_large-1)/pages_per_large of the surviving large pages; request-aware\n"
      "placement returns everything except request 0's own pages (0%% fragmentation).\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
