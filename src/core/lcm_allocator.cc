#include "src/core/lcm_allocator.h"

#include "src/common/check.h"

namespace jenga {

LcmAllocator::LcmAllocator(int64_t pool_bytes, int64_t large_page_bytes)
    : large_page_bytes_(large_page_bytes) {
  JENGA_CHECK_GT(large_page_bytes, 0);
  JENGA_CHECK_GE(pool_bytes, 0);
  num_pages_ = static_cast<int32_t>(pool_bytes / large_page_bytes);
  slack_bytes_ = pool_bytes - static_cast<int64_t>(num_pages_) * large_page_bytes;
  owner_.assign(static_cast<size_t>(num_pages_), -1);
  free_list_.reserve(static_cast<size_t>(num_pages_));
  // Push in reverse so pages are handed out in ascending order.
  for (LargePageId page = num_pages_ - 1; page >= 0; --page) {
    free_list_.push_back(page);
  }
}

std::optional<LargePageId> LcmAllocator::Allocate(int owner_group) {
  JENGA_CHECK_GE(owner_group, 0);
  if (free_list_.empty()) {
    return std::nullopt;
  }
  const LargePageId page = free_list_.back();
  free_list_.pop_back();
  owner_[static_cast<size_t>(page)] = owner_group;
  return page;
}

void LcmAllocator::Free(LargePageId page) {
  JENGA_CHECK_GE(page, 0);
  JENGA_CHECK_LT(page, num_pages_);
  JENGA_CHECK_GE(owner_[static_cast<size_t>(page)], 0) << "double free of large page " << page;
  owner_[static_cast<size_t>(page)] = -1;
  free_list_.push_back(page);
}

LargePageId LcmAllocator::GrowPages(int32_t n) {
  JENGA_CHECK_GT(n, 0);
  const LargePageId first_new = num_pages_;
  num_pages_ += n;
  owner_.resize(static_cast<size_t>(num_pages_), -1);
  // Push in reverse so the new pages are handed out in ascending order, matching
  // construction. They land on top of the LIFO stack, so a grow is immediately usable.
  for (LargePageId page = num_pages_ - 1; page >= first_new; --page) {
    free_list_.push_back(page);
  }
  return first_new;
}

void LcmAllocator::ShrinkPages(int32_t n) {
  JENGA_CHECK_GT(n, 0);
  JENGA_CHECK_LE(n, num_pages_);
  JENGA_CHECK(TopPagesFree(n)) << "shrink of " << n << " pages with allocated top pages";
  const int32_t new_num = num_pages_ - n;
  // Drop the removed ids from the free list, preserving the relative order of survivors so
  // the hand-out sequence over the remaining pages is unchanged.
  size_t kept = 0;
  for (const LargePageId page : free_list_) {
    if (page < new_num) {
      free_list_[kept++] = page;
    }
  }
  free_list_.resize(kept);
  owner_.resize(static_cast<size_t>(new_num));
  num_pages_ = new_num;
}

bool LcmAllocator::TopPagesFree(int32_t n) const {
  JENGA_CHECK_GE(n, 0);
  if (n > num_pages_) {
    return false;
  }
  for (LargePageId page = num_pages_ - n; page < num_pages_; ++page) {
    if (owner_[static_cast<size_t>(page)] >= 0) {
      return false;
    }
  }
  return true;
}

int LcmAllocator::owner(LargePageId page) const {
  JENGA_CHECK_GE(page, 0);
  JENGA_CHECK_LT(page, num_pages_);
  return owner_[static_cast<size_t>(page)];
}

}  // namespace jenga
