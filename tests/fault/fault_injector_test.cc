// FaultInjector: plan parsing, trigger semantics, and the determinism contract the chaos
// tier depends on — a (plan, seed) pair replays the exact same fault sequence, and a site's
// stream position depends only on its own consult count.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"

namespace jenga {
namespace {

FaultConfig MakeConfig(const std::string& plan_text, uint64_t seed = 7) {
  FaultConfig config;
  JENGA_CHECK(FaultPlan::Parse(plan_text, &config.plan).ok()) << plan_text;
  config.seed = seed;
  return config;
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    EXPECT_EQ(FaultSiteFromName(FaultSiteName(site)), site);
  }
  EXPECT_EQ(FaultSiteFromName("no_such_site"), FaultSite::kNumSites);
}

TEST(FaultPlan, ParsesAllTriggerKinds) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("pcie_d2h:p=0.25,gpu_step:at=3,host_alloc:every=10", &plan).ok());
  EXPECT_DOUBLE_EQ(plan.spec(FaultSite::kPcieD2H).probability, 0.25);
  EXPECT_EQ(plan.spec(FaultSite::kGpuStep).at_consult, 3);
  EXPECT_EQ(plan.spec(FaultSite::kHostPoolAlloc).every, 10);
  EXPECT_FALSE(plan.spec(FaultSite::kPcieH2D).armed());
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RepeatedSiteMergesTriggers) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("pcie_h2d:p=0.1,pcie_h2d:at=7", &plan).ok());
  EXPECT_DOUBLE_EQ(plan.spec(FaultSite::kPcieH2D).probability, 0.1);
  EXPECT_EQ(plan.spec(FaultSite::kPcieH2D).at_consult, 7);
}

TEST(FaultPlan, ToStringRoundTrips) {
  FaultPlan plan;
  ASSERT_TRUE(
      FaultPlan::Parse("pcie_timeout:p=0.5,host_shrink:every=4,gpu_step:at=0", &plan).ok());
  FaultPlan reparsed;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed).ok());
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    EXPECT_DOUBLE_EQ(reparsed.spec(site).probability, plan.spec(site).probability);
    EXPECT_EQ(reparsed.spec(site).at_consult, plan.spec(site).at_consult);
    EXPECT_EQ(reparsed.spec(site).every, plan.spec(site).every);
  }
}

TEST(FaultPlan, RejectsMalformedInput) {
  FaultPlan plan;
  EXPECT_EQ(FaultPlan::Parse("bogus_site:p=0.5", &plan).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("pcie_d2h:q=0.5", &plan).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("pcie_d2h:p=nope", &plan).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("pcie_d2h", &plan).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("pcie_d2h:p=2.0", &plan).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("gpu_step:every=-1", &plan).code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlan, EmptyPlanDisablesConfig) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("", &plan).ok());
  EXPECT_TRUE(plan.empty());
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
}

TEST(FaultInjector, ScheduledConsultFiresExactlyOnce) {
  FaultInjector injector(MakeConfig("gpu_step:at=2"));
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(injector.Fire(FaultSite::kGpuStep));
  }
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(injector.counters(FaultSite::kGpuStep).consults, 6);
  EXPECT_EQ(injector.counters(FaultSite::kGpuStep).fires, 1);
  EXPECT_EQ(injector.total_fires(), 1);
}

TEST(FaultInjector, PeriodicTriggerFiresEveryN) {
  FaultInjector injector(MakeConfig("host_shrink:every=3"));
  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (injector.Fire(FaultSite::kHostPoolShrink)) {
      ++fires;
      EXPECT_EQ(i % 3, 2) << "fired off-period at consult " << i;
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST(FaultInjector, ProbabilityOneAlwaysFiresAndZeroNever) {
  FaultInjector always(MakeConfig("pcie_d2h:p=1.0"));
  FaultInjector never(MakeConfig("pcie_h2d:at=1000000"));  // Armed but unreachable.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(always.Fire(FaultSite::kPcieD2H));
    EXPECT_FALSE(never.Fire(FaultSite::kPcieH2D));
  }
  // Unarmed sites never fire regardless of consults.
  EXPECT_FALSE(always.Fire(FaultSite::kGpuStep));
}

TEST(FaultInjector, SameSeedReplaysIdenticalFireSequence) {
  const FaultConfig config = MakeConfig("pcie_d2h:p=0.3,gpu_step:p=0.1", 99);
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Fire(FaultSite::kPcieD2H), b.Fire(FaultSite::kPcieD2H));
    EXPECT_EQ(a.Fire(FaultSite::kGpuStep), b.Fire(FaultSite::kGpuStep));
  }
  EXPECT_EQ(a.total_fires(), b.total_fires());
}

TEST(FaultInjector, SiteStreamsAreIndependent) {
  // The fire pattern at one site must not change when another site is consulted in between:
  // per-site streams are forked from the seed, so stream position depends only on the site's
  // own consult count. This is what makes replays stable under schedule edits.
  const FaultConfig config = MakeConfig("pcie_d2h:p=0.4,gpu_step:p=0.4", 123);
  FaultInjector alone(config);
  FaultInjector interleaved(config);
  for (int i = 0; i < 200; ++i) {
    const bool expected = alone.Fire(FaultSite::kPcieD2H);
    (void)interleaved.Fire(FaultSite::kGpuStep);  // Extra consults elsewhere.
    (void)interleaved.Fire(FaultSite::kGpuStep);
    EXPECT_EQ(interleaved.Fire(FaultSite::kPcieD2H), expected) << "at consult " << i;
  }
}

TEST(FaultInjector, ScheduledFireDoesNotShiftProbabilityStream) {
  // A consult that fires via at=/every= still draws its Bernoulli sample, so the probability
  // stream stays aligned with a plan that lacks the scheduled trigger.
  FaultInjector plain(MakeConfig("pcie_d2h:p=0.5", 42));
  FaultInjector scheduled(MakeConfig("pcie_d2h:p=0.5,pcie_d2h:at=3", 42));
  for (int i = 0; i < 100; ++i) {
    const bool p = plain.Fire(FaultSite::kPcieD2H);
    const bool s = scheduled.Fire(FaultSite::kPcieD2H);
    if (i == 3) {
      EXPECT_TRUE(s);
    } else {
      EXPECT_EQ(s, p) << "streams diverged at consult " << i;
    }
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(MakeConfig("gpu_step:p=0.5", 1));
  FaultInjector b(MakeConfig("gpu_step:p=0.5", 2));
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    differences += a.Fire(FaultSite::kGpuStep) != b.Fire(FaultSite::kGpuStep) ? 1 : 0;
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultPlan, ParsesReplicaScopedSites) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("replica_death:p=0.01,replica_stall:every=8", &plan).ok());
  EXPECT_DOUBLE_EQ(plan.spec(FaultSite::kReplicaDeath).probability, 0.01);
  EXPECT_EQ(plan.spec(FaultSite::kReplicaStall).every, 8);
  EXPECT_FALSE(plan.spec(FaultSite::kGpuStep).armed());
}

TEST(FaultInjector, ReplicaSiteStreamsAreIndependentOfEngineSites) {
  // Arming the fleet sites must not perturb an engine site's stream and vice versa — the
  // fleet chaos tier replays fleet plans against schedules that also consult engine sites.
  const FaultConfig config = MakeConfig("replica_death:p=0.3,pcie_d2h:p=0.3", 99);
  FaultInjector alone(config);
  FaultInjector interleaved(config);
  for (int i = 0; i < 200; ++i) {
    const bool expected = alone.Fire(FaultSite::kReplicaDeath);
    (void)interleaved.Fire(FaultSite::kPcieD2H);  // Extra consults elsewhere.
    EXPECT_EQ(interleaved.Fire(FaultSite::kReplicaDeath), expected) << "at consult " << i;
  }
}

TEST(FaultConfigFromEnv, ReadsPlanAndSeed) {
  ASSERT_EQ(setenv("JENGA_FAULT_PLAN", "pcie_d2h:p=0.5,gpu_step:at=4", 1), 0);
  ASSERT_EQ(setenv("JENGA_FAULT_SEED", "0xBEEF", 1), 0);
  FaultConfig config;
  ASSERT_TRUE(FaultConfigFromEnv(&config).ok());
  EXPECT_TRUE(config.enabled());
  EXPECT_DOUBLE_EQ(config.plan.spec(FaultSite::kPcieD2H).probability, 0.5);
  EXPECT_EQ(config.plan.spec(FaultSite::kGpuStep).at_consult, 4);
  EXPECT_EQ(config.seed, 0xBEEFull);

  ASSERT_EQ(setenv("JENGA_FAULT_PLAN", "not a plan", 1), 0);
  EXPECT_EQ(FaultConfigFromEnv(&config).code(), StatusCode::kInvalidArgument);

  unsetenv("JENGA_FAULT_PLAN");
  unsetenv("JENGA_FAULT_SEED");
  FaultConfig empty;
  ASSERT_TRUE(FaultConfigFromEnv(&empty).ok());
  EXPECT_FALSE(empty.enabled());
}

}  // namespace
}  // namespace jenga
