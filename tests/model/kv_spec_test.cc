#include "src/model/kv_spec.h"

#include <gtest/gtest.h>

#include "src/model/model_zoo.h"

namespace jenga {
namespace {

KvSpecOptions BlockSize(int tokens_per_page) {
  KvSpecOptions options;
  options.tokens_per_page = tokens_per_page;
  return options;
}

TEST(BuildKvSpec, HomogeneousModelHasOneGroup) {
  const KvSpec spec = BuildKvSpec(Llama31_8B(), BlockSize(16));
  ASSERT_EQ(spec.groups.size(), 1u);
  const KvGroupSpec& group = spec.groups[0];
  EXPECT_EQ(group.kind, GroupKind::kFullAttention);
  EXPECT_EQ(group.num_layers, 32);
  EXPECT_EQ(group.bytes_per_token_per_layer, 2 * 8 * 128 * 2);
  EXPECT_EQ(group.page_bytes, 16LL * 4096 * 32);
  EXPECT_EQ(spec.LcmPageBytes(), group.page_bytes);
}

TEST(BuildKvSpec, PaperFigure6Arithmetic) {
  // The paper's running example: per-layer KV of 128 bytes/token, 2 cross-attention layers
  // (image page 256) + 3 self-attention layers (text page 384), tokens_per_page = 1,
  // compatible page = LCM(256, 384) = 768.
  ModelConfig model;
  model.name = "figure6";
  model.params_b = 1.0;
  model.compute_layers = 5;
  LayerSpec self_attn;
  self_attn.kind = LayerKind::kFullAttention;
  self_attn.num_kv_heads = 1;
  self_attn.head_dim = 32;
  self_attn.dtype_bytes = 2;  // 2·1·32·2 = 128 bytes/token.
  LayerSpec cross_attn = self_attn;
  cross_attn.kind = LayerKind::kCrossAttention;
  model.layers = {self_attn, self_attn, self_attn, cross_attn, cross_attn};

  const KvSpec spec = BuildKvSpec(model, BlockSize(1));
  ASSERT_EQ(spec.groups.size(), 2u);
  const KvGroupSpec* text = spec.FindGroup(GroupKind::kFullAttention);
  const KvGroupSpec* image = spec.FindGroup(GroupKind::kCrossAttention);
  ASSERT_NE(text, nullptr);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(text->page_bytes, 384);
  EXPECT_EQ(image->page_bytes, 256);
  EXPECT_EQ(spec.LcmPageBytes(), 768);
  EXPECT_EQ(spec.GcdPageBytes(), 128);
  EXPECT_EQ(spec.MaxPageBytes(), 384);
  EXPECT_EQ(image->scope, GroupScope::kImageTokens);
  // In a cross-attention model the decoder sequence holds text tokens only (§3.2).
  EXPECT_EQ(text->scope, GroupScope::kTextTokens);
}

TEST(BuildKvSpec, SlidingWindowModelSplitsGroups) {
  const KvSpec spec = BuildKvSpec(Gemma2_27B(), BlockSize(16));
  ASSERT_EQ(spec.groups.size(), 2u);
  const KvGroupSpec* full = spec.FindGroup(GroupKind::kFullAttention);
  const KvGroupSpec* window = spec.FindGroup(GroupKind::kSlidingWindow);
  ASSERT_NE(full, nullptr);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(full->num_layers, 23);
  EXPECT_EQ(window->num_layers, 23);
  EXPECT_EQ(window->sliding_window, 4096);
  // Equal layer counts and per-token sizes → equal pages → LCM is trivial.
  EXPECT_EQ(spec.LcmPageBytes(), full->page_bytes);
}

TEST(BuildKvSpec, JambaMambaGroupIsPerSequence) {
  const KvSpec spec = BuildKvSpec(Jamba52B_Fp8(), BlockSize(16));
  const KvGroupSpec* mamba = spec.FindGroup(GroupKind::kMamba);
  const KvGroupSpec* attn = spec.FindGroup(GroupKind::kFullAttention);
  ASSERT_NE(mamba, nullptr);
  ASSERT_NE(attn, nullptr);
  EXPECT_EQ(mamba->scope, GroupScope::kPerSequence);
  EXPECT_EQ(mamba->num_layers, 28);
  EXPECT_EQ(mamba->tokens_per_page, 0);
  // §4.4: the worst LCM across vLLM-supported models is Jamba at 84× the small page.
  EXPECT_EQ(spec.LcmPageBytes() / attn->page_bytes, 84);
  EXPECT_EQ(spec.LcmPageBytes(), mamba->page_bytes);
}

TEST(BuildKvSpec, VisionGroupOnlyWhenRequested) {
  KvSpecOptions with = BlockSize(16);
  KvSpecOptions without = BlockSize(16);
  without.include_vision_group = false;
  const KvSpec spec_with = BuildKvSpec(Llama32_11B_Vision(), with);
  const KvSpec spec_without = BuildKvSpec(Llama32_11B_Vision(), without);
  EXPECT_NE(spec_with.FindGroup(GroupKind::kVisionEmbed), nullptr);
  EXPECT_EQ(spec_without.FindGroup(GroupKind::kVisionEmbed), nullptr);
  EXPECT_EQ(spec_with.groups.size(), spec_without.groups.size() + 1);
}

TEST(BuildKvSpec, MllamaGroupShapes) {
  const KvSpec spec = BuildKvSpec(Llama32_11B_Vision(), BlockSize(16));
  const KvGroupSpec* self_attn = spec.FindGroup(GroupKind::kFullAttention);
  const KvGroupSpec* cross = spec.FindGroup(GroupKind::kCrossAttention);
  ASSERT_NE(self_attn, nullptr);
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(self_attn->num_layers, 32);
  EXPECT_EQ(cross->num_layers, 8);
  // Same per-layer KV size → the page ratio is exactly the layer ratio 32:8.
  EXPECT_EQ(self_attn->page_bytes / cross->page_bytes, 4);
}

TEST(MergeKvSpecs, SpeculativeDecodingPair) {
  const KvSpec target = BuildKvSpec(Llama31_8B(), BlockSize(16));
  const KvSpec draft = BuildKvSpec(Llama32_1B(), BlockSize(16));
  const KvSpec merged = MergeKvSpecs({{"target", target}, {"draft", draft}});
  ASSERT_EQ(merged.groups.size(), 2u);
  EXPECT_EQ(merged.groups[0].name, "target/full_attention");
  EXPECT_EQ(merged.groups[1].name, "draft/full_attention");
  // 8B page (32 layers × 4096 B) vs 1B page (16 × 2048 B): ratio 4 → LCM = target page.
  EXPECT_EQ(merged.LcmPageBytes(), merged.groups[0].page_bytes);
}

TEST(KvSpecDeath, RejectsZeroBlockSize) {
  EXPECT_DEATH(BuildKvSpec(Llama31_8B(), BlockSize(0)), "tokens_per_page");
}

}  // namespace
}  // namespace jenga
