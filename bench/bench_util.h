// Shared helpers for the paper-reproduction bench binaries: fixed-width table printing and
// common run drivers. Every bench prints the rows/series of one paper table or figure.

#ifndef JENGA_BENCH_BENCH_UTIL_H_
#define JENGA_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace jenga {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

// Fixed-width row printing: columns are (width, text) pairs rendered left-aligned.
inline void PrintRow(const std::vector<std::pair<int, std::string>>& cells) {
  for (const auto& [width, text] : cells) {
    std::printf("%-*s", width, text.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

inline std::string FmtI(int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

inline std::string Gb(int64_t bytes) {
  return Fmt("%.2f GB", static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
}

inline std::string Pct(double fraction) { return Fmt("%.1f%%", fraction * 100.0); }

// Worker count for ParallelSweep: JENGA_BENCH_THREADS when set, else hardware concurrency.
// 1 runs tasks inline, in order — byte-for-byte the serial behavior.
inline int BenchThreads() {
  if (const char* env = std::getenv("JENGA_BENCH_THREADS")) {
    const int threads = std::atoi(env);
    if (threads >= 1) {
      return threads;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Runs independent deterministic tasks (one engine run each) across BenchThreads() workers
// and returns their results in task order, so callers compute in parallel and print in the
// fixed figure order afterwards. Tasks must not touch shared mutable state (each builds its
// own engine/dataset); determinism comes from per-task seeding, not run order.
template <typename Result>
std::vector<Result> ParallelSweep(const std::vector<std::function<Result()>>& tasks) {
  std::vector<Result> results(tasks.size());
  const int threads = std::min<int>(BenchThreads(), static_cast<int>(tasks.size()));
  if (threads <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      results[i] = tasks[i]();
    }
    return results;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < tasks.size(); i = next.fetch_add(1)) {
        results[i] = tasks[i]();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return results;
}

}  // namespace jenga

#endif  // JENGA_BENCH_BENCH_UTIL_H_
