// Offload serving: enable the host-memory KV tier so preemptions swap over PCIe instead of
// recomputing, and evicted prefix-cache pages get a second chance in host memory. Runs the
// same memory-pressured workload twice — recompute-only vs the full tier — and prints what
// the tier bought.

#include <cstdio>

#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

using namespace jenga;

namespace {

EngineConfig MakeConfig(bool enable_tier) {
  // Ministral 8B on an H100 with a deliberately shrunken pool fraction: the long-document
  // batch fits at admission, but decode growth overflows the pool and forces preemptions —
  // exactly the regime where discarding tens of thousands of computed prompt tokens hurts.
  EngineConfig config = JengaProfile(Ministral8B(), H100());
  config.enable_prefix_caching = false;  // Long-doc requests share no prefixes.
  config.memory_fraction = 0.45;
  if (enable_tier) {
    config.offload.enabled = true;
    // Both mechanisms default to on; shown here for discoverability. The second-chance
    // cache (offload.host_prefix_cache) parks Evictor victims in host memory, but this
    // workload shares no prefixes — see bench_offload_tier part B for that path in action.
    config.offload.swap_preemption = true;  // Preempt-by-swap when PCIe beats recompute.
    config.offload.host_prefix_cache = false;
    config.offload.host_pool_bytes = 64ll << 30;
    config.offload.pcie.h2d_bandwidth = 32e9;  // ~PCIe 5.0 x16 after overhead.
    config.offload.pcie.d2h_bandwidth = 32e9;
  }
  return config;
}

void SubmitWorkload(Engine& engine) {
  // The Fig. 15 long-document batch: 20 requests at once, 55k-110k input tokens each.
  LongDocDataset dataset;
  Rng rng(0xF15);
  for (Request& r : GenerateBatch(dataset, 20, rng)) {
    engine.Submit(std::move(r));
  }
}

}  // namespace

int main() {
  double baseline_seconds = 0.0;
  for (const bool tier : {false, true}) {
    Engine engine(MakeConfig(tier));
    SubmitWorkload(engine);
    engine.RunToCompletion();

    std::printf("%s:\n", tier ? "with offload tier" : "recompute-only baseline");
    std::printf("  %lld requests in %.2f simulated seconds (%.1f tok/s decode)\n",
                static_cast<long long>(engine.metrics().CompletedRequests()), engine.now(),
                engine.metrics().TokenThroughput());
    std::printf("  recomputed prompt tokens after preemption: %lld\n",
                static_cast<long long>(engine.metrics().recomputed_tokens));
    if (const SwapManager* swap = engine.swap()) {
      std::printf("  swaps: %lld out / %lld in\n",
                  static_cast<long long>(swap->stats().swap_out_events),
                  static_cast<long long>(swap->stats().swap_in_events));
      std::printf("  PCIe busy %.2fs, of which engine stall %.2fs\n",
                  swap->stats().transfer_time, swap->stats().stall_time);
      std::printf("  speedup over recompute-only: %.2fx\n", baseline_seconds / engine.now());
    } else {
      baseline_seconds = engine.now();
    }
    std::printf("\n");
  }
  return 0;
}
