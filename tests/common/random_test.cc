#include "src/common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace jenga {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differing;
    }
  }
  EXPECT_EQ(differing, 32);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    counts[static_cast<size_t>(rng.UniformInt(0, 3))] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // Near-uniform: expected 1000 each.
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(5);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ForkIndependence) {
  Rng parent(123);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  EXPECT_NE(child_a.NextU64(), child_b.NextU64());
  // Forking does not disturb the parent relative to an identical twin.
  Rng twin(123);
  (void)twin.Fork(0);
  (void)twin.Fork(1);
  EXPECT_EQ(parent.NextU64(), twin.NextU64());
}

}  // namespace
}  // namespace jenga
