#include "src/offload/swap_manager.h"

#include <gtest/gtest.h>

#include "src/core/types.h"

namespace jenga {
namespace {

// Round numbers so every cost below has a closed form:
//   recompute compute term = tokens × 1e-3 s (1 GFLOP/token on a 1 TFLOP/s GPU),
//   KV re-read term        = chunks × resident/2 × 1e-12 s/byte,
//   PCIe                   = 1 ms latency + bytes × 1e-10 s/byte each way (10 GB/s).
SwapCostParams TestCost(int64_t chunk_tokens = 1'000'000) {
  SwapCostParams cost;
  cost.flops_per_token = 1e9;
  cost.gpu_flops = 1e12;
  cost.gpu_mem_bandwidth = 1e12;
  cost.chunk_tokens = chunk_tokens;
  return cost;
}

OffloadConfig TestConfig(int64_t host_bytes = 1ll << 30) {
  OffloadConfig config;
  config.enabled = true;
  config.host_pool_bytes = host_bytes;
  config.pcie.h2d_bandwidth = 10e9;
  config.pcie.d2h_bandwidth = 10e9;
  config.pcie.per_transfer_latency = 1e-3;
  config.pcie.overlap_fraction = 0.5;
  return config;
}

SwapFootprint Footprint(int64_t tokens, int64_t swappable, int64_t resident = 0,
                        int64_t drop_recompute = 0) {
  SwapFootprint fp;
  fp.tokens = tokens;
  fp.swappable_bytes = swappable;
  fp.resident_bytes = resident > 0 ? resident : swappable;
  fp.drop_recompute_bytes = drop_recompute;
  fp.fingerprints = {0xFEEDu};
  return fp;
}

TEST(SwapManager, RecomputeTimeMatchesClosedForm) {
  SwapManager swap(TestConfig(), TestCost(/*chunk_tokens=*/500));
  // 1000 tokens = 2 chunks; compute 1.0 s + re-read 2 × (1e9/2) × 1e-12 = 1e-3 s.
  EXPECT_DOUBLE_EQ(swap.RecomputeTime(1000, 1'000'000'000), 1.0 + 1e-3);
  EXPECT_EQ(swap.RecomputeTime(0, 1'000'000'000), 0.0);
}

TEST(SwapManager, CrossoverPicksSwapExactlyWhenRoundTripIsCheaper) {
  SwapManager swap(TestConfig(), TestCost());
  // Round trip for 1 GB: 2 × (1 ms + 0.1 s) = 0.202 s.
  const SwapFootprint fp = Footprint(/*tokens=*/1000, /*swappable=*/1'000'000'000);
  EXPECT_DOUBLE_EQ(swap.SwapRoundTripTime(fp), 0.202);
  // Recompute of 1000 tokens ≈ 1.0005 s >> 0.202 s → swap.
  EXPECT_EQ(swap.ChoosePreemptMode(fp), PreemptMode::kSwap);
  // 100 tokens recompute ≈ 0.1 s < 0.202 s → recompute wins for the same bytes.
  EXPECT_EQ(swap.ChoosePreemptMode(Footprint(100, 1'000'000'000)), PreemptMode::kRecompute);
}

TEST(SwapManager, IneligibleGroupsChargeTheirRecomputeShare) {
  SwapManager swap(TestConfig(), TestCost());
  // Half the resident bytes are swap-ineligible: the round trip carries half the
  // compute-only recompute cost on top of the transfer.
  const SwapFootprint fp =
      Footprint(/*tokens=*/1000, /*swappable=*/500'000'000, /*resident=*/1'000'000'000,
                /*drop_recompute=*/500'000'000);
  const double transfer = 2.0 * (1e-3 + 0.05);
  EXPECT_DOUBLE_EQ(swap.SwapRoundTripTime(fp), transfer + 0.5 * swap.RecomputeTime(1000, 0));
}

TEST(SwapManager, NeverSwapsWhatCannotFit) {
  SwapManager swap(TestConfig(/*host_bytes=*/1000), TestCost());
  EXPECT_EQ(swap.ChoosePreemptMode(Footprint(100000, 2000)), PreemptMode::kRecompute);
  EXPECT_EQ(swap.ChoosePreemptMode(Footprint(100000, 0)), PreemptMode::kRecompute);
}

TEST(SwapManager, SwapPreemptionSwitchForcesRecompute) {
  OffloadConfig config = TestConfig();
  config.swap_preemption = false;
  SwapManager swap(config, TestCost());
  EXPECT_EQ(swap.ChoosePreemptMode(Footprint(100000, 1'000'000'000)),
            PreemptMode::kRecompute);
}

TEST(SwapManager, SwapSetLifecycleAccountsTransfersAndStats) {
  SwapManager swap(TestConfig(), TestCost());
  const SwapFootprint fp = Footprint(1000, 1'000'000'000);
  ASSERT_TRUE(swap.RecordSwapOut(5, fp));
  EXPECT_EQ(swap.stats().swap_out_events, 1);
  EXPECT_EQ(swap.stats().swap_out_bytes, 1'000'000'000);
  EXPECT_TRUE(swap.HasPendingTransfer());
  ASSERT_NE(swap.PeekSwapSet(5), nullptr);
  EXPECT_EQ(swap.PeekSwapSet(5)->fingerprints[0], 0xFEEDu);
  // Engines snapshot the set before restoring (the restore can churn the host pool).
  const HostSwapSet snapshot = *swap.PeekSwapSet(5);
  swap.CommitSwapIn(5, snapshot);
  EXPECT_EQ(swap.stats().swap_in_events, 1);
  EXPECT_EQ(swap.PeekSwapSet(5), nullptr);
  // D2H at swap-out + H2D at swap-in, fully stalled with no concurrent compute.
  EXPECT_DOUBLE_EQ(swap.ConsumeStall(0.0), 0.202);
  EXPECT_FALSE(swap.HasPendingTransfer());
  EXPECT_DOUBLE_EQ(swap.stats().stall_time, 0.202);
}

TEST(SwapManager, DropSwapSetAbandonsWithoutChargingH2D) {
  SwapManager swap(TestConfig(), TestCost());
  ASSERT_TRUE(swap.RecordSwapOut(5, Footprint(1000, 1'000'000'000)));
  swap.ConsumeStall(0.0);  // Drain the D2H charge.
  swap.DropSwapSet(5);
  EXPECT_EQ(swap.PeekSwapSet(5), nullptr);
  EXPECT_FALSE(swap.HasPendingTransfer());
  EXPECT_EQ(swap.stats().swap_in_events, 0);
}

TEST(SwapManager, StallOverlapsWithComputeTime) {
  SwapManager swap(TestConfig(), TestCost());
  ASSERT_TRUE(swap.RecordSwapOut(5, Footprint(1000, 1'000'000'000)));
  // Pending D2H = 0.101 s; 0.1 s of compute hides 0.05 s of it.
  EXPECT_DOUBLE_EQ(swap.ConsumeStall(0.1), 0.101 - 0.05);
  // Drained: a second step pays nothing.
  EXPECT_EQ(swap.ConsumeStall(10.0), 0.0);
}

TEST(SwapManager, SinkParksEvictionsFromEveryGroup) {
  SwapManager swap(TestConfig(), TestCost());
  // Group 1 is swap-ineligible (e.g. sliding window) — its evictions still park, because the
  // hit scan needs residency across all groups at a common boundary.
  CacheEvictionSink* sink = swap.RegisterManager(0, {1, 0}, {4096, 4096});
  sink->OnCacheEvicted(/*group_index=*/0, /*hash=*/11, /*page_bytes=*/4096,
                       /*prefix_length=*/16, /*last_access=*/1);
  sink->OnCacheEvicted(/*group_index=*/1, /*hash=*/22, /*page_bytes=*/4096,
                       /*prefix_length=*/16, /*last_access=*/1);
  EXPECT_EQ(swap.stats().host_pages_stored, 2);
  EXPECT_NE(swap.LookupHostPage(0, 0, 11), nullptr);
  EXPECT_NE(swap.LookupHostPage(0, 1, 22), nullptr);
  EXPECT_EQ(swap.LookupHostPage(0, 0, 22), nullptr);  // Keys are group-scoped.
}

TEST(SwapManager, HostPrefixCacheSwitchDisablesParkingAndLookup) {
  OffloadConfig config = TestConfig();
  config.host_prefix_cache = false;
  SwapManager swap(config, TestCost());
  CacheEvictionSink* sink = swap.RegisterManager(0, {1}, {4096});
  sink->OnCacheEvicted(0, 11, 4096, 16, 1);
  EXPECT_EQ(swap.stats().host_pages_stored, 0);
  EXPECT_EQ(swap.LookupHostPage(0, 0, 11), nullptr);
  EXPECT_FALSE(swap.HasPendingTransfer());
}

TEST(SwapManager, PromotionRemovesThePageAndChargesH2D) {
  SwapManager swap(TestConfig(), TestCost());
  CacheEvictionSink* sink = swap.RegisterManager(0, {1}, {4096});
  sink->OnCacheEvicted(0, 11, 1'000'000'000, 16, 1);
  swap.ConsumeStall(0.0);  // Drain the D2H stream charge.
  swap.OnHostPagePromoted(0, 0, 11, 1'000'000'000);
  EXPECT_EQ(swap.LookupHostPage(0, 0, 11), nullptr);
  EXPECT_EQ(swap.stats().host_pages_promoted, 1);
  EXPECT_EQ(swap.stats().host_bytes_promoted, 1'000'000'000);
  // Streamed promotion: bandwidth only, no per-transfer latency.
  EXPECT_DOUBLE_EQ(swap.ConsumeStall(0.0), 0.1);
}

}  // namespace
}  // namespace jenga
