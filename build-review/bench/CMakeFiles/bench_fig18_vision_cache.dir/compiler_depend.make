# Empty compiler generated dependencies file for bench_fig18_vision_cache.
# This may be replaced when dependencies are built.
