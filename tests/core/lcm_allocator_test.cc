#include "src/core/lcm_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace jenga {
namespace {

TEST(LcmAllocator, PoolPartitioning) {
  LcmAllocator alloc(10 * 768 + 100, 768);
  EXPECT_EQ(alloc.num_pages(), 10);
  EXPECT_EQ(alloc.slack_bytes(), 100);
  EXPECT_EQ(alloc.num_free(), 10);
  EXPECT_EQ(alloc.num_allocated(), 0);
}

TEST(LcmAllocator, AllocateAllThenExhaust) {
  LcmAllocator alloc(4 * 64, 64);
  std::set<LargePageId> pages;
  for (int i = 0; i < 4; ++i) {
    const auto page = alloc.Allocate(/*owner_group=*/0);
    ASSERT_TRUE(page.has_value());
    EXPECT_TRUE(pages.insert(*page).second) << "duplicate page handed out";
  }
  EXPECT_FALSE(alloc.Allocate(0).has_value());
  EXPECT_EQ(alloc.num_allocated(), 4);
}

TEST(LcmAllocator, FreeMakesPageReusable) {
  LcmAllocator alloc(2 * 64, 64);
  const LargePageId a = *alloc.Allocate(0);
  const LargePageId b = *alloc.Allocate(1);
  EXPECT_FALSE(alloc.Allocate(0).has_value());
  alloc.Free(a);
  EXPECT_EQ(alloc.num_free(), 1);
  const auto again = alloc.Allocate(2);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, a);
  EXPECT_EQ(alloc.owner(a), 2);
  EXPECT_EQ(alloc.owner(b), 1);
}

TEST(LcmAllocator, OwnerTracking) {
  LcmAllocator alloc(3 * 64, 64);
  const LargePageId a = *alloc.Allocate(5);
  EXPECT_EQ(alloc.owner(a), 5);
  alloc.Free(a);
  EXPECT_EQ(alloc.owner(a), -1);
}

TEST(LcmAllocator, AscendingHandOut) {
  LcmAllocator alloc(3 * 64, 64);
  EXPECT_EQ(*alloc.Allocate(0), 0);
  EXPECT_EQ(*alloc.Allocate(0), 1);
  EXPECT_EQ(*alloc.Allocate(0), 2);
}

TEST(LcmAllocator, ZeroPoolHasNoPages) {
  LcmAllocator alloc(0, 64);
  EXPECT_EQ(alloc.num_pages(), 0);
  EXPECT_FALSE(alloc.Allocate(0).has_value());
}

TEST(LcmAllocatorDeath, DoubleFree) {
  LcmAllocator alloc(2 * 64, 64);
  const LargePageId a = *alloc.Allocate(0);
  alloc.Free(a);
  EXPECT_DEATH(alloc.Free(a), "double free");
}

TEST(LcmAllocatorDeath, FreeOutOfRange) {
  LcmAllocator alloc(2 * 64, 64);
  EXPECT_DEATH(alloc.Free(7), "");
}

}  // namespace
}  // namespace jenga
