file(REMOVE_RECURSE
  "CMakeFiles/jenga_core.dir/block_hash.cc.o"
  "CMakeFiles/jenga_core.dir/block_hash.cc.o.d"
  "CMakeFiles/jenga_core.dir/evictor.cc.o"
  "CMakeFiles/jenga_core.dir/evictor.cc.o.d"
  "CMakeFiles/jenga_core.dir/jenga_allocator.cc.o"
  "CMakeFiles/jenga_core.dir/jenga_allocator.cc.o.d"
  "CMakeFiles/jenga_core.dir/layer_policy.cc.o"
  "CMakeFiles/jenga_core.dir/layer_policy.cc.o.d"
  "CMakeFiles/jenga_core.dir/lcm_allocator.cc.o"
  "CMakeFiles/jenga_core.dir/lcm_allocator.cc.o.d"
  "CMakeFiles/jenga_core.dir/policy_factory.cc.o"
  "CMakeFiles/jenga_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/jenga_core.dir/small_page_allocator.cc.o"
  "CMakeFiles/jenga_core.dir/small_page_allocator.cc.o.d"
  "libjenga_core.a"
  "libjenga_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
