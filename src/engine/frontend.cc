#include "src/engine/frontend.h"

#include <utility>

#include "src/common/check.h"

namespace jenga {

ServingFrontend::ServingFrontend(EngineConfig config)
    : ServingFrontend(std::move(config), Options{}) {}

ServingFrontend::ServingFrontend(EngineConfig config, Options options)
    : options_(std::move(options)),
      engine_(std::move(config)),
      queue_(options_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

ServingFrontend::~ServingFrontend() { Shutdown(); }

double ServingFrontend::WallSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

StreamHandle ServingFrontend::SubmitAsync(Request request) {
  auto stream = std::make_shared<RequestStream>();
  stream->submit_wall.store(WallSeconds(), std::memory_order_release);
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  // Push blocks while the queue is full and fails only once the queue is closed (shutdown).
  if (!queue_.Push(std::move(op))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    stream->phase.store(StreamPhase::kRejected, std::memory_order_release);
    return stream;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  return stream;
}

bool ServingFrontend::TrySubmitAsync(Request request, StreamHandle* out) {
  JENGA_CHECK(out != nullptr);
  auto stream = std::make_shared<RequestStream>();
  stream->submit_wall.store(WallSeconds(), std::memory_order_release);
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  if (queue_.closed()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    stream->phase.store(StreamPhase::kRejected, std::memory_order_release);
    *out = std::move(stream);
    return true;  // Handled: the caller can read the rejection off the stream.
  }
  if (!queue_.TryPush(op)) {
    return false;  // Full; no side effect.
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  *out = std::move(stream);
  return true;
}

bool ServingFrontend::SubmitWithStream(Request& request, const StreamHandle& stream) {
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  // TryPush leaves the op intact on failure, so the request can be handed back to the
  // caller if the queue closes while we spin on a full one.
  for (;;) {
    if (queue_.closed()) {
      request = std::move(op.request);
      return false;
    }
    if (queue_.TryPush(op)) {
      break;
    }
    std::this_thread::yield();
  }
  double expected = -1.0;
  (void)stream->submit_wall.compare_exchange_strong(expected, WallSeconds(),
                                                    std::memory_order_release,
                                                    std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  return true;
}

ServingFrontend::TrySubmitResult ServingFrontend::TrySubmitWithStream(
    Request& request, const StreamHandle& stream) {
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  if (!queue_.TryPush(op)) {
    request = std::move(op.request);
    return queue_.closed() ? TrySubmitResult::kClosed : TrySubmitResult::kQueueFull;
  }
  double expected = -1.0;
  (void)stream->submit_wall.compare_exchange_strong(expected, WallSeconds(),
                                                    std::memory_order_release,
                                                    std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  return TrySubmitResult::kAccepted;
}

void ServingFrontend::CancelAsync(RequestId id) {
  Op op;
  op.kind = Op::Kind::kCancel;
  op.id = id;
  // A cancel dropped because the queue closed is harmless: shutdown drains the accepted
  // work to completion either way.
  if (queue_.Push(std::move(op))) {
    WakeConsumer();
  }
}

void ServingFrontend::Start() {
  JENGA_CHECK(!started_.exchange(true)) << "ServingFrontend::Start called twice";
  loop_ = std::thread([this] { EngineLoop(/*until_idle=*/false); });
}

void ServingFrontend::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
  if (loop_.joinable()) {
    loop_.join();
  } else {
    // Start() was never called: drain whatever was enqueued on the caller's thread.
    EngineLoop(/*until_idle=*/false);
  }
}

void ServingFrontend::Kill() {
  JENGA_CHECK(!killed_.exchange(true)) << "ServingFrontend::Kill called twice";
  JENGA_CHECK(!shut_down_.load(std::memory_order_acquire))
      << "cannot Kill a frontend that already shut down";
  // Order matters: killed_ first so the loop abandons work, shut_down_ so a later Shutdown
  // (and the destructor) is a no-op, then Close so producers start failing. Producers that
  // observe the closed queue (acquire) also observe the kill that closed it.
  shut_down_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
  if (loop_.joinable()) {
    loop_.join();
  }
  // If Start() was never called, there is nothing to join and nothing ran: every accepted
  // op is still in the queue, exactly what HarvestAbandoned expects.
}

std::vector<ServingFrontend::AbandonedWork> ServingFrontend::HarvestAbandoned() {
  JENGA_CHECK(killed_.load(std::memory_order_acquire))
      << "HarvestAbandoned requires Kill() first";
  const double wall = WallSeconds();
  // Pass 1: drain the leftover queue ops in order. Submits are stashed as candidates;
  // cancels annihilate their submit wherever it is (stashed behind us, or already on the
  // engine) — a cancel the client got into the queue before the death wins over re-routing.
  std::vector<Op> queued;
  std::unordered_map<RequestId, size_t> queued_index;
  while (auto op = queue_.TryPop()) {
    if (op->kind == Op::Kind::kSubmit) {
      if (pending_cancels_.erase(op->id) > 0) {
        retired_.insert(op->id);
        cancelled_queued_.fetch_add(1, std::memory_order_relaxed);
        op->stream->finish_wall.store(wall, std::memory_order_release);
        op->stream->phase.store(StreamPhase::kCancelled, std::memory_order_release);
        continue;
      }
      queued_index.emplace(op->id, queued.size());
      queued.push_back(std::move(*op));
      continue;
    }
    const RequestId id = op->id;
    if (auto it = queued_index.find(id); it != queued_index.end()) {
      Op& submit = queued[it->second];
      queued_index.erase(it);
      retired_.insert(id);
      cancelled_queued_.fetch_add(1, std::memory_order_relaxed);
      submit.stream->finish_wall.store(wall, std::memory_order_release);
      submit.stream->phase.store(StreamPhase::kCancelled, std::memory_order_release);
      submit.stream.reset();  // Marks the slot annihilated.
      continue;
    }
    if (auto it = live_.find(id); it != live_.end()) {
      JENGA_CHECK(engine_.CancelRequest(id));
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      it->second->finish_wall.store(wall, std::memory_order_release);
      it->second->phase.store(StreamPhase::kCancelled, std::memory_order_release);
      retired_.insert(id);
      live_.erase(it);
      continue;
    }
    if (retired_.find(id) == retired_.end()) {
      pending_cancels_.insert(id);  // Submit never arrived and never will; harmless.
    }
  }
  std::vector<AbandonedWork> work;
  work.reserve(queued.size() + live_.size());
  for (Op& op : queued) {
    if (op.stream == nullptr) {
      continue;  // Annihilated above.
    }
    harvested_queued_.fetch_add(1, std::memory_order_relaxed);
    work.push_back(AbandonedWork{std::move(op.request), std::move(op.stream),
                                 /*engine_side=*/false});
  }
  // Pass 2: engine-side requests, in scheduler order. Rebuild from the prompt (the same
  // recompute-from-prompt recovery as preemption, lifted to fleet scope) and cancel with
  // full reclamation so the dead engine's allocator still audits clean. No terminal phase
  // is published: the stream stays live and travels with the re-routed request.
  for (const RequestId id : engine_.ActiveRequests()) {
    auto it = live_.find(id);
    JENGA_CHECK(it != live_.end()) << "active engine request has no live stream";
    const Request& dead = engine_.request(id);
    Request revived = MakeRequest(dead.id, dead.prompt, dead.output_len, dead.arrival_time);
    revived.deadline = dead.deadline;
    JENGA_CHECK(engine_.CancelRequest(id));
    harvested_live_.fetch_add(1, std::memory_order_relaxed);
    work.push_back(AbandonedWork{std::move(revived), std::move(it->second),
                                 /*engine_side=*/true});
    live_.erase(it);
  }
  JENGA_CHECK(live_.empty()) << "killed frontend left unresolved live streams";
  return work;
}

void ServingFrontend::RunUntilIdle() {
  JENGA_CHECK(!started_.load(std::memory_order_acquire))
      << "RunUntilIdle cannot run next to the engine thread";
  EngineLoop(/*until_idle=*/true);
}

void ServingFrontend::RunClients(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    clients.emplace_back(fn, i);
  }
  for (std::thread& t : clients) {
    t.join();
  }
}

void ServingFrontend::EngineLoop(bool until_idle) {
  for (;;) {
    if (killed_.load(std::memory_order_acquire)) {
      return;  // Killed: abandon queue and engine state in place for HarvestAbandoned.
    }
    const int applied = DrainOps();
    const bool stepped = engine_.StepOnce();
    if (!live_.empty()) {
      PublishProgress();
    }
    if (options_.step_observer && (stepped || applied > 0)) {
      options_.step_observer(engine_);
    }
    if (stepped || applied > 0) {
      continue;
    }
    // Queue empty at drain time and the engine has no unfinished work.
    if (until_idle && queue_.SizeApprox() == 0) {
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      if (queue_.SizeApprox() == 0) {
        JENGA_CHECK(live_.empty()) << "engine idle with live streams unresolved";
        return;
      }
      continue;  // Late ops slipped in before Close(); drain them.
    }
    if (!until_idle) {
      IdleWait();
    }
  }
}

int ServingFrontend::DrainOps() {
  int applied = 0;
  while (auto op = queue_.TryPop()) {
    if (op->kind == Op::Kind::kSubmit) {
      ApplySubmit(*op);
    } else {
      ApplyCancel(op->id);
    }
    ++applied;
  }
  return applied;
}

void ServingFrontend::ApplySubmit(Op& op) {
  if (pending_cancels_.erase(op.id) > 0) {
    // Cancelled while still queued: the engine never sees the request.
    retired_.insert(op.id);
    cancelled_queued_.fetch_add(1, std::memory_order_relaxed);
    op.stream->finish_wall.store(WallSeconds(), std::memory_order_release);
    op.stream->phase.store(StreamPhase::kCancelled, std::memory_order_release);
    return;
  }
  engine_.Submit(std::move(op.request));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  live_.emplace(op.id, std::move(op.stream));
}

void ServingFrontend::ApplyCancel(RequestId id) {
  if (live_.find(id) != live_.end()) {
    (void)engine_.CancelRequest(id);  // False only if it finished this very step; fine.
    return;
  }
  if (retired_.find(id) != retired_.end()) {
    return;  // Late cancel for a finished/cancelled request.
  }
  // The submit has not been drained yet (it is behind us in the queue, or on its way from
  // another producer). Remember the cancel; the submit annihilates against it.
  pending_cancels_.insert(id);
}

void ServingFrontend::PublishProgress() {
  const double wall = WallSeconds();
  for (auto it = live_.begin(); it != live_.end();) {
    const Request& r = engine_.request(it->first);
    RequestStream& stream = *it->second;
    stream.tokens.store(r.num_generated, std::memory_order_release);
    if (r.num_generated > 0 &&
        stream.first_token_wall.load(std::memory_order_relaxed) < 0.0) {
      stream.first_token_wall.store(wall, std::memory_order_release);
    }
    if (r.state == RequestState::kFinished) {
      StreamPhase terminal = StreamPhase::kFinished;
      if (r.cancelled) {
        terminal = StreamPhase::kCancelled;
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      } else if (r.failed) {
        terminal = StreamPhase::kFailed;
        failed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        finished_.fetch_add(1, std::memory_order_relaxed);
      }
      stream.finish_wall.store(wall, std::memory_order_release);
      stream.phase.store(terminal, std::memory_order_release);
      retired_.insert(it->first);
      it = live_.erase(it);
      continue;
    }
    if (r.state != RequestState::kWaiting) {
      // Running or preempted: scheduled at least once from the client's point of view.
      StreamPhase expected = StreamPhase::kQueued;
      stream.phase.compare_exchange_strong(expected, StreamPhase::kRunning,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
    }
    ++it;
  }
}

void ServingFrontend::IdleWait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  consumer_idle_.store(true, std::memory_order_seq_cst);
  // Re-check under the lock: a producer that saw consumer_idle_ == true will block on
  // wake_mu_ before notifying, so a push that raced our store is visible here. The timeout
  // bounds the one remaining race (push before our store, idle-check before the producer's
  // load) at idle_wait_us.
  if (queue_.SizeApprox() == 0 && !stopping_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lock, std::chrono::microseconds(options_.idle_wait_us));
  }
  consumer_idle_.store(false, std::memory_order_seq_cst);
}

void ServingFrontend::WakeConsumer() {
  if (consumer_idle_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
}

ServingFrontend::Counters ServingFrontend::counters() const {
  Counters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.cancelled_queued = cancelled_queued_.load(std::memory_order_relaxed);
  c.finished = finished_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.harvested_queued = harvested_queued_.load(std::memory_order_relaxed);
  c.harvested_live = harvested_live_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace jenga
