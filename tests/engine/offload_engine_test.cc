// Engine-level tests of the host-memory offload tier: preempt-by-swap round trips, the
// second-chance prefix cache, and the regression guard that preempt→re-admit→finish cycles
// leave no per-request affinity free-list state behind (with and without swapping).

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Pool fits ~2 requests' KV; 4 long-output requests force preemption churn (same pressure
// shape as Engine.PreemptionRecoversUnderMemoryPressure).
EngineConfig PressureConfig(bool offload, bool swap_preemption) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.vision_cache = true;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  config.memory_sample_every = 1;
  if (offload) {
    config.offload.enabled = true;
    config.offload.swap_preemption = swap_preemption;
    config.offload.host_prefix_cache = false;
    config.offload.host_pool_bytes = 1ll << 30;
    // An effectively free link makes the crossover always pick swap for eligible footprints,
    // so the swap path is exercised deterministically even for the tiny test model.
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
  }
  return config;
}

void SubmitPressureBatch(Engine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 80, 0.0));
  }
}

int TotalPreemptions(const Engine& engine) {
  int preemptions = 0;
  for (const RequestRecord& record : engine.metrics().finished()) {
    preemptions += record.preemptions;
  }
  return preemptions;
}

void ExpectFreeListsDrained(Engine& engine) {
  const JengaAllocator& allocator = engine.kv().allocator();
  for (int g = 0; g < allocator.num_groups(); ++g) {
    EXPECT_EQ(allocator.group(g).GetFreeListStats().tracked_requests, 0)
        << "group " << g << " leaked affinity free-list state";
  }
}

TEST(OffloadEngine, SwapPreemptionRoundTripsUnderPressure) {
  Engine engine(PressureConfig(/*offload=*/true, /*swap_preemption=*/true));
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_GT(TotalPreemptions(engine), 0);
  // Every swap-in re-validated the per-group fingerprint (RestoreFromSwap CHECKs the round
  // trip is bit-identical), so surviving RunToCompletion proves the property held.
  EXPECT_GT(engine.metrics().swap_in_events, 0);
  EXPECT_EQ(engine.metrics().swap_in_events, engine.metrics().swap_out_events);
  engine.kv().CheckConsistency();
}

TEST(OffloadEngine, SwapRoundTripsWithPrefixCachingOn) {
  EngineConfig config = PressureConfig(/*offload=*/true, /*swap_preemption=*/true);
  config.enable_prefix_caching = true;
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_GT(engine.metrics().swap_in_events, 0);
  engine.kv().CheckConsistency();
}

TEST(OffloadEngine, SwapEliminatesRecomputedTokens) {
  Engine recompute(PressureConfig(/*offload=*/true, /*swap_preemption=*/false));
  SubmitPressureBatch(recompute);
  recompute.RunToCompletion();
  Engine swap(PressureConfig(/*offload=*/true, /*swap_preemption=*/true));
  SubmitPressureBatch(swap);
  swap.RunToCompletion();
  EXPECT_GT(recompute.metrics().recomputed_tokens, 0);
  EXPECT_EQ(recompute.metrics().swap_out_events, 0);
  EXPECT_LT(swap.metrics().recomputed_tokens, recompute.metrics().recomputed_tokens);
}

TEST(OffloadEngine, FreeListsDrainAfterPreemptionCycles) {
  // The affinity free lists must not accumulate per-request state through
  // preempt→re-admit→finish cycles, whichever preemption mode ran.
  for (const bool swap_mode : {false, true}) {
    Engine engine(PressureConfig(/*offload=*/true, swap_mode));
    SubmitPressureBatch(engine);
    engine.RunToCompletion();
    ASSERT_EQ(engine.metrics().CompletedRequests(), 4);
    EXPECT_GT(TotalPreemptions(engine), 0);
    ExpectFreeListsDrained(engine);
    engine.kv().CheckConsistency();
  }
  // And without the tier at all (Release(finished=true) path only).
  Engine plain(PressureConfig(/*offload=*/false, /*swap_preemption=*/false));
  SubmitPressureBatch(plain);
  plain.RunToCompletion();
  ExpectFreeListsDrained(plain);
}

TEST(OffloadEngine, FailedRequestsAlsoDrainFreeLists) {
  EngineConfig config = PressureConfig(/*offload=*/true, /*swap_preemption=*/true);
  const KvSpec spec = MakeJengaSpec(TinyFullModel(), 16, false);
  config.pool_bytes_override = spec.LcmPageBytes() * 8;
  Engine engine(config);
  engine.Submit(MakeRequest(0, TextPrompt(16 * 64), 4, 0.0));  // Can never fit.
  engine.Submit(MakeRequest(1, TextPrompt(64), 8, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().FailedRequests(), 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  ExpectFreeListsDrained(engine);
  engine.kv().CheckConsistency();
}

TEST(OffloadEngine, DeterministicAcrossRuns) {
  struct RunSummary {
    double now = 0.0;
    int64_t swap_out = 0;
    double stall = 0.0;
    std::vector<double> finish_times;
  };
  auto run = [] {
    Engine engine(PressureConfig(/*offload=*/true, /*swap_preemption=*/true));
    SubmitPressureBatch(engine);
    engine.RunToCompletion();
    RunSummary summary;
    summary.now = engine.now();
    summary.swap_out = engine.metrics().swap_out_events;
    summary.stall = engine.metrics().swap_stall_time;
    for (const RequestRecord& record : engine.metrics().finished()) {
      summary.finish_times.push_back(record.finish_time);
    }
    return summary;
  };
  const RunSummary a = run();
  const RunSummary b = run();
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.swap_out, b.swap_out);
  EXPECT_EQ(a.stall, b.stall);
  EXPECT_EQ(a.finish_times, b.finish_times);
}

TEST(OffloadEngine, HostPrefixCacheGivesEvictedPagesASecondChance) {
  // Serial identical-prefix requests against a pool too small to keep the prefix cached:
  // GPU-only forgets it between requests, the two-tier cache parks and promotes it back.
  auto make_config = [](bool tier) {
    const ModelConfig model = TinyFullModel();
    const KvSpec spec = MakeJengaSpec(model, 16, true);
    EngineConfig config;
    config.model = model;
    config.gpu = TestGpu();
    config.jenga = true;
    config.vision_cache = true;
    config.enable_prefix_caching = true;
    config.max_num_seqs_override = 1;
    config.pool_bytes_override = spec.LcmPageBytes() * 24;
    config.memory_sample_every = 1;
    if (tier) {
      config.offload.enabled = true;
      config.offload.swap_preemption = false;
      config.offload.host_prefix_cache = true;
      config.offload.host_pool_bytes = 1ll << 30;
    }
    return config;
  };
  auto run = [&](bool tier) {
    Engine engine(make_config(tier));
    // Two interleaved prefix families so each admission evicts the other family's pages.
    for (int i = 0; i < 8; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(192, /*base=*/100 + (i % 2) * 1000), 4,
                                /*arrival_time=*/static_cast<double>(i)));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
    engine.kv().CheckConsistency();
    return engine.metrics().cache_hit_tokens;
  };
  const int64_t gpu_only_hits = run(false);
  const int64_t two_tier_hits = run(true);
  EXPECT_GT(two_tier_hits, gpu_only_hits);
}

// --- Speculative decoding: one swap set must cover every manager's KV ---

ModelConfig TinyDraftModel() {
  ModelConfig model;
  model.name = "tiny-draft";
  model.params_b = 0.02;
  model.hidden_size = 128;
  model.max_context_len = 65536;
  model.compute_layers = 2;
  for (int i = 0; i < 2; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 32;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

TEST(OffloadSpecDecode, SwapRoundTripsAcrossAllManagers) {
  // kVllmManual runs two KvManagers; a swap set carries one fingerprint per manager and both
  // must restore together.
  for (const SpecStrategy strategy : {SpecStrategy::kJenga, SpecStrategy::kVllmManual}) {
    SCOPED_TRACE(SpecStrategyName(strategy));
    SpecDecodeConfig config;
    config.target = TinyFullModel();
    config.draft = TinyDraftModel();
    config.gpu = TestGpu();
    config.strategy = strategy;
    config.pool_bytes_override = 384 << 10;  // Fits ~2 of the 4 requests.
    config.seed = 7;
    config.offload.enabled = true;
    config.offload.host_pool_bytes = 1ll << 30;
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
    SpecDecodeEngine engine(config);
    for (int i = 0; i < 4; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(96), 64, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
    EXPECT_GT(engine.metrics().swap_in_events, 0);
    EXPECT_EQ(engine.metrics().swap_in_events, engine.metrics().swap_out_events);
    for (int m = 0; m < engine.num_managers(); ++m) {
      engine.manager(m).CheckConsistency();
    }
  }
}

}  // namespace
}  // namespace jenga
