file(REMOVE_RECURSE
  "CMakeFiles/jenga_workload.dir/datasets.cc.o"
  "CMakeFiles/jenga_workload.dir/datasets.cc.o.d"
  "libjenga_workload.a"
  "libjenga_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
