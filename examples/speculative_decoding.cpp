// Speculative decoding with two co-served models: the draft and target KV caches have very
// different per-token sizes, and Jenga's merged KV spec gives both models exact-fit pages
// from one shared pool (§6.1) — no manual pool splitting.

#include <cstdio>

#include "src/engine/spec_decode.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

using namespace jenga;

namespace {

double Run(SpecStrategy strategy) {
  SpecDecodeConfig config;
  config.target = Gemma2_9B();
  config.draft = Gemma2_2B();
  config.gpu = H100();
  config.strategy = strategy;
  config.seed = 11;
  SpecDecodeEngine engine(std::move(config));

  MmluProDataset dataset;
  Rng rng(12);
  for (Request& r : GenerateBatch(dataset, 16, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  std::printf("%-12s throughput %.3f req/s over %lld macro steps\n",
              SpecStrategyName(strategy), engine.metrics().RequestThroughput(),
              static_cast<long long>(engine.metrics().total_steps()));
  return engine.metrics().RequestThroughput();
}

}  // namespace

int main() {
  std::printf("Gemma-2 9B target + 2B draft, 16 requests (H100):\n\n");
  Run(SpecStrategy::kVllmMax);
  Run(SpecStrategy::kVllmManual);
  Run(SpecStrategy::kJenga);
  std::printf(
      "\nJenga registers both models' layer groups in one allocator: the LCM page is\n"
      "compatible with every group, so pages flow between draft and target KV on demand.\n");
  return 0;
}
