// Hybrid-attention serving: Ministral-style sliding-window + full attention under memory
// pressure, comparing Jenga against a PagedAttention-style homogeneous baseline on the same
// long-document workload (the scenario behind Figs. 15 and 16).

#include <cstdio>

#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

using namespace jenga;

namespace {

void Serve(const char* label, bool jenga) {
  const ModelConfig model = Ministral8B();
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.enable_prefix_caching = false;
  Engine engine(std::move(config));

  LongDocDataset dataset;  // 55k–110k-token inputs, 50–100-token outputs.
  Rng rng(7);
  for (Request& r : GenerateBatch(dataset, 12, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();

  const KvManager::MemoryStats stats = engine.kv().GetMemoryStats();
  std::printf("%-8s  wall=%6.1fs  mean decode batch=%.2f  steps=%lld\n", label, engine.now(),
              engine.metrics().MeanDecodeBatch(),
              static_cast<long long>(engine.metrics().total_steps()));
  (void)stats;
}

}  // namespace

int main() {
  std::printf("Ministral 8B, 12 long-document requests at once (H100):\n\n");
  Serve("vLLM", /*jenga=*/false);
  Serve("Jenga", /*jenga=*/true);
  std::printf(
      "\nJenga frees each sliding-window layer's out-of-window KV while the request runs,\n"
      "so more requests decode together and the batch finishes sooner.\n");
  return 0;
}
