#include "src/cluster/fleet_frontend.h"

#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/core/block_hash.h"

namespace jenga {

FleetFrontend::FleetFrontend(FleetConfig config, ServingFrontend::Options options)
    : config_(std::move(config)), supervisor_(config_.num_replicas) {
  JENGA_CHECK_GT(config_.num_replicas, 0);
  JENGA_CHECK_GT(config_.spill_queue_depth, 0);

  if (!config_.replica_pool_bytes.empty()) {
    JENGA_CHECK_EQ(static_cast<int>(config_.replica_pool_bytes.size()), config_.num_replicas)
        << "replica_pool_bytes must name every replica (or be empty)";
  }
  loads_.reserve(static_cast<size_t>(config_.num_replicas));
  fronts_.reserve(static_cast<size_t>(config_.num_replicas));
  for (int i = 0; i < config_.num_replicas; ++i) {
    loads_.push_back(std::make_unique<ReplicaLoad>());
    ReplicaLoad* load = loads_.back().get();
    // Chain load publication before the caller's observer: the engine thread snapshots its
    // own queue depths and occupancy after every step, which is the freshest view routing
    // can get without touching the engine from a client thread.
    ServingFrontend::Options replica_options = options;
    const std::function<void(Engine&)> user_observer = options.step_observer;
    replica_options.step_observer = [load, user_observer](Engine& engine) {
      load->waiting.store(engine.num_waiting(), std::memory_order_relaxed);
      load->running.store(engine.num_running(), std::memory_order_relaxed);
      const KvManager::MemoryStats stats = engine.kv().GetMemoryStats();
      load->occupancy.store(
          stats.pool_bytes > 0
              ? static_cast<double>(stats.used_bytes) / static_cast<double>(stats.pool_bytes)
              : 0.0,
          std::memory_order_relaxed);
      load->draining.store(engine.elastic_draining(), std::memory_order_relaxed);
      if (user_observer) {
        user_observer(engine);
      }
    };
    EngineConfig engine = config_.engine;
    if (!config_.replica_pool_bytes.empty() &&
        config_.replica_pool_bytes[static_cast<size_t>(i)] > 0) {
      engine.pool_bytes_override = config_.replica_pool_bytes[static_cast<size_t>(i)];
    }
    fronts_.push_back(
        std::make_unique<ServingFrontend>(std::move(engine), std::move(replica_options)));
  }

  const KvSpec& spec = fronts_[0]->engine().kv().alloc_spec();
  routing_group_ = config_.engine.enable_prefix_caching ? PickRoutingGroup(spec) : -1;
  if (routing_group_ >= 0) {
    routing_block_size_ = spec.groups[static_cast<size_t>(routing_group_)].tokens_per_page;
    routing_salt_ = GroupChainSalt(routing_group_);
  }
  index_ = std::make_unique<ClusterPrefixIndex>(config_.num_replicas, routing_group_);
  // Sinks attach before Start(), so no engine thread is touching the allocator yet.
  for (int i = 0; i < config_.num_replicas; ++i) {
    fronts_[static_cast<size_t>(i)]->engine().kv().allocator_mutable().SetResidencySink(
        index_->feed(i));
  }
  rr_cursor_.store(
      static_cast<int64_t>(config_.seed % static_cast<uint64_t>(config_.num_replicas)),
      std::memory_order_relaxed);
}

FleetFrontend::~FleetFrontend() { Shutdown(); }

void FleetFrontend::Start() {
  for (const auto& front : fronts_) {
    front->Start();
  }
}

void FleetFrontend::Shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // Let an in-flight KillReplica finish re-routing before the survivor queues close.
  std::lock_guard<std::mutex> lock(kill_mu_);
  for (const auto& front : fronts_) {
    front->Shutdown();  // No-op for killed replicas.
  }
}

bool FleetFrontend::KillReplica(int replica) {
  JENGA_CHECK_GE(replica, 0);
  JENGA_CHECK_LT(replica, num_replicas());
  std::lock_guard<std::mutex> lock(kill_mu_);
  if (shut_down_.load(std::memory_order_acquire)) {
    return false;
  }
  if (!supervisor_.alive(replica) || supervisor_.num_alive() <= 1) {
    return false;
  }
  replicas_killed_.fetch_add(1, std::memory_order_relaxed);
  // MarkDead before Kill: a producer that observes the closed queue (acquire) also observes
  // the death, so its re-route loop picks a survivor.
  supervisor_.MarkDead(replica);
  ServingFrontend& dead = *fronts_[static_cast<size_t>(replica)];
  dead.Kill();
  // The dead engine is quiescent now (thread joined): silence its residency events and drop
  // its summary so routing stops scoring it immediately.
  dead.engine().kv().allocator_mutable().SetResidencySink(nullptr);
  index_->PurgeReplica(replica);
  for (ServingFrontend::AbandonedWork& w : dead.HarvestAbandoned()) {
    if (w.engine_side) {
      death_cancels_.fetch_add(1, std::memory_order_relaxed);
    }
    // Re-place on a survivor, adopting the client's original stream. Survivor queues cannot
    // close while we hold kill_mu_ (Shutdown and other kills wait on it), so the only
    // transient failure is a full queue, which SubmitWithStream waits out.
    const RouteDecision decision = Decide(w.request);
    {
      std::lock_guard<std::mutex> plock(placement_mu_);
      placement_[w.request.id] = decision.replica;
    }
    if (fronts_[static_cast<size_t>(decision.replica)]->SubmitWithStream(w.request,
                                                                         w.stream)) {
      rerouted_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Unreachable by construction; keep the stream terminal and the ledger balanced anyway.
    lost_on_shutdown_.fetch_add(1, std::memory_order_relaxed);
    w.stream->finish_wall.store(
        fronts_[static_cast<size_t>(decision.replica)]->WallSeconds(),
        std::memory_order_release);
    w.stream->phase.store(StreamPhase::kFailed, std::memory_order_release);
  }
  return true;
}

RouteDecision FleetFrontend::Decide(const Request& request) {
  const int n = num_replicas();
  std::vector<ReplicaLoadView> loads(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ReplicaLoad& load = *loads_[static_cast<size_t>(i)];
    loads[static_cast<size_t>(i)].waiting = load.waiting.load(std::memory_order_relaxed);
    loads[static_cast<size_t>(i)].running = load.running.load(std::memory_order_relaxed);
    loads[static_cast<size_t>(i)].occupancy = load.occupancy.load(std::memory_order_relaxed);
    loads[static_cast<size_t>(i)].draining = load.draining.load(std::memory_order_relaxed);
    // Dead replicas are unroutable; at least one stays alive (KillReplica refuses the last).
    loads[static_cast<size_t>(i)].alive = supervisor_.alive(i);
  }
  std::vector<int64_t> affinity(static_cast<size_t>(n), 0);
  if (config_.policy == RoutePolicy::kPrefixAffinity && routing_group_ >= 0) {
    const std::vector<BlockHash> chain =
        ChainBlockHashes(request.prompt.tokens, routing_block_size_, routing_salt_);
    for (int i = 0; i < n; ++i) {
      affinity[static_cast<size_t>(i)] = index_->ResidentPrefixBlocks(i, chain);
    }
  }
  const int64_t slot = config_.policy == RoutePolicy::kRoundRobin
                           ? rr_cursor_.fetch_add(1, std::memory_order_relaxed)
                           : rr_cursor_.load(std::memory_order_relaxed);
  return DecideRoute(config_.policy, config_.spill_queue_depth, config_.spill_occupancy, loads,
                     affinity, slot);
}

void FleetFrontend::CountDecision(const RouteDecision& decision) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  switch (decision.reason) {
    case RouteDecision::Reason::kAffinity:
      routed_affinity_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RouteDecision::Reason::kSpill:
      routed_spill_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RouteDecision::Reason::kLeastLoaded:
      routed_least_loaded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RouteDecision::Reason::kRoundRobin:
      routed_round_robin_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (decision.all_saturated) {
    saturated_submits_.fetch_add(1, std::memory_order_relaxed);
  }
}

StreamHandle FleetFrontend::SubmitAsync(Request request) {
  auto stream = std::make_shared<RequestStream>();
  const RequestId id = request.id;
  for (;;) {
    if (shut_down_.load(std::memory_order_acquire)) {
      // Clean refusal: no routing, no placement, no replica queue touched.
      rejected_submits_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(placement_mu_);
        placement_.erase(id);  // Drop the entry a failed earlier attempt may have left.
      }
      stream->phase.store(StreamPhase::kRejected, std::memory_order_release);
      return stream;
    }
    const RouteDecision decision = Decide(request);
    {
      // Placement is published before the push so a kill that harvests the accepted op
      // always finds (and overwrites) it.
      std::lock_guard<std::mutex> lock(placement_mu_);
      placement_[id] = decision.replica;
    }
    if (fronts_[static_cast<size_t>(decision.replica)]->SubmitWithStream(request, stream)) {
      CountDecision(decision);
      return stream;
    }
    // The chosen replica's queue closed under us — it died (re-route) or the fleet shut
    // down (next iteration rejects cleanly).
  }
}

Status FleetFrontend::TrySubmitAsync(Request request, StreamHandle* out) {
  JENGA_CHECK(out != nullptr);
  auto stream = std::make_shared<RequestStream>();
  const RequestId id = request.id;
  for (;;) {
    if (shut_down_.load(std::memory_order_acquire)) {
      rejected_submits_.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition("fleet frontend is shut down");
    }
    const RouteDecision decision = Decide(request);
    if (decision.all_saturated) {
      backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("every live replica is saturated");
    }
    {
      std::lock_guard<std::mutex> lock(placement_mu_);
      placement_[id] = decision.replica;
    }
    switch (fronts_[static_cast<size_t>(decision.replica)]->TrySubmitWithStream(request,
                                                                                stream)) {
      case ServingFrontend::TrySubmitResult::kAccepted:
        CountDecision(decision);
        *out = std::move(stream);
        return Status::Ok();
      case ServingFrontend::TrySubmitResult::kQueueFull: {
        // The replica queue can still be full (saturation thresholds and queue capacity are
        // independent); surface that as backpressure too rather than blocking.
        std::lock_guard<std::mutex> lock(placement_mu_);
        placement_.erase(id);
        backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted("replica queue full");
      }
      case ServingFrontend::TrySubmitResult::kClosed:
        break;  // Replica died or fleet shut down; loop re-checks and re-routes.
    }
  }
}

void FleetFrontend::CancelAsync(RequestId id) {
  int replica = -1;
  {
    std::lock_guard<std::mutex> lock(placement_mu_);
    const auto it = placement_.find(id);
    if (it != placement_.end()) {
      replica = it->second;
    }
  }
  if (replica < 0) {
    return;
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  fronts_[static_cast<size_t>(replica)]->CancelAsync(id);
}

void FleetFrontend::RunClients(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    clients.emplace_back(fn, i);
  }
  for (std::thread& t : clients) {
    t.join();
  }
}

FleetCounters FleetFrontend::counters() const {
  FleetCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.routed_affinity = routed_affinity_.load(std::memory_order_relaxed);
  c.routed_spill = routed_spill_.load(std::memory_order_relaxed);
  c.routed_least_loaded = routed_least_loaded_.load(std::memory_order_relaxed);
  c.routed_round_robin = routed_round_robin_.load(std::memory_order_relaxed);
  c.saturated_submits = saturated_submits_.load(std::memory_order_relaxed);
  c.backpressure_rejections = backpressure_rejections_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.rejected_submits = rejected_submits_.load(std::memory_order_relaxed);
  c.replica_deaths = replicas_killed_.load(std::memory_order_relaxed);
  c.death_cancels = death_cancels_.load(std::memory_order_relaxed);
  c.rerouted = rerouted_.load(std::memory_order_relaxed);
  c.lost_on_shutdown = lost_on_shutdown_.load(std::memory_order_relaxed);
  return c;
}

ServingFrontend::Counters FleetFrontend::frontend_counters() const {
  ServingFrontend::Counters total;
  for (const auto& front : fronts_) {
    const ServingFrontend::Counters c = front->counters();
    total.submitted += c.submitted;
    total.rejected += c.rejected;
    total.admitted += c.admitted;
    total.cancelled_queued += c.cancelled_queued;
    total.finished += c.finished;
    total.cancelled += c.cancelled;
    total.failed += c.failed;
    total.harvested_queued += c.harvested_queued;
    total.harvested_live += c.harvested_live;
  }
  return total;
}

int FleetFrontend::PlacementOf(RequestId id) const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  const auto it = placement_.find(id);
  return it == placement_.end() ? -1 : it->second;
}

}  // namespace jenga
