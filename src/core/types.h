// Shared identifier types for the two-level allocator.

#ifndef JENGA_SRC_CORE_TYPES_H_
#define JENGA_SRC_CORE_TYPES_H_

#include <cstdint>

namespace jenga {

// Logical time used for LRU ordering. The engine advances it once per scheduler step.
using Tick = int64_t;

// Identity of the request a page is associated with (request-aware allocation, §4.3).
using RequestId = int64_t;
inline constexpr RequestId kNoRequest = -1;

// Index of a large (LCM-sized) page within the KV pool.
using LargePageId = int32_t;
inline constexpr LargePageId kNoLargePage = -1;

// Index of a small page within one group's allocator. Encodes (large page, slot):
// id = large_page * pages_per_large + slot, so ids are stable while the large page is held.
using SmallPageId = int64_t;
inline constexpr SmallPageId kNoSmallPage = -1;

// Content hash identifying the token-block a cached page holds (prefix caching).
using BlockHash = uint64_t;

// Lifecycle of a small page (§5.4): empty (no valid KV, unused), evictable (valid cached KV,
// no user), used (referenced by at least one running request).
enum class PageState : uint8_t {
  kEmpty,
  kEvictable,
  kUsed,
};

// Observer for prefix-cache pages destroyed by capacity eviction (Evictor victims and
// whole-large-page reclaims). The host offload tier implements this to give evicted pages a
// second chance in host memory; with no sink installed, eviction destroys the content as
// before. Lives in core so SmallPageAllocator need not depend on the offload subsystem.
class CacheEvictionSink {
 public:
  virtual ~CacheEvictionSink() = default;
  virtual void OnCacheEvicted(int group_index, BlockHash hash, int64_t page_bytes,
                              int64_t prefix_length, Tick last_access) = 0;
};

// Observer for prefix-cache *index membership*: a hash becomes resident when the group
// allocator indexes it (SetContentHash, or Release with keep_cached) and non-resident when
// its index entry is dropped (capacity eviction, whole-large-page reclaim, recompute with a
// new boundary, or owner-declared obsolescence). Events mirror the index's key set exactly —
// one OnHashResident per key insert, one OnHashNonResident per key erase — so a listener
// maintaining a set sees precisely the hashes LookupCached would find. The cluster layer
// implements this to keep per-replica block-hash summaries for prefix-affinity routing.
// With no sink installed (the default) the allocator's behavior is unchanged; the hooks cost
// one null test per index transition.
class CacheResidencySink {
 public:
  virtual ~CacheResidencySink() = default;
  virtual void OnHashResident(int group_index, BlockHash hash) = 0;
  virtual void OnHashNonResident(int group_index, BlockHash hash) = 0;
};

[[nodiscard]] inline const char* PageStateName(PageState state) {
  switch (state) {
    case PageState::kEmpty:
      return "empty";
    case PageState::kEvictable:
      return "evictable";
    case PageState::kUsed:
      return "used";
  }
  return "unknown";
}

}  // namespace jenga

#endif  // JENGA_SRC_CORE_TYPES_H_
