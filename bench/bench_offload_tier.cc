// Host-memory KV offload tier: swap-based preemption and the two-tier prefix cache, swept
// over host-pool size × PCIe bandwidth on the two workloads where the GPU pool is the
// bottleneck. Part A reruns the Fig. 15 long-document workload (Ministral 8B, 20 requests at
// once, 55k–110k-token inputs — preemption-heavy) comparing recompute-only preemption against
// the swap crossover at several PCIe speeds. Part B reruns the Fig. 17 arXiv-QA workload
// (Gemma-2 27B, serial closed loop, capacity-limited prefix cache) with Evictor victims
// parked in host memory and promoted back on a hit. Both parts are deterministic (fixed
// seeds); with the tier disabled the engine is byte-identical to the tier-less build, so the
// baselines here are exactly the fig15/fig17 engines.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct SwapResult {
  int64_t recomputed = 0;
  int64_t swap_out = 0;
  int64_t swap_in = 0;
  int64_t fallbacks = 0;
  double stall = 0.0;
  int64_t steps = 0;
  double wall = 0.0;
  double tok_s = 0.0;
};

// Part A: the fig15 long-document run with the offload tier on. `swap_preemption` off is the
// recompute-only baseline (identical scheduling, every preemption discards computed KV).
SwapResult RunLongDoc(bool swap_preemption, double pcie_gbps, int host_gb) {
  EngineConfig config = JengaProfile(Ministral8B(), H100());
  config.enable_prefix_caching = false;  // The workload has no shared prefixes.
  config.memory_sample_every = 0;
  // Fig. 15 sizes the pool so the batch fits; shrink it so decode growth forces preemptions —
  // the regime the offload tier targets.
  config.memory_fraction = 0.45;
  config.offload.enabled = true;
  config.offload.swap_preemption = swap_preemption;
  config.offload.host_prefix_cache = false;  // Part B isolates the cache path.
  config.offload.host_pool_bytes = static_cast<int64_t>(host_gb) << 30;
  config.offload.pcie.h2d_bandwidth = pcie_gbps * 1e9;
  config.offload.pcie.d2h_bandwidth = pcie_gbps * 1e9;
  Engine engine(std::move(config));
  LongDocDataset dataset;
  Rng rng(0xF15);
  for (Request& r : GenerateBatch(dataset, 20, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  SwapResult result;
  result.recomputed = engine.metrics().recomputed_tokens;
  result.swap_out = engine.metrics().swap_out_events;
  result.swap_in = engine.metrics().swap_in_events;
  result.fallbacks = engine.metrics().swap_fallback_events;
  result.stall = engine.metrics().swap_stall_time;
  result.steps = engine.metrics().total_steps();
  result.wall = engine.now();
  result.tok_s = engine.metrics().TokenThroughput();
  return result;
}

struct CacheResult {
  double hit_rate = 0.0;
  int64_t stored = 0;
  int64_t promoted = 0;
  double stall = 0.0;
  double req_s = 0.0;
};

// Part B: the fig17 arXiv-QA run (10 articles × 12 questions, capacity knee well past what
// the GPU cache holds). `tier` off is the plain fig17 Jenga engine.
CacheResult RunArxivQa(bool tier, int host_gb, double pcie_gbps) {
  constexpr int kArticles = 10;
  constexpr int kQuestions = 12;
  EngineConfig config = JengaProfile(Gemma2_27B(), H100());
  config.memory_sample_every = 0;
  config.max_num_seqs_override = 1;
  config.memory_fraction = 0.55;
  if (tier) {
    config.offload.enabled = true;
    config.offload.swap_preemption = false;  // Part A isolates the swap path.
    config.offload.host_prefix_cache = true;
    config.offload.host_pool_bytes = static_cast<int64_t>(host_gb) << 30;
    config.offload.pcie.h2d_bandwidth = pcie_gbps * 1e9;
    config.offload.pcie.d2h_bandwidth = pcie_gbps * 1e9;
  }
  Engine engine(std::move(config));
  ArxivQaDataset dataset(kArticles, 7200, 7800, /*seed=*/0xF17 + kArticles,
                         /*output_lo=*/16, /*output_hi=*/48);
  Rng rng(0x17AA + kArticles);
  int64_t total_prompt_tokens = 0;
  RequestId id = 0;
  for (int q = 0; q < kArticles * kQuestions; ++q) {
    const int article = static_cast<int>(rng.UniformInt(0, kArticles - 1));
    WorkloadItem item = dataset.SampleForArticle(article, rng);
    total_prompt_tokens += item.prompt.size();
    engine.Submit(MakeRequest(id++, std::move(item.prompt), item.output_len,
                              /*arrival_time=*/0.0));
  }
  engine.RunToCompletion();
  CacheResult result;
  result.hit_rate = static_cast<double>(engine.metrics().cache_hit_tokens) /
                    static_cast<double>(total_prompt_tokens);
  if (engine.swap() != nullptr) {
    result.stored = engine.swap()->stats().host_pages_stored;
    result.promoted = engine.swap()->stats().host_pages_promoted;
  }
  result.stall = engine.metrics().swap_stall_time;
  result.req_s = engine.metrics().RequestThroughput();
  return result;
}

void Run() {
  PrintHeader(
      "Offload tier, part A: preempt-by-swap vs recompute — Ministral 8B, 20 long-doc "
      "requests (H100)");
  PrintRow({{22, "preemption"},
            {8, "pcie"},
            {8, "host"},
            {12, "recomputed"},
            {10, "swap o/i"},
            {10, "stall"},
            {8, "steps"},
            {10, "wall"},
            {12, "dec tok/s"}});
  PrintRule();
  struct SwapCase {
    const char* name;
    bool swap;
    double pcie_gbps;
    int host_gb;
  };
  const std::vector<SwapCase> cases = {
      {"recompute-only", false, 32.0, 64}, {"swap", true, 8.0, 16},  {"swap", true, 8.0, 64},
      {"swap", true, 16.0, 16},            {"swap", true, 16.0, 64}, {"swap", true, 32.0, 16},
      {"swap", true, 32.0, 64},
  };
  std::vector<std::function<SwapResult()>> tasks;
  for (const SwapCase& c : cases) {
    tasks.emplace_back([c] { return RunLongDoc(c.swap, c.pcie_gbps, c.host_gb); });
  }
  const std::vector<SwapResult> results = ParallelSweep(tasks);
  for (size_t i = 0; i < cases.size(); ++i) {
    const SwapCase& c = cases[i];
    const SwapResult& r = results[i];
    PrintRow({{22, c.name},
              {8, Fmt("%.0fG", c.pcie_gbps)},
              {8, Fmt("%.0fG", static_cast<double>(c.host_gb))},
              {12, FmtI(r.recomputed)},
              {10, FmtI(r.swap_out) + "/" + FmtI(r.swap_in)},
              {10, Fmt("%.2fs", r.stall)},
              {8, FmtI(r.steps)},
              {10, Fmt("%.1fs", r.wall)},
              {12, Fmt("%.1f", r.tok_s)}});
  }

  PrintHeader(
      "Offload tier, part B: two-tier prefix cache — Gemma-2 27B, 10 arXiv articles x 12 "
      "questions (H100)");
  PrintRow({{22, "cache"},
            {8, "pcie"},
            {8, "host"},
            {12, "hit rate"},
            {12, "parked"},
            {12, "promoted"},
            {10, "stall"},
            {12, "req/s"}});
  PrintRule();
  struct CacheCase {
    const char* name;
    bool tier;
    int host_gb;
    double pcie_gbps;
  };
  const std::vector<CacheCase> cache_cases = {
      {"gpu-only", false, 0, 0.0},    {"two-tier", true, 8, 8.0},  {"two-tier", true, 8, 32.0},
      {"two-tier", true, 32, 8.0},    {"two-tier", true, 32, 32.0},
  };
  std::vector<std::function<CacheResult()>> cache_tasks;
  for (const CacheCase& c : cache_cases) {
    cache_tasks.emplace_back([c] { return RunArxivQa(c.tier, c.host_gb, c.pcie_gbps); });
  }
  const std::vector<CacheResult> cache_results = ParallelSweep(cache_tasks);
  for (size_t i = 0; i < cache_cases.size(); ++i) {
    const CacheCase& c = cache_cases[i];
    const CacheResult& r = cache_results[i];
    PrintRow({{22, c.name},
              {8, c.tier ? Fmt("%.0fG", c.pcie_gbps) : std::string("-")},
              {8, c.tier ? Fmt("%.0fG", static_cast<double>(c.host_gb)) : std::string("-")},
              {12, Pct(r.hit_rate)},
              {12, FmtI(r.stored)},
              {12, FmtI(r.promoted)},
              {10, Fmt("%.2fs", r.stall)},
              {12, Fmt("%.3f", r.req_s)}});
  }
  std::printf(
      "\nShape checks: swapping eliminates most recomputed tokens once PCIe is fast enough\n"
      "for the crossover to pick it (>=16 GB/s), raising decode throughput over the\n"
      "recompute-only baseline; the two-tier cache lifts the hit rate past the GPU-only\n"
      "capacity knee, paying a bounded promotion stall.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
