// Concurrent fleet serving: N ServingFrontends (one engine thread per replica) behind the
// same prefix-affinity routing policy as FleetRouter. Client threads call SubmitAsync from
// anywhere; the routing decision runs on the submitting thread against (a) the shared
// ClusterPrefixIndex, fed by each replica's engine thread through the allocator residency
// sinks, and (b) lock-free per-replica load snapshots that each engine thread publishes
// after every step.
//
// Unlike FleetRouter — the seeded single-threaded determinism reference — this path is
// deliberately NOT deterministic: load snapshots lag by up to a step and concurrent submits
// race for the same affine replica. Routing is advisory (see prefix_index.h), so the races
// affect locality, never correctness. Per-replica admission backpressure surfaces through
// TrySubmitAsync, which refuses (no side effects) while every replica is saturated.
//
// Failure injection (DESIGN.md §10): KillReplica models an asynchronously detected replica
// death. The dead replica is marked unroutable, its engine thread is hard-stopped and
// joined, its index summary purged, and its abandoned work harvested and re-submitted to
// survivors — adopting the clients' original streams, so every stream still reaches a
// terminal phase. Submits racing the death retry transparently (their replica's queue
// closes, they re-route); a cancel racing the kill window may be dropped, in which case the
// request simply completes on the survivor — acceptable asynchronous cancel semantics.

#ifndef JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_
#define JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cluster/fleet_router.h"
#include "src/cluster/prefix_index.h"
#include "src/cluster/replica_supervisor.h"
#include "src/common/status.h"
#include "src/engine/frontend.h"

namespace jenga {

class FleetFrontend {
 public:
  // `options` applies to every replica frontend. A caller-supplied step_observer is chained
  // after the frontend's own load publication (the stress tests' auditor hook).
  explicit FleetFrontend(FleetConfig config, ServingFrontend::Options options = {});
  ~FleetFrontend();

  FleetFrontend(const FleetFrontend&) = delete;
  FleetFrontend& operator=(const FleetFrontend&) = delete;

  // --- Client API (any thread) ---

  // Routes and submits; blocks while the chosen replica's queue is full, and re-routes if
  // the replica dies mid-submit. After Shutdown() the stream comes back kRejected without
  // touching any replica queue. Request ids must be fleet-unique (NextRequestId()).
  StreamHandle SubmitAsync(Request request);
  // Backpressure-aware variant. kFailedPrecondition — cleanly, without racing the drained
  // queues — after Shutdown(); kResourceExhausted when every replica is saturated per the
  // spill thresholds or the chosen replica's queue is full. No side effects on failure.
  // On success *out holds the stream.
  [[nodiscard]] Status TrySubmitAsync(Request request, StreamHandle* out);
  // Cancels wherever the request was routed; unknown ids are a no-op.
  void CancelAsync(RequestId id);
  [[nodiscard]] RequestId NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Lifecycle ---

  void Start();
  // Shuts every replica frontend down (drain + join); idempotent, also run by the destructor.
  // Waits for an in-flight KillReplica to finish re-routing first.
  void Shutdown();
  // Spawns `n` client threads running `fn(client_index)` and joins them all.
  void RunClients(int n, const std::function<void(int)>& fn);

  // --- Failure injection (any thread; kills serialize) ---

  // Kills a live replica: marks it unroutable, hard-stops and joins its engine thread,
  // detaches its residency sink, purges its index summary, and re-submits every harvested
  // request to a surviving replica — the clients' streams move with the work. Returns false
  // without side effects when the replica is already dead, it is the last one alive, or the
  // fleet is shut down. Must not race ~FleetFrontend.
  bool KillReplica(int replica);
  [[nodiscard]] bool ReplicaAlive(int i) const { return supervisor_.alive(i); }
  [[nodiscard]] const ReplicaSupervisor& supervisor() const { return supervisor_; }

  // --- Introspection ---

  [[nodiscard]] int num_replicas() const { return static_cast<int>(fronts_.size()); }
  [[nodiscard]] ServingFrontend& replica(int i) { return *fronts_[static_cast<size_t>(i)]; }
  [[nodiscard]] const ClusterPrefixIndex& prefix_index() const { return *index_; }
  [[nodiscard]] bool routing_enabled() const { return routing_group_ >= 0; }
  // Routing counters snapshot (atomics; exact after Shutdown).
  [[nodiscard]] FleetCounters counters() const;
  // Sum of the replica frontends' own counters (exact after Shutdown).
  [[nodiscard]] ServingFrontend::Counters frontend_counters() const;
  // Replica the request was routed to; -1 for unknown ids.
  [[nodiscard]] int PlacementOf(RequestId id) const;

 private:
  struct ReplicaLoad {
    std::atomic<int64_t> waiting{0};
    std::atomic<int64_t> running{0};
    std::atomic<double> occupancy{0.0};
    std::atomic<bool> draining{false};
  };

  [[nodiscard]] RouteDecision Decide(const Request& request);
  void CountDecision(const RouteDecision& decision);

  FleetConfig config_;
  ReplicaSupervisor supervisor_;
  std::unique_ptr<ClusterPrefixIndex> index_;
  int routing_group_ = -1;
  int routing_block_size_ = 0;
  uint64_t routing_salt_ = 0;
  std::vector<std::unique_ptr<ReplicaLoad>> loads_;
  std::vector<std::unique_ptr<ServingFrontend>> fronts_;

  std::atomic<RequestId> next_id_{1};
  std::atomic<int64_t> rr_cursor_{0};
  std::atomic<bool> shut_down_{false};
  // Serializes KillReplica calls against each other and against Shutdown, so a kill's
  // harvest-and-re-route always completes against open survivor queues.
  std::mutex kill_mu_;

  // Forever-growing like the engines' own request maps (same asymptotics); guarded because
  // submit and cancel race across client threads.
  mutable std::mutex placement_mu_;
  std::unordered_map<RequestId, int> placement_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> routed_affinity_{0};
  std::atomic<int64_t> routed_spill_{0};
  std::atomic<int64_t> routed_least_loaded_{0};
  std::atomic<int64_t> routed_round_robin_{0};
  std::atomic<int64_t> saturated_submits_{0};
  std::atomic<int64_t> backpressure_rejections_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> rejected_submits_{0};
  std::atomic<int64_t> replicas_killed_{0};
  std::atomic<int64_t> death_cancels_{0};
  std::atomic<int64_t> rerouted_{0};
  std::atomic<int64_t> lost_on_shutdown_{0};
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_
