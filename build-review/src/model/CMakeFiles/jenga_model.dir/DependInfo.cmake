
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/kv_spec.cc" "src/model/CMakeFiles/jenga_model.dir/kv_spec.cc.o" "gcc" "src/model/CMakeFiles/jenga_model.dir/kv_spec.cc.o.d"
  "/root/repo/src/model/model_config.cc" "src/model/CMakeFiles/jenga_model.dir/model_config.cc.o" "gcc" "src/model/CMakeFiles/jenga_model.dir/model_config.cc.o.d"
  "/root/repo/src/model/model_zoo.cc" "src/model/CMakeFiles/jenga_model.dir/model_zoo.cc.o" "gcc" "src/model/CMakeFiles/jenga_model.dir/model_zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/jenga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
