// Simulated GPU: memory capacity plus an analytic step-time model. This replaces the paper's
// H100/L4 hardware (see DESIGN.md): absolute times are approximate, but they scale correctly
// with model size, batched tokens, and KV traffic, which is what the throughput/latency
// *shapes* depend on.

#ifndef JENGA_SRC_ENGINE_GPU_H_
#define JENGA_SRC_ENGINE_GPU_H_

#include <cstdint>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/model/model_config.h"

namespace jenga {

struct GpuSpec {
  std::string name;
  int64_t memory_bytes = 0;
  // Effective sustained compute (FLOP/s) for transformer inference kernels.
  double flops = 0.0;
  // Effective memory bandwidth (bytes/s); decode steps are bandwidth-bound.
  double mem_bandwidth = 0.0;
  // Scheduler budget: max tokens computed per engine step (chunked prefill limit).
  int max_batched_tokens = 0;
  // Max concurrently running sequences.
  int max_num_seqs = 0;
  // Memory reserved for activations / CUDA graphs (the "reserved" slice in Fig. 16).
  int64_t reserved_bytes = 0;
};

// NVIDIA H100 80GB (the paper's default platform).
[[nodiscard]] GpuSpec H100();
// NVIDIA L4 24GB (the paper's small platform).
[[nodiscard]] GpuSpec L4();

// Analytic per-step cost model.
class GpuSim {
 public:
  GpuSim(GpuSpec spec, const ModelConfig& model);

  // Time to compute one engine step that processes `new_tokens` fresh tokens (prefill chunks
  // plus one per decode request) while reading `kv_bytes_read` of KV cache.
  [[nodiscard]] double StepTime(int64_t new_tokens, int64_t kv_bytes_read) const;

  // Time for the vision encoder to embed `image_tokens` image tokens.
  [[nodiscard]] double VisionEncodeTime(int64_t image_tokens) const;

  // KV pool available after weights and reserved memory; check-fails if the model does not fit.
  [[nodiscard]] int64_t KvPoolBytes() const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

  // Fault injection (nullptr = disabled). The engine consults InjectStepFault once per
  // time-advancing step; true means the step's results are lost and must be recomputed.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  [[nodiscard]] bool InjectStepFault() {
    return fault_ != nullptr && fault_->Fire(FaultSite::kGpuStep);
  }

 private:
  GpuSpec spec_;
  FaultInjector* fault_ = nullptr;
  double model_params_ = 0.0;
  double vision_params_ = 0.0;
  int64_t weight_bytes_ = 0;
  int weight_dtype_bytes_ = 2;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_GPU_H_
