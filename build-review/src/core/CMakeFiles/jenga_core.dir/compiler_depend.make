# Empty compiler generated dependencies file for jenga_core.
# This may be replaced when dependencies are built.
