#include "src/core/small_page_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace jenga {

SmallPageAllocator::SmallPageAllocator(int group_index, KvGroupSpec spec, LcmAllocator* lcm,
                                       LargePageProvider* provider)
    : group_index_(group_index), spec_(std::move(spec)), lcm_(lcm), provider_(provider) {
  JENGA_CHECK(lcm_ != nullptr);
  JENGA_CHECK(provider_ != nullptr);
  JENGA_CHECK_GT(spec_.page_bytes, 0);
  JENGA_CHECK_EQ(lcm_->large_page_bytes() % spec_.page_bytes, 0)
      << "group page size must divide the LCM page size";
  pages_per_large_ = static_cast<int>(lcm_->large_page_bytes() / spec_.page_bytes);
}

SmallPageAllocator::SlotMeta& SmallPageAllocator::Meta(SmallPageId page) {
  const auto it = larges_.find(LargeOf(page));
  JENGA_CHECK(it != larges_.end()) << "page " << page << " not resident in group " << group_index_;
  return it->second.slots[static_cast<size_t>(SlotOf(page))];
}

const SmallPageAllocator::SlotMeta& SmallPageAllocator::Meta(SmallPageId page) const {
  const auto it = larges_.find(LargeOf(page));
  JENGA_CHECK(it != larges_.end()) << "page " << page << " not resident in group " << group_index_;
  return it->second.slots[static_cast<size_t>(SlotOf(page))];
}

SmallPageAllocator::LargeEntry& SmallPageAllocator::Entry(LargePageId large) {
  const auto it = larges_.find(large);
  JENGA_CHECK(it != larges_.end())
      << "large page " << large << " not resident in group " << group_index_;
  return it->second;
}

bool SmallPageAllocator::IsValidEmpty(const FreeRef& ref) const {
  const auto it = larges_.find(LargeOf(ref.page));
  if (it == larges_.end()) {
    return false;
  }
  const SlotMeta& meta = it->second.slots[static_cast<size_t>(SlotOf(ref.page))];
  return meta.state == PageState::kEmpty && meta.epoch == ref.epoch;
}

std::optional<SmallPageId> SmallPageAllocator::PopRequestFree(RequestId request) {
  const auto it = empty_by_request_.find(request);
  if (it == empty_by_request_.end()) {
    return std::nullopt;
  }
  std::vector<FreeRef>& refs = it->second;
  while (!refs.empty()) {
    const FreeRef ref = refs.back();
    refs.pop_back();
    if (IsValidEmpty(ref)) {
      return ref.page;
    }
  }
  empty_by_request_.erase(it);
  return std::nullopt;
}

std::optional<SmallPageId> SmallPageAllocator::PopAnyFree() {
  while (!empty_any_.empty()) {
    const FreeRef ref = empty_any_.back();
    empty_any_.pop_back();
    if (IsValidEmpty(ref)) {
      return ref.page;
    }
  }
  return std::nullopt;
}

void SmallPageAllocator::ClaimEmpty(SmallPageId page, RequestId request, Tick now) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state == PageState::kEmpty);
  JENGA_CHECK(!meta.has_hash);
  meta.state = PageState::kUsed;
  meta.assoc = request;
  meta.ref_count = 1;
  meta.last_access = now;
  meta.prefix_length = 0;
  meta.epoch = next_epoch_++;
  entry.used_count += 1;
  empty_count_ -= 1;
  used_count_ += 1;
}

std::optional<SmallPageId> SmallPageAllocator::Allocate(RequestId request, Tick now) {
  // Step 1: an empty page already associated with this request (§4.3).
  if (const auto page = PopRequestFree(request)) {
    ClaimEmpty(*page, request, now);
    return page;
  }

  // Steps 2–3: a fresh large page; the provider evicts an evictable large page if the free
  // list is exhausted. All its small pages become associated with this request.
  if (const auto large = provider_->AcquireLargePage(group_index_)) {
    LargeEntry entry;
    entry.slots.resize(static_cast<size_t>(pages_per_large_));
    for (SlotMeta& slot : entry.slots) {
      slot.assoc = request;
      slot.epoch = next_epoch_++;
    }
    const auto [it, inserted] = larges_.emplace(*large, std::move(entry));
    JENGA_CHECK(inserted) << "large page " << *large << " already held";
    empty_count_ += pages_per_large_;
    const SmallPageId base = static_cast<SmallPageId>(*large) * pages_per_large_;
    for (int slot = 1; slot < pages_per_large_; ++slot) {
      const FreeRef ref{base + slot, it->second.slots[static_cast<size_t>(slot)].epoch};
      empty_by_request_[request].push_back(ref);
      empty_any_.push_back(ref);
    }
    ClaimEmpty(base, request, now);
    return base;
  }

  // Step 4: any empty page, regardless of association.
  if (const auto page = PopAnyFree()) {
    ClaimEmpty(*page, request, now);
    return page;
  }

  // Step 5: evict this group's LRU evictable page and reuse it in place.
  if (const auto victim = evictor_.PopVictim()) {
    const LargePageId large = LargeOf(*victim);
    LargeEntry& entry = Entry(large);
    SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(*victim))];
    JENGA_CHECK(meta.state == PageState::kEvictable);
    UnregisterHash(*victim, meta);
    meta.state = PageState::kUsed;
    meta.assoc = request;
    meta.ref_count = 1;
    meta.last_access = now;
    meta.prefix_length = 0;
    meta.epoch = next_epoch_++;
    entry.evictable_count -= 1;
    entry.used_count += 1;
    evictable_count_ -= 1;
    used_count_ += 1;
    return victim;
  }

  return std::nullopt;
}

void SmallPageAllocator::AddRef(SmallPageId page) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  switch (meta.state) {
    case PageState::kUsed:
      meta.ref_count += 1;
      break;
    case PageState::kEvictable:
      evictor_.Remove(page);
      meta.state = PageState::kUsed;
      meta.ref_count = 1;
      meta.epoch = next_epoch_++;
      entry.evictable_count -= 1;
      entry.used_count += 1;
      evictable_count_ -= 1;
      used_count_ += 1;
      break;
    case PageState::kEmpty:
      JENGA_CHECK(false) << "AddRef on empty page " << page;
  }
}

void SmallPageAllocator::UnregisterHash(SmallPageId page, SlotMeta& meta) {
  if (meta.has_hash) {
    const auto it = cache_index_.find(meta.hash);
    if (it != cache_index_.end() && it->second == page) {
      cache_index_.erase(it);
    }
    meta.has_hash = false;
    meta.hash = 0;
  }
}

void SmallPageAllocator::TransitionToEmpty(SmallPageId page) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state != PageState::kEmpty);
  UnregisterHash(page, meta);
  if (meta.state == PageState::kUsed) {
    entry.used_count -= 1;
    used_count_ -= 1;
  } else {
    evictor_.Remove(page);
    entry.evictable_count -= 1;
    evictable_count_ -= 1;
  }
  meta.state = PageState::kEmpty;
  meta.ref_count = 0;
  meta.epoch = next_epoch_++;
  empty_count_ += 1;

  if (entry.used_count == 0 && entry.evictable_count == 0) {
    // The whole large page is empty: return it to the LCM allocator (§4.1). Stale FreeRefs to
    // its slots are filtered lazily by epoch/residency checks.
    empty_count_ -= pages_per_large_;
    larges_.erase(large);
    lcm_->Free(large);
    return;
  }

  const FreeRef ref{page, Meta(page).epoch};
  empty_by_request_[meta.assoc].push_back(ref);
  empty_any_.push_back(ref);
  NotifyCandidateIfEligible(large);
}

void SmallPageAllocator::Release(SmallPageId page, bool keep_cached) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state == PageState::kUsed) << "Release on non-used page " << page;
  JENGA_CHECK_GT(meta.ref_count, 0);
  meta.ref_count -= 1;
  if (meta.ref_count > 0) {
    return;
  }

  bool cacheable = keep_cached && meta.has_hash;
  if (cacheable) {
    // Index the content if no other resident page holds it; duplicates are not worth keeping.
    const auto [it, inserted] = cache_index_.emplace(meta.hash, page);
    if (!inserted && it->second != page) {
      cacheable = false;
    }
  }

  if (!cacheable) {
    TransitionToEmpty(page);
    return;
  }

  meta.state = PageState::kEvictable;
  meta.epoch = next_epoch_++;
  entry.used_count -= 1;
  entry.evictable_count += 1;
  used_count_ -= 1;
  evictable_count_ += 1;
  evictor_.Insert(page, meta.last_access, meta.prefix_length);
  NotifyCandidateIfEligible(large);
}

void SmallPageAllocator::SetContentHash(SmallPageId page, BlockHash hash) {
  SlotMeta& meta = Meta(page);
  JENGA_CHECK(meta.state == PageState::kUsed) << "SetContentHash on non-used page";
  if (meta.has_hash) {
    // Recomputed block (e.g. preempted request resumed with different content boundary).
    UnregisterHash(page, meta);
  }
  meta.has_hash = true;
  meta.hash = hash;
  cache_index_.emplace(hash, page);  // Keeps an existing mapping if one is resident.
}

std::optional<SmallPageId> SmallPageAllocator::LookupCached(BlockHash hash) const {
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void SmallPageAllocator::UpdateLastAccess(SmallPageId page, Tick now) {
  SlotMeta& meta = Meta(page);
  meta.last_access = std::max(meta.last_access, now);
  evictor_.UpdateLastAccess(page, meta.last_access);
}

void SmallPageAllocator::SetPrefixLength(SmallPageId page, int64_t prefix_length) {
  SlotMeta& meta = Meta(page);
  meta.prefix_length = prefix_length;
  evictor_.SetPrefixLength(page, prefix_length);
}

void SmallPageAllocator::NotifyCandidateIfEligible(LargePageId large) {
  const LargeEntry& entry = Entry(large);
  if (entry.used_count == 0 && entry.evictable_count > 0) {
    provider_->OnReclaimCandidate(group_index_, large, ReclaimTimestamp(large));
  }
}

bool SmallPageAllocator::IsReclaimCandidate(LargePageId large) const {
  const auto it = larges_.find(large);
  if (it == larges_.end()) {
    return false;
  }
  return it->second.used_count == 0 && it->second.evictable_count > 0;
}

Tick SmallPageAllocator::ReclaimTimestamp(LargePageId large) const {
  const auto it = larges_.find(large);
  JENGA_CHECK(it != larges_.end());
  Tick timestamp = 0;
  for (const SlotMeta& slot : it->second.slots) {
    if (slot.state == PageState::kEvictable) {
      timestamp = std::max(timestamp, slot.last_access);
    }
  }
  return timestamp;
}

void SmallPageAllocator::ReclaimLargePage(LargePageId large) {
  const auto it = larges_.find(large);
  JENGA_CHECK(it != larges_.end());
  LargeEntry& entry = it->second;
  JENGA_CHECK_EQ(entry.used_count, 0) << "reclaiming large page with used slots";
  const SmallPageId base = static_cast<SmallPageId>(large) * pages_per_large_;
  for (int slot = 0; slot < pages_per_large_; ++slot) {
    SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
    const SmallPageId page = base + slot;
    if (meta.state == PageState::kEvictable) {
      evictor_.Remove(page);
      UnregisterHash(page, meta);
      evictable_count_ -= 1;
    } else {
      empty_count_ -= 1;
    }
  }
  larges_.erase(it);
  lcm_->Free(large);
}

PageState SmallPageAllocator::state(SmallPageId page) const { return Meta(page).state; }
RequestId SmallPageAllocator::assoc(SmallPageId page) const { return Meta(page).assoc; }
Tick SmallPageAllocator::last_access(SmallPageId page) const { return Meta(page).last_access; }
int64_t SmallPageAllocator::prefix_length(SmallPageId page) const {
  return Meta(page).prefix_length;
}
int SmallPageAllocator::ref_count(SmallPageId page) const { return Meta(page).ref_count; }

SmallPageAllocator::Stats SmallPageAllocator::GetStats() const {
  Stats stats;
  stats.large_pages_held = static_cast<int64_t>(larges_.size());
  stats.used_pages = used_count_;
  stats.evictable_pages = evictable_count_;
  stats.empty_pages = empty_count_;
  stats.used_bytes = used_count_ * spec_.page_bytes;
  stats.evictable_bytes = evictable_count_ * spec_.page_bytes;
  stats.empty_bytes = empty_count_ * spec_.page_bytes;
  return stats;
}

void SmallPageAllocator::CheckConsistency() const {
  int64_t used = 0;
  int64_t evictable = 0;
  int64_t empty = 0;
  for (const auto& [large, entry] : larges_) {
    JENGA_CHECK_EQ(lcm_->owner(large), group_index_);
    int32_t entry_used = 0;
    int32_t entry_evictable = 0;
    const SmallPageId base = static_cast<SmallPageId>(large) * pages_per_large_;
    for (int slot = 0; slot < pages_per_large_; ++slot) {
      const SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
      const SmallPageId page = base + slot;
      switch (meta.state) {
        case PageState::kUsed:
          JENGA_CHECK_GT(meta.ref_count, 0);
          JENGA_CHECK(!evictor_.Contains(page));
          ++entry_used;
          break;
        case PageState::kEvictable:
          JENGA_CHECK_EQ(meta.ref_count, 0);
          JENGA_CHECK(evictor_.Contains(page));
          JENGA_CHECK(meta.has_hash);
          ++entry_evictable;
          break;
        case PageState::kEmpty:
          JENGA_CHECK_EQ(meta.ref_count, 0);
          JENGA_CHECK(!meta.has_hash);
          JENGA_CHECK(!evictor_.Contains(page));
          break;
      }
    }
    JENGA_CHECK_EQ(entry_used, entry.used_count);
    JENGA_CHECK_EQ(entry_evictable, entry.evictable_count);
    JENGA_CHECK(entry_used + entry_evictable > 0) << "fully-empty large page not returned";
    used += entry_used;
    evictable += entry_evictable;
    empty += entry.empty_count();
  }
  JENGA_CHECK_EQ(used, used_count_);
  JENGA_CHECK_EQ(evictable, evictable_count_);
  JENGA_CHECK_EQ(empty, empty_count_);
  JENGA_CHECK_EQ(evictable, static_cast<int64_t>(evictor_.size()));
  for (const auto& [hash, page] : cache_index_) {
    const auto it = larges_.find(LargeOf(page));
    JENGA_CHECK(it != larges_.end()) << "cache index points at non-resident page";
    const SlotMeta& meta = it->second.slots[static_cast<size_t>(SlotOf(page))];
    JENGA_CHECK(meta.state != PageState::kEmpty);
    JENGA_CHECK(meta.has_hash);
    JENGA_CHECK_EQ(meta.hash, hash);
  }
}

}  // namespace jenga
