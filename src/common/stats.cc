#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace jenga {

void Summary::Add(double value) { samples_.push_back(value); }

double Summary::Sum() const { return std::accumulate(samples_.begin(), samples_.end(), 0.0); }

double Summary::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return Sum() / static_cast<double>(samples_.size());
}

double Summary::Min() const {
  JENGA_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  JENGA_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - mean) * (s - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::Percentile(double p) const {
  JENGA_CHECK(!samples_.empty());
  JENGA_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void TimeSeries::Add(double time, double value) { points_.push_back({time, value}); }

double TimeSeries::MeanValue() const {
  if (points_.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const Point& p : points_) {
    acc += p.value;
  }
  return acc / static_cast<double>(points_.size());
}

double TimeSeries::MaxValue() const {
  double best = 0.0;
  for (const Point& p : points_) {
    best = std::max(best, p.value);
  }
  return best;
}

std::vector<double> TimeSeries::Resample(int buckets) const {
  JENGA_CHECK_GT(buckets, 0);
  std::vector<double> out(static_cast<size_t>(buckets), 0.0);
  if (points_.empty()) {
    return out;
  }
  double max_time = 0.0;
  for (const Point& p : points_) {
    max_time = std::max(max_time, p.time);
  }
  if (max_time <= 0.0) {
    max_time = 1.0;
  }
  std::vector<double> sums(static_cast<size_t>(buckets), 0.0);
  std::vector<int> counts(static_cast<size_t>(buckets), 0);
  for (const Point& p : points_) {
    int idx = static_cast<int>(p.time / max_time * buckets);
    idx = std::clamp(idx, 0, buckets - 1);
    sums[static_cast<size_t>(idx)] += p.value;
    counts[static_cast<size_t>(idx)] += 1;
  }
  double last = 0.0;
  for (int i = 0; i < buckets; ++i) {
    const size_t u = static_cast<size_t>(i);
    if (counts[u] > 0) {
      last = sums[u] / counts[u];
    }
    out[u] = last;
  }
  return out;
}

std::string Sparkline(const std::vector<double>& series) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (series.empty()) {
    return "";
  }
  const double max_value = *std::max_element(series.begin(), series.end());
  std::string out;
  for (double v : series) {
    int level = 0;
    if (max_value > 0.0) {
      level = static_cast<int>(v / max_value * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

}  // namespace jenga
