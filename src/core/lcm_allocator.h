// First-level allocator: carves the KV pool into fixed-size *large pages* whose size is the
// least common multiple of all group page sizes (§4.1). Large pages are handed out to the
// per-group customized allocators and returned when all their small pages become empty.
// Because every large page has the same size, there is no external fragmentation at this level.

#ifndef JENGA_SRC_CORE_LCM_ALLOCATOR_H_
#define JENGA_SRC_CORE_LCM_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/types.h"

namespace jenga {

class LcmAllocator {
 public:
  // `pool_bytes` is the KV memory available; pages that do not fit are simply not created
  // (the trailing remainder is reported as slack, not usable memory).
  LcmAllocator(int64_t pool_bytes, int64_t large_page_bytes);

  // Hands a free large page to group `owner_group`; nullopt when no page is free (the caller
  // then falls back to large-page eviction, step 3 of §5.4).
  [[nodiscard]] std::optional<LargePageId> Allocate(int owner_group);

  // Returns a page to the free pool. The page must currently be allocated.
  void Free(LargePageId page);

  // Elastic resize (governor-driven). The page id space stays dense [0, num_pages): grow
  // appends pages at the top, shrink removes pages from the top. Both keep the free list's
  // hand-out order deterministic (new pages are handed out ascending, like construction).
  //
  // Appends `n` free pages. Returns the id of the first new page.
  LargePageId GrowPages(int32_t n);
  // Removes the `n` highest-numbered pages; every one of them must currently be free (the
  // caller drains them first). CHECK-fails otherwise.
  void ShrinkPages(int32_t n);
  // True when the `n` highest-numbered pages are all free (shrink would succeed).
  [[nodiscard]] bool TopPagesFree(int32_t n) const;

  [[nodiscard]] int32_t num_pages() const { return num_pages_; }
  [[nodiscard]] int32_t num_free() const { return static_cast<int32_t>(free_list_.size()); }
  [[nodiscard]] int32_t num_allocated() const { return num_pages_ - num_free(); }
  [[nodiscard]] int64_t large_page_bytes() const { return large_page_bytes_; }
  // Pool bytes lost to the trailing partial page (reported in the memory breakdown).
  [[nodiscard]] int64_t slack_bytes() const { return slack_bytes_; }
  // Owning group of `page`, or -1 when free.
  [[nodiscard]] int owner(LargePageId page) const;

 private:
  int64_t large_page_bytes_ = 0;
  int64_t slack_bytes_ = 0;
  int32_t num_pages_ = 0;
  std::vector<int> owner_;            // -1 = free.
  std::vector<LargePageId> free_list_;  // LIFO keeps reuse hot and tests deterministic.
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_LCM_ALLOCATOR_H_
