
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/engine_profiles_test.cc" "tests/CMakeFiles/engine_test.dir/engine/engine_profiles_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_profiles_test.cc.o.d"
  "/root/repo/tests/engine/engine_test.cc" "tests/CMakeFiles/engine_test.dir/engine/engine_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_test.cc.o.d"
  "/root/repo/tests/engine/gpu_test.cc" "tests/CMakeFiles/engine_test.dir/engine/gpu_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/gpu_test.cc.o.d"
  "/root/repo/tests/engine/kv_manager_test.cc" "tests/CMakeFiles/engine_test.dir/engine/kv_manager_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/kv_manager_test.cc.o.d"
  "/root/repo/tests/engine/metrics_test.cc" "tests/CMakeFiles/engine_test.dir/engine/metrics_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/metrics_test.cc.o.d"
  "/root/repo/tests/engine/multimodal_test.cc" "tests/CMakeFiles/engine_test.dir/engine/multimodal_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/multimodal_test.cc.o.d"
  "/root/repo/tests/engine/prefix_cache_integration_test.cc" "tests/CMakeFiles/engine_test.dir/engine/prefix_cache_integration_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/prefix_cache_integration_test.cc.o.d"
  "/root/repo/tests/engine/spec_decode_test.cc" "tests/CMakeFiles/engine_test.dir/engine/spec_decode_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/spec_decode_test.cc.o.d"
  "/root/repo/tests/engine/zoo_smoke_test.cc" "tests/CMakeFiles/engine_test.dir/engine/zoo_smoke_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/zoo_smoke_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/engine/CMakeFiles/jenga_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/jenga_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/jenga_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/jenga_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/jenga_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/jenga_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/jenga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
