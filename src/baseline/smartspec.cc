#include "src/baseline/smartspec.h"

#include "src/common/check.h"

namespace jenga {

PoolSplit SmartSpecSplit(const ModelConfig& target, const ModelConfig& draft,
                         int64_t pool_bytes) {
  const int64_t target_per_token = target.KvBytesPerTokenAllLayers();
  const int64_t draft_per_token = draft.KvBytesPerTokenAllLayers();
  JENGA_CHECK_GT(target_per_token, 0);
  JENGA_CHECK_GT(draft_per_token, 0);
  PoolSplit split;
  split.target_bytes =
      pool_bytes * target_per_token / (target_per_token + draft_per_token);
  split.draft_bytes = pool_bytes - split.target_bytes;
  return split;
}

}  // namespace jenga
