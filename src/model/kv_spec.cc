#include "src/model/kv_spec.h"

#include <map>
#include <sstream>
#include <tuple>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace jenga {

const char* GroupKindName(GroupKind kind) {
  switch (kind) {
    case GroupKind::kFullAttention:
      return "full_attention";
    case GroupKind::kSlidingWindow:
      return "sliding_window";
    case GroupKind::kMamba:
      return "mamba";
    case GroupKind::kCrossAttention:
      return "cross_attention";
    case GroupKind::kSparsePyramid:
      return "sparse_pyramid";
    case GroupKind::kVisionEmbed:
      return "vision_embed";
  }
  return "unknown";
}

namespace {

GroupKind ToGroupKind(LayerKind kind) {
  switch (kind) {
    case LayerKind::kFullAttention:
      return GroupKind::kFullAttention;
    case LayerKind::kSlidingWindow:
      return GroupKind::kSlidingWindow;
    case LayerKind::kMamba:
      return GroupKind::kMamba;
    case LayerKind::kCrossAttention:
      return GroupKind::kCrossAttention;
    case LayerKind::kSparsePyramid:
      return GroupKind::kSparsePyramid;
  }
  JENGA_CHECK(false) << "unhandled layer kind";
}

}  // namespace

int64_t KvSpec::LcmPageBytes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(groups.size());
  for (const KvGroupSpec& group : groups) {
    sizes.push_back(group.page_bytes);
  }
  return LcmAll(sizes);
}

int64_t KvSpec::GcdPageBytes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(groups.size());
  for (const KvGroupSpec& group : groups) {
    sizes.push_back(group.page_bytes);
  }
  return GcdAll(sizes);
}

int64_t KvSpec::MaxPageBytes() const {
  JENGA_CHECK(!groups.empty());
  int64_t best = 0;
  for (const KvGroupSpec& group : groups) {
    best = std::max(best, group.page_bytes);
  }
  return best;
}

const KvGroupSpec* KvSpec::FindGroup(GroupKind kind) const {
  for (const KvGroupSpec& group : groups) {
    if (group.kind == kind) {
      return &group;
    }
  }
  return nullptr;
}

std::string KvSpec::DebugString() const {
  std::ostringstream os;
  os << "KvSpec{lcm_page=" << LcmPageBytes() << "B";
  for (const KvGroupSpec& group : groups) {
    os << "; " << group.name << ": " << group.num_layers << " layers, page=" << group.page_bytes
       << "B, " << group.tokens_per_page << " tok/page";
  }
  os << "}";
  return os.str();
}

KvSpec BuildKvSpec(const ModelConfig& model, const KvSpecOptions& options) {
  JENGA_CHECK_GT(options.tokens_per_page, 0);
  KvSpec spec;

  // Key: (kind, bytes/token, window, budget) → aggregated layer count.
  using GroupKey = std::tuple<LayerKind, int64_t, int, int>;
  std::map<GroupKey, int> attention_groups;
  int64_t mamba_state_total = 0;
  int mamba_layers = 0;
  // Cross-attention models keep image tokens out of the decoder sequence (§3.2).
  const bool has_cross_attention = model.HasKind(LayerKind::kCrossAttention);

  for (const LayerSpec& layer : model.layers) {
    if (layer.kind == LayerKind::kMamba) {
      JENGA_CHECK_GT(layer.mamba_state_bytes, 0);
      mamba_state_total += layer.mamba_state_bytes;
      ++mamba_layers;
      continue;
    }
    JENGA_CHECK_GT(layer.KvBytesPerToken(), 0) << "attention layer with zero KV size";
    attention_groups[{layer.kind, layer.KvBytesPerToken(), layer.sliding_window,
                      layer.token_budget}] += 1;
  }

  for (const auto& [key, count] : attention_groups) {
    const auto& [kind, bytes_per_token, window, budget] = key;
    KvGroupSpec group;
    group.kind = ToGroupKind(kind);
    if (kind == LayerKind::kCrossAttention) {
      group.scope = GroupScope::kImageTokens;
    } else {
      group.scope = has_cross_attention ? GroupScope::kTextTokens : GroupScope::kAllTokens;
    }
    group.num_layers = count;
    group.bytes_per_token_per_layer = bytes_per_token;
    group.tokens_per_page = options.tokens_per_page;
    group.page_bytes = static_cast<int64_t>(options.tokens_per_page) * bytes_per_token * count;
    group.sliding_window = window;
    group.token_budget = budget;
    std::ostringstream name;
    name << GroupKindName(group.kind);
    if (window > 0) {
      name << "_w" << window;
    }
    if (budget > 0) {
      name << "_b" << budget;
    }
    group.name = name.str();
    spec.groups.push_back(std::move(group));
  }

  if (mamba_layers > 0) {
    KvGroupSpec group;
    group.name = "mamba";
    group.kind = GroupKind::kMamba;
    group.scope = GroupScope::kPerSequence;
    group.num_layers = mamba_layers;
    group.tokens_per_page = 0;
    group.page_bytes = mamba_state_total;
    spec.groups.push_back(std::move(group));
  }

  if (model.vision.present && options.include_vision_group) {
    KvGroupSpec group;
    group.name = "vision_embed";
    group.kind = GroupKind::kVisionEmbed;
    group.scope = GroupScope::kImageTokens;
    group.num_layers = 1;
    group.bytes_per_token_per_layer = model.vision.embed_bytes_per_token;
    group.tokens_per_page = options.tokens_per_page;
    group.page_bytes =
        static_cast<int64_t>(options.tokens_per_page) * model.vision.embed_bytes_per_token;
    spec.groups.push_back(std::move(group));
  }

  JENGA_CHECK(!spec.groups.empty()) << "model " << model.name << " has no KV-bearing layers";
  return spec;
}

KvSpec MergeKvSpecs(const std::vector<std::pair<std::string, KvSpec>>& specs) {
  KvSpec merged;
  for (const auto& [tag, spec] : specs) {
    for (KvGroupSpec group : spec.groups) {
      group.name = tag + "/" + group.name;
      merged.groups.push_back(std::move(group));
    }
  }
  JENGA_CHECK(!merged.groups.empty());
  return merged;
}

}  // namespace jenga
