// Fleet serving: scale one engine out to four replicas and let the router decide cache
// locality. Each replica is a tensor-parallel rank-group of Llama-3-70B (TP=8, so the
// per-rank KV pool is 1/8th of the full model's), sized here to hold only a few of the
// workload's shared articles. Round-robin smears every article across every replica —
// each holds a lukewarm copy and evicts them all under pressure; prefix-affinity routes
// each article's requests to the replica already holding its prefix. The run is
// deterministic (simulated clock, seeded router), so both policies replay the identical
// trace.

#include <cstdio>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/fleet_router.h"
#include "src/engine/gpu.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

using namespace jenga;

namespace {

std::vector<Request> MakeTrace() {
  // 96 questions against 10 shared articles (1500-2500 tokens each), Poisson arrivals.
  ArxivQaDataset dataset(/*num_articles=*/10, /*min_article_len=*/1500,
                         /*max_article_len=*/2500, /*seed=*/7, /*output_lo=*/16,
                         /*output_hi=*/48);
  Rng rng(0xF7EE7);
  return GeneratePoisson(dataset, /*count=*/96, /*rate=*/8.0, rng, /*first_id=*/1);
}

FleetConfig MakeFleet(RoutePolicy policy) {
  // One TP=8 shard of Llama-3-70B per replica: TensorParallelShard validates that KV
  // heads, Mamba state, and vision embeddings divide evenly and returns the per-rank
  // memory profile (refusing e.g. tp=3 for the 8-KV-head model with a clean error).
  const ModelConfig shard = Llama3_70B_Fp8_Tp(8);

  FleetConfig config;
  config.num_replicas = 4;
  config.engine = JengaProfile(shard, H100());
  // Shrink each replica's pool to ~4 articles so routing policy decides residency.
  config.engine.pool_bytes_override = shard.KvBytesPerTokenAllLayers() * 2000 * 4;
  config.policy = policy;
  config.spill_queue_depth = 8;    // Saturated when 8+ requests wait...
  config.spill_occupancy = 0.95;   // ...or the pool is 95% full: spill to least-loaded.
  config.seed = 1;                 // Fixes the round-robin start slot for replay.
  return config;
}

}  // namespace

int main() {
  const ModelConfig shard = Llama3_70B_Fp8_Tp(8);
  std::printf("replica model: %s (%.1fB params/rank, %lld KV bytes/token/rank)\n\n",
              shard.name.c_str(), shard.params_b,
              static_cast<long long>(shard.KvBytesPerTokenAllLayers()));

  for (const RoutePolicy policy : {RoutePolicy::kRoundRobin, RoutePolicy::kPrefixAffinity}) {
    FleetRouter fleet(MakeFleet(policy));
    fleet.RunTimedTrace(MakeTrace());  // Routes each arrival, steps replicas to done.

    const FleetStats stats = ClusterMetrics::FromRouter(fleet);
    const FleetCounters& counters = fleet.counters();
    std::printf("%s:\n", RoutePolicyName(policy));
    std::printf("  cluster hit rate %.1f%%, ttft p50/p99 %.3f/%.3fs, tpot p99 %.4fs\n",
                stats.hit_rate * 100.0, stats.ttft_p50, stats.ttft_p99, stats.tpot_p99);
    std::printf("  routed: %lld affinity, %lld spill, %lld least-loaded, %lld round-robin\n",
                static_cast<long long>(counters.routed_affinity),
                static_cast<long long>(counters.routed_spill),
                static_cast<long long>(counters.routed_least_loaded),
                static_cast<long long>(counters.routed_round_robin));
    for (const ReplicaStats& r : stats.replicas) {
      std::printf("  replica %d: hit %5.1f%%  completed %lld\n", r.replica,
                  r.hit_rate * 100.0, static_cast<long long>(r.completed));
    }
    std::printf("\n");
  }
  // For threaded serving (real client threads instead of a replayed trace), FleetFrontend
  // wraps one ServingFrontend per replica behind the same routing policy.
  return 0;
}
