#!/usr/bin/env bash
# Full gate: warnings-clean Release build, entire test suite, a quick perf smoke, and an
# ASan+UBSan test pass (CMakePresets.json `asan-ubsan`).
# Usage: scripts/check.sh [build-dir]   (default: build-check, kept separate from ./build)
# Set JENGA_SKIP_SANITIZERS=1 to skip the sanitizer stage (it roughly doubles the runtime).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "$build" -j "$(nproc)"

# Tier-1 gate (the fuzz-labeled tests run in the dedicated smoke stage below).
ctest --test-dir "$build" -L tier1 --output-on-failure -j "$(nproc)"

# Fuzz smoke: deterministic seeds, ~10 s. Covers Engine and SpecDecodeEngine with the
# offload tier on and off; see TESTING.md for reproducing a failure from its seed.
# JENGA_CHECK_ADMISSION cross-checks the fused admission hit scan against the
# materialized-bitmap reference on every admission.
JENGA_CHECK_ADMISSION=1 \
JENGA_FUZZ_SCHEDULES="${JENGA_FUZZ_SCHEDULES:-3000}" "$build/tests/engine_fuzz_test"

# Chaos smoke: the same schedule model with the fault-injection layer armed (PCIe errors and
# timeouts, host-pool failures and shrinks, GPU step faults, deadlines, cancels, load shed).
# Deterministic seeds; see TESTING.md for replaying a failure.
JENGA_CHECK_ADMISSION=1 \
JENGA_CHAOS_SCHEDULES="${JENGA_CHAOS_SCHEDULES:-3000}" "$build/tests/engine_chaos_test"

# Pressure-chaos smoke (DESIGN.md §11): the same chaos model with the elastic arm forced on —
# every schedule gets transient pool grow/shrink, a driver-driven mid-trace repartition, the
# governor's park/shed ladder, and/or adaptive split shifts, with the pool_grow /
# pool_shrink_drain / repartition_commit fault sites armed. Oracles: the AllocatorAuditor is
# green after every step and after every repartition commit/rollback, the resize ledger
# balances per epoch, the cancellation ledger covers governor sheds, and no request is lost
# across a repartition.
JENGA_CHECK_ADMISSION=1 JENGA_CHAOS_ELASTIC=1 \
JENGA_CHAOS_SCHEDULES="${JENGA_CHAOS_SCHEDULES:-3000}" "$build/tests/engine_chaos_test"

# Disabled-injector overhead must be noise-level (the table's "armed tax" column).
"$build/bench/bench_chaos" --quick

# Fleet-chaos smoke (ctest label `chaos-fleet`): randomized fleet schedules with replica
# deaths/stalls — scheduled and injector-driven — through both fleet drivers, against the
# recovery-ledger oracle (DESIGN.md §10). Deterministic seeds; TESTING.md documents replay
# (JENGA_FUZZ_SEED / JENGA_FAULT_PLAN / JENGA_FAULT_SEED).
JENGA_FLEET_CHAOS_SCHEDULES="${JENGA_FLEET_CHAOS_SCHEDULES:-3000}" "$build/tests/fleet_chaos_test"

# Fleet stage: the cluster suite by label (prefix index, router policy, cluster metrics,
# the 1-replica byte-identical differential, and the threaded fleet stress harness), then
# the fleet routing showcase, which self-checks the acceptance criteria (affinity >= 1.3x
# round-robin hit rate at 4 replicas without regressing p99 TTFT) and exits non-zero on
# violation.
ctest --test-dir "$build" -L fleet --output-on-failure -j "$(nproc)"
"$build/bench/bench_fleet" --quick

# Elastic governor acceptance (DESIGN.md §11): self-checks that a mid-trace hot swap commits
# without aborting in-flight requests (clean and under an injected commit rollback), the
# pressure ladder engages with a balanced cancellation ledger, and the adaptive draft/target
# split is never below the best static split. Exits non-zero on violation.
"$build/bench/bench_elastic" --quick

# Perf gate: quick mode against the committed quick baseline; every micro.* and frontend.*
# metric must stay within 10% of BENCH_perf_quick.json. Best-of-3 damps scheduler noise —
# one passing run is enough. (The tracked BENCH_perf.json full-mode trajectory is only
# regenerated deliberately via a full --baseline run.)
#
# Fail fast — with an actionable message — when the committed baseline is missing or
# predates the current metric schema, instead of burning three bench runs to find out (or
# worse, gating against nothing). bench_perf itself also rejects stale schemas.
if [[ ! -r "$repo/BENCH_perf_quick.json" ]]; then
  echo "check.sh: BENCH_perf_quick.json is missing — the perf gate has no baseline." >&2
  echo "check.sh: regenerate it with: $build/bench/bench_perf --quick --out $repo/BENCH_perf_quick.json  (then commit it)" >&2
  exit 1
fi
for gated_key in micro.alloc_release.ops_per_s micro.deadline_sweep.steps_per_s \
                 elastic.resize_cycle.ops_per_s \
                 frontend.admit_4p.req_per_s fleet.route_4r.ops_per_s \
                 e2e.jamba-52b-fp8.mmlu.steps_per_s \
                 profiler.gemma-2-9b.mmlu.commit.share_pct; do
  if ! grep -q "\"$gated_key\"" "$repo/BENCH_perf_quick.json"; then
    echo "check.sh: BENCH_perf_quick.json is stale — gated metric $gated_key is absent." >&2
    echo "check.sh: regenerate it with: $build/bench/bench_perf --quick --out $repo/BENCH_perf_quick.json  (then commit it)" >&2
    exit 1
  fi
done
perf_gate_ok=0
for attempt in 1 2 3; do
  if "$build/bench/bench_perf" --quick --gate --baseline "$repo/BENCH_perf_quick.json" \
      --out "$build/BENCH_perf_quick.json"; then
    perf_gate_ok=1
    break
  fi
  echo "check.sh: perf gate attempt $attempt failed, retrying"
done
if [[ "$perf_gate_ok" != "1" ]]; then
  echo "check.sh: perf gate failed (3 attempts)" >&2
  exit 1
fi

# Profile smoke (DESIGN.md §12): the profiled e2e pass with its share gate — any phase
# whose exclusive-time share grows past max(3x, +2pp) of the committed snapshot fails.
# This catches a hot-path regression hiding inside an unchanged steps/s total (e.g. work
# migrating into a phase the micros don't cover). Shares are ratios of small wall-times,
# so best-of-3 damps scheduler noise exactly like the perf gate above.
profile_smoke_ok=0
for attempt in 1 2 3; do
  if "$build/bench/bench_perf" --profile-only --quick --gate \
      --baseline "$repo/BENCH_perf_quick.json" --out "$build/BENCH_profile_quick.json"; then
    profile_smoke_ok=1
    break
  fi
  echo "check.sh: profile smoke attempt $attempt failed, retrying"
done
if [[ "$profile_smoke_ok" != "1" ]]; then
  echo "check.sh: profile smoke failed (3 attempts)" >&2
  exit 1
fi

if [[ "${JENGA_SKIP_SANITIZERS:-0}" != "1" ]]; then
  # TSan pass over the concurrency suite (CMakePresets.json `tsan`): the MPSC queue, the
  # sharded claim index, the serving frontend, the multi-producer stress harness, the
  # multi-replica fleet frontend stress harness, and the heterogeneous-fleet elastic suite
  # (threaded FleetFrontend with per-replica pool sizes). Only these binaries run threads;
  # the rest of the suite would waste the (slow) TSan build.
  tsan_build="${build}-tsan"
  cmake -B "$tsan_build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  # step_profiler_test and deadline_heap_test ride along: single-threaded, but they pin the
  # profiler attach contract and deadline-heap audit under the TSan build's different
  # optimization/timing profile for almost no extra build cost.
  cmake --build "$tsan_build" -j "$(nproc)" \
    --target mpsc_queue_test shard_claim_test frontend_test frontend_stress_test \
             fleet_stress_test fleet_shutdown_test fleet_chaos_test fleet_elastic_test \
             step_profiler_test deadline_heap_test
  for tsan_test in mpsc_queue_test shard_claim_test frontend_test frontend_stress_test \
                   fleet_stress_test fleet_shutdown_test fleet_chaos_test fleet_elastic_test \
                   step_profiler_test deadline_heap_test; do
    TSAN_OPTIONS="halt_on_error=1" "$tsan_build/tests/$tsan_test"
  done

  sanitizer_build="${build}-asan"
  cmake -B "$sanitizer_build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  # Build only the test executables (benches under sanitizers are prohibitively slow).
  test_targets="$(sed -n 's/^jenga_add_test(\([a-z_]*\).*/\1/p' "$repo/tests/CMakeLists.txt")"
  # shellcheck disable=SC2086
  cmake --build "$sanitizer_build" -j "$(nproc)" --target $test_targets
  ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "$sanitizer_build" --output-on-failure -j "$(nproc)"
fi

echo "check.sh: all gates passed"
