#include "src/core/block_hash.h"

#include "src/common/check.h"

namespace jenga {

namespace {

// FNV-1a style absorption with a 64-bit avalanche finish; cheap and collision-resistant
// enough for cache keys over token ids.
uint64_t Absorb(uint64_t h, uint64_t value) {
  h ^= value;
  h *= 0x100000001B3ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

}  // namespace

BlockHash InitBlockChain(uint64_t salt) { return Absorb(0x51A3C0DE5EEDull, salt); }

BlockHash ExtendBlockHash(BlockHash previous, std::span<const int32_t> block_tokens) {
  uint64_t h = Absorb(previous, 0x9E3779B97F4A7C15ull);
  for (int32_t token : block_tokens) {
    h = Absorb(h, static_cast<uint64_t>(static_cast<uint32_t>(token)) + 1);
  }
  return h;
}

std::vector<BlockHash> ChainBlockHashes(std::span<const int32_t> tokens, int block_size,
                                        uint64_t salt) {
  JENGA_CHECK_GT(block_size, 0);
  const int64_t num_blocks = static_cast<int64_t>(tokens.size()) / block_size;
  std::vector<BlockHash> hashes;
  hashes.reserve(static_cast<size_t>(num_blocks));
  BlockHash chain = InitBlockChain(salt);
  for (int64_t b = 0; b < num_blocks; ++b) {
    chain = ExtendBlockHash(
        chain, tokens.subspan(static_cast<size_t>(b) * block_size, static_cast<size_t>(block_size)));
    hashes.push_back(chain);
  }
  return hashes;
}

int64_t LongestCommonValidPrefix(std::span<const std::vector<bool>> valids) {
  if (valids.empty()) {
    return 0;
  }
  const size_t size = valids.front().size();
  for (const std::vector<bool>& v : valids) {
    JENGA_CHECK_EQ(v.size(), size) << "all groups must report the same boundary count";
  }
  for (int64_t boundary = static_cast<int64_t>(size) - 1; boundary > 0; --boundary) {
    bool all = true;
    for (const std::vector<bool>& v : valids) {
      if (!v[static_cast<size_t>(boundary)]) {
        all = false;
        break;
      }
    }
    if (all) {
      return boundary;
    }
  }
  return 0;
}

}  // namespace jenga
