// Audit event hooks for the two-tier allocator stack. An AuditSink observes every state
// transition in SmallPageAllocator / Evictor / JengaAllocator / HostPool so an external
// auditor (src/audit) can maintain shadow state and cross-check it against a full
// re-derivation on demand.
//
// Detached is the default and costs one null-pointer test per transition — no virtual call,
// no allocation, no behavior change. The hooks are observation-only: implementations must
// not call back into the allocator. Lives in core (like CacheEvictionSink) so the audited
// classes need not depend on the audit library.

#ifndef JENGA_SRC_CORE_AUDIT_EVENTS_H_
#define JENGA_SRC_CORE_AUDIT_EVENTS_H_

#include <cstdint>

#include "src/core/types.h"

namespace jenga {

class AuditSink {
 public:
  virtual ~AuditSink() = default;

  // --- SmallPageAllocator transitions (group = emitting group allocator's index) ---

  // A large page became resident in `group`; all its slots start empty, associated with
  // `request` (§4.3 affinity seeding). Fires before the first slot is claimed.
  virtual void OnLargeAcquired(int /*group*/, LargePageId /*large*/, RequestId /*request*/) {}
  // A fully-empty large page was returned to the LCM allocator.
  virtual void OnLargeReleased(int /*group*/, LargePageId /*large*/) {}
  // empty → used (steps 1/2/4 of §5.4, or step 5 right after OnPageEvicted).
  virtual void OnPageClaimed(int /*group*/, SmallPageId /*page*/, RequestId /*request*/) {}
  // evictable → used (prefix-cache hit revived the page).
  virtual void OnPageRevived(int /*group*/, SmallPageId /*page*/) {}
  // used → evictable (released with indexed content).
  virtual void OnPageCached(int /*group*/, SmallPageId /*page*/, BlockHash /*hash*/) {}
  // used/evictable → empty (content declared obsolete by its owner).
  virtual void OnPageEmptied(int /*group*/, SmallPageId /*page*/) {}
  // evictable → empty under capacity pressure (step-5 victim or large-page reclaim); the
  // cached content was destroyed (or parked in the host tier via CacheEvictionSink).
  virtual void OnPageEvicted(int /*group*/, SmallPageId /*page*/) {}
  // The request's affinity free list was dropped (request id retired).
  virtual void OnRequestForgotten(int /*group*/, RequestId /*request*/) {}
  // An AllocateN call completed: `count` pages were claimed for `request` in one pass, each
  // already announced through the per-page events above (claims, acquisitions, evictions) in
  // exactly the order `count` single Allocate calls would have produced. Lets the auditor
  // cross-check the bulk path against its per-page shadow state.
  virtual void OnBulkAllocate(int /*group*/, RequestId /*request*/, int64_t /*count*/) {}

  // --- Evictor transitions ---

  virtual void OnEvictorInsert(int /*group*/, SmallPageId /*page*/, Tick /*last_access*/, int64_t /*prefix_length*/) {}
  virtual void OnEvictorRemove(int /*group*/, SmallPageId /*page*/) {}
  virtual void OnEvictorRekey(int /*group*/, SmallPageId /*page*/, Tick /*last_access*/, int64_t /*prefix_length*/) {}
  virtual void OnEvictorPop(int /*group*/, SmallPageId /*page*/) {}

  // --- JengaAllocator (global coordination) ---

  // A whole-evictable large page was (re-)pushed onto the lazy reclaim heap.
  virtual void OnReclaimPushed(int /*group*/, LargePageId /*large*/, Tick /*timestamp*/) {}
  // Step 3 of §5.4 chose this large page as the global reclaim victim.
  virtual void OnLargeReclaimed(int /*group*/, LargePageId /*large*/) {}

  // The LCM pool was resized in place (elastic governor grow/shrink): the page id space is
  // now [0, new_num_pages). Every removed page was free when this fires, so shadow
  // conservation only needs to re-base the pool extent.
  virtual void OnPoolResized(int32_t /*new_num_pages*/) {}

  // --- HostPool (offload tier; keys mirror HostPool's) ---

  virtual void OnHostSetStored(RequestId /*id*/, int64_t /*bytes*/) {}
  // evicted=true → LRU capacity eviction; false → explicit erase (swap-in, drop, replace).
  virtual void OnHostSetRemoved(RequestId /*id*/, int64_t /*bytes*/, bool /*evicted*/) {}
  virtual void OnHostPageStored(int /*manager*/, int /*group*/, BlockHash /*hash*/, int64_t /*bytes*/) {}
  // evicted=true → LRU capacity eviction; false → explicit erase (promotion, replace).
  virtual void OnHostPageRemoved(int /*manager*/, int /*group*/, BlockHash /*hash*/, int64_t /*bytes*/, bool /*evicted*/) {}
};

}  // namespace jenga

// Emits `sink->call` only when a sink is attached. The detached (null) case is the hot one
// everywhere — benches and production runs never attach a sink — so the taken branch is
// marked [[unlikely]] to keep the hook body out of the fall-through instruction stream.
// Building with -DJENGA_AUDIT_HOOKS=0 elides every hook at compile time (the allocator then
// cannot be audited; tier-1 test builds must keep the default).
#ifndef JENGA_AUDIT_HOOKS
#define JENGA_AUDIT_HOOKS 1
#endif

#if JENGA_AUDIT_HOOKS
#define JENGA_AUDIT_HOOK(sink, call)  \
  do {                                \
    if ((sink) != nullptr) [[unlikely]] { \
      (sink)->call;                   \
    }                                 \
  } while (false)
#else
#define JENGA_AUDIT_HOOK(sink, call) \
  do {                               \
  } while (false)
#endif

#endif  // JENGA_SRC_CORE_AUDIT_EVENTS_H_
