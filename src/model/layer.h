// Layer descriptions for heterogeneous LLM architectures (§3.1 of the paper). A LayerSpec
// captures exactly what the memory manager needs to know about a layer: how many bytes of
// per-token (or per-sequence) state it keeps, and which token-dependency pattern governs its
// caching and eviction rules.

#ifndef JENGA_SRC_MODEL_LAYER_H_
#define JENGA_SRC_MODEL_LAYER_H_

#include <cstdint>
#include <string>

namespace jenga {

// The attention variants from Figure 2 of the paper.
enum class LayerKind {
  // Standard full-prefix self-attention: KV per token, depends on the entire prefix.
  kFullAttention,
  // Sliding-window attention: KV per token, but generation only depends on the last
  // `sliding_window` tokens; KV outside the window can be freed or deprioritized.
  kSlidingWindow,
  // State-space (Mamba) / linear-attention layer: one large fixed-size state per sequence,
  // updated recurrently; prefix caching works via periodic state checkpoints.
  kMamba,
  // Cross-attention from text queries to image-token KV (Llama 3.2 Vision / NVLM style):
  // KV exists only for image tokens.
  kCrossAttention,
  // PyramidKV-style sparse attention: each layer retains at most `token_budget` tokens
  // (attention sinks + the most recent tokens in our model of it).
  kSparsePyramid,
};

[[nodiscard]] inline const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kFullAttention:
      return "full_attention";
    case LayerKind::kSlidingWindow:
      return "sliding_window";
    case LayerKind::kMamba:
      return "mamba";
    case LayerKind::kCrossAttention:
      return "cross_attention";
    case LayerKind::kSparsePyramid:
      return "sparse_pyramid";
  }
  return "unknown";
}

// One decoder layer's memory-relevant description. Attention-like layers are described by
// their KV geometry (GQA-aware); Mamba layers by their flat state size.
struct LayerSpec {
  LayerKind kind = LayerKind::kFullAttention;
  // KV geometry for attention-like kinds.
  int num_kv_heads = 0;
  int head_dim = 0;
  int dtype_bytes = 2;  // 2 = bf16, 1 = fp8.
  // Window length in tokens (kSlidingWindow only).
  int sliding_window = 0;
  // Full recurrent-state size in bytes for this layer (kMamba only; conv + SSM states).
  int64_t mamba_state_bytes = 0;
  // Maximum retained tokens (kSparsePyramid only).
  int token_budget = 0;

  // Bytes of KV cache this layer stores per token (K and V). Zero for Mamba layers, whose
  // state is per-sequence rather than per-token.
  [[nodiscard]] int64_t KvBytesPerToken() const {
    if (kind == LayerKind::kMamba) {
      return 0;
    }
    return 2LL * num_kv_heads * head_dim * dtype_bytes;
  }

  [[nodiscard]] std::string DebugString() const;
};

}  // namespace jenga

#endif  // JENGA_SRC_MODEL_LAYER_H_
