#include "src/core/layer_policy.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/policy_factory.h"
#include "src/model/kv_spec.h"

namespace jenga {
namespace {

// Records policy calls for inspection.
class FakeOps : public GroupCacheOps {
 public:
  void UpdateLastAccess(SmallPageId page, Tick now) override { last_access[page] = now; }
  void SetPrefixLength(SmallPageId page, int64_t prefix_length) override {
    prefix_length_of[page] = prefix_length;
  }

  std::map<SmallPageId, Tick> last_access;
  std::map<SmallPageId, int64_t> prefix_length_of;
};

RequestPages MakeRequest(RequestId id, const std::vector<SmallPageId>& pages, int64_t num_tokens,
                         int tokens_per_page) {
  RequestPages request;
  request.request = id;
  request.pages = pages;
  request.num_tokens = num_tokens;
  request.tokens_per_page = tokens_per_page;
  return request;
}

// --- FullPrefixPolicy ---

TEST(FullPrefixPolicy, NeedsEverything) {
  FullPrefixPolicy policy;
  const auto ranges = policy.NeededTokenRanges(100);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (TokenRange{0, 100}));
  EXPECT_FALSE(policy.CanDropUnneededPages());
}

TEST(FullPrefixPolicy, UpdateLastAccessTouchesAllPages) {
  FullPrefixPolicy policy;
  FakeOps ops;
  const std::vector<SmallPageId> pages = {10, 11, 12};
  policy.UpdateLastAccess(MakeRequest(1, pages, 48, 16), /*now=*/7, ops);
  EXPECT_EQ(ops.last_access.size(), 3u);
  EXPECT_EQ(ops.last_access[11], 7);
}

TEST(FullPrefixPolicy, PossiblePrefixRequiresContiguousHits) {
  FullPrefixPolicy policy;
  // Blocks: hit, hit, MISS, hit.
  const std::vector<bool> valid = policy.GetPossiblePrefix({true, true, false, true}, 16);
  ASSERT_EQ(valid.size(), 5u);
  EXPECT_TRUE(valid[0]);
  EXPECT_TRUE(valid[1]);
  EXPECT_TRUE(valid[2]);
  EXPECT_FALSE(valid[3]);
  EXPECT_FALSE(valid[4]);  // A later hit cannot repair a hole.
}

TEST(FullPrefixPolicy, DefaultPrefixLengthsAreTokenDepths) {
  FullPrefixPolicy policy;
  FakeOps ops;
  policy.SetPrefixLength(MakeRequest(1, {5, 6, 7}, 48, 16), ops);
  EXPECT_EQ(ops.prefix_length_of[5], 16);
  EXPECT_EQ(ops.prefix_length_of[6], 32);
  EXPECT_EQ(ops.prefix_length_of[7], 48);
}

// --- SlidingWindowPolicy ---

TEST(SlidingWindowPolicy, NeedsOnlyTrailingWindow) {
  SlidingWindowPolicy policy(/*window=*/32);
  const auto ranges = policy.NeededTokenRanges(100);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (TokenRange{68, 100}));
  EXPECT_TRUE(policy.CanDropUnneededPages());
}

TEST(SlidingWindowPolicy, ShortSequencesNeedEverything) {
  SlidingWindowPolicy policy(32);
  const auto ranges = policy.NeededTokenRanges(20);
  EXPECT_EQ(ranges[0], (TokenRange{0, 20}));
}

TEST(SlidingWindowPolicy, UpdateLastAccessSkipsOutOfWindowPages) {
  // §5.1 / Figure 10: tokens outside the window keep their older timestamps.
  SlidingWindowPolicy policy(/*window=*/16);
  FakeOps ops;
  // 4 blocks of 16 tokens, 64 tokens total: only the last block is inside the window.
  policy.UpdateLastAccess(MakeRequest(1, {0, 1, 2, 3}, 64, 16), /*now=*/9, ops);
  EXPECT_EQ(ops.last_access.size(), 1u);
  EXPECT_EQ(ops.last_access[3], 9);
}

TEST(SlidingWindowPolicy, PaperHitExample) {
  // §3.3: prompt [t1 t2 t3 t4] with t1 evicted and window 2: [t1 t2 t3] is still a valid
  // prefix because t1 lies outside the window. With tokens_per_page = 1 the blocks map 1:1.
  SlidingWindowPolicy policy(/*window=*/2);
  const std::vector<bool> valid = policy.GetPossiblePrefix({false, true, true, true}, 1);
  EXPECT_TRUE(valid[0]);
  EXPECT_FALSE(valid[1]);  // Needs t1 itself.
  EXPECT_FALSE(valid[2]);  // Needs t1, t2.
  EXPECT_TRUE(valid[3]);   // Needs only t2, t3.
  EXPECT_TRUE(valid[4]);
}

TEST(SlidingWindowPolicy, Figure11Example) {
  // Figure 11: request ABCDEFGHIJ, cache state [A B C D - - - H I J] at token granularity
  // (E, F, G evicted), window 2 ⇒ valid prefixes for sliding window: ABCD, ABCDEFGHI(J).
  SlidingWindowPolicy policy(2);
  const std::vector<bool> hits = {true, true, true, true, false, false, false, true, true, true};
  const std::vector<bool> valid = policy.GetPossiblePrefix(hits, 1);
  EXPECT_TRUE(valid[4]);   // ABCD: needs C, D.
  EXPECT_FALSE(valid[5]);  // ABCDE: needs D, E; E missing.
  EXPECT_FALSE(valid[7]);
  EXPECT_TRUE(valid[9]);   // Needs H, I.
  EXPECT_TRUE(valid[10]);  // Needs I, J.
}

// --- PyramidPolicy ---

TEST(PyramidPolicy, UnderBudgetNeedsEverything) {
  PyramidPolicy policy(/*token_budget=*/64, /*num_sinks=*/4);
  const auto ranges = policy.NeededTokenRanges(50);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (TokenRange{0, 50}));
}

TEST(PyramidPolicy, OverBudgetKeepsSinksAndRecent) {
  PyramidPolicy policy(64, 4);
  const auto ranges = policy.NeededTokenRanges(200);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (TokenRange{0, 4}));
  EXPECT_EQ(ranges[1], (TokenRange{140, 200}));
  EXPECT_TRUE(policy.CanDropUnneededPages());
}

TEST(PyramidPolicy, HitRuleIgnoresDroppedMiddle) {
  PyramidPolicy policy(/*token_budget=*/32, /*num_sinks=*/16);
  // Blocks of 16 tokens: prefix of 4 blocks (64 tokens) needs block 0 (sinks) and block 3
  // (recent 16); blocks 1-2 are dropped.
  const std::vector<bool> valid = policy.GetPossiblePrefix({true, false, false, true}, 16);
  EXPECT_TRUE(valid[4]);
  EXPECT_FALSE(valid[2]);  // Prefix of 2 blocks = 32 tokens is fully retained; block 1 missing.
}

// --- MambaPolicy ---

TEST(MambaPolicy, OnlyLastPageAccessed) {
  MambaPolicy policy(512);
  FakeOps ops;
  policy.UpdateLastAccess(MakeRequest(1, {100, 101, 102}, 3 * 512, 512), /*now=*/4, ops);
  EXPECT_EQ(ops.last_access.size(), 1u);
  EXPECT_EQ(ops.last_access[102], 4);
}

TEST(MambaPolicy, CheckpointsAreIndependentPrefixes) {
  MambaPolicy policy(512);
  // Checkpoints at 512, 1024, 1536; only 1024 cached.
  const std::vector<bool> valid = policy.GetPossiblePrefix({false, true, false}, 512);
  EXPECT_TRUE(valid[0]);
  EXPECT_FALSE(valid[1]);
  EXPECT_TRUE(valid[2]);  // Restoring from the 1024-token checkpoint needs only itself.
  EXPECT_FALSE(valid[3]);
}

TEST(MambaPolicy, PrefixLengthsAreCheckpointDepths) {
  MambaPolicy policy(512);
  FakeOps ops;
  policy.SetPrefixLength(MakeRequest(1, {7, 8}, 1024, 512), ops);
  EXPECT_EQ(ops.prefix_length_of[7], 512);
  EXPECT_EQ(ops.prefix_length_of[8], 1024);
}

// --- ImageCachePolicy ---

TEST(ImageCachePolicy, WholeImageSharesPriority) {
  // 2 images × 32 tokens, 16 tokens per page → pages {0,1} are image 0, {2,3} image 1.
  ImageCachePolicy policy(/*tokens_per_image=*/32);
  FakeOps ops;
  policy.SetPrefixLength(MakeRequest(77, {0, 1, 2, 3}, 64, 16), ops);
  EXPECT_EQ(ops.prefix_length_of[0], ops.prefix_length_of[1]);
  EXPECT_EQ(ops.prefix_length_of[2], ops.prefix_length_of[3]);
  EXPECT_NE(ops.prefix_length_of[0], ops.prefix_length_of[2]);
}

TEST(ImageCachePolicy, PrioritiesAreDeterministicPerRequestAndImage) {
  ImageCachePolicy policy(32);
  FakeOps a;
  FakeOps b;
  policy.SetPrefixLength(MakeRequest(77, {0, 1}, 32, 16), a);
  policy.SetPrefixLength(MakeRequest(77, {0, 1}, 32, 16), b);
  EXPECT_EQ(a.prefix_length_of, b.prefix_length_of);
}

TEST(ImageCachePolicy, HitRequiresAllImageBlocks) {
  ImageCachePolicy policy(32);
  const std::vector<bool> valid = policy.GetPossiblePrefix({true, false, true}, 16);
  EXPECT_TRUE(valid[1]);
  EXPECT_FALSE(valid[2]);
  EXPECT_FALSE(valid[3]);
}

// --- Factory ---

TEST(PolicyFactory, MapsKindsToPolicies) {
  KvGroupSpec spec;
  spec.kind = GroupKind::kFullAttention;
  EXPECT_STREQ(MakeLayerPolicy(spec)->name(), "full_prefix");
  spec.kind = GroupKind::kSlidingWindow;
  spec.sliding_window = 128;
  EXPECT_STREQ(MakeLayerPolicy(spec)->name(), "sliding_window");
  spec.kind = GroupKind::kMamba;
  EXPECT_STREQ(MakeLayerPolicy(spec)->name(), "mamba");
  spec.kind = GroupKind::kSparsePyramid;
  spec.token_budget = 256;
  EXPECT_STREQ(MakeLayerPolicy(spec)->name(), "pyramid");
  spec.kind = GroupKind::kVisionEmbed;
  EXPECT_STREQ(MakeLayerPolicy(spec, /*tokens_per_image=*/100)->name(), "image_cache");
}

TEST(PolicyFactoryDeath, ImageGroupNeedsTokensPerImage) {
  KvGroupSpec spec;
  spec.kind = GroupKind::kCrossAttention;
  EXPECT_DEATH(MakeLayerPolicy(spec), "tokens_per_image");
}

}  // namespace
}  // namespace jenga
