// Invariant-checking macros for the Jenga library.
//
// JENGA_CHECK aborts (in all build modes) when a library invariant is violated; it is used for
// conditions that indicate a bug in this library or a contract violation by the caller, never
// for recoverable runtime conditions. JENGA_DCHECK compiles away in NDEBUG builds and guards
// hot-path invariants.

#ifndef JENGA_SRC_COMMON_CHECK_H_
#define JENGA_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace jenga {

// Terminates the process after printing a formatted check-failure message. Marked noreturn so
// that JENGA_CHECK can be used in functions with non-void returns without a dummy return.
[[noreturn]] inline void CheckFailure(const char* condition, const char* file, int line,
                                      const std::string& message) {
  std::fprintf(stderr, "JENGA_CHECK failed: %s at %s:%d%s%s\n", condition, file, line,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace jenga

// Aborts with a diagnostic when `cond` is false. Usage:
//   JENGA_CHECK(page_id < num_pages_) << "page out of range: " << page_id;
#define JENGA_CHECK(cond)                                                       \
  if (cond) {                                                                   \
  } else                                                                        \
    ::jenga::CheckStream(#cond, __FILE__, __LINE__)

// Equality/comparison helpers that include both operand values in the failure message.
#define JENGA_CHECK_EQ(a, b) JENGA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define JENGA_CHECK_NE(a, b) JENGA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define JENGA_CHECK_LT(a, b) JENGA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define JENGA_CHECK_LE(a, b) JENGA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define JENGA_CHECK_GT(a, b) JENGA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define JENGA_CHECK_GE(a, b) JENGA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define JENGA_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::jenga::CheckStream(#cond, __FILE__, __LINE__)
#else
#define JENGA_DCHECK(cond) JENGA_CHECK(cond)
#endif

namespace jenga {

// Stream-collecting helper behind JENGA_CHECK; aborts in the destructor so that all streamed
// context is included in the failure message.
class CheckStream {
 public:
  CheckStream(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;

  [[noreturn]] ~CheckStream() { CheckFailure(condition_, file_, line_, stream_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_CHECK_H_
