# Empty compiler generated dependencies file for multimodal_serving.
# This may be replaced when dependencies are built.
