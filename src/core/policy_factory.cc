#include "src/core/policy_factory.h"

#include "src/common/check.h"

namespace jenga {

std::unique_ptr<LayerPolicy> MakeLayerPolicy(const KvGroupSpec& spec, int tokens_per_image) {
  switch (spec.kind) {
    case GroupKind::kFullAttention:
      return std::make_unique<FullPrefixPolicy>();
    case GroupKind::kSlidingWindow:
      return std::make_unique<SlidingWindowPolicy>(spec.sliding_window);
    case GroupKind::kMamba:
      return std::make_unique<MambaPolicy>(kMambaCheckpointInterval);
    case GroupKind::kSparsePyramid:
      return std::make_unique<PyramidPolicy>(spec.token_budget, kPyramidNumSinks);
    case GroupKind::kCrossAttention:
    case GroupKind::kVisionEmbed:
      JENGA_CHECK_GT(tokens_per_image, 0)
          << "image groups need tokens_per_image for whole-image eviction";
      return std::make_unique<ImageCachePolicy>(tokens_per_image);
  }
  JENGA_CHECK(false) << "unhandled group kind";
}

}  // namespace jenga
