// shards>1 vs shards=1 differential: the sharded claim-bitmap allocator must satisfy every
// invariant the legacy free lists do (AllocatorAuditor + CheckConsistency) and must agree
// with the oracle on all aggregate accounting (used/evictable page counts, allocation
// success) across a long seeded schedule of allocate / hash / release / forget ops. Exact
// placement is allowed to differ — that is the point of sharding — so page ids are tracked
// per mode rather than compared across modes.

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/common/random.h"
#include "src/core/jenga_allocator.h"
#include "src/engine/engine.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

struct ModeState {
  explicit ModeState(const KvSpec& spec, int64_t pool_bytes, int shards)
      : alloc(spec, pool_bytes, /*large_page_bytes_override=*/0, shards) {}

  JengaAllocator alloc;
  // request -> pages currently held, per group (parallel to the op schedule).
  std::unordered_map<RequestId, std::vector<std::vector<SmallPageId>>> held;
};

// Applies one seeded operation to a mode and reports whether an allocation succeeded.
// Both modes receive the identical schedule; the RNG is forked once and replayed per mode.
void RunSchedule(ModeState& mode, uint64_t seed, int iterations, int num_groups) {
  Rng rng(seed);
  RequestId next_request = 1;
  std::vector<RequestId> active;
  BlockHash next_hash = 1000;
  // Keep the live working set under half the per-group capacity so allocation never fails —
  // in either mode. held/total_held evolve identically across modes (same deterministic
  // schedule), so this guard never desynchronizes the two runs.
  const int64_t capacity =
      (mode.alloc.lcm().num_pages()) * mode.alloc.group(0).pages_per_large();
  int64_t total_held = 0;
  for (int it = 0; it < iterations; ++it) {
    const int64_t action = rng.UniformInt(0, 9);
    if ((action <= 4 && total_held < capacity / 2) || active.empty()) {
      // Allocate a few pages in every group for a (possibly new) request. The schedule keeps
      // the live working set well under the pool, so allocation must always succeed — in
      // BOTH modes (success parity is part of the differential).
      RequestId request;
      if (active.size() < 6 && (active.empty() || rng.Bernoulli(0.5))) {
        request = next_request++;
        active.push_back(request);
        mode.held[request].resize(static_cast<size_t>(num_groups));
      } else {
        request = active[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(active.size()) - 1))];
      }
      const int64_t n = rng.UniformInt(1, 4);
      for (int g = 0; g < num_groups; ++g) {
        for (int64_t k = 0; k < n; ++k) {
          const auto page = mode.alloc.group(g).Allocate(request, static_cast<Tick>(it));
          ASSERT_TRUE(page.has_value()) << "allocation failed (iteration " << it << ", group "
                                        << g << ", shards " << mode.alloc.group(g).shards() << ")";
          mode.held[request][static_cast<size_t>(g)].push_back(*page);
          ++total_held;
        }
      }
      // Sometimes register content hashes so releases can keep cached pages around.
      if (rng.Bernoulli(0.4)) {
        for (int g = 0; g < num_groups; ++g) {
          const auto& pages = mode.held[request][static_cast<size_t>(g)];
          mode.alloc.group(g).SetContentHash(pages.back(), next_hash + static_cast<BlockHash>(g));
        }
        next_hash += 10;
      }
    } else {
      // Release a request, keeping cached content with probability 1/2; occasionally retire
      // its affinity state entirely.
      const size_t idx =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(active.size()) - 1));
      const RequestId request = active[idx];
      const bool keep_cached = rng.Bernoulli(0.5);
      for (int g = 0; g < num_groups; ++g) {
        for (const SmallPageId page : mode.held[request][static_cast<size_t>(g)]) {
          mode.alloc.group(g).Release(page, keep_cached);
          --total_held;
        }
      }
      mode.held.erase(request);
      active.erase(active.begin() + static_cast<int64_t>(idx));
      if (rng.Bernoulli(0.5)) {
        mode.alloc.ForgetRequest(request);
      }
    }
  }
}

TEST(ShardedAllocTest, DifferentialAgainstLegacyOracle) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  // Pool sized so the schedule's worst-case working set (6 requests × ≤4 pages × iterations
  // between releases) stays comfortably allocatable in both modes.
  const int64_t pool_bytes = spec.LcmPageBytes() * 96;
  const int num_groups = static_cast<int>(spec.groups.size());

  ModeState legacy(spec, pool_bytes, /*shards=*/1);
  ModeState sharded(spec, pool_bytes, /*shards=*/4);
  ASSERT_EQ(legacy.alloc.group(0).shards(), 1);
  ASSERT_EQ(sharded.alloc.group(0).shards(), 4);

  AllocatorAuditor legacy_auditor;
  AllocatorAuditor sharded_auditor;
  legacy_auditor.AttachAllocator(&legacy.alloc);
  sharded_auditor.AttachAllocator(&sharded.alloc);

  constexpr uint64_t kSeed = 20260807;
  constexpr int kIterations = 600;
  RunSchedule(legacy, kSeed, kIterations, num_groups);
  RunSchedule(sharded, kSeed, kIterations, num_groups);

  // Same schedule → same aggregate books, even though placement differs.
  for (int g = 0; g < num_groups; ++g) {
    const auto ls = legacy.alloc.group(g).GetStats();
    const auto ss = sharded.alloc.group(g).GetStats();
    EXPECT_EQ(ls.used_pages, ss.used_pages) << "group " << g;
    EXPECT_EQ(ls.used_bytes, ss.used_bytes) << "group " << g;
  }
  const auto lb = legacy.alloc.GetBreakdown();
  const auto sb = sharded.alloc.GetBreakdown();
  EXPECT_EQ(lb.used_bytes, sb.used_bytes);

  legacy.alloc.CheckConsistency();
  sharded.alloc.CheckConsistency();
  const auto legacy_violations = legacy_auditor.Audit();
  EXPECT_TRUE(legacy_violations.empty()) << legacy_violations.front();
  const auto sharded_violations = sharded_auditor.Audit();
  EXPECT_TRUE(sharded_violations.empty()) << sharded_violations.front();
  legacy_auditor.DetachAll();
  sharded_auditor.DetachAll();
}

// Engine-level: a preemption-heavy workload completes identically-accounted under
// alloc_shards=4, with the auditor green at the end. (The fig goldens pin shards=1; this is
// the sharded mode's substitute for byte-identity.)
TEST(ShardedAllocTest, EngineCompletesPreemptionWorkloadSharded) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.alloc_shards = 4;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;  // Pressure → preemptions.

  Engine engine(config);
  for (int i = 0; i < 6; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96, 100 + i * 100), 60, 0.0));
  }
  engine.RunToCompletion();

  EXPECT_EQ(engine.metrics().finished().size(), 6u);
  int preemptions = 0;
  for (const RequestRecord& record : engine.metrics().finished()) {
    preemptions += record.preemptions;
  }
  EXPECT_GT(preemptions, 0);
  engine.kv().CheckConsistency();
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << violations.front();
  auditor.DetachAll();
}

}  // namespace
}  // namespace jenga
