// Self-contained SHA-256 (FIPS 180-4), used where a compact content fingerprint is worth
// more than raw speed — e.g. the fleet differential tests, which compare a single-replica
// fleet's serialized output against the bare Engine's digest-for-digest. Not a hot-path
// hash; the allocator's chained block hashes stay on their own cheap mix function.

#ifndef JENGA_SRC_COMMON_SHA256_H_
#define JENGA_SRC_COMMON_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace jenga {

// Raw 32-byte digest of `data`.
[[nodiscard]] std::array<uint8_t, 32> Sha256(std::string_view data);

// Lowercase hex rendering of the digest (64 characters).
[[nodiscard]] std::string Sha256Hex(std::string_view data);

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_SHA256_H_
