# Empty compiler generated dependencies file for bench_fig17_prefix_caching.
# This may be replaced when dependencies are built.
