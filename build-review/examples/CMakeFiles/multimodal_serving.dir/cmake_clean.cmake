file(REMOVE_RECURSE
  "CMakeFiles/multimodal_serving.dir/multimodal_serving.cpp.o"
  "CMakeFiles/multimodal_serving.dir/multimodal_serving.cpp.o.d"
  "multimodal_serving"
  "multimodal_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
