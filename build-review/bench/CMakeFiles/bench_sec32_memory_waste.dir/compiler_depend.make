# Empty compiler generated dependencies file for bench_sec32_memory_waste.
# This may be replaced when dependencies are built.
