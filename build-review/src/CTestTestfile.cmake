# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("model")
subdirs("core")
subdirs("baseline")
subdirs("workload")
subdirs("metrics")
subdirs("engine")
