// Concurrent fleet serving: N ServingFrontends (one engine thread per replica) behind the
// same prefix-affinity routing policy as FleetRouter. Client threads call SubmitAsync from
// anywhere; the routing decision runs on the submitting thread against (a) the shared
// ClusterPrefixIndex, fed by each replica's engine thread through the allocator residency
// sinks, and (b) lock-free per-replica load snapshots that each engine thread publishes
// after every step.
//
// Unlike FleetRouter — the seeded single-threaded determinism reference — this path is
// deliberately NOT deterministic: load snapshots lag by up to a step and concurrent submits
// race for the same affine replica. Routing is advisory (see prefix_index.h), so the races
// affect locality, never correctness. Per-replica admission backpressure surfaces through
// TrySubmitAsync, which refuses (no side effects) while every replica is saturated.

#ifndef JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_
#define JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cluster/fleet_router.h"
#include "src/cluster/prefix_index.h"
#include "src/engine/frontend.h"

namespace jenga {

class FleetFrontend {
 public:
  // `options` applies to every replica frontend. A caller-supplied step_observer is chained
  // after the frontend's own load publication (the stress tests' auditor hook).
  explicit FleetFrontend(FleetConfig config, ServingFrontend::Options options = {});
  ~FleetFrontend();

  FleetFrontend(const FleetFrontend&) = delete;
  FleetFrontend& operator=(const FleetFrontend&) = delete;

  // --- Client API (any thread) ---

  // Routes and submits; blocks while the chosen replica's queue is full. Request ids must be
  // fleet-unique (NextRequestId()).
  StreamHandle SubmitAsync(Request request);
  // Backpressure-aware variant: false — and no side effects — when every replica is
  // saturated per the spill thresholds.
  [[nodiscard]] bool TrySubmitAsync(Request request, StreamHandle* out);
  // Cancels wherever the request was routed; unknown ids are a no-op.
  void CancelAsync(RequestId id);
  [[nodiscard]] RequestId NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Lifecycle ---

  void Start();
  // Shuts every replica frontend down (drain + join); idempotent, also run by the destructor.
  void Shutdown();
  // Spawns `n` client threads running `fn(client_index)` and joins them all.
  void RunClients(int n, const std::function<void(int)>& fn);

  // --- Introspection ---

  [[nodiscard]] int num_replicas() const { return static_cast<int>(fronts_.size()); }
  [[nodiscard]] ServingFrontend& replica(int i) { return *fronts_[static_cast<size_t>(i)]; }
  [[nodiscard]] const ClusterPrefixIndex& prefix_index() const { return *index_; }
  [[nodiscard]] bool routing_enabled() const { return routing_group_ >= 0; }
  // Routing counters snapshot (atomics; exact after Shutdown).
  [[nodiscard]] FleetCounters counters() const;
  // Sum of the replica frontends' own counters (exact after Shutdown).
  [[nodiscard]] ServingFrontend::Counters frontend_counters() const;
  // Replica the request was routed to; -1 for unknown ids.
  [[nodiscard]] int PlacementOf(RequestId id) const;

 private:
  struct ReplicaLoad {
    std::atomic<int64_t> waiting{0};
    std::atomic<int64_t> running{0};
    std::atomic<double> occupancy{0.0};
  };

  [[nodiscard]] RouteDecision Decide(const Request& request);
  void CountDecision(const RouteDecision& decision);

  FleetConfig config_;
  std::unique_ptr<ClusterPrefixIndex> index_;
  int routing_group_ = -1;
  int routing_block_size_ = 0;
  uint64_t routing_salt_ = 0;
  std::vector<std::unique_ptr<ReplicaLoad>> loads_;
  std::vector<std::unique_ptr<ServingFrontend>> fronts_;

  std::atomic<RequestId> next_id_{1};
  std::atomic<int64_t> rr_cursor_{0};
  std::atomic<bool> shut_down_{false};

  // Forever-growing like the engines' own request maps (same asymptotics); guarded because
  // submit and cancel race across client threads.
  mutable std::mutex placement_mu_;
  std::unordered_map<RequestId, int> placement_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> routed_affinity_{0};
  std::atomic<int64_t> routed_spill_{0};
  std::atomic<int64_t> routed_least_loaded_{0};
  std::atomic<int64_t> routed_round_robin_{0};
  std::atomic<int64_t> saturated_submits_{0};
  std::atomic<int64_t> backpressure_rejections_{0};
  std::atomic<int64_t> cancelled_{0};
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_FLEET_FRONTEND_H_
