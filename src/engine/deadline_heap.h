// Lazy min-heap over request deadlines. The engines used to find expired requests with a
// full scan of both scheduler queues on every step that had any deadline in flight —
// O(requests) per step even when nothing expired. The heap makes the per-step check O(1)
// (compare the earliest deadline against now) and each expiry O(log n).
//
// Entries are pushed once at Submit — deadlines are immutable for a request's lifetime, so
// preemption and re-admission need no heap updates. Deletion is lazy: requests that finish,
// fail, or are cancelled before their deadline leave a stale entry behind, which the owner
// discards when it surfaces at the top (the owner checks liveness against its request table).
// This mirrors the duplicate-tolerant reclaim heap in JengaAllocator.
//
// Expiry-order contract: the heap yields deadline order, but the engines' legacy cancel
// order is queue order (waiting first, then running). Callers that pop more than one expired
// entry for the same step must re-collect the expired set by scanning the queues — see
// Engine::ExpireDeadlines. Ties on deadline are therefore left unordered here.

#ifndef JENGA_SRC_ENGINE_DEADLINE_HEAP_H_
#define JENGA_SRC_ENGINE_DEADLINE_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/core/types.h"

namespace jenga {

class DeadlineHeap {
 public:
  struct Entry {
    double deadline = 0.0;
    RequestId id = kNoRequest;
  };

  void Push(double deadline, RequestId id) {
    heap_.push_back(Entry{deadline, id});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  // True when some entry (possibly stale) has deadline <= now. O(1).
  [[nodiscard]] bool HasExpired(double now) const {
    return !heap_.empty() && heap_.front().deadline <= now;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }
  [[nodiscard]] const Entry& top() const { return heap_.front(); }

  // Removes the earliest-deadline entry. O(log n).
  Entry PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    const Entry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

 private:
  // Min-heap on deadline: std::push_heap builds a max-heap, so order by "later deadline".
  static bool Later(const Entry& a, const Entry& b) { return a.deadline > b.deadline; }

  std::vector<Entry> heap_;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_DEADLINE_HEAP_H_
