// Figure 18: the vision-embedding cache case study — four VLMs on MMMU-pro with chunked
// prefill size 1024. Engines without the cache (vLLM/SGLang) re-run the vision encoder on
// every chunked-prefill step that consumes image tokens; Jenga encodes once per request
// (paper: 1.88x throughput and 1.60x latency improvement on average).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct VisionResult {
  double throughput = 0.0;
  double latency = 0.0;
  double encoder_runs_per_request = 0.0;
};

VisionResult RunOne(const ModelConfig& model, bool jenga, int count) {
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.max_batched_tokens_override = 1024;  // The paper's chunked-prefill size.
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  MmmuProDataset dataset(model.vision.tokens_per_image);
  Rng rng(0xF18);
  for (Request& r : GenerateBatch(dataset, count, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  VisionResult result;
  result.throughput = engine.metrics().RequestThroughput();
  result.latency = engine.metrics().MeanE2eLatency();
  result.encoder_runs_per_request = static_cast<double>(engine.metrics().vision_encoder_runs) /
                                    static_cast<double>(engine.metrics().CompletedRequests());
  return result;
}

void Run() {
  PrintHeader("Figure 18: Vision-embedding cache — MMMU-pro, chunked prefill 1024 (H100)");
  PrintRow({{22, "Model"},
            {13, "vLLM req/s"},
            {13, "Jenga req/s"},
            {9, "tput x"},
            {12, "vLLM E2EL"},
            {12, "Jenga E2EL"},
            {9, "lat x"},
            {14, "enc runs v/j"}});
  PrintRule();
  const std::vector<ModelConfig> models = {LlavaOneVision7B(), InternVl2_8B(), Phi3Vision4B(),
                                           Paligemma2_10B()};
  constexpr int kCount = 48;
  // One independent engine run per (model, engine): compute in parallel, print in order.
  std::vector<std::function<VisionResult()>> tasks;
  for (const ModelConfig& model : models) {
    tasks.emplace_back([&model] { return RunOne(model, false, kCount); });
    tasks.emplace_back([&model] { return RunOne(model, true, kCount); });
  }
  const std::vector<VisionResult> results = ParallelSweep(tasks);
  for (size_t row = 0; row < models.size(); ++row) {
    const ModelConfig& model = models[row];
    const VisionResult& vllm = results[2 * row];
    const VisionResult& jng = results[2 * row + 1];
    PrintRow({{22, model.name},
              {13, Fmt("%.3f", vllm.throughput)},
              {13, Fmt("%.3f", jng.throughput)},
              {9, Fmt("%.2fx", jng.throughput / vllm.throughput)},
              {12, Fmt("%.2fs", vllm.latency)},
              {12, Fmt("%.2fs", jng.latency)},
              {9, Fmt("%.2fx", vllm.latency / jng.latency)},
              {14, Fmt("%.1f", vllm.encoder_runs_per_request) + "/" +
                       Fmt("%.1f", jng.encoder_runs_per_request)}});
  }
  std::printf(
      "\nShape checks vs paper: without the cache the encoder re-runs once per image-bearing\n"
      "chunk (~#image-tokens/1024 times); with it exactly once per request — throughput and\n"
      "latency improve accordingly, most for models with many tokens per image.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
