#include "src/core/small_page_allocator.h"

#include <gtest/gtest.h>

#include <vector>

namespace jenga {
namespace {

// Provider that serves straight from the LCM free list (no whole-page eviction) and records
// reclaim-candidate notifications.
class SimpleProvider : public LargePageProvider {
 public:
  explicit SimpleProvider(LcmAllocator* lcm) : lcm_(lcm) {}

  std::optional<LargePageId> AcquireLargePage(int group_index) override {
    return lcm_->Allocate(group_index);
  }
  void OnReclaimCandidate(int group_index, LargePageId large, Tick timestamp) override {
    candidates.push_back({group_index, large, timestamp});
  }

  struct Candidate {
    int group;
    LargePageId large;
    Tick timestamp;
  };
  std::vector<Candidate> candidates;

 private:
  LcmAllocator* lcm_;
};

KvGroupSpec MakeGroup(int64_t page_bytes, int tokens_per_page = 16) {
  KvGroupSpec spec;
  spec.name = "test";
  spec.kind = GroupKind::kFullAttention;
  spec.page_bytes = page_bytes;
  spec.tokens_per_page = tokens_per_page;
  spec.num_layers = 1;
  spec.bytes_per_token_per_layer = page_bytes / tokens_per_page;
  return spec;
}

class SmallPageAllocatorTest : public ::testing::Test {
 protected:
  // 4 large pages of 768 bytes; the group under test uses 256-byte pages → 3 per large.
  SmallPageAllocatorTest()
      : lcm_(4 * 768, 768),
        provider_(&lcm_),
        alloc_(/*group_index=*/0, MakeGroup(256), &lcm_, &provider_) {}

  LcmAllocator lcm_;
  SimpleProvider provider_;
  SmallPageAllocator alloc_;
};

TEST_F(SmallPageAllocatorTest, PagesPerLarge) { EXPECT_EQ(alloc_.pages_per_large(), 3); }

TEST_F(SmallPageAllocatorTest, FirstAllocationAcquiresLargePage) {
  const auto page = alloc_.Allocate(/*request=*/1, /*now=*/0);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(lcm_.num_allocated(), 1);
  EXPECT_EQ(alloc_.state(*page), PageState::kUsed);
  EXPECT_EQ(alloc_.assoc(*page), 1);
  EXPECT_EQ(alloc_.ref_count(*page), 1);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, SameRequestFillsItsLargePageFirst) {
  // Request-aware allocation (§4.3): three pages of request 1 land in one large page.
  const SmallPageId a = *alloc_.Allocate(1, 0);
  const SmallPageId b = *alloc_.Allocate(1, 0);
  const SmallPageId c = *alloc_.Allocate(1, 0);
  EXPECT_EQ(a / 3, b / 3);
  EXPECT_EQ(b / 3, c / 3);
  EXPECT_EQ(lcm_.num_allocated(), 1);
  // The fourth allocation needs a second large page.
  (void)*alloc_.Allocate(1, 0);
  EXPECT_EQ(lcm_.num_allocated(), 2);
}

TEST_F(SmallPageAllocatorTest, InterleavedRequestsGetSeparateLargePages) {
  // Figure 8b: interleaved allocations from two requests must not share large pages while
  // fresh large pages are available.
  const SmallPageId a1 = *alloc_.Allocate(1, 0);
  const SmallPageId b1 = *alloc_.Allocate(2, 0);
  const SmallPageId a2 = *alloc_.Allocate(1, 0);
  const SmallPageId b2 = *alloc_.Allocate(2, 0);
  EXPECT_EQ(a1 / 3, a2 / 3);
  EXPECT_EQ(b1 / 3, b2 / 3);
  EXPECT_NE(a1 / 3, b1 / 3);
  EXPECT_EQ(lcm_.num_allocated(), 2);
}

TEST_F(SmallPageAllocatorTest, Step4FallsBackToForeignEmpties) {
  // Exhaust the pool with request 1's large pages (12 small pages), then release two.
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 12; ++i) {
    pages.push_back(*alloc_.Allocate(1, 0));
  }
  EXPECT_FALSE(alloc_.Allocate(2, 0).has_value());  // Fully exhausted.
  alloc_.Release(pages[0], /*keep_cached=*/false);
  // Request 2 has no associated empties and no fresh large page, but can take request 1's
  // freed page (step 4).
  const auto page = alloc_.Allocate(2, 1);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(*page, pages[0]);
  EXPECT_EQ(alloc_.assoc(*page), 2);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, FullyEmptyLargePageReturnsToLcm) {
  const SmallPageId a = *alloc_.Allocate(1, 0);
  const SmallPageId b = *alloc_.Allocate(1, 0);
  EXPECT_EQ(lcm_.num_allocated(), 1);
  alloc_.Release(a, false);
  EXPECT_EQ(lcm_.num_allocated(), 1);  // Still one used slot.
  alloc_.Release(b, false);
  EXPECT_EQ(lcm_.num_allocated(), 0);  // All three slots empty → returned.
  EXPECT_EQ(alloc_.GetStats().large_pages_held, 0);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, ReleaseWithoutHashGoesEmptyEvenIfCachingRequested) {
  const SmallPageId a = *alloc_.Allocate(1, 0);
  (void)*alloc_.Allocate(1, 0);  // Keep the large page held.
  alloc_.Release(a, /*keep_cached=*/true);
  EXPECT_EQ(alloc_.state(a), PageState::kEmpty);
}

TEST_F(SmallPageAllocatorTest, CachedReleaseBecomesEvictableAndIndexed) {
  const SmallPageId a = *alloc_.Allocate(1, 5);
  (void)*alloc_.Allocate(1, 5);
  alloc_.SetContentHash(a, 0xABCD);
  alloc_.Release(a, true);
  EXPECT_EQ(alloc_.state(a), PageState::kEvictable);
  EXPECT_EQ(alloc_.LookupCached(0xABCD), a);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, AddRefRevivesEvictablePage) {
  const SmallPageId a = *alloc_.Allocate(1, 5);
  (void)*alloc_.Allocate(1, 5);
  alloc_.SetContentHash(a, 0xABCD);
  alloc_.Release(a, true);
  alloc_.AddRef(a);
  EXPECT_EQ(alloc_.state(a), PageState::kUsed);
  EXPECT_EQ(alloc_.LookupCached(0xABCD), a);  // Still hittable while shared.
  alloc_.AddRef(a);
  EXPECT_EQ(alloc_.ref_count(a), 2);
  alloc_.Release(a, true);
  EXPECT_EQ(alloc_.state(a), PageState::kUsed);  // One reference remains.
  alloc_.Release(a, true);
  EXPECT_EQ(alloc_.state(a), PageState::kEvictable);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, Step5EvictsLruCachedPage) {
  // Fill the whole pool with cached evictable pages from request 1.
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 12; ++i) {
    const SmallPageId p = *alloc_.Allocate(1, /*now=*/i);
    alloc_.SetContentHash(p, 0x1000 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc_.Release(p, true);
  }
  EXPECT_EQ(alloc_.GetStats().evictable_pages, 12);
  // Next allocation must evict the LRU page (now=0) and erase its hash.
  const auto page = alloc_.Allocate(2, 100);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(*page, pages[0]);
  EXPECT_FALSE(alloc_.LookupCached(0x1000).has_value());
  EXPECT_TRUE(alloc_.LookupCached(0x1001).has_value());
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, DuplicateContentIsNotDoubleIndexed) {
  const SmallPageId a = *alloc_.Allocate(1, 0);
  const SmallPageId b = *alloc_.Allocate(1, 0);
  (void)*alloc_.Allocate(1, 0);  // Hold the large page.
  alloc_.SetContentHash(a, 0x77);
  alloc_.SetContentHash(b, 0x77);
  alloc_.Release(a, true);
  EXPECT_EQ(alloc_.state(a), PageState::kEvictable);
  // b duplicates a's content; caching it would be useless, so it goes empty.
  alloc_.Release(b, true);
  EXPECT_EQ(alloc_.state(b), PageState::kEmpty);
  EXPECT_EQ(alloc_.LookupCached(0x77), a);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, ReclaimCandidateNotifications) {
  const SmallPageId a = *alloc_.Allocate(1, 3);
  alloc_.SetContentHash(a, 0x1);
  alloc_.Release(a, true);
  ASSERT_FALSE(provider_.candidates.empty());
  const auto& candidate = provider_.candidates.back();
  EXPECT_EQ(candidate.group, 0);
  EXPECT_EQ(candidate.large, static_cast<LargePageId>(a / 3));
  EXPECT_EQ(candidate.timestamp, 3);
  EXPECT_TRUE(alloc_.IsReclaimCandidate(candidate.large));
  EXPECT_EQ(alloc_.ReclaimTimestamp(candidate.large), 3);
}

TEST_F(SmallPageAllocatorTest, ReclaimLargePageDropsCacheAndFrees) {
  const SmallPageId a = *alloc_.Allocate(1, 3);
  alloc_.SetContentHash(a, 0x1);
  alloc_.Release(a, true);
  const LargePageId large = static_cast<LargePageId>(a / 3);
  alloc_.ReclaimLargePage(large);
  EXPECT_EQ(lcm_.num_allocated(), 0);
  EXPECT_FALSE(alloc_.LookupCached(0x1).has_value());
  EXPECT_FALSE(alloc_.IsReclaimCandidate(large));
  EXPECT_EQ(alloc_.GetStats().large_pages_held, 0);
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, UpdateLastAccessProtectsFromEviction) {
  // Two cached pages; refreshing the older one flips the eviction order.
  SmallPageId a = *alloc_.Allocate(1, 0);
  SmallPageId b = *alloc_.Allocate(1, 1);
  SmallPageId filler = *alloc_.Allocate(1, 1);
  alloc_.SetContentHash(a, 0xA);
  alloc_.SetContentHash(b, 0xB);
  alloc_.Release(a, true);
  alloc_.Release(b, true);
  alloc_.UpdateLastAccess(a, 50);
  // Exhaust remaining capacity (3 large pages × 3 = 9 fresh pages).
  for (int i = 0; i < 9; ++i) {
    (void)*alloc_.Allocate(2, 60);
  }
  const auto victim_reuse = alloc_.Allocate(2, 61);  // Must evict b, not a.
  ASSERT_TRUE(victim_reuse.has_value());
  EXPECT_EQ(*victim_reuse, b);
  EXPECT_TRUE(alloc_.LookupCached(0xA).has_value());
  EXPECT_FALSE(alloc_.LookupCached(0xB).has_value());
  (void)filler;
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, StatsTrackBytes) {
  (void)*alloc_.Allocate(1, 0);
  const auto stats = alloc_.GetStats();
  EXPECT_EQ(stats.large_pages_held, 1);
  EXPECT_EQ(stats.used_pages, 1);
  EXPECT_EQ(stats.empty_pages, 2);
  EXPECT_EQ(stats.used_bytes, 256);
  EXPECT_EQ(stats.empty_bytes, 512);
}

TEST_F(SmallPageAllocatorTest, EpochSafetyAcrossLargePageRecycling) {
  // Allocate and free through several generations of the same large page; stale free-list
  // entries must never produce a double allocation.
  for (int round = 0; round < 5; ++round) {
    std::vector<SmallPageId> pages;
    for (int i = 0; i < 12; ++i) {
      const auto p = alloc_.Allocate(round, round);
      ASSERT_TRUE(p.has_value());
      pages.push_back(*p);
    }
    // All 12 distinct.
    std::sort(pages.begin(), pages.end());
    EXPECT_TRUE(std::adjacent_find(pages.begin(), pages.end()) == pages.end());
    for (const SmallPageId p : pages) {
      alloc_.Release(p, false);
    }
    EXPECT_EQ(lcm_.num_allocated(), 0);
  }
  alloc_.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, MambaStyleWholeLargePages) {
  // A group whose page size equals the LCM page: one small page per large page.
  SmallPageAllocator mamba(/*group_index=*/1, MakeGroup(768, 16), &lcm_, &provider_);
  EXPECT_EQ(mamba.pages_per_large(), 1);
  const SmallPageId state = *mamba.Allocate(9, 0);
  EXPECT_EQ(lcm_.num_allocated(), 1);
  mamba.Release(state, false);
  EXPECT_EQ(lcm_.num_allocated(), 0);
  mamba.CheckConsistency();
}

TEST_F(SmallPageAllocatorTest, DeathOnForeignPage) {
  EXPECT_DEATH(alloc_.Release(99, false), "not resident");
}

TEST_F(SmallPageAllocatorTest, DeathOnDoubleRelease) {
  const SmallPageId a = *alloc_.Allocate(1, 0);
  (void)*alloc_.Allocate(1, 0);
  alloc_.Release(a, false);
  EXPECT_DEATH(alloc_.Release(a, false), "non-used");
}

}  // namespace
}  // namespace jenga
