// Analytic PCIe transfer model for the host-memory KV tier. Mirrors GpuSim in spirit: the
// absolute numbers are approximate, but transfer time scales correctly with bytes moved and
// link bandwidth, which is what the swap-vs-recompute crossover depends on.
//
// Two cost shapes:
//   - Swap events (preempt-by-swap of a whole request) pay `per_transfer_latency` on top of
//     the bandwidth term: the engine must quiesce the request, gather its scattered small
//     pages through a pinned staging buffer, and synchronize the copy stream.
//   - Background page streaming (second-chance prefix-cache pages trickling to/from host)
//     is batched and pays bandwidth only.
//
// Transfers overlap with compute up to `overlap_fraction` of the concurrent compute time;
// only the remainder stalls the engine (see StallTime).

#ifndef JENGA_SRC_OFFLOAD_PCIE_SIM_H_
#define JENGA_SRC_OFFLOAD_PCIE_SIM_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/fault/fault_injector.h"

namespace jenga {

struct PcieSpec {
  // Effective sustained host↔device bandwidth (bytes/s). Defaults approximate a PCIe 5.0 x16
  // link after protocol overhead.
  double h2d_bandwidth = 32e9;
  double d2h_bandwidth = 32e9;
  // Fixed cost per swap event (stream sync + pinned staging of scattered pages).
  double per_transfer_latency = 1.5e-3;
  // Fraction of concurrent compute time a transfer can hide behind (copy-engine overlap).
  double overlap_fraction = 0.5;
  // Budget a hung transfer burns before the engine gives up on it (injected kPcieTimeout
  // faults charge exactly this much stall).
  double timeout_seconds = 0.05;
};

enum class PcieDirection { kH2D, kD2H };

class PcieSim {
 public:
  PcieSim() = default;
  explicit PcieSim(PcieSpec spec) : spec_(spec) {}

  // Swap-event transfer times (latency + bandwidth).
  [[nodiscard]] double H2DTime(int64_t bytes) const {
    return bytes > 0 ? spec_.per_transfer_latency + static_cast<double>(bytes) / spec_.h2d_bandwidth
                     : 0.0;
  }
  [[nodiscard]] double D2HTime(int64_t bytes) const {
    return bytes > 0 ? spec_.per_transfer_latency + static_cast<double>(bytes) / spec_.d2h_bandwidth
                     : 0.0;
  }

  // Batched background streaming (prefix-cache pages): bandwidth only.
  [[nodiscard]] double H2DStreamTime(int64_t bytes) const {
    return bytes > 0 ? static_cast<double>(bytes) / spec_.h2d_bandwidth : 0.0;
  }
  [[nodiscard]] double D2HStreamTime(int64_t bytes) const {
    return bytes > 0 ? static_cast<double>(bytes) / spec_.d2h_bandwidth : 0.0;
  }

  // Engine stall caused by `transfer_time` of pending copies while `compute_time` of step
  // compute runs concurrently: overlap hides up to overlap_fraction × compute_time.
  [[nodiscard]] double StallTime(double transfer_time, double compute_time) const {
    const double hidden = spec_.overlap_fraction * compute_time;
    return transfer_time > hidden ? transfer_time - hidden : 0.0;
  }

  // Fault injection (nullptr = disabled; BeginTransfer is then an unconditional OK).
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  // Consults the injector for one swap-event transfer in `dir`. Returns:
  //   OK                — the transfer proceeds,
  //   UNAVAILABLE       — injected link error; the caller may retry with backoff,
  //   DEADLINE_EXCEEDED — injected hang; the caller charges spec().timeout_seconds and
  //                       gives up on this transfer (retrying a hung link is pointless).
  [[nodiscard]] Status BeginTransfer(PcieDirection dir) {
    if (fault_ == nullptr) {
      return Status::Ok();
    }
    const FaultSite site = dir == PcieDirection::kH2D ? FaultSite::kPcieH2D : FaultSite::kPcieD2H;
    if (fault_->Fire(site)) {
      return Status::Unavailable("injected PCIe transfer error");
    }
    if (fault_->Fire(FaultSite::kPcieTimeout)) {
      return Status::DeadlineExceeded("injected PCIe transfer timeout");
    }
    return Status::Ok();
  }

  [[nodiscard]] const PcieSpec& spec() const { return spec_; }

 private:
  PcieSpec spec_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace jenga

#endif  // JENGA_SRC_OFFLOAD_PCIE_SIM_H_
