file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_request_aware.dir/bench_sec43_request_aware.cc.o"
  "CMakeFiles/bench_sec43_request_aware.dir/bench_sec43_request_aware.cc.o.d"
  "bench_sec43_request_aware"
  "bench_sec43_request_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_request_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
