// Figure 14: mean E2E latency, TTFT, and TPOT vs request rate for the Llama 3.2 11B Vision
// model (mllama) under Poisson arrivals, vLLM vs Jenga. Expected shape: parity at low rates,
// then vLLM's latency explodes (queueing behind wasted memory) while Jenga degrades slowly;
// Jenga's TPOT is slightly higher because it batches more requests per step (§7.2).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct LatencyResult {
  double e2el = 0.0;
  double ttft = 0.0;
  double tpot = 0.0;
  int64_t completed = 0;
};

LatencyResult RunOne(bool jenga, double rate, int count) {
  const ModelConfig model = Llama32_11B_Vision();
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.memory_sample_every = 0;
  Engine engine(config);
  MmmuProDataset dataset(model.vision.tokens_per_image);
  Rng rng(0xF14 + static_cast<uint64_t>(rate * 100));
  for (Request& r : GeneratePoisson(dataset, count, rate, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  LatencyResult result;
  result.e2el = engine.metrics().MeanE2eLatency();
  result.ttft = engine.metrics().MeanTtft();
  result.tpot = engine.metrics().MeanTpot();
  result.completed = engine.metrics().CompletedRequests();
  return result;
}

void Run() {
  PrintHeader("Figure 14: Latency vs request rate — Llama 3.2 11B Vision (mllama), H100");
  PrintRow({{10, "req/s"},
            {14, "vLLM E2EL"},
            {14, "Jenga E2EL"},
            {14, "vLLM TTFT"},
            {14, "Jenga TTFT"},
            {14, "vLLM TPOT"},
            {14, "Jenga TPOT"}});
  PrintRule();
  constexpr int kCount = 120;
  const std::vector<double> kRates = {0.4, 0.8, 1.2, 1.6, 2.0, 2.4};
  // Runs are self-seeded by their rate: compute in parallel, print in figure order.
  std::vector<std::function<LatencyResult()>> tasks;
  for (const double rate : kRates) {
    tasks.emplace_back([rate] { return RunOne(false, rate, kCount); });
    tasks.emplace_back([rate] { return RunOne(true, rate, kCount); });
  }
  const std::vector<LatencyResult> results = ParallelSweep(tasks);
  for (size_t row = 0; row < kRates.size(); ++row) {
    const double rate = kRates[row];
    const LatencyResult& vllm = results[2 * row];
    const LatencyResult& jng = results[2 * row + 1];
    PrintRow({{10, Fmt("%.1f", rate)},
              {14, Fmt("%.2fs", vllm.e2el)},
              {14, Fmt("%.2fs", jng.e2el)},
              {14, Fmt("%.2fs", vllm.ttft)},
              {14, Fmt("%.2fs", jng.ttft)},
              {14, Fmt("%.1fms", vllm.tpot * 1e3)},
              {14, Fmt("%.1fms", jng.tpot * 1e3)}});
  }
  std::printf(
      "\nShape checks vs paper: near-parity at low rate; at high rate Jenga's E2EL and TTFT\n"
      "stay flat while vLLM's grow (up to 2.24x E2EL / 29x TTFT in the paper); Jenga's TPOT\n"
      "is slightly higher because each step batches more requests.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
