// §3.2: memory waste of PagedAttention on heterogeneous models — the 79.6 % (mllama on
// MMMU-pro), up-to-25 % (Gemma-2), and 56.25 % (Ministral) numbers, both in closed form (the
// paper's own arithmetic) and measured by replaying a request through the two managers.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/engine/kv_manager.h"
#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Measured waste: run one request of the given shape through the homogeneous manager and
// report wasted / (needed + wasted).
double MeasuredWaste(const ModelConfig& model, const Prompt& prompt) {
  const int bs = 16;
  KvManager::Options options;
  options.tokens_per_page = bs;
  options.enable_prefix_caching = false;
  options.jenga = false;
  const int64_t pool = 256LL * 1024 * 1024 * 1024;  // Large enough to never evict.
  KvManager kv(MakeHomogeneousSpec(model, bs), MakeJengaSpec(model, bs, false), pool, options);
  Request r = MakeRequest(1, prompt, 2, 0.0);
  kv.OnAdmit(r, 1);
  const bool ok = kv.AllocateForTokens(r, r.prompt_len(), 1);
  if (!ok) {
    return -1.0;
  }
  r.num_computed_tokens = r.prompt_len();
  kv.OnStepComputed(r, 1);
  const KvManager::MemoryStats stats = kv.GetMemoryStats();
  return static_cast<double>(stats.wasted_bytes) /
         static_cast<double>(stats.used_bytes + stats.internal_frag_bytes);
}

Prompt MllamaPrompt() {
  // The MMMU-pro averages: 43 text + 6193 image tokens.
  Prompt prompt;
  for (int i = 0; i < 43; ++i) {
    prompt.tokens.push_back(i);
    prompt.kinds.push_back(TokenKind::kText);
  }
  for (int i = 0; i < 6193; ++i) {
    prompt.tokens.push_back(1000 + i);
    prompt.kinds.push_back(TokenKind::kImage);
  }
  prompt.num_images = 4;
  return prompt;
}

void Run() {
  PrintHeader("Sec 3.2: PagedAttention memory waste on heterogeneous models");
  PrintRow({{28, "Model / workload"},
            {18, "Paper (formula)"},
            {18, "Closed form"},
            {18, "Measured"}});
  PrintRule();

  // mllama: (T+I)·40·E allocated vs T·32·E + I·8·E needed.
  {
    const double t = 43.0;
    const double i = 6193.0;
    const double closed = 1.0 - (t * 32 + i * 8) / ((t + i) * 40);
    const double measured = MeasuredWaste(Llama32_11B_Vision(), MllamaPrompt());
    PrintRow({{28, "mllama 11B / MMMU-pro"},
              {18, "79.6%"},
              {18, Pct(closed)},
              {18, Pct(measured)}});
  }
  // Gemma-2: half the layers sliding (4096) at max context 8192.
  {
    const ModelConfig model = Gemma2_27B();
    const double closed = 0.5 * (1.0 - 4096.0 / model.max_context_len);
    Prompt prompt;
    for (int i = 0; i < model.max_context_len - 64; ++i) {
      prompt.tokens.push_back(i % 50000);
    }
    const double measured = MeasuredWaste(model, prompt);
    PrintRow({{28, "Gemma-2 27B / max context"},
              {18, "25%"},
              {18, Pct(closed)},
              {18, Pct(measured)}});
  }
  // Ministral: 27/36 layers sliding (32768) at max context 131072.
  {
    const ModelConfig model = Ministral8B();
    const double closed = (27.0 / 36.0) * (1.0 - 32768.0 / model.max_context_len);
    Prompt prompt;
    for (int i = 0; i < model.max_context_len - 64; ++i) {
      prompt.tokens.push_back(i % 50000);
    }
    const double measured = MeasuredWaste(model, prompt);
    PrintRow({{28, "Ministral 8B / max context"},
              {18, "56.25%"},
              {18, Pct(closed)},
              {18, Pct(measured)}});
  }
  std::printf(
      "\nMeasured values replay one request through the homogeneous (PagedAttention-style)\n"
      "manager and report wasted/(needed+wasted); small deltas vs the closed form come from\n"
      "block-granularity padding.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
