#include "src/common/random.h"

#include <cmath>

namespace jenga {

double Rng::Exponential(double rate) {
  JENGA_CHECK_GT(rate, 0.0);
  // 1 - U is in (0, 1], avoiding log(0).
  return -std::log(1.0 - UniformDouble()) / rate;
}

double Rng::Normal(double mean, double stddev) {
  const double u1 = 1.0 - UniformDouble();
  const double u2 = UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace jenga
