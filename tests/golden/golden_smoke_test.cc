// Golden smoke tests: shrunken fig13 / fig17 / fig19 configurations whose full numeric
// output is byte-compared against committed mini-goldens. The figure benches themselves are
// too slow for ctest; these runs exercise the same engine profiles, datasets, and metrics
// (a few seconds total) and catch any unintended behavior change as a one-line diff.
//
// Regenerate after a *deliberate* behavior change with:
//   JENGA_REGEN_GOLDENS=1 ./build/tests/golden_smoke_test
// then review the diff of tests/golden/data/ like any other code change.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

std::string Num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

// --- fig13 (end-to-end throughput, vLLM vs Jenga) ------------------------------------

void AppendEngineRun(const char* label, const ModelConfig& model, bool jenga,
                     const std::vector<Request>& requests, std::ostringstream& out) {
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  for (const Request& r : requests) {
    engine.Submit(r);
  }
  engine.RunToCompletion();
  const EngineMetrics& m = engine.metrics();
  out << label << (jenga ? " jenga" : " vllm") << ": req/s=" << Num(m.RequestThroughput())
      << " tok/s=" << Num(m.TokenThroughput()) << " completed=" << m.CompletedRequests()
      << " failed=" << m.FailedRequests() << " hits=" << m.cache_hit_tokens
      << " recomputed=" << m.recomputed_tokens << " vision=" << m.vision_encoder_runs
      << "\n";
}

std::string Fig13Digest() {
  std::ostringstream out;
  out << "fig13-smoke (H100, shrunken row counts)\n";
  {
    const ModelConfig model = Llama32_11B_Vision();
    MmmuProDataset dataset(model.vision.tokens_per_image);
    Rng rng(0xF13A);
    const std::vector<Request> requests = GenerateBatch(dataset, 12, rng);
    AppendEngineRun("mllama-11b-vision/MMMU", model, false, requests, out);
    AppendEngineRun("mllama-11b-vision/MMMU", model, true, requests, out);
  }
  {
    const ModelConfig model = Gemma2_27B();
    ArxivQaDataset dataset(/*articles=*/3, 5000, 7800, /*seed=*/0xF13B);
    Rng rng(0xF13C);
    std::vector<Request> requests;
    for (int i = 0; i < 6; ++i) {
      WorkloadItem item = dataset.SampleForArticle(i % 3, rng);
      requests.push_back(MakeRequest(i, std::move(item.prompt), item.output_len, 0.0));
    }
    AppendEngineRun("gemma-2-27b/arXiv-QA", model, false, requests, out);
    AppendEngineRun("gemma-2-27b/arXiv-QA", model, true, requests, out);
  }
  {
    const ModelConfig model = Llama3_70B_Fp8();
    MmluProDataset dataset;
    Rng rng(0xF13D);
    const std::vector<Request> requests = GenerateBatch(dataset, 16, rng);
    AppendEngineRun("llama-70b-fp8/MMLU", model, false, requests, out);
    AppendEngineRun("llama-70b-fp8/MMLU", model, true, requests, out);
  }
  return out.str();
}

// --- fig17 (prefix caching vs article count) -----------------------------------------

std::string Fig17Digest() {
  std::ostringstream out;
  out << "fig17-smoke (Gemma-2 27B, H100, 4 questions per article)\n";
  for (const int articles : {2, 5}) {
    for (const bool jenga : {false, true}) {
      const ModelConfig model = Gemma2_27B();
      EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
      config.memory_sample_every = 0;
      config.max_num_seqs_override = 1;
      config.memory_fraction = 0.55;
      Engine engine(std::move(config));
      ArxivQaDataset dataset(articles, 7200, 7800, /*seed=*/0xF17 + articles,
                             /*output_lo=*/16, /*output_hi=*/48);
      Rng rng(0x17AA + articles);
      int64_t total_prompt_tokens = 0;
      RequestId id = 0;
      for (int q = 0; q < articles * 4; ++q) {
        const int article = static_cast<int>(rng.UniformInt(0, articles - 1));
        WorkloadItem item = dataset.SampleForArticle(article, rng);
        total_prompt_tokens += static_cast<int64_t>(item.prompt.size());
        engine.Submit(MakeRequest(id++, std::move(item.prompt), item.output_len, 0.0));
      }
      engine.RunToCompletion();
      const EngineMetrics& m = engine.metrics();
      out << "articles=" << articles << (jenga ? " jenga" : " vllm")
          << ": hit_tokens=" << m.cache_hit_tokens << "/" << total_prompt_tokens
          << " req/s=" << Num(m.RequestThroughput()) << " recomputed=" << m.recomputed_tokens
          << "\n";
    }
  }
  return out.str();
}

// --- fig19 (speculative decoding strategies) -----------------------------------------

std::string Fig19Digest() {
  std::ostringstream out;
  out << "fig19-smoke (H100, shrunken request counts)\n";
  struct Pair {
    const char* label;
    ModelConfig target;
    ModelConfig draft;
    bool long_context;
    int count;
  };
  const std::vector<Pair> pairs = {
      {"llama-70b-fp8+1b", Llama3_70B_Fp8(), Llama32_1B(), false, 12},
      {"gemma2-27b+2b", Gemma2_27B(), Gemma2_2B(), true, 4},
      {"jamba-52b-fp8+1b", Jamba52B_Fp8(), Llama32_1B(), false, 12},
  };
  for (const Pair& pair : pairs) {
    for (const SpecStrategy strategy :
         {SpecStrategy::kVllmMax, SpecStrategy::kVllmManual, SpecStrategy::kJenga}) {
      std::unique_ptr<Dataset> dataset;
      if (pair.long_context) {
        const int64_t max_len = 24000;
        dataset = std::make_unique<ArxivQaDataset>(pair.count, max_len - 2000, max_len,
                                                   0x19BB, /*output_lo=*/256,
                                                   /*output_hi=*/512);
      } else {
        dataset = std::make_unique<MmluProDataset>(/*output_lo=*/256, /*output_hi=*/1024);
      }
      SpecDecodeConfig config;
      config.target = pair.target;
      config.draft = pair.draft;
      config.gpu = H100();
      config.strategy = strategy;
      config.seed = 0xF19;
      SpecDecodeEngine engine(std::move(config));
      Rng rng(0x19AA);
      for (Request& r : GenerateBatch(*dataset, pair.count, rng)) {
        engine.Submit(std::move(r));
      }
      engine.RunToCompletion();
      out << pair.label << " " << SpecStrategyName(strategy)
          << ": req/s=" << Num(engine.metrics().RequestThroughput())
          << " completed=" << engine.metrics().CompletedRequests()
          << " failed=" << engine.metrics().FailedRequests() << "\n";
    }
  }
  return out.str();
}

// --- golden comparison ----------------------------------------------------------------

std::string GoldenPath(const char* name) {
  return std::string(JENGA_SOURCE_DIR) + "/tests/golden/data/" + name;
}

void CompareOrRegen(const char* name, const std::string& digest) {
  const std::string path = GoldenPath(name);
  if (std::getenv("JENGA_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << digest;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with JENGA_REGEN_GOLDENS=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(digest, expected.str())
      << "golden mismatch for " << name
      << "; if the behavior change is intentional, regenerate with JENGA_REGEN_GOLDENS=1 "
      << "and review the diff";
}

TEST(GoldenSmoke, Fig13Throughput) { CompareOrRegen("fig13_smoke.golden", Fig13Digest()); }

TEST(GoldenSmoke, Fig17PrefixCaching) { CompareOrRegen("fig17_smoke.golden", Fig17Digest()); }

TEST(GoldenSmoke, Fig19SpecDecode) { CompareOrRegen("fig19_smoke.golden", Fig19Digest()); }

}  // namespace
}  // namespace jenga
