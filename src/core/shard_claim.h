// Lock-free empty-page claim index for the sharded SmallPageAllocator mode (shards > 1).
//
// Purpose: when the engine loop goes multi-threaded, admission on one KV group must not
// serialize against another on the shared "any empty page" free list. The index keeps one
// atomic bitmap word strip per large page (bit set = slot is empty and claimable) and
// partitions large pages round-robin across shards; each shard scans its own partition with
// a rotating cursor, so concurrent claimers mostly touch disjoint cache lines.
//
// The claim idiom (acquire-load the word, pick a set bit, clear it with a fetch_and at
// acq_rel, and treat "the bit was set in the fetched previous value" as winning the race)
// follows the find-and-claim page-group pattern used by production block allocators; losing
// a race is not an error — the loser just rescans.
//
// Determinism: under a single thread, Publish/Claim order fully determines FindAndClaim
// results, but the *placement policy* differs from the legacy FreeRef lists (bitmap order vs
// LIFO-with-epochs). That is why shards=1 bypasses this index entirely and keeps the legacy
// lists as the bit-identical deterministic oracle (DESIGN.md §9); shards>1 runs are checked
// by the AllocatorAuditor instead of golden outputs.

#ifndef JENGA_SRC_CORE_SHARD_CLAIM_H_
#define JENGA_SRC_CORE_SHARD_CLAIM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/core/types.h"

namespace jenga {

class ShardedClaimIndex {
 public:
  ShardedClaimIndex(int shards, int64_t num_larges, int slots_per_large)
      : shards_(shards),
        num_larges_(num_larges),
        slots_per_large_(slots_per_large),
        words_per_large_((slots_per_large + 63) / 64) {
    JENGA_CHECK(shards >= 1) << "ShardedClaimIndex needs >= 1 shard";
    JENGA_CHECK(slots_per_large >= 1) << "ShardedClaimIndex needs >= 1 slot per large";
    const size_t num_words =
        static_cast<size_t>(num_larges) * static_cast<size_t>(words_per_large_);
    words_ = std::make_unique<std::atomic<uint64_t>[]>(num_words);
    for (size_t i = 0; i < num_words; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
    cursors_ = std::make_unique<ShardCursor[]>(static_cast<size_t>(shards));
  }

  ShardedClaimIndex(const ShardedClaimIndex&) = delete;
  ShardedClaimIndex& operator=(const ShardedClaimIndex&) = delete;

  // Marks (large, slot) claimable. Release so a claimer that sees the bit also sees the
  // slot-metadata writes that preceded publication.
  void Publish(LargePageId large, int slot) {
    const uint64_t bit = uint64_t{1} << (slot & 63);
    const uint64_t prev =
        Word(large, slot).fetch_or(bit, std::memory_order_acq_rel);
    JENGA_CHECK((prev & bit) == 0) << "ShardedClaimIndex: double publish of a slot";
    ShardState(large).population.fetch_add(1, std::memory_order_relaxed);
  }

  // Claims (large, slot) if currently claimable. Returns false when another claimer (or a
  // ClearLarge) got there first.
  [[nodiscard]] bool TryClaim(LargePageId large, int slot) {
    const uint64_t bit = uint64_t{1} << (slot & 63);
    const uint64_t prev =
        Word(large, slot).fetch_and(~bit, std::memory_order_acq_rel);
    if ((prev & bit) == 0) return false;
    ShardState(large).population.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Withdraws every claimable slot of `large` (the page is leaving this group: reclaimed or
  // returned to the LCM allocator). Only meaningful when no claimer can still win a race for
  // these slots — the allocator guarantees that by never clearing a large that has published
  // slots another thread could legally claim mid-release.
  void ClearLarge(LargePageId large) {
    int64_t cleared = 0;
    const size_t base = static_cast<size_t>(large) * static_cast<size_t>(words_per_large_);
    for (int w = 0; w < words_per_large_; ++w) {
      const uint64_t prev = words_[base + static_cast<size_t>(w)].exchange(
          0, std::memory_order_acq_rel);
      cleared += __builtin_popcountll(prev);
    }
    if (cleared > 0) {
      ShardState(large).population.fetch_sub(cleared, std::memory_order_relaxed);
    }
  }

  // Scans the shard owning `shard_hint % shards()` starting after its last hit; claims and
  // returns one (large, slot), or nullopt when the whole shard ring is empty. Spills into
  // the other shards before giving up, so a lopsided hint distribution cannot strand memory.
  [[nodiscard]] std::optional<std::pair<LargePageId, int>> FindAndClaim(int64_t shard_hint) {
    const int home = static_cast<int>(((shard_hint % shards_) + shards_) % shards_);
    for (int s = 0; s < shards_; ++s) {
      const int shard = (home + s) % shards_;
      if (auto hit = ScanShard(shard)) return hit;
    }
    return std::nullopt;
  }

  [[nodiscard]] int shards() const { return shards_; }

  // Reads (without claiming) whether (large, slot) is currently claimable. Consistency
  // checks and tests; racy under concurrent claimers.
  [[nodiscard]] bool IsClaimable(LargePageId large, int slot) const {
    const size_t index =
        static_cast<size_t>(large) * static_cast<size_t>(words_per_large_) +
        static_cast<size_t>(slot >> 6);
    const uint64_t bit = uint64_t{1} << (slot & 63);
    return (words_[index].load(std::memory_order_acquire) & bit) != 0;
  }

  // Exact only when quiescent; tests and stats use.
  [[nodiscard]] int64_t ClaimableApprox() const {
    int64_t total = 0;
    for (int s = 0; s < shards_; ++s) {
      total += cursors_[static_cast<size_t>(s)].population.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  // Per-shard mutable state on its own cache line: the rotating scan cursor (an index into
  // the shard's large-page sequence) and an approximate population counter for early-exit.
  struct alignas(64) ShardCursor {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> population{0};
  };

  [[nodiscard]] std::atomic<uint64_t>& Word(LargePageId large, int slot) {
    return words_[static_cast<size_t>(large) * static_cast<size_t>(words_per_large_) +
                  static_cast<size_t>(slot >> 6)];
  }
  [[nodiscard]] ShardCursor& ShardState(LargePageId large) {
    return cursors_[static_cast<size_t>(large % shards_)];
  }
  // Number of large pages in `shard`'s partition {shard, shard+S, shard+2S, ...}.
  [[nodiscard]] int64_t ShardLarges(int shard) const {
    return (num_larges_ - shard + shards_ - 1) / shards_;
  }

  [[nodiscard]] std::optional<std::pair<LargePageId, int>> ScanShard(int shard) {
    ShardCursor& cur = cursors_[static_cast<size_t>(shard)];
    const int64_t count = ShardLarges(shard);
    if (count == 0) return std::nullopt;
    if (cur.population.load(std::memory_order_acquire) <= 0) return std::nullopt;
    const int64_t start = cur.next.load(std::memory_order_relaxed) % count;
    for (int64_t i = 0; i < count; ++i) {
      const int64_t pos = start + i < count ? start + i : start + i - count;
      const auto large = static_cast<LargePageId>(shard + pos * shards_);
      const size_t base =
          static_cast<size_t>(large) * static_cast<size_t>(words_per_large_);
      for (int w = 0; w < words_per_large_; ++w) {
        std::atomic<uint64_t>& word = words_[base + static_cast<size_t>(w)];
        uint64_t observed = word.load(std::memory_order_acquire);
        while (observed != 0) {
          const int bit = __builtin_ctzll(observed);
          const uint64_t mask = uint64_t{1} << bit;
          const uint64_t prev = word.fetch_and(~mask, std::memory_order_acq_rel);
          if ((prev & mask) != 0) {  // Won the race for this bit.
            cur.population.fetch_sub(1, std::memory_order_relaxed);
            cur.next.store(pos, std::memory_order_relaxed);
            return std::make_pair(large, w * 64 + bit);
          }
          observed = prev & ~mask;  // Lost; retry the remaining bits we saw.
        }
      }
    }
    return std::nullopt;
  }

  const int shards_;
  const int64_t num_larges_;
  const int slots_per_large_;
  const int words_per_large_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  std::unique_ptr<ShardCursor[]> cursors_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_SHARD_CLAIM_H_
