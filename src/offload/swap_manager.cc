#include "src/offload/swap_manager.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace jenga {

// Per-manager adapter: tags allocator eviction callbacks with the manager index so host-pool
// keys stay unique when several KvManagers (speculative decoding) share one SwapManager.
struct SwapManager::ManagerSink final : CacheEvictionSink {
  SwapManager* owner = nullptr;
  int manager_index = 0;
  std::vector<char> group_swap_eligible;
  std::vector<int64_t> group_page_bytes;

  void OnCacheEvicted(int group_index, BlockHash hash, int64_t page_bytes,
                      int64_t prefix_length, Tick last_access) override {
    if (!owner->config_.host_prefix_cache || owner->degraded_) {
      return;
    }
    JENGA_CHECK_LT(static_cast<size_t>(group_index), group_swap_eligible.size());
    // Unlike preemption swap sets (where SwapEligible() gates transfers and ineligible groups
    // are recomputed on restore), the second-chance cache parks every group's evictions: the
    // hit scan demands residency at a common boundary across ALL groups, so a hole in a
    // sliding-window group would cap the valid prefix no matter how much full-attention KV
    // the host holds. Out-of-window parked pages are never promoted and age out of the
    // host LRU naturally.
    HostCachePage page;
    page.bytes = page_bytes;
    page.prefix_length = prefix_length;
    page.evicted_at = last_access;
    const int64_t injected_before = owner->host_.injected_failures();
    if (owner->host_.PutPage({manager_index, group_index, hash}, page)) {
      owner->pending_transfer_ += owner->pcie_.D2HStreamTime(page_bytes);
      owner->stats_.host_pages_stored += 1;
      owner->stats_.swap_out_bytes += page_bytes;
    } else if (owner->host_.injected_failures() > injected_before) {
      // Injected allocation failure: the page is simply not parked (second-chance is an
      // optimization, losing one page is safe), but repeated failures degrade the tier.
      owner->OnInjectedHostFailure();
    }
  }
};

SwapManager::SwapManager(OffloadConfig config, SwapCostParams cost)
    : config_(config), cost_(cost), pcie_(config.pcie), host_(config.host_pool_bytes) {
  JENGA_CHECK_GT(cost_.gpu_flops, 0.0);
  JENGA_CHECK_GT(cost_.gpu_mem_bandwidth, 0.0);
  JENGA_CHECK_GT(cost_.chunk_tokens, 0);
}

SwapManager::~SwapManager() = default;

CacheEvictionSink* SwapManager::RegisterManager(int manager_index,
                                                std::vector<char> group_swap_eligible,
                                                std::vector<int64_t> group_page_bytes) {
  JENGA_CHECK_LE(manager_index, static_cast<int>(sinks_.size()))
      << "managers must register in index order";
  auto sink = std::make_unique<ManagerSink>();
  sink->owner = this;
  sink->manager_index = manager_index;
  sink->group_swap_eligible = std::move(group_swap_eligible);
  sink->group_page_bytes = std::move(group_page_bytes);
  if (manager_index < static_cast<int>(sinks_.size())) {
    // Repartition re-attach: the rebuilt KvManager takes over the slot.
    sinks_[manager_index] = std::move(sink);
    return sinks_[manager_index].get();
  }
  sinks_.push_back(std::move(sink));
  return sinks_.back().get();
}

double SwapManager::RecomputeTime(int64_t tokens, int64_t resident_bytes) const {
  if (tokens <= 0) {
    return 0.0;
  }
  const double compute =
      cost_.flops_per_token * static_cast<double>(tokens) / cost_.gpu_flops;
  // Chunked prefill re-reads the KV built so far on every chunk; on average half the final
  // footprint per chunk.
  const double chunks = static_cast<double>(CeilDiv(tokens, cost_.chunk_tokens));
  const double kv_reread =
      chunks * (static_cast<double>(resident_bytes) * 0.5) / cost_.gpu_mem_bandwidth;
  return compute + kv_reread;
}

double SwapManager::SwapRoundTripTime(const SwapFootprint& fp) const {
  double t = pcie_.D2HTime(fp.swappable_bytes) + pcie_.H2DTime(fp.swappable_bytes);
  if (fp.drop_recompute_bytes > 0 && fp.resident_bytes > 0) {
    // Swap-ineligible groups recompute their needed window; charge the compute-only
    // recompute cost by their byte share of the resident footprint (analytic approximation —
    // per-group compute shares are not modeled).
    t += RecomputeTime(fp.tokens, 0) * static_cast<double>(fp.drop_recompute_bytes) /
         static_cast<double>(fp.resident_bytes);
  }
  return t;
}

PreemptMode SwapManager::ChoosePreemptMode(const SwapFootprint& fp) const {
  if (degraded_ || !config_.swap_preemption || fp.swappable_bytes <= 0 ||
      fp.swappable_bytes > host_.capacity_bytes()) {
    return PreemptMode::kRecompute;
  }
  return SwapRoundTripTime(fp) < RecomputeTime(fp.tokens, fp.resident_bytes)
             ? PreemptMode::kSwap
             : PreemptMode::kRecompute;
}

void SwapManager::SetFaultInjector(FaultInjector* injector) {
  fault_ = injector;
  pcie_.set_fault_injector(injector);
  host_.set_fault_injector(injector);
}

Status SwapManager::BeginTransferWithRetry(PcieDirection dir) {
  double backoff = config_.retry_backoff_base;
  double total_backoff = 0.0;
  for (int attempt = 0;; ++attempt) {
    const Status transfer = pcie_.BeginTransfer(dir);
    if (transfer.ok()) {
      return transfer;
    }
    if (transfer.code() == StatusCode::kDeadlineExceeded) {
      // Hung transfer: the engine waits out the timeout budget and gives up on this leg —
      // retrying a hung link immediately is pointless.
      pending_backoff_ += pcie_.spec().timeout_seconds;
      stats_.backoff_time += pcie_.spec().timeout_seconds;
      return transfer;
    }
    // Transient link error: retry with exponential backoff until the attempt or the
    // per-operation backoff budget runs out.
    if (attempt >= config_.max_transfer_retries ||
        total_backoff + backoff > config_.max_total_backoff) {
      return transfer;
    }
    stats_.fault_retries += 1;
    pending_backoff_ += backoff;
    stats_.backoff_time += backoff;
    total_backoff += backoff;
    backoff *= 2.0;
  }
}

void SwapManager::OnInjectedHostFailure() {
  stats_.host_failures += 1;
  if (stats_.host_failures >= config_.degrade_after_host_failures) {
    DegradeToGpuOnly();
  }
}

Status SwapManager::TryRecordSwapOut(RequestId id, const SwapFootprint& fp) {
  if (degraded_) {
    return Status::FailedPrecondition("offload tier degraded to GPU-only mode");
  }
  const Status transfer = BeginTransferWithRetry(PcieDirection::kD2H);
  if (!transfer.ok()) {
    return transfer;
  }
  HostSwapSet set;
  set.bytes = fp.swappable_bytes;
  set.tokens = fp.tokens;
  set.resident_bytes = fp.resident_bytes;
  set.drop_recompute_bytes = fp.drop_recompute_bytes;
  set.fingerprints = fp.fingerprints;
  const int64_t injected_before = host_.injected_failures();
  if (!host_.PutSwapSet(id, std::move(set))) {
    if (host_.injected_failures() > injected_before) {
      OnInjectedHostFailure();
      return Status::ResourceExhausted("injected host-pool allocation failure");
    }
    return Status::ResourceExhausted("swap set exceeds host pool capacity");
  }
  pending_transfer_ += pcie_.D2HTime(fp.swappable_bytes);
  stats_.swap_out_events += 1;
  stats_.swap_out_bytes += fp.swappable_bytes;
  return Status::Ok();
}

Status SwapManager::BeginSwapIn(RequestId id) {
  (void)id;
  if (degraded_) {
    return Status::FailedPrecondition("offload tier degraded to GPU-only mode");
  }
  return BeginTransferWithRetry(PcieDirection::kH2D);
}

void SwapManager::OnEngineStep() {
  if (fault_ == nullptr) {
    return;
  }
  if (degraded_) {
    // Each step spent degraded counts toward the reattach probe window.
    steps_degraded_ += 1;
    return;
  }
  if (!fault_->Fire(FaultSite::kHostPoolShrink)) {
    return;
  }
  const int64_t new_capacity = host_.capacity_bytes() / 2;
  if (new_capacity < config_.min_host_pool_bytes) {
    DegradeToGpuOnly();
    return;
  }
  host_.ForceShrink(new_capacity);
  stats_.host_shrinks += 1;
}

void SwapManager::DegradeToGpuOnly() {
  if (degraded_) {
    return;
  }
  degraded_ = true;
  stats_.degraded_transitions += 1;
  steps_degraded_ = 0;
  // Drain the tier through the audited removal paths so the auditor's shadow model stays
  // consistent; in-flight transfer/backoff time still gets drained by the next ConsumeStall.
  host_.Clear();
}

bool SwapManager::TryReattachOffloadTier() {
  if (!degraded_) {
    return false;
  }
  if (steps_degraded_ < reattach_backoff_steps_) {
    return false;  // Probe window still open; no state change.
  }
  degraded_ = false;
  stats_.reattach_transitions += 1;
  stats_.host_failures = 0;  // A re-armed tier gets a fresh degrade budget.
  steps_degraded_ = 0;
  // Each successive degrade/reattach cycle doubles the probe window, capped — a flapping
  // host converges to the slowest cadence instead of oscillating.
  reattach_backoff_steps_ = std::min(reattach_backoff_steps_ * 2, kMaxReattachBackoffSteps);
  // Degrade drained the pool and may have followed forced shrinks; service resumes at the
  // configured capacity (the pool is empty, so no eviction cascade).
  host_.ForceShrink(config_.host_pool_bytes);
  return true;
}

int64_t SwapManager::reattach_probe_steps_remaining() const {
  if (!degraded_) {
    return 0;
  }
  return std::max<int64_t>(0, reattach_backoff_steps_ - steps_degraded_);
}

const HostSwapSet* SwapManager::PeekSwapSet(RequestId id) const {
  return host_.FindSwapSet(id);
}

void SwapManager::CommitSwapIn(RequestId id, const HostSwapSet& set) {
  pending_transfer_ += pcie_.H2DTime(set.bytes);
  if (set.drop_recompute_bytes > 0 && set.resident_bytes > 0) {
    pending_transfer_ += RecomputeTime(set.tokens, 0) *
                         static_cast<double>(set.drop_recompute_bytes) /
                         static_cast<double>(set.resident_bytes);
  }
  stats_.swap_in_events += 1;
  stats_.swap_in_bytes += set.bytes;
  // The restore itself may have parked freshly evicted cache pages in the host pool and
  // LRU-evicted this very set mid-transfer; the caller's snapshot keeps the accounting
  // correct, and the erase is simply a no-op then.
  host_.EraseSwapSet(id);
}

void SwapManager::DropSwapSet(RequestId id) { host_.EraseSwapSet(id); }

const HostCachePage* SwapManager::LookupHostPage(int manager_index, int group,
                                                 BlockHash hash) const {
  if (!config_.host_prefix_cache || degraded_) {
    return nullptr;
  }
  return host_.FindPage({manager_index, group, hash});
}

void SwapManager::OnHostPagePromoted(int manager_index, int group, BlockHash hash,
                                     int64_t bytes) {
  JENGA_CHECK(host_.ErasePage({manager_index, group, hash})) << "promoted page not resident";
  pending_transfer_ += pcie_.H2DStreamTime(bytes);
  stats_.host_pages_promoted += 1;
  stats_.host_bytes_promoted += bytes;
  stats_.swap_in_bytes += bytes;
}

double SwapManager::ConsumeStall(double compute_time) {
  if (pending_transfer_ <= 0.0 && pending_backoff_ <= 0.0) {
    return 0.0;
  }
  // Transfers hide behind compute up to the overlap fraction; backoff is pure engine wait
  // (nothing is on the wire) and never overlaps.
  const double stall = pcie_.StallTime(pending_transfer_, compute_time) + pending_backoff_;
  stats_.transfer_time += pending_transfer_;
  stats_.stall_time += stall;
  pending_transfer_ = 0.0;
  pending_backoff_ = 0.0;
  return stall;
}

}  // namespace jenga
