#include "src/model/model_zoo.h"

#include <gtest/gtest.h>

#include "src/model/kv_spec.h"

namespace jenga {
namespace {

TEST(ModelZoo, AllModelsWellFormed) {
  for (const ModelConfig& model : AllZooModels()) {
    SCOPED_TRACE(model.name);
    EXPECT_FALSE(model.name.empty());
    EXPECT_GT(model.params_b, 0.0);
    EXPECT_FALSE(model.layers.empty());
    EXPECT_GE(model.compute_layers, static_cast<int>(model.layers.size()));
    // Every model must produce a valid KV spec with a bounded LCM blow-up.
    const KvSpec spec = BuildKvSpec(model, KvSpecOptions{});
    int64_t min_page = spec.groups[0].page_bytes;
    for (const KvGroupSpec& group : spec.groups) {
      min_page = std::min(min_page, group.page_bytes);
    }
    EXPECT_LE(spec.LcmPageBytes() / min_page, 84) << "LCM blow-up beyond the paper's worst case";
  }
}

TEST(ModelZoo, LookupByName) {
  const ModelConfig model = ModelByName("gemma-2-9b");
  EXPECT_EQ(model.name, "gemma-2-9b");
  EXPECT_DEATH(ModelByName("no-such-model"), "unknown model");
}

TEST(ModelZoo, MllamaWasteArithmetic) {
  // §3.2: with 6193 image + 43 text tokens, PagedAttention stores (T+I)·40·E while the ideal
  // is T·32·E + I·8·E, a 79.6 % waste.
  const ModelConfig model = Llama32_11B_Vision();
  const int64_t e = model.layers[0].KvBytesPerToken();
  const int64_t text = 43;
  const int64_t image = 6193;
  const int64_t paged = (text + image) * 40 * e;
  const int64_t ideal = (text * 32 + image * 8) * e;
  const double waste = 1.0 - static_cast<double>(ideal) / static_cast<double>(paged);
  EXPECT_NEAR(waste, 0.796, 0.001);
}

TEST(ModelZoo, MinistralWasteArithmetic) {
  // §3.2: at max context, a homogeneous allocator wastes 27/36 × (1 − 32768/131072) = 56.25 %.
  const ModelConfig model = Ministral8B();
  int sliding = 0;
  for (const LayerSpec& layer : model.layers) {
    if (layer.kind == LayerKind::kSlidingWindow) {
      EXPECT_EQ(layer.sliding_window, 32768);
      ++sliding;
    }
  }
  EXPECT_EQ(sliding, 27);
  const double frac_sliding = static_cast<double>(sliding) / model.layers.size();
  const double waste = frac_sliding * (1.0 - 32768.0 / model.max_context_len);
  EXPECT_NEAR(waste, 0.5625, 1e-9);
}

TEST(ModelZoo, Gemma2WasteArithmetic) {
  // §3.2: Gemma-2's waste is up to 25 % — half the layers sliding with window = half the
  // 8192-token max context.
  const ModelConfig model = Gemma2_27B();
  const int sliding = model.CountKind(LayerKind::kSlidingWindow);
  const double frac = static_cast<double>(sliding) / model.layers.size();
  const double waste = frac * (1.0 - 4096.0 / model.max_context_len);
  EXPECT_NEAR(waste, 0.25, 1e-9);
}

TEST(ModelZoo, Fp8ModelsUseOneByteKv) {
  for (const LayerSpec& layer : Llama3_70B_Fp8().layers) {
    EXPECT_EQ(layer.dtype_bytes, 1);
  }
  EXPECT_EQ(Llama3_70B_Fp8().weight_dtype_bytes, 1);
}

TEST(ModelZoo, WeightBytes) {
  EXPECT_EQ(Llama31_8B().WeightBytes(), 16000000000LL);
  EXPECT_EQ(Llama3_70B_Fp8().WeightBytes(), 70000000000LL);
}

TEST(ModelZoo, VisionModelsDeclareEncoders) {
  for (const char* name :
       {"llama-3.2-11b-vision", "llava-onevision-7b", "internvl2-8b", "phi-3-vision-4b",
        "paligemma2-10b"}) {
    const ModelConfig model = ModelByName(name);
    SCOPED_TRACE(name);
    EXPECT_TRUE(model.vision.present);
    EXPECT_GT(model.vision.tokens_per_image, 0);
    EXPECT_GT(model.vision.embed_bytes_per_token, 0);
  }
}

TEST(ModelZoo, PaligemmaMixesThreeMemoryTypes) {
  const KvSpec spec = BuildKvSpec(Paligemma2_10B(), KvSpecOptions{});
  EXPECT_NE(spec.FindGroup(GroupKind::kFullAttention), nullptr);
  EXPECT_NE(spec.FindGroup(GroupKind::kSlidingWindow), nullptr);
  EXPECT_NE(spec.FindGroup(GroupKind::kVisionEmbed), nullptr);
}

TEST(ModelZoo, CharacterAiSharesKv) {
  const ModelConfig model = CharacterAi8B();
  EXPECT_LT(static_cast<int>(model.layers.size()), model.compute_layers);
}

TEST(ModelZoo, TensorParallelShardDividesKvEvenly) {
  const ModelConfig base = Llama3_70B_Fp8();
  for (const int tp : {1, 2, 4, 8}) {
    SCOPED_TRACE(tp);
    const StatusOr<ModelConfig> shard = TensorParallelShard(base, tp);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    const ModelConfig& model = shard.value();
    ASSERT_EQ(model.layers.size(), base.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i) {
      // Per-rank KV bytes are exactly 1/tp of the full model's — no rounding remainder.
      EXPECT_EQ(model.layers[i].KvBytesPerToken() * tp, base.layers[i].KvBytesPerToken());
    }
    EXPECT_NEAR(model.params_b * tp, base.params_b, 1e-9);
  }
  EXPECT_EQ(TensorParallelShard(base, 1).value().name, base.name);
  EXPECT_EQ(TensorParallelShard(base, 4).value().name, base.name + "-tp4");
}

TEST(ModelZoo, TensorParallelShardRejectsUnevenSplits) {
  const ModelConfig base = Llama3_70B_Fp8();  // 8 KV heads.
  for (const int tp : {3, 16}) {
    SCOPED_TRACE(tp);
    const StatusOr<ModelConfig> shard = TensorParallelShard(base, tp);
    ASSERT_FALSE(shard.ok());
    EXPECT_EQ(shard.status().code(), StatusCode::kInvalidArgument);
    // The error names the model and the offending value instead of a bare failure.
    EXPECT_NE(shard.status().message().find(base.name), std::string::npos);
  }
  EXPECT_FALSE(TensorParallelShard(base, 0).ok());
  EXPECT_FALSE(TensorParallelShard(base, -2).ok());
}

TEST(ModelZoo, TensorParallelShardSplitsMambaState) {
  const ModelConfig base = Jamba52B_Fp8();
  const StatusOr<ModelConfig> shard = TensorParallelShard(base, 2);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  for (size_t i = 0; i < base.layers.size(); ++i) {
    if (base.layers[i].kind == LayerKind::kMamba) {
      EXPECT_EQ(shard.value().layers[i].mamba_state_bytes * 2, base.layers[i].mamba_state_bytes);
    }
  }
}

TEST(ModelZoo, TensorParallelConvenienceProfiles) {
  const ModelConfig llama = Llama3_70B_Fp8_Tp(4);
  EXPECT_EQ(llama.name, "llama-3-70b-fp8-tp4");
  const ModelConfig cai = CharacterAi70B_Fp8_Tp(8);
  // Per-rank KV must still build a valid Jenga spec (one allocator stack per rank).
  const KvSpec spec = BuildKvSpec(cai, KvSpecOptions{});
  EXPECT_FALSE(spec.groups.empty());
  for (const LayerSpec& layer : cai.layers) {
    EXPECT_EQ(layer.num_kv_heads, 1);  // 8 heads / tp8.
  }
}

}  // namespace
}  // namespace jenga
