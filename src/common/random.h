// Deterministic, seedable random number generation. Every stochastic component in the library
// (workload generators, the randomized per-image eviction priority of §5.3, simulated arrival
// processes) draws from an explicitly seeded Rng so that all experiments are reproducible.

#ifndef JENGA_SRC_COMMON_RANDOM_H_
#define JENGA_SRC_COMMON_RANDOM_H_

#include <cstdint>

#include "src/common/check.h"

namespace jenga {

// SplitMix64-based generator: tiny state, excellent statistical quality for simulation use,
// and (unlike std::mt19937 + std::distributions) bit-identical results across platforms and
// standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Uniform 64-bit value.
  uint64_t NextU64() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    JENGA_CHECK_LE(lo, hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

  // Exponentially distributed value with the given rate (mean 1/rate); used for Poisson
  // inter-arrival gaps.
  double Exponential(double rate);

  // Normally distributed value (Box–Muller, no cached spare so results stay stream-stable).
  double Normal(double mean, double stddev);

  // Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Forks an independent child stream; children with distinct tags are decorrelated from the
  // parent and from each other.
  Rng Fork(uint64_t tag) {
    Rng child(state_ ^ (0xD1B54A32D192ED03ull * (tag + 1)));
    child.NextU64();
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_RANDOM_H_
