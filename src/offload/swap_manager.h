// SwapManager: policy + accounting brain of the host-memory offload tier. It owns the
// HostPool and PcieSim and gives the engines two new mechanisms:
//
//   1. Preempt-by-swap (PreemptMode::kSwap): instead of discarding a preempted request's KV
//      and recomputing it later, the swap-eligible pages move to host memory and the request
//      re-admits by transferring them back. The mode is chosen per preemption by an analytic
//      cost crossover — recompute time (GpuSim-style compute + chunked KV re-read) vs swap
//      round-trip time (PcieSim D2H + H2D + recompute of swap-ineligible groups).
//   2. Second-chance prefix cache: Evictor victims flow into the host pool (via the
//      CacheEvictionSink installed on each group allocator) instead of being destroyed, and
//      KvManager::OnAdmit promotes host-resident pages back on a hit, charging swap-in time.
//
// The SwapManager never touches allocator or request state itself: the engines and KvManager
// drive the mechanics (footprints, restores, promotions) and report to it; it decides, keeps
// the host pool, and accumulates pending transfer time that the engine drains into stall
// time each step (transfers overlap with compute up to PcieSpec::overlap_fraction).
//
// Everything is deterministic: LRU order is insertion order, costs are pure functions, and
// with OffloadConfig::enabled = false nothing is constructed — engine behavior is
// byte-identical to the tier-less build.

#ifndef JENGA_SRC_OFFLOAD_SWAP_MANAGER_H_
#define JENGA_SRC_OFFLOAD_SWAP_MANAGER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/fault/fault_injector.h"
#include "src/offload/host_pool.h"
#include "src/offload/pcie_sim.h"

namespace jenga {

// User-facing configuration (EngineConfig::offload / SpecDecodeConfig::offload).
struct OffloadConfig {
  bool enabled = false;
  // Host pool capacity shared by swap sets and second-chance cache pages.
  int64_t host_pool_bytes = 32ll << 30;
  PcieSpec pcie;
  // Mechanism switches (both on by default when the tier is enabled).
  bool swap_preemption = true;
  bool host_prefix_cache = true;
  // Recovery knobs, only exercised when a FaultInjector is attached:
  // retries after an injected PCIe link error, with exponential sim-time backoff capped at
  // max_total_backoff per operation.
  int max_transfer_retries = 3;
  double retry_backoff_base = 1e-3;
  double max_total_backoff = 0.1;
  // After this many injected host-pool allocation failures the tier degrades to GPU-only
  // mode (drains and detaches; see DegradeToGpuOnly).
  int degrade_after_host_failures = 3;
  // A forced-shrink fault below this capacity degrades instead of shrinking further.
  int64_t min_host_pool_bytes = 4096;
};

// GPU-side constants of the recompute cost model; the engine fills these from its GpuSpec and
// ModelConfig so the offload library does not depend on the engine layer.
struct SwapCostParams {
  double flops_per_token = 0.0;    // ≈ 2 × parameters (dense transformer forward).
  double gpu_flops = 1.0;          // Sustained FLOP/s.
  double gpu_mem_bandwidth = 1.0;  // Bytes/s.
  int64_t chunk_tokens = 1;        // Chunked-prefill budget (KV re-read granularity).
};

// A request's KV footprint at preemption time, summed across KvManagers.
struct SwapFootprint {
  int64_t tokens = 0;                // num_computed_tokens to restore.
  int64_t swappable_bytes = 0;       // Resident bytes in swap-eligible groups.
  int64_t resident_bytes = 0;        // Resident bytes in all groups.
  int64_t drop_recompute_bytes = 0;  // Needed bytes of swap-ineligible groups.
  std::vector<uint64_t> fingerprints;  // One per KvManager.
};

enum class PreemptMode { kRecompute, kSwap };

class SwapManager {
 public:
  SwapManager(OffloadConfig config, SwapCostParams cost);
  ~SwapManager();

  SwapManager(const SwapManager&) = delete;
  SwapManager& operator=(const SwapManager&) = delete;

  // --- Attachment (KvManager::AttachOffload calls this) ---

  // Registers a KvManager's groups (index order = attach order) and returns the eviction sink
  // to install on its allocator. `group_swap_eligible[g]` gates the second-chance path.
  // Re-registering an existing index replaces that sink in place — the pool-repartition path
  // rebuilds a KvManager and re-attaches under the same index (call FlushHostState first:
  // parked state keyed by the old layout is meaningless to the new manager).
  [[nodiscard]] CacheEvictionSink* RegisterManager(int manager_index,
                                                   std::vector<char> group_swap_eligible,
                                                   std::vector<int64_t> group_page_bytes);

  // Drops every swap set and parked cache page through the audited removal paths WITHOUT
  // degrading the tier. Used at repartition commit: group structure and hash salts belong to
  // the old layout, so all parked content is invalidated wholesale.
  void FlushHostState() { host_.Clear(); }

  // --- Preemption crossover ---

  // Marginal cost of recomputing `tokens` tokens whose final KV footprint is
  // `resident_bytes`: compute term + per-chunk re-read of the already-built KV. Recompute
  // piggybacks on regular engine steps, so no weight-streaming floor applies.
  [[nodiscard]] double RecomputeTime(int64_t tokens, int64_t resident_bytes) const;

  // Full cost of the swap alternative: D2H now + H2D at re-admission + recomputing the
  // swap-ineligible groups (charged by their byte share of the resident footprint).
  [[nodiscard]] double SwapRoundTripTime(const SwapFootprint& fp) const;

  [[nodiscard]] PreemptMode ChoosePreemptMode(const SwapFootprint& fp) const;

  // --- Swap-set lifecycle (engine-driven) ---

  // Stores the footprint in the host pool (LRU-evicting as needed) and charges the D2H
  // transfer. Non-OK — injected transfer fault that exhausted its retries/backoff budget,
  // injected host-pool failure, set larger than the pool, or a degraded tier — means nothing
  // was stored and the engine falls back to recompute. Without a FaultInjector attached this
  // only fails for oversized sets (defensive: ChoosePreemptMode never picks kSwap then).
  [[nodiscard]] Status TryRecordSwapOut(RequestId id, const SwapFootprint& fp);
  // Legacy bool wrapper.
  bool RecordSwapOut(RequestId id, const SwapFootprint& fp) {
    return TryRecordSwapOut(id, fp).ok();
  }

  // Consults the injector for the H2D leg of a swap-in, with the same retry/backoff policy
  // as TryRecordSwapOut. Call before KvManager::RestoreFromSwap; a non-OK status means the
  // engine should drop the set and recompute instead.
  [[nodiscard]] Status BeginSwapIn(RequestId id);

  // Swap set still resident in host memory, if any (nullptr after LRU eviction).
  [[nodiscard]] const HostSwapSet* PeekSwapSet(RequestId id) const;

  // The engine restored the request's pages; consume the set and charge H2D + the
  // ineligible-group recompute share. Takes a caller-held *copy* of the set: restoring can
  // itself park evicted cache pages in the host pool and LRU-evict the set mid-transfer, so
  // neither the PeekSwapSet pointer nor the pool entry is stable across the restore.
  void CommitSwapIn(RequestId id, const HostSwapSet& set);

  // Abandon a set (request finished, or fell back to recompute).
  void DropSwapSet(RequestId id);

  // --- Second-chance prefix cache (KvManager-driven) ---

  [[nodiscard]] const HostCachePage* LookupHostPage(int manager_index, int group,
                                                    BlockHash hash) const;
  // A host page was re-materialized on the GPU: remove it and charge the H2D stream.
  void OnHostPagePromoted(int manager_index, int group, BlockHash hash, int64_t bytes);

  // --- Time accounting ---

  [[nodiscard]] bool HasPendingTransfer() const {
    return pending_transfer_ > 0.0 || pending_backoff_ > 0.0;
  }
  // Drains pending transfer time against `compute_time` of overlappable step compute and
  // returns the engine stall (see PcieSim::StallTime).
  double ConsumeStall(double compute_time);

  struct Stats {
    int64_t swap_out_events = 0;
    int64_t swap_in_events = 0;
    int64_t swap_out_bytes = 0;
    int64_t swap_in_bytes = 0;
    int64_t host_pages_stored = 0;    // Evicted cache pages parked in host memory.
    int64_t host_pages_promoted = 0;  // Host pages that produced a GPU cache hit.
    int64_t host_bytes_promoted = 0;
    double transfer_time = 0.0;  // Total PCIe busy time.
    double stall_time = 0.0;     // Portion that stalled the engine (incl. retry backoff).
    // Fault recovery (all zero without an attached FaultInjector).
    int64_t fault_retries = 0;        // Transfer retries after injected link errors.
    double backoff_time = 0.0;        // Sim time spent in retry backoff / timeout waits.
    int64_t host_failures = 0;        // Injected host-pool allocation failures observed.
    int64_t host_shrinks = 0;         // Forced capacity halvings survived.
    int64_t degraded_transitions = 0; // Times the tier detached into GPU-only mode.
    int64_t reattach_transitions = 0; // Times a degraded tier re-armed (probe succeeded).
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const HostPool& host() const { return host_; }
  [[nodiscard]] const OffloadConfig& config() const { return config_; }
  [[nodiscard]] const PcieSim& pcie() const { return pcie_; }

  // Installs an audit observer on the host pool (nullptr detaches).
  void SetAuditSink(AuditSink* sink) { host_.set_audit_sink(sink); }

  // --- Fault injection & graceful degradation ---

  // Wires the injector into the PCIe model, the host pool, and this manager's own
  // shrink/degrade sites (nullptr detaches everywhere).
  void SetFaultInjector(FaultInjector* injector);

  // Called once per engine step (only when an injector is attached): consults the
  // kHostPoolShrink site and halves the pool under pressure; shrinking below
  // OffloadConfig::min_host_pool_bytes degrades to GPU-only instead.
  void OnEngineStep();

  // Detaches the tier: drains every swap set and parked cache page through the audited
  // removal paths, then refuses all future swaps (ChoosePreemptMode → kRecompute, lookups
  // miss, the eviction sink no-ops). Swapped-out requests recover through the existing
  // missing-set recompute fallback. Idempotent.
  void DegradeToGpuOnly();
  [[nodiscard]] bool degraded() const { return degraded_; }

  // Reverse of DegradeToGpuOnly, once host faults subside: restores the configured pool
  // capacity (the pool restarts empty — degrade drained it through the audited paths),
  // resets the host-failure counter, and resumes swap/park service. Gated by a capped probe
  // backoff: the call only succeeds after the tier has sat degraded for the current backoff
  // window (counted in OnEngineStep calls), and each successive degrade doubles the window
  // up to kMaxReattachBackoffSteps — so a flapping host cannot make the tier oscillate.
  // Returns true when service resumed; false (no state change) while the probe window is
  // still open or the tier is not degraded. Idempotent in both directions.
  bool TryReattachOffloadTier();
  // Probes remaining before TryReattachOffloadTier can succeed (0 when reattachable now or
  // not degraded).
  [[nodiscard]] int64_t reattach_probe_steps_remaining() const;

  static constexpr int64_t kInitialReattachBackoffSteps = 8;
  static constexpr int64_t kMaxReattachBackoffSteps = 1024;

 private:
  friend class AllocatorAuditor;

  struct ManagerSink;

  OffloadConfig config_;
  SwapCostParams cost_;
  PcieSim pcie_;
  HostPool host_;
  // Shared retry loop for one transfer leg; accumulates backoff into pending_backoff_.
  [[nodiscard]] Status BeginTransferWithRetry(PcieDirection dir);
  // Injected host-pool failure bookkeeping (degrades after the configured threshold).
  void OnInjectedHostFailure();

  std::vector<std::unique_ptr<ManagerSink>> sinks_;  // One per registered KvManager.
  FaultInjector* fault_ = nullptr;
  bool degraded_ = false;
  // Reattach probe backoff (see TryReattachOffloadTier).
  int64_t reattach_backoff_steps_ = kInitialReattachBackoffSteps;
  int64_t steps_degraded_ = 0;
  double pending_transfer_ = 0.0;
  // Retry/timeout waits accumulated since the last ConsumeStall. Unlike transfers, backoff
  // cannot hide behind compute: the engine is waiting, not copying.
  double pending_backoff_ = 0.0;
  Stats stats_;
};

}  // namespace jenga

#endif  // JENGA_SRC_OFFLOAD_SWAP_MANAGER_H_
