// ShardedClaimIndex tests: single-threaded publish/claim semantics, shard-hint affinity and
// spill, and multi-threaded claim uniqueness (every published slot is claimed exactly once
// no matter how many threads race). The concurrent cases run under the tsan preset.

#include "src/core/shard_claim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace jenga {
namespace {

using Slot = std::pair<LargePageId, int>;

TEST(ShardClaimTest, PublishThenClaim) {
  ShardedClaimIndex index(2, /*num_larges=*/4, /*slots_per_large=*/8);
  EXPECT_FALSE(index.TryClaim(1, 3));  // Nothing published yet.
  index.Publish(1, 3);
  EXPECT_TRUE(index.IsClaimable(1, 3));
  EXPECT_EQ(index.ClaimableApprox(), 1);
  EXPECT_TRUE(index.TryClaim(1, 3));
  EXPECT_FALSE(index.TryClaim(1, 3));  // Single claim only.
  EXPECT_EQ(index.ClaimableApprox(), 0);
}

TEST(ShardClaimTest, FindAndClaimReturnsEachPublishedSlotOnce) {
  ShardedClaimIndex index(4, /*num_larges=*/8, /*slots_per_large=*/70);  // >64: two words.
  std::set<Slot> published;
  for (LargePageId large = 0; large < 8; ++large) {
    for (int slot = 0; slot < 70; slot += 7) {
      index.Publish(large, slot);
      published.insert({large, slot});
    }
  }
  std::set<Slot> claimed;
  while (auto hit = index.FindAndClaim(0)) {
    EXPECT_TRUE(claimed.insert(*hit).second) << "slot returned twice";
  }
  EXPECT_EQ(claimed, published);
  EXPECT_EQ(index.ClaimableApprox(), 0);
}

TEST(ShardClaimTest, ShardHintAffinity) {
  // 8 larges over 4 shards: shard s owns larges {s, s+4}. A hint of s must be served from
  // its own partition while that partition has anything claimable.
  ShardedClaimIndex index(4, /*num_larges=*/8, /*slots_per_large=*/4);
  for (LargePageId large = 0; large < 8; ++large) {
    index.Publish(large, 0);
  }
  for (int64_t hint = 0; hint < 4; ++hint) {
    const auto hit = index.FindAndClaim(hint);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->first % 4, static_cast<LargePageId>(hint));
  }
}

TEST(ShardClaimTest, SpillsIntoOtherShardsBeforeFailing) {
  ShardedClaimIndex index(4, /*num_larges=*/8, /*slots_per_large=*/4);
  index.Publish(2, 1);  // Only shard 2 has anything.
  const auto hit = index.FindAndClaim(/*shard_hint=*/0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Slot(2, 1));
  EXPECT_FALSE(index.FindAndClaim(0).has_value());
}

TEST(ShardClaimTest, ClearLargeWithdrawsAllBits) {
  ShardedClaimIndex index(2, /*num_larges=*/4, /*slots_per_large=*/100);
  for (int slot = 0; slot < 100; ++slot) {
    index.Publish(3, slot);
  }
  index.Publish(2, 5);
  EXPECT_EQ(index.ClaimableApprox(), 101);
  index.ClearLarge(3);
  EXPECT_EQ(index.ClaimableApprox(), 1);
  EXPECT_FALSE(index.TryClaim(3, 50));
  EXPECT_TRUE(index.TryClaim(2, 5));
}

TEST(ShardClaimTest, ConcurrentClaimersPartitionTheSlots) {
  constexpr int kLarges = 64;
  constexpr int kSlots = 16;
  constexpr int kThreads = 8;
  ShardedClaimIndex index(4, kLarges, kSlots);
  for (LargePageId large = 0; large < kLarges; ++large) {
    for (int slot = 0; slot < kSlots; ++slot) {
      index.Publish(large, slot);
    }
  }
  std::vector<std::vector<Slot>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&index, &per_thread, t] {
      while (auto hit = index.FindAndClaim(t)) {
        per_thread[static_cast<size_t>(t)].push_back(*hit);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::set<Slot> all;
  size_t total = 0;
  for (const auto& claims : per_thread) {
    total += claims.size();
    for (const Slot& s : claims) {
      EXPECT_TRUE(all.insert(s).second) << "slot claimed by two threads";
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kLarges) * kSlots);
  EXPECT_EQ(index.ClaimableApprox(), 0);
}

TEST(ShardClaimTest, ConcurrentChurnConservesPopulation) {
  // Each thread repeatedly claims a slot and republished it; the published population is
  // conserved, so after joining, exactly the initial slots are still claimable.
  constexpr int kLarges = 16;
  constexpr int kSlots = 8;
  ShardedClaimIndex index(4, kLarges, kSlots);
  for (LargePageId large = 0; large < kLarges; ++large) {
    for (int slot = 0; slot < kSlots; ++slot) {
      index.Publish(large, slot);
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&index, t] {
      for (int i = 0; i < 2000; ++i) {
        if (auto hit = index.FindAndClaim(t + i)) {
          index.Publish(hit->first, hit->second);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(index.ClaimableApprox(), kLarges * kSlots);
  int drained = 0;
  while (index.FindAndClaim(0)) {
    ++drained;
  }
  EXPECT_EQ(drained, kLarges * kSlots);
}

}  // namespace
}  // namespace jenga
