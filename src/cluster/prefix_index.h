// Cluster-level prefix index: one block-hash summary per Engine replica, maintained live
// from the replicas' CacheResidencySink events (core event export), queried by the router to
// score replicas by longest resident prefix.
//
// Staleness model (DESIGN.md §10): the summary tracks *index membership*, not reservations.
// Between the router's scoring decision and the request's admission on the chosen replica,
// summarized blocks may be evicted (score too high → the replica recomputes, correctness
// unaffected) and in the concurrent fleet new blocks may land (score too low → a missed
// affinity opportunity). Routing is therefore strictly advisory; every replica serves every
// request correctly regardless of where it lands. Because block hashes are *chained* (hash i
// commits to blocks 0..i), membership of hash i implies the whole prefix was resident at
// summary time, so the score scan can stop at the first miss.
//
// Threading: each replica's summary is guarded by its own mutex. Writers are the replicas'
// engine threads (sink callbacks fire inside allocator calls); readers are router threads.
// In the deterministic single-threaded FleetRouter the locks are uncontended and the index
// adds no nondeterminism — events fire at fixed points of the replicas' step loops.

#ifndef JENGA_SRC_CLUSTER_PREFIX_INDEX_H_
#define JENGA_SRC_CLUSTER_PREFIX_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/core/types.h"

namespace jenga {

class ClusterPrefixIndex {
 public:
  // Tracks hashes of `routing_group` (the group whose chain the router scores against;
  // events for other groups are ignored) across `num_replicas` replicas. A negative
  // `routing_group` disables tracking — every feed drops every event and all scores are 0.
  ClusterPrefixIndex(int num_replicas, int routing_group);

  ClusterPrefixIndex(const ClusterPrefixIndex&) = delete;
  ClusterPrefixIndex& operator=(const ClusterPrefixIndex&) = delete;

  // The sink to install on replica `replica`'s allocator (JengaAllocator::SetResidencySink).
  // Owned by the index; valid for the index's lifetime.
  [[nodiscard]] CacheResidencySink* feed(int replica);

  // Number of leading blocks of `chain` (a routing-group hash chain) resident on `replica`
  // per the current summary. Chained hashes ⇒ the scan stops at the first miss.
  [[nodiscard]] int64_t ResidentPrefixBlocks(int replica, std::span<const BlockHash> chain) const;

  // Summary cardinality (resident routing-group hashes) for `replica`.
  [[nodiscard]] int64_t ResidentHashes(int replica) const;

  // Drops every summarized hash for `replica`. Called by the replica supervisor on death:
  // a dead replica must stop attracting affinity immediately, not when its (never-coming)
  // eviction events would have drained the summary. Detach the replica's sink first.
  void PurgeReplica(int replica);

  [[nodiscard]] int num_replicas() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] int routing_group() const { return routing_group_; }

 private:
  struct ReplicaSummary {
    mutable std::mutex mu;
    std::unordered_set<BlockHash> hashes;
  };

  class Feed final : public CacheResidencySink {
   public:
    Feed(ClusterPrefixIndex* index, int replica) : index_(index), replica_(replica) {}
    void OnHashResident(int group_index, BlockHash hash) override;
    void OnHashNonResident(int group_index, BlockHash hash) override;

   private:
    ClusterPrefixIndex* index_;
    int replica_;
  };

  int routing_group_;
  std::vector<std::unique_ptr<ReplicaSummary>> replicas_;
  std::vector<std::unique_ptr<Feed>> feeds_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_PREFIX_INDEX_H_
