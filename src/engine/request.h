// Inference requests as the engine sees them: a (possibly multimodal) prompt, a target output
// length, and progress/metrics state maintained by the scheduler.

#ifndef JENGA_SRC_ENGINE_REQUEST_H_
#define JENGA_SRC_ENGINE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace jenga {

enum class TokenKind : uint8_t { kText = 0, kImage = 1 };

// A prompt is a token sequence with per-token modality. Image tokens arrive in runs produced
// by the vision encoder (tokens_per_image each).
struct Prompt {
  std::vector<int32_t> tokens;
  std::vector<TokenKind> kinds;  // Empty means all-text.
  int num_images = 0;

  [[nodiscard]] int64_t size() const { return static_cast<int64_t>(tokens.size()); }
  [[nodiscard]] TokenKind kind(int64_t i) const {
    return kinds.empty() ? TokenKind::kText : kinds[static_cast<size_t>(i)];
  }
  [[nodiscard]] int64_t CountImageTokens() const;
};

enum class RequestState : uint8_t { kWaiting, kRunning, kPreempted, kFinished };

struct Request {
  RequestId id = kNoRequest;
  Prompt prompt;
  int64_t output_len = 0;
  double arrival_time = 0.0;
  // Absolute sim-time deadline; < 0 = none. When `now` passes it the engine cancels the
  // request through the same path as CancelRequest().
  double deadline = -1.0;

  RequestState state = RequestState::kWaiting;
  // Tokens (prompt + generated so far); generated ids are appended as they are produced so
  // that block hashing over decode output works like hashing over the prompt.
  std::vector<int32_t> all_tokens;
  std::vector<TokenKind> all_kinds;
  // Prefix counts of image tokens over all_tokens: image_prefix[i] = #image tokens in [0, i).
  std::vector<int64_t> image_prefix;

  // Number of tokens whose KV is computed (including prefix-cache hits).
  int64_t num_computed_tokens = 0;
  int64_t num_generated = 0;
  int64_t cached_prefix_tokens = 0;
  int preemptions = 0;
  // Preempted-by-swap: KV lives in the host tier and re-admission restores it via PCIe
  // instead of recomputing (`swapped_out_tokens` = num_computed_tokens at swap-out).
  bool swapped_out = false;
  int64_t swapped_out_tokens = 0;
  // Aborted via CancelRequest (client cancel, deadline expiry, or load shed).
  bool cancelled = false;
  // Finished unsuccessfully (admission abort / shed); mirrors RequestRecord::failed so
  // pollers (ServingFrontend streams) can classify terminal states without the metrics log.
  bool failed = false;
  int vision_encoder_runs = 0;
  // Encoder runs since the last (re-)admission; reset on preemption because the cached
  // embeddings are released with the request's pages.
  int vision_encoder_runs_this_admission = 0;

  double first_scheduled_time = -1.0;
  double first_token_time = -1.0;
  double finish_time = -1.0;

  [[nodiscard]] int64_t prompt_len() const { return prompt.size(); }
  [[nodiscard]] int64_t total_len() const { return prompt.size() + num_generated; }
  [[nodiscard]] bool InPrefill() const { return num_computed_tokens < prompt_len(); }
  [[nodiscard]] bool Finished() const { return state == RequestState::kFinished; }
  [[nodiscard]] int64_t ImageTokensBefore(int64_t position) const {
    return image_prefix[static_cast<size_t>(position)];
  }
  [[nodiscard]] int64_t TextTokensBefore(int64_t position) const {
    return position - ImageTokensBefore(position);
  }

  // Initializes all_tokens/all_kinds/image_prefix from the prompt; must be called once before
  // the request enters the scheduler.
  void Prepare();
  // Appends one generated (text) token and maintains the prefix structures.
  void AppendGenerated(int32_t token);
};

// Builds a request with a fresh id. `output_len` must be >= 1.
[[nodiscard]] Request MakeRequest(RequestId id, Prompt prompt, int64_t output_len,
                                  double arrival_time);

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_REQUEST_H_
