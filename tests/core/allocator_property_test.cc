// Property-based tests: random operation sequences over the two-level allocator, checked
// against a shadow model and the allocator's own consistency checker. Parameterized over
// seeds so each instantiation explores a different trajectory.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/core/jenga_allocator.h"
#include "src/model/kv_spec.h"

namespace jenga {
namespace {

KvSpec TwoGroupSpec() {
  KvSpec spec;
  KvGroupSpec small;
  small.name = "small";
  small.kind = GroupKind::kCrossAttention;
  small.num_layers = 2;
  small.bytes_per_token_per_layer = 128;
  small.tokens_per_page = 1;
  small.page_bytes = 256;
  KvGroupSpec big;
  big.name = "big";
  big.kind = GroupKind::kFullAttention;
  big.num_layers = 3;
  big.bytes_per_token_per_layer = 128;
  big.tokens_per_page = 1;
  big.page_bytes = 384;
  spec.groups = {small, big};
  return spec;
}

struct Held {
  int group;
  SmallPageId page;
  int refs;
  bool hashed;
};

class AllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorPropertyTest, RandomWorkoutKeepsInvariants) {
  Rng rng(GetParam());
  JengaAllocator alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 32);

  std::vector<Held> held;
  std::set<std::pair<int, SmallPageId>> live;  // Pages with refs > 0.
  BlockHash next_hash = 1;
  Tick now = 0;

  for (int step = 0; step < 4000; ++step) {
    ++now;
    const int op = static_cast<int>(rng.UniformInt(0, 99));
    if (op < 45) {
      // Allocate for a random request.
      const int group = static_cast<int>(rng.UniformInt(0, 1));
      const RequestId request = rng.UniformInt(0, 7);
      const auto page = alloc.group(group).Allocate(request, now);
      if (page.has_value()) {
        // Property: a freshly allocated page is never one we already hold a reference to.
        EXPECT_TRUE(live.emplace(group, *page).second)
            << "double allocation of group " << group << " page " << *page;
        held.push_back({group, *page, 1, false});
        EXPECT_EQ(alloc.group(group).state(*page), PageState::kUsed);
        EXPECT_EQ(alloc.group(group).assoc(*page), request);
      } else {
        // Allocation may only fail when nothing is free or evictable anywhere.
        EXPECT_EQ(alloc.FreeSmallPages(group), 0);
        EXPECT_EQ(alloc.group(group).GetStats().evictable_pages, 0);
      }
    } else if (op < 75 && !held.empty()) {
      // Release a random reference.
      const size_t index = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
      Held& h = held[index];
      const bool keep = rng.Bernoulli(0.6);
      alloc.group(h.group).Release(h.page, keep);
      h.refs -= 1;
      if (h.refs == 0) {
        live.erase({h.group, h.page});
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(index));
      }
    } else if (op < 85 && !held.empty()) {
      // Hash a random held page (possibly re-hash).
      const size_t index = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
      Held& h = held[index];
      alloc.group(h.group).SetContentHash(h.page, next_hash++);
      h.hashed = true;
    } else if (op < 92 && !held.empty()) {
      // Touch eviction metadata.
      const size_t index = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
      const Held& h = held[index];
      alloc.group(h.group).UpdateLastAccess(h.page, now);
      alloc.group(h.group).SetPrefixLength(h.page, rng.UniformInt(0, 1000));
    } else if (next_hash > 1) {
      // Try to revive a cached page via lookup + AddRef.
      const int group = static_cast<int>(rng.UniformInt(0, 1));
      const BlockHash hash = static_cast<BlockHash>(rng.UniformInt(1, static_cast<int64_t>(next_hash) - 1));
      if (const auto page = alloc.group(group).LookupCached(hash)) {
        alloc.group(group).AddRef(*page);
        const auto it = std::find_if(held.begin(), held.end(), [&](const Held& h) {
          return h.group == group && h.page == *page;
        });
        if (it != held.end()) {
          it->refs += 1;
        } else {
          held.push_back({group, *page, 1, true});
          live.emplace(group, *page);
        }
      }
    }

    if (step % 256 == 0) {
      alloc.CheckConsistency();
      // Conservation: the breakdown always partitions the pool.
      const auto b = alloc.GetBreakdown();
      EXPECT_EQ(b.allocated_bytes + b.unallocated_bytes, b.pool_bytes);
      EXPECT_EQ(b.used_bytes + b.evictable_bytes + b.empty_bytes, b.allocated_bytes);
    }
  }

  // Drain: release every reference without caching; all memory must return to the pool.
  for (const Held& h : held) {
    for (int r = 0; r < h.refs; ++r) {
      alloc.group(h.group).Release(h.page, false);
    }
  }
  // Reclaim any still-evictable large pages by exhausting the allocator, then verify that a
  // full drain with caching disabled leaves zero used pages.
  for (int g = 0; g < alloc.num_groups(); ++g) {
    EXPECT_EQ(alloc.group(g).GetStats().used_pages, 0);
  }
  alloc.CheckConsistency();
}

TEST_P(AllocatorPropertyTest, NoCachingDrainReturnsEverything) {
  Rng rng(GetParam() ^ 0xDEADBEEF);
  JengaAllocator alloc(TwoGroupSpec(), 768 * 16);
  std::vector<Held> held;
  for (int round = 0; round < 50; ++round) {
    const int allocs = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < allocs; ++i) {
      const int group = static_cast<int>(rng.UniformInt(0, 1));
      const auto page = alloc.group(group).Allocate(rng.UniformInt(0, 3), round);
      if (page.has_value()) {
        held.push_back({group, *page, 1, false});
      }
    }
    const int frees = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(held.size())));
    for (int i = 0; i < frees; ++i) {
      const size_t index = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
      alloc.group(held[index].group).Release(held[index].page, false);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(index));
    }
  }
  for (const Held& h : held) {
    alloc.group(h.group).Release(h.page, false);
  }
  // With no caching, every large page must be back on the free list.
  EXPECT_EQ(alloc.lcm().num_allocated(), 0);
  const auto b = alloc.GetBreakdown();
  EXPECT_EQ(b.unallocated_bytes, b.pool_bytes);
  alloc.CheckConsistency();
}

TEST_P(AllocatorPropertyTest, RequestAwarePackingBeatsArbitraryPlacement) {
  // §4.3's claim as a property: allocate pages for K requests round-robin (the adversarial
  // interleaving of Figure 8), free all pages of all but one request — most large pages must
  // return to the LCM allocator because each was dedicated to a single request.
  Rng rng(GetParam() ^ 0xABCD);
  JengaAllocator alloc(TwoGroupSpec(), 768 * 64);
  const int kRequests = 4;
  const int kPagesEach = 24;
  std::map<RequestId, std::vector<SmallPageId>> pages;
  for (int i = 0; i < kPagesEach; ++i) {
    for (RequestId r = 0; r < kRequests; ++r) {
      const auto page = alloc.group(0).Allocate(r, i);
      ASSERT_TRUE(page.has_value());
      pages[r].push_back(*page);
    }
  }
  const int64_t held_before = alloc.lcm().num_allocated();
  for (RequestId r = 1; r < kRequests; ++r) {
    for (const SmallPageId p : pages[r]) {
      alloc.group(0).Release(p, false);
    }
  }
  // Request 0 holds 24 pages = 8 large pages; everything else must be free again.
  EXPECT_EQ(alloc.lcm().num_allocated(), 8);
  EXPECT_LT(alloc.lcm().num_allocated(), held_before);
  alloc.CheckConsistency();
}

TEST_P(AllocatorPropertyTest, LongRunFreeListsStayCompact) {
  // Regression for unbounded free-ref growth: every empty transition used to push refs that
  // were only discarded when a pop happened to reach them, so a long-lived server accumulated
  // stale epochs forever. With periodic compaction the lists stay O(pool), no matter how many
  // operations have run.
  Rng rng(GetParam() ^ 0xF00D);
  JengaAllocator alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 32);
  int64_t total_small_pages = 0;
  for (int g = 0; g < alloc.num_groups(); ++g) {
    total_small_pages +=
        static_cast<int64_t>(alloc.lcm().num_pages()) * alloc.group(g).pages_per_large();
  }

  std::vector<Held> held;
  Tick now = 0;
  for (int step = 0; step < 60000; ++step) {
    ++now;
    const RequestId request = rng.UniformInt(0, 15);
    if (rng.Bernoulli(0.55) || held.empty()) {
      const int group = static_cast<int>(rng.UniformInt(0, 1));
      if (const auto page = alloc.group(group).Allocate(request, now)) {
        held.push_back({group, *page, 1, false});
      }
    } else {
      const size_t index =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(held.size()) - 1));
      alloc.group(held[index].group).Release(held[index].page, false);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(index));
    }
    // Retire a request id for good now and then, as KvManager does on finish.
    if (step % 512 == 511) {
      alloc.ForgetRequest(rng.UniformInt(0, 15));
    }

    if (step % 1024 == 0) {
      alloc.CheckConsistency();
    }
    for (int g = 0; g < alloc.num_groups(); ++g) {
      const auto stats = alloc.group(g).GetFreeListStats();
      // Compaction bound: after 60k operations the lists must still be proportional to the
      // pool, not to the operation count (the lists saw tens of thousands of pushes).
      ASSERT_LE(stats.any_refs, 2 * total_small_pages + 64) << "step " << step;
      ASSERT_LE(stats.by_request_refs, 2 * total_small_pages + 64) << "step " << step;
      ASSERT_LE(stats.tracked_requests, 16) << "step " << step;
    }
  }

  for (const Held& h : held) {
    alloc.group(h.group).Release(h.page, false);
  }
  alloc.CheckConsistency();
  // Once every request id is forgotten, no affinity state may remain.
  for (RequestId r = 0; r < 16; ++r) {
    alloc.ForgetRequest(r);
  }
  for (int g = 0; g < alloc.num_groups(); ++g) {
    EXPECT_EQ(alloc.group(g).GetFreeListStats().by_request_refs, 0);
    EXPECT_EQ(alloc.group(g).GetFreeListStats().tracked_requests, 0);
  }
  alloc.CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace jenga
