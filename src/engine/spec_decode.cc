#include "src/engine/spec_decode.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <unordered_set>

#include "src/baseline/smartspec.h"
#include "src/common/check.h"

namespace jenga {

const char* SpecStrategyName(SpecStrategy strategy) {
  switch (strategy) {
    case SpecStrategy::kJenga:
      return "jenga";
    case SpecStrategy::kVllmMax:
      return "vllm-max";
    case SpecStrategy::kVllmManual:
      return "vllm-manual";
  }
  return "unknown";
}

namespace {

int32_t PseudoToken(RequestId id, int64_t position) {
  uint64_t x = static_cast<uint64_t>(id) * 0xD1B54A32D192ED03ull + static_cast<uint64_t>(position);
  x ^= x >> 31;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  return static_cast<int32_t>(50000 + (x % 1000000));
}

// Prefill target: on (re-)admission every token before the generation frontier must have its
// KV recomputed, including previously generated tokens (preempt-by-recompute semantics).
int64_t PrefillTarget(const Request& r) { return r.prompt_len() + r.num_generated; }

bool DeadlineHeapAuditEnabled() {
  static const bool enabled = std::getenv("JENGA_CHECK_DEADLINES") != nullptr;
  return enabled;
}

}  // namespace

SpecDecodeEngine::SpecDecodeEngine(SpecDecodeConfig config)
    : config_(std::move(config)),
      target_gpu_(config_.gpu, config_.target),
      draft_gpu_(config_.gpu, config_.draft),
      rng_(config_.seed) {
  max_num_seqs_ = config_.max_num_seqs_override > 0 ? config_.max_num_seqs_override
                                                    : config_.gpu.max_num_seqs;
  max_batched_tokens_ = config_.gpu.max_batched_tokens;

  // Both models' weights live on the GPU.
  const int64_t weights = config_.target.WeightBytes() + config_.draft.WeightBytes();
  int64_t pool = config_.pool_bytes_override > 0
                     ? config_.pool_bytes_override
                     : config_.gpu.memory_bytes - weights - config_.gpu.reserved_bytes;
  JENGA_CHECK_GT(pool, 0) << "models do not fit on " << config_.gpu.name;

  const int bs = config_.tokens_per_page;
  KvManager::Options options;
  options.tokens_per_page = bs;
  options.enable_prefix_caching = false;  // Fig. 19 isolates allocation efficiency.

  const KvSpec target_jenga = MakeJengaSpec(config_.target, bs, /*vision_cache=*/false);
  const KvSpec draft_jenga = MakeJengaSpec(config_.draft, bs, /*vision_cache=*/false);
  const KvSpec merged_accounting =
      MergeKvSpecs({{"target", target_jenga}, {"draft", draft_jenga}});

  switch (config_.strategy) {
    case SpecStrategy::kJenga: {
      options.jenga = true;
      managers_.push_back(
          std::make_unique<KvManager>(merged_accounting, merged_accounting, pool, options));
      break;
    }
    case SpecStrategy::kVllmMax: {
      // One uniform page sized for the larger model; every token pays it for both models.
      options.jenga = false;
      const int64_t max_per_token = std::max(config_.target.KvBytesPerTokenAllLayers(),
                                             config_.draft.KvBytesPerTokenAllLayers());
      const KvSpec alloc =
          MakeHomogeneousSpec(config_.target, bs, /*bytes_per_token_override=*/2 * max_per_token);
      // Homogeneous engines also reserve Mamba state statically for both models.
      const int64_t reservation = StaticMambaReservationBytes(config_.target, max_num_seqs_) +
                                  StaticMambaReservationBytes(config_.draft, max_num_seqs_);
      JENGA_CHECK_LT(reservation, pool);
      managers_.push_back(
          std::make_unique<KvManager>(alloc, merged_accounting, pool - reservation, options));
      break;
    }
    case SpecStrategy::kVllmManual: {
      options.jenga = false;
      const int64_t reservation = StaticMambaReservationBytes(config_.target, max_num_seqs_) +
                                  StaticMambaReservationBytes(config_.draft, max_num_seqs_);
      JENGA_CHECK_LT(reservation, pool);
      const int64_t split_pool = pool - reservation;
      PoolSplit split = SmartSpecSplit(config_.target, config_.draft, split_pool);
      if (config_.manual_draft_fraction >= 0.0) {
        JENGA_CHECK_LE(config_.manual_draft_fraction, 1.0);
        split.draft_bytes = static_cast<int64_t>(static_cast<double>(split_pool) *
                                                 config_.manual_draft_fraction);
        split.target_bytes = split_pool - split.draft_bytes;
      }
      managers_.push_back(std::make_unique<KvManager>(MakeHomogeneousSpec(config_.target, bs),
                                                      target_jenga, split.target_bytes, options));
      managers_.push_back(std::make_unique<KvManager>(MakeHomogeneousSpec(config_.draft, bs),
                                                      draft_jenga, split.draft_bytes, options));
      break;
    }
  }

  if (config_.offload.enabled) {
    SwapCostParams cost;
    // Recompute runs both models over the restored prefix.
    cost.flops_per_token = 2.0 * (config_.target.params_b + config_.draft.params_b) * 1e9;
    cost.gpu_flops = config_.gpu.flops;
    cost.gpu_mem_bandwidth = config_.gpu.mem_bandwidth;
    cost.chunk_tokens = max_batched_tokens_;
    swap_ = std::make_unique<SwapManager>(config_.offload, cost);
    for (size_t m = 0; m < managers_.size(); ++m) {
      managers_[m]->AttachOffload(swap_.get(), static_cast<int>(m));
    }
  }

  if (config_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(config_.fault);
    // One consult per macro step through the target model's sim; a fired fault voids the
    // whole draft+verify pass.
    target_gpu_.set_fault_injector(fault_.get());
    if (swap_ != nullptr) {
      swap_->SetFaultInjector(fault_.get());
    }
  }
}

void SpecDecodeEngine::Submit(Request request) {
  const RequestId id = request.id;
  JENGA_CHECK(!requests_.contains(id));
  if (request.deadline >= 0.0) {
    has_deadlines_ = true;
    deadlines_.Push(request.deadline, id);
  }
  requests_.emplace(id, std::move(request));
  waiting_.PushBack(id);
}

Request& SpecDecodeEngine::Get(RequestId id) {
  const auto it = requests_.find(id);
  JENGA_CHECK(it != requests_.end());
  return it->second;
}

const Request& SpecDecodeEngine::request(RequestId id) const {
  const auto it = requests_.find(id);
  JENGA_CHECK(it != requests_.end());
  return it->second;
}

bool SpecDecodeEngine::AllocateAll(Request& r, int64_t tokens) {
  for (size_t m = 0; m < managers_.size(); ++m) {
    if (!managers_[m]->AllocateForTokens(r, tokens, tick_)) {
      // Pages taken by earlier managers this call stay with the request; the caller resolves
      // failure by preempting (which releases everything in all managers).
      return false;
    }
  }
  return true;
}

void SpecDecodeEngine::ReleaseAll(Request& r, bool finished) {
  for (auto& manager : managers_) {
    manager->Release(r, tick_, finished);
  }
}

void SpecDecodeEngine::StepComputedAll(Request& r) {
  for (auto& manager : managers_) {
    manager->OnStepComputed(r, tick_);
  }
}

void SpecDecodeEngine::AdmitAll(Request& r) {
  for (auto& manager : managers_) {
    manager->OnAdmit(r, tick_);
  }
}

void SpecDecodeEngine::Preempt(RequestId id) {
  // Attributed to kEvictPreempt as a whole (trim/swap decision/release), same contract as
  // Engine::Preempt.
  StepProfiler::Scope prof_scope(prof_, StepPhase::kEvictPreempt);
  Request& r = Get(id);
  if (swap_ != nullptr) {
    SwapFootprint fp;
    fp.tokens = r.num_computed_tokens;
    for (auto& manager : managers_) {
      const KvSwapFootprint kfp = manager->GetSwapFootprint(r);
      fp.swappable_bytes += kfp.swappable_bytes;
      fp.resident_bytes += kfp.resident_bytes;
      fp.drop_recompute_bytes += kfp.drop_recompute_bytes;
      fp.fingerprints.push_back(kfp.fingerprint);
    }
    // Injected transfer/host faults surface as a non-OK TryRecordSwapOut after retries; the
    // fallback is the same recompute path a cost-crossover loss takes.
    if (swap_->ChoosePreemptMode(fp) == PreemptMode::kSwap &&
        swap_->TryRecordSwapOut(id, fp).ok()) {
      r.swapped_out = true;
      r.swapped_out_tokens = r.num_computed_tokens;
      metrics_.swap_out_events += 1;
    } else {
      metrics_.recomputed_tokens += r.num_computed_tokens;
    }
  } else {
    metrics_.recomputed_tokens += r.num_computed_tokens;
  }
  ReleaseAll(r);
  r.state = RequestState::kPreempted;
  r.preemptions += 1;
  r.num_computed_tokens = 0;
  running_.Erase(id);
  waiting_.PushFront(id);
}

void SpecDecodeEngine::FinishRequest(Request& r, bool failed) {
  // Retire allocator affinity state and any parked swap set (both idempotent).
  for (auto& manager : managers_) {
    manager->OnRequestRetired(r.id);
  }
  if (swap_ != nullptr) {
    swap_->DropSwapSet(r.id);
  }
  r.state = RequestState::kFinished;
  r.finish_time = now_;
  RequestRecord record;
  record.id = r.id;
  record.prompt_len = r.prompt_len();
  record.output_len = r.num_generated;
  record.preemptions = r.preemptions;
  record.arrival_time = r.arrival_time;
  record.first_scheduled_time = r.first_scheduled_time;
  record.first_token_time = r.first_token_time;
  record.finish_time = now_;
  record.failed = failed;
  record.cancelled = r.cancelled;
  metrics_.RecordFinished(record);
}

bool SpecDecodeEngine::CancelRequest(RequestId id) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) {
    return false;
  }
  Request& r = it->second;
  if (r.state == RequestState::kFinished) {
    return false;
  }
  if (r.state == RequestState::kRunning) {
    ReleaseAll(r, /*finished=*/true);
    running_.Erase(id);
  } else {
    // Waiting or preempted (possibly swapped out): no manager holds pages for it — every
    // preemption path Releases before re-queueing. FinishRequest below reclaims the host
    // swap set and affinity state.
    waiting_.Erase(id);
    r.swapped_out = false;
    r.swapped_out_tokens = 0;
  }
  r.cancelled = true;
  metrics_.cancelled_requests += 1;
  FinishRequest(r, /*failed=*/true);
  return true;
}

void SpecDecodeEngine::ExpireDeadlines() {
  // Heap-first: O(1) when the earliest deadline is still in the future, O(log n) per expiry;
  // stale entries for requests that finished before their deadline are discarded lazily.
  // Mirrors Engine::ExpireDeadlines — see deadline_heap.h for the expiry-order contract.
  expired_buf_.clear();
  while (deadlines_.HasExpired(now_)) {
    const RequestId id = deadlines_.PopTop().id;
    const auto it = requests_.find(id);
    if (it != requests_.end() && it->second.state != RequestState::kFinished) {
      expired_buf_.push_back(id);
    }
  }
  if (expired_buf_.empty()) {
    return;
  }
  if (expired_buf_.size() > 1) {
    // Multi-expiry step: cancel order must be queue order (waiting first, then running), so
    // re-collect the same set the way the pre-heap implementation did.
    expired_buf_.clear();
    for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
      const Request& r = Get(id);
      if (r.deadline >= 0.0 && r.deadline <= now_) {
        expired_buf_.push_back(id);
      }
    }
    for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
      const Request& r = Get(id);
      if (r.deadline >= 0.0 && r.deadline <= now_) {
        expired_buf_.push_back(id);
      }
    }
  }
  if (DeadlineHeapAuditEnabled()) [[unlikely]] {
    CheckDeadlineHeapAgainstScan();
  }
  for (const RequestId id : expired_buf_) {
    metrics_.deadline_expirations += 1;
    JENGA_CHECK(CancelRequest(id));
  }
}

void SpecDecodeEngine::CheckDeadlineHeapAgainstScan() {
  std::vector<RequestId> reference;
  for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
    const Request& r = Get(id);
    if (r.deadline >= 0.0 && r.deadline <= now_) {
      reference.push_back(id);
    }
  }
  for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
    const Request& r = Get(id);
    if (r.deadline >= 0.0 && r.deadline <= now_) {
      reference.push_back(id);
    }
  }
  JENGA_CHECK_EQ(reference.size(), expired_buf_.size())
      << "deadline heap expired-set size diverges from brute-force scan at now=" << now_;
  for (size_t i = 0; i < reference.size(); ++i) {
    JENGA_CHECK_EQ(reference[i], expired_buf_[i])
        << "deadline heap expiry order diverges from brute-force scan at now=" << now_;
  }
}

void SpecDecodeEngine::MaybeShedHeadSlow() {
  // Shed only under genuine memory pressure; with several managers the most constrained one
  // governs admission, so take the max occupancy (counter-only probe, no request-table walk).
  double occupancy = 0.0;
  for (const auto& manager : managers_) {
    occupancy = std::max(occupancy, manager->allocator().Occupancy());
  }
  if (occupancy < config_.shed_occupancy_watermark) {
    return;
  }
  const RequestId head = waiting_.PopFront();
  Request& r = Get(head);
  r.swapped_out = false;
  r.swapped_out_tokens = 0;
  r.cancelled = true;
  metrics_.shed_requests += 1;
  metrics_.cancelled_requests += 1;
  FinishRequest(r, /*failed=*/true);
  head_blocked_steps_ = 0;
}

double SpecDecodeEngine::PoolOccupancyOf(int manager_index) const {
  // O(1): probed for both pools on every non-cooldown step by the adaptive split governor.
  return managers_[static_cast<size_t>(manager_index)]->allocator().Occupancy();
}

int64_t SpecDecodeEngine::ShiftSplit(int from, int to, int64_t bytes) {
  if (config_.strategy != SpecStrategy::kVllmManual || managers_.size() < 2 || from == to ||
      bytes <= 0) {
    return 0;
  }
  JengaAllocator& src = managers_[static_cast<size_t>(from)]->allocator_mutable();
  JengaAllocator& dst = managers_[static_cast<size_t>(to)]->allocator_mutable();
  const int64_t src_page = src.lcm().large_page_bytes();
  const int64_t dst_page = dst.lcm().large_page_bytes();
  const auto want = static_cast<int32_t>(std::max<int64_t>(1, bytes / src_page));
  // One transfer, two transitions: the donor's drain and the recipient's reservation. Both
  // sites are consulted before any mutation so a fire on either means nothing changed.
  metrics_.pool_shrink_attempts += 1;
  metrics_.pool_grow_attempts += 1;
  if (fault_ != nullptr && fault_->Fire(FaultSite::kPoolShrinkDrain)) {
    metrics_.pool_shrink_rollbacks += 1;
    SyncFaultMetrics();
    return 0;
  }
  if (fault_ != nullptr && fault_->Fire(FaultSite::kPoolGrow)) {
    metrics_.pool_grow_rollbacks += 1;
    SyncFaultMetrics();
    return 0;
  }
  const int32_t removed = src.ShrinkPool(want);
  if (removed == 0) {
    return 0;  // Donor tail pinned by live pages; committed with zero delta.
  }
  const int64_t freed = static_cast<int64_t>(removed) * src_page;
  const auto gained = static_cast<int32_t>(freed / dst_page);
  if (gained == 0) {
    // The freed run is smaller than one recipient page: give it back to the donor (the page
    // ids re-appear at the same dense tail positions) instead of stranding capacity.
    src.GrowPool(removed);
    return 0;
  }
  dst.GrowPool(gained);
  metrics_.pool_shrink_pages += removed;
  metrics_.pool_grow_pages += gained;
  // The sub-page remainder also returns to the donor so the two pools always account for
  // every byte of the original split.
  const auto remainder_pages =
      static_cast<int32_t>((freed - static_cast<int64_t>(gained) * dst_page) / src_page);
  if (remainder_pages > 0) {
    src.GrowPool(remainder_pages);
    metrics_.pool_shrink_pages -= remainder_pages;
  }
  return static_cast<int64_t>(gained) * dst_page;
}

void SpecDecodeEngine::SyncFaultMetricsSlow() {
  if (fault_ != nullptr) {
    metrics_.faults_injected = fault_->total_fires();
  }
  if (swap_ != nullptr) {
    const SwapManager::Stats& s = swap_->stats();
    metrics_.fault_retries = s.fault_retries;
    metrics_.fault_backoff_time = s.backoff_time;
    metrics_.degraded_mode_transitions = s.degraded_transitions;
  }
}

bool SpecDecodeEngine::StepOnce() {
  if (running_.empty() && waiting_.empty()) {
    return false;
  }
  StepProfiler::StepScope prof_step(prof_);
  if (step_hook_ != nullptr) [[unlikely]] {
    // Quiesce point: no request is mid-macro-step, so the governor may rebalance the
    // draft/target split here.
    StepProfiler::Scope prof_scope(prof_, StepPhase::kHookDispatch);
    step_hook_->OnStepBoundary(*this);
    if (running_.empty() && waiting_.empty()) {
      return false;
    }
  }
  if (has_deadlines_) [[unlikely]] {
    StepProfiler::Scope prof_scope(prof_, StepPhase::kDeadlineExpiry);
    ExpireDeadlines();
  }
  if (fault_ != nullptr && swap_ != nullptr) [[unlikely]] {
    StepProfiler::Scope prof_scope(prof_, StepPhase::kHookDispatch);
    swap_->OnEngineStep();  // Host memory-pressure site (forced shrink / degrade).
  }
  ++tick_;

  int64_t budget = max_batched_tokens_;
  int64_t prefill_tokens = 0;
  std::unordered_set<RequestId> prefilled_this_step;

  // Phase 1: continue prefill (and post-preemption recompute) of running requests.
  {
    StepProfiler::Scope prof_schedule(prof_, StepPhase::kSchedule);
    for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
      Request& r = Get(id);
      if (r.num_computed_tokens >= PrefillTarget(r) || budget <= 0) {
        continue;
      }
      const int64_t n = std::min<int64_t>(PrefillTarget(r) - r.num_computed_tokens, budget);
      bool allocated;
      {
        StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
        allocated = AllocateAll(r, n);
      }
      if (!allocated) {
        continue;  // Retry next step once decodes free memory.
      }
      r.num_computed_tokens += n;
      {
        StepProfiler::Scope prof_commit(prof_, StepPhase::kCommit);
        StepComputedAll(r);
      }
      budget -= n;
      prefill_tokens += n;
      prefilled_this_step.insert(id);
    }
  }

  // Phase 2: admissions. The kSchedule scope is held in an optional so it can end after the
  // shed-gate check without re-indenting the loop (nested scopes pause it as usual).
  bool head_blocked = false;
  std::optional<StepProfiler::Scope> prof_admissions;
  prof_admissions.emplace(prof_, StepPhase::kSchedule);
  while (budget > 0 && static_cast<int>(running_.size()) < max_num_seqs_ && !waiting_.empty()) {
    const RequestId id = waiting_.front();
    Request& r = Get(id);
    if (swap_ != nullptr && r.swapped_out) {
      const HostSwapSet* set = swap_->PeekSwapSet(id);
      bool restored = false;
      HostSwapSet snapshot;
      if (set != nullptr) {
        // Copy the set: each manager's restore may evict cache pages into the host pool,
        // which can LRU-evict this set (and invalidate `set`) before the commit below.
        snapshot = *set;
        if (!swap_->BeginSwapIn(id).ok()) {
          // Injected H2D fault that survived its retries: the set is unusable — fall through
          // to the recompute path below instead of head-of-line blocking.
          set = nullptr;
        }
      }
      if (set != nullptr) {
        StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
        const int64_t tokens = snapshot.tokens;
        JENGA_CHECK_EQ(snapshot.fingerprints.size(), managers_.size());
        bool can = true;
        for (auto& manager : managers_) {
          if (!manager->CanAllocate(r, tokens)) {
            can = false;
            break;
          }
        }
        if (can) {
          restored = true;
          for (size_t m = 0; m < managers_.size(); ++m) {
            if (!managers_[m]->RestoreFromSwap(r, tokens, snapshot.fingerprints[m], tick_)) {
              for (size_t k = 0; k < m; ++k) {
                managers_[k]->Release(r, tick_);
              }
              r.num_computed_tokens = 0;
              restored = false;
              break;
            }
          }
        }
        if (!restored && !running_.empty()) {
          head_blocked = true;
          break;  // Head-of-line blocking; retry once decodes free memory.
        }
      }
      if (restored) {
        swap_->CommitSwapIn(id, snapshot);
        metrics_.swap_in_events += 1;
        r.swapped_out = false;
        r.swapped_out_tokens = 0;
        waiting_.Erase(id);
        r.state = RequestState::kRunning;
        if (r.first_scheduled_time < 0.0) {
          r.first_scheduled_time = now_;
        }
        running_.PushBack(id);
        // The restore transfer is still in flight this step; decode resumes next step.
        prefilled_this_step.insert(id);
        continue;
      }
      // Set evicted from host memory, or restoring would deadlock: recompute from scratch.
      swap_->DropSwapSet(id);
      r.swapped_out = false;
      metrics_.swap_fallback_events += 1;
      metrics_.recomputed_tokens += r.swapped_out_tokens;
      r.swapped_out_tokens = 0;
    }
    const int64_t n = std::min<int64_t>(PrefillTarget(r), budget);
    bool fits = true;
    {
      StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
      for (auto& manager : managers_) {
        if (!manager->CanAllocate(r, n)) {
          fits = false;
          break;
        }
      }
    }
    if (!fits) {
      if (running_.empty()) {
        waiting_.Erase(id);
        FinishRequest(r, /*failed=*/true);
        continue;
      }
      head_blocked = true;
      break;
    }
    waiting_.Erase(id);
    {
      StepProfiler::Scope prof_admit(prof_, StepPhase::kHitScan);
      AdmitAll(r);
    }
    bool allocated;
    {
      StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
      allocated = AllocateAll(r, n);
    }
    if (!allocated) {
      const bool abandoned = running_.empty();
      ReleaseAll(r, /*finished=*/abandoned);
      r.num_computed_tokens = 0;
      if (abandoned) {
        FinishRequest(r, /*failed=*/true);
        continue;
      }
      waiting_.PushFront(id);
      head_blocked = true;
      break;
    }
    r.state = RequestState::kRunning;
    if (r.first_scheduled_time < 0.0) {
      r.first_scheduled_time = now_;
    }
    r.num_computed_tokens += n;
    {
      StepProfiler::Scope prof_commit(prof_, StepPhase::kCommit);
      StepComputedAll(r);
    }
    running_.PushBack(id);
    budget -= n;
    prefill_tokens += n;
    prefilled_this_step.insert(id);
  }
  prof_admissions.reset();

  if (head_blocked) {
    head_blocked_steps_ += 1;
    StepProfiler::Scope prof_shed(prof_, StepPhase::kShedGate);
    MaybeShedHead();
  } else {
    head_blocked_steps_ = 0;
  }

  // Phase 3: decode macro step — draft proposes, target verifies, accepted tokens commit.
  // Generated token ids are appended before allocation so block tables can cover them.
  struct Emit {
    RequestId id;
    int64_t tokens;
  };
  std::vector<Emit> decode_emits;
  int64_t decode_kv_read = 0;
  std::optional<StepProfiler::Scope> prof_decode;
  prof_decode.emplace(prof_, StepPhase::kSchedule);
  for (RequestId id = running_.front(); id != kNoRequest;) {
    Request& r = Get(id);
    if (prefilled_this_step.contains(id) || r.num_computed_tokens < PrefillTarget(r)) {
      id = running_.Next(id);
      continue;
    }
    int accepted = 0;
    while (accepted < config_.propose_len && rng_.Bernoulli(config_.acceptance_rate)) {
      ++accepted;
    }
    const int64_t emit = std::min<int64_t>(accepted + 1, r.output_len - r.num_generated);
    if (emit == 0) {
      // Every output token was already appended before a mid-decode self-preemption, and
      // the recompute that just completed re-covered their KV: the request finishes through
      // the normal commit path below without emitting anything new.
      decode_emits.push_back({id, 0});
      id = running_.Next(id);
      continue;
    }
    for (int64_t j = 0; j < emit; ++j) {
      r.AppendGenerated(PseudoToken(r.id, r.total_len()));
    }
    bool self_preempted = false;
    {
      StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
      while (!AllocateAll(r, emit)) {
        const RequestId victim = running_.back();
        Preempt(victim);
        if (victim == id) {
          self_preempted = true;
          break;
        }
      }
    }
    if (self_preempted) {
      // Tokens stay appended; recompute covers their KV after re-admission. Everything after
      // `id` was already preempted back-first, so the iteration is over — and the successor
      // must be read after the preempt loop anyway, since the loop unlinks it.
      break;
    }
    {
      StepProfiler::Scope prof_gpu(prof_, StepPhase::kGpuSim);
      for (auto& manager : managers_) {
        decode_kv_read += manager->DecodeKvReadBytes(r);
      }
    }
    decode_emits.push_back({id, emit});
    id = running_.Next(id);
  }
  prof_decode.reset();

  if (prefilled_this_step.empty() && decode_emits.empty()) {
    // Everything blocked (e.g. a prefill cannot fit next to the others): preempt the youngest
    // running request so the head of the line can progress.
    if (!running_.empty()) {
      Preempt(running_.back());
      SyncFaultMetrics();
      return true;
    }
    // Either the head of the waiting line retries next step, or every remaining request was
    // failed at admission above and no work remains.
    SyncFaultMetrics();
    return !waiting_.empty();
  }

  // Phase 4: time accounting — chunked prefill on both models + propose_len draft steps +
  // one target verification pass over batch × (k+1) tokens.
  std::optional<StepProfiler::Scope> prof_gpu;
  prof_gpu.emplace(prof_, StepPhase::kGpuSim);
  double step_time = 0.0;
  if (prefill_tokens > 0) {
    step_time += target_gpu_.StepTime(prefill_tokens, 0) + draft_gpu_.StepTime(prefill_tokens, 0);
  }
  if (!decode_emits.empty()) {
    const int64_t batch = static_cast<int64_t>(decode_emits.size());
    const int64_t per_pass_read = decode_kv_read / (config_.propose_len + 1);
    for (int j = 0; j < config_.propose_len; ++j) {
      step_time += draft_gpu_.StepTime(batch, per_pass_read);
    }
    step_time += target_gpu_.StepTime(batch * (config_.propose_len + 1), per_pass_read);
  }
  if (swap_ != nullptr) {
    const double stall = swap_->ConsumeStall(step_time);
    metrics_.swap_stall_time += stall;
    step_time += stall;
  }
  now_ += step_time;

  // A fired GPU step fault voids the whole draft+verify pass: the Phase 5 commit is skipped,
  // and the appended-but-uncommitted decode tokens recover through the Phase 1 recompute path
  // next step (the same mechanism a mid-decode self-preemption relies on — their pages are
  // already allocated, so the retry is cheap). Prefill commits in Phases 1–2 are inline and
  // survive the fault.
  const bool step_failed = target_gpu_.InjectStepFault();
  prof_gpu.reset();
  if (step_failed) {
    metrics_.gpu_step_faults += 1;
    metrics_.RecordStep(now_, prefill_tokens, 0, static_cast<int>(running_.size()),
                        static_cast<int>(waiting_.size()));
    SyncFaultMetrics();
    return true;
  }

  // Phase 5: commit.
  int64_t emitted_total = 0;
  StepProfiler::Scope prof_commit(prof_, StepPhase::kCommit);
  for (const Emit& e : decode_emits) {
    Request& r = Get(e.id);
    r.num_computed_tokens += e.tokens;
    StepComputedAll(r);
    if (r.first_token_time < 0.0) {
      r.first_token_time = now_;
    }
    emitted_total += e.tokens;
    if (r.num_generated >= r.output_len) {
      ReleaseAll(r, /*finished=*/true);
      running_.Erase(e.id);
      FinishRequest(r, /*failed=*/false);
    }
  }
  for (const RequestId id : prefilled_this_step) {
    Request& r = Get(id);
    if (r.state == RequestState::kRunning && r.num_generated == 0 &&
        r.num_computed_tokens >= r.prompt_len()) {
      r.AppendGenerated(PseudoToken(r.id, r.total_len()));
      r.first_token_time = now_;
      ++emitted_total;
    }
  }

  metrics_.RecordStep(now_, prefill_tokens + emitted_total,
                      static_cast<int>(decode_emits.size()), static_cast<int>(running_.size()),
                      static_cast<int>(waiting_.size()));
  SyncFaultMetrics();
  return true;
}

void SpecDecodeEngine::DumpStateForDebug(std::ostream& os) const {
  os << "=== spec-decode engine state dump ===\n";
  os << "strategy=" << SpecStrategyName(config_.strategy) << " now=" << now_
     << " tick=" << tick_ << " running=" << running_.size() << " waiting=" << waiting_.size()
     << " finished=" << metrics_.finished().size() << "\n";
  for (size_t m = 0; m < managers_.size(); ++m) {
    const KvManager::MemoryStats mem = managers_[m]->GetMemoryStats();
    os << "pool[" << m << "]: bytes=" << mem.pool_bytes << " used=" << mem.used_bytes
       << " needed=" << mem.needed_bytes << " cached=" << mem.cached_bytes
       << " unallocated=" << mem.unallocated_bytes << "\n";
  }
  if (swap_ != nullptr) {
    const SwapManager::Stats& s = swap_->stats();
    os << "offload: degraded=" << (swap_->degraded() ? 1 : 0)
       << " host_used=" << swap_->host().used_bytes()
       << " host_cap=" << swap_->host().capacity_bytes() << " sets=" << swap_->host().num_sets()
       << " pages=" << swap_->host().num_pages() << " swap_out=" << s.swap_out_events
       << " swap_in=" << s.swap_in_events << " retries=" << s.fault_retries
       << " backoff=" << s.backoff_time << " shrinks=" << s.host_shrinks << "\n";
  }
  if (fault_ != nullptr) {
    os << "faults:";
    for (int i = 0; i < kNumFaultSites; ++i) {
      const FaultInjector::SiteCounters& c = fault_->counters(static_cast<FaultSite>(i));
      os << " " << FaultSiteName(static_cast<FaultSite>(i)) << "=" << c.fires << "/"
         << c.consults;
    }
    os << "\n";
  }
  os << "shed: head_blocked_steps=" << head_blocked_steps_
     << " shed_requests=" << metrics_.shed_requests << "\n";
  std::vector<RequestId> ids;
  ids.reserve(requests_.size());
  for (const auto& [id, r] : requests_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const RequestId id : ids) {
    const Request& r = requests_.at(id);
    const char* state = r.state == RequestState::kWaiting     ? "waiting"
                        : r.state == RequestState::kRunning   ? "running"
                        : r.state == RequestState::kPreempted ? "preempted"
                                                              : "finished";
    os << "  req " << id << ": state=" << state << " prompt=" << r.prompt_len()
       << " output=" << r.output_len << " computed=" << r.num_computed_tokens
       << " generated=" << r.num_generated << " preemptions=" << r.preemptions
       << " swapped_out=" << (r.swapped_out ? 1 : 0) << " cancelled=" << (r.cancelled ? 1 : 0)
       << " arrival=" << r.arrival_time << " deadline=" << r.deadline << "\n";
  }
  os << "=== end spec-decode engine state dump ===\n";
}

void SpecDecodeEngine::RunToCompletion(int64_t max_steps) {
  int64_t steps = 0;
  while (StepOnce()) {
    ++steps;
    if (steps >= max_steps) {
      // Dump everything a postmortem needs before aborting: fuzz/chaos non-convergence must
      // be debuggable from the log alone.
      DumpStateForDebug(std::cerr);
      JENGA_CHECK_LT(steps, max_steps) << "spec-decode engine did not converge";
    }
  }
}

}  // namespace jenga
