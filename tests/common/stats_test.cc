#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(Summary, EmptyMeanIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 1e-9);
}

TEST(Summary, PercentileUnsortedInput) {
  Summary s;
  for (double v : {9.0, 1.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
}

TEST(Summary, Stddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.Stddev(), 2.138, 1e-3);  // Sample stddev.
}

TEST(TimeSeries, MeanAndMax) {
  TimeSeries ts;
  ts.Add(0.0, 2.0);
  ts.Add(1.0, 6.0);
  ts.Add(2.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.MeanValue(), 4.0);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 6.0);
}

TEST(TimeSeries, ResampleStepSemantics) {
  TimeSeries ts;
  ts.Add(0.0, 10.0);
  ts.Add(9.9, 20.0);
  const std::vector<double> r = ts.Resample(10);
  ASSERT_EQ(r.size(), 10u);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
  // Empty middle buckets carry the previous value.
  EXPECT_DOUBLE_EQ(r[5], 10.0);
  EXPECT_DOUBLE_EQ(r[9], 20.0);
}

TEST(Sparkline, ShapeAndLength) {
  const std::string line = Sparkline({0.0, 1.0, 2.0, 3.0});
  EXPECT_FALSE(line.empty());
  // Four glyphs, each 3 bytes in UTF-8.
  EXPECT_EQ(line.size(), 12u);
}

TEST(Sparkline, Empty) { EXPECT_EQ(Sparkline({}), ""); }

}  // namespace
}  // namespace jenga
