#include "src/engine/gpu.h"

#include <algorithm>

#include "src/common/check.h"

namespace jenga {

GpuSpec H100() {
  GpuSpec spec;
  spec.name = "H100-80GB";
  spec.memory_bytes = 80LL * 1024 * 1024 * 1024;
  spec.flops = 4.5e14;  // ~45% of peak bf16 dense.
  spec.mem_bandwidth = 2.8e12;
  spec.max_batched_tokens = 8192;
  spec.max_num_seqs = 256;
  spec.reserved_bytes = 6LL * 1024 * 1024 * 1024;
  return spec;
}

GpuSpec L4() {
  GpuSpec spec;
  spec.name = "L4-24GB";
  spec.memory_bytes = 24LL * 1024 * 1024 * 1024;
  spec.flops = 5.5e13;
  spec.mem_bandwidth = 2.8e11;
  spec.max_batched_tokens = 4096;
  spec.max_num_seqs = 128;
  spec.reserved_bytes = 3LL * 1024 * 1024 * 1024;
  return spec;
}

GpuSim::GpuSim(GpuSpec spec, const ModelConfig& model)
    : spec_(std::move(spec)),
      model_params_(model.params_b * 1e9),
      vision_params_(model.vision.encoder_params_b * 1e9),
      weight_bytes_(model.WeightBytes()),
      weight_dtype_bytes_(model.weight_dtype_bytes) {}

double GpuSim::StepTime(int64_t new_tokens, int64_t kv_bytes_read) const {
  // Compute: 2 FLOPs per parameter per token. A step must at minimum stream the weights once
  // (decode is weight-bandwidth-bound at small batch).
  const double compute = 2.0 * model_params_ * static_cast<double>(new_tokens) / spec_.flops;
  const double weight_stream = static_cast<double>(weight_bytes_) / spec_.mem_bandwidth;
  const double kv_read = static_cast<double>(kv_bytes_read) / spec_.mem_bandwidth;
  const double kernel_overhead = 2e-4;  // Launch + scheduling overhead per step.
  return kernel_overhead + std::max(compute, weight_stream) + kv_read;
}

double GpuSim::VisionEncodeTime(int64_t image_tokens) const {
  if (image_tokens <= 0 || vision_params_ <= 0.0) {
    return 0.0;
  }
  // ViT encoders process several patches per emitted image token (pixel-unshuffle / pooling
  // compresses 4x or more before the LLM) and run at lower utilization than dense decoder
  // GEMMs; fold both into a patch-expansion factor.
  constexpr double kPatchesPerToken = 8.0;
  const double compute = 2.0 * vision_params_ * kPatchesPerToken *
                         static_cast<double>(image_tokens) / spec_.flops;
  return 1e-3 + compute;
}

int64_t GpuSim::KvPoolBytes() const {
  const int64_t pool = spec_.memory_bytes - weight_bytes_ - spec_.reserved_bytes;
  JENGA_CHECK_GT(pool, 0) << "model does not fit on " << spec_.name;
  return pool;
}

}  // namespace jenga
