// The serving-engine simulator: vLLM-style continuous batching with chunked prefill,
// admission control, preemption-by-recomputation, prefix caching, and (for multimodal models)
// vision-encoder scheduling. The engine is deterministic: logical ticks order LRU decisions
// and the GPU cost model advances simulated wall-clock time.

#ifndef JENGA_SRC_ENGINE_ENGINE_H_
#define JENGA_SRC_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "src/engine/deadline_heap.h"
#include "src/engine/gpu.h"
#include "src/fault/fault_injector.h"
#include "src/engine/kv_manager.h"
#include "src/engine/request.h"
#include "src/engine/request_queue.h"
#include "src/metrics/metrics.h"
#include "src/metrics/step_profiler.h"
#include "src/model/model_config.h"
#include "src/offload/swap_manager.h"

namespace jenga {

struct EngineConfig {
  ModelConfig model;
  GpuSpec gpu;
  int tokens_per_page = 16;
  bool enable_prefix_caching = true;
  // Admission fast path: memoize per-request prompt hash chains and modality streams across
  // re-admissions (KvManager::Options::memoize_admission). Off = rebuild-from-scratch
  // reference behavior, which the memoized path must match bit for bit (differential tests).
  bool memoize_admission = true;
  // True → Jenga memory management; false → PagedAttention-style homogeneous baseline.
  bool jenga = true;
  // Vision-embedding cache (Jenga only). Engines without it re-run the vision encoder on
  // every chunked-prefill step that consumes image tokens (§7.4).
  bool vision_cache = true;
  // Fraction of the requested output an engine actually generates (TGI lacks --ignore-eos
  // and stops early, Fig. 15).
  double output_fraction = 1.0;
  // Scales the KV pool (engine profiles differ slightly in reserved memory).
  double memory_fraction = 1.0;
  // Test overrides (0 = use the GPU defaults).
  int64_t pool_bytes_override = 0;
  int max_batched_tokens_override = 0;
  int max_num_seqs_override = 0;
  // Record a memory sample every N steps (0 disables).
  int memory_sample_every = 1;
  // Host-memory KV offload tier (disabled by default; when disabled the engine is
  // byte-identical to the tier-less build).
  OffloadConfig offload;
  // Fault injection (empty plan = disabled; the engine then constructs no injector and all
  // consult sites short-circuit, keeping behavior byte-identical to the fault-less build).
  FaultConfig fault;
  // Load-shedding admission gate: when the head of the waiting queue has been blocked for
  // this many consecutive steps while pool occupancy is at or above the watermark, fail it
  // (vLLM-style abort) instead of letting it starve behind long-running requests.
  // 0 disables the gate (default).
  int shed_after_blocked_steps = 0;
  double shed_occupancy_watermark = 0.95;
  // Empty-page index shards per group allocator (KvManager::Options::alloc_shards). 1 = the
  // deterministic legacy free lists; >1 = the lock-free claim bitmaps (concurrency-ready,
  // auditor-checked, different placement order — not the golden oracle).
  int alloc_shards = 1;
};

// Named engine profiles used in the Fig. 15 comparison.
[[nodiscard]] EngineConfig VllmProfile(ModelConfig model, GpuSpec gpu);
[[nodiscard]] EngineConfig SglangProfile(ModelConfig model, GpuSpec gpu);
[[nodiscard]] EngineConfig TgiProfile(ModelConfig model, GpuSpec gpu);
[[nodiscard]] EngineConfig JengaProfile(ModelConfig model, GpuSpec gpu);

class Engine;

// Step-boundary hook: the attach point for the elastic memory governor (src/elastic). Called
// at the top of every StepOnce with work pending — the engine's quiesce point: no request is
// mid-step, so the hook may preempt, shed, resize the pool, or repartition. Detached
// (nullptr, the default) costs one null test per step and keeps the engine byte-identical to
// a build without the subsystem — the same discipline as the audit/fault/offload hooks.
class EngineStepHook {
 public:
  virtual ~EngineStepHook() = default;
  virtual void OnStepBoundary(Engine& engine) = 0;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);

  // Enqueues a request (arrival_time may be in the future).
  void Submit(Request request);

  // Executes one scheduler step; returns false when no work remains.
  bool StepOnce();

  // Runs until every submitted request finished (or `max_steps` as a runaway guard).
  void RunToCompletion(int64_t max_steps = 2000000);

  // Aborts a request in any state — waiting, running, preempted, or swapped out to the host
  // tier — with full resource reclamation (GPU pages, allocator affinity state, host
  // swap-set bytes). Safe at any point between steps. Returns false when the id is unknown
  // or the request already finished.
  bool CancelRequest(RequestId id);

  // Ids of every unfinished request in deterministic scheduler order (running queue first,
  // then waiting) — the harvest order a fleet supervisor re-routes work in on replica death.
  [[nodiscard]] std::vector<RequestId> ActiveRequests() const;

  // Writes a human-readable state dump (queues, pool occupancy, per-request progress, fault
  // counters) — the non-convergence diagnostic, also handy from test failures.
  void DumpStateForDebug(std::ostream& os) const;

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const EngineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] KvManager& kv() { return *kv_; }
  // nullptr when the offload tier is disabled.
  [[nodiscard]] const SwapManager* swap() const { return swap_.get(); }
  // Mutable access for the audit layer (tests only); nullptr when the tier is disabled.
  [[nodiscard]] SwapManager* swap_mutable() { return swap_.get(); }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const Request& request(RequestId id) const;
  [[nodiscard]] int num_running() const { return static_cast<int>(running_.size()); }
  [[nodiscard]] int num_waiting() const { return static_cast<int>(waiting_.size()); }
  [[nodiscard]] int64_t weight_bytes() const { return config_.model.WeightBytes(); }
  [[nodiscard]] int64_t reserved_bytes() const { return reserved_bytes_; }

  // --- Elastic pool operations (MemoryGovernor entry points; see src/elastic) ---

  // Installs/removes the step-boundary hook (nullptr detaches; detached = byte-identical).
  void set_step_hook(EngineStepHook* hook) { step_hook_ = hook; }
  // Installs/removes the per-phase step profiler (nullptr detaches; detached = one null test
  // per phase scope). The profiler reads only the host wall clock — attaching it never
  // touches logical ticks or simulated time, so scheduling stays byte-identical (§12).
  void set_step_profiler(StepProfiler* profiler) { prof_ = profiler; }
  [[nodiscard]] const KvManager& kv() const { return *kv_; }
  // The governor's ladder counters live in the same EngineMetrics the engine owns.
  [[nodiscard]] EngineMetrics& metrics_mutable() { return metrics_; }
  // nullptr when no faults are configured.
  [[nodiscard]] FaultInjector* fault_injector() { return fault_.get(); }
  // Pool occupancy in [0, 1]: 1 − unallocated/pool (0 on an empty pool).
  [[nodiscard]] double PoolOccupancy() const;
  [[nodiscard]] int32_t PoolPages() const;
  // Audited grow: appends `pages` large pages to the pool. The pool_grow fault site is
  // consulted BEFORE any mutation, so a fire rolls the attempt back with zero net change.
  // Returns pages added (0 on rollback, or on sharded allocators which don't resize).
  int32_t GrowKvPool(int32_t pages);
  // Audited shrink: drains up to `pages` trailing large pages (cached content parks through
  // the eviction sink) and removes them. Consults pool_shrink_drain before mutating.
  // Returns pages removed (0 on rollback, a pinned tail, or sharded allocators).
  int32_t ShrinkKvPool(int32_t pages);
  // LCM repartition for a model hot-swap: quiesce (preempt every running request via the
  // recompute path — swap-set fingerprints are tied to the old layout), build the new
  // layout's KvManager, consult repartition_commit, then either commit (install the new
  // manager, flush host-tier state, rebuild the GPU cost model for the new weights) or roll
  // back (the old layout stays live and the quiesced requests simply re-admit). No request
  // is aborted on either path. `new_pool_bytes` 0 derives the pool from the GPU spec and
  // the new model's weights. Returns true on commit.
  bool RepartitionKvPool(const ModelConfig& new_model, int64_t new_pool_bytes = 0);
  // Pressure-ladder rung 1: preempts the newest running request (parking its KV to the host
  // tier when the swap crossover accepts it). Refuses to park the only runner. Returns true
  // if a request was preempted.
  bool ParkNewestRunning();
  // Pressure-ladder rung 2: sheds (fails) the oldest arrived waiting request.
  bool ShedOldestWaiting();
  // Advertised to the fleet router while a repartition/drain is in flight: a draining
  // replica routes like a saturated one (DecideRoute spills around it).
  void set_elastic_draining(bool draining) { elastic_draining_ = draining; }
  [[nodiscard]] bool elastic_draining() const { return elastic_draining_; }

 private:
  struct Scheduled {
    RequestId id = kNoRequest;
    int64_t tokens = 0;
    bool was_prefill = false;
  };

  [[nodiscard]] Request& Get(RequestId id);
  [[nodiscard]] int64_t EffectiveOutputLen(const Request& r) const;
  // `allow_swap` false forces the recompute path (repartition quiesce: swap-set fingerprints
  // would bind the request to the layout being replaced).
  void Preempt(RequestId id, bool allow_swap = true);
  void FinishRequest(Request& r, bool failed);
  // Cancels every unfinished request whose deadline has passed (same path as CancelRequest).
  // O(1) when nothing expired (deadline-heap top check), O(log n) per single expiry; a step
  // that expires several requests at once re-collects them in queue order so the cancel
  // order — and every downstream release/eviction tie-break — matches the legacy full scan.
  void ExpireDeadlines();
  // JENGA_CHECK_DEADLINES fuzz arm: verifies the heap-collected expired set (already in
  // expired_buf_) against the brute-force queue scan.
  void CheckDeadlineHeapAgainstScan();
  // Shed gate: called when the head of the waiting queue stayed blocked this step. Inlined
  // disabled path — the occupancy probe in the slow path walks the request table, so configs
  // without a shed gate must branch out before the call.
  void MaybeShedHead() {
    if (config_.shed_after_blocked_steps <= 0 ||
        head_blocked_steps_ < config_.shed_after_blocked_steps || waiting_.empty()) {
      return;
    }
    MaybeShedHeadSlow();
  }
  void MaybeShedHeadSlow();
  // Copies injector/swap recovery counters into metrics_ (idempotent assignments). Inlined
  // null path: with neither tier configured this is two pointer tests and no call — it runs
  // on every step-exit path, so the common no-fault/no-offload config must not pay for it.
  void SyncFaultMetrics() {
    if (fault_ != nullptr || swap_ != nullptr) [[unlikely]] {
      SyncFaultMetricsSlow();
    }
  }
  void SyncFaultMetricsSlow();
  [[nodiscard]] double MaybeEncodeVision(Request& r, int64_t chunk_begin, int64_t chunk_end);

  // Outcome of a swap-set re-admission attempt for the head of the waiting queue.
  enum class SwapAdmit {
    kFallthrough,  // No usable swap set: take the normal (recompute) admission path.
    kAdmitted,     // Restored and moved to running_.
    kBlocked,      // Cannot restore right now: head-of-line blocking, stop admitting.
  };
  [[nodiscard]] SwapAdmit TryAdmitFromSwap(Request& r, bool nothing_else_runnable);

  EngineConfig config_;
  GpuSim gpu_;
  std::unique_ptr<KvManager> kv_;
  std::unique_ptr<SwapManager> swap_;
  std::unique_ptr<FaultInjector> fault_;  // nullptr when no faults are configured.
  EngineStepHook* step_hook_ = nullptr;   // Not owned; nullptr = no governor attached.
  StepProfiler* prof_ = nullptr;          // Not owned; nullptr = no profiler attached.
  bool elastic_draining_ = false;
  int64_t reserved_bytes_ = 0;
  int max_batched_tokens_ = 0;
  int max_num_seqs_ = 0;
  int head_blocked_steps_ = 0;
  bool has_deadlines_ = false;

  std::unordered_map<RequestId, Request> requests_;
  // Indexed FIFOs: same iteration order as the deque/vector they replaced, but preempt,
  // cancel, and finish remove mid-queue entries in O(1) instead of a std::find scan.
  RequestQueue waiting_;
  RequestQueue running_;
  // One entry per submitted request with a deadline (deadlines are immutable, so preempt and
  // re-admit need no updates); entries of requests that finish early are discarded lazily.
  DeadlineHeap deadlines_;
  // Scratch for ExpireDeadlines (cleared each use; capacity reused).
  std::vector<RequestId> expired_buf_;

  double now_ = 0.0;
  Tick tick_ = 0;
  EngineMetrics metrics_;
  // Scratch for StepOnce's schedule (cleared each step; capacity reused).
  std::vector<Scheduled> scheduled_buf_;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_ENGINE_H_
