// Regression tests for submitting to a FleetFrontend after (or racing) Shutdown. The old
// behavior let a post-shutdown TrySubmitAsync race the drained replica queues: the push
// landed on a closed queue and surfaced as a backpressure rejection — indistinguishable
// from transient saturation, so callers retried forever. Both entry points now report the
// terminal state cleanly: SubmitAsync returns a kRejected stream, TrySubmitAsync returns
// Status::FailedPrecondition (kResourceExhausted stays reserved for genuine saturation).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/cluster/fleet_frontend.h"
#include "src/common/status.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

FleetFrontend MakeFleet(int num_replicas) {
  return FleetFrontend(TestFleetConfig(num_replicas, RoutePolicy::kPrefixAffinity, /*seed=*/7),
                       ServingFrontend::Options{});
}

Request SmallRequest(FleetFrontend& fleet) {
  return MakeRequest(fleet.NextRequestId(), ArticlePrompt(0, 32, 0), /*output_len=*/2, 0.0);
}

TEST(FleetShutdownTest, SubmitAsyncAfterShutdownRejectsTheStream) {
  FleetFrontend fleet = MakeFleet(2);
  fleet.Start();
  fleet.Shutdown();
  StreamHandle stream = fleet.SubmitAsync(SmallRequest(fleet));
  EXPECT_EQ(stream->phase.load(), StreamPhase::kRejected);
  EXPECT_TRUE(stream->Done());
  EXPECT_EQ(fleet.counters().rejected_submits, 1);
  EXPECT_EQ(fleet.counters().submitted, 0);
}

TEST(FleetShutdownTest, TrySubmitAsyncAfterShutdownIsFailedPrecondition) {
  FleetFrontend fleet = MakeFleet(2);
  fleet.Start();
  fleet.Shutdown();
  StreamHandle stream;
  const Status status = fleet.TrySubmitAsync(SmallRequest(fleet), &stream);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream, nullptr);
  // A clean refusal, not a fake saturation signal: no backpressure tally, no submit tally —
  // the refusal lands on the same rejected_submits ledger as SubmitAsync's kRejected path.
  EXPECT_EQ(fleet.counters().backpressure_rejections, 0);
  EXPECT_EQ(fleet.counters().rejected_submits, 1);
  EXPECT_EQ(fleet.counters().submitted, 0);
}

TEST(FleetShutdownTest, ShutdownWithoutStartStillRefusesCleanly) {
  FleetFrontend fleet = MakeFleet(2);
  fleet.Shutdown();
  StreamHandle stream;
  EXPECT_EQ(fleet.TrySubmitAsync(SmallRequest(fleet), &stream).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.SubmitAsync(SmallRequest(fleet))->phase.load(), StreamPhase::kRejected);
}

TEST(FleetShutdownTest, KillReplicaAfterShutdownIsRefused) {
  FleetFrontend fleet = MakeFleet(2);
  fleet.Start();
  fleet.Shutdown();
  EXPECT_FALSE(fleet.KillReplica(0));
  EXPECT_EQ(fleet.counters().replica_deaths, 0);
}

// Producers race Shutdown: every submit must either be accepted (and reach a terminal
// stream phase during the drain) or be refused with the clean post-shutdown signal — never
// a hang, never a bogus ResourceExhausted caused by the closing queues. A generous queue
// capacity keeps genuine saturation out of the run so any kResourceExhausted is the bug.
TEST(FleetShutdownTest, SubmitsRacingShutdownEitherDrainOrRejectCleanly) {
  ServingFrontend::Options options;
  options.queue_capacity = 4096;
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kPrefixAffinity, /*seed=*/11);
  // Disarm the spill thresholds entirely: deep queues must not read as saturation here.
  config.spill_queue_depth = 1 << 20;
  config.spill_occupancy = 2.0;
  FleetFrontend fleet(config, options);
  fleet.Start();

  constexpr int kProducers = 6;
  constexpr int kPerProducer = 200;
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> refused{0};
  std::atomic<int64_t> saturation{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&fleet, &accepted, &refused, &saturation, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Request r = MakeRequest(fleet.NextRequestId(), ArticlePrompt(p % 3, 32, i),
                                /*output_len=*/2, 0.0);
        if ((i & 1) == 0) {
          StreamHandle stream;
          const Status status = fleet.TrySubmitAsync(std::move(r), &stream);
          if (status.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          } else if (status.code() == StatusCode::kFailedPrecondition) {
            refused.fetch_add(1, std::memory_order_relaxed);
          } else {
            saturation.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          StreamHandle stream = fleet.SubmitAsync(std::move(r));
          if (stream->phase.load() == StreamPhase::kRejected) {
            refused.fetch_add(1, std::memory_order_relaxed);
          } else {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Let some submissions land, then shut down while producers are still going.
  while (accepted.load(std::memory_order_relaxed) < 32) {
    std::this_thread::yield();
  }
  fleet.Shutdown();
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(saturation.load(), 0);
  EXPECT_EQ(accepted.load() + refused.load(),
            static_cast<int64_t>(kProducers) * kPerProducer);
  const FleetCounters fc = fleet.counters();
  const ServingFrontend::Counters c = fleet.frontend_counters();
  EXPECT_EQ(fc.submitted, accepted.load());
  EXPECT_EQ(fc.rejected_submits, refused.load());
  // Shutdown drains: everything accepted reached a terminal record on some replica.
  EXPECT_EQ(c.submitted, accepted.load());
  EXPECT_EQ(c.submitted, c.admitted + c.cancelled_queued);
  EXPECT_EQ(c.admitted, c.finished + c.cancelled + c.failed);
}

}  // namespace
}  // namespace jenga
