#!/usr/bin/env bash
# Full gate: warnings-clean Release build, entire test suite, and a quick perf smoke.
# Usage: scripts/check.sh [build-dir]   (default: build-check, kept separate from ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "$build" -j "$(nproc)"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# Perf smoke: quick mode, scratch output (ignored by git; the tracked BENCH_perf.json
# at the repo root is only regenerated deliberately via a full --baseline run).
"$build/bench/bench_perf" --quick --out "$build/BENCH_perf_quick.json"

echo "check.sh: all gates passed"
