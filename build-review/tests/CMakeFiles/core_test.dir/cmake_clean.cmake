file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/block_hash_test.cc.o"
  "CMakeFiles/core_test.dir/core/block_hash_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/evictor_test.cc.o"
  "CMakeFiles/core_test.dir/core/evictor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/jenga_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/jenga_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/layer_policy_test.cc.o"
  "CMakeFiles/core_test.dir/core/layer_policy_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/lcm_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/lcm_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/small_page_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/small_page_allocator_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
