file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_prefix_caching.dir/bench_fig17_prefix_caching.cc.o"
  "CMakeFiles/bench_fig17_prefix_caching.dir/bench_fig17_prefix_caching.cc.o.d"
  "bench_fig17_prefix_caching"
  "bench_fig17_prefix_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_prefix_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
