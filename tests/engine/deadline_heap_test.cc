// Deadline-heap coverage (DESIGN.md §12): ExpireDeadlines went from a per-step scan of both
// scheduler queues to a lazy min-heap (src/engine/deadline_heap.h). These tests pin the
// contracts that make the swap safe:
//
//   - heap order: earliest deadline surfaces first, ties all drain;
//   - lazy deletion: cancelling (or finishing) a heaped request leaves a stale entry that
//     must be discarded silently when it surfaces — never a double cancel;
//   - submit-once: deadlines are immutable, so preemption, re-admission, and swap-restore
//     need no heap updates and the single Submit-time entry still fires exactly once;
//   - multi-expiry steps cancel in queue order (waiting first, then running), exactly like
//     the pre-heap scan — release order feeds eviction tie-breaks pinned by the goldens.
//
// The whole binary runs with JENGA_CHECK_DEADLINES armed, so every ExpireDeadlines call
// also cross-checks the heap-derived expired set against the brute-force queue scan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/engine/deadline_heap.h"
#include "src/engine/engine.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Must run before main: the enable flag latches on the first engine step.
const bool g_arm_deadline_audit = [] {
  setenv("JENGA_CHECK_DEADLINES", "1", /*overwrite=*/0);
  return true;
}();

// Undersized pool so the batch preempts (same shape as cancel_request_test).
EngineConfig PressureConfig() {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  return config;
}

EngineConfig RoomyConfig() {
  EngineConfig config = PressureConfig();
  config.pool_bytes_override = 0;  // Full test-GPU pool: no preemption pressure.
  return config;
}

// --- DeadlineHeap unit ---

TEST(DeadlineHeapUnit, PopsInDeadlineOrder) {
  DeadlineHeap heap;
  heap.Push(3.0, 30);
  heap.Push(1.0, 10);
  heap.Push(2.0, 20);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_FALSE(heap.HasExpired(0.5));
  EXPECT_TRUE(heap.HasExpired(1.0));  // Inclusive: deadline == now expires.
  EXPECT_EQ(heap.PopTop().id, 10);
  EXPECT_EQ(heap.PopTop().id, 20);
  EXPECT_EQ(heap.PopTop().id, 30);
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.HasExpired(100.0));
}

TEST(DeadlineHeapUnit, TiedDeadlinesAllSurface) {
  DeadlineHeap heap;
  heap.Push(5.0, 1);
  heap.Push(5.0, 2);
  heap.Push(5.0, 3);
  std::vector<RequestId> popped;
  while (heap.HasExpired(5.0)) {
    popped.push_back(heap.PopTop().id);
  }
  // Tie order is unspecified (the engine re-collects multi-expiry sets in queue order),
  // but every tied entry must drain.
  EXPECT_EQ(popped.size(), 3u);
}

TEST(DeadlineHeapUnit, DuplicateEntriesForOneIdAreTolerated) {
  // The engine never pushes twice for one request, but the heap itself is duplicate-
  // tolerant by design (mirrors the allocator's reclaim heap).
  DeadlineHeap heap;
  heap.Push(1.0, 7);
  heap.Push(2.0, 7);
  EXPECT_EQ(heap.PopTop().id, 7);
  EXPECT_EQ(heap.PopTop().id, 7);
  EXPECT_TRUE(heap.empty());
}

// --- Engine integration ---

TEST(DeadlineExpiry, CancelWhileHeapedLeavesStaleEntry) {
  Engine engine(RoomyConfig());
  engine.Submit(MakeRequest(0, TextPrompt(48), 8, 0.0));
  Request doomed = MakeRequest(1, TextPrompt(48), 8, 0.0);
  doomed.deadline = 0.0;  // Would expire on the first step...
  engine.Submit(std::move(doomed));
  ASSERT_TRUE(engine.CancelRequest(1));  // ...but the client cancels first.
  engine.RunToCompletion();
  // The stale heap entry surfaced and was discarded: no expiry, exactly one cancel.
  EXPECT_EQ(engine.metrics().deadline_expirations, 0);
  EXPECT_EQ(engine.metrics().cancelled_requests, 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  int records_for_doomed = 0;
  for (const RequestRecord& record : engine.metrics().finished()) {
    records_for_doomed += record.id == 1 ? 1 : 0;
  }
  EXPECT_EQ(records_for_doomed, 1) << "stale heap entry re-cancelled a finished request";
  engine.kv().CheckConsistency();
}

TEST(DeadlineExpiry, FinishBeforeDeadlineNeverExpires) {
  Engine engine(RoomyConfig());
  Request r = MakeRequest(0, TextPrompt(48), 4, 0.0);
  r.deadline = 1e6;  // Far beyond completion; the heap entry outlives the request.
  engine.Submit(std::move(r));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 0);
  EXPECT_EQ(engine.metrics().cancelled_requests, 0);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
}

TEST(DeadlineExpiry, MultiExpirySameStepCancelsInQueueOrder) {
  Engine engine(RoomyConfig());
  engine.Submit(MakeRequest(0, TextPrompt(48), 8, 0.0));
  for (RequestId id = 1; id <= 3; ++id) {
    Request doomed = MakeRequest(id, TextPrompt(48), 8, 0.0);
    doomed.deadline = 0.0;  // All three expire on the same (first) step.
    engine.Submit(std::move(doomed));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 3);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  // The multi-expiry fallback re-collects in queue order, so the cancel records land in
  // submission order — the same order the pre-heap queue scan produced.
  const auto& finished = engine.metrics().finished();
  ASSERT_GE(finished.size(), 3u);
  EXPECT_EQ(finished[0].id, 1);
  EXPECT_EQ(finished[1].id, 2);
  EXPECT_EQ(finished[2].id, 3);
  EXPECT_TRUE(finished[0].cancelled);
  engine.kv().CheckConsistency();
}

// Preempt → re-admit must not need a heap update: the Submit-time entry still fires, once,
// at the original deadline. The probe run (no deadline) finds a request that gets preempted
// and re-admitted plus its finish time; the timed run gives that request a deadline between
// re-admission and finish. Both runs are deterministic and identical up to the expiry.
TEST(DeadlineExpiry, FiresAfterPreemptAndReadmit) {
  constexpr int kBatch = 4;
  const auto submit_batch = [](Engine& engine, RequestId doomed, double deadline) {
    for (RequestId id = 0; id < kBatch; ++id) {
      Request r = MakeRequest(id, TextPrompt(96), 80, 0.0);
      if (id == doomed) {
        r.deadline = deadline;
      }
      engine.Submit(std::move(r));
    }
  };

  RequestId doomed = kNoRequest;
  double readmitted_at = -1.0;
  double finished_at = -1.0;
  {
    Engine probe(PressureConfig());
    submit_batch(probe, /*doomed=*/kNoRequest, -1.0);
    std::vector<double> readmit_time(kBatch, -1.0);
    std::vector<double> finish_time(kBatch, -1.0);
    while (probe.StepOnce()) {
      for (RequestId id = 0; id < kBatch; ++id) {
        const Request& r = probe.request(id);
        if (r.preemptions > 0 && r.state == RequestState::kRunning &&
            readmit_time[static_cast<size_t>(id)] < 0.0) {
          readmit_time[static_cast<size_t>(id)] = probe.now();
        }
        if (r.state == RequestState::kFinished &&
            finish_time[static_cast<size_t>(id)] < 0.0) {
          finish_time[static_cast<size_t>(id)] = probe.now();
        }
      }
    }
    for (RequestId id = 0; id < kBatch; ++id) {
      const double readmit = readmit_time[static_cast<size_t>(id)];
      const double finish = finish_time[static_cast<size_t>(id)];
      if (readmit >= 0.0 && finish > readmit) {
        doomed = id;
        readmitted_at = readmit;
        finished_at = finish;
        break;
      }
    }
  }
  ASSERT_NE(doomed, kNoRequest)
      << "pressure schedule produced no preempt+readmit; PressureConfig drifted";

  Engine engine(PressureConfig());
  submit_batch(engine, doomed, (readmitted_at + finished_at) / 2.0);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 1);
  EXPECT_EQ(engine.metrics().cancelled_requests, 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), kBatch - 1);
  bool found = false;
  for (const RequestRecord& record : engine.metrics().finished()) {
    if (record.id != doomed) {
      continue;
    }
    found = true;
    EXPECT_TRUE(record.cancelled);
    EXPECT_TRUE(record.failed);
    EXPECT_GE(record.preemptions, 1) << "expired before the preempt+readmit it should span";
  }
  EXPECT_TRUE(found);
  engine.kv().CheckConsistency();
}

// Same contract across a swap-out + restore cycle: the offload tier swaps the victim's KV
// to host and restores it later; the heap entry is untouched throughout and still fires.
TEST(DeadlineExpiry, FiresAfterSwapRestore) {
  constexpr int kBatch = 4;
  const auto make_config = [] {
    EngineConfig config = PressureConfig();
    config.offload.enabled = true;
    config.offload.swap_preemption = true;
    config.offload.host_prefix_cache = false;
    config.offload.host_pool_bytes = 1ll << 30;
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
    return config;
  };
  const auto submit_batch = [](Engine& engine, RequestId doomed, double deadline) {
    for (RequestId id = 0; id < kBatch; ++id) {
      Request r = MakeRequest(id, TextPrompt(96), 80, 0.0);
      if (id == doomed) {
        r.deadline = deadline;
      }
      engine.Submit(std::move(r));
    }
  };

  RequestId doomed = kNoRequest;
  double restored_at = -1.0;
  double finished_at = -1.0;
  {
    Engine probe(make_config());
    submit_batch(probe, kNoRequest, -1.0);
    std::vector<bool> was_swapped(kBatch, false);
    std::vector<double> restore_time(kBatch, -1.0);
    std::vector<double> finish_time(kBatch, -1.0);
    while (probe.StepOnce()) {
      for (RequestId id = 0; id < kBatch; ++id) {
        const Request& r = probe.request(id);
        const auto at = static_cast<size_t>(id);
        if (r.swapped_out) {
          was_swapped[at] = true;
        }
        if (was_swapped[at] && !r.swapped_out && r.state == RequestState::kRunning &&
            restore_time[at] < 0.0) {
          restore_time[at] = probe.now();
        }
        if (r.state == RequestState::kFinished && finish_time[at] < 0.0) {
          finish_time[at] = probe.now();
        }
      }
    }
    for (RequestId id = 0; id < kBatch; ++id) {
      const auto at = static_cast<size_t>(id);
      if (restore_time[at] >= 0.0 && finish_time[at] > restore_time[at]) {
        doomed = id;
        restored_at = restore_time[at];
        finished_at = finish_time[at];
        break;
      }
    }
  }
  if (doomed == kNoRequest) {
    GTEST_SKIP() << "offload schedule produced no swap-restore before finish";
  }

  Engine engine(make_config());
  submit_batch(engine, doomed, (restored_at + finished_at) / 2.0);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), kBatch - 1);
  engine.kv().CheckConsistency();
}

// A parked far-future batch must cost nothing per step: the sweep shape from
// micro.deadline_sweep, shrunk. All parked deadlines sit beyond the decode run, so the
// fast path's HasExpired check is the only per-step deadline work; the parked requests
// then mass-expire when the engine jumps toward their arrival time.
TEST(DeadlineExpiry, ParkedBatchExpiresAfterDecodeDrains) {
  constexpr int kParked = 64;
  Engine engine(RoomyConfig());
  engine.Submit(MakeRequest(0, TextPrompt(48), 32, 0.0));
  for (int i = 0; i < kParked; ++i) {
    Request r = MakeRequest(1 + i, TextPrompt(16), 4, /*arrival_time=*/1e9);
    r.deadline = 1e6 + i;  // Far beyond the decode, far before the parked arrival.
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, kParked);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  engine.kv().CheckConsistency();
}

}  // namespace
}  // namespace jenga
