file(REMOVE_RECURSE
  "libjenga_model.a"
)
