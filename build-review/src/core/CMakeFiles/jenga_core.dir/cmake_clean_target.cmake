file(REMOVE_RECURSE
  "libjenga_core.a"
)
