#include "src/baseline/page_scheme.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace jenga {

namespace {

// Internal fragmentation of a request of `tokens` tokens in a group whose allocation
// granularity is `tokens_per_unit` tokens: the unused tail of the last unit.
double TailFragFraction(int64_t tokens, int64_t tokens_per_unit) {
  if (tokens <= 0 || tokens_per_unit <= 1) {
    return 0.0;
  }
  const int64_t allocated = RoundUp(tokens, tokens_per_unit);
  return static_cast<double>(allocated - tokens) / static_cast<double>(allocated);
}

}  // namespace

std::vector<PageSchemeAnalysis> AnalyzePageSchemes(const KvSpec& spec,
                                                   int64_t avg_request_tokens) {
  JENGA_CHECK_GT(avg_request_tokens, 0);
  std::vector<PageSchemeAnalysis> out;

  // GCD: no internal fragmentation, but pages smaller than a layer's natural unit force
  // fallback kernels.
  {
    PageSchemeAnalysis a;
    a.scheme = "GCD";
    a.compatible_page_bytes = spec.GcdPageBytes();
    const bool needs_partition = a.compatible_page_bytes < spec.MaxPageBytes();
    a.kernel_efficiency = needs_partition ? kGcdKernelEfficiency : 1.0;
    a.worst_tokens_per_page = 0;
    a.internal_frag_fraction = 0.0;
    out.push_back(a);
  }

  // MAX: every group's page is padded to the largest page; groups with small per-token sizes
  // must pack many tokens per page to fill it, fragmenting short requests (§4.4: Jamba needs
  // 1344 tokens per self-attention page).
  {
    PageSchemeAnalysis a;
    a.scheme = "MAX";
    a.compatible_page_bytes = spec.MaxPageBytes();
    a.kernel_efficiency = 1.0;
    double worst_frag = 0.0;
    int64_t worst_tokens = 0;
    for (const KvGroupSpec& group : spec.groups) {
      if (group.BytesPerToken() <= 0) {
        continue;  // Per-sequence groups have no per-token granularity.
      }
      const int64_t tokens_per_page =
          std::max<int64_t>(1, a.compatible_page_bytes / group.BytesPerToken());
      worst_tokens = std::max(worst_tokens, tokens_per_page);
      worst_frag = std::max(worst_frag, TailFragFraction(avg_request_tokens, tokens_per_page));
    }
    a.worst_tokens_per_page = worst_tokens;
    a.internal_frag_fraction = worst_frag;
    out.push_back(a);
  }

  // LCM (Jenga): native kernels and native tokens-per-page; internal fragmentation is the
  // unused small pages inside large pages, bounded by one large page per (request, group) and
  // driven to near zero by request-aware allocation (measured in bench_sec43).
  {
    PageSchemeAnalysis a;
    a.scheme = "LCM";
    a.compatible_page_bytes = spec.LcmPageBytes();
    a.kernel_efficiency = 1.0;
    int64_t worst_tokens = 0;
    double worst_frag = 0.0;
    for (const KvGroupSpec& group : spec.groups) {
      if (group.BytesPerToken() <= 0 || group.tokens_per_page <= 0) {
        continue;
      }
      worst_tokens = std::max<int64_t>(worst_tokens, group.tokens_per_page);
      // Upper bound: the request's last large page in this group is half unused on average.
      const int64_t pages_per_large = a.compatible_page_bytes / group.page_bytes;
      const int64_t tokens_per_large = pages_per_large * group.tokens_per_page;
      worst_frag = std::max(worst_frag, TailFragFraction(avg_request_tokens, tokens_per_large));
    }
    a.worst_tokens_per_page = worst_tokens;
    a.internal_frag_fraction = worst_frag;
    out.push_back(a);
  }

  return out;
}

}  // namespace jenga
