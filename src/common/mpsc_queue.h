// Lock-free bounded multi-producer / single-consumer queue.
//
// This is the submission channel between client threads and the engine loop: producers
// enqueue submit/cancel operations from arbitrary threads; the single consumer (the engine
// loop) drains at step boundaries. The algorithm is the classic bounded-array scheme of
// Dmitry Vyukov's MPMC queue, specialized to one consumer:
//
//   - Each cell carries a sequence number. A cell is writable when seq == ticket, readable
//     when seq == ticket + 1; after a read the consumer re-arms it with seq = ticket +
//     capacity. Producers race on a CAS over the tail ticket; the consumer owns the head
//     ticket outright, so dequeue needs no CAS at all.
//   - Capacity is rounded up to a power of two so cell indexing is a mask, and tickets can
//     grow without wrapping hazards (64-bit).
//
// Per-producer FIFO holds: a producer's pushes acquire strictly increasing tickets in
// program order, and the consumer drains tickets in order. Pushes from different producers
// interleave in ticket (CAS-win) order, which is the only total order that exists anyway.
//
// Close() makes all subsequent pushes fail while letting the consumer drain everything that
// was enqueued before — shutdown must not drop accepted work (drain-after-close contract,
// exercised directly by mpsc_queue_test).
//
// The queue never allocates after construction and is TSan-clean (see the tsan preset);
// correctness under real interleavings is the concurrency test tier's job, determinism of
// the serving results is the frontend's (see DESIGN.md §9).

#ifndef JENGA_SRC_COMMON_MPSC_QUEUE_H_
#define JENGA_SRC_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace jenga {

template <typename T>
class MpscQueue {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(static_cast<uint64_t>(i), std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Enqueues from any thread. Returns false when the queue is full or closed; the value is
  // untouched on failure (callers may retry or fall back).
  [[nodiscard]] bool TryPush(T& value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    uint64_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<size_t>(ticket) & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(ticket);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `ticket`; retry with the fresh value.
      } else if (dif < 0) {
        return false;  // Full: the consumer has not re-armed this cell yet.
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Blocking enqueue: spins (with yield) while the queue is full. Returns false only when
  // the queue is closed.
  bool Push(T value) {
    for (;;) {
      if (TryPush(value)) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
  }

  // Dequeues one value. SINGLE CONSUMER ONLY — concurrent callers race on head_.
  [[nodiscard]] std::optional<T> TryPop() {
    const uint64_t ticket = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[static_cast<size_t>(ticket) & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != ticket + 1) return std::nullopt;  // Empty (or a producer mid-write).
    std::optional<T> out(std::move(cell.value));
    cell.seq.store(ticket + capacity_, std::memory_order_release);
    head_.store(ticket + 1, std::memory_order_relaxed);
    return out;
  }

  // Rejects all future pushes; values already enqueued remain poppable.
  void Close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const { return closed_.load(std::memory_order_acquire); }
  [[nodiscard]] size_t capacity() const { return capacity_; }

  // Approximate (racy) size; exact when no producer is mid-push. Consumer/test use.
  [[nodiscard]] size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  // Hot atomics on separate cache lines: producers hammer tail_, the consumer owns head_.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<bool> closed_{false};
  std::vector<Cell> cells_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_MPSC_QUEUE_H_
