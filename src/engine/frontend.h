// Concurrent serving front end: many client threads, one engine loop.
//
// Threading model (DESIGN.md §9):
//   - Client threads call SubmitAsync / CancelAsync from anywhere. Each call enqueues an
//     operation on a lock-free bounded MPSC queue and returns immediately; SubmitAsync hands
//     back a RequestStream the client polls for progress.
//   - The engine thread — spawned by Start(), or the caller's own thread via RunUntilIdle()
//     — is the ONLY thread that touches the Engine, the KvManager, and the allocator stack.
//     It drains the queue at step boundaries (between StepOnce calls, the same points where
//     CancelRequest is documented safe), so the entire deterministic core stays
//     single-threaded; concurrency lives in the queue and in the per-request stream cells.
//   - RequestStream fields are lock-free atomics written by the engine thread and read by
//     clients. There are no locks on the hot path; a condition variable exists only to park
//     the engine thread when there is no work.
//
// Cancellation routes through Engine::CancelRequest (PR 4's machinery). A cancel that
// arrives before its submit has been drained (possible across producers, and trivially when
// a client cancels its own queued submit) is remembered and annihilates the submit when it
// surfaces — the engine never sees the request at all ("cancel-while-queued").

#ifndef JENGA_SRC_ENGINE_FRONTEND_H_
#define JENGA_SRC_ENGINE_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mpsc_queue.h"
#include "src/engine/engine.h"
#include "src/engine/request.h"

namespace jenga {

// Terminal states are >= kFinished; once terminal, a stream never changes again.
enum class StreamPhase : uint8_t {
  kQueued = 0,     // In the MPSC queue or the engine's waiting queue.
  kRunning = 1,    // Scheduled at least once (may be preempted between steps).
  kFinished = 2,   // Completed successfully.
  kCancelled = 3,  // Client cancel or deadline expiry — including cancel-while-queued.
  kFailed = 4,     // Engine-side failure (admission abort, load shed).
  kRejected = 5,   // Never accepted: submitted after Shutdown().
};

[[nodiscard]] inline bool IsTerminal(StreamPhase phase) {
  return phase >= StreamPhase::kFinished;
}

// Per-request progress cell shared between the engine thread (writer) and the submitting
// client (reader). Wall-clock timestamps are seconds since the frontend was constructed;
// -1.0 = not reached yet. `tokens` is monotone except across a preemption-recompute, where
// the engine may legitimately re-generate (the final value is authoritative).
struct RequestStream {
  std::atomic<StreamPhase> phase{StreamPhase::kQueued};
  std::atomic<int64_t> tokens{0};
  std::atomic<double> submit_wall{-1.0};
  std::atomic<double> first_token_wall{-1.0};
  std::atomic<double> finish_wall{-1.0};

  [[nodiscard]] bool Done() const { return IsTerminal(phase.load(std::memory_order_acquire)); }
};

using StreamHandle = std::shared_ptr<RequestStream>;

class ServingFrontend {
 public:
  struct Options {
    // MPSC queue capacity (rounded up to a power of two). SubmitAsync blocks when full;
    // TrySubmitAsync fails instead.
    size_t queue_capacity = 1024;
    // How long the engine thread parks when idle before re-checking the queue; the
    // condition-variable wakeup from producers usually cuts this short.
    int64_t idle_wait_us = 200;
    // Invoked on the engine thread after every StepOnce, with the queue drained — the hook
    // where tests run the AllocatorAuditor against live state. Null = disabled.
    std::function<void(Engine&)> step_observer;
  };

  explicit ServingFrontend(EngineConfig config);
  ServingFrontend(EngineConfig config, Options options);
  ~ServingFrontend();

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  // --- Client API (any thread) ---

  // Enqueues the request; blocks while the queue is full. The returned stream is kRejected
  // immediately if the frontend is shutting down. Request ids must be unique for the
  // lifetime of the frontend (NextRequestId() hands out fresh ones).
  StreamHandle SubmitAsync(Request request);
  // Non-blocking variant: false (and no side effect) when the queue is full.
  [[nodiscard]] bool TrySubmitAsync(Request request, StreamHandle* out);
  // Fleet-layer submit that adopts a caller-provided stream instead of creating one — used
  // both for first placement and for re-routing a harvested request after a replica death
  // (the client keeps polling the same stream across the move). Blocks while the queue is
  // merely full; returns false — with `request` left intact and the stream untouched — once
  // the queue is closed (this frontend shut down or was killed), so the caller can re-route.
  // Sets submit_wall only if the stream has none yet (re-routes keep the original).
  [[nodiscard]] bool SubmitWithStream(Request& request, const StreamHandle& stream);
  enum class TrySubmitResult : uint8_t {
    kAccepted,   // Enqueued; counters bumped.
    kQueueFull,  // Backpressure; `request` left intact, no side effect.
    kClosed,     // Shutdown or killed; `request` left intact, no side effect.
  };
  // Non-blocking SubmitWithStream that distinguishes backpressure from closure.
  [[nodiscard]] TrySubmitResult TrySubmitWithStream(Request& request,
                                                    const StreamHandle& stream);
  // Requests cancellation of `id` (queued or engine-side). Unknown/finished ids are a no-op.
  void CancelAsync(RequestId id);
  // Fresh unique request id (atomic counter).
  [[nodiscard]] RequestId NextRequestId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  // Wall-clock seconds since construction (the streams' time base).
  [[nodiscard]] double WallSeconds() const;

  // --- Engine loop ---

  // Spawns the engine thread. Call at most once.
  void Start();
  // Closes the queue to new submits, drains every accepted operation, runs the engine to
  // completion, and joins the engine thread. Idempotent; also run by the destructor.
  void Shutdown();
  // Inline alternative to Start(): runs the loop on the caller's thread until the queue is
  // empty and the engine has no unfinished work, then returns. Deterministic when the
  // callers enqueued everything beforehand — the unit tests' mode.
  void RunUntilIdle();

  // Spawns `n` client threads running `fn(client_index)` and joins them all. The frontend
  // owns the threads; the engine loop must be running (Start()) or be run concurrently.
  void RunClients(int n, const std::function<void(int)>& fn);

  // --- Failure injection (fleet supervisor) ---

  // Hard-kills the frontend: closes the queue, stops the engine loop at the next step
  // boundary WITHOUT draining queued ops or finishing engine work, and joins the thread.
  // Models a replica death — accepted work is abandoned in place and recoverable via
  // HarvestAbandoned(). Call at most once; must not race Shutdown() (the fleet layer
  // serializes them). After Kill, Shutdown and the destructor are no-ops.
  void Kill();

  // One recoverable unit of work harvested off a killed frontend: the rebuilt request
  // (fresh scheduler state, recompute-from-prompt) plus the client's original stream, which
  // the re-submission adopts so the client keeps polling the same handle.
  struct AbandonedWork {
    Request request;
    StreamHandle stream;
    bool engine_side = false;  // True: was admitted (cancelled off the engine at harvest).
  };

  // Post-Kill only (the engine thread is joined, so this runs single-threaded). Drains the
  // queue's leftover ops — honoring cancel-while-queued annihilation and client cancels
  // that raced the death, which win over re-routing — then cancels every engine-side
  // request through CancelRequest (full reclamation: the dead engine still audits clean)
  // and returns the recoverable work in deterministic order: queued submits in queue
  // order, then engine-side requests in scheduler order (running, then waiting).
  [[nodiscard]] std::vector<AbandonedWork> HarvestAbandoned();

  // --- Introspection (engine thread, or any thread after Shutdown) ---

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const EngineMetrics& metrics() const { return engine_.metrics(); }

  struct Counters {
    int64_t submitted = 0;           // Accepted into the queue.
    int64_t rejected = 0;            // Refused at submit time (shutdown).
    int64_t admitted = 0;            // Reached Engine::Submit.
    int64_t cancelled_queued = 0;    // Annihilated before reaching the engine.
    int64_t finished = 0;            // Terminal kFinished.
    int64_t cancelled = 0;           // Terminal kCancelled (engine-side).
    int64_t failed = 0;              // Terminal kFailed.
    // Kill/harvest ledger (0 unless the frontend was killed). The per-frontend balances
    // become: submitted == admitted + cancelled_queued + harvested_queued, and
    // admitted == finished + cancelled + failed + harvested_live.
    int64_t harvested_queued = 0;    // Harvested out of the op queue (never admitted).
    int64_t harvested_live = 0;      // Cancelled off the engine and harvested.
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Op {
    enum class Kind : uint8_t { kSubmit, kCancel } kind = Kind::kSubmit;
    RequestId id = kNoRequest;
    Request request;         // kSubmit only.
    StreamHandle stream;     // kSubmit only.
  };

  void EngineLoop(bool until_idle);
  // Drains every queued op into the engine; returns the number applied.
  int DrainOps();
  void ApplySubmit(Op& op);
  void ApplyCancel(RequestId id);
  // Publishes engine-side request state into the live streams; retires terminal ones.
  void PublishProgress();
  void IdleWait();
  void WakeConsumer();

  Options options_;
  Engine engine_;
  MpscQueue<Op> queue_;
  std::thread loop_;
  std::chrono::steady_clock::time_point epoch_;

  // Engine-thread-only state. retired_ mirrors the engine's own forever-growing requests_
  // map (same asymptotics) so late cancels for finished requests stay no-ops instead of
  // poisoning pending_cancels_.
  std::unordered_map<RequestId, StreamHandle> live_;
  std::unordered_set<RequestId> pending_cancels_;
  std::unordered_set<RequestId> retired_;

  // Shared.
  std::atomic<RequestId> next_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<bool> killed_{false};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> cancelled_queued_{0};
  std::atomic<int64_t> finished_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> harvested_queued_{0};
  std::atomic<int64_t> harvested_live_{0};

  // Engine-thread parking. consumer_idle_ lets producers skip the mutex when the consumer
  // is busy; the wait uses a timeout so a lost wakeup costs at most idle_wait_us.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> consumer_idle_{false};
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_FRONTEND_H_
