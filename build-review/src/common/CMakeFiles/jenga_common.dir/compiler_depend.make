# Empty compiler generated dependencies file for jenga_common.
# This may be replaced when dependencies are built.
