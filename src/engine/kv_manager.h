// KV-cache manager: maps requests onto the two-level allocator. One class serves both the
// Jenga configuration (per-group allocation, layer-specific policies, out-of-window drops,
// vision-embedding cache) and the PagedAttention-style baselines (a single degenerate group
// covering every layer, full-prefix rules only) — exactly the comparison the paper makes,
// with everything else held equal.

#ifndef JENGA_SRC_ENGINE_KV_MANAGER_H_
#define JENGA_SRC_ENGINE_KV_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/block_hash.h"
#include "src/core/jenga_allocator.h"
#include "src/core/layer_policy.h"
#include "src/engine/request.h"
#include "src/model/kv_spec.h"
#include "src/model/model_config.h"

namespace jenga {

class SwapManager;

// A request's current KV footprint as seen by one manager, for the swap-vs-recompute
// decision. `fingerprint` hashes the per-group chains and block-table shapes so a swap-in can
// verify the round trip restored the exact same state.
struct KvSwapFootprint {
  int64_t tokens = 0;
  int64_t swappable_bytes = 0;       // Resident bytes in swap-eligible groups.
  int64_t resident_bytes = 0;        // Resident bytes in all groups.
  int64_t drop_recompute_bytes = 0;  // Needed bytes of swap-ineligible groups.
  uint64_t fingerprint = 0;
};

// Builds the per-group spec Jenga allocates with (vision-embedding group included when the
// model has a vision encoder and `vision_cache` is set).
[[nodiscard]] KvSpec MakeJengaSpec(const ModelConfig& model, int tokens_per_page,
                                   bool vision_cache);

// Builds the degenerate homogeneous spec of PagedAttention engines: one group whose per-token
// size is the sum over every attention-like layer, covering text and image tokens alike
// (the (T+I)·L·E accounting of §3.2). Mamba layers are excluded — baselines reserve their
// state statically (see StaticMambaReservationBytes). `bytes_per_token_override` lets
// speculative-decoding baselines charge a model's tokens at a larger page size (vLLM-max).
[[nodiscard]] KvSpec MakeHomogeneousSpec(const ModelConfig& model, int tokens_per_page,
                                         int64_t bytes_per_token_override = 0);

// Bytes a homogeneous engine reserves up front for Mamba states (max_num_seqs × state size).
[[nodiscard]] int64_t StaticMambaReservationBytes(const ModelConfig& model, int max_num_seqs);

class KvManager {
 public:
  // Upper bound on KV groups per spec (groups are per layer type: full-prefix attention,
  // sliding window, Mamba, vision embeddings, ...). Lets hot paths use inline arrays.
  static constexpr size_t kMaxGroups = 16;

  struct Options {
    int tokens_per_page = 16;
    bool enable_prefix_caching = true;
    // Jenga semantics: layer-specific policies + dropping of unneeded pages. When false,
    // every group uses full-prefix rules and nothing is dropped mid-request (vLLM v0.6.3).
    bool jenga = true;
    // Needed by the image-cache policies of multimodal models.
    int tokens_per_image = 0;
    // Compute each request's admission inputs (prompt hash chains, modality subsequence
    // streams) once at first admission and reuse them on every re-admission — prompts are
    // immutable, so the results are too. Off = rebuild from scratch each time (the reference
    // behavior the memoized path must match bit for bit).
    bool memoize_admission = true;
    // Empty-page index shards per group allocator (JengaAllocator shards). 1 = the
    // deterministic legacy free lists (the golden oracle); >1 = lock-free claim bitmaps.
    int alloc_shards = 1;
  };

  // `alloc_spec` drives allocation; `accounting_spec` is the true per-group architecture,
  // used for the needed-vs-allocated waste accounting of Fig. 16 and for the decode KV-read
  // estimate, regardless of allocation mode.
  KvManager(KvSpec alloc_spec, KvSpec accounting_spec, int64_t pool_bytes, Options options);

  KvManager(const KvManager&) = delete;
  KvManager& operator=(const KvManager&) = delete;

  // Admission: resolves the longest prefix-cache hit valid across every group (§5.2), takes
  // references on the covering pages, and fast-forwards r.num_computed_tokens. Must be called
  // once per (re-)admission, before AllocateForTokens.
  void OnAdmit(Request& r, Tick now);

  // Ensures KV slots exist for the next `n` tokens of `r` (plus the request's remaining
  // vision embeddings, when a vision group exists). On failure all pages allocated by this
  // call are rolled back and false is returned; the caller preempts.
  [[nodiscard]] bool AllocateForTokens(Request& r, int64_t n, Tick now);

  // Bookkeeping after a step computed tokens of `r` up to r.num_computed_tokens (already
  // advanced by the caller): registers content hashes of completed blocks, snapshots Mamba
  // checkpoints, drops out-of-window pages (Jenga), frees consumed vision embeddings, and
  // refreshes eviction metadata via the layer policies.
  void OnStepComputed(Request& r, Tick now);

  // Releases every page of `r` (finish or preemption). Cached content stays evictable when
  // prefix caching is on. Pass `finished` when the request id retires for good: the
  // allocator then drops its request-affinity free lists (which otherwise leak across
  // millions of requests). Preempted requests keep theirs — they re-admit under the same id
  // and the affinity drives §4.3 placement.
  void Release(Request& r, Tick now, bool finished = false);

  // Conservative admission check: can `tokens` more tokens of `r` be allocated right now,
  // counting free plus evictable capacity?
  [[nodiscard]] bool CanAllocate(const Request& r, int64_t tokens) const;

  // --- Host offload tier (all no-ops / unused when no SwapManager is attached) ---

  // Connects this manager to the offload tier: installs the eviction sink on the allocator
  // (second-chance prefix cache) and enables host-hit promotion in OnAdmit. `manager_index`
  // disambiguates managers sharing one SwapManager (speculative decoding).
  void AttachOffload(SwapManager* offload, int manager_index);

  // Releases pages allocated beyond `r`'s committed-token target. An injected step fault
  // retains the aborted chunk's pages for the retry (allocation is idempotent), so a request
  // preempted inside that retry window still holds uncomputed lookahead pages; they carry no
  // committed KV and must not be part of the swapped/recomputed snapshot. No-op when the
  // block tables already match the committed state.
  void TrimToComputed(const Request& r);

  // Footprint of `r`'s resident pages for the swap-vs-recompute crossover. Must be called
  // before Release (it reads the live block tables).
  [[nodiscard]] KvSwapFootprint GetSwapFootprint(const Request& r) const;

  // Re-admission by swap-in: rebuilds `r`'s block tables for `tokens` computed tokens
  // (droppable groups restore only their needed windows) and replays the hash/checkpoint
  // bookkeeping, check-failing if the restored state's fingerprint differs from
  // `expected_fingerprint`. On allocation failure everything is rolled back and false is
  // returned. Replaces OnAdmit for swapped requests; no budget is consumed.
  [[nodiscard]] bool RestoreFromSwap(Request& r, int64_t tokens, uint64_t expected_fingerprint,
                                     Tick now);

  // Drops allocator affinity state for a request id that retires without a final
  // Release(finished=true) — e.g. admission-failure abort after an earlier preemption left
  // affinity free lists behind. Idempotent.
  void OnRequestRetired(RequestId id);

  // --- Accounting (Fig. 16) ---

  struct MemoryStats {
    int64_t pool_bytes = 0;
    int64_t used_bytes = 0;       // Pages referenced by running requests.
    int64_t needed_bytes = 0;     // What the true architecture needs for those requests.
    int64_t wasted_bytes = 0;     // used − needed + internal fragmentation.
    int64_t cached_bytes = 0;     // Evictable prefix-cache content.
    int64_t internal_frag_bytes = 0;
    int64_t unallocated_bytes = 0;
  };
  [[nodiscard]] MemoryStats GetMemoryStats() const;

  // Needed bytes for one request at its current progress, per the accounting spec.
  [[nodiscard]] int64_t NeededBytesFor(const Request& r) const;
  // KV bytes a decode step must read for `r` (the bandwidth term of the cost model; identical
  // across managers because attention kernels read only what the layer needs).
  [[nodiscard]] int64_t DecodeKvReadBytes(const Request& r) const { return NeededBytesFor(r); }

  [[nodiscard]] const JengaAllocator& allocator() const { return allocator_; }
  // Mutable access for the audit layer (AllocatorAuditor::AttachAllocator); tests only.
  [[nodiscard]] JengaAllocator& allocator_mutable() { return allocator_; }
  [[nodiscard]] const KvSpec& alloc_spec() const { return spec_; }
  [[nodiscard]] int tokens_per_page() const { return options_.tokens_per_page; }
  [[nodiscard]] bool caching_enabled() const { return options_.enable_prefix_caching; }
  [[nodiscard]] bool has_vision_group() const { return vision_group_ >= 0; }
  [[nodiscard]] int64_t total_cache_hit_tokens() const { return total_cache_hit_tokens_; }
  [[nodiscard]] int num_tracked_requests() const { return static_cast<int>(requests_.size()); }

  void CheckConsistency() const;

 private:
  struct GroupState {
    std::vector<SmallPageId> pages;  // Block table (attention/image groups); [state] for Mamba.
    // Incremental hash chain over the group's token stream.
    BlockHash chain = 0;
    int64_t chain_tokens = 0;
    int64_t hashed_blocks = 0;
    // Blocks below this cursor were released (out-of-window / consumed vision embeddings).
    int64_t drop_cursor = 0;
    // Group-local token count driving the next DropUnneededPages pass.
    int64_t drop_tokens_hint = 0;
    // Mamba: checkpoints snapshotted so far.
    int64_t checkpoints_done = 0;
    // Deferred last-access refresh (deferred-refresh groups only): tick of the owner's most
    // recent computed step. While a page is used its last-access is unobservable, so
    // OnStepComputed records one tick per group instead of writing O(pages) metadata and the
    // value is applied where a page can next become evictable — release, drop, or consume.
    Tick last_touch = 0;
  };
  struct RequestKv {
    std::vector<GroupState> groups;
    // Modality subsequences accumulated as tokens are computed (shared by same-scope groups;
    // text_tokens is only maintained when a text-scoped group exists).
    std::vector<int32_t> image_tokens;
    std::vector<int32_t> text_tokens;
    int64_t computed_tokens = 0;
    // Cached NeededBytesFor value for the Fig. 16 accounting.
    int64_t needed_bytes = 0;
  };

  // Immutable per-request admission inputs, computed once (prompts never change) and reused
  // across re-admissions: the per-group prompt hash chains of OnAdmit's §5.2 scan plus the
  // prompt's modality subsequence streams. `prompt_text_tokens` is maintained only when a
  // text-scoped group exists, mirroring RequestKv::text_tokens. Entries are dropped when the
  // request id retires (Release(finished) / OnRequestRetired); preempted requests keep theirs.
  struct AdmissionMemo {
    std::vector<std::vector<BlockHash>> group_hashes;
    std::vector<int32_t> prompt_image_tokens;
    std::vector<int32_t> prompt_text_tokens;
  };

  [[nodiscard]] RequestKv& StateOf(const Request& r);
  [[nodiscard]] AdmissionMemo BuildAdmissionMemo(const Request& r) const;
  // Fused, early-exiting replacement for BuildValidBitmaps + LongestCommonValidPrefix: scans
  // boundaries top-down and resolves block hits lazily, returning the identical boundary while
  // touching O(blocks) allocator lookups instead of materializing every per-group bitmap.
  // With JENGA_CHECK_ADMISSION set in the environment, every call is cross-checked against the
  // bitmap reference.
  [[nodiscard]] int64_t ResolveHitBoundary(const Request& r,
                                           const std::vector<std::vector<BlockHash>>& group_hashes,
                                           bool include_host) const;
  // Appends all_tokens[from, to) to the modality subsequence streams. The prompt portion is
  // bulk-copied from the memo (sliced by the O(1) image-prefix counts) when one is available;
  // generated tokens fall back to the per-token kind scan.
  void ExtendModalityStreams(const Request& r, RequestKv& state, const AdmissionMemo* memo,
                             int64_t from, int64_t to);
  [[nodiscard]] uint64_t GroupSalt(int g) const { return GroupChainSalt(g); }
  // Target block-table size for group `g` once `prefix_tokens` tokens are computed.
  [[nodiscard]] int64_t TargetPages(const Request& r, const KvGroupSpec& group,
                                    int64_t prefix_tokens) const;
  // Per-group validity bitmaps over global block boundaries, as the hit scan sees them. With
  // `include_host` a block also counts as cached when it is host-resident in the offload tier
  // (the longest common valid prefix of that relaxation is the promotion target).
  [[nodiscard]] std::vector<std::vector<bool>> BuildValidBitmaps(
      const Request& r, const std::vector<std::vector<BlockHash>>& group_hashes,
      bool include_host) const;
  // Second-chance pass over the admission hash chains: pulls host-resident pages back onto
  // the GPU where they can extend the hit prefix (runs before the hit scan).
  void PromoteHostHits(const Request& r, const std::vector<std::vector<BlockHash>>& group_hashes,
                       Tick now);
  // Re-materializes one host-resident page of group `g` on the GPU so the regular hit logic
  // finds it. Returns true when the block is now a GPU cache hit.
  [[nodiscard]] bool TryPromoteHostBlock(int g, BlockHash hash, int64_t prefix_length,
                                         RequestId rid, Tick now);
  [[nodiscard]] uint64_t StateFingerprint(const RequestKv& state) const;
  void RegisterHashes(Request& r, RequestKv& state, Tick now);
  void SnapshotMambaCheckpoints(Request& r, RequestKv& state, int g, Tick now);
  void DropUnneededPages(RequestKv& state, int g, Tick now);
  // Applies a deferred-refresh group's pending last_touch to the blocks the eager per-step
  // refresh would have marked (capped at computed tokens — the vision group allocates ahead).
  // Must run before any of the group's pages can become evictable.
  void ApplyDeferredTouch(const Request& r, RequestKv& state, int g);
  void FreeConsumedVisionPages(const Request& r, RequestKv& state, Tick now);
  [[nodiscard]] RequestPages ViewOf(const Request& r, const RequestKv& state, int g) const;

  KvSpec spec_;
  KvSpec accounting_spec_;
  Options options_;
  JengaAllocator allocator_;
  std::vector<std::unique_ptr<LayerPolicy>> policies_;             // Per alloc-spec group.
  std::vector<std::unique_ptr<LayerPolicy>> accounting_policies_;  // Per accounting group.
  // Per alloc-spec group: true when the per-step eviction-metadata refresh is deferred to
  // GroupState::last_touch. Requires the policy's refresh to cover every resident page —
  // unconditionally (full prefix, image cache) or because out-of-range pages are dropped as
  // they fall out, which only happens in Jenga mode (sliding window, pyramid).
  std::vector<bool> defer_refresh_;
  int vision_group_ = -1;
  bool has_text_scope_ = false;
  std::unordered_map<RequestId, RequestKv> requests_;
  // Populated lazily when memoize_admission is on; survives preemption (requests_ does not).
  std::unordered_map<RequestId, AdmissionMemo> admission_memos_;
  int64_t total_cache_hit_tokens_ = 0;
  SwapManager* offload_ = nullptr;
  int manager_index_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_KV_MANAGER_H_
