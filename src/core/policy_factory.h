// Maps a KV group's kind to its layer policy (§5.3's customizations).

#ifndef JENGA_SRC_CORE_POLICY_FACTORY_H_
#define JENGA_SRC_CORE_POLICY_FACTORY_H_

#include <memory>

#include "src/core/layer_policy.h"
#include "src/model/kv_spec.h"

namespace jenga {

// Checkpoint spacing for Mamba-state prefix caching (§5.3).
inline constexpr int kMambaCheckpointInterval = 512;
// Attention-sink count for the PyramidKV policy's retained set.
inline constexpr int kPyramidNumSinks = 4;

// Creates the policy matching `spec.kind`. `tokens_per_image` is required for image groups
// (cross-attention KV and the vision-embedding cache) and ignored otherwise.
[[nodiscard]] std::unique_ptr<LayerPolicy> MakeLayerPolicy(const KvGroupSpec& spec,
                                                           int tokens_per_image = 0);

}  // namespace jenga

#endif  // JENGA_SRC_CORE_POLICY_FACTORY_H_
