// Differential tests for SmallPageAllocator::AllocateN: the bulk path must produce page ids,
// victim order, and post-failure state identical to n consecutive Allocate calls with an
// explicit reverse rollback — the loop it replaced on the admission hot path. Both twins run
// under the AllocatorAuditor so any shadow-model violation fails the test immediately.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/core/jenga_allocator.h"
#include "src/core/small_page_allocator.h"
#include "src/model/kv_spec.h"

namespace jenga {
namespace {

// Same two-group Figure 6 shape as the auditor tests: 256 B image pages and 384 B text pages
// under a 768 B LCM page, so cross-group reclaim participates in victim selection.
KvSpec TwoGroupSpec() {
  KvSpec spec;
  KvGroupSpec image;
  image.name = "image";
  image.kind = GroupKind::kCrossAttention;
  image.scope = GroupScope::kImageTokens;
  image.num_layers = 2;
  image.bytes_per_token_per_layer = 128;
  image.tokens_per_page = 1;
  image.page_bytes = 256;
  KvGroupSpec text;
  text.name = "text";
  text.kind = GroupKind::kFullAttention;
  text.num_layers = 3;
  text.bytes_per_token_per_layer = 128;
  text.tokens_per_page = 1;
  text.page_bytes = 384;
  spec.groups = {image, text};
  return spec;
}

void ExpectGreen(const AllocatorAuditor& auditor, const char* who) {
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << who << ": " << violations.front();
}

// The reference semantics AllocateN promises: n consecutive Allocate calls, releasing in
// reverse (keep_cached=false) and restoring *out on the first failure.
bool LoopAllocate(SmallPageAllocator& group, RequestId request, int64_t n, Tick now,
                  std::vector<SmallPageId>* out) {
  const size_t base = out->size();
  for (int64_t i = 0; i < n; ++i) {
    const std::optional<SmallPageId> page = group.Allocate(request, now);
    if (!page.has_value()) {
      for (size_t j = out->size(); j > base; --j) {
        group.Release((*out)[j - 1], /*keep_cached=*/false);
      }
      out->resize(base);
      return false;
    }
    out->push_back(*page);
  }
  return true;
}

// Seeds a mid-life state: cached pages in both groups (evictor-resident, revivable by hash)
// plus a held run, so AllocateN has to walk the same victim order as the loop.
void SeedState(JengaAllocator& alloc, std::vector<SmallPageId>* held) {
  for (int i = 0; i < 6; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(/*request=*/1, /*now=*/i);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    alloc.group(0).Release(p, /*keep_cached=*/true);
  }
  for (int i = 0; i < 4; ++i) {
    const SmallPageId p = *alloc.group(1).Allocate(/*request=*/2, /*now=*/10 + i);
    alloc.group(1).SetContentHash(p, 0x200 + static_cast<BlockHash>(i));
    alloc.group(1).Release(p, /*keep_cached=*/true);
  }
  for (int i = 0; i < 2; ++i) {
    held->push_back(*alloc.group(1).Allocate(/*request=*/3, /*now=*/20 + i));
  }
}

// Drains a group one page at a time; the resulting id sequence fingerprints the entire
// internal state (free lists, evictor order, cached contents).
std::vector<SmallPageId> DrainFingerprint(SmallPageAllocator& group, Tick now) {
  std::vector<SmallPageId> ids;
  while (const std::optional<SmallPageId> p = group.Allocate(/*request=*/99, now)) {
    ids.push_back(*p);
  }
  return ids;
}

TEST(AllocateN, MatchesLoopOnSuccess) {
  JengaAllocator bulk_alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 8);
  JengaAllocator loop_alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 8);
  AllocatorAuditor bulk_audit, loop_audit;
  bulk_audit.AttachAllocator(&bulk_alloc);
  loop_audit.AttachAllocator(&loop_alloc);

  std::vector<SmallPageId> held_bulk, held_loop;
  SeedState(bulk_alloc, &held_bulk);
  SeedState(loop_alloc, &held_loop);
  ASSERT_EQ(held_bulk, held_loop);

  // Bulk run large enough to consume free pages, revive nothing, and evict cached victims.
  std::vector<SmallPageId> bulk_pages{kNoSmallPage};  // Pre-existing tail must be preserved.
  std::vector<SmallPageId> loop_pages{kNoSmallPage};
  ASSERT_TRUE(bulk_alloc.group(1).AllocateN(/*request=*/7, 7, /*now=*/30, &bulk_pages));
  ASSERT_TRUE(LoopAllocate(loop_alloc.group(1), /*request=*/7, 7, /*now=*/30, &loop_pages));
  EXPECT_EQ(bulk_pages, loop_pages);
  ExpectGreen(bulk_audit, "bulk");
  ExpectGreen(loop_audit, "loop");

  // Identical internal state afterwards: both twins hand out the same pages until empty.
  EXPECT_EQ(DrainFingerprint(bulk_alloc.group(0), /*now=*/40),
            DrainFingerprint(loop_alloc.group(0), /*now=*/40));
  bulk_alloc.group(1).CheckConsistency();
  loop_alloc.group(1).CheckConsistency();
}

TEST(AllocateN, RollsBackExactlyLikeLoopOnExhaustion) {
  JengaAllocator bulk_alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 4);
  JengaAllocator loop_alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 4);
  AllocatorAuditor bulk_audit, loop_audit;
  bulk_audit.AttachAllocator(&bulk_alloc);
  loop_audit.AttachAllocator(&loop_alloc);

  std::vector<SmallPageId> held_bulk, held_loop;
  SeedState(bulk_alloc, &held_bulk);
  SeedState(loop_alloc, &held_loop);

  // Far beyond capacity: both must fail mid-bulk, roll back, and leave *out untouched.
  std::vector<SmallPageId> bulk_pages{kNoSmallPage};
  std::vector<SmallPageId> loop_pages{kNoSmallPage};
  EXPECT_FALSE(bulk_alloc.group(1).AllocateN(/*request=*/7, 64, /*now=*/30, &bulk_pages));
  EXPECT_FALSE(LoopAllocate(loop_alloc.group(1), /*request=*/7, 64, /*now=*/30, &loop_pages));
  EXPECT_EQ(bulk_pages, std::vector<SmallPageId>{kNoSmallPage});
  EXPECT_EQ(bulk_pages, loop_pages);
  ExpectGreen(bulk_audit, "bulk");
  ExpectGreen(loop_audit, "loop");

  // Rollback released the partial run (keep_cached=false) identically on both sides.
  const auto bulk_stats = bulk_alloc.group(1).GetFreeListStats();
  const auto loop_stats = loop_alloc.group(1).GetFreeListStats();
  EXPECT_EQ(bulk_stats.any_refs, loop_stats.any_refs);
  EXPECT_EQ(bulk_stats.by_request_refs, loop_stats.by_request_refs);
  EXPECT_EQ(bulk_stats.tracked_requests, loop_stats.tracked_requests);
  EXPECT_EQ(DrainFingerprint(bulk_alloc.group(1), /*now=*/40),
            DrainFingerprint(loop_alloc.group(1), /*now=*/40));
  EXPECT_EQ(DrainFingerprint(bulk_alloc.group(0), /*now=*/50),
            DrainFingerprint(loop_alloc.group(0), /*now=*/50));
  bulk_alloc.group(1).CheckConsistency();
}

TEST(AllocateN, ZeroAndRepeatedCallsAreNoOpsAndComposable) {
  JengaAllocator alloc(TwoGroupSpec(), 768 * 4);
  std::vector<SmallPageId> pages;
  EXPECT_TRUE(alloc.group(0).AllocateN(/*request=*/1, 0, /*now=*/0, &pages));
  EXPECT_TRUE(pages.empty());
  // Two bulk calls behave like one larger bulk call.
  EXPECT_TRUE(alloc.group(0).AllocateN(/*request=*/1, 3, /*now=*/1, &pages));
  EXPECT_TRUE(alloc.group(0).AllocateN(/*request=*/1, 2, /*now=*/2, &pages));
  EXPECT_EQ(pages.size(), 5u);
  JengaAllocator one_call(TwoGroupSpec(), 768 * 4);
  std::vector<SmallPageId> reference;
  // Two now-ticks can't be replayed in one call; replay the same two-call shape unheld.
  EXPECT_TRUE(one_call.group(0).AllocateN(/*request=*/1, 3, /*now=*/1, &reference));
  EXPECT_TRUE(one_call.group(0).AllocateN(/*request=*/1, 2, /*now=*/2, &reference));
  EXPECT_EQ(pages, reference);
  alloc.group(0).CheckConsistency();
}

}  // namespace
}  // namespace jenga
