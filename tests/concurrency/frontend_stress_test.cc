// Seeded multi-thread stress harness: N producer threads submit, cancel, and stream
// completions against a live engine under memory pressure (small pool → preemptions), while
// a step observer runs the AllocatorAuditor against every reachable allocator state. Runs
// with both the legacy shards=1 free lists and the sharded claim bitmaps, and under the tsan
// preset via scripts/check.sh. Seed overridable with JENGA_STRESS_SEED.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/common/random.h"
#include "src/engine/frontend.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

uint64_t StressSeed() {
  const char* env = std::getenv("JENGA_STRESS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 42;
}

EngineConfig PressureConfig(int alloc_shards) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.alloc_shards = alloc_shards;
  // Small pool: the producers' combined working set forces preemption/recompute churn.
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  return config;
}

void RunStress(int producers, int per_producer, int alloc_shards) {
  AllocatorAuditor auditor;
  std::atomic<int64_t> audits{0};
  ServingFrontend::Options options;
  options.queue_capacity = 64;
  options.step_observer = [&](Engine& engine) {
    // Every reachable state must satisfy the allocator invariants; audit a sample of steps
    // (every 64th) to keep the harness fast, plus implicitly the final state below.
    static thread_local int64_t step = 0;  // Engine thread only.
    if ((step++ & 63) != 0) {
      return;
    }
    auditor.AttachAllocator(&engine.kv().allocator_mutable());
    const auto violations = auditor.Audit();
    auditor.DetachAll();
    ASSERT_TRUE(violations.empty()) << violations.front();
    audits.fetch_add(1, std::memory_order_relaxed);
  };
  ServingFrontend frontend(PressureConfig(alloc_shards), options);
  frontend.Start();

  const uint64_t seed = StressSeed();
  std::atomic<int64_t> terminal{0};
  frontend.RunClients(producers, [&](int client) {
    Rng rng(seed + static_cast<uint64_t>(client) * 7919);
    std::vector<StreamHandle> streams;
    std::vector<RequestId> ids;
    for (int i = 0; i < per_producer; ++i) {
      const RequestId id = frontend.NextRequestId();
      Request r = MakeRequest(id, TextPrompt(static_cast<int>(rng.UniformInt(16, 128)),
                                             100 + client * 1000 + i),
                              rng.UniformInt(4, 32), 0.0);
      if (rng.Bernoulli(0.1)) {
        r.deadline = rng.UniformDouble() * 0.5;  // Some expire mid-flight.
      }
      StreamHandle stream = frontend.SubmitAsync(std::move(r));
      if (stream->phase.load() == StreamPhase::kRejected) {
        continue;  // Only possible during shutdown; not in this harness.
      }
      streams.push_back(stream);
      ids.push_back(id);
      if (rng.Bernoulli(0.25)) {
        // Cancel a random in-flight request — possibly the one just submitted, which the
        // engine may not have drained yet (cancel-while-queued).
        frontend.CancelAsync(ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))]);
      }
      if (rng.Bernoulli(0.5)) {
        // Closed-loop flavor: wait this one out before submitting more.
        while (!stream->Done()) {
          std::this_thread::yield();
        }
      }
    }
    for (const StreamHandle& stream : streams) {
      while (!stream->Done()) {
        std::this_thread::yield();
      }
      terminal.fetch_add(1, std::memory_order_relaxed);
    }
  });
  frontend.Shutdown();

  // Every accepted stream reached a terminal state and the books balance.
  const auto c = frontend.counters();
  EXPECT_EQ(terminal.load(), c.submitted);
  EXPECT_EQ(c.rejected, 0);
  EXPECT_EQ(c.submitted, c.admitted + c.cancelled_queued);
  EXPECT_EQ(c.admitted, c.finished + c.cancelled + c.failed);
  EXPECT_GT(c.finished, 0);
  EXPECT_GT(audits.load(), 0);

  // Final quiescent state: auditor green, allocator self-consistent, pool fully reclaimed
  // modulo the prefix cache (cached pages are legal residue).
  auditor.AttachAllocator(&frontend.engine().kv().allocator_mutable());
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << violations.front();
  auditor.DetachAll();
}

TEST(FrontendStressTest, EightProducersLegacyAllocator) {
  RunStress(/*producers=*/8, /*per_producer=*/24, /*alloc_shards=*/1);
}

TEST(FrontendStressTest, EightProducersShardedAllocator) {
  RunStress(/*producers=*/8, /*per_producer=*/24, /*alloc_shards=*/4);
}

TEST(FrontendStressTest, TwoProducersShardedSecondSeed) {
  const char* env = std::getenv("JENGA_STRESS_SEED");
  if (env == nullptr) {
    setenv("JENGA_STRESS_SEED", "1337", /*overwrite=*/0);
  }
  RunStress(/*producers=*/2, /*per_producer=*/16, /*alloc_shards=*/4);
  if (env == nullptr) {
    unsetenv("JENGA_STRESS_SEED");
  }
}

}  // namespace
}  // namespace jenga
