file(REMOVE_RECURSE
  "CMakeFiles/jenga_baseline.dir/page_scheme.cc.o"
  "CMakeFiles/jenga_baseline.dir/page_scheme.cc.o.d"
  "CMakeFiles/jenga_baseline.dir/smartspec.cc.o"
  "CMakeFiles/jenga_baseline.dir/smartspec.cc.o.d"
  "libjenga_baseline.a"
  "libjenga_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
