# Empty dependencies file for custom_layer_policy.
# This may be replaced when dependencies are built.
