// Second-level allocator: one per KV group. Carves small pages of the group's page size out
// of large pages obtained from the LCM allocator, with request-aware placement (§4.3) and the
// five-step allocation algorithm of §5.4:
//
//   1. an empty small page already associated with the requesting request,
//   2. a fresh large page (the provider may satisfy this by evicting a whole evictable
//      large page anywhere in the system — step 3),
//   4. any empty small page, regardless of association,
//   5. evicting this group's LRU evictable small page.
//
// The allocator also maintains the group's prefix-cache index (block hash → resident page)
// and implements GroupCacheOps so the layer policies can adjust eviction priorities.
//
// Page metadata lives in a dense slab indexed by LargePageId (large-page ids are pool
// indices), so Meta()/Entry() are array lookups rather than hash probes — every AddRef/
// Release/SetContentHash on the per-token path is O(1) with no hashing.

#ifndef JENGA_SRC_CORE_SMALL_PAGE_ALLOCATOR_H_
#define JENGA_SRC_CORE_SMALL_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/audit_events.h"
#include "src/core/evictor.h"
#include "src/core/layer_policy.h"
#include "src/core/lcm_allocator.h"
#include "src/core/shard_claim.h"
#include "src/core/types.h"
#include "src/model/kv_spec.h"

namespace jenga {

// How a group allocator obtains large pages. Implemented by JengaAllocator, which first tries
// the LCM free list and then falls back to evicting the globally-LRU evictable large page.
class LargePageProvider {
 public:
  virtual ~LargePageProvider() = default;
  [[nodiscard]] virtual std::optional<LargePageId> AcquireLargePage(int group_index) = 0;
  // Called when `large` (owned by `group_index`) transitions to "whole-page evictable":
  // no used small pages and at least one evictable one. Lazy — the provider revalidates
  // candidacy and timestamp at eviction time.
  virtual void OnReclaimCandidate(int group_index, LargePageId large, Tick timestamp) = 0;
};

class SmallPageAllocator final : public GroupCacheOps {
 public:
  // `shards` selects the empty-page bookkeeping for steps 1/4 of the allocation algorithm:
  //   1 (default) — the legacy epoch-validated FreeRef lists. Fully deterministic and
  //     bit-identical to every release before sharding existed; this mode is the oracle the
  //     fig13–fig19 goldens pin.
  //   >1 — a ShardedClaimIndex of per-large atomic bitmap words partitioned across `shards`.
  //     Same invariants (checked by the AllocatorAuditor and CheckConsistency), different —
  //     and concurrency-ready — placement order. See DESIGN.md §9.
  SmallPageAllocator(int group_index, KvGroupSpec spec, LcmAllocator* lcm,
                     LargePageProvider* provider, int shards = 1);

  SmallPageAllocator(const SmallPageAllocator&) = delete;
  SmallPageAllocator& operator=(const SmallPageAllocator&) = delete;

  // Allocates one small page for `request` via the five-step algorithm; the returned page is
  // used (ref count 1) with no cached content. nullopt when the group is truly out of memory.
  [[nodiscard]] std::optional<SmallPageId> Allocate(RequestId request, Tick now);

  // Bulk variant: appends `n` pages to `*out` with page ids, victim order, and audit events
  // identical to `n` consecutive Allocate calls. All-or-nothing — on exhaustion every page
  // this call took is released again (keep_cached=false, reverse order), `*out` is restored,
  // and false is returned. The single rollback path spares callers from tracking partial
  // progress per group.
  [[nodiscard]] bool AllocateN(RequestId request, int64_t n, Tick now,
                               std::vector<SmallPageId>* out);

  // Takes an additional reference on a resident cached page (prefix-cache hit). The page may
  // currently be evictable (revived) or used (shared with another request).
  void AddRef(SmallPageId page);

  // Drops one reference. When the count reaches zero the page becomes evictable if
  // `keep_cached` and it holds indexed-or-indexable content, and empty otherwise. Fully-empty
  // large pages are returned to the LCM allocator immediately.
  void Release(SmallPageId page, bool keep_cached);

  // Registers the content hash of a fully-computed block for future prefix-cache hits.
  void SetContentHash(SmallPageId page, BlockHash hash);

  // Resident page (used or evictable) holding `hash`, if any.
  [[nodiscard]] std::optional<SmallPageId> LookupCached(BlockHash hash) const;

  // GroupCacheOps (called by layer policies):
  void UpdateLastAccess(SmallPageId page, Tick now) override;
  void SetPrefixLength(SmallPageId page, int64_t prefix_length) override;

  // Installs an observer for cache-eviction events (Evictor victims in Allocate step 5 and
  // whole-large-page reclaims). nullptr (the default) restores destroy-on-evict. Release with
  // keep_cached=false is NOT an eviction — that content was declared obsolete by its owner.
  void set_eviction_sink(CacheEvictionSink* sink) { eviction_sink_ = sink; }

  // Installs an audit observer on this group and its evictor (nullptr detaches). Costs one
  // null test per transition when detached; never changes allocation behavior.
  void set_audit_sink(AuditSink* sink) {
    audit_ = sink;
    evictor_.set_audit_sink(sink, group_index_);
  }

  // Installs a prefix-cache index-membership observer (cluster residency summaries); nullptr
  // (the default) detaches. Events track cache_index_'s key set exactly; see
  // CacheResidencySink. Never changes allocation behavior.
  void set_residency_sink(CacheResidencySink* sink) { residency_sink_ = sink; }

  // Drops the request-affinity free list of a finished request. Affinity state is otherwise
  // only pruned lazily (on pop exhaustion), so long-lived servers must call this when a
  // request id retires for good; preempted requests keep their entry for re-admission.
  void ForgetRequest(RequestId request);

  // Resizes the dense metadata slab after the LCM pool grew or shrank (elastic governor).
  // Shrink requires every removed large page to be non-resident in this group (the caller
  // drains them first); stale FreeRefs into removed pages are filtered lazily by the same
  // residency/epoch checks that already guard releases. Sharded mode (shards > 1) has a
  // fixed claim-index partition, so resize is gated to shards == 1 by JengaAllocator.
  void OnPoolResized(int32_t new_num_larges);

  // --- Whole-large-page eviction support (§5.4 step 3, driven by the provider) ---

  [[nodiscard]] bool IsReclaimCandidate(LargePageId large) const;
  // Max last-access among the page's evictable slots; only valid for reclaim candidates.
  [[nodiscard]] Tick ReclaimTimestamp(LargePageId large) const;
  // Evicts every cached slot and returns the large page to the LCM allocator.
  void ReclaimLargePage(LargePageId large);

  // --- Introspection ---

  [[nodiscard]] const KvGroupSpec& spec() const { return spec_; }
  [[nodiscard]] int group_index() const { return group_index_; }
  [[nodiscard]] int pages_per_large() const { return pages_per_large_; }
  [[nodiscard]] int64_t page_bytes() const { return spec_.page_bytes; }
  [[nodiscard]] int shards() const { return claims_ != nullptr ? claims_->shards() : 1; }

  [[nodiscard]] PageState state(SmallPageId page) const;
  [[nodiscard]] RequestId assoc(SmallPageId page) const;
  [[nodiscard]] Tick last_access(SmallPageId page) const;
  [[nodiscard]] int64_t prefix_length(SmallPageId page) const;
  [[nodiscard]] int ref_count(SmallPageId page) const;

  struct Stats {
    int64_t large_pages_held = 0;
    int64_t used_pages = 0;
    int64_t evictable_pages = 0;
    int64_t empty_pages = 0;  // Internal fragmentation inside held large pages.
    int64_t used_bytes = 0;
    int64_t evictable_bytes = 0;
    int64_t empty_bytes = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  // Free-ref list sizes including stale entries; compaction keeps them O(empty_pages).
  struct FreeListStats {
    int64_t any_refs = 0;
    int64_t by_request_refs = 0;
    int64_t tracked_requests = 0;
  };
  [[nodiscard]] FreeListStats GetFreeListStats() const;

  // Verifies all internal invariants (counts, index consistency, evictor membership);
  // test-only, O(pages).
  void CheckConsistency() const;

 private:
  friend class AllocatorAuditor;

  struct SlotMeta {
    PageState state = PageState::kEmpty;
    RequestId assoc = kNoRequest;
    int32_t ref_count = 0;
    Tick last_access = 0;
    int64_t prefix_length = 0;
    uint64_t epoch = 0;
    bool has_hash = false;
    BlockHash hash = 0;
  };

  struct LargeEntry {
    std::vector<SlotMeta> slots;  // Sized on first acquisition; capacity reused thereafter.
    int32_t used_count = 0;
    int32_t evictable_count = 0;
    bool resident = false;
    [[nodiscard]] int32_t empty_count() const {
      return static_cast<int32_t>(slots.size()) - used_count - evictable_count;
    }
  };

  // An entry in the lazy free lists; valid only while the slot's epoch is unchanged.
  struct FreeRef {
    SmallPageId page = kNoSmallPage;
    uint64_t epoch = 0;
  };

  [[nodiscard]] LargePageId LargeOf(SmallPageId page) const {
    return static_cast<LargePageId>(page / pages_per_large_);
  }
  [[nodiscard]] int SlotOf(SmallPageId page) const {
    return static_cast<int>(page % pages_per_large_);
  }
  [[nodiscard]] bool IsResident(LargePageId large) const {
    return large >= 0 && static_cast<size_t>(large) < larges_.size() &&
           larges_[static_cast<size_t>(large)].resident;
  }
  [[nodiscard]] SlotMeta& Meta(SmallPageId page);
  [[nodiscard]] const SlotMeta& Meta(SmallPageId page) const;
  [[nodiscard]] LargeEntry& Entry(LargePageId large);
  [[nodiscard]] const LargeEntry& Entry(LargePageId large) const;

  // Pops a validated empty page associated with `request`, or any empty page. In sharded
  // mode PopAnyFree scans the claim index (the request id doubles as the shard hint) and
  // PopRequestFree additionally claims the popped page's bit.
  [[nodiscard]] std::optional<SmallPageId> PopRequestFree(RequestId request);
  [[nodiscard]] std::optional<SmallPageId> PopAnyFree(RequestId request);
  [[nodiscard]] bool IsValidEmpty(const FreeRef& ref) const;
  // Drops stale refs once a list outgrows the live empty-page population; relative order of
  // valid refs is preserved, so the pop sequence — and allocation placement — is unchanged.
  void MaybeCompactFreeLists();

  // empty_by_request_ entry for `request`, inserting if absent, through the one-entry
  // association cache: burst releases (a finished request freeing its whole page table) and
  // burst allocations hit the same key back to back, so the repeated hash lookup collapses
  // to one pointer compare. unordered_map mapped references are stable under insert and
  // rehash, so the cached pointer stays valid until the entry itself is erased — every
  // erase site must call InvalidateRefsCacheFor (or drop the cache wholesale).
  [[nodiscard]] std::vector<FreeRef>& RefsFor(RequestId request) {
    if (request != refs_cache_key_ || refs_cache_ == nullptr) {
      refs_cache_key_ = request;
      refs_cache_ = &empty_by_request_[request];
    }
    return *refs_cache_;
  }
  void InvalidateRefsCacheFor(RequestId request) {
    if (request == refs_cache_key_) {
      refs_cache_key_ = kNoRequest;
      refs_cache_ = nullptr;
    }
  }

  // empty → used for `request`.
  void ClaimEmpty(SmallPageId page, RequestId request, Tick now);
  // evictable/used(ref 0) → empty; may return the large page to the LCM allocator.
  void TransitionToEmpty(SmallPageId page);
  void UnregisterHash(SmallPageId page, SlotMeta& meta);
  void NotifyCandidateIfEligible(LargePageId large);
  void ReleaseLarge(LargePageId large, LargeEntry& entry);

  // Announces an evictable page's cached content to the sink just before it is destroyed.
  void NotifyEviction(SmallPageId page, const SlotMeta& meta) const;

  int group_index_;
  KvGroupSpec spec_;
  LcmAllocator* lcm_;
  LargePageProvider* provider_;
  CacheEvictionSink* eviction_sink_ = nullptr;
  CacheResidencySink* residency_sink_ = nullptr;
  AuditSink* audit_ = nullptr;
  int pages_per_large_ = 0;

  // Dense slab over the whole pool; larges_[id].resident marks the pages this group holds.
  std::vector<LargeEntry> larges_;
  std::unordered_map<RequestId, std::vector<FreeRef>> empty_by_request_;
  // One-entry cache over empty_by_request_ (see RefsFor); kNoRequest/nullptr when invalid.
  RequestId refs_cache_key_ = kNoRequest;
  std::vector<FreeRef>* refs_cache_ = nullptr;
  std::vector<FreeRef> empty_any_;
  // Sharded mode only (shards > 1); nullptr means the legacy empty_any_ list is in charge.
  std::unique_ptr<ShardedClaimIndex> claims_;
  Evictor evictor_;
  std::unordered_map<BlockHash, SmallPageId> cache_index_;

  uint64_t next_epoch_ = 1;
  int64_t resident_larges_ = 0;
  int64_t used_count_ = 0;
  int64_t evictable_count_ = 0;
  int64_t empty_count_ = 0;
  int64_t by_request_refs_ = 0;  // Total FreeRefs across empty_by_request_, stale included.
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_SMALL_PAGE_ALLOCATOR_H_
