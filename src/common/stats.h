// Lightweight descriptive statistics used by the metrics layer and the benchmark harnesses
// (means, percentiles, simple time-series accumulation).

#ifndef JENGA_SRC_COMMON_STATS_H_
#define JENGA_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jenga {

// Accumulates scalar samples and answers summary queries. Percentile queries sort a copy of
// the samples; callers on hot paths should batch queries after accumulation.
class Summary {
 public:
  void Add(double value);

  [[nodiscard]] int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double Sum() const;
  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;
  [[nodiscard]] double Stddev() const;
  // Linear-interpolated percentile; `p` in [0, 100].
  [[nodiscard]] double Percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

// A (time, value) series, e.g. decode batch size per step or bytes used per step. Supports
// resampling onto a fixed number of buckets for compact textual plots.
class TimeSeries {
 public:
  void Add(double time, double value);

  [[nodiscard]] size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double MeanValue() const;
  [[nodiscard]] double MaxValue() const;

  struct Point {
    double time = 0.0;
    double value = 0.0;
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  // Averages the series into `buckets` equal-width time bins over [0, max_time]; empty bins
  // carry the previous bin's value (step-function semantics).
  [[nodiscard]] std::vector<double> Resample(int buckets) const;

 private:
  std::vector<Point> points_;
};

// Renders `series` as a one-line unicode sparkline (for bench output readability).
[[nodiscard]] std::string Sparkline(const std::vector<double>& series);

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_STATS_H_
