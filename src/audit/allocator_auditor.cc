#include "src/audit/allocator_auditor.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace jenga {

namespace {
// Event-time violations stop accumulating past this point; a broken run would otherwise
// buffer one error per subsequent event.
constexpr size_t kMaxEventErrors = 64;
}  // namespace

// Forwards every allocator-side event into the auditor, tagged with the allocator index so
// several attached allocators (speculative decoding) cannot alias each other's groups.
struct AllocatorAuditor::Tap final : AuditSink {
  AllocatorAuditor* owner = nullptr;
  size_t index = 0;

  void OnLargeAcquired(int group, LargePageId large, RequestId request) override {
    owner->HandleLargeAcquired(index, group, large, request);
  }
  void OnLargeReleased(int group, LargePageId large) override {
    owner->HandleLargeReleased(index, group, large);
  }
  void OnPageClaimed(int group, SmallPageId page, RequestId request) override {
    owner->HandlePageClaimed(index, group, page, request);
  }
  void OnPageRevived(int group, SmallPageId page) override {
    owner->HandlePageRevived(index, group, page);
  }
  void OnPageCached(int group, SmallPageId page, BlockHash /*hash*/) override {
    owner->HandlePageCached(index, group, page);
  }
  void OnPageEmptied(int group, SmallPageId page) override {
    owner->HandlePageEmptied(index, group, page);
  }
  void OnPageEvicted(int group, SmallPageId page) override {
    owner->HandlePageEvicted(index, group, page);
  }
  void OnRequestForgotten(int /*group*/, RequestId /*request*/) override {
    owner->events_observed_ += 1;
  }
  void OnBulkAllocate(int group, RequestId request, int64_t count) override {
    owner->HandleBulkAllocate(index, group, request, count);
  }
  void OnEvictorInsert(int group, SmallPageId page, Tick last_access,
                       int64_t prefix_length) override {
    owner->HandleEvictorInsert(index, group, page, last_access, prefix_length);
  }
  void OnEvictorRemove(int group, SmallPageId page) override {
    owner->HandleEvictorRemove(index, group, page);
  }
  void OnEvictorRekey(int group, SmallPageId page, Tick last_access,
                      int64_t prefix_length) override {
    owner->HandleEvictorRekey(index, group, page, last_access, prefix_length);
  }
  void OnEvictorPop(int group, SmallPageId page) override {
    owner->HandleEvictorPop(index, group, page);
  }
  void OnReclaimPushed(int /*group*/, LargePageId /*large*/, Tick /*timestamp*/) override {
    owner->events_observed_ += 1;
  }
  void OnLargeReclaimed(int /*group*/, LargePageId /*large*/) override {
    owner->events_observed_ += 1;
  }
  void OnPoolResized(int32_t new_num_pages) override {
    owner->HandlePoolResized(index, new_num_pages);
  }
};

struct AllocatorAuditor::HostTap final : AuditSink {
  AllocatorAuditor* owner = nullptr;

  void OnHostSetStored(RequestId id, int64_t bytes) override {
    owner->HandleHostSetStored(id, bytes);
  }
  void OnHostSetRemoved(RequestId id, int64_t bytes, bool evicted) override {
    owner->HandleHostSetRemoved(id, bytes, evicted);
  }
  void OnHostPageStored(int manager, int group, BlockHash hash, int64_t bytes) override {
    owner->HandleHostPageStored(manager, group, hash, bytes);
  }
  void OnHostPageRemoved(int manager, int group, BlockHash hash, int64_t bytes,
                         bool evicted) override {
    owner->HandleHostPageRemoved(manager, group, hash, bytes, evicted);
  }
};

AllocatorAuditor::AllocatorAuditor() = default;

AllocatorAuditor::~AllocatorAuditor() { DetachAll(); }

void AllocatorAuditor::AttachAllocator(JengaAllocator* alloc) {
  auto state = std::make_unique<AllocState>();
  state->alloc = alloc;
  state->tap = std::make_unique<Tap>();
  state->tap->owner = this;
  state->tap->index = allocs_.size();
  state->groups.resize(static_cast<size_t>(alloc->num_groups()));
  SeedAllocatorShadow(state.get());
  alloc->SetAuditSink(state->tap.get());
  allocs_.push_back(std::move(state));
}

void AllocatorAuditor::AttachSwapManager(SwapManager* swap) {
  host_.swap = swap;
  host_.tap = std::make_unique<HostTap>();
  host_.tap->owner = this;
  SeedHostShadow();
  swap->SetAuditSink(host_.tap.get());
}

void AllocatorAuditor::DetachAll() {
  for (const auto& state : allocs_) {
    state->alloc->SetAuditSink(nullptr);
  }
  allocs_.clear();
  if (host_.swap != nullptr) {
    host_.swap->SetAuditSink(nullptr);
  }
  host_ = HostShadow{};
  event_errors_.clear();
}

void AllocatorAuditor::SeedAllocatorShadow(AllocState* state) {
  const JengaAllocator& alloc = *state->alloc;
  for (int g = 0; g < alloc.num_groups(); ++g) {
    const SmallPageAllocator& grp = alloc.group(g);
    ShadowGroup& shadow = state->groups[static_cast<size_t>(g)];
    for (size_t index = 0; index < grp.larges_.size(); ++index) {
      const SmallPageAllocator::LargeEntry& entry = grp.larges_[index];
      if (!entry.resident) {
        continue;
      }
      const LargePageId large = static_cast<LargePageId>(index);
      shadow.resident.insert(large);
      const SmallPageId base = static_cast<SmallPageId>(large) * grp.pages_per_large_;
      for (int slot = 0; slot < grp.pages_per_large_; ++slot) {
        const SmallPageAllocator::SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
        shadow.slots[base + slot] = ShadowSlot{meta.state, meta.assoc};
      }
    }
    for (const auto& [page, key] : grp.evictor_.keys_) {
      shadow.evictor[page] = {key.last_access, -key.neg_prefix_length};
    }
  }
}

void AllocatorAuditor::SeedHostShadow() {
  const HostPool& pool = host_.swap->host_;
  host_.sets.clear();
  host_.pages.clear();
  host_.bytes = 0;
  for (const auto& [id, entry] : pool.sets_) {
    host_.sets[id] = entry.set.bytes;
    host_.bytes += entry.set.bytes;
  }
  for (const auto& [key, entry] : pool.pages_) {
    host_.pages[{key.manager, key.group, key.hash}] = entry.page.bytes;
    host_.bytes += entry.page.bytes;
  }
}

void AllocatorAuditor::EventError(std::string message) {
  if (event_errors_.size() < kMaxEventErrors) {
    event_errors_.push_back(std::move(message));
  }
}

AllocatorAuditor::ShadowGroup& AllocatorAuditor::Shadow(size_t a, int g) {
  return allocs_[a]->groups[static_cast<size_t>(g)];
}

AllocatorAuditor::ShadowSlot* AllocatorAuditor::FindSlot(size_t a, int g, SmallPageId page,
                                                         const char* event) {
  ShadowGroup& shadow = Shadow(a, g);
  const auto it = shadow.slots.find(page);
  if (it == shadow.slots.end()) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] " << event << " on page " << page
       << " that is not in any live large page";
    EventError(os.str());
    return nullptr;
  }
  return &it->second;
}

void AllocatorAuditor::HandleLargeAcquired(size_t a, int g, LargePageId large,
                                           RequestId request) {
  events_observed_ += 1;
  ShadowGroup& shadow = Shadow(a, g);
  if (!shadow.resident.insert(large).second) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] large page " << large << " acquired twice";
    EventError(os.str());
    return;
  }
  const int ppl = allocs_[a]->alloc->group(g).pages_per_large();
  const SmallPageId base = static_cast<SmallPageId>(large) * ppl;
  for (int slot = 0; slot < ppl; ++slot) {
    shadow.slots[base + slot] = ShadowSlot{PageState::kEmpty, request};
  }
}

void AllocatorAuditor::HandleLargeReleased(size_t a, int g, LargePageId large) {
  events_observed_ += 1;
  ShadowGroup& shadow = Shadow(a, g);
  if (shadow.resident.erase(large) == 0) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] released large page " << large
       << " that was not resident";
    EventError(os.str());
    return;
  }
  const int ppl = allocs_[a]->alloc->group(g).pages_per_large();
  const SmallPageId base = static_cast<SmallPageId>(large) * ppl;
  for (int slot = 0; slot < ppl; ++slot) {
    const auto it = shadow.slots.find(base + slot);
    if (it == shadow.slots.end()) {
      continue;
    }
    if (it->second.state != PageState::kEmpty) {
      std::ostringstream os;
      os << "[alloc" << a << "/group" << g << "] large page " << large
         << " released while page " << (base + slot) << " is "
         << PageStateName(it->second.state);
      EventError(os.str());
    }
    shadow.slots.erase(it);
  }
}

void AllocatorAuditor::HandlePageClaimed(size_t a, int g, SmallPageId page, RequestId request) {
  events_observed_ += 1;
  ShadowSlot* slot = FindSlot(a, g, page, "claim");
  if (slot == nullptr) {
    return;
  }
  if (slot->state != PageState::kEmpty) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] page " << page << " claimed while "
       << PageStateName(slot->state);
    EventError(os.str());
  }
  slot->state = PageState::kUsed;
  slot->assoc = request;
}

void AllocatorAuditor::HandleBulkAllocate(size_t a, int g, RequestId request, int64_t count) {
  events_observed_ += 1;
  if (count <= 0) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] bulk allocate of " << count << " pages";
    EventError(os.str());
    return;
  }
  // Every page of the bulk was announced through the per-page events first; the shadow must
  // therefore already show at least `count` used pages held by this request in the group.
  const ShadowGroup& shadow = allocs_[a]->groups[static_cast<size_t>(g)];
  int64_t held = 0;
  for (const auto& [page, slot] : shadow.slots) {
    if (slot.state == PageState::kUsed && slot.assoc == request) {
      ++held;
    }
  }
  if (held < count) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] bulk allocate reported " << count
       << " pages for request " << request << " but the shadow shows only " << held
       << " used pages held by it";
    EventError(os.str());
  }
}

void AllocatorAuditor::HandlePageRevived(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  ShadowSlot* slot = FindSlot(a, g, page, "revive");
  if (slot == nullptr) {
    return;
  }
  if (slot->state != PageState::kEvictable) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] page " << page << " revived while "
       << PageStateName(slot->state);
    EventError(os.str());
  }
  slot->state = PageState::kUsed;
}

void AllocatorAuditor::HandlePageCached(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  ShadowSlot* slot = FindSlot(a, g, page, "cache");
  if (slot == nullptr) {
    return;
  }
  if (slot->state != PageState::kUsed) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] page " << page << " cached while "
       << PageStateName(slot->state);
    EventError(os.str());
  }
  slot->state = PageState::kEvictable;
}

void AllocatorAuditor::HandlePageEmptied(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  ShadowSlot* slot = FindSlot(a, g, page, "empty");
  if (slot == nullptr) {
    return;
  }
  if (slot->state == PageState::kEmpty) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] page " << page << " emptied twice";
    EventError(os.str());
  }
  slot->state = PageState::kEmpty;
}

void AllocatorAuditor::HandlePageEvicted(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  ShadowSlot* slot = FindSlot(a, g, page, "evict");
  if (slot == nullptr) {
    return;
  }
  if (slot->state != PageState::kEvictable) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] page " << page << " evicted while "
       << PageStateName(slot->state);
    EventError(os.str());
  }
  slot->state = PageState::kEmpty;
}

void AllocatorAuditor::HandleEvictorInsert(size_t a, int g, SmallPageId page, Tick last_access,
                                           int64_t prefix_length) {
  events_observed_ += 1;
  ShadowGroup& shadow = Shadow(a, g);
  if (!shadow.evictor.emplace(page, std::make_pair(last_access, prefix_length)).second) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] evictor double-insert of page " << page;
    EventError(os.str());
  }
}

void AllocatorAuditor::HandleEvictorRemove(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  if (Shadow(a, g).evictor.erase(page) == 0) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] evictor remove of absent page " << page;
    EventError(os.str());
  }
}

void AllocatorAuditor::HandleEvictorRekey(size_t a, int g, SmallPageId page, Tick last_access,
                                          int64_t prefix_length) {
  events_observed_ += 1;
  ShadowGroup& shadow = Shadow(a, g);
  const auto it = shadow.evictor.find(page);
  if (it == shadow.evictor.end()) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] evictor rekey of absent page " << page;
    EventError(os.str());
    return;
  }
  it->second = {last_access, prefix_length};
}

void AllocatorAuditor::HandleEvictorPop(size_t a, int g, SmallPageId page) {
  events_observed_ += 1;
  if (Shadow(a, g).evictor.erase(page) == 0) {
    std::ostringstream os;
    os << "[alloc" << a << "/group" << g << "] evictor pop of absent page " << page;
    EventError(os.str());
  }
}

void AllocatorAuditor::HandlePoolResized(size_t a, int32_t new_num_pages) {
  events_observed_ += 1;
  // The resize contract: every removed page was free, so nothing resident may sit at or
  // beyond the new extent. The shadow needs no re-basing — resident sets shrank through the
  // usual release events during the drain — but a survivor here means the allocator removed
  // a live page out from under a group.
  for (size_t g = 0; g < allocs_[a]->groups.size(); ++g) {
    for (const LargePageId large : allocs_[a]->groups[g].resident) {
      if (large >= new_num_pages) {
        std::ostringstream os;
        os << "[alloc" << a << "/group" << g << "] pool resized to " << new_num_pages
           << " pages but large page " << large << " is still resident";
        EventError(os.str());
      }
    }
  }
}

void AllocatorAuditor::HandleHostSetStored(RequestId id, int64_t bytes) {
  events_observed_ += 1;
  if (!host_.sets.emplace(id, bytes).second) {
    std::ostringstream os;
    os << "[host] swap set " << id << " stored while already resident";
    EventError(os.str());
    return;
  }
  host_.bytes += bytes;
}

void AllocatorAuditor::HandleHostSetRemoved(RequestId id, int64_t bytes, bool /*evicted*/) {
  events_observed_ += 1;
  const auto it = host_.sets.find(id);
  if (it == host_.sets.end() || it->second != bytes) {
    std::ostringstream os;
    os << "[host] swap set " << id << " removed (" << bytes << "B) but shadow holds "
       << (it == host_.sets.end() ? -1 : it->second) << "B";
    EventError(os.str());
    return;
  }
  host_.bytes -= bytes;
  host_.sets.erase(it);
}

void AllocatorAuditor::HandleHostPageStored(int manager, int group, BlockHash hash,
                                            int64_t bytes) {
  events_observed_ += 1;
  host_.pages_stored += 1;
  if (!host_.pages.emplace(std::make_tuple(manager, group, hash), bytes).second) {
    std::ostringstream os;
    os << "[host] cache page (" << manager << "," << group << "," << hash
       << ") stored while already resident";
    EventError(os.str());
    return;
  }
  host_.bytes += bytes;
}

void AllocatorAuditor::HandleHostPageRemoved(int manager, int group, BlockHash hash,
                                             int64_t bytes, bool evicted) {
  events_observed_ += 1;
  if (!evicted) {
    host_.pages_removed_explicit += 1;
  }
  const auto it = host_.pages.find(std::make_tuple(manager, group, hash));
  if (it == host_.pages.end() || it->second != bytes) {
    std::ostringstream os;
    os << "[host] cache page (" << manager << "," << group << "," << hash << ") removed ("
       << bytes << "B) but shadow holds "
       << (it == host_.pages.end() ? -1 : it->second) << "B";
    EventError(os.str());
    return;
  }
  host_.bytes -= bytes;
  host_.pages.erase(it);
}

// --- Re-derivation -----------------------------------------------------------------------

namespace {
void Fail(std::vector<std::string>* out, const std::string& message) {
  out->push_back(message);
}
}  // namespace

void AllocatorAuditor::AuditGroup(size_t a, int g, std::vector<std::string>* out) const {
  const AllocState& state = *allocs_[a];
  const SmallPageAllocator& grp = state.alloc->group(g);
  const ShadowGroup& shadow = state.groups[static_cast<size_t>(g)];
  std::ostringstream tag_stream;
  tag_stream << "[alloc" << a << "/group" << g << "] ";
  const std::string tag = tag_stream.str();

  int64_t resident = 0;
  int64_t used = 0;
  int64_t evictable = 0;
  int64_t empty = 0;
  std::unordered_map<SmallPageId, Evictor::Key> ground_truth;

  for (size_t index = 0; index < grp.larges_.size(); ++index) {
    const SmallPageAllocator::LargeEntry& entry = grp.larges_[index];
    const LargePageId large = static_cast<LargePageId>(index);
    if (!entry.resident) {
      if (shadow.resident.contains(large)) {
        Fail(out, tag + "shadow believes large page " + std::to_string(large) +
                      " is resident but it is not");
      }
      continue;
    }
    resident += 1;
    if (grp.lcm_->owner(large) != g) {
      Fail(out, tag + "resident large page " + std::to_string(large) +
                    " is owned by group " + std::to_string(grp.lcm_->owner(large)) +
                    " in the LCM allocator");
    }
    if (static_cast<int>(entry.slots.size()) != grp.pages_per_large_) {
      Fail(out, tag + "large page " + std::to_string(large) + " has " +
                    std::to_string(entry.slots.size()) + " slots, expected " +
                    std::to_string(grp.pages_per_large_));
      continue;
    }
    if (!shadow.resident.contains(large)) {
      Fail(out, tag + "large page " + std::to_string(large) + " resident but not in shadow");
    }
    int32_t entry_used = 0;
    int32_t entry_evictable = 0;
    const SmallPageId base = static_cast<SmallPageId>(large) * grp.pages_per_large_;
    for (int slot = 0; slot < grp.pages_per_large_; ++slot) {
      const SmallPageAllocator::SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
      const SmallPageId page = base + slot;
      switch (meta.state) {
        case PageState::kUsed:
          entry_used += 1;
          if (meta.ref_count <= 0) {
            Fail(out, tag + "used page " + std::to_string(page) + " has ref_count " +
                          std::to_string(meta.ref_count));
          }
          if (grp.evictor_.Contains(page)) {
            Fail(out, tag + "used page " + std::to_string(page) + " present in evictor");
          }
          break;
        case PageState::kEvictable: {
          entry_evictable += 1;
          if (meta.ref_count != 0) {
            Fail(out, tag + "evictable page " + std::to_string(page) + " has ref_count " +
                          std::to_string(meta.ref_count));
          }
          if (!meta.has_hash) {
            Fail(out, tag + "evictable page " + std::to_string(page) + " has no content hash");
          } else {
            const auto hit = grp.cache_index_.find(meta.hash);
            if (hit == grp.cache_index_.end() || hit->second != page) {
              Fail(out, tag + "evictable page " + std::to_string(page) +
                            " not reachable through the cache index");
            }
          }
          ground_truth.emplace(page,
                               Evictor::Key{meta.last_access, -meta.prefix_length, page});
          break;
        }
        case PageState::kEmpty:
          if (meta.ref_count != 0 || meta.has_hash) {
            Fail(out, tag + "empty page " + std::to_string(page) +
                          " carries refs or cached content");
          }
          if (grp.evictor_.Contains(page)) {
            Fail(out, tag + "empty page " + std::to_string(page) + " present in evictor");
          }
          break;
      }
      const auto sh = shadow.slots.find(page);
      if (sh == shadow.slots.end()) {
        Fail(out, tag + "page " + std::to_string(page) + " missing from shadow");
      } else {
        if (sh->second.state != meta.state) {
          Fail(out, tag + "page " + std::to_string(page) + " is " +
                        PageStateName(meta.state) + " but shadow says " +
                        PageStateName(sh->second.state));
        }
        if (sh->second.assoc != meta.assoc) {
          Fail(out, tag + "page " + std::to_string(page) + " assoc " +
                        std::to_string(meta.assoc) + " but shadow says " +
                        std::to_string(sh->second.assoc));
        }
      }
    }
    if (entry_used != entry.used_count || entry_evictable != entry.evictable_count) {
      Fail(out, tag + "large page " + std::to_string(large) + " counts (" +
                    std::to_string(entry.used_count) + "u/" +
                    std::to_string(entry.evictable_count) + "e) != recount (" +
                    std::to_string(entry_used) + "u/" + std::to_string(entry_evictable) + "e)");
    }
    if (entry_used + entry_evictable == 0) {
      Fail(out, tag + "fully-empty large page " + std::to_string(large) +
                    " was not returned to the LCM allocator");
    }
    used += entry_used;
    evictable += entry_evictable;
    empty += entry.empty_count();
  }

  if (resident != grp.resident_larges_ || used != grp.used_count_ ||
      evictable != grp.evictable_count_ || empty != grp.empty_count_) {
    Fail(out, tag + "group totals (held/used/evictable/empty) " +
                  std::to_string(grp.resident_larges_) + "/" + std::to_string(grp.used_count_) +
                  "/" + std::to_string(grp.evictable_count_) + "/" +
                  std::to_string(grp.empty_count_) + " != recount " + std::to_string(resident) +
                  "/" + std::to_string(used) + "/" + std::to_string(evictable) + "/" +
                  std::to_string(empty));
  }
  if (shadow.resident.size() != static_cast<size_t>(resident)) {
    Fail(out, tag + "shadow tracks " + std::to_string(shadow.resident.size()) +
                  " resident large pages, actual " + std::to_string(resident));
  }
  if (shadow.slots.size() !=
      static_cast<size_t>(resident) * static_cast<size_t>(grp.pages_per_large_)) {
    Fail(out, tag + "shadow tracks " + std::to_string(shadow.slots.size()) +
                  " slots, expected " +
                  std::to_string(resident * grp.pages_per_large_));
  }

  // Evictor: authoritative keys == ground truth == event shadow; lazy heap covers all keys.
  if (grp.evictor_.keys_.size() != ground_truth.size()) {
    Fail(out, tag + "evictor holds " + std::to_string(grp.evictor_.keys_.size()) +
                  " keys, ground truth " + std::to_string(ground_truth.size()));
  }
  for (const auto& [page, key] : ground_truth) {
    const auto it = grp.evictor_.keys_.find(page);
    if (it == grp.evictor_.keys_.end()) {
      Fail(out, tag + "evictable page " + std::to_string(page) + " missing from evictor");
      continue;
    }
    if (it->second != key) {
      Fail(out, tag + "evictor key for page " + std::to_string(page) + " is (" +
                    std::to_string(it->second.last_access) + "," +
                    std::to_string(-it->second.neg_prefix_length) + "), slot metadata says (" +
                    std::to_string(key.last_access) + "," +
                    std::to_string(-key.neg_prefix_length) + ")");
    }
    const auto sh = shadow.evictor.find(page);
    if (sh == shadow.evictor.end()) {
      Fail(out, tag + "evictor page " + std::to_string(page) + " missing from shadow");
    } else if (sh->second.first != key.last_access ||
               sh->second.second != -key.neg_prefix_length) {
      Fail(out, tag + "shadow evictor key for page " + std::to_string(page) + " is (" +
                    std::to_string(sh->second.first) + "," +
                    std::to_string(sh->second.second) + "), expected (" +
                    std::to_string(key.last_access) + "," +
                    std::to_string(-key.neg_prefix_length) + ")");
    }
  }
  if (shadow.evictor.size() != ground_truth.size()) {
    Fail(out, tag + "shadow evictor holds " + std::to_string(shadow.evictor.size()) +
                  " pages, ground truth " + std::to_string(ground_truth.size()));
  }
  if (!std::is_heap(grp.evictor_.heap_.begin(), grp.evictor_.heap_.end(),
                    std::greater<Evictor::Key>{})) {
    Fail(out, tag + "evictor heap violates the heap property");
  }
  if (grp.evictor_.heap_.size() < grp.evictor_.keys_.size()) {
    Fail(out, tag + "evictor heap has fewer entries than live keys");
  }
  std::unordered_set<SmallPageId> covered;
  for (const Evictor::Key& key : grp.evictor_.heap_) {
    const auto it = grp.evictor_.keys_.find(key.page);
    if (it != grp.evictor_.keys_.end() && it->second == key) {
      covered.insert(key.page);
    }
  }
  for (const auto& [page, key] : grp.evictor_.keys_) {
    if (!covered.contains(page)) {
      Fail(out, tag + "live evictor key for page " + std::to_string(page) +
                    " has no matching heap entry (lost tombstone)");
    }
  }

  // Cache index: every entry resolves to a resident page carrying that hash.
  for (const auto& [hash, page] : grp.cache_index_) {
    const LargePageId large = static_cast<LargePageId>(page / grp.pages_per_large_);
    if (!grp.IsResident(large)) {
      Fail(out, tag + "cache index maps hash " + std::to_string(hash) +
                    " to non-resident page " + std::to_string(page));
      continue;
    }
    const SmallPageAllocator::SlotMeta& meta =
        grp.larges_[static_cast<size_t>(large)]
            .slots[static_cast<size_t>(page % grp.pages_per_large_)];
    if (meta.state == PageState::kEmpty || !meta.has_hash || meta.hash != hash) {
      Fail(out, tag + "cache index entry for hash " + std::to_string(hash) +
                    " points at page " + std::to_string(page) +
                    " which does not carry it");
    }
  }

  // Affinity free lists: every live empty slot has exactly one valid ref in the any-list
  // (legacy mode) or exactly its claim bit set (sharded mode); per-request refs only point
  // at empty slots associated with that request.
  const bool sharded = grp.claims_ != nullptr;
  std::unordered_map<SmallPageId, int> any_cover;
  if (sharded && !grp.empty_any_.empty()) {
    Fail(out, tag + "sharded group still holds entries in the any-free list");
  }
  for (const SmallPageAllocator::FreeRef& ref : grp.empty_any_) {
    if (grp.IsValidEmpty(ref)) {
      any_cover[ref.page] += 1;
    }
  }
  int64_t by_request = 0;
  for (const auto& [request, refs] : grp.empty_by_request_) {
    by_request += static_cast<int64_t>(refs.size());
    for (const SmallPageAllocator::FreeRef& ref : refs) {
      if (!grp.IsValidEmpty(ref)) {
        continue;
      }
      const SmallPageAllocator::SlotMeta& meta =
          grp.larges_[static_cast<size_t>(ref.page / grp.pages_per_large_)]
              .slots[static_cast<size_t>(ref.page % grp.pages_per_large_)];
      if (meta.assoc != request) {
        Fail(out, tag + "affinity list of request " + std::to_string(request) +
                      " holds page " + std::to_string(ref.page) + " associated with request " +
                      std::to_string(meta.assoc));
      }
    }
  }
  if (by_request != grp.by_request_refs_) {
    Fail(out, tag + "by-request ref count " + std::to_string(grp.by_request_refs_) +
                  " != recount " + std::to_string(by_request));
  }
  int64_t empty_seen = 0;
  for (const auto& [page, cover] : any_cover) {
    if (cover != 1) {
      Fail(out, tag + "empty page " + std::to_string(page) + " has " + std::to_string(cover) +
                    " valid refs in the any-free list (expected 1)");
    }
  }
  for (size_t index = 0; index < grp.larges_.size(); ++index) {
    const SmallPageAllocator::LargeEntry& entry = grp.larges_[index];
    if (!entry.resident) {
      continue;
    }
    const SmallPageId base = static_cast<SmallPageId>(index) * grp.pages_per_large_;
    for (int slot = 0; slot < grp.pages_per_large_; ++slot) {
      const bool is_empty =
          entry.slots[static_cast<size_t>(slot)].state == PageState::kEmpty;
      if (is_empty) {
        empty_seen += 1;
      }
      if (sharded) {
        const bool bit = grp.claims_->IsClaimable(static_cast<LargePageId>(index), slot);
        if (bit != is_empty) {
          Fail(out, tag + "claim bit for page " + std::to_string(base + slot) +
                        (is_empty ? " missing (empty slot unclaimable)"
                                  : " set on a non-empty slot"));
        }
      } else if (is_empty && !any_cover.contains(base + slot)) {
        Fail(out, tag + "empty page " + std::to_string(base + slot) +
                      " unreachable from the any-free list");
      }
    }
  }
  if (sharded) {
    if (grp.claims_->ClaimableApprox() != empty_seen) {
      Fail(out, tag + "claim index population " +
                    std::to_string(grp.claims_->ClaimableApprox()) + " != " +
                    std::to_string(empty_seen) + " empty pages");
    }
  } else if (empty_seen != static_cast<int64_t>(any_cover.size())) {
    Fail(out, tag + "any-free list covers " + std::to_string(any_cover.size()) +
                  " pages, but " + std::to_string(empty_seen) + " empty pages exist");
  }
}

void AllocatorAuditor::AuditReclaimHeap(size_t a, std::vector<std::string>* out) const {
  const JengaAllocator& alloc = *allocs_[a]->alloc;
  const std::string tag = "[alloc" + std::to_string(a) + "] ";
  if (!std::is_heap(alloc.reclaim_heap_.begin(), alloc.reclaim_heap_.end())) {
    Fail(out, tag + "reclaim heap violates the heap property");
  }
  for (int g = 0; g < alloc.num_groups(); ++g) {
    const SmallPageAllocator& grp = alloc.group(g);
    for (size_t index = 0; index < grp.larges_.size(); ++index) {
      const LargePageId large = static_cast<LargePageId>(index);
      if (!grp.IsReclaimCandidate(large)) {
        continue;
      }
      const Tick current = grp.ReclaimTimestamp(large);
      bool represented = false;
      for (const JengaAllocator::ReclaimEntry& entry : alloc.reclaim_heap_) {
        if (entry.group != g || entry.large != large) {
          continue;
        }
        represented = true;
        if (entry.timestamp > current) {
          Fail(out, tag + "reclaim entry for group " + std::to_string(g) + " large " +
                        std::to_string(large) + " has timestamp " +
                        std::to_string(entry.timestamp) + " newer than the current " +
                        std::to_string(current));
        }
      }
      if (!represented) {
        Fail(out, tag + "whole-evictable large page " + std::to_string(large) + " of group " +
                      std::to_string(g) + " is not represented on the reclaim heap");
      }
    }
  }
}

void AllocatorAuditor::AuditAllocator(size_t a, std::vector<std::string>* out) const {
  const JengaAllocator& alloc = *allocs_[a]->alloc;
  const std::string tag = "[alloc" + std::to_string(a) + "] ";

  // Each allocated LCM page must be resident in exactly its owning group's slab — and only
  // there ("every small page maps into exactly one live large page of its group").
  int64_t held = 0;
  for (LargePageId page = 0; page < alloc.lcm_.num_pages(); ++page) {
    const int owner = alloc.lcm_.owner(page);
    for (int g = 0; g < alloc.num_groups(); ++g) {
      const bool resident =
          alloc.group(g).larges_[static_cast<size_t>(page)].resident;
      if (resident && owner != g) {
        Fail(out, tag + "large page " + std::to_string(page) + " resident in group " +
                      std::to_string(g) + " but LCM owner is " + std::to_string(owner));
      }
      if (!resident && owner == g) {
        Fail(out, tag + "large page " + std::to_string(page) + " owned by group " +
                      std::to_string(g) + " but not resident in its slab");
      }
    }
    if (owner >= 0) {
      held += 1;
    }
  }
  if (held != alloc.lcm_.num_allocated()) {
    Fail(out, tag + "LCM owner table counts " + std::to_string(held) +
                  " allocated pages, allocator reports " +
                  std::to_string(alloc.lcm_.num_allocated()));
  }

  const JengaAllocator::MemoryBreakdown breakdown = alloc.GetBreakdown();
  if (breakdown.allocated_bytes !=
      breakdown.used_bytes + breakdown.evictable_bytes + breakdown.empty_bytes) {
    Fail(out, tag + "byte conservation violated: allocated " +
                  std::to_string(breakdown.allocated_bytes) + " != used " +
                  std::to_string(breakdown.used_bytes) + " + evictable " +
                  std::to_string(breakdown.evictable_bytes) + " + empty " +
                  std::to_string(breakdown.empty_bytes));
  }

  for (int g = 0; g < alloc.num_groups(); ++g) {
    AuditGroup(a, g, out);
  }
  AuditReclaimHeap(a, out);
}

void AllocatorAuditor::AuditHost(std::vector<std::string>* out) const {
  if (host_.swap == nullptr) {
    return;
  }
  const std::string tag = "[host] ";
  const HostPool& pool = host_.swap->host_;

  int64_t bytes = 0;
  for (const auto& [id, entry] : pool.sets_) {
    bytes += entry.set.bytes;
    const auto it = host_.sets.find(id);
    if (it == host_.sets.end() || it->second != entry.set.bytes) {
      Fail(out, tag + "swap set " + std::to_string(id) + " (" +
                    std::to_string(entry.set.bytes) + "B) not mirrored in shadow");
    }
    const auto ref = pool.lru_.find(entry.seq);
    if (ref == pool.lru_.end() || !ref->second.is_set || ref->second.id != id) {
      Fail(out, tag + "swap set " + std::to_string(id) + " has a dangling LRU link");
    }
  }
  for (const auto& [key, entry] : pool.pages_) {
    bytes += entry.page.bytes;
    const auto it = host_.pages.find(std::make_tuple(key.manager, key.group, key.hash));
    if (it == host_.pages.end() || it->second != entry.page.bytes) {
      Fail(out, tag + "cache page (" + std::to_string(key.manager) + "," +
                    std::to_string(key.group) + "," + std::to_string(key.hash) +
                    ") not mirrored in shadow");
    }
    const auto ref = pool.lru_.find(entry.seq);
    if (ref == pool.lru_.end() || ref->second.is_set || !(ref->second.key == key)) {
      Fail(out, tag + "cache page (" + std::to_string(key.manager) + "," +
                    std::to_string(key.group) + "," + std::to_string(key.hash) +
                    ") has a dangling LRU link");
    }
  }
  if (bytes != pool.used_bytes_) {
    Fail(out, tag + "byte accounting " + std::to_string(pool.used_bytes_) +
                  " != sum of parked entries " + std::to_string(bytes));
  }
  if (bytes != host_.bytes) {
    Fail(out, tag + "shadow byte accounting " + std::to_string(host_.bytes) +
                  " != sum of parked entries " + std::to_string(bytes));
  }
  if (pool.used_bytes_ > pool.capacity_bytes_) {
    Fail(out, tag + "used bytes " + std::to_string(pool.used_bytes_) + " exceed capacity " +
                  std::to_string(pool.capacity_bytes_));
  }
  if (pool.lru_.size() != pool.sets_.size() + pool.pages_.size()) {
    Fail(out, tag + "LRU index has " + std::to_string(pool.lru_.size()) + " links for " +
                  std::to_string(pool.sets_.size() + pool.pages_.size()) + " entries");
  }
  if (host_.sets.size() != pool.sets_.size() || host_.pages.size() != pool.pages_.size()) {
    Fail(out, tag + "shadow holds " + std::to_string(host_.sets.size()) + " sets / " +
                  std::to_string(host_.pages.size()) + " pages, pool holds " +
                  std::to_string(pool.sets_.size()) + " / " +
                  std::to_string(pool.pages_.size()));
  }
  if (host_.swap->pending_transfer_ < 0.0) {
    Fail(out, tag + "negative pending transfer time");
  }
  const SwapManager::Stats& stats = host_.swap->stats();
  if (stats.host_pages_promoted > stats.host_pages_stored) {
    // A page must be parked before it can be promoted; promotion always erases the host
    // copy, so cumulative promotions can never outrun cumulative parks.
    Fail(out, tag + "promoted " + std::to_string(stats.host_pages_promoted) +
                  " pages but only " + std::to_string(stats.host_pages_stored) +
                  " were ever parked");
  }
}

std::vector<std::string> AllocatorAuditor::Audit() const {
  std::vector<std::string> out = event_errors_;
  for (size_t a = 0; a < allocs_.size(); ++a) {
    AuditAllocator(a, &out);
  }
  AuditHost(&out);
  return out;
}

std::optional<std::string> AllocatorAuditor::FirstViolation() const {
  const std::vector<std::string> violations = Audit();
  if (violations.empty()) {
    return std::nullopt;
  }
  return violations.front();
}

void AllocatorAuditor::InjectShadowFaultForTest() {
  for (auto& state : allocs_) {
    for (auto& group : state->groups) {
      for (auto& [page, slot] : group.slots) {
        (void)page;
        slot.state = slot.state == PageState::kUsed ? PageState::kEmpty : PageState::kUsed;
        return;
      }
    }
  }
  host_.bytes += 1;
}

}  // namespace jenga
