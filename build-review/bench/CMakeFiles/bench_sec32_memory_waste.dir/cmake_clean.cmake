file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_memory_waste.dir/bench_sec32_memory_waste.cc.o"
  "CMakeFiles/bench_sec32_memory_waste.dir/bench_sec32_memory_waste.cc.o.d"
  "bench_sec32_memory_waste"
  "bench_sec32_memory_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_memory_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
