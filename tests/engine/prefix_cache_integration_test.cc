// Integration test for the Fig.-17 mechanism: under a pool too small to cache every article,
// Jenga's sliding-window-aware policies keep at least as many article prefixes hittable as
// the homogeneous full-attention baseline, and a cached article costs Jenga less memory.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Serves `rounds` random questions over `num_articles` shared 320-token documents, strictly
// serially, and returns the total prefix-cache hit tokens.
int64_t ServeArticles(bool jenga, int num_articles, int rounds, int64_t pool_bytes) {
  const ModelConfig model = TinySlidingModel(/*window=*/64);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = jenga;
  config.vision_cache = false;
  config.pool_bytes_override = pool_bytes;
  config.max_num_seqs_override = 1;  // Serial: capacity of the cache decides everything.
  config.memory_sample_every = 0;
  Engine engine(std::move(config));

  Rng rng(0xA57);
  // Shared article bodies (deterministic) + unique question tails.
  std::vector<std::vector<int32_t>> articles;
  for (int a = 0; a < num_articles; ++a) {
    std::vector<int32_t> body;
    for (int t = 0; t < 320; ++t) {
      body.push_back(a * 1000 + t);
    }
    articles.push_back(std::move(body));
  }
  RequestId id = 0;
  for (int round = 0; round < rounds; ++round) {
    const int a = static_cast<int>(rng.UniformInt(0, num_articles - 1));
    Prompt prompt;
    prompt.tokens = articles[static_cast<size_t>(a)];
    for (int q = 0; q < 16; ++q) {
      prompt.tokens.push_back(static_cast<int32_t>(rng.UniformInt(100000, 200000)));
    }
    engine.Submit(MakeRequest(id++, std::move(prompt), /*output_len=*/8, 0.0));
  }
  engine.RunToCompletion();
  return engine.metrics().cache_hit_tokens;
}

TEST(PrefixCacheIntegration, BothCacheEverythingWhenPoolIsLarge) {
  const int64_t big_pool = 16LL << 20;
  const int64_t vllm_hits = ServeArticles(false, 3, 24, big_pool);
  const int64_t jenga_hits = ServeArticles(true, 3, 24, big_pool);
  // After first touch every question hits its article; identical totals (Fig. 17 left side).
  EXPECT_EQ(vllm_hits, jenga_hits);
  EXPECT_GT(vllm_hits, 0);
}

TEST(PrefixCacheIntegration, JengaKeepsMoreArticlesUnderPressure) {
  // Pool sized so the baseline cannot hold every article but Jenga (which pays only
  // full-attention KV plus the sliding window per article at steady state) can hold more.
  // Baseline article: 20 blocks × 16 KiB = 320 KiB; Jenga steady: ~196 KiB.
  const int64_t tight_pool = 900LL << 10;
  const int64_t vllm_hits = ServeArticles(false, 4, 48, tight_pool);
  const int64_t jenga_hits = ServeArticles(true, 4, 48, tight_pool);
  EXPECT_GT(jenga_hits, vllm_hits);
}

TEST(PrefixCacheIntegration, HitsVanishWhenPoolOnlyFitsTheRunningRequest) {
  const int64_t tiny_pool = 400LL << 10;
  const int64_t vllm_hits = ServeArticles(false, 6, 18, tiny_pool);
  // Thrash regime: almost nothing survives between questions for the baseline.
  EXPECT_LT(vllm_hits, 18 * 320 / 4);
}

}  // namespace
}  // namespace jenga
