# Empty dependencies file for jenga_model.
# This may be replaced when dependencies are built.
