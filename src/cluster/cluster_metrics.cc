#include "src/cluster/cluster_metrics.h"

#include <sstream>

#include "src/cluster/fleet_router.h"

namespace jenga {

void ClusterMetrics::AddReplica(const EngineMetrics& metrics, double occupancy) {
  ReplicaStats row;
  row.replica = static_cast<int>(stats_.replicas.size());
  row.completed = metrics.CompletedRequests();
  row.failed = metrics.FailedRequests();
  const int64_t prompt_tokens = metrics.cache_hit_tokens + metrics.prefill_tokens_computed;
  row.hit_rate = prompt_tokens > 0
                     ? static_cast<double>(metrics.cache_hit_tokens) /
                           static_cast<double>(prompt_tokens)
                     : 0.0;
  row.occupancy = occupancy;
  const Summary ttft = metrics.TtftDistribution();
  const Summary tpot = metrics.TpotDistribution();
  if (!ttft.empty()) {
    row.ttft_p50 = ttft.Percentile(50.0);
    row.ttft_p99 = ttft.Percentile(99.0);
  }
  if (!tpot.empty()) {
    row.tpot_p50 = tpot.Percentile(50.0);
    row.tpot_p99 = tpot.Percentile(99.0);
  }
  stats_.replicas.push_back(row);

  stats_.completed += row.completed;
  stats_.failed += row.failed;
  hit_tokens_ += metrics.cache_hit_tokens;
  prefill_tokens_ += metrics.prefill_tokens_computed;
  for (const double sample : ttft.samples()) {
    ttft_.Add(sample);
  }
  for (const double sample : tpot.samples()) {
    tpot_.Add(sample);
  }
}

void ClusterMetrics::AddFleetCounters(const FleetCounters& counters) {
  stats_.submitted += counters.submitted;
  stats_.replica_deaths += counters.replica_deaths;
  stats_.replica_stalls += counters.replica_stalls;
  stats_.death_cancels += counters.death_cancels;
  stats_.rerouted += counters.rerouted;
  stats_.cancelled += counters.cancelled;
}

FleetStats ClusterMetrics::Summarize() const {
  FleetStats stats = stats_;
  const int64_t prompt_tokens = hit_tokens_ + prefill_tokens_;
  stats.hit_rate = prompt_tokens > 0
                       ? static_cast<double>(hit_tokens_) / static_cast<double>(prompt_tokens)
                       : 0.0;
  if (!ttft_.empty()) {
    stats.ttft_p50 = ttft_.Percentile(50.0);
    stats.ttft_p99 = ttft_.Percentile(99.0);
  }
  if (!tpot_.empty()) {
    stats.tpot_p50 = tpot_.Percentile(50.0);
    stats.tpot_p99 = tpot_.Percentile(99.0);
  }
  return stats;
}

FleetStats ClusterMetrics::FromRouter(FleetRouter& router) {
  ClusterMetrics metrics;
  for (int i = 0; i < router.num_replicas(); ++i) {
    metrics.AddReplica(router.replica(i).metrics(), router.LoadOf(i).occupancy);
  }
  metrics.AddFleetCounters(router.counters());
  return metrics.Summarize();
}

std::string FleetStats::DebugString() const {
  std::ostringstream os;
  os << "fleet: completed=" << completed << " failed=" << failed << " hit_rate=" << hit_rate
     << " ttft_p50=" << ttft_p50 << " ttft_p99=" << ttft_p99 << " tpot_p50=" << tpot_p50
     << " tpot_p99=" << tpot_p99 << "\n";
  if (replica_deaths > 0 || replica_stalls > 0) {
    // Printed only when recovery happened, so fault-free output is unchanged.
    os << "recovery: deaths=" << replica_deaths << " stalls=" << replica_stalls
       << " death_cancels=" << death_cancels << " rerouted=" << rerouted
       << " submitted=" << submitted << " records=" << completed + failed << "\n";
  }
  for (const ReplicaStats& row : replicas) {
    os << "  replica " << row.replica << ": completed=" << row.completed
       << " failed=" << row.failed << " hit_rate=" << row.hit_rate
       << " occupancy=" << row.occupancy << " ttft_p50=" << row.ttft_p50
       << " ttft_p99=" << row.ttft_p99 << "\n";
  }
  return os.str();
}

}  // namespace jenga
