#include "src/common/math_util.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(CeilDiv(0, 3), 0);
  EXPECT_EQ(CeilDiv(1, 3), 1);
  EXPECT_EQ(CeilDiv(3, 3), 1);
  EXPECT_EQ(CeilDiv(4, 3), 2);
  EXPECT_EQ(CeilDiv(6, 3), 2);
  EXPECT_EQ(CeilDiv(1000000007, 16), 62500001);
}

TEST(RoundUp, Basic) {
  EXPECT_EQ(RoundUp(0, 16), 0);
  EXPECT_EQ(RoundUp(1, 16), 16);
  EXPECT_EQ(RoundUp(16, 16), 16);
  EXPECT_EQ(RoundUp(17, 16), 32);
}

TEST(RoundDown, Basic) {
  EXPECT_EQ(RoundDown(0, 16), 0);
  EXPECT_EQ(RoundDown(15, 16), 0);
  EXPECT_EQ(RoundDown(16, 16), 16);
  EXPECT_EQ(RoundDown(31, 16), 16);
}

TEST(GcdAll, Single) {
  const int64_t sizes[] = {42};
  EXPECT_EQ(GcdAll(sizes), 42);
}

TEST(GcdAll, Multiple) {
  const int64_t sizes[] = {256, 384};
  EXPECT_EQ(GcdAll(sizes), 128);
}

TEST(LcmAll, PaperExample) {
  // §4.1: image pages of 256 and text pages of 384 get a compatible page of 768.
  const int64_t sizes[] = {256, 384};
  EXPECT_EQ(LcmAll(sizes), 768);
}

TEST(LcmAll, IdenticalSizes) {
  const int64_t sizes[] = {4096, 4096, 4096};
  EXPECT_EQ(LcmAll(sizes), 4096);
}

TEST(LcmAll, CoprimeSizes) {
  const int64_t sizes[] = {2048, 3072, 5120};  // 2^11, 3·2^10, 5·2^10 → 15·2^11.
  EXPECT_EQ(LcmAll(sizes), 30720);
}

TEST(LcmAll, OneDividesOther) {
  const int64_t sizes[] = {131072, 11010048};  // Jamba: mamba page = 84 × attention page.
  EXPECT_EQ(LcmAll(sizes), 11010048);
  EXPECT_EQ(LcmAll(sizes) / 131072, 84);
}

TEST(MathUtilDeath, LcmRejectsNonPositive) {
  const int64_t sizes[] = {16, 0};
  EXPECT_DEATH(LcmAll(sizes), "positive");
}

TEST(MathUtilDeath, GcdRejectsEmpty) {
  EXPECT_DEATH(GcdAll({}), "at least one");
}

}  // namespace
}  // namespace jenga
