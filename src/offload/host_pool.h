// Host-memory tier below the GPU KV pool: a byte-accounted store with its own capacity and
// deterministic LRU. It holds two kinds of entries that compete for the same bytes:
//
//   - swap sets: the swappable pages of one preempted request, keyed by RequestId. The pages
//     themselves are simulated — the payload records how many tokens/bytes the set covers and
//     per-manager content fingerprints so a swap-in can prove the round trip is bit-identical.
//   - cache pages: individual evicted prefix-cache pages (second-chance path), keyed by
//     (manager, group, block hash).
//
// LRU order is a monotonic insertion/touch sequence number, so eviction order is a pure
// function of the call sequence — no wall-clock anywhere (engine determinism).

#ifndef JENGA_SRC_OFFLOAD_HOST_POOL_H_
#define JENGA_SRC_OFFLOAD_HOST_POOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/core/audit_events.h"
#include "src/core/types.h"
#include "src/fault/fault_injector.h"

namespace jenga {

// A preempted request's swapped-out footprint.
struct HostSwapSet {
  int64_t bytes = 0;   // Swap-eligible bytes resident in the host pool.
  int64_t tokens = 0;  // Computed tokens the set restores (num_computed_tokens at swap-out).
  int64_t resident_bytes = 0;        // All-group GPU-resident bytes at swap-out.
  int64_t drop_recompute_bytes = 0;  // Ineligible-group bytes recomputed on restore.
  // One fingerprint per KvManager (hash of per-group chains + block-table shape).
  std::vector<uint64_t> fingerprints;
};

// One evicted prefix-cache page parked in host memory.
struct HostCachePage {
  int64_t bytes = 0;
  int64_t prefix_length = 0;  // Eviction priority it carried on the GPU.
  Tick evicted_at = 0;
};

class HostPool {
 public:
  struct PageKey {
    int32_t manager = 0;
    int32_t group = 0;
    BlockHash hash = 0;
    bool operator==(const PageKey&) const = default;
  };

  explicit HostPool(int64_t capacity_bytes);

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  // Inserts (or replaces) an entry, evicting LRU entries until it fits. Returns false — and
  // stores nothing — when the entry alone exceeds capacity.
  bool PutSwapSet(RequestId id, HostSwapSet set);
  bool PutPage(const PageKey& key, HostCachePage page);

  [[nodiscard]] const HostSwapSet* FindSwapSet(RequestId id) const;
  [[nodiscard]] const HostCachePage* FindPage(const PageKey& key) const;

  // Explicit removal (swap-in consumed the set / a page was promoted back to the GPU).
  // Returns false when the entry was already gone (e.g. LRU-evicted under pressure).
  bool EraseSwapSet(RequestId id);
  bool ErasePage(const PageKey& key);

  // Memory-pressure spike: shrinks capacity and LRU-evicts overflow through the audited
  // eviction path. Shrinking to 0 empties the pool.
  void ForceShrink(int64_t new_capacity_bytes);

  // Drops every entry through the audited (non-eviction) removal path; used when the engine
  // degrades to GPU-only mode and the tier detaches.
  void Clear();

  [[nodiscard]] int64_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] int64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] int64_t num_sets() const { return static_cast<int64_t>(sets_.size()); }
  [[nodiscard]] int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

  // Cumulative capacity-pressure evictions (not explicit erases).
  [[nodiscard]] int64_t sets_evicted() const { return sets_evicted_; }
  [[nodiscard]] int64_t pages_evicted() const { return pages_evicted_; }
  [[nodiscard]] int64_t bytes_evicted() const { return bytes_evicted_; }
  [[nodiscard]] int64_t rejected_inserts() const { return rejected_inserts_; }
  // Inserts rejected by an injected kHostPoolAlloc fault (subset of rejected_inserts()).
  [[nodiscard]] int64_t injected_failures() const { return injected_failures_; }

  // Audit observation of every insert/erase/LRU-eviction (nullptr = detached).
  void set_audit_sink(AuditSink* sink) { audit_ = sink; }

  // Fault injection (nullptr = disabled). Consulted at the top of every Put*, before any
  // state is touched, so a fired fault leaves the pool exactly as it was.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  friend class AllocatorAuditor;
  struct PageKeyHash {
    size_t operator()(const PageKey& key) const {
      uint64_t h = key.hash;
      h ^= (static_cast<uint64_t>(static_cast<uint32_t>(key.manager)) << 32 |
            static_cast<uint32_t>(key.group)) +
           0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct SetEntry {
    HostSwapSet set;
    uint64_t seq = 0;
  };
  struct PageEntry {
    HostCachePage page;
    uint64_t seq = 0;
  };
  // LRU index: seq → which map owns the entry. std::map gives ordered (oldest-first) walks.
  struct LruRef {
    bool is_set = false;
    RequestId id = kNoRequest;
    PageKey key;
  };

  // Evicts oldest entries until `incoming` more bytes fit. Never touches `keep_*` (the entry
  // being inserted/replaced was already unlinked by the caller).
  void MakeRoom(int64_t incoming);
  void Unlink(uint64_t seq);

  int64_t capacity_bytes_ = 0;
  int64_t used_bytes_ = 0;
  uint64_t next_seq_ = 1;
  AuditSink* audit_ = nullptr;
  FaultInjector* fault_ = nullptr;
  std::unordered_map<RequestId, SetEntry> sets_;
  std::unordered_map<PageKey, PageEntry, PageKeyHash> pages_;
  std::map<uint64_t, LruRef> lru_;

  int64_t sets_evicted_ = 0;
  int64_t pages_evicted_ = 0;
  int64_t bytes_evicted_ = 0;
  int64_t rejected_inserts_ = 0;
  int64_t injected_failures_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_OFFLOAD_HOST_POOL_H_
