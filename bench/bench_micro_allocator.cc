// Microbenchmarks (google-benchmark) for the allocator hot paths: small-page allocate/release,
// the five-step algorithm under eviction pressure, prefix-cache lookups, block hashing, and a
// full engine decode step.

#include <benchmark/benchmark.h>

#include "src/core/block_hash.h"
#include "src/core/jenga_allocator.h"
#include "src/engine/engine.h"
#include "src/model/kv_spec.h"
#include "src/model/model_zoo.h"

namespace jenga {
namespace {

KvSpec TwoGroupSpec() {
  KvSpec spec;
  KvGroupSpec a;
  a.name = "a";
  a.kind = GroupKind::kFullAttention;
  a.num_layers = 2;
  a.bytes_per_token_per_layer = 128;
  a.tokens_per_page = 16;
  a.page_bytes = 4096;
  KvGroupSpec b = a;
  b.name = "b";
  b.num_layers = 3;
  b.page_bytes = 6144;
  spec.groups = {a, b};
  return spec;
}

void BM_AllocateRelease(benchmark::State& state) {
  JengaAllocator alloc(TwoGroupSpec(), 64LL << 20);
  Tick now = 0;
  for (auto _ : state) {
    ++now;
    const auto page = alloc.group(0).Allocate(now % 8, now);
    alloc.group(0).Release(*page, false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateRelease);

void BM_AllocateBurstThenFree(benchmark::State& state) {
  const int kBurst = static_cast<int>(state.range(0));
  JengaAllocator alloc(TwoGroupSpec(), 256LL << 20);
  std::vector<SmallPageId> pages;
  pages.reserve(static_cast<size_t>(kBurst));
  Tick now = 0;
  for (auto _ : state) {
    ++now;
    for (int i = 0; i < kBurst; ++i) {
      pages.push_back(*alloc.group(0).Allocate(now % 4, now));
    }
    for (const SmallPageId p : pages) {
      alloc.group(0).Release(p, false);
    }
    pages.clear();
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_AllocateBurstThenFree)->Arg(64)->Arg(1024);

void BM_AllocateUnderEviction(benchmark::State& state) {
  // Pool sized so every allocation beyond the warm-up evicts a cached page (step 5 / step 3).
  JengaAllocator alloc(TwoGroupSpec(), 4LL << 20);
  Tick now = 0;
  BlockHash hash = 1;
  // Fill the pool with evictable cached pages (bounded: with cached content resident, the
  // five-step algorithm always succeeds by evicting, so "allocate until failure" never ends).
  const int64_t capacity = (4LL << 20) / 4096;
  for (int64_t i = 0; i < capacity; ++i) {
    const auto page = alloc.group(0).Allocate(0, now);
    if (!page.has_value()) {
      break;
    }
    alloc.group(0).SetContentHash(*page, hash++);
    alloc.group(0).Release(*page, true);
  }
  for (auto _ : state) {
    ++now;
    const auto page = alloc.group(1).Allocate(1, now);  // Cross-group: whole-page eviction.
    alloc.group(1).SetContentHash(*page, hash++);
    alloc.group(1).Release(*page, true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateUnderEviction);

void BM_PrefixLookup(benchmark::State& state) {
  JengaAllocator alloc(TwoGroupSpec(), 64LL << 20);
  Tick now = 0;
  for (BlockHash h = 1; h <= 4096; ++h) {
    const auto page = alloc.group(0).Allocate(0, ++now);
    alloc.group(0).SetContentHash(*page, h);
    alloc.group(0).Release(*page, true);
  }
  BlockHash query = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.group(0).LookupCached(query));
    query = query % 4096 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixLookup);

void BM_ChainBlockHashes(benchmark::State& state) {
  std::vector<int32_t> tokens(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<int32_t>(i * 2654435761u % 50000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChainBlockHashes(tokens, 16, 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChainBlockHashes)->Arg(1024)->Arg(65536);

void BM_EngineDecodeStep(benchmark::State& state) {
  EngineConfig config;
  config.model = Gemma2_9B();
  config.gpu = H100();
  config.jenga = true;
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  for (int i = 0; i < 32; ++i) {
    Prompt prompt;
    for (int t = 0; t < 512; ++t) {
      prompt.tokens.push_back((i * 1000 + t) % 50000);
    }
    engine.Submit(MakeRequest(i, std::move(prompt), 1000000, 0.0));
  }
  // Drain prefill so the measured loop is pure decode.
  for (int i = 0; i < 8; ++i) {
    engine.StepOnce();
  }
  for (auto _ : state) {
    engine.StepOnce();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EngineDecodeStep);

}  // namespace
}  // namespace jenga

BENCHMARK_MAIN();
