// Status / StatusOr: the recoverable-error vocabulary used by the fault-injection and
// offload recovery paths.

#include <gtest/gtest.h>

#include <string>

#include "src/common/status.h"

namespace jenga {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, NamedConstructorsCarryCodeAndMessage) {
  const Status s = Status::Unavailable("injected PCIe transfer error");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "injected PCIe transfer error");
  EXPECT_EQ(s.ToString(), "UNAVAILABLE: injected PCIe transfer error");
}

TEST(Status, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kCancelled, StatusCode::kInvalidArgument,
        StatusCode::kDeadlineExceeded, StatusCode::kNotFound, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::ResourceExhausted("a"), Status::ResourceExhausted("b"));
  EXPECT_NE(Status::ResourceExhausted(), Status::Unavailable());
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(Status, StreamOperatorPrintsToString) {
  std::ostringstream out;
  out << Status::DeadlineExceeded("timed out");
  EXPECT_EQ(out.str(), "DEADLINE_EXCEEDED: timed out");
}

TEST(StatusOr, HoldsValueOnSuccess) {
  const StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOr, PropagatesError) {
  const StatusOr<std::string> result = Status::NotFound("no such swap set");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace jenga
