#include "src/offload/pcie_sim.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

PcieSpec TestSpec() {
  PcieSpec spec;
  spec.h2d_bandwidth = 16e9;
  spec.d2h_bandwidth = 8e9;
  spec.per_transfer_latency = 2e-3;
  spec.overlap_fraction = 0.5;
  return spec;
}

TEST(PcieSim, ZeroBytesIsFree) {
  PcieSim pcie(TestSpec());
  EXPECT_EQ(pcie.H2DTime(0), 0.0);
  EXPECT_EQ(pcie.D2HTime(0), 0.0);
  EXPECT_EQ(pcie.H2DStreamTime(0), 0.0);
  EXPECT_EQ(pcie.D2HStreamTime(0), 0.0);
}

TEST(PcieSim, SwapTransfersPayLatencyPlusBandwidth) {
  PcieSim pcie(TestSpec());
  // 16 GB over 16 GB/s = 1 s, plus 2 ms latency.
  EXPECT_DOUBLE_EQ(pcie.H2DTime(16'000'000'000), 2e-3 + 1.0);
  // The asymmetric D2H link is half as fast.
  EXPECT_DOUBLE_EQ(pcie.D2HTime(16'000'000'000), 2e-3 + 2.0);
}

TEST(PcieSim, StreamingPaysBandwidthOnly) {
  PcieSim pcie(TestSpec());
  EXPECT_DOUBLE_EQ(pcie.H2DStreamTime(1'600'000'000), 0.1);
  EXPECT_DOUBLE_EQ(pcie.D2HStreamTime(1'600'000'000), 0.2);
}

TEST(PcieSim, StallHidesOverlapFractionOfCompute) {
  PcieSim pcie(TestSpec());
  // 0.3 s of transfer against 0.4 s of compute: 0.2 s hidden, 0.1 s stalls.
  EXPECT_DOUBLE_EQ(pcie.StallTime(0.3, 0.4), 0.1);
  // Fully hidden.
  EXPECT_EQ(pcie.StallTime(0.1, 0.4), 0.0);
  // No concurrent compute: the whole transfer stalls.
  EXPECT_DOUBLE_EQ(pcie.StallTime(0.25, 0.0), 0.25);
}

TEST(PcieSim, TransferTimeScalesInverselyWithBandwidth) {
  PcieSpec slow = TestSpec();
  PcieSpec fast = TestSpec();
  fast.h2d_bandwidth = 2.0 * slow.h2d_bandwidth;
  const double t_slow = PcieSim(slow).H2DStreamTime(1 << 30);
  const double t_fast = PcieSim(fast).H2DStreamTime(1 << 30);
  EXPECT_DOUBLE_EQ(t_slow, 2.0 * t_fast);
}

}  // namespace
}  // namespace jenga
