file(REMOVE_RECURSE
  "CMakeFiles/jenga_model.dir/kv_spec.cc.o"
  "CMakeFiles/jenga_model.dir/kv_spec.cc.o.d"
  "CMakeFiles/jenga_model.dir/model_config.cc.o"
  "CMakeFiles/jenga_model.dir/model_config.cc.o.d"
  "CMakeFiles/jenga_model.dir/model_zoo.cc.o"
  "CMakeFiles/jenga_model.dir/model_zoo.cc.o.d"
  "libjenga_model.a"
  "libjenga_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
