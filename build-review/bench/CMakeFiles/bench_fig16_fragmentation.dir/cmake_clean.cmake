file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_fragmentation.dir/bench_fig16_fragmentation.cc.o"
  "CMakeFiles/bench_fig16_fragmentation.dir/bench_fig16_fragmentation.cc.o.d"
  "bench_fig16_fragmentation"
  "bench_fig16_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
