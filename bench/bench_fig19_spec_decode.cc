// Figure 19: speculative decoding with three memory strategies — vLLM-max (uniform pages
// sized for the large model), vLLM-manual (SmartSpec's static pool split), and Jenga.
// Expected shape: Jenga == vLLM-manual on the standard Llama (automatic management reaches
// the hand-tuned optimum) and beats both on heterogeneous models (paper: 1.58x average over
// vLLM-manual); vLLM-max is always worst.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/spec_decode.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

double RunOne(const ModelConfig& target, const ModelConfig& draft, SpecStrategy strategy,
              Dataset& dataset, int count) {
  SpecDecodeConfig config;
  config.target = target;
  config.draft = draft;
  config.gpu = H100();
  config.strategy = strategy;
  config.seed = 0xF19;
  SpecDecodeEngine engine(std::move(config));
  Rng rng(0x19AA);
  for (Request& r : GenerateBatch(dataset, count, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  return engine.metrics().RequestThroughput();
}

void Run() {
  PrintHeader("Figure 19: Speculative decoding — vLLM-max / vLLM-manual / Jenga (H100)");
  PrintRow({{24, "Target + draft"},
            {12, "vLLM-max"},
            {14, "vLLM-manual"},
            {12, "Jenga"},
            {12, "vs manual"},
            {12, "vs max"}});
  PrintRule();
  struct Pair {
    const char* label;
    ModelConfig target;
    ModelConfig draft;
    // Dataset per Table 1: long-context arXiv for the windowed models, MMLU-pro otherwise.
    bool long_context;
    int count;
  };
  const std::vector<Pair> pairs = {
      {"llama-70b-fp8 + 1b (std)", Llama3_70B_Fp8(), Llama32_1B(), false, 192},
      {"gemma2-27b + 2b", Gemma2_27B(), Gemma2_2B(), true, 48},
      {"ministral-8b + 1b", Ministral8B(), Ministral1BDraft(), true, 48},
      {"characterai-70b-fp8 + 1b", CharacterAi70B_Fp8(), Llama32_1B(), false, 192},
      {"pyramidkv-70b-fp8 + 1b", PyramidKv70B_Fp8(), Llama32_1B(), false, 192},
      {"jamba-52b-fp8 + 1b", Jamba52B_Fp8(), Llama32_1B(), false, 192},
  };
  // Each task rebuilds its own dataset (deterministic constructor args), so the three
  // strategy runs of a pair share nothing mutable: compute in parallel, print in order.
  const auto run_pair = [](const Pair& pair, SpecStrategy strategy) {
    const int kCount = pair.count;
    std::unique_ptr<Dataset> dataset;
    if (pair.long_context) {
      // Distinct long documents (caching is off in this experiment anyway).
      const int64_t max_len = std::min<int64_t>(pair.target.max_context_len - 1200, 24000);
      dataset = std::make_unique<ArxivQaDataset>(kCount, max_len - 2000, max_len, 0x19BB,
                                                 /*output_lo=*/256, /*output_hi=*/512);
    } else {
      dataset = std::make_unique<MmluProDataset>(/*output_lo=*/256, /*output_hi=*/1024);
    }
    return RunOne(pair.target, pair.draft, strategy, *dataset, kCount);
  };
  std::vector<std::function<double()>> tasks;
  for (const Pair& pair : pairs) {
    for (const SpecStrategy strategy :
         {SpecStrategy::kVllmMax, SpecStrategy::kVllmManual, SpecStrategy::kJenga}) {
      tasks.emplace_back([&run_pair, &pair, strategy] { return run_pair(pair, strategy); });
    }
  }
  const std::vector<double> results = ParallelSweep(tasks);
  for (size_t row = 0; row < pairs.size(); ++row) {
    const Pair& pair = pairs[row];
    const double max_tput = results[3 * row];
    const double manual_tput = results[3 * row + 1];
    const double jenga_tput = results[3 * row + 2];
    PrintRow({{24, pair.label},
              {12, Fmt("%.3f", max_tput)},
              {14, Fmt("%.3f", manual_tput)},
              {12, Fmt("%.3f", jenga_tput)},
              {12, Fmt("%.2fx", jenga_tput / manual_tput)},
              {12, Fmt("%.2fx", jenga_tput / max_tput)}});
  }
  std::printf(
      "\nShape checks vs paper: Jenga matches vLLM-manual on the standard Llama pair and\n"
      "wins on heterogeneous targets, without any per-model memory planning; vLLM-max pays\n"
      "for draft KV at the target page size and trails everywhere memory binds.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
