#include "src/core/small_page_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace jenga {

namespace {
// Free lists below this size are never compacted; avoids churn on tiny pools.
constexpr size_t kFreeListCompactFloor = 64;
}  // namespace

SmallPageAllocator::SmallPageAllocator(int group_index, KvGroupSpec spec, LcmAllocator* lcm,
                                       LargePageProvider* provider, int shards)
    : group_index_(group_index), spec_(std::move(spec)), lcm_(lcm), provider_(provider) {
  JENGA_CHECK(lcm_ != nullptr);
  JENGA_CHECK(provider_ != nullptr);
  JENGA_CHECK_GT(spec_.page_bytes, 0);
  JENGA_CHECK_GE(shards, 1);
  JENGA_CHECK_EQ(lcm_->large_page_bytes() % spec_.page_bytes, 0)
      << "group page size must divide the LCM page size";
  pages_per_large_ = static_cast<int>(lcm_->large_page_bytes() / spec_.page_bytes);
  larges_.resize(static_cast<size_t>(lcm_->num_pages()));
  if (shards > 1) {
    claims_ = std::make_unique<ShardedClaimIndex>(shards, lcm_->num_pages(), pages_per_large_);
  }
}

SmallPageAllocator::SlotMeta& SmallPageAllocator::Meta(SmallPageId page) {
  const LargePageId large = LargeOf(page);
  JENGA_CHECK(page >= 0 && IsResident(large))
      << "page " << page << " not resident in group " << group_index_;
  return larges_[static_cast<size_t>(large)].slots[static_cast<size_t>(SlotOf(page))];
}

const SmallPageAllocator::SlotMeta& SmallPageAllocator::Meta(SmallPageId page) const {
  const LargePageId large = LargeOf(page);
  JENGA_CHECK(page >= 0 && IsResident(large))
      << "page " << page << " not resident in group " << group_index_;
  return larges_[static_cast<size_t>(large)].slots[static_cast<size_t>(SlotOf(page))];
}

SmallPageAllocator::LargeEntry& SmallPageAllocator::Entry(LargePageId large) {
  JENGA_CHECK(IsResident(large))
      << "large page " << large << " not resident in group " << group_index_;
  return larges_[static_cast<size_t>(large)];
}

const SmallPageAllocator::LargeEntry& SmallPageAllocator::Entry(LargePageId large) const {
  JENGA_CHECK(IsResident(large))
      << "large page " << large << " not resident in group " << group_index_;
  return larges_[static_cast<size_t>(large)];
}

bool SmallPageAllocator::IsValidEmpty(const FreeRef& ref) const {
  const LargePageId large = LargeOf(ref.page);
  if (!IsResident(large)) {
    return false;
  }
  const SlotMeta& meta =
      larges_[static_cast<size_t>(large)].slots[static_cast<size_t>(SlotOf(ref.page))];
  return meta.state == PageState::kEmpty && meta.epoch == ref.epoch;
}

std::optional<SmallPageId> SmallPageAllocator::PopRequestFree(RequestId request) {
  std::vector<FreeRef>* refs_ptr = refs_cache_;
  if (request != refs_cache_key_ || refs_ptr == nullptr) {
    const auto it = empty_by_request_.find(request);
    if (it == empty_by_request_.end()) {
      return std::nullopt;
    }
    refs_cache_key_ = request;
    refs_cache_ = &it->second;
    refs_ptr = refs_cache_;
  }
  std::vector<FreeRef>& refs = *refs_ptr;
  while (!refs.empty()) {
    const FreeRef ref = refs.back();
    refs.pop_back();
    by_request_refs_ -= 1;
    if (IsValidEmpty(ref)) {
      if (claims_ != nullptr &&
          !claims_->TryClaim(LargeOf(ref.page), SlotOf(ref.page))) {
        // Lost the bit to a concurrent FindAndClaim; the ref is stale, keep popping.
        continue;
      }
      return ref.page;
    }
  }
  InvalidateRefsCacheFor(request);
  empty_by_request_.erase(request);
  return std::nullopt;
}

std::optional<SmallPageId> SmallPageAllocator::PopAnyFree(RequestId request) {
  if (claims_ != nullptr) {
    if (const auto hit = claims_->FindAndClaim(request)) {
      const SmallPageId page =
          static_cast<SmallPageId>(hit->first) * pages_per_large_ + hit->second;
      JENGA_CHECK(Meta(page).state == PageState::kEmpty)
          << "claim index returned non-empty page " << page;
      return page;
    }
    return std::nullopt;
  }
  while (!empty_any_.empty()) {
    const FreeRef ref = empty_any_.back();
    empty_any_.pop_back();
    if (IsValidEmpty(ref)) {
      return ref.page;
    }
  }
  return std::nullopt;
}

void SmallPageAllocator::MaybeCompactFreeLists() {
  // Stale refs (epoch moved on) accumulate as pages are claimed through the *other* list.
  // Once a list outgrows twice the live empty-page population, sweep it in place: erase_if
  // keeps the relative order of surviving refs, so pops (taken from the back) see exactly
  // the sequence they would have seen anyway. Amortized O(1) per push.
  const auto stale = [this](const FreeRef& ref) { return !IsValidEmpty(ref); };
  if (empty_any_.size() > kFreeListCompactFloor &&
      empty_any_.size() > 2 * static_cast<size_t>(empty_count_)) {
    std::erase_if(empty_any_, stale);
  }
  if (static_cast<size_t>(by_request_refs_) > kFreeListCompactFloor &&
      by_request_refs_ > 2 * empty_count_) {
    by_request_refs_ = 0;
    // The sweep erases arbitrary entries; drop the association cache wholesale.
    refs_cache_key_ = kNoRequest;
    refs_cache_ = nullptr;
    for (auto it = empty_by_request_.begin(); it != empty_by_request_.end();) {
      std::erase_if(it->second, stale);
      if (it->second.empty()) {
        it = empty_by_request_.erase(it);
      } else {
        by_request_refs_ += static_cast<int64_t>(it->second.size());
        ++it;
      }
    }
  }
}

void SmallPageAllocator::ClaimEmpty(SmallPageId page, RequestId request, Tick now) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state == PageState::kEmpty);
  JENGA_CHECK(!meta.has_hash);
  meta.state = PageState::kUsed;
  meta.assoc = request;
  meta.ref_count = 1;
  meta.last_access = now;
  meta.prefix_length = 0;
  meta.epoch = next_epoch_++;
  entry.used_count += 1;
  empty_count_ -= 1;
  used_count_ += 1;
  JENGA_AUDIT_HOOK(audit_, OnPageClaimed(group_index_, page, request));
}

std::optional<SmallPageId> SmallPageAllocator::Allocate(RequestId request, Tick now) {
  // Step 1: an empty page already associated with this request (§4.3).
  if (const auto page = PopRequestFree(request)) {
    ClaimEmpty(*page, request, now);
    return page;
  }

  // Steps 2–3: a fresh large page; the provider evicts an evictable large page if the free
  // list is exhausted. All its small pages become associated with this request.
  if (const auto large = provider_->AcquireLargePage(group_index_)) {
    LargeEntry& entry = larges_[static_cast<size_t>(*large)];
    JENGA_CHECK(!entry.resident) << "large page " << *large << " already held";
    entry.resident = true;
    entry.used_count = 0;
    entry.evictable_count = 0;
    entry.slots.assign(static_cast<size_t>(pages_per_large_), SlotMeta{});
    for (SlotMeta& slot : entry.slots) {
      slot.assoc = request;
      slot.epoch = next_epoch_++;
    }
    resident_larges_ += 1;
    empty_count_ += pages_per_large_;
    JENGA_AUDIT_HOOK(audit_, OnLargeAcquired(group_index_, *large, request));
    const SmallPageId base = static_cast<SmallPageId>(*large) * pages_per_large_;
    std::vector<FreeRef>& request_refs = RefsFor(request);
    if (claims_ == nullptr) {
      for (int slot = 1; slot < pages_per_large_; ++slot) {
        const FreeRef ref{base + slot, entry.slots[static_cast<size_t>(slot)].epoch};
        request_refs.push_back(ref);
        empty_any_.push_back(ref);
      }
    } else {
      // Sharded mode: the claim index replaces empty_any_; the affinity list still gets the
      // refs so step 1 keeps its request-aware placement.
      for (int slot = 1; slot < pages_per_large_; ++slot) {
        request_refs.push_back(FreeRef{base + slot, entry.slots[static_cast<size_t>(slot)].epoch});
        claims_->Publish(*large, slot);
      }
    }
    by_request_refs_ += pages_per_large_ - 1;
    ClaimEmpty(base, request, now);
    MaybeCompactFreeLists();
    return base;
  }

  // Step 4: any empty page, regardless of association.
  if (const auto page = PopAnyFree(request)) {
    ClaimEmpty(*page, request, now);
    return page;
  }

  // Step 5: evict this group's LRU evictable page and reuse it in place.
  if (const auto victim = evictor_.PopVictim()) {
    const LargePageId large = LargeOf(*victim);
    LargeEntry& entry = Entry(large);
    SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(*victim))];
    JENGA_CHECK(meta.state == PageState::kEvictable);
    NotifyEviction(*victim, meta);
    UnregisterHash(*victim, meta);
    JENGA_AUDIT_HOOK(audit_, OnPageEvicted(group_index_, *victim));
    meta.state = PageState::kUsed;
    meta.assoc = request;
    meta.ref_count = 1;
    meta.last_access = now;
    meta.prefix_length = 0;
    meta.epoch = next_epoch_++;
    entry.evictable_count -= 1;
    entry.used_count += 1;
    evictable_count_ -= 1;
    used_count_ += 1;
    JENGA_AUDIT_HOOK(audit_, OnPageClaimed(group_index_, *victim, request));
    return victim;
  }

  return std::nullopt;
}

bool SmallPageAllocator::AllocateN(RequestId request, int64_t n, Tick now,
                                   std::vector<SmallPageId>* out) {
  JENGA_CHECK(out != nullptr);
  JENGA_CHECK_GE(n, 0);
  const size_t base = out->size();
  out->reserve(base + static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // The five-step algorithm must re-run per page: a fresh large page acquired in step 2
    // refills the affinity free list that step 1 of the *next* page pops from, so batching
    // any step across pages would change placement. Allocate() is already O(1) per page;
    // the bulk win is the single rollback below plus the caller-side reserve.
    const auto page = Allocate(request, now);
    if (!page.has_value()) {
      for (size_t j = out->size(); j > base; --j) {
        Release((*out)[j - 1], /*keep_cached=*/false);
      }
      out->resize(base);
      return false;
    }
    out->push_back(*page);
  }
  if (n > 0) {
    JENGA_AUDIT_HOOK(audit_, OnBulkAllocate(group_index_, request, n));
  }
  return true;
}

void SmallPageAllocator::AddRef(SmallPageId page) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  switch (meta.state) {
    case PageState::kUsed:
      meta.ref_count += 1;
      break;
    case PageState::kEvictable:
      evictor_.Remove(page);
      meta.state = PageState::kUsed;
      meta.ref_count = 1;
      meta.epoch = next_epoch_++;
      entry.evictable_count -= 1;
      entry.used_count += 1;
      evictable_count_ -= 1;
      used_count_ += 1;
      JENGA_AUDIT_HOOK(audit_, OnPageRevived(group_index_, page));
      break;
    case PageState::kEmpty:
      JENGA_CHECK(false) << "AddRef on empty page " << page;
  }
}

void SmallPageAllocator::NotifyEviction(SmallPageId page, const SlotMeta& meta) const {
  // Only indexed content is recoverable later; a page whose hash was superseded by another
  // resident copy offers nothing a future hit could use.
  if (eviction_sink_ == nullptr || !meta.has_hash) {
    return;
  }
  const auto it = cache_index_.find(meta.hash);
  if (it == cache_index_.end() || it->second != page) {
    return;
  }
  eviction_sink_->OnCacheEvicted(group_index_, meta.hash, spec_.page_bytes, meta.prefix_length,
                                 meta.last_access);
}

void SmallPageAllocator::UnregisterHash(SmallPageId page, SlotMeta& meta) {
  if (meta.has_hash) {
    const auto it = cache_index_.find(meta.hash);
    if (it != cache_index_.end() && it->second == page) {
      cache_index_.erase(it);
      if (residency_sink_ != nullptr) {
        residency_sink_->OnHashNonResident(group_index_, meta.hash);
      }
    }
    meta.has_hash = false;
    meta.hash = 0;
  }
}

void SmallPageAllocator::ReleaseLarge(LargePageId large, LargeEntry& entry) {
  if (claims_ != nullptr) {
    claims_->ClearLarge(large);
  }
  entry.resident = false;
  entry.used_count = 0;
  entry.evictable_count = 0;
  resident_larges_ -= 1;
  lcm_->Free(large);
  JENGA_AUDIT_HOOK(audit_, OnLargeReleased(group_index_, large));
}

void SmallPageAllocator::TransitionToEmpty(SmallPageId page) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state != PageState::kEmpty);
  UnregisterHash(page, meta);
  if (meta.state == PageState::kUsed) {
    entry.used_count -= 1;
    used_count_ -= 1;
  } else {
    evictor_.Remove(page);
    entry.evictable_count -= 1;
    evictable_count_ -= 1;
  }
  meta.state = PageState::kEmpty;
  meta.ref_count = 0;
  meta.epoch = next_epoch_++;
  empty_count_ += 1;
  JENGA_AUDIT_HOOK(audit_, OnPageEmptied(group_index_, page));

  if (entry.used_count == 0 && entry.evictable_count == 0) {
    // The whole large page is empty: return it to the LCM allocator (§4.1). Stale FreeRefs to
    // its slots are filtered lazily by epoch/residency checks.
    empty_count_ -= pages_per_large_;
    ReleaseLarge(large, entry);
    return;
  }

  const FreeRef ref{page, meta.epoch};
  RefsFor(meta.assoc).push_back(ref);
  by_request_refs_ += 1;
  if (claims_ == nullptr) {
    empty_any_.push_back(ref);
  } else {
    claims_->Publish(large, SlotOf(page));
  }
  NotifyCandidateIfEligible(large);
  MaybeCompactFreeLists();
}

void SmallPageAllocator::Release(SmallPageId page, bool keep_cached) {
  const LargePageId large = LargeOf(page);
  LargeEntry& entry = Entry(large);
  SlotMeta& meta = entry.slots[static_cast<size_t>(SlotOf(page))];
  JENGA_CHECK(meta.state == PageState::kUsed) << "Release on non-used page " << page;
  JENGA_CHECK_GT(meta.ref_count, 0);
  meta.ref_count -= 1;
  if (meta.ref_count > 0) {
    return;
  }

  bool cacheable = keep_cached && meta.has_hash;
  if (cacheable) {
    // Index the content if no other resident page holds it; duplicates are not worth keeping.
    const auto [it, inserted] = cache_index_.emplace(meta.hash, page);
    if (!inserted && it->second != page) {
      cacheable = false;
    }
    if (inserted && residency_sink_ != nullptr) {
      residency_sink_->OnHashResident(group_index_, meta.hash);
    }
  }

  if (!cacheable) {
    TransitionToEmpty(page);
    return;
  }

  meta.state = PageState::kEvictable;
  meta.epoch = next_epoch_++;
  entry.used_count -= 1;
  entry.evictable_count += 1;
  used_count_ -= 1;
  evictable_count_ += 1;
  JENGA_AUDIT_HOOK(audit_, OnPageCached(group_index_, page, meta.hash));
  evictor_.Insert(page, meta.last_access, meta.prefix_length);
  NotifyCandidateIfEligible(large);
}

void SmallPageAllocator::SetContentHash(SmallPageId page, BlockHash hash) {
  SlotMeta& meta = Meta(page);
  JENGA_CHECK(meta.state == PageState::kUsed) << "SetContentHash on non-used page";
  if (meta.has_hash) {
    // Recomputed block (e.g. preempted request resumed with different content boundary).
    UnregisterHash(page, meta);
  }
  meta.has_hash = true;
  meta.hash = hash;
  // Keeps an existing mapping if one is resident (in which case the index is unchanged and
  // the residency sink stays silent).
  const auto [it, inserted] = cache_index_.emplace(hash, page);
  (void)it;
  if (inserted && residency_sink_ != nullptr) {
    residency_sink_->OnHashResident(group_index_, hash);
  }
}

std::optional<SmallPageId> SmallPageAllocator::LookupCached(BlockHash hash) const {
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void SmallPageAllocator::UpdateLastAccess(SmallPageId page, Tick now) {
  SlotMeta& meta = Meta(page);
  meta.last_access = std::max(meta.last_access, now);
  if (meta.state == PageState::kEvictable) {
    evictor_.UpdateLastAccess(page, meta.last_access);
  }
}

void SmallPageAllocator::SetPrefixLength(SmallPageId page, int64_t prefix_length) {
  SlotMeta& meta = Meta(page);
  meta.prefix_length = prefix_length;
  if (meta.state == PageState::kEvictable) {
    evictor_.SetPrefixLength(page, prefix_length);
  }
}

void SmallPageAllocator::ForgetRequest(RequestId request) {
  const auto it = empty_by_request_.find(request);
  if (it == empty_by_request_.end()) {
    return;
  }
  by_request_refs_ -= static_cast<int64_t>(it->second.size());
  InvalidateRefsCacheFor(request);
  empty_by_request_.erase(it);
  JENGA_AUDIT_HOOK(audit_, OnRequestForgotten(group_index_, request));
}

void SmallPageAllocator::NotifyCandidateIfEligible(LargePageId large) {
  const LargeEntry& entry = Entry(large);
  if (entry.used_count == 0 && entry.evictable_count > 0) {
    provider_->OnReclaimCandidate(group_index_, large, ReclaimTimestamp(large));
  }
}

bool SmallPageAllocator::IsReclaimCandidate(LargePageId large) const {
  if (!IsResident(large)) {
    return false;
  }
  const LargeEntry& entry = larges_[static_cast<size_t>(large)];
  return entry.used_count == 0 && entry.evictable_count > 0;
}

Tick SmallPageAllocator::ReclaimTimestamp(LargePageId large) const {
  const LargeEntry& entry = Entry(large);
  Tick timestamp = 0;
  for (const SlotMeta& slot : entry.slots) {
    if (slot.state == PageState::kEvictable) {
      timestamp = std::max(timestamp, slot.last_access);
    }
  }
  return timestamp;
}

void SmallPageAllocator::OnPoolResized(int32_t new_num_larges) {
  JENGA_CHECK(claims_ == nullptr) << "pool resize requires shards == 1";
  JENGA_CHECK_GE(new_num_larges, 0);
  for (size_t large = static_cast<size_t>(new_num_larges); large < larges_.size(); ++large) {
    JENGA_CHECK(!larges_[large].resident)
        << "pool shrink over group " << group_index_ << "'s resident large page " << large;
  }
  larges_.resize(static_cast<size_t>(new_num_larges));
}

void SmallPageAllocator::ReclaimLargePage(LargePageId large) {
  LargeEntry& entry = Entry(large);
  JENGA_CHECK_EQ(entry.used_count, 0) << "reclaiming large page with used slots";
  const SmallPageId base = static_cast<SmallPageId>(large) * pages_per_large_;
  for (int slot = 0; slot < pages_per_large_; ++slot) {
    SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
    const SmallPageId page = base + slot;
    if (meta.state == PageState::kEvictable) {
      evictor_.Remove(page);
      NotifyEviction(page, meta);
      UnregisterHash(page, meta);
      JENGA_AUDIT_HOOK(audit_, OnPageEvicted(group_index_, page));
      evictable_count_ -= 1;
    } else {
      empty_count_ -= 1;
    }
  }
  ReleaseLarge(large, entry);
}

PageState SmallPageAllocator::state(SmallPageId page) const { return Meta(page).state; }
RequestId SmallPageAllocator::assoc(SmallPageId page) const { return Meta(page).assoc; }
Tick SmallPageAllocator::last_access(SmallPageId page) const { return Meta(page).last_access; }
int64_t SmallPageAllocator::prefix_length(SmallPageId page) const {
  return Meta(page).prefix_length;
}
int SmallPageAllocator::ref_count(SmallPageId page) const { return Meta(page).ref_count; }

SmallPageAllocator::Stats SmallPageAllocator::GetStats() const {
  Stats stats;
  stats.large_pages_held = resident_larges_;
  stats.used_pages = used_count_;
  stats.evictable_pages = evictable_count_;
  stats.empty_pages = empty_count_;
  stats.used_bytes = used_count_ * spec_.page_bytes;
  stats.evictable_bytes = evictable_count_ * spec_.page_bytes;
  stats.empty_bytes = empty_count_ * spec_.page_bytes;
  return stats;
}

SmallPageAllocator::FreeListStats SmallPageAllocator::GetFreeListStats() const {
  FreeListStats stats;
  stats.any_refs = static_cast<int64_t>(empty_any_.size());
  stats.by_request_refs = by_request_refs_;
  stats.tracked_requests = static_cast<int64_t>(empty_by_request_.size());
  return stats;
}

void SmallPageAllocator::CheckConsistency() const {
  int64_t resident = 0;
  int64_t used = 0;
  int64_t evictable = 0;
  int64_t empty = 0;
  for (size_t index = 0; index < larges_.size(); ++index) {
    const LargeEntry& entry = larges_[index];
    if (!entry.resident) {
      continue;
    }
    const LargePageId large = static_cast<LargePageId>(index);
    JENGA_CHECK_EQ(lcm_->owner(large), group_index_);
    JENGA_CHECK_EQ(static_cast<int>(entry.slots.size()), pages_per_large_);
    ++resident;
    int32_t entry_used = 0;
    int32_t entry_evictable = 0;
    const SmallPageId base = static_cast<SmallPageId>(large) * pages_per_large_;
    for (int slot = 0; slot < pages_per_large_; ++slot) {
      const SlotMeta& meta = entry.slots[static_cast<size_t>(slot)];
      const SmallPageId page = base + slot;
      switch (meta.state) {
        case PageState::kUsed:
          JENGA_CHECK_GT(meta.ref_count, 0);
          JENGA_CHECK(!evictor_.Contains(page));
          ++entry_used;
          break;
        case PageState::kEvictable:
          JENGA_CHECK_EQ(meta.ref_count, 0);
          JENGA_CHECK(evictor_.Contains(page));
          JENGA_CHECK(meta.has_hash);
          ++entry_evictable;
          break;
        case PageState::kEmpty:
          JENGA_CHECK_EQ(meta.ref_count, 0);
          JENGA_CHECK(!meta.has_hash);
          JENGA_CHECK(!evictor_.Contains(page));
          break;
      }
    }
    JENGA_CHECK_EQ(entry_used, entry.used_count);
    JENGA_CHECK_EQ(entry_evictable, entry.evictable_count);
    JENGA_CHECK(entry_used + entry_evictable > 0) << "fully-empty large page not returned";
    used += entry_used;
    evictable += entry_evictable;
    empty += entry.empty_count();
  }
  JENGA_CHECK_EQ(resident, resident_larges_);
  JENGA_CHECK_EQ(used, used_count_);
  JENGA_CHECK_EQ(evictable, evictable_count_);
  JENGA_CHECK_EQ(empty, empty_count_);
  JENGA_CHECK_EQ(evictable, static_cast<int64_t>(evictor_.size()));
  int64_t by_request = 0;
  for (const auto& [request, refs] : empty_by_request_) {
    by_request += static_cast<int64_t>(refs.size());
  }
  JENGA_CHECK_EQ(by_request, by_request_refs_);
  for (const auto& [hash, page] : cache_index_) {
    JENGA_CHECK(IsResident(LargeOf(page))) << "cache index points at non-resident page";
    const SlotMeta& meta = Meta(page);
    JENGA_CHECK(meta.state != PageState::kEmpty);
    JENGA_CHECK(meta.has_hash);
    JENGA_CHECK_EQ(meta.hash, hash);
  }
  if (claims_ != nullptr) {
    // Sharded mode: the claim bitmap is the authoritative empty-page index. At quiescence a
    // bit is set iff its resident slot is empty, and the per-shard population counters sum
    // to the live empty-page count.
    JENGA_CHECK(empty_any_.empty()) << "sharded mode must not touch the empty_any_ list";
    int64_t claimable = 0;
    for (size_t index = 0; index < larges_.size(); ++index) {
      const LargeEntry& entry = larges_[index];
      const auto large = static_cast<LargePageId>(index);
      for (int slot = 0; slot < pages_per_large_; ++slot) {
        const bool bit = claims_->IsClaimable(large, slot);
        if (!entry.resident) {
          JENGA_CHECK(!bit) << "claim bit set on non-resident large " << large;
          continue;
        }
        const bool is_empty =
            entry.slots[static_cast<size_t>(slot)].state == PageState::kEmpty;
        JENGA_CHECK_EQ(bit, is_empty)
            << "claim bit / slot state mismatch at large " << large << " slot " << slot;
        claimable += bit ? 1 : 0;
      }
    }
    JENGA_CHECK_EQ(claimable, empty_count_);
    JENGA_CHECK_EQ(claimable, claims_->ClaimableApprox());
  }
}

}  // namespace jenga
