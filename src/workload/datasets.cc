#include "src/workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace jenga {

namespace {

constexpr int32_t kVocab = 50000;

std::vector<int32_t> RandomTokens(int64_t count, Rng& rng) {
  std::vector<int32_t> tokens;
  tokens.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, kVocab - 1)));
  }
  return tokens;
}

int64_t ClippedNormal(Rng& rng, double mean, double stddev, int64_t lo, int64_t hi) {
  const double v = rng.Normal(mean, stddev);
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(v)), lo, hi);
}

}  // namespace

WorkloadItem MmluProDataset::Sample(Rng& rng) {
  WorkloadItem item;
  const int64_t len = ClippedNormal(rng, 1200, 600, 64, 3076);
  item.prompt.tokens = RandomTokens(len, rng);
  item.output_len = rng.UniformInt(output_lo_, output_hi_);
  return item;
}

MmmuProDataset::MmmuProDataset(int tokens_per_image, int64_t output_lo, int64_t output_hi)
    : tokens_per_image_(tokens_per_image), output_lo_(output_lo), output_hi_(output_hi) {
  JENGA_CHECK_GT(tokens_per_image, 0);
}

WorkloadItem MmmuProDataset::Sample(Rng& rng) {
  WorkloadItem item;
  // Target ≈ 6193 image tokens (§3.2): pick the tile count whose total is closest, ±1 tile.
  const int base_tiles =
      std::max<int>(1, static_cast<int>(std::llround(6193.0 / tokens_per_image_)));
  const int tiles =
      std::max<int>(1, base_tiles + static_cast<int>(rng.UniformInt(-1, 1)));
  const int64_t text_len = ClippedNormal(rng, 43, 12, 8, 128);

  Prompt& prompt = item.prompt;
  prompt.num_images = tiles;
  // Layout: a few leading text tokens, then the image tiles, then the question text.
  const int64_t lead_text = std::min<int64_t>(8, text_len);
  auto append_text = [&](int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      prompt.tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, kVocab - 1)));
      prompt.kinds.push_back(TokenKind::kText);
    }
  };
  auto append_image = [&]() {
    for (int i = 0; i < tokens_per_image_; ++i) {
      prompt.tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, kVocab - 1)));
      prompt.kinds.push_back(TokenKind::kImage);
    }
  };
  append_text(lead_text);
  for (int t = 0; t < tiles; ++t) {
    append_image();
  }
  append_text(text_len - lead_text);
  item.output_len = rng.UniformInt(output_lo_, output_hi_);
  return item;
}

ArxivQaDataset::ArxivQaDataset(int num_articles, int64_t min_article_len,
                               int64_t max_article_len, uint64_t seed, int64_t output_lo,
                               int64_t output_hi)
    : output_lo_(output_lo), output_hi_(output_hi) {
  JENGA_CHECK_GT(num_articles, 0);
  JENGA_CHECK_LE(min_article_len, max_article_len);
  Rng rng(seed);
  articles_.reserve(static_cast<size_t>(num_articles));
  for (int a = 0; a < num_articles; ++a) {
    const int64_t len = rng.UniformInt(min_article_len, max_article_len);
    articles_.push_back(RandomTokens(len, rng));
  }
}

WorkloadItem ArxivQaDataset::Sample(Rng& rng) {
  const int article = static_cast<int>(rng.UniformInt(0, num_articles() - 1));
  return SampleForArticle(article, rng);
}

WorkloadItem ArxivQaDataset::SampleForArticle(int article, Rng& rng) {
  JENGA_CHECK_GE(article, 0);
  JENGA_CHECK_LT(article, num_articles());
  WorkloadItem item;
  item.prefix_class = article;
  item.prompt.tokens = articles_[static_cast<size_t>(article)];
  const std::vector<int32_t> question = RandomTokens(rng.UniformInt(32, 192), rng);
  item.prompt.tokens.insert(item.prompt.tokens.end(), question.begin(), question.end());
  item.output_len = rng.UniformInt(output_lo_, output_hi_);
  return item;
}

WorkloadItem LongDocDataset::Sample(Rng& rng) {
  WorkloadItem item;
  item.prompt.tokens = RandomTokens(rng.UniformInt(55000, 110000), rng);
  item.output_len = rng.UniformInt(50, 100);
  return item;
}

WorkloadItem ShareGptDataset::Sample(Rng& rng) {
  WorkloadItem item;
  // Log-normal with mean ≈ 1085 tokens (§4.4 quotes the ShareGPT average).
  const double v = std::exp(rng.Normal(6.6, 0.8));
  item.prompt.tokens = RandomTokens(std::clamp<int64_t>(static_cast<int64_t>(v), 16, 16384), rng);
  item.output_len = rng.UniformInt(32, 512);
  return item;
}

std::vector<Request> GenerateBatch(Dataset& dataset, int count, Rng& rng, RequestId first_id) {
  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadItem item = dataset.Sample(rng);
    requests.push_back(
        MakeRequest(first_id + i, std::move(item.prompt), item.output_len, /*arrival_time=*/0.0));
  }
  return requests;
}

std::vector<Request> GeneratePoisson(Dataset& dataset, int count, double rate, Rng& rng,
                                     RequestId first_id) {
  JENGA_CHECK_GT(rate, 0.0);
  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.Exponential(rate);
    WorkloadItem item = dataset.Sample(rng);
    requests.push_back(MakeRequest(first_id + i, std::move(item.prompt), item.output_len, t));
  }
  return requests;
}

std::vector<Request> StaticLongTrace(int count, double rate, Rng& rng) {
  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.Exponential(rate);
    Prompt prompt;
    prompt.tokens = std::vector<int32_t>();
    const int64_t len = ClippedNormal(rng, 80000, 15000, 40000, 120000);
    for (int64_t j = 0; j < len; ++j) {
      prompt.tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, kVocab - 1)));
    }
    requests.push_back(MakeRequest(i, std::move(prompt), rng.UniformInt(50, 100), t));
  }
  return requests;
}

std::vector<Request> DynamicLongTrace(int count, double rate, Rng& rng) {
  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.Exponential(rate);
    // Mean length ramps from ~20k to ~110k over the trace, shifting the self-attention vs
    // sliding-window memory balance (Fig. 16d).
    const double progress = static_cast<double>(i) / std::max(1, count - 1);
    const double mean = 20000.0 + progress * 90000.0;
    const int64_t len = ClippedNormal(rng, mean, mean * 0.15, 4000, 128000);
    Prompt prompt;
    for (int64_t j = 0; j < len; ++j) {
      prompt.tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, kVocab - 1)));
    }
    requests.push_back(MakeRequest(i, std::move(prompt), rng.UniformInt(50, 100), t));
  }
  return requests;
}

}  // namespace jenga
