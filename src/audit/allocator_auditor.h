// AllocatorAuditor: a whole-stack invariant checker for the two-tier memory manager.
//
// It attaches to one or more JengaAllocators (and optionally a SwapManager) through the
// AuditSink event hooks, maintains an independent *shadow* copy of the observable state
// (page lifecycle per group, evictor keys, host-pool contents), and on demand re-derives the
// allocators' global state from first principles to check:
//
//   - every small page belongs to exactly one live large page of its group, and every
//     resident large page is owned by that group in the LCM allocator;
//   - per-group used/evictable/empty counts (per large page and in total) sum to the pool,
//     and the byte breakdown conserves (allocated == used + evictable + empty);
//   - affinity free lists hold only refs whose (live) slot is empty and associated with the
//     list's request, and the stale-inclusive ref accounting matches;
//   - the evictor's authoritative key map equals a ground-truth rebuild from the slot
//     metadata, its lazy heap covers every live key and satisfies the heap property, and the
//     shadow (event-derived) copy agrees — so an UpdateLastAccess/SetPrefixLength that
//     skipped the evictor (or vice versa) is caught;
//   - every whole-evictable large page is represented on the global reclaim heap with a
//     timestamp no newer than its current one (lazy re-key contract);
//   - the prefix-cache index maps each hash to a resident page carrying that hash, and every
//     evictable page is reachable through it;
//   - host-pool byte accounting equals the sum of parked swap sets and cache pages, the LRU
//     index is a bijection onto the entries, and the event-derived shadow of the host pool
//     matches exactly. Promotions therefore provably erase the host copy — the "GPU-resident
//     and still promoted" failure mode shows up as a shadow/actual mismatch. (A host copy
//     MAY legally coexist with a GPU page of the same hash when a request *recomputed* the
//     block after its eviction; promotion is the only path that must erase.)
//
// Audit() never aborts: it returns the list of violations so harnesses (the engine fuzzer)
// can print a reproducible schedule instead of dying mid-run. Shadow-state machine
// violations detected at event time (e.g. a page claimed while not empty) are buffered and
// reported by the next Audit() call.
//
// The auditor is strictly an observer — it never mutates the audited structures, and
// detaching restores the zero-overhead null-sink configuration.

#ifndef JENGA_SRC_AUDIT_ALLOCATOR_AUDITOR_H_
#define JENGA_SRC_AUDIT_ALLOCATOR_AUDITOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/audit_events.h"
#include "src/core/jenga_allocator.h"
#include "src/core/types.h"
#include "src/offload/swap_manager.h"

namespace jenga {

class AllocatorAuditor {
 public:
  AllocatorAuditor();
  ~AllocatorAuditor();

  AllocatorAuditor(const AllocatorAuditor&) = delete;
  AllocatorAuditor& operator=(const AllocatorAuditor&) = delete;

  // Installs audit sinks and seeds the shadow from the allocator's current state. May be
  // called several times (speculative decoding runs one allocator per KvManager).
  void AttachAllocator(JengaAllocator* alloc);
  // Installs the host-pool sink and seeds the host shadow. At most one swap manager.
  void AttachSwapManager(SwapManager* swap);
  // Uninstalls every sink and clears all shadow state.
  void DetachAll();

  // Re-derives global state and cross-checks every invariant plus the shadow copies.
  // Returns all violations found (empty = green), including buffered event-time violations.
  [[nodiscard]] std::vector<std::string> Audit() const;

  // Convenience: first violation, or nullopt when everything is green.
  [[nodiscard]] std::optional<std::string> FirstViolation() const;

  // Negative control for tests: corrupts one entry of the shadow state (a slot's lifecycle
  // state if any slot is tracked, otherwise the host byte counter) so the next Audit() must
  // report a shadow/actual divergence. Verifies the detection machinery is actually wired.
  void InjectShadowFaultForTest();

  [[nodiscard]] int64_t events_observed() const { return events_observed_; }
  [[nodiscard]] int num_attached_allocators() const { return static_cast<int>(allocs_.size()); }

 private:
  struct Tap;      // AuditSink adapter tagging allocator events with the allocator index.
  struct HostTap;  // AuditSink adapter for host-pool events.

  struct ShadowSlot {
    PageState state = PageState::kEmpty;
    RequestId assoc = kNoRequest;
  };
  struct ShadowGroup {
    std::unordered_map<SmallPageId, ShadowSlot> slots;  // All slots of resident larges.
    std::unordered_map<SmallPageId, std::pair<Tick, int64_t>> evictor;  // page → key.
    std::unordered_set<LargePageId> resident;
  };
  struct AllocState {
    JengaAllocator* alloc = nullptr;
    std::unique_ptr<Tap> tap;
    std::vector<ShadowGroup> groups;
  };
  struct HostShadow {
    SwapManager* swap = nullptr;
    std::unique_ptr<HostTap> tap;
    std::unordered_map<RequestId, int64_t> sets;                        // id → bytes.
    std::map<std::tuple<int, int, BlockHash>, int64_t> pages;           // key → bytes.
    int64_t bytes = 0;
    int64_t pages_stored = 0;
    int64_t pages_removed_explicit = 0;  // Promotions + replacements.
  };

  // Event handlers (called by the taps; record violations instead of aborting).
  void HandleLargeAcquired(size_t a, int g, LargePageId large, RequestId request);
  void HandleLargeReleased(size_t a, int g, LargePageId large);
  void HandlePageClaimed(size_t a, int g, SmallPageId page, RequestId request);
  void HandleBulkAllocate(size_t a, int g, RequestId request, int64_t count);
  void HandlePageRevived(size_t a, int g, SmallPageId page);
  void HandlePageCached(size_t a, int g, SmallPageId page);
  void HandlePageEmptied(size_t a, int g, SmallPageId page);
  void HandlePageEvicted(size_t a, int g, SmallPageId page);
  void HandleEvictorInsert(size_t a, int g, SmallPageId page, Tick last_access,
                           int64_t prefix_length);
  void HandleEvictorRemove(size_t a, int g, SmallPageId page);
  void HandleEvictorRekey(size_t a, int g, SmallPageId page, Tick last_access,
                          int64_t prefix_length);
  void HandleEvictorPop(size_t a, int g, SmallPageId page);
  void HandlePoolResized(size_t a, int32_t new_num_pages);
  void HandleHostSetStored(RequestId id, int64_t bytes);
  void HandleHostSetRemoved(RequestId id, int64_t bytes, bool evicted);
  void HandleHostPageStored(int manager, int group, BlockHash hash, int64_t bytes);
  void HandleHostPageRemoved(int manager, int group, BlockHash hash, int64_t bytes,
                             bool evicted);

  [[nodiscard]] ShadowGroup& Shadow(size_t a, int g);
  [[nodiscard]] ShadowSlot* FindSlot(size_t a, int g, SmallPageId page, const char* event);
  void EventError(std::string message);

  // Re-derivation passes (append violations to `out`).
  void AuditAllocator(size_t a, std::vector<std::string>* out) const;
  void AuditGroup(size_t a, int g, std::vector<std::string>* out) const;
  void AuditReclaimHeap(size_t a, std::vector<std::string>* out) const;
  void AuditHost(std::vector<std::string>* out) const;

  void SeedAllocatorShadow(AllocState* state);
  void SeedHostShadow();

  std::vector<std::unique_ptr<AllocState>> allocs_;
  HostShadow host_;
  // Violations caught at event time; drained into the next Audit() result.
  std::vector<std::string> event_errors_;
  int64_t events_observed_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_AUDIT_ALLOCATOR_AUDITOR_H_
