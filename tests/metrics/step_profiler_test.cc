// StepProfiler coverage (DESIGN.md §12): exclusive-time accounting for the StepOnce phases
// and the two contracts the engines rely on:
//
//   - attach transparency: the profiler reads only the host wall clock, never the engine's
//     logical tick or simulated time, so an attached run must be byte-identical to a
//     detached one — same steps, same sim clock, same finished records, same metrics;
//   - preemption attribution: the whole Preempt() body — including the PR 9 TrimToComputed
//     trim and the release-to-cache walk — bills to kEvictPreempt, pausing whatever scope
//     drove it. Preemption-driven trim/eviction work must never leak into kAllocate or
//     kCommit (the micro.cache_churn_offload double-counting rule).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "src/engine/engine.h"
#include "src/metrics/step_profiler.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Busy-wait long enough that the wall clock visibly advances (ns resolution, so even one
// microsecond is thousands of observable units).
void Spin(int64_t us) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

EngineConfig PressureConfig() {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  return config;
}

void SubmitPressureBatch(Engine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 80, 0.0));
  }
}

int64_t TotalPreemptions(const EngineMetrics& metrics) {
  int64_t total = 0;
  for (const RequestRecord& record : metrics.finished()) {
    total += record.preemptions;
  }
  return total;
}

// --- Unit ---

TEST(StepProfilerUnit, NestedScopesChargeExclusiveTime) {
  StepProfiler prof;
  {
    StepProfiler::StepScope step(&prof);
    StepProfiler::Scope schedule(&prof, StepPhase::kSchedule);
    Spin(200);
    {
      // Nested scope pauses the parent: allocate time must not also count as schedule time.
      StepProfiler::Scope allocate(&prof, StepPhase::kAllocate);
      Spin(200);
    }
    Spin(200);
  }
  EXPECT_EQ(prof.steps(), 1);
  EXPECT_EQ(prof.phase(StepPhase::kSchedule).calls, 1);
  EXPECT_EQ(prof.phase(StepPhase::kAllocate).calls, 1);
  EXPECT_GT(prof.phase(StepPhase::kSchedule).ns, 0);
  EXPECT_GT(prof.phase(StepPhase::kAllocate).ns, 0);
  // Exclusive accounting: the phase totals partition total_ns, so shares sum to 100%.
  int64_t sum_ns = 0;
  double sum_share = 0.0;
  for (int p = 0; p < kNumStepPhases; ++p) {
    sum_ns += prof.phase(static_cast<StepPhase>(p)).ns;
    sum_share += prof.PhaseShare(static_cast<StepPhase>(p));
  }
  EXPECT_EQ(sum_ns, prof.total_ns());
  EXPECT_NEAR(sum_share, 1.0, 1e-9);
}

TEST(StepProfilerUnit, GapsInsideAStepChargeToOther) {
  StepProfiler prof;
  {
    StepProfiler::StepScope step(&prof);
    Spin(200);  // No phase scope open: remainder time.
  }
  EXPECT_GT(prof.phase(StepPhase::kOther).ns, 0);
  EXPECT_EQ(prof.phase(StepPhase::kOther).calls, 0);  // kOther is a remainder, not a scope.
}

TEST(StepProfilerUnit, OutOfStepScopeChargesPhaseOnly) {
  // A governor-driven Preempt between steps: charged to its phase, never to kOther.
  StepProfiler prof;
  {
    StepProfiler::Scope preempt(&prof, StepPhase::kEvictPreempt);
    Spin(200);
  }
  EXPECT_EQ(prof.steps(), 0);
  EXPECT_GT(prof.phase(StepPhase::kEvictPreempt).ns, 0);
  EXPECT_EQ(prof.phase(StepPhase::kOther).ns, 0);
  EXPECT_EQ(prof.total_ns(), prof.phase(StepPhase::kEvictPreempt).ns);
}

TEST(StepProfilerUnit, NullProfilerScopesAreNoops) {
  StepProfiler::StepScope step(nullptr);
  StepProfiler::Scope scope(nullptr, StepPhase::kGpuSim);
  // Nothing to assert beyond "does not crash": the detached path is a pointer test.
}

TEST(StepProfilerUnit, ResetClears) {
  StepProfiler prof;
  {
    StepProfiler::StepScope step(&prof);
    StepProfiler::Scope scope(&prof, StepPhase::kCommit);
    Spin(100);
  }
  ASSERT_GT(prof.total_ns(), 0);
  prof.Reset();
  EXPECT_EQ(prof.steps(), 0);
  EXPECT_EQ(prof.total_ns(), 0);
  EXPECT_EQ(prof.phase(StepPhase::kCommit).ns, 0);
  EXPECT_EQ(prof.phase(StepPhase::kCommit).calls, 0);
  EXPECT_EQ(prof.PhaseShare(StepPhase::kCommit), 0.0);
}

TEST(StepProfilerUnit, PhaseNamesAreDistinctAndNonNull) {
  for (int p = 0; p < kNumStepPhases; ++p) {
    ASSERT_NE(StepPhaseName(static_cast<StepPhase>(p)), nullptr);
    for (int q = p + 1; q < kNumStepPhases; ++q) {
      EXPECT_STRNE(StepPhaseName(static_cast<StepPhase>(p)),
                   StepPhaseName(static_cast<StepPhase>(q)));
    }
  }
}

// --- Attach contract ---

// Attaching the profiler must not perturb the simulation: the profiler only reads the host
// wall clock, so a profiled run and a detached run produce identical trajectories.
TEST(StepProfilerEngine, AttachedRunIsByteIdenticalToDetached) {
  Engine detached(PressureConfig());
  SubmitPressureBatch(detached);
  detached.RunToCompletion();

  StepProfiler prof;
  Engine attached(PressureConfig());
  attached.set_step_profiler(&prof);
  SubmitPressureBatch(attached);
  attached.RunToCompletion();

  EXPECT_EQ(attached.metrics().total_steps(), detached.metrics().total_steps());
  EXPECT_EQ(attached.now(), detached.now());
  const auto& a = attached.metrics().finished();
  const auto& d = detached.metrics().finished();
  ASSERT_EQ(a.size(), d.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, d[i].id);
    EXPECT_EQ(a[i].preemptions, d[i].preemptions);
    EXPECT_EQ(a[i].cached_prefix_tokens, d[i].cached_prefix_tokens);
    EXPECT_EQ(a[i].first_scheduled_time, d[i].first_scheduled_time);
    EXPECT_EQ(a[i].first_token_time, d[i].first_token_time);
    EXPECT_EQ(a[i].finish_time, d[i].finish_time);
    EXPECT_EQ(a[i].failed, d[i].failed);
    EXPECT_EQ(a[i].cancelled, d[i].cancelled);
  }
  // And the profiler actually observed the run.
  EXPECT_EQ(prof.steps(), attached.metrics().total_steps());
  EXPECT_GT(prof.total_ns(), 0);
}

TEST(StepProfilerEngine, DetachMidRunStopsCharging) {
  StepProfiler prof;
  Engine engine(PressureConfig());
  engine.set_step_profiler(&prof);
  SubmitPressureBatch(engine);
  for (int i = 0; i < 8 && engine.StepOnce(); ++i) {
  }
  const int64_t steps_attached = prof.steps();
  ASSERT_GT(steps_attached, 0);
  engine.set_step_profiler(nullptr);
  engine.RunToCompletion();
  EXPECT_EQ(prof.steps(), steps_attached);
  EXPECT_GT(engine.metrics().total_steps(), steps_attached);
}

// --- Attribution ---

// Preemption-heavy run: every Preempt() — trim included — lands in kEvictPreempt, one scope
// entry per preemption. If the trim ever migrated into the allocate/commit path this parity
// breaks (micro.cache_churn_offload double-counting regression).
TEST(StepProfilerEngine, PreemptionWorkBillsToEvictPreempt) {
  StepProfiler prof;
  Engine engine(PressureConfig());
  engine.set_step_profiler(&prof);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();

  const int64_t preemptions = TotalPreemptions(engine.metrics());
  ASSERT_GT(preemptions, 0) << "pressure schedule no longer preempts; PressureConfig drifted";
  EXPECT_EQ(prof.phase(StepPhase::kEvictPreempt).calls, preemptions);
  EXPECT_GT(prof.phase(StepPhase::kEvictPreempt).ns, 0);
  // The hot phases all fired; the hook-dispatch fast path stayed on its null branch.
  EXPECT_GT(prof.phase(StepPhase::kSchedule).calls, 0);
  EXPECT_GT(prof.phase(StepPhase::kAllocate).calls, 0);
  EXPECT_GT(prof.phase(StepPhase::kGpuSim).calls, 0);
  EXPECT_GT(prof.phase(StepPhase::kCommit).calls, 0);
}

// Eviction without preemption (sequential requests churning the prefix cache) must NOT be
// charged to kEvictPreempt: allocation-driven cache eviction is allocate work.
TEST(StepProfilerEngine, CacheEvictionWithoutPreemptStaysOutOfEvictPreempt) {
  StepProfiler prof;
  Engine engine(PressureConfig());
  engine.set_step_profiler(&prof);
  // One request at a time: no victim to preempt, but each new prompt (distinct token base)
  // must evict the previous request's cached pages from the undersized pool.
  for (int i = 0; i < 6; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96, /*base=*/1000 * (i + 1)), 16, engine.now()));
    engine.RunToCompletion();
  }
  EXPECT_EQ(TotalPreemptions(engine.metrics()), 0);
  EXPECT_EQ(prof.phase(StepPhase::kEvictPreempt).calls, 0);
  EXPECT_EQ(prof.phase(StepPhase::kEvictPreempt).ns, 0);
  EXPECT_GT(prof.phase(StepPhase::kAllocate).calls, 0);
  engine.kv().CheckConsistency();
}

}  // namespace
}  // namespace jenga
