file(REMOVE_RECURSE
  "libjenga_baseline.a"
)
