#include <gtest/gtest.h>

#include "src/baseline/page_scheme.h"
#include "src/baseline/smartspec.h"
#include "src/engine/kv_manager.h"
#include "src/model/model_zoo.h"

namespace jenga {
namespace {

TEST(SmartSpecSplit, ConservesPool) {
  const PoolSplit split = SmartSpecSplit(Llama3_70B_Fp8(), Llama32_1B(), 12345678);
  EXPECT_EQ(split.target_bytes + split.draft_bytes, 12345678);
  EXPECT_GT(split.target_bytes, split.draft_bytes);
}

TEST(SmartSpecSplit, EqualModelsSplitEvenly) {
  const PoolSplit split = SmartSpecSplit(Llama31_8B(), Llama31_8B(), 1000);
  EXPECT_EQ(split.target_bytes, 500);
  EXPECT_EQ(split.draft_bytes, 500);
}

TEST(SmartSpecSplit, ProportionalToTokenSizes) {
  // 70B fp8: 80 × 2048 = 163840 B/token; 1B: 16 × 2048 = 32768 → 5:1.
  const PoolSplit split = SmartSpecSplit(Llama3_70B_Fp8(), Llama32_1B(), 600);
  EXPECT_EQ(split.target_bytes, 500);
  EXPECT_EQ(split.draft_bytes, 100);
}

TEST(PageSchemes, JambaMatchesPaperNumbers) {
  const KvSpec spec = MakeJengaSpec(Jamba52B_Fp8(), 16, false);
  const auto analyses = AnalyzePageSchemes(spec, /*avg_request_tokens=*/1085);
  ASSERT_EQ(analyses.size(), 3u);
  const PageSchemeAnalysis& gcd = analyses[0];
  const PageSchemeAnalysis& max = analyses[1];
  const PageSchemeAnalysis& lcm = analyses[2];
  EXPECT_EQ(gcd.scheme, "GCD");
  EXPECT_EQ(max.scheme, "MAX");
  EXPECT_EQ(lcm.scheme, "LCM");
  // §4.4: MAX-page Jamba needs 1344 tokens per self-attention page.
  EXPECT_EQ(max.worst_tokens_per_page, 1344);
  // A 1085-token request wastes the tail of its single 1344-token page.
  EXPECT_NEAR(max.internal_frag_fraction, 1.0 - 1085.0 / 1344.0, 1e-9);
  // GCD pays the kernel penalty; the others do not.
  EXPECT_LT(gcd.kernel_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(max.kernel_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(lcm.kernel_efficiency, 1.0);
  // LCM keeps the native 16-token pages.
  EXPECT_EQ(lcm.worst_tokens_per_page, 16);
}

TEST(PageSchemes, HomogeneousModelHasNoPathologies) {
  const KvSpec spec = MakeJengaSpec(Llama31_8B(), 16, false);
  for (const PageSchemeAnalysis& a : AnalyzePageSchemes(spec, 1085)) {
    // One group → GCD == MAX == LCM == the native page; no kernel penalty anywhere.
    EXPECT_DOUBLE_EQ(a.kernel_efficiency, 1.0);
    EXPECT_EQ(a.compatible_page_bytes, spec.groups[0].page_bytes);
  }
}

TEST(PageSchemes, GcdNeverFragments) {
  for (const ModelConfig& model : {Gemma2_27B(), Llama32_11B_Vision(), Jamba52B_Fp8()}) {
    const auto analyses = AnalyzePageSchemes(MakeJengaSpec(model, 16, true), 2048);
    EXPECT_DOUBLE_EQ(analyses[0].internal_frag_fraction, 0.0) << model.name;
  }
}

TEST(PageSchemesDeath, RejectsNonPositiveRequestLength) {
  const KvSpec spec = MakeJengaSpec(Llama31_8B(), 16, false);
  EXPECT_DEATH((void)AnalyzePageSchemes(spec, 0), "");
}

}  // namespace
}  // namespace jenga
