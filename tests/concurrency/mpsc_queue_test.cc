// MpscQueue unit tests: bounded capacity, per-producer FIFO under real contention, and the
// drain-after-close shutdown contract. The multi-threaded cases run under the tsan preset
// (scripts/check.sh) as well as plain tier 1.

#include "src/common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace jenga {
namespace {

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(1000).capacity(), 1024u);
}

TEST(MpscQueueTest, BoundedCapacityTryPushFailsWhenFull) {
  MpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v)) << i;
  }
  int extra = 99;
  EXPECT_FALSE(queue.TryPush(extra));
  EXPECT_EQ(extra, 99);  // Untouched on failure.
  // Popping one cell re-arms it for exactly one more push.
  EXPECT_EQ(queue.TryPop().value(), 0);
  EXPECT_TRUE(queue.TryPush(extra));
  EXPECT_FALSE(queue.TryPush(extra));
}

TEST(MpscQueueTest, SingleProducerFifo) {
  MpscQueue<int> queue(64);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(queue.TryPop().value(), i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(MpscQueueTest, MoveOnlyValues) {
  MpscQueue<std::unique_ptr<int>> queue(4);
  EXPECT_TRUE(queue.Push(std::make_unique<int>(7)));
  auto popped = queue.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 7);
}

TEST(MpscQueueTest, DrainAfterClose) {
  MpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  queue.Close();
  int v = 42;
  EXPECT_FALSE(queue.TryPush(v));
  EXPECT_FALSE(queue.Push(v));
  // Everything accepted before Close() remains poppable, in order.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.TryPop().value(), i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(MpscQueueTest, PerProducerFifoUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  // Small capacity on purpose: producers must block (Push spins) and interleave with the
  // consumer, exercising the full/rearm transitions.
  MpscQueue<std::pair<int, int>> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int total = 0;
  while (total < kProducers * kPerProducer) {
    if (auto item = queue.TryPop()) {
      ASSERT_EQ(item->second, next_expected[static_cast<size_t>(item->first)])
          << "per-producer FIFO violated for producer " << item->first;
      next_expected[static_cast<size_t>(item->first)] += 1;
      ++total;
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_FALSE(queue.TryPop().has_value());
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[static_cast<size_t>(p)], kPerProducer);
  }
}

TEST(MpscQueueTest, BlockingPushUnblocksAsConsumerDrains) {
  MpscQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(queue.Push(i));
      pushed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  int seen = 0;
  while (seen < 200) {
    if (auto item = queue.TryPop()) {
      EXPECT_EQ(*item, seen);
      ++seen;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 200);
}

TEST(MpscQueueTest, CloseUnblocksWaitingProducer) {
  MpscQueue<int> queue(2);
  int a = 1;
  int b = 2;
  ASSERT_TRUE(queue.TryPush(a));
  ASSERT_TRUE(queue.TryPush(b));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(3));  // Full; must return false once closed.
    returned.store(true);
  });
  queue.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The two accepted values still drain.
  EXPECT_EQ(queue.TryPop().value(), 1);
  EXPECT_EQ(queue.TryPop().value(), 2);
}

}  // namespace
}  // namespace jenga
