#include "src/offload/host_pool.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

HostSwapSet MakeSet(int64_t bytes, uint64_t fingerprint = 0) {
  HostSwapSet set;
  set.bytes = bytes;
  set.tokens = bytes / 100;
  set.resident_bytes = bytes;
  set.fingerprints = {fingerprint};
  return set;
}

HostCachePage MakePage(int64_t bytes, int64_t prefix_length = 16) {
  HostCachePage page;
  page.bytes = bytes;
  page.prefix_length = prefix_length;
  return page;
}

HostPool::PageKey Key(BlockHash hash) { return {/*manager=*/0, /*group=*/0, hash}; }

TEST(HostPool, PutFindEraseRoundTrip) {
  HostPool pool(1000);
  EXPECT_TRUE(pool.PutSwapSet(7, MakeSet(400, 0xABCD)));
  EXPECT_TRUE(pool.PutPage(Key(42), MakePage(100)));
  EXPECT_EQ(pool.used_bytes(), 500);
  ASSERT_NE(pool.FindSwapSet(7), nullptr);
  EXPECT_EQ(pool.FindSwapSet(7)->fingerprints[0], 0xABCDu);
  ASSERT_NE(pool.FindPage(Key(42)), nullptr);
  EXPECT_EQ(pool.FindPage(Key(42))->bytes, 100);
  EXPECT_TRUE(pool.EraseSwapSet(7));
  EXPECT_TRUE(pool.ErasePage(Key(42)));
  EXPECT_EQ(pool.used_bytes(), 0);
  // Double-erase reports the entry as already gone.
  EXPECT_FALSE(pool.EraseSwapSet(7));
  EXPECT_FALSE(pool.ErasePage(Key(42)));
}

TEST(HostPool, KeysAreScopedByManagerAndGroup) {
  HostPool pool(1000);
  EXPECT_TRUE(pool.PutPage({0, 0, 5}, MakePage(10, 16)));
  EXPECT_TRUE(pool.PutPage({0, 1, 5}, MakePage(20, 16)));
  EXPECT_TRUE(pool.PutPage({1, 0, 5}, MakePage(30, 16)));
  EXPECT_EQ(pool.num_pages(), 3);
  EXPECT_EQ(pool.FindPage({0, 0, 5})->bytes, 10);
  EXPECT_EQ(pool.FindPage({0, 1, 5})->bytes, 20);
  EXPECT_EQ(pool.FindPage({1, 0, 5})->bytes, 30);
}

TEST(HostPool, EvictsOldestFirstUnderPressure) {
  HostPool pool(300);
  EXPECT_TRUE(pool.PutPage(Key(1), MakePage(100)));
  EXPECT_TRUE(pool.PutPage(Key(2), MakePage(100)));
  EXPECT_TRUE(pool.PutPage(Key(3), MakePage(100)));
  // A fourth page displaces exactly the oldest entry.
  EXPECT_TRUE(pool.PutPage(Key(4), MakePage(100)));
  EXPECT_EQ(pool.FindPage(Key(1)), nullptr);
  EXPECT_NE(pool.FindPage(Key(2)), nullptr);
  EXPECT_NE(pool.FindPage(Key(3)), nullptr);
  EXPECT_NE(pool.FindPage(Key(4)), nullptr);
  EXPECT_EQ(pool.pages_evicted(), 1);
  EXPECT_EQ(pool.bytes_evicted(), 100);
}

TEST(HostPool, ReplacingAnEntryRefreshesItsLruPosition) {
  HostPool pool(300);
  EXPECT_TRUE(pool.PutPage(Key(1), MakePage(100)));
  EXPECT_TRUE(pool.PutPage(Key(2), MakePage(100)));
  EXPECT_TRUE(pool.PutPage(Key(3), MakePage(100)));
  // Re-put of key 1 makes it the newest; pressure now lands on key 2.
  EXPECT_TRUE(pool.PutPage(Key(1), MakePage(100)));
  EXPECT_TRUE(pool.PutPage(Key(4), MakePage(100)));
  EXPECT_NE(pool.FindPage(Key(1)), nullptr);
  EXPECT_EQ(pool.FindPage(Key(2)), nullptr);
}

TEST(HostPool, SetsAndPagesCompeteForTheSameBytes) {
  HostPool pool(500);
  EXPECT_TRUE(pool.PutPage(Key(1), MakePage(200)));
  EXPECT_TRUE(pool.PutSwapSet(9, MakeSet(400)));
  // The set displaced the older page.
  EXPECT_EQ(pool.FindPage(Key(1)), nullptr);
  EXPECT_NE(pool.FindSwapSet(9), nullptr);
  EXPECT_EQ(pool.used_bytes(), 400);
  // And a newer large page displaces the set.
  EXPECT_TRUE(pool.PutPage(Key(2), MakePage(300)));
  EXPECT_EQ(pool.FindSwapSet(9), nullptr);
  EXPECT_EQ(pool.sets_evicted(), 1);
}

TEST(HostPool, RejectsEntriesLargerThanCapacity) {
  HostPool pool(100);
  EXPECT_TRUE(pool.PutPage(Key(1), MakePage(60)));
  EXPECT_FALSE(pool.PutSwapSet(3, MakeSet(101)));
  EXPECT_FALSE(pool.PutPage(Key(2), MakePage(101)));
  EXPECT_EQ(pool.rejected_inserts(), 2);
  // A rejected insert disturbs nothing.
  EXPECT_NE(pool.FindPage(Key(1)), nullptr);
  EXPECT_EQ(pool.used_bytes(), 60);
}

TEST(HostPool, ZeroCapacityAcceptsOnlyZeroByteEntries) {
  HostPool pool(0);
  EXPECT_FALSE(pool.PutPage(Key(1), MakePage(1)));
  EXPECT_TRUE(pool.PutSwapSet(1, MakeSet(0)));
  EXPECT_EQ(pool.used_bytes(), 0);
}

}  // namespace
}  // namespace jenga
