#include "src/cluster/replica_supervisor.h"

#include "src/common/check.h"

namespace jenga {

ReplicaSupervisor::ReplicaSupervisor(int num_replicas)
    : stall_until_(static_cast<size_t>(num_replicas), 0) {
  JENGA_CHECK_GT(num_replicas, 0);
  alive_.reserve(static_cast<size_t>(num_replicas));
  for (int i = 0; i < num_replicas; ++i) {
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
  }
}

int ReplicaSupervisor::num_alive() const {
  int alive = 0;
  for (const auto& flag : alive_) {
    alive += flag->load(std::memory_order_acquire) ? 1 : 0;
  }
  return alive;
}

int ReplicaSupervisor::FirstAlive() const {
  for (int i = 0; i < num_replicas(); ++i) {
    if (alive(i)) {
      return i;
    }
  }
  return -1;
}

Request ReplicaSupervisor::ReviveForReroute(const Request& dead) {
  Request revived =
      MakeRequest(dead.id, dead.prompt, dead.output_len, dead.arrival_time);
  revived.deadline = dead.deadline;
  return revived;
}

}  // namespace jenga
