#include "src/cluster/prefix_index.h"

#include "src/common/check.h"

namespace jenga {

ClusterPrefixIndex::ClusterPrefixIndex(int num_replicas, int routing_group)
    : routing_group_(routing_group) {
  JENGA_CHECK_GT(num_replicas, 0);
  replicas_.reserve(static_cast<size_t>(num_replicas));
  feeds_.reserve(static_cast<size_t>(num_replicas));
  for (int i = 0; i < num_replicas; ++i) {
    replicas_.push_back(std::make_unique<ReplicaSummary>());
    feeds_.push_back(std::make_unique<Feed>(this, i));
  }
}

CacheResidencySink* ClusterPrefixIndex::feed(int replica) {
  return feeds_[static_cast<size_t>(replica)].get();
}

void ClusterPrefixIndex::Feed::OnHashResident(int group_index, BlockHash hash) {
  if (group_index != index_->routing_group_) {
    return;
  }
  ReplicaSummary& summary = *index_->replicas_[static_cast<size_t>(replica_)];
  std::lock_guard<std::mutex> lock(summary.mu);
  summary.hashes.insert(hash);
}

void ClusterPrefixIndex::Feed::OnHashNonResident(int group_index, BlockHash hash) {
  if (group_index != index_->routing_group_) {
    return;
  }
  ReplicaSummary& summary = *index_->replicas_[static_cast<size_t>(replica_)];
  std::lock_guard<std::mutex> lock(summary.mu);
  summary.hashes.erase(hash);
}

int64_t ClusterPrefixIndex::ResidentPrefixBlocks(int replica,
                                                std::span<const BlockHash> chain) const {
  const ReplicaSummary& summary = *replicas_[static_cast<size_t>(replica)];
  std::lock_guard<std::mutex> lock(summary.mu);
  int64_t blocks = 0;
  for (const BlockHash hash : chain) {
    if (summary.hashes.find(hash) == summary.hashes.end()) {
      break;
    }
    ++blocks;
  }
  return blocks;
}

void ClusterPrefixIndex::PurgeReplica(int replica) {
  ReplicaSummary& summary = *replicas_[static_cast<size_t>(replica)];
  std::lock_guard<std::mutex> lock(summary.mu);
  summary.hashes.clear();
}

int64_t ClusterPrefixIndex::ResidentHashes(int replica) const {
  const ReplicaSummary& summary = *replicas_[static_cast<size_t>(replica)];
  std::lock_guard<std::mutex> lock(summary.mu);
  return static_cast<int64_t>(summary.hashes.size());
}

}  // namespace jenga
