#include "src/metrics/metrics.h"

#include <algorithm>

namespace jenga {

void EngineMetrics::RecordStep(double time, int64_t scheduled_tokens, int decode_batch,
                               int running, int waiting) {
  (void)waiting;
  total_steps_ += 1;
  total_scheduled_tokens_ += scheduled_tokens;
  last_time_ = time;
  decode_batch_.Add(time, static_cast<double>(decode_batch));
  running_.Add(time, static_cast<double>(running));
}

int64_t EngineMetrics::CompletedRequests() const {
  int64_t count = 0;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      ++count;
    }
  }
  return count;
}

int64_t EngineMetrics::FailedRequests() const {
  return static_cast<int64_t>(finished_.size()) - CompletedRequests();
}

int64_t EngineMetrics::CancelledRecords() const {
  int64_t count = 0;
  for (const RequestRecord& record : finished_) {
    if (record.cancelled) {
      ++count;
    }
  }
  return count;
}

int64_t EngineMetrics::TotalOutputTokens() const {
  int64_t total = 0;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      total += record.output_len;
    }
  }
  return total;
}

double EngineMetrics::RequestThroughput() const {
  if (last_time_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(CompletedRequests()) / last_time_;
}

double EngineMetrics::TokenThroughput() const {
  if (last_time_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(TotalOutputTokens()) / last_time_;
}

double EngineMetrics::MeanE2eLatency() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      summary.Add(record.E2eLatency());
    }
  }
  return summary.Mean();
}

double EngineMetrics::MeanTtft() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      summary.Add(record.Ttft());
    }
  }
  return summary.Mean();
}

double EngineMetrics::MeanTpot() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed && record.output_len > 1) {
      summary.Add(record.Tpot());
    }
  }
  return summary.Mean();
}

Summary EngineMetrics::TtftDistribution() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      summary.Add(record.Ttft());
    }
  }
  return summary;
}

Summary EngineMetrics::TpotDistribution() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed && record.output_len > 1) {
      summary.Add(record.Tpot());
    }
  }
  return summary;
}

Summary EngineMetrics::E2eDistribution() const {
  Summary summary;
  for (const RequestRecord& record : finished_) {
    if (!record.failed) {
      summary.Add(record.E2eLatency());
    }
  }
  return summary;
}

double EngineMetrics::TtftPercentile(double p) const {
  const Summary summary = TtftDistribution();
  return summary.empty() ? 0.0 : summary.Percentile(p);
}

double EngineMetrics::TpotPercentile(double p) const {
  const Summary summary = TpotDistribution();
  return summary.empty() ? 0.0 : summary.Percentile(p);
}

}  // namespace jenga
