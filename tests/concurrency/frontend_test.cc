// ServingFrontend semantics, mostly in the deterministic RunUntilIdle mode: submit→finish
// lifecycle and stream timestamps, cancel-while-queued (the annihilation path), engine-side
// cancel, deadline expiry, rejection after Shutdown, bounded TrySubmitAsync, and one
// Start()-based test racing real client threads against the live engine loop.

#include "src/engine/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/engine/engine.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

EngineConfig SmallConfig() {
  EngineConfig config;
  config.model = TinyFullModel();
  config.gpu = TestGpu();
  config.jenga = true;
  return config;
}

TEST(FrontendTest, SubmitRunsToFinished) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(32), 12, 0.0));
  EXPECT_EQ(stream->phase.load(), StreamPhase::kQueued);
  frontend.RunUntilIdle();
  EXPECT_EQ(stream->phase.load(), StreamPhase::kFinished);
  EXPECT_EQ(stream->tokens.load(), 12);
  const auto c = frontend.counters();
  EXPECT_EQ(c.submitted, 1);
  EXPECT_EQ(c.admitted, 1);
  EXPECT_EQ(c.finished, 1);
}

TEST(FrontendTest, StreamTimestampsAreOrdered) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(32), 8, 0.0));
  frontend.RunUntilIdle();
  const double submit = stream->submit_wall.load();
  const double first = stream->first_token_wall.load();
  const double finish = stream->finish_wall.load();
  EXPECT_GE(submit, 0.0);
  EXPECT_GE(first, submit);
  EXPECT_GE(finish, first);
}

TEST(FrontendTest, CancelWhileQueuedNeverReachesEngine) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  // The cancel is enqueued BEFORE the submit, so the engine thread drains it first and the
  // submit annihilates against the pending cancel.
  frontend.CancelAsync(id);
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(32), 8, 0.0));
  frontend.RunUntilIdle();
  EXPECT_EQ(stream->phase.load(), StreamPhase::kCancelled);
  EXPECT_EQ(stream->tokens.load(), 0);
  const auto c = frontend.counters();
  EXPECT_EQ(c.cancelled_queued, 1);
  EXPECT_EQ(c.admitted, 0);
  EXPECT_EQ(frontend.engine().metrics().finished().size(), 0u);
}

TEST(FrontendTest, CancelAfterAdmissionRoutesThroughEngine) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(64), 1000, 0.0));
  frontend.RunUntilIdle();  // Runs to completion unless cancelled... so cancel first:
  // (RunUntilIdle drains everything; to observe an engine-side cancel we enqueue both ops
  // before running — the submit drains first, is admitted, then the cancel hits live_.)
  EXPECT_EQ(stream->phase.load(), StreamPhase::kFinished);

  const RequestId id2 = frontend.NextRequestId();
  StreamHandle s2 = frontend.SubmitAsync(MakeRequest(id2, TextPrompt(64), 1000, 0.0));
  frontend.CancelAsync(id2);
  frontend.RunUntilIdle();
  EXPECT_EQ(s2->phase.load(), StreamPhase::kCancelled);
  const auto c = frontend.counters();
  EXPECT_EQ(c.admitted, 2);
  EXPECT_EQ(c.cancelled, 1);
  EXPECT_EQ(c.cancelled_queued, 0);
}

TEST(FrontendTest, CancelUnknownIdIsNoOpAfterDrain) {
  ServingFrontend frontend(SmallConfig());
  frontend.CancelAsync(777);  // No submit ever arrives; parks in pending_cancels_.
  const RequestId id = frontend.NextRequestId();
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(16), 4, 0.0));
  frontend.RunUntilIdle();
  EXPECT_EQ(stream->phase.load(), StreamPhase::kFinished);
  EXPECT_EQ(frontend.counters().cancelled_queued, 0);
}

TEST(FrontendTest, LateCancelForFinishedRequestIsNoOp) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, TextPrompt(16), 4, 0.0));
  frontend.RunUntilIdle();
  EXPECT_EQ(stream->phase.load(), StreamPhase::kFinished);
  frontend.CancelAsync(id);  // Retired: must not poison pending_cancels_.
  const RequestId id2 = id;  // Same id resubmitted would be a caller bug; instead check that
  (void)id2;                 // a fresh request still completes and nothing was cancelled.
  const RequestId id3 = frontend.NextRequestId();
  StreamHandle s3 = frontend.SubmitAsync(MakeRequest(id3, TextPrompt(16), 4, 0.0));
  frontend.RunUntilIdle();
  EXPECT_EQ(s3->phase.load(), StreamPhase::kFinished);
  EXPECT_EQ(frontend.counters().cancelled, 0);
  EXPECT_EQ(frontend.counters().cancelled_queued, 0);
}

TEST(FrontendTest, DeadlineExpiryBecomesCancelled) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  Request r = MakeRequest(id, TextPrompt(64), 100000, 0.0);
  r.deadline = 1e-9;  // Expires essentially immediately in sim time.
  StreamHandle stream = frontend.SubmitAsync(std::move(r));
  frontend.RunUntilIdle();
  EXPECT_EQ(stream->phase.load(), StreamPhase::kCancelled);
  EXPECT_EQ(frontend.counters().cancelled, 1);
}

TEST(FrontendTest, SubmitAfterShutdownIsRejected) {
  ServingFrontend frontend(SmallConfig());
  const RequestId id = frontend.NextRequestId();
  StreamHandle ok = frontend.SubmitAsync(MakeRequest(id, TextPrompt(16), 4, 0.0));
  frontend.Shutdown();  // Start() never called: drains inline, then closes.
  EXPECT_EQ(ok->phase.load(), StreamPhase::kFinished);
  const RequestId id2 = frontend.NextRequestId();
  StreamHandle late = frontend.SubmitAsync(MakeRequest(id2, TextPrompt(16), 4, 0.0));
  EXPECT_EQ(late->phase.load(), StreamPhase::kRejected);
  StreamHandle late_try;
  EXPECT_TRUE(frontend.TrySubmitAsync(MakeRequest(frontend.NextRequestId(), TextPrompt(16), 4, 0.0),
                                      &late_try));
  EXPECT_EQ(late_try->phase.load(), StreamPhase::kRejected);
  EXPECT_EQ(frontend.counters().rejected, 2);
}

TEST(FrontendTest, TrySubmitFailsWhenQueueFull) {
  ServingFrontend::Options options;
  options.queue_capacity = 2;
  ServingFrontend frontend(SmallConfig(), options);
  StreamHandle a;
  StreamHandle b;
  StreamHandle c;
  ASSERT_TRUE(frontend.TrySubmitAsync(MakeRequest(frontend.NextRequestId(), TextPrompt(16), 4, 0.0), &a));
  ASSERT_TRUE(frontend.TrySubmitAsync(MakeRequest(frontend.NextRequestId(), TextPrompt(16), 4, 0.0), &b));
  EXPECT_FALSE(frontend.TrySubmitAsync(MakeRequest(frontend.NextRequestId(), TextPrompt(16), 4, 0.0), &c));
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(frontend.counters().submitted, 2);
  frontend.RunUntilIdle();
  EXPECT_EQ(a->phase.load(), StreamPhase::kFinished);
  EXPECT_EQ(b->phase.load(), StreamPhase::kFinished);
}

TEST(FrontendTest, PerProducerSubmissionOrderReachesEngineInOrder) {
  ServingFrontend frontend(SmallConfig());
  std::vector<RequestId> ids;
  std::vector<StreamHandle> streams;
  for (int i = 0; i < 6; ++i) {
    const RequestId id = frontend.NextRequestId();
    ids.push_back(id);
    streams.push_back(frontend.SubmitAsync(MakeRequest(id, TextPrompt(16), 4, 0.0)));
  }
  frontend.RunUntilIdle();
  double prev = -1.0;
  for (const RequestId id : ids) {
    const Request& r = frontend.engine().request(id);
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_GE(r.first_scheduled_time, prev);
    prev = r.first_scheduled_time;
  }
  for (const StreamHandle& s : streams) {
    EXPECT_EQ(s->phase.load(), StreamPhase::kFinished);
  }
}

TEST(FrontendTest, StartedLoopServesConcurrentClients) {
  ServingFrontend::Options options;
  options.queue_capacity = 8;
  ServingFrontend frontend(SmallConfig(), options);
  frontend.Start();
  constexpr int kClients = 4;
  constexpr int kPerClient = 5;
  std::atomic<int> finished{0};
  std::atomic<int> cancelled{0};
  frontend.RunClients(kClients, [&](int client) {
    for (int i = 0; i < kPerClient; ++i) {
      const RequestId id = frontend.NextRequestId();
      StreamHandle stream =
          frontend.SubmitAsync(MakeRequest(id, TextPrompt(16 + client * 8), 4 + i, 0.0));
      if (i % 3 == 2) {
        frontend.CancelAsync(id);  // Races the engine: queued, running, or finished.
      }
      while (!stream->Done()) {
        std::this_thread::yield();
      }
      const StreamPhase phase = stream->phase.load();
      if (phase == StreamPhase::kFinished) {
        finished.fetch_add(1);
      } else {
        ASSERT_EQ(phase, StreamPhase::kCancelled);
        cancelled.fetch_add(1);
      }
    }
  });
  frontend.Shutdown();
  const auto c = frontend.counters();
  EXPECT_EQ(c.submitted, kClients * kPerClient);
  EXPECT_EQ(finished.load() + cancelled.load(), kClients * kPerClient);
  EXPECT_EQ(c.finished, finished.load());
  EXPECT_EQ(c.cancelled + c.cancelled_queued, cancelled.load());
  EXPECT_EQ(c.admitted, c.finished + c.cancelled + c.failed);
}

TEST(FrontendTest, ShutdownDrainsAcceptedWork) {
  ServingFrontend frontend(SmallConfig());
  frontend.Start();
  std::vector<StreamHandle> streams;
  for (int i = 0; i < 8; ++i) {
    streams.push_back(
        frontend.SubmitAsync(MakeRequest(frontend.NextRequestId(), TextPrompt(24), 6, 0.0)));
  }
  frontend.Shutdown();  // Must run every accepted request to a terminal state.
  for (const StreamHandle& s : streams) {
    EXPECT_TRUE(s->Done());
    EXPECT_EQ(s->phase.load(), StreamPhase::kFinished);
  }
}

}  // namespace
}  // namespace jenga
