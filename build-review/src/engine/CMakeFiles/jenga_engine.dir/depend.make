# Empty dependencies file for jenga_engine.
# This may be replaced when dependencies are built.
