// Synthetic workload generators standing in for the paper's datasets (see DESIGN.md §2).
// Each generator reproduces the length/modality/sharing statistics the memory manager reacts
// to: MMLU-pro (short text), MMMU-pro (image-heavy multimodal), arXiv-QA (long shared-article
// contexts), the Fig. 15 long-document workload, and the Fig. 16 static/dynamic traces.

#ifndef JENGA_SRC_WORKLOAD_DATASETS_H_
#define JENGA_SRC_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/engine/request.h"

namespace jenga {

struct WorkloadItem {
  Prompt prompt;
  int64_t output_len = 0;
  // Shared-prefix equivalence class of the prompt (the article index for arXiv-QA), or -1
  // when the prompt shares no prefix with other samples. Fleet benches use it to measure
  // routing concentration: requests of one class should land on the replica that already
  // caches the class's prefix.
  int prefix_class = -1;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual WorkloadItem Sample(Rng& rng) = 0;
};

// MMLU-pro: text-only, max length 3076 (shorter than Gemma-2/Ministral windows, §7.1).
class MmluProDataset : public Dataset {
 public:
  // Output lengths default to chain-of-thought-style generations, which is what makes the
  // serving benchmark decode-bound (where batch size matters).
  explicit MmluProDataset(int64_t output_lo = 256, int64_t output_hi = 1024)
      : output_lo_(output_lo), output_hi_(output_hi) {}
  [[nodiscard]] const char* name() const override { return "mmlu-pro"; }
  [[nodiscard]] WorkloadItem Sample(Rng& rng) override;

 private:
  int64_t output_lo_;
  int64_t output_hi_;
};

// MMMU-pro: ~43 text + ~6193 image tokens per request on average (§3.2), built from
// `tokens_per_image`-sized tiles of the serving model's vision encoder.
class MmmuProDataset : public Dataset {
 public:
  explicit MmmuProDataset(int tokens_per_image, int64_t output_lo = 128, int64_t output_hi = 512);
  [[nodiscard]] const char* name() const override { return "mmmu-pro"; }
  [[nodiscard]] WorkloadItem Sample(Rng& rng) override;

 private:
  int tokens_per_image_;
  int64_t output_lo_;
  int64_t output_hi_;
};

// arXiv-QA: questions over a pool of long articles; requests about the same article share its
// token prefix, which is what prefix caching exploits (Fig. 17).
class ArxivQaDataset : public Dataset {
 public:
  // Articles are generated once (seeded) with lengths uniform in [min_len, max_len].
  ArxivQaDataset(int num_articles, int64_t min_article_len, int64_t max_article_len,
                 uint64_t seed, int64_t output_lo = 128, int64_t output_hi = 384);
  [[nodiscard]] const char* name() const override { return "arxiv-qa"; }
  // Samples a question about a uniformly random article.
  [[nodiscard]] WorkloadItem Sample(Rng& rng) override;
  // Samples a question about a specific article (round-robin sweeps in benches).
  [[nodiscard]] WorkloadItem SampleForArticle(int article, Rng& rng);
  [[nodiscard]] int num_articles() const { return static_cast<int>(articles_.size()); }
  [[nodiscard]] int64_t article_len(int article) const {
    return static_cast<int64_t>(articles_[static_cast<size_t>(article)].size());
  }

 private:
  std::vector<std::vector<int32_t>> articles_;
  int64_t output_lo_;
  int64_t output_hi_;
};

// Fig. 15's simulated workload: input length uniform in [55k, 110k], output in [50, 100].
class LongDocDataset : public Dataset {
 public:
  [[nodiscard]] const char* name() const override { return "long-doc"; }
  [[nodiscard]] WorkloadItem Sample(Rng& rng) override;
};

// ShareGPT-like conversational lengths (mean ≈ 1085 tokens, §4.4).
class ShareGptDataset : public Dataset {
 public:
  [[nodiscard]] const char* name() const override { return "sharegpt"; }
  [[nodiscard]] WorkloadItem Sample(Rng& rng) override;
};

// --- Request-stream construction ---

// All requests arrive at t = 0 (throughput benches).
[[nodiscard]] std::vector<Request> GenerateBatch(Dataset& dataset, int count, Rng& rng,
                                                 RequestId first_id = 0);

// Poisson arrivals at `rate` requests/second (latency benches, Fig. 14).
[[nodiscard]] std::vector<Request> GeneratePoisson(Dataset& dataset, int count, double rate,
                                                   Rng& rng, RequestId first_id = 0);

// Fig. 16 traces for the Ministral fragmentation analysis. The static trace draws request
// lengths from one fixed distribution; the dynamic trace ramps the mean length over the trace
// so the self-attention/sliding-window memory split must adapt.
[[nodiscard]] std::vector<Request> StaticLongTrace(int count, double rate, Rng& rng);
[[nodiscard]] std::vector<Request> DynamicLongTrace(int count, double rate, Rng& rng);

}  // namespace jenga

#endif  // JENGA_SRC_WORKLOAD_DATASETS_H_
