# Empty compiler generated dependencies file for jenga_metrics.
# This may be replaced when dependencies are built.
