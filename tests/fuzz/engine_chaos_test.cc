// Chaos tier: the seeded fuzzer with the fault-injection layer armed (ISSUE 4 tentpole).
//
// Each chaos case starts from the same seed-derived schedule as engine_fuzz_test, then layers
// on a randomized fault plan (PCIe transfer errors and timeouts, host-pool allocation
// failures and forced shrinks, GPU step faults, elastic pool_grow/pool_shrink_drain/
// repartition_commit sites), per-request deadlines, mid-run CancelRequest events at fixed
// step indices, (sometimes) the admission shed gate, and (sometimes, ISSUE 9) an elastic arm:
// a net-zero transient pool resize, a mid-run repartition, and a pressure governor on Engine
// combinations, or a reversed draft/target split shift on manual-split spec combinations.
// The oracle checks what must survive arbitrary injected failure:
//
//   - the AllocatorAuditor stays green after every step — no recovery path may leak or
//     double-book a page, on any allocator or on the host pool;
//   - the run converges and every submitted request finishes exactly once — faults may slow
//     requests down or fail them, never wedge or duplicate them — including across every
//     repartition (quiesced requests re-admit, none are lost or aborted);
//   - the resize ledger balances after every step: pool_grow_pages - pool_shrink_pages
//     equals the actual pool-page delta within each repartition epoch (a committed
//     repartition rebuilds the pool and starts a fresh epoch);
//   - cancelled records are also failed records, and the cancellation ledger balances:
//     cancelled_requests == successful explicit cancels + shed_requests +
//     deadline_expirations;
//   - degradation is one-way and clean: degraded_mode_transitions <= 1, and a degraded
//     engine has fully drained its host pool (zero bytes, zero swap sets);
//   - fault/recovery counters are monotone and mutually consistent, and identically zero
//     when the drawn plan arms nothing;
//   - a second run of the same schedule (same fault seed) produces a byte-identical outcome
//     signature including all fault counters — the chaos determinism differential.
//
// On failure the test prints the seed, a minimized schedule (cancel events are remapped as
// requests are dropped), and a one-line repro command. Env overrides:
//   JENGA_CHAOS_SCHEDULES=<n>  schedules per engine/tier combination (default 200)
//   JENGA_FUZZ_SEED=<seed>     run exactly one schedule from this seed
//   JENGA_FAULT_PLAN=<plan>    replace the drawn fault plan (see FaultPlan::Parse)
//   JENGA_FAULT_SEED=<seed>    replace the drawn fault seed
//   JENGA_CHAOS_ELASTIC=1      arm the elastic events on every schedule (pressure-chaos
//                              stage; also required when replaying a seed drawn under it)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/elastic/memory_governor.h"
#include "src/fault/fault_injector.h"
#include "tests/fuzz/fuzz_harness.h"

namespace jenga {
namespace {

// Arm the deadline-heap cross-check for every schedule (chaos schedules put deadlines on
// ~half their requests, including same-step multi-expiry — the heap's rescan fallback).
// Must run before main: the enable flag latches on the first engine step.
const bool g_arm_deadline_audit = [] {
  setenv("JENGA_CHECK_DEADLINES", "1", /*overwrite=*/0);
  return true;
}();

// ---------------------------------------------------------------------------------------
// Chaos schedule: base schedule + fault plan + deadlines + cancels + shed gate.

FuzzSchedule DrawChaosSchedule(uint64_t seed, bool spec_engine, bool offload) {
  FuzzSchedule s = DrawFuzzSchedule(seed, spec_engine, offload);
  // A separate stream so the base schedule stays identical to the plain fuzz tier's.
  Rng rng(seed ^ 0xC4A0C4A0C4A0ull);
  rng.NextU64();

  std::ostringstream plan;
  const auto arm = [&plan](const char* entry) {
    if (plan.tellp() > 0) {
      plan << ",";
    }
    plan << entry;
  };
  char buf[64];
  if (offload) {
    if (rng.Bernoulli(0.5)) {
      std::snprintf(buf, sizeof(buf), "pcie_d2h:p=%.3f", rng.UniformDouble(0.02, 0.3));
      arm(buf);
    }
    if (rng.Bernoulli(0.5)) {
      std::snprintf(buf, sizeof(buf), "pcie_h2d:p=%.3f", rng.UniformDouble(0.02, 0.3));
      arm(buf);
    }
    if (rng.Bernoulli(0.3)) {
      std::snprintf(buf, sizeof(buf), "pcie_timeout:p=%.3f", rng.UniformDouble(0.02, 0.15));
      arm(buf);
    }
    if (rng.Bernoulli(0.4)) {
      std::snprintf(buf, sizeof(buf), "host_alloc:p=%.3f", rng.UniformDouble(0.05, 0.5));
      arm(buf);
    }
    if (rng.Bernoulli(0.25)) {
      std::snprintf(buf, sizeof(buf), "host_shrink:every=%d",
                    static_cast<int>(rng.UniformInt(16, 64)));
      arm(buf);
    }
  }
  if (rng.Bernoulli(0.5)) {
    // Keep the per-step fire rate low enough that expected forward progress stays positive;
    // a fired step fault voids that step's decode commit, so p near 1 would never converge.
    std::snprintf(buf, sizeof(buf), "gpu_step:p=%.3f", rng.UniformDouble(0.02, 0.2));
    arm(buf);
  }

  // Elastic arm (ISSUE 9). The Bernoulli is drawn unconditionally so forcing the arm via
  // JENGA_CHAOS_ELASTIC=1 (the check.sh pressure-chaos stage) keeps the rest of the stream —
  // and therefore seed replay under the same env — byte-identical.
  const bool draw_elastic = rng.Bernoulli(0.5);
  if (draw_elastic || FuzzEnvInt("JENGA_CHAOS_ELASTIC", 0) != 0) {
    FuzzElasticSpec& e = s.elastic;
    if (!spec_engine) {
      e.armed = true;
      e.delta_pages = static_cast<int32_t>(rng.UniformInt(1, 6));
      e.grow_step = static_cast<int>(rng.UniformInt(0, 60));
      e.shrink_step = e.grow_step + static_cast<int>(rng.UniformInt(1, 40));
      if (rng.Bernoulli(0.5)) {
        e.repartition_step = static_cast<int>(rng.UniformInt(0, 80));
      }
      if (rng.Bernoulli(0.5)) {
        e.governor = true;
        e.high_watermark = rng.UniformDouble(0.70, 0.95);
        e.low_watermark = e.high_watermark - rng.UniformDouble(0.10, 0.30);
        e.cooldown_steps = static_cast<int>(rng.UniformInt(0, 8));
      }
    } else if (s.strategy == SpecStrategy::kVllmManual) {
      e.armed = true;
      e.shift_from = static_cast<int>(rng.UniformInt(0, 1));
      e.shift_step = static_cast<int>(rng.UniformInt(0, 60));
      e.shift_back_step = e.shift_step + static_cast<int>(rng.UniformInt(1, 40));
      // Integer page-size rounding can leave the reversed shift a page short on either
      // pool; double the fit-alone sizing so the residual can never wedge the run.
      s.pool_bytes *= 2;
    }
    if (e.armed) {
      // Arm the transition sites so a fair share of the driven resizes/repartitions roll
      // back; the sites sit before any mutation, so a fire means "nothing changed".
      std::snprintf(buf, sizeof(buf), "pool_grow:p=%.3f", rng.UniformDouble(0.05, 0.3));
      arm(buf);
      std::snprintf(buf, sizeof(buf), "pool_shrink_drain:p=%.3f",
                    rng.UniformDouble(0.05, 0.3));
      arm(buf);
      std::snprintf(buf, sizeof(buf), "repartition_commit:p=%.3f",
                    rng.UniformDouble(0.1, 0.5));
      arm(buf);
    }
  }
  JENGA_CHECK(FaultPlan::Parse(plan.str(), &s.fault_plan).ok());
  s.fault_seed = rng.NextU64() | 1;

  if (rng.Bernoulli(0.3)) {
    s.shed_after_blocked_steps = static_cast<int>(rng.UniformInt(4, 16));
    s.shed_occupancy_watermark = rng.UniformDouble(0.5, 0.95);
  }
  for (FuzzRequestSpec& r : s.requests) {
    if (rng.Bernoulli(0.15)) {
      // Half near-immediate (exercises expiry in every state), half generous.
      r.deadline = rng.Bernoulli(0.5) ? rng.UniformDouble(0.0, 0.01)
                                      : rng.UniformDouble(0.05, 1.0);
    }
  }
  const int num_cancels = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < num_cancels; ++i) {
    FuzzCancelSpec c;
    c.step = static_cast<int>(rng.UniformInt(0, 200));
    c.request_index = static_cast<int>(rng.UniformInt(
        0, static_cast<int64_t>(s.requests.size()) - 1));
    s.cancels.push_back(c);
  }

  // Operator replay overrides (same env contract as the engine's own FaultConfigFromEnv).
  if (const char* env_plan = std::getenv("JENGA_FAULT_PLAN")) {
    FaultPlan parsed;
    JENGA_CHECK(FaultPlan::Parse(env_plan, &parsed).ok()) << env_plan;
    s.fault_plan = parsed;
  }
  if (const char* env_seed = std::getenv("JENGA_FAULT_SEED")) {
    s.fault_seed = std::strtoull(env_seed, nullptr, 0);
  }
  return s;
}

// ---------------------------------------------------------------------------------------
// Chaos oracle

struct ChaosCounters {
  int64_t faults = 0;
  int64_t retries = 0;
  int64_t gpu_faults = 0;
  int64_t shed = 0;
  int64_t cancelled = 0;
  int64_t deadlines = 0;
  int64_t degraded = 0;
  double backoff = 0.0;
};

ChaosCounters SnapshotCounters(const EngineMetrics& m) {
  return ChaosCounters{m.faults_injected,  m.fault_retries,       m.gpu_step_faults,
                       m.shed_requests,    m.cancelled_requests,  m.deadline_expirations,
                       m.degraded_mode_transitions, m.fault_backoff_time};
}

// Runs one chaos schedule to completion (auditing every step when asked), applying the
// schedule's cancel events at their step indices. Returns the first violation (empty string
// = green); appends the outcome signature — including fault counters — to `signature`, and
// the total injector fires to `*fires` (both optional).
std::string RunChaosSchedule(const FuzzSchedule& s, bool with_audit, std::string* signature,
                             int64_t* fires) {
  std::unique_ptr<FuzzHarness> harness = MakeFuzzHarness(s);
  AllocatorAuditor auditor;
  if (with_audit) {
    harness->AttachAudit(&auditor);
    const auto seeded = auditor.Audit();
    if (!seeded.empty()) {
      return "auditor not green after attach: " + seeded.front();
    }
  }

  // --- Elastic chaos wiring (no-ops when the arm is off) ---
  Engine* elastic_engine = s.elastic.armed ? harness->ElasticEngine() : nullptr;
  SpecDecodeEngine* elastic_spec = s.elastic.armed ? harness->ElasticSpecEngine() : nullptr;
  std::unique_ptr<MemoryGovernor> governor;
  if (s.elastic.governor && elastic_engine != nullptr) {
    GovernorConfig gc;
    gc.high_watermark = s.elastic.high_watermark;
    gc.low_watermark = s.elastic.low_watermark;
    gc.cooldown_steps = s.elastic.cooldown_steps;
    governor = std::make_unique<MemoryGovernor>(gc);
    governor->AttachTo(*elastic_engine);
  }
  int32_t outstanding_grow = 0;  // Pages grown but not yet shrunk back (net-zero invariant).
  int64_t shifted_bytes = 0;     // Spec split bytes moved but not yet reversed.
  // Resize-ledger baseline for the current repartition epoch: within an epoch,
  // pool_grow_pages - pool_shrink_pages must track the actual pool-page delta exactly.
  int64_t ledger_base = 0;
  int32_t pages_base = elastic_engine != nullptr ? elastic_engine->PoolPages() : 0;

  const int n = static_cast<int>(s.requests.size());
  int64_t explicit_cancels = 0;
  ChaosCounters prev;
  int64_t steps = 0;
  // Faults stretch runs (voided steps, retry backoff), so the budget is higher than the
  // plain fuzz tier's.
  const int64_t max_steps = 60000;
  for (;;) {
    // Cancel events fire *before* the step with their index, so index 0 cancels a request
    // that has never been scheduled. Fixed step indices keep the differential deterministic.
    for (const FuzzCancelSpec& c : s.cancels) {
      if (c.step == steps && c.request_index < n) {
        explicit_cancels += harness->Cancel(static_cast<RequestId>(c.request_index)) ? 1 : 0;
      }
    }
    // Elastic events fire between steps at fixed indices, like cancels. The repartition is
    // driven here (not by the governor) so the auditor can let go of the allocator the
    // rebuild destroys and re-seed from the committed (or surviving) layout.
    if (elastic_engine != nullptr) {
      if (steps == s.elastic.repartition_step) {
        if (with_audit) {
          auditor.DetachAll();
        }
        const bool committed =
            elastic_engine->RepartitionKvPool(elastic_engine->config().model, s.pool_bytes);
        if (with_audit) {
          harness->AttachAudit(&auditor);
          const auto reseeded = auditor.Audit();
          if (!reseeded.empty()) {
            return std::string("auditor not green after repartition ") +
                   (committed ? "commit" : "rollback") + ": " + reseeded.front();
          }
        }
        if (committed) {
          outstanding_grow = 0;  // The rebuilt pool is back at the schedule's sizing.
        }
        const EngineMetrics& em = harness->Metrics();
        ledger_base = em.pool_grow_pages - em.pool_shrink_pages;
        pages_base = elastic_engine->PoolPages();
      }
      if (steps == s.elastic.grow_step) {
        outstanding_grow = elastic_engine->GrowKvPool(s.elastic.delta_pages);
      }
      if (steps >= s.elastic.shrink_step && outstanding_grow > 0) {
        // Retry until the transient pages drain back out (the tail may be pinned, and the
        // pool_shrink_drain site may roll an attempt back): the pool never ends smaller
        // than the fit-alone sizing.
        outstanding_grow -= elastic_engine->ShrinkKvPool(outstanding_grow);
      }
    }
    if (elastic_spec != nullptr && s.elastic.shift_step >= 0) {
      if (steps == s.elastic.shift_step) {
        // bytes=1 asks for one donor page (ShiftSplit rounds the ask up to a whole page).
        shifted_bytes =
            elastic_spec->ShiftSplit(s.elastic.shift_from, 1 - s.elastic.shift_from, 1);
      }
      if (steps == s.elastic.shift_back_step && shifted_bytes > 0) {
        elastic_spec->ShiftSplit(1 - s.elastic.shift_from, s.elastic.shift_from,
                                 shifted_bytes);
        shifted_bytes = 0;  // Single reversal; the doubled pool absorbs any residual.
      }
    }
    if (!harness->Step()) {
      break;
    }
    ++steps;
    if (steps > max_steps) {
      return "chaos schedule did not converge within " + std::to_string(max_steps) + " steps";
    }
    if (with_audit) {
      const auto violations = auditor.Audit();
      if (!violations.empty()) {
        std::string out = "auditor violation at step " + std::to_string(steps) + ": ";
        for (size_t i = 0; i < std::min<size_t>(violations.size(), 3); ++i) {
          out += "\n  " + violations[i];
        }
        return out;
      }
    }
    const ChaosCounters now = SnapshotCounters(harness->Metrics());
    if (now.faults < prev.faults || now.retries < prev.retries ||
        now.gpu_faults < prev.gpu_faults || now.shed < prev.shed ||
        now.cancelled < prev.cancelled || now.deadlines < prev.deadlines ||
        now.degraded < prev.degraded || now.backoff < prev.backoff) {
      return "fault counter decreased at step " + std::to_string(steps);
    }
    prev = now;
    if (elastic_engine != nullptr) {
      // Resize-ledger conservation, checked after every step: booked page deltas must equal
      // the actual pool-page delta within the current repartition epoch. (Spec combinations
      // book grow/shrink pages in per-pool page units, so the summed identity only holds on
      // the single-pool engine; the exact spec identities live in elastic_resize_test.)
      const EngineMetrics& em = harness->Metrics();
      if (em.pool_grow_pages - em.pool_shrink_pages - ledger_base !=
          elastic_engine->PoolPages() - pages_base) {
        return "resize ledger imbalance at step " + std::to_string(steps) + ": booked " +
               std::to_string(em.pool_grow_pages - em.pool_shrink_pages - ledger_base) +
               " vs actual " + std::to_string(elastic_engine->PoolPages() - pages_base);
      }
    }
  }

  // ----- End-of-run oracle -----
  const EngineMetrics& m = harness->Metrics();
  const ChaosCounters c = SnapshotCounters(m);
  if (static_cast<int>(m.finished().size()) != n) {
    return "finished " + std::to_string(m.finished().size()) + " of " + std::to_string(n) +
           " submitted requests";
  }
  std::vector<int> seen(static_cast<size_t>(n), 0);
  int64_t cancelled_records = 0;
  for (const RequestRecord& record : m.finished()) {
    if (record.id < 0 || record.id >= n) {
      return "finished record with unknown id " + std::to_string(record.id);
    }
    seen[static_cast<size_t>(record.id)] += 1;
    const std::string tag = " (req " + std::to_string(record.id) + ")";
    if (record.cancelled && !record.failed) {
      return "cancelled record not marked failed" + tag;
    }
    cancelled_records += record.cancelled ? 1 : 0;
    const FuzzRequestSpec& rs = s.requests[static_cast<size_t>(record.id)];
    if (!record.failed && record.output_len != rs.output_len) {
      return "completed with output " + std::to_string(record.output_len) + " != requested " +
             std::to_string(rs.output_len) + tag;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (seen[static_cast<size_t>(i)] != 1) {
      return "request " + std::to_string(i) + " finished " +
             std::to_string(seen[static_cast<size_t>(i)]) + " times";
    }
  }
  // The cancellation ledger must balance exactly: every cancellation is an explicit
  // CancelRequest that returned true, a shed, or a deadline expiry — nothing else.
  if (c.cancelled != explicit_cancels + c.shed + c.deadlines) {
    return "cancellation ledger imbalance: cancelled_requests=" + std::to_string(c.cancelled) +
           " explicit=" + std::to_string(explicit_cancels) + " shed=" + std::to_string(c.shed) +
           " deadline=" + std::to_string(c.deadlines);
  }
  if (cancelled_records != c.cancelled) {
    return "cancelled record count " + std::to_string(cancelled_records) +
           " != cancelled_requests counter " + std::to_string(c.cancelled);
  }
  if (s.fault_plan.empty() &&
      (c.faults != 0 || c.retries != 0 || c.gpu_faults != 0 || c.degraded != 0 ||
       c.backoff != 0.0)) {
    return "fault counters nonzero with an empty fault plan";
  }
  // The governor's ladder sheds through the same counter as the admission gate, so the
  // zero-when-disabled check only applies when neither mechanism is armed.
  const bool governor_armed = s.elastic.armed && s.elastic.governor && !s.spec_engine;
  if (s.shed_after_blocked_steps <= 0 && !governor_armed && c.shed != 0) {
    return "shed_requests nonzero with the shed gate disabled";
  }
  if (!s.elastic.armed &&
      (m.pool_grow_attempts != 0 || m.pool_shrink_attempts != 0 ||
       m.repartition_attempts != 0 || m.elastic_parked != 0 || m.elastic_shed != 0 ||
       m.ladder_activations != 0)) {
    return "elastic counters nonzero with the elastic arm disabled";
  }
  if (m.repartition_attempts != m.repartitions + m.repartition_rollbacks) {
    return "repartition ledger imbalance: attempts=" + std::to_string(m.repartition_attempts) +
           " commits=" + std::to_string(m.repartitions) +
           " rollbacks=" + std::to_string(m.repartition_rollbacks);
  }
  if (c.degraded > 1) {
    return "degraded more than once (transitions=" + std::to_string(c.degraded) + ")";
  }
  const SwapManager* swap = harness->Swap();
  if (swap != nullptr && swap->degraded()) {
    if (c.degraded != 1) {
      return "engine degraded but degraded_mode_transitions=" + std::to_string(c.degraded);
    }
    if (swap->host().used_bytes() != 0 || swap->host().num_sets() != 0) {
      return "degraded engine left host pool populated (" +
             std::to_string(swap->host().used_bytes()) + " bytes, " +
             std::to_string(swap->host().num_sets()) + " sets)";
    }
  }
  if (!s.offload && (m.swap_out_events != 0 || m.swap_stall_time != 0.0)) {
    return "swap activity with the offload tier disabled";
  }

  if (fires != nullptr) {
    *fires += c.faults;
  }
  if (signature != nullptr) {
    std::ostringstream sig;
    for (const RequestRecord& record : m.finished()) {
      char times[128];
      std::snprintf(times, sizeof(times), "%.12g/%.12g/%.12g/%.12g", record.arrival_time,
                    record.first_scheduled_time, record.first_token_time, record.finish_time);
      sig << record.id << ":" << record.prompt_len << ":" << record.output_len << ":"
          << record.cached_prefix_tokens << ":" << record.preemptions << ":" << record.failed
          << ":" << record.cancelled << ":" << times << "\n";
    }
    char backoff[32];
    std::snprintf(backoff, sizeof(backoff), "%.12g", c.backoff);
    sig << "faults=" << c.faults << " retries=" << c.retries << " gpu=" << c.gpu_faults
        << " shed=" << c.shed << " cancelled=" << c.cancelled << " deadline=" << c.deadlines
        << " degraded=" << c.degraded << " backoff=" << backoff
        << " recomputed=" << m.recomputed_tokens << " swap=" << m.swap_out_events << "/"
        << m.swap_in_events << "/" << m.swap_fallback_events << "\n";
    sig << "elastic grow=" << m.pool_grow_attempts << "/" << m.pool_grow_pages << "/"
        << m.pool_grow_rollbacks << " shrink=" << m.pool_shrink_attempts << "/"
        << m.pool_shrink_pages << "/" << m.pool_shrink_rollbacks
        << " repartition=" << m.repartition_attempts << "/" << m.repartitions << "/"
        << m.repartition_rollbacks << " parked=" << m.elastic_parked
        << " eshed=" << m.elastic_shed << " ladder=" << m.ladder_activations << "\n";
    *signature += sig.str();
  }
  return std::string();
}

// Audited run + chaos determinism differential (second, unaudited run must match, fault
// counters included).
std::string CheckChaosSchedule(const FuzzSchedule& s, int64_t* fires = nullptr) {
  std::string sig_a;
  std::string failure = RunChaosSchedule(s, /*with_audit=*/true, &sig_a, fires);
  if (!failure.empty()) {
    return failure;
  }
  std::string sig_b;
  failure = RunChaosSchedule(s, /*with_audit=*/false, &sig_b, nullptr);
  if (!failure.empty()) {
    return failure + " (second, unaudited run)";
  }
  if (sig_a != sig_b) {
    return "nondeterministic chaos outcome:\n--- audited run ---\n" + sig_a +
           "--- unaudited run ---\n" + sig_b;
  }
  return std::string();
}

// Greedy minimization. Dropping request i remaps cancel events: events aimed at i are
// removed, indices above i shift down. Also tries dropping cancel events and shrinking
// request lengths.
FuzzSchedule MinimizeChaosSchedule(FuzzSchedule s) {
  bool shrunk = true;
  int budget = 96;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t i = 0; i < s.requests.size() && s.requests.size() > 1 && budget > 0; ++i) {
      FuzzSchedule candidate = s;
      candidate.requests.erase(candidate.requests.begin() + static_cast<int64_t>(i));
      std::vector<FuzzCancelSpec> remapped;
      for (FuzzCancelSpec c : candidate.cancels) {
        if (c.request_index == static_cast<int>(i)) {
          continue;
        }
        if (c.request_index > static_cast<int>(i)) {
          c.request_index -= 1;
        }
        remapped.push_back(c);
      }
      candidate.cancels = std::move(remapped);
      --budget;
      if (!CheckChaosSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
    for (size_t i = 0; i < s.cancels.size() && budget > 0; ++i) {
      FuzzSchedule candidate = s;
      candidate.cancels.erase(candidate.cancels.begin() + static_cast<int64_t>(i));
      --budget;
      if (!CheckChaosSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
    for (size_t i = 0; i < s.requests.size() && budget > 0; ++i) {
      FuzzSchedule candidate = s;
      FuzzRequestSpec& r = candidate.requests[i];
      if (r.prompt_len < 32 && r.output_len < 4) {
        continue;
      }
      r.prompt_len = std::max<int64_t>(16, r.prompt_len / 2);
      r.output_len = std::max<int64_t>(2, r.output_len / 2);
      --budget;
      if (!CheckChaosSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
  }
  return s;
}

void RunChaosCombination(bool spec_engine, bool offload, uint64_t seed_base) {
  const std::optional<uint64_t> forced_seed = FuzzEnvSeed();
  const int64_t schedules = forced_seed ? 1 : FuzzEnvInt("JENGA_CHAOS_SCHEDULES", 200);
  int64_t total_fires = 0;
  for (int64_t i = 0; i < schedules; ++i) {
    const uint64_t seed = forced_seed ? *forced_seed : seed_base + static_cast<uint64_t>(i);
    const FuzzSchedule schedule = DrawChaosSchedule(seed, spec_engine, offload);
    if (forced_seed) {
      std::fprintf(stderr, "replaying chaos schedule:\n%s",
                   DescribeFuzzSchedule(schedule).c_str());
    }
    const std::string failure = CheckChaosSchedule(schedule, &total_fires);
    if (failure.empty()) {
      continue;
    }
    const FuzzSchedule minimized = MinimizeChaosSchedule(schedule);
    const std::string min_failure = CheckChaosSchedule(minimized);
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    FAIL() << "chaos failure with seed 0x" << std::hex << seed << std::dec << ":\n"
           << failure << "\n\noriginal schedule:\n"
           << DescribeFuzzSchedule(schedule) << "\nminimized schedule ("
           << (min_failure.empty() ? "failure did not survive minimization" : min_failure)
           << "):\n"
           << DescribeFuzzSchedule(minimized) << "\nreproduce with:\n  "
           << (FuzzEnvInt("JENGA_CHAOS_ELASTIC", 0) != 0 ? "JENGA_CHAOS_ELASTIC=1 " : "")
           << "JENGA_FUZZ_SEED=0x" << std::hex << seed << std::dec
           << " ./build/tests/engine_chaos_test --gtest_filter=" << info->test_suite_name()
           << "." << info->name();
  }
  if (!forced_seed && schedules >= 50) {
    // The tier is vacuous if the drawn plans never actually fire; over >= 50 schedules the
    // gpu_step site alone is armed with ~50% probability, so zero fires means a wiring bug.
    EXPECT_GT(total_fires, 0) << "no faults fired across " << schedules
                              << " chaos schedules — injector wiring is broken";
  }
}

// ---------------------------------------------------------------------------------------
// The four engine/tier combinations (>= 200 seeded chaos schedules each by default; the
// check.sh chaos stage runs 3000 per combination).

TEST(EngineChaos, FaultRecoveryNoOffload) {
  RunChaosCombination(/*spec_engine=*/false, /*offload=*/false, 0xC1000000ull);
}

TEST(EngineChaos, FaultRecoveryWithOffload) {
  RunChaosCombination(/*spec_engine=*/false, /*offload=*/true, 0xC2000000ull);
}

TEST(SpecDecodeChaos, FaultRecoveryNoOffload) {
  RunChaosCombination(/*spec_engine=*/true, /*offload=*/false, 0xC3000000ull);
}

TEST(SpecDecodeChaos, FaultRecoveryWithOffload) {
  RunChaosCombination(/*spec_engine=*/true, /*offload=*/true, 0xC4000000ull);
}

}  // namespace
}  // namespace jenga
