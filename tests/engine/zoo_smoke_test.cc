// Whole-zoo integration smoke: every model the paper evaluates must serve a small workload
// end-to-end under both memory managers, with allocator invariants intact throughout —
// mirroring the paper's "compatible with all models" claim (§7).

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

class ZooSmokeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSmokeTest, ServesUnderBothManagers) {
  const ModelConfig model = ModelByName(GetParam());
  for (const bool jenga : {true, false}) {
    SCOPED_TRACE(jenga ? "jenga" : "homogeneous");
    EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
    // Small, model-independent pool: big enough for the workload, small enough to exercise
    // reuse. Mamba models need room for the baseline's static reservation.
    config.pool_bytes_override = 2LL << 30;
    config.max_num_seqs_override = 8;
    config.memory_sample_every = 0;
    Engine engine(std::move(config));

    Rng rng(std::hash<std::string>{}(GetParam()));
    std::vector<Request> requests;
    if (model.vision.present) {
      MmmuProDataset dataset(model.vision.tokens_per_image, 8, 24);
      requests = GenerateBatch(dataset, 4, rng);
    } else {
      MmluProDataset dataset(8, 24);
      requests = GenerateBatch(dataset, 6, rng);
    }
    for (Request& r : requests) {
      engine.Submit(std::move(r));
    }
    engine.RunToCompletion();
    EXPECT_GT(engine.metrics().CompletedRequests(), 0);
    EXPECT_EQ(engine.metrics().FailedRequests() + engine.metrics().CompletedRequests(),
              static_cast<int64_t>(requests.size()));
    engine.kv().CheckConsistency();
  }
}

std::vector<std::string> AllZooNames() {
  std::vector<std::string> names;
  for (const ModelConfig& model : AllZooModels()) {
    names.push_back(model.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooSmokeTest, ::testing::ValuesIn(AllZooNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace jenga
