// An indexed FIFO of request ids for the scheduler queues. The engines historically kept
// `waiting_` as a deque and `running_` as a vector and located entries with std::find — an
// O(n) scan on every preempt, cancel, shed, and finish. This queue keeps the same insertion
// order (a doubly-linked list threaded through a hash map) but indexes every id, so
// membership tests and mid-queue removal are O(1) while iteration order — and therefore every
// FCFS scheduling decision — is bit-identical to the container it replaces.

#ifndef JENGA_SRC_ENGINE_REQUEST_QUEUE_H_
#define JENGA_SRC_ENGINE_REQUEST_QUEUE_H_

#include <cstddef>
#include <unordered_map>

#include "src/core/types.h"

namespace jenga {

class RequestQueue {
 public:
  void PushBack(RequestId id);
  void PushFront(RequestId id);
  // Removes `id`; check-fails unless present.
  void Erase(RequestId id);
  // Removes and returns the front; check-fails when empty.
  RequestId PopFront();

  [[nodiscard]] RequestId front() const { return head_; }
  [[nodiscard]] RequestId back() const { return tail_; }
  // Successor of `id` in queue order, kNoRequest at the end. `id` must be present.
  [[nodiscard]] RequestId Next(RequestId id) const;
  [[nodiscard]] bool Contains(RequestId id) const { return nodes_.contains(id); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    RequestId prev = kNoRequest;
    RequestId next = kNoRequest;
  };
  std::unordered_map<RequestId, Node> nodes_;
  RequestId head_ = kNoRequest;
  RequestId tail_ = kNoRequest;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_REQUEST_QUEUE_H_
