// Small integer-math helpers used throughout the allocator (gcd/lcm for compatible page sizes,
// ceiling division for block counts).

#ifndef JENGA_SRC_COMMON_MATH_UTIL_H_
#define JENGA_SRC_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <numeric>
#include <span>

#include "src/common/check.h"

namespace jenga {

// Ceiling division for non-negative integers: CeilDiv(7, 3) == 3, CeilDiv(0, 3) == 0.
[[nodiscard]] constexpr int64_t CeilDiv(int64_t numerator, int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

// Rounds `value` up to the next multiple of `multiple` (which must be positive).
[[nodiscard]] constexpr int64_t RoundUp(int64_t value, int64_t multiple) {
  return CeilDiv(value, multiple) * multiple;
}

// Rounds `value` down to the previous multiple of `multiple` (which must be positive).
[[nodiscard]] constexpr int64_t RoundDown(int64_t value, int64_t multiple) {
  return (value / multiple) * multiple;
}

// Greatest common divisor over a non-empty span of positive sizes.
[[nodiscard]] inline int64_t GcdAll(std::span<const int64_t> sizes) {
  JENGA_CHECK(!sizes.empty()) << "GcdAll requires at least one size";
  int64_t result = 0;
  for (int64_t size : sizes) {
    JENGA_CHECK_GT(size, 0) << "sizes must be positive";
    result = std::gcd(result, size);
  }
  return result;
}

// Least common multiple over a non-empty span of positive sizes. This is the compatible
// large-page size used by the LCM allocator (§4.1 of the paper). Overflow is checked because
// pathological layer-size combinations could produce huge LCMs (§4.4 notes Jamba's LCM is 84×
// its smallest page, the practical worst case).
[[nodiscard]] inline int64_t LcmAll(std::span<const int64_t> sizes) {
  JENGA_CHECK(!sizes.empty()) << "LcmAll requires at least one size";
  int64_t result = 1;
  for (int64_t size : sizes) {
    JENGA_CHECK_GT(size, 0) << "sizes must be positive";
    const int64_t g = std::gcd(result, size);
    JENGA_CHECK_LE(result / g, INT64_MAX / size) << "LCM overflow";
    result = (result / g) * size;
  }
  return result;
}

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_MATH_UTIL_H_
