// Engine-profile and pressure-path coverage: the Fig.-15 engine profiles, TGI's early-stop
// semantics, memory-fraction scaling, admission control, and Mamba's static reservation in
// homogeneous engines.

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

TEST(EngineProfiles, ProfileKnobs) {
  const EngineConfig vllm = VllmProfile(TinyFullModel(), TestGpu());
  const EngineConfig sglang = SglangProfile(TinyFullModel(), TestGpu());
  const EngineConfig tgi = TgiProfile(TinyFullModel(), TestGpu());
  const EngineConfig jenga = JengaProfile(TinyFullModel(), TestGpu());
  EXPECT_FALSE(vllm.jenga);
  EXPECT_FALSE(sglang.jenga);
  EXPECT_FALSE(tgi.jenga);
  EXPECT_TRUE(jenga.jenga);
  EXPECT_GT(sglang.memory_fraction, vllm.memory_fraction);
  EXPECT_LT(tgi.memory_fraction, vllm.memory_fraction);
  EXPECT_LT(tgi.output_fraction, 1.0);
  EXPECT_FALSE(vllm.vision_cache);
  EXPECT_TRUE(jenga.vision_cache);
}

TEST(EngineProfiles, TgiStopsEarly) {
  EngineConfig config = TgiProfile(TinyFullModel(), TestGpu());
  config.pool_bytes_override = 1 << 24;
  Engine engine(std::move(config));
  engine.Submit(MakeRequest(0, TextPrompt(64), 100, 0.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.metrics().finished().size(), 1u);
  // output_fraction 0.6 → 60 of the requested 100 tokens.
  EXPECT_EQ(engine.metrics().finished()[0].output_len, 60);
}

TEST(EngineProfiles, MemoryFractionScalesPool) {
  EngineConfig a = VllmProfile(TinyFullModel(), TestGpu());
  EngineConfig b = a;
  b.memory_fraction = 0.5;
  Engine engine_a(std::move(a));
  Engine engine_b(std::move(b));
  EXPECT_NEAR(static_cast<double>(engine_b.kv().GetMemoryStats().pool_bytes),
              0.5 * static_cast<double>(engine_a.kv().GetMemoryStats().pool_bytes),
              static_cast<double>(engine_a.kv().allocator().lcm().large_page_bytes()));
}

TEST(EngineProfiles, HomogeneousMambaReservation) {
  // Baseline engines reserve Mamba state for max_num_seqs upfront; Jenga does not.
  const ModelConfig model = TinyMambaModel();
  EngineConfig vllm = VllmProfile(model, TestGpu());
  vllm.pool_bytes_override = 1 << 24;
  vllm.max_num_seqs_override = 8;
  EngineConfig jenga = JengaProfile(model, TestGpu());
  jenga.pool_bytes_override = 1 << 24;
  jenga.max_num_seqs_override = 8;
  Engine vllm_engine(std::move(vllm));
  Engine jenga_engine(std::move(jenga));
  const int64_t reservation = StaticMambaReservationBytes(model, 8);
  EXPECT_GT(reservation, 0);
  EXPECT_EQ(vllm_engine.reserved_bytes(),
            TestGpu().reserved_bytes + reservation);
  EXPECT_EQ(jenga_engine.reserved_bytes(), TestGpu().reserved_bytes);
  // The baseline's usable KV pool shrinks by exactly the reservation.
  EXPECT_EQ(vllm_engine.kv().GetMemoryStats().pool_bytes + reservation,
            jenga_engine.kv().GetMemoryStats().pool_bytes);
}

TEST(EngineProfiles, MambaModelServesUnderBothManagers) {
  for (const bool jenga : {true, false}) {
    EngineConfig config = jenga ? JengaProfile(TinyMambaModel(), TestGpu())
                                : VllmProfile(TinyMambaModel(), TestGpu());
    config.pool_bytes_override = 1 << 24;
    config.max_num_seqs_override = 8;
    Engine engine(std::move(config));
    for (int i = 0; i < 5; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(600 + i), 16, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 5) << (jenga ? "jenga" : "vllm");
    engine.kv().CheckConsistency();
  }
}

TEST(EngineAdmission, HeadOfLineBlocksButDecodesContinue) {
  // A huge request at the head of the queue must not stall running decodes.
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config = JengaProfile(model, TestGpu());
  config.pool_bytes_override = spec.LcmPageBytes() * 64;
  // Without caching a preempted request restarts from scratch, so the big request cannot
  // make incremental progress while request 0 runs — strict FCFS completion.
  config.enable_prefix_caching = false;
  Engine engine(std::move(config));
  engine.Submit(MakeRequest(0, TextPrompt(128), 40, 0.0));
  engine.Submit(MakeRequest(1, TextPrompt(16 * 60), 4, 0.0));  // Nearly the whole pool.
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 2);
  // FCFS order: request 0 finished first (request 1 waited for memory).
  EXPECT_EQ(engine.metrics().finished()[0].id, 0);
}

TEST(EngineAdmission, CachingSurvivesAcrossIdlePeriods) {
  EngineConfig config = JengaProfile(TinyFullModel(), TestGpu());
  config.pool_bytes_override = 1 << 24;
  Engine engine(std::move(config));
  engine.Submit(MakeRequest(0, TextPrompt(256), 4, 0.0));
  engine.RunToCompletion();
  // Long idle gap; cached content has no reason to vanish.
  engine.Submit(MakeRequest(1, TextPrompt(256), 4, 1e6));
  engine.RunToCompletion();
  EXPECT_EQ(engine.request(1).cached_prefix_tokens, 240);
}

TEST(EngineAdmission, MaxNumSeqsCapsBatch) {
  EngineConfig config = JengaProfile(TinyFullModel(), TestGpu());
  config.pool_bytes_override = 1 << 24;
  config.max_num_seqs_override = 3;
  Engine engine(std::move(config));
  for (int i = 0; i < 9; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64), 24, 0.0));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 9);
  EXPECT_LE(engine.metrics().decode_batch_series().MaxValue(), 3.0);
}

}  // namespace
}  // namespace jenga
