#include "src/fault/fault_injector.h"

#include <cstdlib>
#include <sstream>

namespace jenga {

namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "pcie_d2h", "pcie_h2d",     "pcie_timeout",  "host_alloc",
    "host_shrink", "gpu_step",  "replica_death", "replica_stall",
    "pool_grow", "pool_shrink_drain", "repartition_commit",
};

}  // namespace

const char* FaultSiteName(FaultSite site) {
  const int i = static_cast<int>(site);
  JENGA_CHECK(i >= 0 && i < kNumFaultSites) << "bad fault site " << i;
  return kSiteNames[i];
}

FaultSite FaultSiteFromName(const std::string& name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  }
  return FaultSite::kNumSites;
}

bool FaultPlan::empty() const {
  for (const FaultSpec& spec : specs) {
    if (spec.armed()) return false;
  }
  return true;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSpec& spec = specs[i];
    if (!spec.armed()) continue;
    if (spec.probability > 0.0) {
      out << (first ? "" : ",") << kSiteNames[i] << ":p=" << spec.probability;
      first = false;
    }
    if (spec.at_consult >= 0) {
      out << (first ? "" : ",") << kSiteNames[i] << ":at=" << spec.at_consult;
      first = false;
    }
    if (spec.every > 0) {
      out << (first ? "" : ",") << kSiteNames[i] << ":every=" << spec.every;
      first = false;
    }
  }
  return out.str();
}

Status FaultPlan::Parse(const std::string& text, FaultPlan* plan) {
  FaultPlan parsed;
  std::istringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("fault plan entry missing ':': \"" + entry + "\"");
    }
    const std::string site_name = entry.substr(0, colon);
    const FaultSite site = FaultSiteFromName(site_name);
    if (site == FaultSite::kNumSites) {
      return Status::InvalidArgument("unknown fault site: \"" + site_name + "\"");
    }
    const std::string trigger = entry.substr(colon + 1);
    const size_t eq = trigger.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault trigger missing '=': \"" + entry + "\"");
    }
    const std::string kind = trigger.substr(0, eq);
    const std::string value_text = trigger.substr(eq + 1);
    FaultSpec& spec = parsed.spec(site);
    char* end = nullptr;
    if (kind == "p") {
      const double p = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad fault probability: \"" + entry + "\"");
      }
      spec.probability = p;
    } else if (kind == "at") {
      const long long at = std::strtoll(value_text.c_str(), &end, 10);
      if (end == value_text.c_str() || *end != '\0' || at < 0) {
        return Status::InvalidArgument("bad fault consult index: \"" + entry + "\"");
      }
      spec.at_consult = at;
    } else if (kind == "every") {
      const long long every = std::strtoll(value_text.c_str(), &end, 10);
      if (end == value_text.c_str() || *end != '\0' || every <= 0) {
        return Status::InvalidArgument("bad fault interval: \"" + entry + "\"");
      }
      spec.every = every;
    } else {
      return Status::InvalidArgument("unknown fault trigger kind: \"" + entry + "\"");
    }
  }
  *plan = parsed;
  return Status::Ok();
}

Status FaultConfigFromEnv(FaultConfig* config) {
  FaultConfig parsed;
  if (const char* plan_text = std::getenv("JENGA_FAULT_PLAN")) {
    Status status = FaultPlan::Parse(plan_text, &parsed.plan);
    if (!status.ok()) return status;
  }
  if (const char* seed_text = std::getenv("JENGA_FAULT_SEED")) {
    char* end = nullptr;
    parsed.seed = std::strtoull(seed_text, &end, 0);
    if (end == seed_text || *end != '\0') {
      return Status::InvalidArgument(std::string("bad JENGA_FAULT_SEED: \"") + seed_text + "\"");
    }
  }
  *config = parsed;
  return Status::Ok();
}

namespace {

// Decorrelated per-site streams: Fork() derives the child from the parent's current state
// without advancing it, so every site stream depends only on (seed, site index).
std::array<Rng, kNumFaultSites> MakeStreams(uint64_t seed) {
  static_assert(kNumFaultSites == 11, "update MakeStreams when adding fault sites");
  Rng root(seed);
  // Fork() never advances the root, so appending sites leaves existing streams untouched —
  // old (plan, seed) replays stay byte-identical across site additions.
  return {root.Fork(0), root.Fork(1), root.Fork(2), root.Fork(3),
          root.Fork(4), root.Fork(5), root.Fork(6), root.Fork(7),
          root.Fork(8), root.Fork(9), root.Fork(10)};
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), streams_(MakeStreams(config.seed)) {}

bool FaultInjector::Fire(FaultSite site) {
  const int i = static_cast<int>(site);
  JENGA_CHECK(i >= 0 && i < kNumFaultSites) << "bad fault site " << i;
  SiteCounters& counters = counters_[i];
  const int64_t consult = counters.consults;
  counters.consults += 1;
  const FaultSpec& spec = config_.plan.specs[i];
  bool fire = false;
  if (spec.at_consult >= 0 && consult == spec.at_consult) fire = true;
  if (spec.every > 0 && (consult + 1) % spec.every == 0) fire = true;
  // Always draw when a probability is armed, even if a scheduled trigger already fired: the
  // site's random stream position must depend only on its consult count, never on which
  // triggers matched, so replays and plan edits stay deterministic.
  if (spec.probability > 0.0 && streams_[i].Bernoulli(spec.probability)) fire = true;
  if (fire) counters.fires += 1;
  return fire;
}

int64_t FaultInjector::total_fires() const {
  int64_t total = 0;
  for (const SiteCounters& c : counters_) total += c.fires;
  return total;
}

}  // namespace jenga
