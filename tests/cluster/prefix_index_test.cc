#include "src/cluster/prefix_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/fleet_router.h"
#include "src/core/block_hash.h"
#include "src/engine/engine.h"
#include "src/engine/request.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

TEST(ClusterPrefixIndexTest, FeedTracksMembership) {
  ClusterPrefixIndex index(2, /*routing_group=*/0);
  CacheResidencySink* feed0 = index.feed(0);
  CacheResidencySink* feed1 = index.feed(1);

  feed0->OnHashResident(0, 101);
  feed0->OnHashResident(0, 102);
  feed1->OnHashResident(0, 101);
  EXPECT_EQ(index.ResidentHashes(0), 2);
  EXPECT_EQ(index.ResidentHashes(1), 1);

  feed0->OnHashNonResident(0, 101);
  EXPECT_EQ(index.ResidentHashes(0), 1);
  EXPECT_EQ(index.ResidentHashes(1), 1);
}

TEST(ClusterPrefixIndexTest, IgnoresOtherGroups) {
  ClusterPrefixIndex index(1, /*routing_group=*/0);
  index.feed(0)->OnHashResident(1, 7);
  index.feed(0)->OnHashResident(2, 8);
  EXPECT_EQ(index.ResidentHashes(0), 0);

  // Non-resident events for other groups must not erase routing-group entries either.
  index.feed(0)->OnHashResident(0, 7);
  index.feed(0)->OnHashNonResident(1, 7);
  EXPECT_EQ(index.ResidentHashes(0), 1);
}

TEST(ClusterPrefixIndexTest, NegativeGroupDisablesTracking) {
  ClusterPrefixIndex index(1, /*routing_group=*/-1);
  index.feed(0)->OnHashResident(0, 7);
  EXPECT_EQ(index.ResidentHashes(0), 0);
  const std::vector<BlockHash> chain = {7, 8};
  EXPECT_EQ(index.ResidentPrefixBlocks(0, chain), 0);
}

TEST(ClusterPrefixIndexTest, PrefixScanStopsAtFirstMiss) {
  ClusterPrefixIndex index(1, /*routing_group=*/0);
  CacheResidencySink* feed = index.feed(0);
  // Chain {10, 11, 12, 13}: make 10, 11, 13 resident — 13 must not count past the hole.
  feed->OnHashResident(0, 10);
  feed->OnHashResident(0, 11);
  feed->OnHashResident(0, 13);

  const std::vector<BlockHash> chain = {10, 11, 12, 13};
  EXPECT_EQ(index.ResidentPrefixBlocks(0, chain), 2);

  feed->OnHashResident(0, 12);
  EXPECT_EQ(index.ResidentPrefixBlocks(0, chain), 4);

  feed->OnHashNonResident(0, 10);
  EXPECT_EQ(index.ResidentPrefixBlocks(0, chain), 0);

  EXPECT_EQ(index.ResidentPrefixBlocks(0, std::vector<BlockHash>{}), 0);
}

// End to end through a real engine: after a prefix-caching run, the index summary must score
// the served prompt's routing chain as fully resident, and a fresh prompt as absent.
TEST(ClusterPrefixIndexTest, MirrorsEngineCacheResidency) {
  const EngineConfig config = FleetEngineConfig();
  Engine engine(config);
  ClusterPrefixIndex index(1, /*routing_group=*/0);
  engine.kv().allocator_mutable().SetResidencySink(index.feed(0));

  const Prompt prompt = ArticlePrompt(/*article=*/0, /*len=*/64);
  engine.Submit(MakeRequest(1, prompt, /*output_len=*/4, /*arrival_time=*/0.0));
  engine.RunToCompletion();

  const KvSpec& spec = engine.kv().alloc_spec();
  const int group = PickRoutingGroup(spec);
  ASSERT_EQ(group, 0);
  const int block = spec.groups[0].tokens_per_page;
  const std::vector<BlockHash> chain =
      ChainBlockHashes(prompt.tokens, block, GroupChainSalt(group));
  ASSERT_EQ(static_cast<int64_t>(chain.size()), 64 / block);
  EXPECT_EQ(index.ResidentPrefixBlocks(0, chain), static_cast<int64_t>(chain.size()));
  EXPECT_GT(index.ResidentHashes(0), 0);

  const Prompt other = ArticlePrompt(/*article=*/5, /*len=*/64);
  const std::vector<BlockHash> other_chain =
      ChainBlockHashes(other.tokens, block, GroupChainSalt(group));
  EXPECT_EQ(index.ResidentPrefixBlocks(0, other_chain), 0);
}

}  // namespace
}  // namespace jenga
