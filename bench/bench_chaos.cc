// Fault-injector overhead bench: measures end-to-end engine steps/sec with the injector in
// three states and reports the tax each one adds over a faultless engine:
//
//   off     no fault plan — the null-injector fast path every consult site short-circuits
//           through (this is the state every production run and every figure bench is in);
//   armed   every reachable site armed with an unreachable scheduled trigger — consult
//           bookkeeping runs each step but no fault ever fires;
//   firing  gpu_step:p=0.02 — ~2% of steps are voided and recovered, measuring what actual
//           chaos costs.
//
// The acceptance bar is that "off" is indistinguishable from the pre-fault-layer engine: the
// disabled-injector overhead column should print ~0% (noise-level). Reps are interleaved
// round-robin so clock drift hits all states equally; the median rep is reported.
//
// Flags:
//   --quick        fewer requests and reps (CI-friendly)
//   --reps <n>     repetitions per state (default 5, quick 3)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/fault/fault_injector.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchState {
  const char* name;
  const char* plan;  // Parsed into EngineConfig::fault; "" = injector disabled.
};

constexpr BenchState kStates[] = {
    {"off", ""},
    {"armed", "gpu_step:at=2000000000,pcie_d2h:at=2000000000,pcie_h2d:at=2000000000,"
              "host_alloc:at=2000000000,host_shrink:at=2000000000"},
    {"firing", "gpu_step:p=0.02"},
};
constexpr int kNumStates = 3;

struct Workload {
  std::string key;
  ModelConfig model;
  bool offload = false;  // Offload tier on, so the PCIe/host consult sites are reachable.
  std::vector<Request> requests;
};

std::vector<Workload> MakeWorkloads(bool quick) {
  std::vector<Workload> workloads;
  {
    Workload w{"gemma-2-9b.mmlu", Gemma2_9B(), /*offload=*/false, {}};
    Rng rng(0xC4A05);
    MmluProDataset dataset;
    w.requests = GenerateBatch(dataset, quick ? 32 : 96, rng);
    workloads.push_back(std::move(w));
  }
  {
    Workload w{"ministral-8b.arxiv+offload", Ministral8B(), /*offload=*/true, {}};
    Rng rng(0xC4A06);
    ArxivQaDataset dataset(/*articles=*/4, 20000, 40000, /*seed=*/0xC4A06,
                           /*output_lo=*/32, /*output_hi=*/64);
    const int count = quick ? 4 : 8;
    for (int i = 0; i < count; ++i) {
      WorkloadItem item = dataset.SampleForArticle(i % 4, rng);
      w.requests.push_back(MakeRequest(i, std::move(item.prompt), item.output_len, 0.0));
    }
    workloads.push_back(std::move(w));
  }
  return workloads;
}

double RunOnce(const Workload& w, const char* plan) {
  EngineConfig config = JengaProfile(w.model, H100());
  config.memory_sample_every = 0;
  if (w.offload) {
    config.offload.enabled = true;
    config.offload.host_pool_bytes = 1ll << 30;
  }
  JENGA_CHECK(FaultPlan::Parse(plan, &config.fault.plan).ok()) << plan;
  config.fault.seed = 0xC4A05;
  Engine engine(std::move(config));
  for (const Request& r : w.requests) {
    engine.Submit(r);
  }
  const auto begin = Clock::now();
  engine.RunToCompletion();
  const auto end = Clock::now();
  const double seconds = std::chrono::duration<double>(end - begin).count();
  return static_cast<double>(engine.metrics().total_steps()) / seconds;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void Run(bool quick, int reps) {
  PrintHeader(std::string("bench_chaos: fault-injector steps/sec overhead (") +
              (quick ? "quick" : "full") + " mode)");
  PrintRow({{30, "workload"},
            {14, "off steps/s"},
            {14, "armed"},
            {14, "firing"},
            {14, "armed tax"},
            {14, "firing tax"}});
  PrintRule();
  for (const Workload& w : MakeWorkloads(quick)) {
    std::vector<double> rates[kNumStates];
    // Warm-up rep per state (page-cache/allocator warmup), then interleaved timed reps.
    for (int s = 0; s < kNumStates; ++s) {
      (void)RunOnce(w, kStates[s].plan);
    }
    for (int rep = 0; rep < reps; ++rep) {
      for (int s = 0; s < kNumStates; ++s) {
        rates[s].push_back(RunOnce(w, kStates[s].plan));
      }
    }
    const double off = Median(rates[0]);
    const double armed = Median(rates[1]);
    const double firing = Median(rates[2]);
    PrintRow({{30, w.key},
              {14, Fmt("%.0f", off)},
              {14, Fmt("%.0f", armed)},
              {14, Fmt("%.0f", firing)},
              {14, Fmt("%+.1f%%", (off / armed - 1.0) * 100.0)},
              {14, Fmt("%+.1f%%", (off / firing - 1.0) * 100.0)}});
  }
  std::printf(
      "\n\"armed tax\" is the cost of consult bookkeeping that never fires; \"off\" uses the\n"
      "null-injector fast path and should match a build without the fault layer (~0%% tax\n"
      "vs armed; differences well under run-to-run noise).\n");
}

}  // namespace
}  // namespace jenga

int main(int argc, char** argv) {
  bool quick = false;
  int reps = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--reps n]\n", argv[0]);
      return 2;
    }
  }
  if (reps <= 0) {
    reps = quick ? 3 : 5;
  }
  jenga::Run(quick, reps);
  return 0;
}
