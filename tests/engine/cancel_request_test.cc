// CancelRequest coverage: every request state (waiting, running, preempted, swapped out)
// × both engines × offload tier on/off, plus the interaction cases — cancel while retry
// backoff is pending, cancel after the shed gate already failed the request, and deadline
// expiry routing through the same path. The mid-restore regression (an aborted request must
// release its HostSwapSet, with the allocator/host-pool auditor staying green) lives here.

#include <gtest/gtest.h>

#include <string>

#include "src/audit/allocator_auditor.h"
#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

FaultConfig ParsePlan(const std::string& text, uint64_t seed = 7) {
  FaultConfig config;
  JENGA_CHECK(FaultPlan::Parse(text, &config.plan).ok()) << text;
  config.seed = seed;
  return config;
}

EngineConfig PressureConfig(bool offload) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  if (offload) {
    config.offload.enabled = true;
    config.offload.swap_preemption = true;
    config.offload.host_prefix_cache = false;
    config.offload.host_pool_bytes = 1ll << 30;
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
  }
  return config;
}

void SubmitPressureBatch(Engine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 80, 0.0));
  }
}

SpecDecodeConfig SpecPressureConfig(bool offload) {
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.strategy = SpecStrategy::kJenga;
  config.pool_bytes_override = 384 << 10;
  config.seed = 7;
  if (offload) {
    config.offload.enabled = true;
    config.offload.host_pool_bytes = 1ll << 30;
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
  }
  return config;
}

void SubmitSpecBatch(SpecDecodeEngine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 64, 0.0));
  }
}

// The cancelled request's finished record: failed, flagged cancelled.
void ExpectCancelledRecord(const EngineMetrics& metrics, RequestId id) {
  bool found = false;
  for (const RequestRecord& record : metrics.finished()) {
    if (record.id != id) {
      continue;
    }
    found = true;
    EXPECT_TRUE(record.failed) << "cancelled request not recorded as failed";
    EXPECT_TRUE(record.cancelled) << "cancelled request record missing the cancelled flag";
  }
  EXPECT_TRUE(found) << "no finished record for cancelled request " << id;
}

TEST(CancelRequest, UnknownOrFinishedReturnsFalse) {
  Engine engine(PressureConfig(/*offload=*/false));
  EXPECT_FALSE(engine.CancelRequest(42));
  engine.Submit(MakeRequest(0, TextPrompt(32), 4, 0.0));
  engine.RunToCompletion();
  EXPECT_FALSE(engine.CancelRequest(0)) << "finished request must not cancel again";
  EXPECT_EQ(engine.metrics().cancelled_requests, 0);
}

TEST(CancelRequest, WaitingRequestBothTiers) {
  for (const bool offload : {false, true}) {
    SCOPED_TRACE(offload ? "offload" : "gpu-only");
    Engine engine(PressureConfig(offload));
    SubmitPressureBatch(engine);
    EXPECT_TRUE(engine.CancelRequest(3));  // Never scheduled.
    EXPECT_FALSE(engine.CancelRequest(3));
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().cancelled_requests, 1);
    EXPECT_EQ(engine.metrics().CompletedRequests(), 3);
    ExpectCancelledRecord(engine.metrics(), 3);
    engine.kv().CheckConsistency();
  }
}

TEST(CancelRequest, RunningRequestBothTiers) {
  for (const bool offload : {false, true}) {
    SCOPED_TRACE(offload ? "offload" : "gpu-only");
    Engine engine(PressureConfig(offload));
    SubmitPressureBatch(engine);
    // Step until something is mid-flight, then cancel a running request.
    RequestId victim = kNoRequest;
    for (int step = 0; step < 50 && victim == kNoRequest; ++step) {
      ASSERT_TRUE(engine.StepOnce());
      for (RequestId id = 0; id < 4; ++id) {
        if (engine.request(id).state == RequestState::kRunning) {
          victim = id;
          break;
        }
      }
    }
    ASSERT_NE(victim, kNoRequest);
    EXPECT_TRUE(engine.CancelRequest(victim));
    EXPECT_EQ(engine.request(victim).state, RequestState::kFinished);
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 3);
    ExpectCancelledRecord(engine.metrics(), victim);
    engine.kv().CheckConsistency();
  }
}

TEST(CancelRequest, PreemptedRequestReclaims) {
  // GPU-only tier: preemption is always by-recompute, so the victim sits in waiting_ with
  // zero pages; cancel must still retire its allocator affinity state.
  Engine engine(PressureConfig(/*offload=*/false));
  SubmitPressureBatch(engine);
  RequestId victim = kNoRequest;
  for (int step = 0; step < 400 && victim == kNoRequest; ++step) {
    ASSERT_TRUE(engine.StepOnce());
    for (RequestId id = 0; id < 4; ++id) {
      if (engine.request(id).state == RequestState::kPreempted) {
        victim = id;
        break;
      }
    }
  }
  ASSERT_NE(victim, kNoRequest) << "pressure schedule produced no preemption";
  EXPECT_TRUE(engine.CancelRequest(victim));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 3);
  ExpectCancelledRecord(engine.metrics(), victim);
  engine.kv().CheckConsistency();
}

TEST(CancelRequest, SwappedOutRequestReleasesHostSwapSet) {
  // The mid-restore regression: abort a request while its KV sits in host memory, between
  // swap-out and restore. The HostSwapSet must be released immediately and the audited
  // shadow state (allocators + host pool) must stay green throughout.
  Engine engine(PressureConfig(/*offload=*/true));
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  auditor.AttachSwapManager(engine.swap_mutable());
  SubmitPressureBatch(engine);
  RequestId victim = kNoRequest;
  for (int step = 0; step < 400 && victim == kNoRequest; ++step) {
    ASSERT_TRUE(engine.StepOnce());
    ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
    for (RequestId id = 0; id < 4; ++id) {
      if (engine.request(id).swapped_out) {
        victim = id;
        break;
      }
    }
  }
  ASSERT_NE(victim, kNoRequest) << "pressure schedule produced no swap-out";
  ASSERT_NE(engine.swap()->PeekSwapSet(victim), nullptr);
  const int64_t used_before = engine.swap()->host().used_bytes();
  EXPECT_TRUE(engine.CancelRequest(victim));
  EXPECT_EQ(engine.swap()->PeekSwapSet(victim), nullptr)
      << "cancel left the aborted request's swap set in host memory";
  EXPECT_LT(engine.swap()->host().used_bytes(), used_before);
  ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
  engine.RunToCompletion();
  ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
  EXPECT_EQ(engine.metrics().CompletedRequests(), 3);
  ExpectCancelledRecord(engine.metrics(), victim);
  // Everything finished: the host pool holds no leftover swap sets.
  EXPECT_EQ(engine.swap()->host().num_sets(), 0);
  engine.kv().CheckConsistency();
}

TEST(CancelRequest, DuringTransferBackoff) {
  // Injected D2H faults keep the retry/backoff machinery busy; cancelling mid-backoff must
  // not wedge the stall accounting or leak state.
  EngineConfig config = PressureConfig(/*offload=*/true);
  config.fault = ParsePlan("pcie_d2h:p=1.0");
  Engine engine(config);
  SubmitPressureBatch(engine);
  bool saw_backoff = false;
  for (int step = 0; step < 400 && !saw_backoff; ++step) {
    ASSERT_TRUE(engine.StepOnce());
    saw_backoff = engine.metrics().fault_backoff_time > 0.0;
  }
  ASSERT_TRUE(saw_backoff) << "schedule never hit the injected-fault backoff path";
  RequestId victim = kNoRequest;
  for (RequestId id = 0; id < 4; ++id) {
    if (engine.request(id).state != RequestState::kFinished) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kNoRequest);
  EXPECT_TRUE(engine.CancelRequest(victim));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests() + engine.metrics().FailedRequests(), 4);
  ExpectCancelledRecord(engine.metrics(), victim);
  engine.kv().CheckConsistency();
}

TEST(CancelRequest, ShedGateFailsStarvingHeadAndCancelAfterShedIsFalse) {
  EngineConfig config = PressureConfig(/*offload=*/false);
  config.shed_after_blocked_steps = 1;
  config.shed_occupancy_watermark = 0.0;  // Shed on any head-of-line blocking.
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  ASSERT_GT(engine.metrics().shed_requests, 0);
  EXPECT_EQ(engine.metrics().cancelled_requests, engine.metrics().shed_requests);
  EXPECT_EQ(engine.metrics().CompletedRequests() + engine.metrics().FailedRequests(), 4);
  RequestId shed_id = kNoRequest;
  for (const RequestRecord& record : engine.metrics().finished()) {
    if (record.cancelled) {
      shed_id = record.id;
      EXPECT_TRUE(record.failed);
    }
  }
  ASSERT_NE(shed_id, kNoRequest);
  // Cancelling an already-shed request is a clean no-op.
  EXPECT_FALSE(engine.CancelRequest(shed_id));
  engine.kv().CheckConsistency();
}

TEST(CancelRequest, ShedGateDisabledByDefault) {
  Engine engine(PressureConfig(/*offload=*/false));
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().shed_requests, 0);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
}

TEST(CancelRequest, DeadlineExpiresThroughCancelPath) {
  Engine engine(PressureConfig(/*offload=*/false));
  engine.Submit(MakeRequest(0, TextPrompt(48), 8, 0.0));
  Request doomed = MakeRequest(1, TextPrompt(48), 8, 0.0);
  doomed.deadline = 0.0;  // Expires on the first step.
  engine.Submit(std::move(doomed));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 1);
  EXPECT_EQ(engine.metrics().cancelled_requests, 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  ExpectCancelledRecord(engine.metrics(), 1);
  engine.kv().CheckConsistency();
}

// --- SpecDecodeEngine ---

TEST(SpecCancelRequest, WaitingAndRunningBothTiers) {
  for (const bool offload : {false, true}) {
    SCOPED_TRACE(offload ? "offload" : "gpu-only");
    SpecDecodeEngine engine(SpecPressureConfig(offload));
    SubmitSpecBatch(engine);
    EXPECT_TRUE(engine.CancelRequest(3));  // Still waiting.
    EXPECT_FALSE(engine.CancelRequest(3));
    RequestId victim = kNoRequest;
    for (int step = 0; step < 50 && victim == kNoRequest; ++step) {
      ASSERT_TRUE(engine.StepOnce());
      for (RequestId id = 0; id < 3; ++id) {
        if (engine.request(id).state == RequestState::kRunning) {
          victim = id;
          break;
        }
      }
    }
    ASSERT_NE(victim, kNoRequest);
    EXPECT_TRUE(engine.CancelRequest(victim));
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().cancelled_requests, 2);
    EXPECT_EQ(engine.metrics().CompletedRequests(), 2);
    ExpectCancelledRecord(engine.metrics(), 3);
    ExpectCancelledRecord(engine.metrics(), victim);
    for (int m = 0; m < engine.num_managers(); ++m) {
      engine.manager(m).CheckConsistency();
    }
  }
}

TEST(SpecCancelRequest, SwappedOutReleasesHostSwapSet) {
  SpecDecodeEngine engine(SpecPressureConfig(/*offload=*/true));
  AllocatorAuditor auditor;
  for (int m = 0; m < engine.num_managers(); ++m) {
    auditor.AttachAllocator(&engine.manager_mutable(m).allocator_mutable());
  }
  auditor.AttachSwapManager(engine.swap_mutable());
  SubmitSpecBatch(engine);
  RequestId victim = kNoRequest;
  for (int step = 0; step < 400 && victim == kNoRequest; ++step) {
    ASSERT_TRUE(engine.StepOnce());
    ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
    for (RequestId id = 0; id < 4; ++id) {
      if (engine.request(id).swapped_out) {
        victim = id;
        break;
      }
    }
  }
  ASSERT_NE(victim, kNoRequest) << "spec pressure schedule produced no swap-out";
  ASSERT_NE(engine.swap()->PeekSwapSet(victim), nullptr);
  EXPECT_TRUE(engine.CancelRequest(victim));
  EXPECT_EQ(engine.swap()->PeekSwapSet(victim), nullptr);
  ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
  engine.RunToCompletion();
  ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
  EXPECT_EQ(engine.metrics().CompletedRequests(), 3);
  ExpectCancelledRecord(engine.metrics(), victim);
  EXPECT_EQ(engine.swap()->host().num_sets(), 0);
}

TEST(SpecCancelRequest, ShedGateAndCancelAfterShed) {
  SpecDecodeConfig config = SpecPressureConfig(/*offload=*/false);
  config.shed_after_blocked_steps = 1;
  config.shed_occupancy_watermark = 0.0;
  SpecDecodeEngine engine(config);
  SubmitSpecBatch(engine);
  engine.RunToCompletion();
  ASSERT_GT(engine.metrics().shed_requests, 0);
  EXPECT_EQ(engine.metrics().CompletedRequests() + engine.metrics().FailedRequests(), 4);
  RequestId shed_id = kNoRequest;
  for (const RequestRecord& record : engine.metrics().finished()) {
    if (record.cancelled) {
      shed_id = record.id;
    }
  }
  ASSERT_NE(shed_id, kNoRequest);
  EXPECT_FALSE(engine.CancelRequest(shed_id));
}

TEST(SpecCancelRequest, DeadlineExpiresThroughCancelPath) {
  SpecDecodeEngine engine(SpecPressureConfig(/*offload=*/false));
  engine.Submit(MakeRequest(0, TextPrompt(48), 8, 0.0));
  Request doomed = MakeRequest(1, TextPrompt(48), 8, 0.0);
  doomed.deadline = 0.0;
  engine.Submit(std::move(doomed));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().deadline_expirations, 1);
  EXPECT_EQ(engine.metrics().cancelled_requests, 1);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
  ExpectCancelledRecord(engine.metrics(), 1);
}

}  // namespace
}  // namespace jenga
