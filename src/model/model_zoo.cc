#include "src/model/model_zoo.h"

#include <utility>

#include "src/common/check.h"

namespace jenga {

namespace {

LayerSpec FullAttn(int kv_heads, int head_dim, int dtype_bytes) {
  LayerSpec layer;
  layer.kind = LayerKind::kFullAttention;
  layer.num_kv_heads = kv_heads;
  layer.head_dim = head_dim;
  layer.dtype_bytes = dtype_bytes;
  return layer;
}

LayerSpec SlidingAttn(int kv_heads, int head_dim, int dtype_bytes, int window) {
  LayerSpec layer = FullAttn(kv_heads, head_dim, dtype_bytes);
  layer.kind = LayerKind::kSlidingWindow;
  layer.sliding_window = window;
  return layer;
}

LayerSpec CrossAttn(int kv_heads, int head_dim, int dtype_bytes) {
  LayerSpec layer = FullAttn(kv_heads, head_dim, dtype_bytes);
  layer.kind = LayerKind::kCrossAttention;
  return layer;
}

LayerSpec Mamba(int64_t state_bytes) {
  LayerSpec layer;
  layer.kind = LayerKind::kMamba;
  layer.mamba_state_bytes = state_bytes;
  return layer;
}

LayerSpec Pyramid(int kv_heads, int head_dim, int dtype_bytes, int budget) {
  LayerSpec layer = FullAttn(kv_heads, head_dim, dtype_bytes);
  layer.kind = LayerKind::kSparsePyramid;
  layer.token_budget = budget;
  return layer;
}

}  // namespace

ModelConfig Llama31_8B() {
  ModelConfig model;
  model.name = "llama-3.1-8b";
  model.params_b = 8.0;
  model.hidden_size = 4096;
  model.max_context_len = 131072;
  model.compute_layers = 32;
  for (int i = 0; i < 32; ++i) {
    model.layers.push_back(FullAttn(8, 128, 2));
  }
  return model;
}

ModelConfig Llama3_70B_Fp8() {
  ModelConfig model;
  model.name = "llama-3-70b-fp8";
  model.params_b = 70.0;
  model.weight_dtype_bytes = 1;
  model.hidden_size = 8192;
  model.max_context_len = 131072;
  model.compute_layers = 80;
  for (int i = 0; i < 80; ++i) {
    model.layers.push_back(FullAttn(8, 128, 1));
  }
  return model;
}

ModelConfig Gemma2_27B() {
  ModelConfig model;
  model.name = "gemma-2-27b";
  model.params_b = 27.2;
  model.hidden_size = 4608;
  model.max_context_len = 8192;
  model.compute_layers = 46;
  // 1:1 interleave of sliding-window (4096) and full attention, 16 KV heads × 128.
  for (int i = 0; i < 46; ++i) {
    if (i % 2 == 0) {
      model.layers.push_back(SlidingAttn(16, 128, 2, 4096));
    } else {
      model.layers.push_back(FullAttn(16, 128, 2));
    }
  }
  return model;
}

ModelConfig Gemma2_9B() {
  ModelConfig model;
  model.name = "gemma-2-9b";
  model.params_b = 9.2;
  model.hidden_size = 3584;
  model.max_context_len = 8192;
  model.compute_layers = 42;
  for (int i = 0; i < 42; ++i) {
    if (i % 2 == 0) {
      model.layers.push_back(SlidingAttn(8, 256, 2, 4096));
    } else {
      model.layers.push_back(FullAttn(8, 256, 2));
    }
  }
  return model;
}

ModelConfig Ministral8B() {
  ModelConfig model;
  model.name = "ministral-8b";
  model.params_b = 8.0;
  model.hidden_size = 4096;
  model.max_context_len = 131072;
  model.compute_layers = 36;
  // 3:1 interleave of sliding-window (32768) and full attention. At the 131072-token max
  // context a homogeneous allocator wastes 27/36 × (1 − 32768/131072) = 56.25 % (§3.2).
  for (int i = 0; i < 36; ++i) {
    if (i % 4 == 3) {
      model.layers.push_back(FullAttn(8, 128, 2));
    } else {
      model.layers.push_back(SlidingAttn(8, 128, 2, 32768));
    }
  }
  return model;
}

ModelConfig Jamba52B_Fp8() {
  ModelConfig model;
  model.name = "jamba-52b-fp8";
  model.params_b = 52.0;
  model.weight_dtype_bytes = 1;
  model.hidden_size = 4096;
  model.max_context_len = 131072;
  model.compute_layers = 32;
  // 4 full-attention layers (FP8 KV) + 28 Mamba layers. The per-layer state size is chosen so
  // the whole-model Mamba page equals 84 × the 16-token attention page, the worst-case LCM
  // ratio reported in §4.4 (and the 1344-token MAX-page pathology: 84 × 16 tokens).
  for (int i = 0; i < 32; ++i) {
    if (i % 8 == 0) {
      model.layers.push_back(FullAttn(8, 128, 1));
    } else {
      model.layers.push_back(Mamba(393216));
    }
  }
  return model;
}

ModelConfig CharacterAi8B() {
  ModelConfig model;
  model.name = "characterai-8b";
  model.params_b = 8.0;
  model.hidden_size = 4096;
  model.max_context_len = 32768;
  // 32 executed layers, but cross-layer KV sharing leaves only 12 distinct KV caches:
  // 2 global full-attention caches and 10 sliding-window caches (per their blog's design).
  model.compute_layers = 32;
  for (int i = 0; i < 2; ++i) {
    model.layers.push_back(FullAttn(8, 128, 2));
  }
  for (int i = 0; i < 10; ++i) {
    model.layers.push_back(SlidingAttn(8, 128, 2, 1024));
  }
  return model;
}

ModelConfig PyramidKv8B() {
  ModelConfig model;
  model.name = "pyramidkv-8b";
  model.params_b = 8.0;
  model.hidden_size = 4096;
  model.max_context_len = 131072;
  model.compute_layers = 32;
  // Retained-token budgets shrink with depth (pyramidal information funneling).
  const int kBudgets[4] = {2048, 1024, 512, 256};
  for (int i = 0; i < 32; ++i) {
    model.layers.push_back(Pyramid(8, 128, 2, kBudgets[i / 8]));
  }
  return model;
}

ModelConfig CharacterAi70B_Fp8() {
  ModelConfig model;
  model.name = "characterai-70b-fp8";
  model.params_b = 70.0;
  model.weight_dtype_bytes = 1;
  model.hidden_size = 8192;
  model.max_context_len = 32768;
  // 80 executed layers with cross-layer KV sharing → 30 distinct caches.
  model.compute_layers = 80;
  for (int i = 0; i < 5; ++i) {
    model.layers.push_back(FullAttn(8, 128, 1));
  }
  for (int i = 0; i < 25; ++i) {
    model.layers.push_back(SlidingAttn(8, 128, 1, 1024));
  }
  return model;
}

ModelConfig PyramidKv70B_Fp8() {
  ModelConfig model;
  model.name = "pyramidkv-70b-fp8";
  model.params_b = 70.0;
  model.weight_dtype_bytes = 1;
  model.hidden_size = 8192;
  model.max_context_len = 131072;
  model.compute_layers = 80;
  const int kBudgets[4] = {2048, 1024, 512, 256};
  for (int i = 0; i < 80; ++i) {
    model.layers.push_back(Pyramid(8, 128, 1, kBudgets[i / 20]));
  }
  return model;
}

ModelConfig Llama32_1B() {
  ModelConfig model;
  model.name = "llama-3.2-1b";
  model.params_b = 1.24;
  model.hidden_size = 2048;
  model.max_context_len = 131072;
  model.compute_layers = 16;
  for (int i = 0; i < 16; ++i) {
    model.layers.push_back(FullAttn(8, 64, 2));
  }
  return model;
}

ModelConfig Gemma2_2B() {
  ModelConfig model;
  model.name = "gemma-2-2b";
  model.params_b = 2.6;
  model.hidden_size = 2304;
  model.max_context_len = 8192;
  model.compute_layers = 26;
  for (int i = 0; i < 26; ++i) {
    if (i % 2 == 0) {
      model.layers.push_back(SlidingAttn(4, 256, 2, 4096));
    } else {
      model.layers.push_back(FullAttn(4, 256, 2));
    }
  }
  return model;
}

ModelConfig Ministral1BDraft() {
  ModelConfig model = Llama32_1B();
  model.name = "ministral-1b-draft";
  return model;
}

ModelConfig Llama32_11B_Vision() {
  ModelConfig model;
  model.name = "llama-3.2-11b-vision";
  model.params_b = 10.7;
  model.hidden_size = 4096;
  model.max_context_len = 131072;
  model.compute_layers = 40;
  // 32 self-attention layers (KV for all tokens) + 8 cross-attention layers (KV for image
  // tokens only); the §3.2 waste analysis is (T+I)·40·E vs T·32·E + I·8·E.
  for (int i = 0; i < 40; ++i) {
    if (i % 5 == 3) {
      model.layers.push_back(CrossAttn(8, 128, 2));
    } else {
      model.layers.push_back(FullAttn(8, 128, 2));
    }
  }
  model.vision.present = true;
  model.vision.tokens_per_image = 1601;
  model.vision.embed_bytes_per_token = 4096 * 2;
  model.vision.encoder_params_b = 0.9;
  return model;
}

ModelConfig LlavaOneVision7B() {
  ModelConfig model;
  model.name = "llava-onevision-7b";
  model.params_b = 8.0;
  model.hidden_size = 3584;
  model.max_context_len = 32768;
  model.compute_layers = 28;
  for (int i = 0; i < 28; ++i) {
    model.layers.push_back(FullAttn(4, 128, 2));
  }
  model.vision.present = true;
  model.vision.tokens_per_image = 729;
  model.vision.embed_bytes_per_token = 3584 * 2;
  model.vision.encoder_params_b = 0.4;
  return model;
}

ModelConfig InternVl2_8B() {
  ModelConfig model;
  model.name = "internvl2-8b";
  model.params_b = 8.1;
  model.hidden_size = 4096;
  model.max_context_len = 32768;
  model.compute_layers = 32;
  for (int i = 0; i < 32; ++i) {
    model.layers.push_back(FullAttn(8, 128, 2));
  }
  model.vision.present = true;
  model.vision.tokens_per_image = 256;
  model.vision.embed_bytes_per_token = 4096 * 2;
  model.vision.encoder_params_b = 0.3;
  return model;
}

ModelConfig Phi3Vision4B() {
  ModelConfig model;
  model.name = "phi-3-vision-4b";
  model.params_b = 4.2;
  model.hidden_size = 3072;
  model.max_context_len = 131072;
  model.compute_layers = 32;
  for (int i = 0; i < 32; ++i) {
    model.layers.push_back(FullAttn(32, 96, 2));
  }
  model.vision.present = true;
  model.vision.tokens_per_image = 1024;
  model.vision.embed_bytes_per_token = 3072 * 2;
  model.vision.encoder_params_b = 0.3;
  return model;
}

ModelConfig Paligemma2_10B() {
  ModelConfig model = Gemma2_9B();
  model.name = "paligemma2-10b";
  model.params_b = 9.7;
  model.vision.present = true;
  model.vision.tokens_per_image = 256;
  model.vision.embed_bytes_per_token = 3584 * 2;
  model.vision.encoder_params_b = 0.4;
  return model;
}

ModelConfig Fp8(ModelConfig model) {
  model.name += "-fp8";
  model.weight_dtype_bytes = 1;
  for (LayerSpec& layer : model.layers) {
    layer.dtype_bytes = 1;
    layer.mamba_state_bytes /= 2;
  }
  return model;
}

StatusOr<ModelConfig> TensorParallelShard(const ModelConfig& model, int tp_degree) {
  if (tp_degree < 1) {
    return Status::InvalidArgument("tp_degree must be >= 1, got " + std::to_string(tp_degree));
  }
  ModelConfig shard = model;
  if (tp_degree == 1) {
    return shard;
  }
  // Validate every layer before mutating anything, so an error never returns a half-sharded
  // config — and so the per-rank KV bytes are exact, never a silent integer truncation.
  for (size_t i = 0; i < model.layers.size(); ++i) {
    const LayerSpec& layer = model.layers[i];
    if (layer.kind == LayerKind::kMamba) {
      if (layer.mamba_state_bytes % tp_degree != 0) {
        return Status::InvalidArgument(
            model.name + " layer " + std::to_string(i) + ": mamba_state_bytes " +
            std::to_string(layer.mamba_state_bytes) + " not divisible by tp " +
            std::to_string(tp_degree));
      }
    } else if (layer.num_kv_heads % tp_degree != 0) {
      return Status::InvalidArgument(
          model.name + " layer " + std::to_string(i) + ": num_kv_heads " +
          std::to_string(layer.num_kv_heads) + " not divisible by tp " +
          std::to_string(tp_degree));
    }
  }
  if (model.vision.present && model.vision.embed_bytes_per_token % tp_degree != 0) {
    return Status::InvalidArgument(model.name + ": vision embed_bytes_per_token " +
                                   std::to_string(model.vision.embed_bytes_per_token) +
                                   " not divisible by tp " + std::to_string(tp_degree));
  }
  for (LayerSpec& layer : shard.layers) {
    if (layer.kind == LayerKind::kMamba) {
      layer.mamba_state_bytes /= tp_degree;
    } else {
      layer.num_kv_heads /= tp_degree;
    }
  }
  if (shard.vision.present) {
    shard.vision.embed_bytes_per_token /= tp_degree;
    shard.vision.encoder_params_b /= tp_degree;
  }
  shard.params_b /= tp_degree;
  shard.name += "-tp" + std::to_string(tp_degree);
  return shard;
}

ModelConfig Llama3_70B_Fp8_Tp(int tp_degree) {
  StatusOr<ModelConfig> shard = TensorParallelShard(Llama3_70B_Fp8(), tp_degree);
  JENGA_CHECK(shard.ok()) << shard.status();
  return std::move(shard).value();
}

ModelConfig CharacterAi70B_Fp8_Tp(int tp_degree) {
  StatusOr<ModelConfig> shard = TensorParallelShard(CharacterAi70B_Fp8(), tp_degree);
  JENGA_CHECK(shard.ok()) << shard.status();
  return std::move(shard).value();
}

ModelConfig ModelByName(const std::string& name) {
  for (ModelConfig& model : AllZooModels()) {
    if (model.name == name) {
      return model;
    }
  }
  JENGA_CHECK(false) << "unknown model: " << name;
}

std::vector<ModelConfig> AllZooModels() {
  return {
      Llama31_8B(),       Llama3_70B_Fp8(),    Gemma2_27B(),        Gemma2_9B(),
      Ministral8B(),      Jamba52B_Fp8(),      CharacterAi8B(),     PyramidKv8B(),
      CharacterAi70B_Fp8(), PyramidKv70B_Fp8(),
      Llama32_1B(),       Gemma2_2B(),         Ministral1BDraft(),  Llama32_11B_Vision(),
      LlavaOneVision7B(), InternVl2_8B(),      Phi3Vision4B(),      Paligemma2_10B(),
  };
}

}  // namespace jenga
