// Engine-side measurement: per-request latency records, per-step time series (decode batch
// size, scheduled tokens), and memory-breakdown snapshots — everything the paper's figures
// plot (Figs. 13–18).

#ifndef JENGA_SRC_METRICS_METRICS_H_
#define JENGA_SRC_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace jenga {

struct RequestRecord {
  int64_t id = 0;
  int64_t prompt_len = 0;
  int64_t output_len = 0;
  int64_t cached_prefix_tokens = 0;
  int preemptions = 0;
  double arrival_time = 0.0;
  double first_scheduled_time = 0.0;
  double first_token_time = 0.0;
  double finish_time = 0.0;
  bool failed = false;
  // Aborted via CancelRequest (client cancel, deadline expiry, or load shed). Cancelled
  // requests are always also `failed`.
  bool cancelled = false;

  [[nodiscard]] double E2eLatency() const { return finish_time - arrival_time; }
  [[nodiscard]] double Ttft() const { return first_token_time - arrival_time; }
  // Time per output token after the first.
  [[nodiscard]] double Tpot() const {
    return output_len > 1 ? (finish_time - first_token_time) / static_cast<double>(output_len - 1)
                          : 0.0;
  }
};

// One memory snapshot (Fig. 16's stacked areas).
struct MemorySample {
  double time = 0.0;
  int64_t weight_bytes = 0;
  int64_t reserved_bytes = 0;
  int64_t used_bytes = 0;    // KV required by running requests (needed).
  int64_t wasted_bytes = 0;  // Allocated but not needed.
  int64_t cached_bytes = 0;
  int64_t unallocated_bytes = 0;
  int64_t host_bytes = 0;  // Host offload tier occupancy (0 when disabled).
};

class EngineMetrics {
 public:
  void RecordStep(double time, int64_t scheduled_tokens, int decode_batch, int running,
                  int waiting);
  void RecordMemory(const MemorySample& sample) { memory_timeline_.push_back(sample); }
  void RecordFinished(const RequestRecord& record) { finished_.push_back(record); }

  [[nodiscard]] const std::vector<RequestRecord>& finished() const { return finished_; }
  [[nodiscard]] const std::vector<MemorySample>& memory_timeline() const {
    return memory_timeline_;
  }
  [[nodiscard]] const TimeSeries& decode_batch_series() const { return decode_batch_; }
  [[nodiscard]] const TimeSeries& running_series() const { return running_; }
  [[nodiscard]] int64_t total_steps() const { return total_steps_; }
  [[nodiscard]] int64_t total_scheduled_tokens() const { return total_scheduled_tokens_; }
  [[nodiscard]] double last_time() const { return last_time_; }

  // Aggregates over finished, non-failed requests.
  [[nodiscard]] int64_t CompletedRequests() const;
  [[nodiscard]] int64_t FailedRequests() const;
  // Records aborted via CancelRequest (a subset of FailedRequests). The fleet recovery
  // ledger cross-checks these against the drivers' death_cancels counters.
  [[nodiscard]] int64_t CancelledRecords() const;
  [[nodiscard]] int64_t TotalOutputTokens() const;
  [[nodiscard]] double RequestThroughput() const;  // requests / s over the busy interval.
  [[nodiscard]] double TokenThroughput() const;    // output tokens / s.
  [[nodiscard]] double MeanE2eLatency() const;
  [[nodiscard]] double MeanTtft() const;
  [[nodiscard]] double MeanTpot() const;
  [[nodiscard]] double MeanDecodeBatch() const { return decode_batch_.MeanValue(); }

  // Per-request latency distributions over finished, non-failed requests — the real-percentile
  // inputs ClusterMetrics and the fleet benches aggregate (step averages hide tail latency).
  // TpotDistribution only includes requests with more than one output token (Tpot is undefined
  // otherwise, matching MeanTpot).
  [[nodiscard]] Summary TtftDistribution() const;
  [[nodiscard]] Summary TpotDistribution() const;
  [[nodiscard]] Summary E2eDistribution() const;
  // Convenience percentile queries (`p` in [0, 100]); 0.0 when no request qualifies.
  [[nodiscard]] double TtftPercentile(double p) const;
  [[nodiscard]] double TpotPercentile(double p) const;

  // Counters maintained directly by the engine.
  int64_t vision_encoder_runs = 0;
  double vision_encode_time = 0.0;
  int64_t cache_hit_tokens = 0;
  int64_t prefill_tokens_computed = 0;
  // Host offload tier (all zero when the tier is disabled).
  int64_t swap_out_events = 0;
  int64_t swap_in_events = 0;
  int64_t swap_fallback_events = 0;  // Chose/held a swap set but had to recompute anyway.
  int64_t recomputed_tokens = 0;     // Computed tokens discarded by recompute preemptions.
  double swap_stall_time = 0.0;      // Engine time stalled on PCIe transfers.
  // Fault injection & recovery (all zero when no faults are configured).
  int64_t faults_injected = 0;        // Injector fires across all sites.
  int64_t fault_retries = 0;          // Transfer retries after injected PCIe errors.
  double fault_backoff_time = 0.0;    // Sim time spent waiting out retries/timeouts.
  int64_t gpu_step_faults = 0;        // Steps whose results were discarded and recomputed.
  int64_t shed_requests = 0;          // Requests failed by the admission shed gate.
  int64_t degraded_mode_transitions = 0;  // Offload tier detached (GPU-only fallback).
  int64_t cancelled_requests = 0;     // CancelRequest() aborts (incl. deadline expiries).
  int64_t deadline_expirations = 0;   // Subset of cancellations caused by deadlines.
  // Elastic memory governor (all zero when no governor is attached). The resize ledger
  // identity, checked by the pressure-chaos oracle (DESIGN.md §11):
  //   pool_grow_pages − pool_shrink_pages == current pool pages − initial pool pages,
  //   pool_grow_attempts == grows committed + pool_grow_rollbacks, and likewise for
  //   shrink/repartition — a rolled-back transition contributes zero net delta.
  int64_t pool_grow_attempts = 0;
  int64_t pool_shrink_attempts = 0;
  int64_t repartition_attempts = 0;
  int64_t pool_grow_pages = 0;        // Large pages added by committed grows.
  int64_t pool_shrink_pages = 0;      // Large pages removed by committed shrinks.
  int64_t repartitions = 0;           // Committed pool repartitions (model hot-swaps).
  int64_t pool_grow_rollbacks = 0;    // pool_grow fault fired; nothing changed.
  int64_t pool_shrink_rollbacks = 0;  // pool_shrink_drain fault fired; nothing removed.
  int64_t repartition_rollbacks = 0;  // repartition_commit fired; old layout kept.
  int64_t elastic_parked = 0;         // Pressure-ladder rung 1: preempt-to-host parks.
  int64_t elastic_shed = 0;           // Pressure-ladder rung 2: governor-driven sheds.
  int64_t ladder_activations = 0;     // Times the governor stepped onto any rung.

 private:
  std::vector<RequestRecord> finished_;
  std::vector<MemorySample> memory_timeline_;
  TimeSeries decode_batch_;
  TimeSeries running_;
  int64_t total_steps_ = 0;
  int64_t total_scheduled_tokens_ = 0;
  double last_time_ = 0.0;
};

}  // namespace jenga

#endif  // JENGA_SRC_METRICS_METRICS_H_
