// Quickstart: build a heterogeneous model description, derive its KV groups, stand up the
// two-level allocator, and serve a few requests through the engine — the five-minute tour of
// the public API.

#include <cstdio>

#include "src/engine/engine.h"
#include "src/model/kv_spec.h"
#include "src/model/model_zoo.h"

using namespace jenga;

int main() {
  // 1. Pick a model. Gemma-2 interleaves sliding-window and full attention, so its KV cache
  //    is heterogeneous: two groups with different dependency patterns.
  const ModelConfig model = Gemma2_9B();
  std::printf("model: %s\n", model.DebugString().c_str());

  // 2. Derive the KV-group decomposition the memory manager works with.
  const KvSpec spec = BuildKvSpec(model, KvSpecOptions{});
  std::printf("%s\n", spec.DebugString().c_str());

  // 3. Stand up a serving engine with Jenga memory management on a simulated H100.
  EngineConfig config = JengaProfile(model, H100());
  Engine engine(config);

  // 4. Submit a few requests (token ids are opaque to the engine).
  for (int i = 0; i < 4; ++i) {
    Prompt prompt;
    for (int t = 0; t < 512; ++t) {
      prompt.tokens.push_back((i * 7 + t) % 50000);
    }
    engine.Submit(MakeRequest(/*id=*/i, std::move(prompt), /*output_len=*/64,
                              /*arrival_time=*/0.1 * i));
  }

  // 5. Run to completion and inspect the results.
  engine.RunToCompletion();
  std::printf("\ncompleted: %lld requests in %.2f simulated seconds\n",
              static_cast<long long>(engine.metrics().CompletedRequests()), engine.now());
  for (const RequestRecord& record : engine.metrics().finished()) {
    std::printf("  request %lld: ttft=%.3fs e2e=%.3fs (%lld prompt, %lld output tokens)\n",
                static_cast<long long>(record.id), record.Ttft(), record.E2eLatency(),
                static_cast<long long>(record.prompt_len),
                static_cast<long long>(record.output_len));
  }

  // 6. The memory manager's view: how the pool was carved up at the end of the run.
  const KvManager::MemoryStats stats = engine.kv().GetMemoryStats();
  std::printf("\nKV pool: %.2f GB, cached for reuse: %.2f GB, internal fragmentation: %lld B\n",
              stats.pool_bytes / 1e9, stats.cached_bytes / 1e9,
              static_cast<long long>(stats.internal_frag_bytes));
  return 0;
}
