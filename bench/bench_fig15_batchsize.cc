// Figure 15: decode batch-size timeline for the Ministral 8B model under the paper's
// simulated long-document workload (20 requests at once, inputs 55k–110k tokens, outputs
// 50–100), across vLLM, SGLang, TGI (homogeneous profiles), and Jenga. Paper numbers: average
// batch 5.39 for Jenga vs 2.63/2.74/2.50, finishing in ~300 steps vs ~600 (TGI ends early —
// no --ignore-eos).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct ProfileResult {
  double mean_batch = 0.0;
  int64_t steps = 0;
  int64_t out_tokens = 0;
  double wall = 0.0;
  std::vector<double> timeline;
};

ProfileResult RunProfile(EngineConfig config) {
  config.enable_prefix_caching = false;  // The workload has no shared prefixes.
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  LongDocDataset dataset;
  Rng rng(0xF15);
  for (Request& r : GenerateBatch(dataset, 20, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  ProfileResult result;
  result.timeline = engine.metrics().decode_batch_series().Resample(60);
  // Mean decode batch over decode-active steps only (matching the paper's metric).
  double batch_sum = 0.0;
  int64_t batch_steps = 0;
  for (const auto& point : engine.metrics().decode_batch_series().points()) {
    if (point.value > 0) {
      batch_sum += point.value;
      ++batch_steps;
    }
  }
  result.mean_batch = batch_steps > 0 ? batch_sum / static_cast<double>(batch_steps) : 0.0;
  result.steps = engine.metrics().total_steps();
  result.out_tokens = engine.metrics().TotalOutputTokens();
  result.wall = engine.now();
  return result;
}

void Run() {
  PrintHeader(
      "Figure 15: Decode batch size — Ministral 8B, 20 long-doc requests at once (H100)");
  PrintRow({{10, "Engine"},
            {14, "avg batch"},
            {10, "steps"},
            {12, "out tokens"},
            {12, "wall"}});
  PrintRule();
  const ModelConfig model = Ministral8B();
  const std::vector<const char*> names = {"vLLM", "SGLang", "TGI", "Jenga"};
  // One independent engine run per profile: compute in parallel, print in figure order.
  const std::vector<std::function<ProfileResult()>> tasks = {
      [&model] { return RunProfile(VllmProfile(model, H100())); },
      [&model] { return RunProfile(SglangProfile(model, H100())); },
      [&model] { return RunProfile(TgiProfile(model, H100())); },
      [&model] { return RunProfile(JengaProfile(model, H100())); },
  };
  const std::vector<ProfileResult> results = ParallelSweep(tasks);
  for (size_t i = 0; i < results.size(); ++i) {
    const ProfileResult& result = results[i];
    PrintRow({{10, names[i]},
              {14, Fmt("%.2f", result.mean_batch)},
              {10, FmtI(result.steps)},
              {12, FmtI(result.out_tokens)},
              {12, Fmt("%.1fs", result.wall)}});
    std::printf("  batch timeline: %s\n", Sparkline(result.timeline).c_str());
  }
  std::printf(
      "\nShape checks vs paper: Jenga sustains ~2x the decode batch of the homogeneous\n"
      "engines and finishes in roughly half the steps; TGI emits fewer tokens (stops at\n"
      "its simulated EOS) and so ends earlier despite a small batch.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
