# Empty dependencies file for bench_sec43_request_aware.
# This may be replaced when dependencies are built.
