#include "src/core/jenga_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/model/kv_spec.h"
#include "src/model/model_zoo.h"

namespace jenga {
namespace {

// Two-group spec mirroring the paper's Figure 6: image pages of 256 bytes and text pages of
// 384 bytes, LCM page 768.
KvSpec Figure6Spec() {
  KvSpec spec;
  KvGroupSpec image;
  image.name = "image";
  image.kind = GroupKind::kCrossAttention;
  image.scope = GroupScope::kImageTokens;
  image.num_layers = 2;
  image.bytes_per_token_per_layer = 128;
  image.tokens_per_page = 1;
  image.page_bytes = 256;
  KvGroupSpec text;
  text.name = "text";
  text.kind = GroupKind::kFullAttention;
  text.num_layers = 3;
  text.bytes_per_token_per_layer = 128;
  text.tokens_per_page = 1;
  text.page_bytes = 384;
  spec.groups = {image, text};
  return spec;
}

TEST(JengaAllocator, ConstructionUsesLcmPageSize) {
  JengaAllocator alloc(Figure6Spec(), /*pool_bytes=*/768 * 8);
  EXPECT_EQ(alloc.lcm().large_page_bytes(), 768);
  EXPECT_EQ(alloc.lcm().num_pages(), 8);
  EXPECT_EQ(alloc.num_groups(), 2);
  EXPECT_EQ(alloc.group(0).pages_per_large(), 3);  // 768 / 256.
  EXPECT_EQ(alloc.group(1).pages_per_large(), 2);  // 768 / 384.
}

TEST(JengaAllocator, GroupsShareThePool) {
  JengaAllocator alloc(Figure6Spec(), 768 * 2);
  // Group 0 takes both large pages (6 image pages), leaving none for group 1.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(alloc.group(0).Allocate(1, 0).has_value());
  }
  EXPECT_FALSE(alloc.group(1).Allocate(1, 0).has_value());
}

TEST(JengaAllocator, WholePageEvictionMovesMemoryBetweenGroups) {
  // §5.4 step 3: once group 0's content is evictable, group 1 can steal the large pages.
  JengaAllocator alloc(Figure6Spec(), 768 * 2);
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 6; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(1, /*now=*/i);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, /*keep_cached=*/true);
  }
  const auto text_page = alloc.group(1).Allocate(2, /*now=*/10);
  ASSERT_TRUE(text_page.has_value());
  // One large page was reclaimed from group 0; its three cached image pages are gone.
  EXPECT_EQ(alloc.group(0).GetStats().evictable_pages, 3);
  EXPECT_EQ(alloc.group(1).GetStats().large_pages_held, 1);
  alloc.CheckConsistency();
}

TEST(JengaAllocator, WholePageEvictionPrefersLruLargePage) {
  JengaAllocator alloc(Figure6Spec(), 768 * 2);
  // Large page A holds pages accessed at t=0..2, large page B at t=10..12.
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 6; ++i) {
    const Tick t = (i < 3) ? i : 10 + i;
    const SmallPageId p = *alloc.group(0).Allocate(1, t);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, true);
  }
  (void)*alloc.group(1).Allocate(2, 20);
  // The newer half (hashes 0x103..0x105) must survive.
  EXPECT_FALSE(alloc.group(0).LookupCached(0x100).has_value());
  EXPECT_FALSE(alloc.group(0).LookupCached(0x102).has_value());
  EXPECT_TRUE(alloc.group(0).LookupCached(0x103).has_value());
  EXPECT_TRUE(alloc.group(0).LookupCached(0x105).has_value());
}

TEST(JengaAllocator, ReclaimHeapRevalidatesRevivedPages) {
  JengaAllocator alloc(Figure6Spec(), 768 * 2);
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 6; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(1, i);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, true);
  }
  // Revive the older large page's pages: the stale heap entry must be skipped and the *other*
  // large page reclaimed instead.
  alloc.group(0).AddRef(pages[0]);
  (void)*alloc.group(1).Allocate(2, 20);
  EXPECT_TRUE(alloc.group(0).LookupCached(0x100).has_value());
  EXPECT_FALSE(alloc.group(0).LookupCached(0x103).has_value());
  alloc.CheckConsistency();
}

TEST(JengaAllocator, ReclaimHeapToleratesDuplicateEqualTimestampEntries) {
  // Three fully-evictable large pages whose slots all share last-access tick 5 give the
  // reclaim heap three entries with identical keys; reviving and re-releasing one page per
  // large then pushes a second, duplicate entry for each. The lazy heap must reclaim each
  // large exactly once, skip the stale duplicates silently, and fail allocation gracefully
  // once everything evictable is gone.
  JengaAllocator alloc(Figure6Spec(), 768 * 3);
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 9; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(1, /*now=*/5);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, /*keep_cached=*/true);
  }
  for (int l = 0; l < 3; ++l) {
    alloc.group(0).AddRef(pages[static_cast<size_t>(3 * l)]);
    alloc.group(0).Release(pages[static_cast<size_t>(3 * l)], true);
  }
  // Six heap entries now cover three candidates. Drain the pool from group 1: two text
  // pages fit per reclaimed large, so every odd allocation forces one reclaim. With equal
  // keys the victim order is the binary-heap sift order over the duplicate-bearing array —
  // L0, L2, L1 here — NOT insertion order. This locks the tie-break: fig17 diverges if the
  // heap is deduplicated or the ordering nudged (see the CHANGES.md PR 1 note).
  const LargePageId victim_order[] = {0, 2, 1};
  const BlockHash bases[] = {0x100, 0x103, 0x106};
  for (int step = 0; step < 3; ++step) {
    ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/20).has_value());
    ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/20).has_value());
    alloc.CheckConsistency();
    for (int l = 0; l < 3; ++l) {
      bool reclaimed = false;
      for (int v = 0; v <= step; ++v) {
        reclaimed = reclaimed || victim_order[v] == l;
      }
      EXPECT_EQ(alloc.group(0).LookupCached(bases[l]).has_value(), !reclaimed)
          << "step " << step << " large " << l;
    }
  }
  EXPECT_EQ(alloc.group(0).GetStats().large_pages_held, 0);
  EXPECT_EQ(alloc.group(1).GetStats().large_pages_held, 3);
  // Only the three stale duplicates remain in the heap; all must be skipped.
  EXPECT_FALSE(alloc.group(1).Allocate(2, /*now=*/30).has_value());
  alloc.CheckConsistency();
}

TEST(JengaAllocator, ReclaimHeapEqualTimestampsRespectLazyRekey) {
  // Both large pages become candidates with identical timestamp 5; a later touch of large
  // A's page leaves its heap entry stale (key 5, true timestamp 9). Whichever entry pops
  // first, the revalidation step must re-key A and reclaim B — equal keys never excuse
  // evicting the recently-touched page.
  JengaAllocator alloc(Figure6Spec(), 768 * 2);
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 6; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(1, /*now=*/5);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, true);
  }
  alloc.group(0).UpdateLastAccess(pages[0], /*now=*/9);
  ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/20).has_value());
  // Large B (hashes 0x103..0x105, timestamp 5) was reclaimed; large A survived.
  EXPECT_TRUE(alloc.group(0).LookupCached(0x100).has_value());
  EXPECT_TRUE(alloc.group(0).LookupCached(0x102).has_value());
  EXPECT_FALSE(alloc.group(0).LookupCached(0x103).has_value());
  EXPECT_FALSE(alloc.group(0).LookupCached(0x105).has_value());
  alloc.CheckConsistency();
  // A second large is needed next: now A's re-keyed entry (9) is the only candidate left.
  ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/21).has_value());
  ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/22).has_value());
  EXPECT_FALSE(alloc.group(0).LookupCached(0x100).has_value());
  EXPECT_EQ(alloc.group(1).GetStats().large_pages_held, 2);
  alloc.CheckConsistency();
}

TEST(JengaAllocator, FreeAndAvailableSmallPages) {
  JengaAllocator alloc(Figure6Spec(), 768 * 4);
  EXPECT_EQ(alloc.FreeSmallPages(0), 4 * 3);
  EXPECT_EQ(alloc.FreeSmallPages(1), 4 * 2);
  const SmallPageId p = *alloc.group(0).Allocate(1, 0);
  // One large page now held by group 0 with 2 empty slots.
  EXPECT_EQ(alloc.FreeSmallPages(0), 3 * 3 + 2);
  EXPECT_EQ(alloc.FreeSmallPages(1), 3 * 2);
  alloc.group(0).SetContentHash(p, 0x1);
  alloc.group(0).Release(p, true);
  // The cached page counts toward available-but-not-free capacity.
  EXPECT_EQ(alloc.FreeSmallPages(0), 3 * 3 + 2);
  EXPECT_EQ(alloc.AvailableSmallPages(0), 3 * 3 + 2 + 1);
}

TEST(JengaAllocator, BreakdownSumsToPool) {
  JengaAllocator alloc(Figure6Spec(), 768 * 4 + 32);
  (void)*alloc.group(0).Allocate(1, 0);
  (void)*alloc.group(1).Allocate(2, 0);
  const auto breakdown = alloc.GetBreakdown();
  EXPECT_EQ(breakdown.pool_bytes, 768 * 4 + 32);
  EXPECT_EQ(breakdown.allocated_bytes, 768 * 2);
  EXPECT_EQ(breakdown.used_bytes, 256 + 384);
  EXPECT_EQ(breakdown.empty_bytes, 2 * 256 + 384);
  EXPECT_EQ(breakdown.evictable_bytes, 0);
  EXPECT_EQ(breakdown.unallocated_bytes, 768 * 2 + 32);
  EXPECT_EQ(breakdown.allocated_bytes + breakdown.unallocated_bytes, breakdown.pool_bytes);
  alloc.CheckConsistency();
}

TEST(JengaAllocator, OverrideLargePageSize) {
  // MAX-page ablation: force the large page to the larger group page (384); the 256-byte
  // group cannot pack into it evenly, so construction must reject it.
  EXPECT_DEATH(JengaAllocator(Figure6Spec(), 768 * 4, /*large_page_bytes_override=*/384),
               "must divide");
  // A valid override: double the LCM.
  JengaAllocator alloc(Figure6Spec(), 768 * 4, 1536);
  EXPECT_EQ(alloc.lcm().large_page_bytes(), 1536);
  EXPECT_EQ(alloc.group(0).pages_per_large(), 6);
}

TEST(JengaAllocator, RealModelSpec) {
  const KvSpec spec = BuildKvSpec(Jamba52B_Fp8(), KvSpecOptions{});
  JengaAllocator alloc(spec, /*pool_bytes=*/spec.LcmPageBytes() * 10);
  // Group order follows the spec; find the mamba group.
  int mamba_index = -1;
  for (int i = 0; i < alloc.num_groups(); ++i) {
    if (alloc.group(i).spec().kind == GroupKind::kMamba) {
      mamba_index = i;
    }
  }
  ASSERT_GE(mamba_index, 0);
  EXPECT_EQ(alloc.group(mamba_index).pages_per_large(), 1);
  const auto state = alloc.group(mamba_index).Allocate(1, 0);
  ASSERT_TRUE(state.has_value());
  alloc.CheckConsistency();
}

}  // namespace
}  // namespace jenga
