file(REMOVE_RECURSE
  "CMakeFiles/custom_layer_policy.dir/custom_layer_policy.cpp.o"
  "CMakeFiles/custom_layer_policy.dir/custom_layer_policy.cpp.o.d"
  "custom_layer_policy"
  "custom_layer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_layer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
