// Shared closed-loop load driver for the ServingFrontend scaling benchmarks (bench_frontend
// and the frontend.* keys in bench_perf). Each producer thread runs a closed loop with think
// time — submit one request, poll its stream to a terminal state, sleep a client-turnaround
// interval (network RTT + client-side processing), submit the next. A single closed-loop
// client is therefore latency-bound: the engine idles during every think interval. Adding
// producers overlaps their think times and keeps requests live for continuous batching —
// that overlap, not engine-side parallelism, is where the multi-producer throughput comes
// from (the engine core stays single-threaded by design; see DESIGN.md §9).

#ifndef JENGA_BENCH_FRONTEND_BENCH_H_
#define JENGA_BENCH_FRONTEND_BENCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/frontend.h"
#include "src/model/model_config.h"

namespace jenga {

// Same shape as the engine tests' tiny model: 4 full-attention layers, 1 KB/token. Small on
// purpose — the bench measures frontend/scheduler overhead, not simulated FLOPs.
inline ModelConfig FrontendBenchModel() {
  ModelConfig model;
  model.name = "frontend-bench";
  model.params_b = 0.1;
  model.hidden_size = 256;
  model.max_context_len = 65536;
  model.compute_layers = 4;
  for (int i = 0; i < 4; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 64;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

inline EngineConfig FrontendBenchConfig(int alloc_shards = 1) {
  EngineConfig config;
  config.model = FrontendBenchModel();
  GpuSpec gpu;
  gpu.name = "bench-gpu";
  gpu.memory_bytes = 4LL << 30;  // Ample pool: no preemptions; pure throughput.
  gpu.flops = 1e13;
  gpu.mem_bandwidth = 1e11;
  gpu.max_batched_tokens = 4096;
  gpu.max_num_seqs = 64;
  gpu.reserved_bytes = 0;
  config.gpu = gpu;
  config.jenga = true;
  config.enable_prefix_caching = false;  // Every request pays full allocation.
  config.memory_sample_every = 0;
  config.alloc_shards = alloc_shards;
  return config;
}

struct FrontendLoadResult {
  int64_t completed = 0;
  double wall_seconds = 0.0;
  double requests_per_s = 0.0;
  double first_token_p50_ms = 0.0;
  double first_token_p95_ms = 0.0;
};

// Runs `producers` closed-loop client threads of `per_producer` requests each (prompt 256,
// output 8, `think_us` of client turnaround between completion and the next submit) against
// a started frontend and reports sustained completion throughput plus submit→first-token
// latency percentiles.
inline FrontendLoadResult RunClosedLoop(int producers, int per_producer, int alloc_shards = 1,
                                        int64_t think_us = 200) {
  ServingFrontend::Options options;
  options.queue_capacity = 256;
  ServingFrontend frontend(FrontendBenchConfig(alloc_shards), options);
  frontend.Start();

  std::mutex latencies_mu;
  std::vector<double> first_token_ms;
  first_token_ms.reserve(static_cast<size_t>(producers) * static_cast<size_t>(per_producer));

  const auto begin = std::chrono::steady_clock::now();
  frontend.RunClients(producers, [&](int client) {
    std::vector<double> local;
    local.reserve(static_cast<size_t>(per_producer));
    for (int i = 0; i < per_producer; ++i) {
      Prompt prompt;
      prompt.tokens.reserve(256);
      for (int t = 0; t < 256; ++t) {
        prompt.tokens.push_back(client * 100000 + i * 256 + t);  // No shared prefixes.
      }
      const RequestId id = frontend.NextRequestId();
      StreamHandle stream = frontend.SubmitAsync(MakeRequest(id, std::move(prompt), 8, 0.0));
      while (!stream->Done()) {
        std::this_thread::yield();
      }
      const double submit = stream->submit_wall.load(std::memory_order_acquire);
      const double first = stream->first_token_wall.load(std::memory_order_acquire);
      if (first >= 0.0 && submit >= 0.0) {
        local.push_back((first - submit) * 1e3);
      }
      if (think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(think_us));
      }
    }
    std::lock_guard<std::mutex> lock(latencies_mu);
    first_token_ms.insert(first_token_ms.end(), local.begin(), local.end());
  });
  const auto end = std::chrono::steady_clock::now();
  frontend.Shutdown();

  FrontendLoadResult result;
  result.completed = frontend.counters().finished;
  result.wall_seconds = std::chrono::duration<double>(end - begin).count();
  result.requests_per_s = static_cast<double>(result.completed) / result.wall_seconds;
  if (!first_token_ms.empty()) {
    std::sort(first_token_ms.begin(), first_token_ms.end());
    const auto pct = [&first_token_ms](double q) {
      const size_t at =
          static_cast<size_t>(q * static_cast<double>(first_token_ms.size() - 1));
      return first_token_ms[at];
    };
    result.first_token_p50_ms = pct(0.50);
    result.first_token_p95_ms = pct(0.95);
  }
  return result;
}

}  // namespace jenga

#endif  // JENGA_BENCH_FRONTEND_BENCH_H_
