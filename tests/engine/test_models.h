// Small synthetic models and GPU specs for fast engine tests.

#ifndef JENGA_TESTS_ENGINE_TEST_MODELS_H_
#define JENGA_TESTS_ENGINE_TEST_MODELS_H_

#include "src/engine/gpu.h"
#include "src/engine/request.h"
#include "src/model/model_config.h"

namespace jenga {

// 4 full-attention layers, 1 KV head × 64 dims → 256 B/token/layer, 1 KB/token total.
inline ModelConfig TinyFullModel() {
  ModelConfig model;
  model.name = "tiny-full";
  model.params_b = 0.1;
  model.hidden_size = 256;
  model.max_context_len = 65536;
  model.compute_layers = 4;
  for (int i = 0; i < 4; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 64;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

// Half sliding-window (64 tokens), half full attention.
inline ModelConfig TinySlidingModel(int window = 64) {
  ModelConfig model = TinyFullModel();
  model.name = "tiny-sliding";
  for (size_t i = 0; i < model.layers.size(); i += 2) {
    model.layers[i].kind = LayerKind::kSlidingWindow;
    model.layers[i].sliding_window = window;
  }
  return model;
}

// Half full attention, half PyramidKV-style sparse layers (token budget 48).
inline ModelConfig TinyPyramidModel(int budget = 48) {
  ModelConfig model = TinyFullModel();
  model.name = "tiny-pyramid";
  for (size_t i = 1; i < model.layers.size(); i += 2) {
    model.layers[i].kind = LayerKind::kSparsePyramid;
    model.layers[i].token_budget = budget;
  }
  return model;
}

// 2 small full-attention layers (256 B/token total): a speculative-decoding draft model.
inline ModelConfig TinyDraftModel() {
  ModelConfig model;
  model.name = "tiny-draft";
  model.params_b = 0.02;
  model.hidden_size = 128;
  model.max_context_len = 65536;
  model.compute_layers = 2;
  for (int i = 0; i < 2; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 32;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

// 1 full-attention layer + 3 Mamba layers (state 8 KB each).
inline ModelConfig TinyMambaModel() {
  ModelConfig model;
  model.name = "tiny-mamba";
  model.params_b = 0.1;
  model.hidden_size = 256;
  model.max_context_len = 65536;
  model.compute_layers = 4;
  LayerSpec attn;
  attn.kind = LayerKind::kFullAttention;
  attn.num_kv_heads = 1;
  attn.head_dim = 64;
  attn.dtype_bytes = 2;
  model.layers.push_back(attn);
  for (int i = 0; i < 3; ++i) {
    LayerSpec mamba;
    mamba.kind = LayerKind::kMamba;
    mamba.mamba_state_bytes = 8192;
    model.layers.push_back(mamba);
  }
  return model;
}

// 2 self-attention + 2 cross-attention layers, 8 tokens per image.
inline ModelConfig TinyVisionModel() {
  ModelConfig model;
  model.name = "tiny-vision";
  model.params_b = 0.1;
  model.hidden_size = 256;
  model.max_context_len = 65536;
  model.compute_layers = 4;
  for (int i = 0; i < 4; ++i) {
    LayerSpec layer;
    layer.kind = i < 2 ? LayerKind::kFullAttention : LayerKind::kCrossAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 64;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  model.vision.present = true;
  model.vision.tokens_per_image = 8;
  model.vision.embed_bytes_per_token = 512;
  model.vision.encoder_params_b = 0.02;
  return model;
}

inline GpuSpec TestGpu() {
  GpuSpec gpu;
  gpu.name = "test-gpu";
  gpu.memory_bytes = 1LL << 30;
  gpu.flops = 1e13;
  gpu.mem_bandwidth = 1e11;
  gpu.max_batched_tokens = 512;
  gpu.max_num_seqs = 16;
  gpu.reserved_bytes = 0;
  return gpu;
}

inline Prompt TextPrompt(int64_t len, int32_t base = 100) {
  Prompt prompt;
  for (int64_t i = 0; i < len; ++i) {
    prompt.tokens.push_back(base + static_cast<int32_t>(i % 1000));
  }
  return prompt;
}

// `layout` example: "ttiiit" — t = text token, i = image token.
inline Prompt MixedPrompt(int64_t text_prefix, int num_images, int tokens_per_image,
                          int64_t text_suffix) {
  Prompt prompt;
  auto push = [&](TokenKind kind, int32_t id) {
    prompt.tokens.push_back(id);
    prompt.kinds.push_back(kind);
  };
  int32_t next = 1;
  for (int64_t i = 0; i < text_prefix; ++i) {
    push(TokenKind::kText, next++);
  }
  for (int img = 0; img < num_images; ++img) {
    for (int i = 0; i < tokens_per_image; ++i) {
      push(TokenKind::kImage, 10000 + next++);
    }
  }
  for (int64_t i = 0; i < text_suffix; ++i) {
    push(TokenKind::kText, next++);
  }
  prompt.num_images = num_images;
  return prompt;
}

}  // namespace jenga

#endif  // JENGA_TESTS_ENGINE_TEST_MODELS_H_
