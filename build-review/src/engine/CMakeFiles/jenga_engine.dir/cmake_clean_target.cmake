file(REMOVE_RECURSE
  "libjenga_engine.a"
)
