// Per-group eviction queue. Orders evictable small pages by (last_access ascending,
// prefix_length descending): LRU for balance across requests (§5.1), with the paper's
// prefix-length tie-break so that, among pages last touched at the same time, the deepest
// token is evicted first — keeping evicted sets aligned across layer types.

#ifndef JENGA_SRC_CORE_EVICTOR_H_
#define JENGA_SRC_CORE_EVICTOR_H_

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/core/types.h"

namespace jenga {

class Evictor {
 public:
  // Adds `page` to the queue with the given priority; the page must not already be present.
  void Insert(SmallPageId page, Tick last_access, int64_t prefix_length);

  // Removes `page` (it became used or empty). No-op if absent.
  void Remove(SmallPageId page);

  // Re-keys `page` in place if present; no-op otherwise (metadata for used pages is kept by
  // the small-page allocator and applied on insertion).
  void UpdateLastAccess(SmallPageId page, Tick last_access);
  void SetPrefixLength(SmallPageId page, int64_t prefix_length);

  // Pops the eviction victim: earliest last_access, then longest prefix_length, then lowest
  // page id (for determinism).
  [[nodiscard]] std::optional<SmallPageId> PopVictim();

  [[nodiscard]] bool Contains(SmallPageId page) const { return keys_.contains(page); }
  [[nodiscard]] size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  // Priority of the page that PopVictim would return, without popping.
  [[nodiscard]] std::optional<Tick> PeekOldestAccess() const;

 private:
  struct Key {
    Tick last_access;
    int64_t neg_prefix_length;  // negated so larger prefixes sort first.
    SmallPageId page;
    auto operator<=>(const Key&) const = default;
  };

  void Rekey(SmallPageId page, Key new_key);

  std::set<Key> queue_;
  std::unordered_map<SmallPageId, Key> keys_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_EVICTOR_H_
