// Property-based tests over the layer policies: for random hit bitmaps and lengths, the hit
// rule, the needed-token rule, and the eviction-metadata hooks must stay mutually consistent.
// Parameterized over seeds (each instantiation explores different random inputs).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/random.h"
#include "src/core/layer_policy.h"
#include "src/core/policy_factory.h"

namespace jenga {
namespace {

struct RecordingOps : GroupCacheOps {
  void UpdateLastAccess(SmallPageId page, Tick now) override { last_access[page] = now; }
  void SetPrefixLength(SmallPageId page, int64_t value) override { prefix_length[page] = value; }
  std::map<SmallPageId, Tick> last_access;
  std::map<SmallPageId, int64_t> prefix_length;
};

std::vector<std::unique_ptr<LayerPolicy>> AllPolicies() {
  std::vector<std::unique_ptr<LayerPolicy>> policies;
  policies.push_back(std::make_unique<FullPrefixPolicy>());
  policies.push_back(std::make_unique<SlidingWindowPolicy>(48));
  policies.push_back(std::make_unique<SlidingWindowPolicy>(7));  // Window < block size.
  policies.push_back(std::make_unique<PyramidPolicy>(64, 4));
  policies.push_back(std::make_unique<ImageCachePolicy>(32));
  return policies;
}

class PolicyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyPropertyTest, NeededRangesAreSortedDisjointAndBounded) {
  Rng rng(GetParam());
  for (const auto& policy : AllPolicies()) {
    for (int trial = 0; trial < 50; ++trial) {
      const int64_t tokens = rng.UniformInt(0, 500);
      const auto ranges = policy->NeededTokenRanges(tokens);
      int64_t previous_end = -1;
      for (const TokenRange& range : ranges) {
        EXPECT_LE(0, range.begin) << policy->name();
        EXPECT_LT(range.begin, range.end) << policy->name();
        EXPECT_LE(range.end, tokens) << policy->name();
        EXPECT_GT(range.begin, previous_end) << policy->name() << ": overlapping/unsorted";
        previous_end = range.end;
      }
      // The final token is always needed (it conditions the next-token computation).
      if (tokens > 0) {
        ASSERT_FALSE(ranges.empty()) << policy->name();
        EXPECT_EQ(ranges.back().end, tokens) << policy->name();
      }
    }
  }
}

TEST_P(PolicyPropertyTest, HitRuleConsistentWithNeededRanges) {
  // valid[p] must equal "every block intersecting a needed range of a p-block prefix is hit".
  Rng rng(GetParam() ^ 0x9999);
  const int kBlock = 16;
  for (const auto& policy : AllPolicies()) {
    for (int trial = 0; trial < 30; ++trial) {
      const int num_blocks = static_cast<int>(rng.UniformInt(0, 24));
      std::vector<bool> is_hit(static_cast<size_t>(num_blocks));
      for (int b = 0; b < num_blocks; ++b) {
        is_hit[static_cast<size_t>(b)] = rng.Bernoulli(0.7);
      }
      const std::vector<bool> valid = policy->GetPossiblePrefix(is_hit, kBlock);
      ASSERT_EQ(valid.size(), is_hit.size() + 1);
      EXPECT_TRUE(valid[0]);
      for (int p = 1; p <= num_blocks; ++p) {
        bool expected = true;
        for (const TokenRange& range : policy->NeededTokenRanges(p * kBlock)) {
          const int64_t lo = range.begin / kBlock;
          const int64_t hi = std::min<int64_t>(p, CeilDiv(range.end, kBlock));
          for (int64_t b = lo; b < hi; ++b) {
            expected = expected && is_hit[static_cast<size_t>(b)];
          }
        }
        EXPECT_EQ(valid[static_cast<size_t>(p)], expected)
            << policy->name() << " p=" << p << " blocks=" << num_blocks;
      }
    }
  }
}

TEST_P(PolicyPropertyTest, AllHitsMakeEveryPrefixValid) {
  Rng rng(GetParam() ^ 0x1111);
  for (const auto& policy : AllPolicies()) {
    const int num_blocks = static_cast<int>(rng.UniformInt(1, 32));
    const std::vector<bool> all_hit(static_cast<size_t>(num_blocks), true);
    for (const bool v : policy->GetPossiblePrefix(all_hit, 16)) {
      EXPECT_TRUE(v) << policy->name();
    }
  }
}

TEST_P(PolicyPropertyTest, UpdateLastAccessTouchesExactlyNeededBlocks) {
  Rng rng(GetParam() ^ 0x2222);
  const int kBlock = 16;
  for (const auto& policy : AllPolicies()) {
    const int64_t tokens = rng.UniformInt(1, 400);
    const int64_t num_blocks = CeilDiv(tokens, kBlock);
    std::vector<SmallPageId> pages;
    for (int64_t b = 0; b < num_blocks; ++b) {
      pages.push_back(1000 + b);
    }
    RequestPages view;
    view.request = 1;
    view.pages = pages;
    view.num_tokens = tokens;
    view.tokens_per_page = kBlock;
    RecordingOps ops;
    policy->UpdateLastAccess(view, /*now=*/42, ops);
    for (int64_t b = 0; b < num_blocks; ++b) {
      bool needed = false;
      for (const TokenRange& range : policy->NeededTokenRanges(tokens)) {
        if (range.begin < (b + 1) * kBlock && range.end > b * kBlock) {
          needed = true;
        }
      }
      EXPECT_EQ(ops.last_access.contains(1000 + b), needed)
          << policy->name() << " block " << b << " of " << num_blocks;
    }
  }
}

TEST_P(PolicyPropertyTest, MambaCheckpointsIndependent) {
  Rng rng(GetParam() ^ 0x3333);
  MambaPolicy policy(512);
  const int checkpoints = static_cast<int>(rng.UniformInt(0, 16));
  std::vector<bool> is_hit(static_cast<size_t>(checkpoints));
  for (int i = 0; i < checkpoints; ++i) {
    is_hit[static_cast<size_t>(i)] = rng.Bernoulli(0.5);
  }
  const std::vector<bool> valid = policy.GetPossiblePrefix(is_hit, 512);
  EXPECT_TRUE(valid[0]);
  for (int p = 1; p <= checkpoints; ++p) {
    EXPECT_EQ(valid[static_cast<size_t>(p)], is_hit[static_cast<size_t>(p) - 1]);
  }
}

TEST_P(PolicyPropertyTest, ImagePrioritiesAlignAcrossGroups) {
  // Cross-attention KV and vision-embedding caches of the same model must assign the SAME
  // randomized priority to the same image so whole images evict together across groups.
  Rng rng(GetParam() ^ 0x4444);
  const int tokens_per_image = 32;
  ImageCachePolicy cross(tokens_per_image);
  ImageCachePolicy vision(tokens_per_image);
  const RequestId request = rng.UniformInt(1, 1000);
  std::vector<SmallPageId> pages = {0, 1, 2, 3};  // 2 images × 2 blocks.
  RequestPages view;
  view.request = request;
  view.pages = pages;
  view.num_tokens = 64;
  view.tokens_per_page = 16;
  RecordingOps a;
  RecordingOps b;
  cross.SetPrefixLength(view, a);
  vision.SetPrefixLength(view, b);
  EXPECT_EQ(a.prefix_length, b.prefix_length);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

}  // namespace
}  // namespace jenga
