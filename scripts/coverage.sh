#!/usr/bin/env bash
# Line coverage for the test suite, using plain gcov (gcovr/lcov are not in the container).
#
# Usage:
#   scripts/coverage.sh [build-dir]        # default: build-coverage
#   cmake --build build -t coverage        # same thing, driven from any configured build
#
# Configures an instrumented build (-DJENGA_COVERAGE=ON), builds the test executables, runs
# ctest, then aggregates `gcov` output into a per-directory table over src/. The fuzz tests
# run at their default 200 schedules per combination; raise JENGA_FUZZ_SCHEDULES for more.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${JENGA_COVERAGE_INSTRUMENTED:-0}" == "1" && -n "${JENGA_COVERAGE_BUILD:-}" ]]; then
  build="$JENGA_COVERAGE_BUILD"
else
  build="${1:-${JENGA_COVERAGE_BUILD:+${JENGA_COVERAGE_BUILD}-coverage}}"
  build="${build:-$repo/build-coverage}"
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Debug -DJENGA_COVERAGE=ON
fi

test_targets="$(sed -n 's/^jenga_add_test(\([a-z_]*\).*/\1/p' "$repo/tests/CMakeLists.txt")"
# shellcheck disable=SC2086
cmake --build "$build" -j "$(nproc)" --target $test_targets

# Stale counters from previous runs would inflate the numbers.
find "$build" -name '*.gcda' -delete

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# gcov resolves sources relative to the object dirs; collect every counter file and let
# -s/-r restrict the report to in-repo sources.
scratch="$(cd "$build" && pwd)/gcov-report"
rm -rf "$scratch"
mkdir -p "$scratch"
build_abs="$(cd "$build" && pwd)"
mapfile -t gcda < <(find "$build_abs/src" -name '*.gcda')
if [[ ${#gcda[@]} -eq 0 ]]; then
  echo "coverage.sh: no .gcda files under $build_abs/src — was the build instrumented?" >&2
  exit 1
fi
(cd "$scratch" && gcov -r -s "$repo" "${gcda[@]}" > gcov.log 2>&1) || true

awk '
  /^File / {
    file = $2
    gsub(/^'"'"'|'"'"'$/, "", file)
    next
  }
  /^Lines executed:/ && file ~ /^src\// {
    split($0, parts, /[:% ]+/)  # Lines executed:PCT% of N
    pct = parts[3] + 0
    total = parts[5] + 0
    hit = pct * total / 100.0
    dir = file
    sub(/\/[^\/]*$/, "", dir)
    # Headers with inline code appear once per including translation unit; keep the
    # best-covered instance.
    if (total > best_total[file] || hit > best_hit[file]) {
      best_total[file] = total
      best_hit[file] = hit
      best_dir[file] = dir
    }
    file = ""
  }
  END {
    for (f in best_total) {
      dir_hit[best_dir[f]] += best_hit[f]
      dir_total[best_dir[f]] += best_total[f]
    }
    for (d in dir_total) {
      printf "%s %d %.2f\n", d, dir_total[d], dir_hit[d]
    }
  }
' "$scratch/gcov.log" | sort | awk '
  BEGIN {
    printf "%-24s %10s %10s %8s\n", "directory", "lines", "covered", "pct"
    printf "%-24s %10s %10s %8s\n", "---------", "-----", "-------", "---"
  }
  {
    printf "%-24s %10d %10d %7.1f%%\n", $1, $2, $3, 100.0 * $3 / $2
    all_total += $2
    all_hit += $3
  }
  END {
    printf "%-24s %10d %10d %7.1f%%\n", "TOTAL (src/)", all_total, all_hit,
           100.0 * all_hit / all_total
  }
' | tee "$build/coverage_summary.txt"

echo "coverage.sh: full per-file gcov output in $scratch"
