#include "src/engine/request_queue.h"

#include "src/common/check.h"

namespace jenga {

void RequestQueue::PushBack(RequestId id) {
  JENGA_CHECK(id != kNoRequest);
  const auto [it, inserted] = nodes_.emplace(id, Node{tail_, kNoRequest});
  JENGA_CHECK(inserted) << "request " << id << " already queued";
  if (tail_ == kNoRequest) {
    head_ = id;
  } else {
    nodes_[tail_].next = id;
  }
  tail_ = id;
}

void RequestQueue::PushFront(RequestId id) {
  JENGA_CHECK(id != kNoRequest);
  const auto [it, inserted] = nodes_.emplace(id, Node{kNoRequest, head_});
  JENGA_CHECK(inserted) << "request " << id << " already queued";
  if (head_ == kNoRequest) {
    tail_ = id;
  } else {
    nodes_[head_].prev = id;
  }
  head_ = id;
}

void RequestQueue::Erase(RequestId id) {
  const auto it = nodes_.find(id);
  JENGA_CHECK(it != nodes_.end()) << "request " << id << " not queued";
  const Node node = it->second;
  nodes_.erase(it);
  if (node.prev == kNoRequest) {
    head_ = node.next;
  } else {
    nodes_[node.prev].next = node.next;
  }
  if (node.next == kNoRequest) {
    tail_ = node.prev;
  } else {
    nodes_[node.next].prev = node.prev;
  }
}

RequestId RequestQueue::PopFront() {
  JENGA_CHECK(head_ != kNoRequest) << "pop from empty queue";
  const RequestId id = head_;
  Erase(id);
  return id;
}

RequestId RequestQueue::Next(RequestId id) const {
  const auto it = nodes_.find(id);
  JENGA_CHECK(it != nodes_.end()) << "request " << id << " not queued";
  return it->second.next;
}

}  // namespace jenga
