# Empty compiler generated dependencies file for bench_fig15_batchsize.
# This may be replaced when dependencies are built.
