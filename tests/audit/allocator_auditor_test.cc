#include "src/audit/allocator_auditor.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/jenga_allocator.h"
#include "src/model/kv_spec.h"

namespace jenga {
namespace {

// Same two-group shape as the allocator unit tests (Figure 6): 256 B image pages and 384 B
// text pages under a 768 B LCM page.
KvSpec TwoGroupSpec() {
  KvSpec spec;
  KvGroupSpec image;
  image.name = "image";
  image.kind = GroupKind::kCrossAttention;
  image.scope = GroupScope::kImageTokens;
  image.num_layers = 2;
  image.bytes_per_token_per_layer = 128;
  image.tokens_per_page = 1;
  image.page_bytes = 256;
  KvGroupSpec text;
  text.name = "text";
  text.kind = GroupKind::kFullAttention;
  text.num_layers = 3;
  text.bytes_per_token_per_layer = 128;
  text.tokens_per_page = 1;
  text.page_bytes = 384;
  spec.groups = {image, text};
  return spec;
}

void ExpectGreen(const AllocatorAuditor& auditor) {
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(AllocatorAuditor, GreenAcrossAllocateCacheEvictCycle) {
  JengaAllocator alloc(TwoGroupSpec(), /*pool_bytes=*/768 * 2);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&alloc);
  ExpectGreen(auditor);

  std::vector<SmallPageId> pages;
  for (int i = 0; i < 6; ++i) {
    const SmallPageId p = *alloc.group(0).Allocate(1, /*now=*/i);
    alloc.group(0).SetContentHash(p, 0x100 + static_cast<BlockHash>(i));
    pages.push_back(p);
    ExpectGreen(auditor);
  }
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, /*keep_cached=*/true);
    ExpectGreen(auditor);
  }
  // Cross-group reclaim: group 1 steals a large page, evicting cached image pages.
  ASSERT_TRUE(alloc.group(1).Allocate(2, /*now=*/10).has_value());
  ExpectGreen(auditor);
  // Cache revival through the prefix index.
  const auto revived = alloc.group(0).LookupCached(0x103);
  if (revived.has_value()) {
    alloc.group(0).AddRef(*revived);
    ExpectGreen(auditor);
    alloc.group(0).Release(*revived, true);
    ExpectGreen(auditor);
  }
  EXPECT_GT(auditor.events_observed(), 0);
}

TEST(AllocatorAuditor, AttachSeedsFromMidLifeState) {
  JengaAllocator alloc(TwoGroupSpec(), 768 * 4);
  // Mutate before attaching: the auditor must seed its shadow from live state, not replay.
  std::vector<SmallPageId> pages;
  for (int i = 0; i < 5; ++i) {
    const SmallPageId p = *alloc.group(1).Allocate(7, i);
    alloc.group(1).SetContentHash(p, 0x900 + static_cast<BlockHash>(i));
    pages.push_back(p);
  }
  alloc.group(1).Release(pages[0], true);

  AllocatorAuditor auditor;
  auditor.AttachAllocator(&alloc);
  ExpectGreen(auditor);
  // And it keeps tracking transitions from that seeded state.
  alloc.group(1).Release(pages[1], false);
  ExpectGreen(auditor);
  EXPECT_GT(auditor.events_observed(), 0);
}

TEST(AllocatorAuditor, DetachStopsObservationAndClearsState) {
  JengaAllocator alloc(TwoGroupSpec(), 768 * 2);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&alloc);
  (void)*alloc.group(0).Allocate(1, 0);
  const int64_t seen = auditor.events_observed();
  EXPECT_GT(seen, 0);
  auditor.DetachAll();
  EXPECT_EQ(auditor.num_attached_allocators(), 0);
  (void)*alloc.group(0).Allocate(1, 1);
  EXPECT_EQ(auditor.events_observed(), seen);
  ExpectGreen(auditor);  // Nothing attached: trivially green.
}

TEST(AllocatorAuditor, InjectedShadowFaultIsDetected) {
  JengaAllocator alloc(TwoGroupSpec(), 768 * 2);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&alloc);
  (void)*alloc.group(0).Allocate(1, 0);
  ExpectGreen(auditor);
  auditor.InjectShadowFaultForTest();
  EXPECT_FALSE(auditor.Audit().empty());
  EXPECT_TRUE(auditor.FirstViolation().has_value());
}

TEST(AllocatorAuditor, TracksTwoAllocatorsIndependently) {
  JengaAllocator a(TwoGroupSpec(), 768 * 2);
  JengaAllocator b(TwoGroupSpec(), 768 * 2);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&a);
  auditor.AttachAllocator(&b);
  EXPECT_EQ(auditor.num_attached_allocators(), 2);
  (void)*a.group(0).Allocate(1, 0);
  (void)*b.group(1).Allocate(2, 0);
  ExpectGreen(auditor);
}

}  // namespace
}  // namespace jenga
