# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/model_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/baseline_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/workload_test[1]_include.cmake")
