// Manual memory planning for speculative decoding, after SmartSpec (Fig. 19's vLLM-manual
// baseline): statically split the KV pool between target and draft models in proportion to
// their per-token KV sizes. Fragmentation-free when both models are pure self-attention;
// suboptimal for heterogeneous models because the split cannot exploit per-layer freeing.

#ifndef JENGA_SRC_BASELINE_SMARTSPEC_H_
#define JENGA_SRC_BASELINE_SMARTSPEC_H_

#include <cstdint>

#include "src/model/model_config.h"

namespace jenga {

struct PoolSplit {
  int64_t target_bytes = 0;
  int64_t draft_bytes = 0;
};

// Splits `pool_bytes` so both models can hold KV for the same number of tokens.
[[nodiscard]] PoolSplit SmartSpecSplit(const ModelConfig& target, const ModelConfig& draft,
                                       int64_t pool_bytes);

}  // namespace jenga

#endif  // JENGA_SRC_BASELINE_SMARTSPEC_H_
