// MemoryGovernor behavior (ISSUE 9 tentpole): hysteresis-gate boundary semantics, external
// capacity deltas, the pressure ladder (park → shed → repartition-to-fallback), model
// hot-swaps with rollback under the repartition_commit fault site, and the adaptive
// draft/target split on the spec-decode engine. Detached (or attached but never acting) the
// governor must leave engine outcomes byte-identical.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/elastic/memory_governor.h"
#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "src/fault/fault_injector.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// --- HysteresisGate: exact-boundary semantics (load-bearing; see memory_governor.h) ---

TEST(HysteresisGate, EngagesExactlyAtTheHighWatermark) {
  HysteresisGate gate(0.80, 0.92);
  EXPECT_FALSE(gate.Update(0.9199999));  // Strictly below high: stays released.
  EXPECT_TRUE(gate.Update(0.92));        // value == high engages.
  EXPECT_TRUE(gate.engaged());
}

TEST(HysteresisGate, ReleasesOnlyStrictlyBelowTheLowWatermark) {
  HysteresisGate gate(0.80, 0.92);
  ASSERT_TRUE(gate.Update(0.95));
  EXPECT_TRUE(gate.Update(0.80));        // value == low stays engaged.
  EXPECT_TRUE(gate.Update(0.85));        // Inside the band: state preserved.
  EXPECT_FALSE(gate.Update(0.7999999));  // Strictly below low releases.
}

TEST(HysteresisGate, BandPreservesStateInBothDirections) {
  HysteresisGate gate(0.80, 0.92);
  // Released, oscillating inside the band: never engages.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(gate.Update(i % 2 == 0 ? 0.81 : 0.91));
  }
  ASSERT_TRUE(gate.Update(0.92));
  // Engaged, oscillating inside the band: never releases — no ladder flapping.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(gate.Update(i % 2 == 0 ? 0.91 : 0.81));
  }
}

TEST(HysteresisGate, RepeatedCrossingsToggleExactlyOncePerCrossing) {
  HysteresisGate gate(0.5, 0.5);  // Degenerate band: low == high is legal.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(gate.Update(0.5));   // >= high engages; == low stays engaged.
    EXPECT_FALSE(gate.Update(0.49)); // < low releases.
  }
}

// --- Engine-mode governor ---

EngineConfig GovEngineConfig(int64_t pool_bytes) {
  EngineConfig config;
  config.model = TinyFullModel();
  config.gpu = TestGpu();
  config.pool_bytes_override = pool_bytes;
  config.max_num_seqs_override = 4;
  return config;
}

void SubmitBatch(Engine& engine, int n, int64_t prompt_len = 64, int64_t output_len = 32) {
  for (int i = 0; i < n; ++i) {
    engine.Submit(
        MakeRequest(i, TextPrompt(prompt_len, 100 + 1000 * i), output_len, 0.0));
  }
}

TEST(MemoryGovernor, AttachedButIdleGovernorIsOutcomeIdentical) {
  // A governor that never engages (watermark above any reachable occupancy, no queued
  // events) must not perturb the engine: same steps, same per-request timings.
  GovernorConfig gc;
  gc.high_watermark = 2.0;  // Occupancy is <= 1.0: unreachable.
  gc.low_watermark = 1.5;
  MemoryGovernor governor(gc);

  Engine plain(GovEngineConfig(1 << 20));
  Engine hooked(GovEngineConfig(1 << 20));
  governor.AttachTo(hooked);
  SubmitBatch(plain, 3);
  SubmitBatch(hooked, 3);
  plain.RunToCompletion();
  hooked.RunToCompletion();

  EXPECT_EQ(plain.metrics().total_steps(), hooked.metrics().total_steps());
  ASSERT_EQ(plain.metrics().finished().size(), hooked.metrics().finished().size());
  for (size_t i = 0; i < plain.metrics().finished().size(); ++i) {
    const RequestRecord& a = plain.metrics().finished()[i];
    const RequestRecord& b = hooked.metrics().finished()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.output_len, b.output_len);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  }
  EXPECT_EQ(governor.stats().engagements, 0);
  EXPECT_EQ(hooked.metrics().ladder_activations, 0);
}

TEST(MemoryGovernor, PoolDeltaGrowsInStepsUntilSatisfied) {
  GovernorConfig gc;
  gc.cooldown_steps = 0;
  gc.grow_step_pages = 2;
  MemoryGovernor governor(gc);
  Engine engine(GovEngineConfig(1 << 20));
  governor.AttachTo(engine);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());

  const int32_t initial = engine.PoolPages();
  governor.RequestPoolDelta(+6);
  SubmitBatch(engine, 2);
  engine.RunToCompletion();

  EXPECT_EQ(engine.PoolPages(), initial + 6);
  EXPECT_EQ(governor.pending_pool_delta(), 0);
  EXPECT_EQ(governor.stats().grow_actions, 3);  // 2 pages per boundary.
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_grow_pages - m.pool_shrink_pages, engine.PoolPages() - initial);
  EXPECT_TRUE(auditor.Audit().empty());
}

TEST(MemoryGovernor, PoolDeltaShrinkDrainsAFreeTail) {
  GovernorConfig gc;
  gc.cooldown_steps = 0;
  gc.shrink_step_pages = 4;
  MemoryGovernor governor(gc);
  // Generous pool: the tail stays free, so the shrink commits on the first boundary.
  Engine engine(GovEngineConfig(1 << 21));
  governor.AttachTo(engine);
  const int32_t initial = engine.PoolPages();
  governor.RequestPoolDelta(-4);
  SubmitBatch(engine, 2);
  engine.RunToCompletion();

  EXPECT_EQ(engine.PoolPages(), initial - 4);
  EXPECT_EQ(governor.pending_pool_delta(), 0);
  EXPECT_EQ(governor.stats().shrink_actions, 1);
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_grow_pages - m.pool_shrink_pages, engine.PoolPages() - initial);
}

TEST(MemoryGovernor, GrowRollbacksRetryUntilTheDeltaLands) {
  // pool_grow fires on the first consult only: the governor's first grow step rolls back
  // with zero net change, then the retry commits — the delta still lands in full.
  EngineConfig config = GovEngineConfig(1 << 20);
  JENGA_CHECK(FaultPlan::Parse("pool_grow:at=0", &config.fault.plan).ok());
  config.fault.seed = 0xE1C;
  GovernorConfig gc;
  gc.cooldown_steps = 0;
  gc.grow_step_pages = 2;
  MemoryGovernor governor(gc);
  Engine engine(std::move(config));
  governor.AttachTo(engine);

  const int32_t initial = engine.PoolPages();
  governor.RequestPoolDelta(+4);
  SubmitBatch(engine, 2);
  engine.RunToCompletion();

  EXPECT_EQ(engine.PoolPages(), initial + 4);
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_grow_rollbacks, 1);
  EXPECT_EQ(m.pool_grow_attempts, m.pool_grow_rollbacks + governor.stats().grow_actions);
  EXPECT_EQ(m.pool_grow_pages - m.pool_shrink_pages, engine.PoolPages() - initial);
}

TEST(MemoryGovernor, PressureLadderParksAndShedsUnderSustainedPressure) {
  // 10-page pool vs 4 concurrent requests that want ~24 pages: occupancy pins above the
  // high watermark, so the ladder must engage, park the newest runner, and escalate to
  // shedding while pressure persists. The shed ledger stays exact.
  GovernorConfig gc;
  gc.high_watermark = 0.60;
  gc.low_watermark = 0.40;
  gc.cooldown_steps = 1;
  MemoryGovernor governor(gc);
  Engine engine(GovEngineConfig(/*pool_bytes=*/10 * 16384));
  governor.AttachTo(engine);
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());

  SubmitBatch(engine, 4, /*prompt_len=*/64, /*output_len=*/32);
  engine.RunToCompletion();

  const MemoryGovernor::Stats& s = governor.stats();
  EXPECT_GE(s.engagements, 1);
  EXPECT_GT(s.park_actions + s.shed_actions, 0);
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.elastic_parked, s.park_actions);
  EXPECT_EQ(m.elastic_shed, s.shed_actions);
  EXPECT_EQ(m.shed_requests, s.shed_actions);
  EXPECT_EQ(m.cancelled_requests, m.shed_requests);  // Sheds are the only cancellations.
  EXPECT_GE(m.ladder_activations, s.engagements + s.escalations);
  // Every request reached a terminal state exactly once (shed ones as failed records).
  EXPECT_EQ(m.finished().size(), 4u);
  EXPECT_TRUE(auditor.Audit().empty());
}

TEST(MemoryGovernor, LadderEscalatesToFallbackRepartitionWhenParkAndShedCannotHelp) {
  // One oversized runner (park refuses the only runner, nothing waits to shed) pins a
  // 8-page pool at 75%: the ladder walks through both refusals to the repartition rung and
  // installs the fallback layout with a doubled pool, relieving the pressure.
  GovernorConfig gc;
  gc.high_watermark = 0.60;
  gc.low_watermark = 0.40;
  gc.cooldown_steps = 0;
  gc.fallback_model = TinyFullModel();
  gc.fallback_pool_bytes = 16 * 16384;
  MemoryGovernor governor(gc);
  Engine engine(GovEngineConfig(/*pool_bytes=*/8 * 16384));
  governor.AttachTo(engine);

  engine.Submit(MakeRequest(0, TextPrompt(96), /*output_len=*/32, 0.0));
  engine.RunToCompletion();

  EXPECT_EQ(governor.stats().repartition_actions, 1);
  EXPECT_EQ(engine.metrics().repartitions, 1);
  EXPECT_EQ(engine.PoolPages(), 16);
  EXPECT_EQ(governor.stats().park_actions, 0);
  EXPECT_EQ(governor.stats().shed_actions, 0);
  const RequestRecord& r = engine.metrics().finished().front();
  EXPECT_FALSE(r.failed);  // The repartition aborted nothing.
  EXPECT_EQ(r.output_len, 32);
}

// --- Hot swap ---

TEST(MemoryGovernor, HotSwapCommitsMidTraceWithoutAbortingInFlightRequests) {
  GovernorConfig gc;
  gc.cooldown_steps = 2;
  MemoryGovernor governor(gc);
  Engine engine(GovEngineConfig(1 << 21));
  governor.AttachTo(engine);
  SubmitBatch(engine, 3, /*prompt_len=*/64, /*output_len=*/48);
  for (int i = 0; i < 6; ++i) {
    engine.StepOnce();
  }
  ASSERT_GT(engine.num_running(), 0);

  governor.RequestHotSwap(TinySlidingModel(), /*pool_bytes=*/1 << 21);
  EXPECT_TRUE(governor.hot_swap_pending());
  engine.RunToCompletion();

  EXPECT_FALSE(governor.hot_swap_pending());
  EXPECT_EQ(governor.stats().hot_swaps_applied, 1);
  EXPECT_EQ(governor.stats().hot_swap_rollbacks, 0);
  EXPECT_FALSE(engine.elastic_draining());
  EXPECT_EQ(engine.config().model.name, "tiny-sliding");
  ASSERT_EQ(engine.metrics().finished().size(), 3u);
  for (const RequestRecord& r : engine.metrics().finished()) {
    EXPECT_FALSE(r.failed) << "request " << r.id;
    EXPECT_FALSE(r.cancelled) << "request " << r.id;
  }
}

TEST(MemoryGovernor, HotSwapRollsBackOnTheFaultSiteThenCommitsOnRetry) {
  EngineConfig config = GovEngineConfig(1 << 21);
  JENGA_CHECK(FaultPlan::Parse("repartition_commit:at=0", &config.fault.plan).ok());
  config.fault.seed = 0xE1D;
  GovernorConfig gc;
  gc.cooldown_steps = 1;
  MemoryGovernor governor(gc);
  Engine engine(std::move(config));
  governor.AttachTo(engine);
  SubmitBatch(engine, 3);
  governor.RequestHotSwap(TinySlidingModel(), /*pool_bytes=*/1 << 21);

  // First boundary: the commit site fires, the swap rolls back, and the engine stays
  // draining (the fleet router spills around it) while the governor retries.
  ASSERT_TRUE(engine.StepOnce());
  EXPECT_EQ(governor.stats().hot_swap_rollbacks, 1);
  EXPECT_TRUE(governor.hot_swap_pending());
  EXPECT_TRUE(engine.elastic_draining());
  EXPECT_EQ(engine.config().model.name, "tiny-full");
  EXPECT_EQ(engine.metrics().repartition_rollbacks, 1);

  engine.RunToCompletion();
  EXPECT_EQ(governor.stats().hot_swaps_applied, 1);
  EXPECT_FALSE(engine.elastic_draining());
  EXPECT_EQ(engine.config().model.name, "tiny-sliding");
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.repartition_attempts, m.repartitions + m.repartition_rollbacks);
  for (const RequestRecord& r : m.finished()) {
    EXPECT_FALSE(r.failed) << "request " << r.id;
  }
}

TEST(MemoryGovernor, HotSwapIsAbandonedAfterTheRetryBudgetAndTheEngineRecovers) {
  EngineConfig config = GovEngineConfig(1 << 21);
  JENGA_CHECK(FaultPlan::Parse("repartition_commit:every=1", &config.fault.plan).ok());
  config.fault.seed = 0xE1E;
  GovernorConfig gc;
  gc.cooldown_steps = 0;
  gc.max_hot_swap_retries = 3;
  MemoryGovernor governor(gc);
  Engine engine(std::move(config));
  governor.AttachTo(engine);
  SubmitBatch(engine, 3);
  governor.RequestHotSwap(TinySlidingModel(), /*pool_bytes=*/1 << 21);
  engine.RunToCompletion();

  EXPECT_EQ(governor.stats().hot_swaps_abandoned, 1);
  EXPECT_EQ(governor.stats().hot_swap_rollbacks, 3);
  EXPECT_EQ(governor.stats().hot_swaps_applied, 0);
  EXPECT_FALSE(governor.hot_swap_pending());
  EXPECT_FALSE(engine.elastic_draining());
  EXPECT_EQ(engine.config().model.name, "tiny-full");  // Old layout kept.
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.repartition_rollbacks, 3);
  EXPECT_EQ(m.repartition_attempts, m.repartitions + m.repartition_rollbacks);
  for (const RequestRecord& r : m.finished()) {
    EXPECT_FALSE(r.failed) << "request " << r.id;
  }
}

// --- Spec-decode mode: adaptive draft/target split ---

TEST(MemoryGovernor, AdaptiveSplitShiftsCapacityTowardThePressuredPool) {
  // A deliberately wrong static split (50% draft for a model pair whose draft KV is 4x
  // smaller) leaves the target pool pressured and the draft pool idle: the governor must
  // shift capacity draft → target until the pressure clears.
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.strategy = SpecStrategy::kVllmManual;
  config.pool_bytes_override = 1 << 20;
  config.max_num_seqs_override = 4;
  config.manual_draft_fraction = 0.5;
  GovernorConfig gc;
  gc.high_watermark = 0.50;
  gc.low_watermark = 0.30;
  gc.cooldown_steps = 0;
  gc.split_shift_bytes = 16384;  // One recipient (target) page per shift.
  MemoryGovernor governor(gc);
  SpecDecodeEngine engine(std::move(config));
  governor.AttachTo(engine);
  const int64_t target_pool = engine.manager(0).GetMemoryStats().pool_bytes;

  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96, 100 + 1000 * i), /*output_len=*/32, 0.0));
  }
  engine.RunToCompletion();

  EXPECT_GT(governor.stats().split_shifts, 0);
  EXPECT_GT(engine.manager(0).GetMemoryStats().pool_bytes, target_pool);
  const EngineMetrics& m = engine.metrics();
  EXPECT_GT(m.pool_grow_pages, 0);
  EXPECT_GT(m.pool_shrink_pages, 0);
  ASSERT_EQ(m.finished().size(), 4u);
  for (const RequestRecord& r : m.finished()) {
    EXPECT_FALSE(r.failed) << "request " << r.id;
  }
}

TEST(MemoryGovernor, AdaptiveSplitStaysIdleWhenPoolsAreBalanced) {
  // Under the SmartSpec-proportional split both pools load evenly: no pool clears the high
  // watermark while the other has slack, so the governor never shifts — adaptive-from-
  // SmartSpec degrades to exactly SmartSpec (the Fig. 19 equality case).
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.strategy = SpecStrategy::kVllmManual;
  config.pool_bytes_override = 1 << 20;
  config.max_num_seqs_override = 4;
  GovernorConfig gc;
  gc.cooldown_steps = 0;
  gc.split_shift_bytes = 16384;
  MemoryGovernor governor(gc);
  SpecDecodeEngine engine(std::move(config));
  governor.AttachTo(engine);

  for (int i = 0; i < 3; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64, 100 + 1000 * i), /*output_len=*/16, 0.0));
  }
  engine.RunToCompletion();

  EXPECT_EQ(governor.stats().split_shifts, 0);
  EXPECT_EQ(engine.metrics().pool_grow_pages, 0);
  EXPECT_EQ(engine.metrics().pool_shrink_pages, 0);
}

}  // namespace
}  // namespace jenga
