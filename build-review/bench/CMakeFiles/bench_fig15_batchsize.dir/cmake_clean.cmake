file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_batchsize.dir/bench_fig15_batchsize.cc.o"
  "CMakeFiles/bench_fig15_batchsize.dir/bench_fig15_batchsize.cc.o.d"
  "bench_fig15_batchsize"
  "bench_fig15_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
