// Per-group eviction queue. Orders evictable small pages by (last_access ascending,
// prefix_length descending): LRU for balance across requests (§5.1), with the paper's
// prefix-length tie-break so that, among pages last touched at the same time, the deepest
// token is evicted first — keeping evicted sets aligned across layer types.
//
// Implementation: a lazy-deletion binary heap. Remove and rekey tombstone the old heap entry
// (the authoritative key lives in `keys_`); PopVictim/PeekOldestAccess discard stale entries
// on the way down. This turns the per-token UpdateLastAccess/SetPrefixLength rekeys from
// O(log n) node-allocating tree operations into O(log n) in-place heap pushes, and keeps the
// victim order bit-identical to the ordered-set formulation: a heap entry is honored only
// when it equals the page's current key, so the popped sequence is exactly the ascending
// (last_access, -prefix_length, page) order over live keys.

#ifndef JENGA_SRC_CORE_EVICTOR_H_
#define JENGA_SRC_CORE_EVICTOR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/audit_events.h"
#include "src/core/types.h"

namespace jenga {

class Evictor {
 public:
  // Adds `page` to the queue with the given priority; the page must not already be present.
  void Insert(SmallPageId page, Tick last_access, int64_t prefix_length);

  // Removes `page` (it became used or empty). No-op if absent.
  void Remove(SmallPageId page);

  // Re-keys `page` in place if present; no-op otherwise (metadata for used pages is kept by
  // the small-page allocator and applied on insertion).
  void UpdateLastAccess(SmallPageId page, Tick last_access);
  void SetPrefixLength(SmallPageId page, int64_t prefix_length);

  // Pops the eviction victim: earliest last_access, then longest prefix_length, then lowest
  // page id (for determinism).
  [[nodiscard]] std::optional<SmallPageId> PopVictim();

  [[nodiscard]] bool Contains(SmallPageId page) const { return keys_.contains(page); }
  [[nodiscard]] size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  // Priority of the page that PopVictim would return, without popping.
  [[nodiscard]] std::optional<Tick> PeekOldestAccess() const;

  // Heap entries including tombstones; bounded at O(size()) by compaction (test/bench only).
  [[nodiscard]] size_t heap_entries() const { return heap_.size(); }

  // Audit observation (nullptr = detached); `group` tags this queue's events.
  void set_audit_sink(AuditSink* sink, int group) {
    audit_ = sink;
    audit_group_ = group;
  }

 private:
  friend class AllocatorAuditor;
  struct Key {
    Tick last_access;
    int64_t neg_prefix_length;  // negated so larger prefixes sort first.
    SmallPageId page;
    auto operator<=>(const Key&) const = default;
  };

  // A heap entry is live iff it matches the page's current key; everything else is a
  // tombstone left behind by Remove/rekey.
  [[nodiscard]] bool IsLive(const Key& key) const {
    const auto it = keys_.find(key.page);
    return it != keys_.end() && it->second == key;
  }
  void Push(Key key);
  // Discards stale entries from the heap top (const: tombstone cleanup is not observable).
  void DropStaleTop() const;
  // Rebuilds the heap from live keys when tombstones dominate.
  void MaybeCompact();

  // Min-heap over Key (ascending order through std::greater).
  mutable std::vector<Key> heap_;
  std::unordered_map<SmallPageId, Key> keys_;
  AuditSink* audit_ = nullptr;
  int audit_group_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_EVICTOR_H_
