// Figure 13: end-to-end serving throughput, vLLM (homogeneous PagedAttention) vs Jenga,
// across the Table-1 models on H100 and L4. Absolute req/s depends on the analytic GPU cost
// model; the paper-relevant signal is the per-row speedup and its pattern: large on
// heterogeneous models, ≈1.0 on the standard self-attention Llama.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct E2eResult {
  double req_per_s = 0.0;
  double tok_per_s = 0.0;
  int64_t completed = 0;
  int64_t failed = 0;
};

E2eResult RunOne(const ModelConfig& model, const GpuSpec& gpu, bool jenga,
                 const std::vector<Request>& requests) {
  EngineConfig config = jenga ? JengaProfile(model, gpu) : VllmProfile(model, gpu);
  config.memory_sample_every = 0;
  Engine engine(config);
  for (const Request& r : requests) {
    engine.Submit(r);
  }
  engine.RunToCompletion();
  E2eResult result;
  result.req_per_s = engine.metrics().RequestThroughput();
  result.tok_per_s = engine.metrics().TokenThroughput();
  result.completed = engine.metrics().CompletedRequests();
  result.failed = engine.metrics().FailedRequests();
  return result;
}

struct RowSpec {
  std::string label;
  std::string dataset;
  ModelConfig model;
  std::function<std::vector<Request>(const ModelConfig&, Rng&)> workload;
};

std::vector<Request> MakeMmmu(const ModelConfig& model, Rng& rng, int count) {
  MmmuProDataset dataset(model.vision.tokens_per_image);
  return GenerateBatch(dataset, count, rng);
}

std::vector<Request> MakeMmlu(const ModelConfig&, Rng& rng, int count) {
  MmluProDataset dataset;
  return GenerateBatch(dataset, count, rng);
}

std::vector<Request> MakeArxiv(Rng& rng, int count, int articles, int64_t min_len,
                               int64_t max_len) {
  ArxivQaDataset dataset(articles, min_len, max_len, /*seed=*/rng.NextU64());
  std::vector<Request> requests;
  for (int i = 0; i < count; ++i) {
    WorkloadItem item = dataset.SampleForArticle(i % articles, rng);
    requests.push_back(MakeRequest(i, std::move(item.prompt), item.output_len, 0.0));
  }
  return requests;
}

void RunPlatform(const char* platform_name, const GpuSpec& gpu,
                 const std::vector<RowSpec>& rows) {
  std::printf("\n[%s]\n", platform_name);
  PrintRow({{26, "Model"},
            {12, "Dataset"},
            {14, "vLLM req/s"},
            {14, "Jenga req/s"},
            {10, "Speedup"},
            {14, "failed v/j"}});
  PrintRule();
  // Each row has an independent per-row seed, so every (row, engine) run is self-contained:
  // generate the shared traces up front, sweep the runs in parallel, print in figure order.
  std::vector<std::vector<Request>> traces;
  traces.reserve(rows.size());
  for (const RowSpec& row : rows) {
    Rng rng(0xF13 + std::hash<std::string>{}(row.label + platform_name));
    traces.push_back(row.workload(row.model, rng));
  }
  std::vector<std::function<E2eResult()>> tasks;
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowSpec& row = rows[i];
    const std::vector<Request>& requests = traces[i];
    tasks.emplace_back([&row, &gpu, &requests] { return RunOne(row.model, gpu, false, requests); });
    tasks.emplace_back([&row, &gpu, &requests] { return RunOne(row.model, gpu, true, requests); });
  }
  const std::vector<E2eResult> results = ParallelSweep(tasks);

  double speedup_product = 1.0;
  int speedup_count = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowSpec& row = rows[i];
    const E2eResult& vllm = results[2 * i];
    const E2eResult& jng = results[2 * i + 1];
    const double speedup = vllm.req_per_s > 0 ? jng.req_per_s / vllm.req_per_s : 0.0;
    speedup_product *= speedup;
    ++speedup_count;
    PrintRow({{26, row.label},
              {12, row.dataset},
              {14, Fmt("%.3f", vllm.req_per_s)},
              {14, Fmt("%.3f", jng.req_per_s)},
              {10, Fmt("%.2fx", speedup)},
              {14, FmtI(vllm.failed) + "/" + FmtI(jng.failed)}});
  }
  if (speedup_count > 0) {
    std::printf("geometric-mean speedup: %.2fx\n",
                std::pow(speedup_product, 1.0 / speedup_count));
  }
}

void Run() {
  PrintHeader("Figure 13: End-to-end throughput, vLLM vs Jenga (prefix caching on for both)");

  const auto mmmu = [](int count) {
    return [count](const ModelConfig& model, Rng& rng) { return MakeMmmu(model, rng, count); };
  };
  const auto mmlu = [](int count) {
    return [count](const ModelConfig& model, Rng& rng) { return MakeMmlu(model, rng, count); };
  };
  const auto arxiv = [](int count, int articles, int64_t lo, int64_t hi) {
    return [=](const ModelConfig&, Rng& rng) { return MakeArxiv(rng, count, articles, lo, hi); };
  };

  const std::vector<RowSpec> h100_rows = {
      {"mllama-11b-vision", "MMMU-pro", Llama32_11B_Vision(), mmmu(96)},
      {"gemma-2-27b", "arXiv-QA", Gemma2_27B(), arxiv(48, 24, 5000, 7800)},
      {"ministral-8b", "arXiv-QA", Ministral8B(), arxiv(20, 10, 70000, 115000)},
      {"jamba-52b-fp8", "MMLU-pro", Jamba52B_Fp8(), mmlu(160)},
      {"llama-70b-fp8 (std)", "MMLU-pro", Llama3_70B_Fp8(), mmlu(160)},
      {"characterai-70b-fp8", "MMLU-pro", CharacterAi70B_Fp8(), mmlu(160)},
      {"pyramidkv-70b-fp8", "MMLU-pro", PyramidKv70B_Fp8(), mmlu(160)},
  };
  RunPlatform("H100-80GB", H100(), h100_rows);

  const std::vector<RowSpec> l4_rows = {
      {"mllama-11b-vision-fp8", "MMMU-pro", Fp8(Llama32_11B_Vision()), mmmu(48)},
      {"gemma-2-9b", "arXiv-QA", Gemma2_9B(), arxiv(32, 16, 5000, 7800)},
      {"ministral-8b-fp8", "arXiv-QA", Fp8(Ministral8B()), arxiv(10, 5, 70000, 115000)},
      // Jamba 52B does not fit in 24 GB (paper: skipped on L4).
      {"llama-3.1-8b (std)", "MMLU-pro", Llama31_8B(), mmlu(120)},
      {"characterai-8b", "MMLU-pro", CharacterAi8B(), mmlu(120)},
      {"pyramidkv-8b", "MMLU-pro", PyramidKv8B(), mmlu(120)},
  };
  RunPlatform("L4-24GB", L4(), l4_rows);

  std::printf(
      "\nShape checks vs paper: speedup >> 1 on mllama/Ministral/Gemma-2 (fragmentation),\n"
      "~1.0 on standard Llama (no overhead), Jamba 52B skipped on L4 (OOM), and vLLM may\n"
      "fail the longest Ministral requests on L4 while Jenga serves them.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
