// Fleet-level elasticity (ISSUE 9 satellites): FleetConfig::replica_pool_bytes builds
// heterogeneous fleets (per-replica KV pool sizes), and a draining replica — one mid
// elastic repartition (Engine::elastic_draining) — counts as saturated so new work spills
// around it until the drain completes.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "src/cluster/fleet_frontend.h"
#include "src/cluster/fleet_router.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

// TinyFullModel at 16 tokens/page on the test GPU: one KV page is 16 KiB.
constexpr int64_t kPageBytes = 16384;

FleetConfig HeterogeneousConfig(int num_replicas) {
  FleetConfig config = TestFleetConfig(num_replicas, RoutePolicy::kPrefixAffinity);
  config.engine.pool_bytes_override = 64 * kPageBytes;
  return config;
}

TEST(FleetElastic, ReplicaPoolBytesBuildsAHeterogeneousFleet) {
  FleetConfig config = HeterogeneousConfig(3);
  // Entry 0 keeps the shared engine config's pool; 1 and 2 get their own sizes.
  config.replica_pool_bytes = {0, 32 * kPageBytes, 128 * kPageBytes};
  FleetRouter router(std::move(config));

  EXPECT_EQ(router.replica(0).PoolPages(), 64);
  EXPECT_EQ(router.replica(1).PoolPages(), 32);
  EXPECT_EQ(router.replica(2).PoolPages(), 128);

  // The lopsided fleet still serves: every submitted request finishes somewhere.
  for (int i = 0; i < 6; ++i) {
    router.Submit(MakeRequest(i, ArticlePrompt(i % 3, 80, i), /*output_len=*/8, 0.0));
  }
  router.RunToCompletion();
  int64_t finished = 0;
  for (int i = 0; i < router.num_replicas(); ++i) {
    finished += static_cast<int64_t>(router.replica(i).metrics().finished().size());
  }
  EXPECT_EQ(finished, 6);
}

TEST(FleetElastic, EmptyReplicaPoolBytesKeepsTheFleetHomogeneous) {
  FleetRouter router(HeterogeneousConfig(2));
  EXPECT_EQ(router.replica(0).PoolPages(), 64);
  EXPECT_EQ(router.replica(1).PoolPages(), 64);
}

TEST(FleetElastic, DecideRouteCountsDrainingAsSaturated) {
  // Replica 0 holds the whole resident prefix but is draining: affinity must spill to the
  // healthy replica instead.
  std::array<ReplicaLoadView, 2> loads = {};
  loads[0].draining = true;
  const std::array<int64_t, 2> affinity = {4, 0};
  RouteDecision decision =
      DecideRoute(RoutePolicy::kPrefixAffinity, /*spill_queue_depth=*/8,
                  /*spill_occupancy=*/0.95, loads, affinity, /*round_robin_slot=*/0);
  EXPECT_EQ(decision.replica, 1);
  EXPECT_EQ(decision.reason, RouteDecision::Reason::kSpill);
  EXPECT_EQ(decision.affinity_blocks, 4);
  EXPECT_FALSE(decision.all_saturated);

  // Both draining: backpressure surfaces, but a target is still named (Submit never drops).
  loads[1].draining = true;
  decision = DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_TRUE(decision.all_saturated);
}

TEST(FleetElastic, RouterSpillsAroundADrainingReplicaThenReturnsAfterTheDrain) {
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kPrefixAffinity);
  FleetRouter router(std::move(config));
  ASSERT_TRUE(router.routing_enabled());

  // Warm article 0 onto replica 0 (empty fleet: least-loaded ties break to index 0).
  RouteDecision warm =
      router.Submit(MakeRequest(1, ArticlePrompt(0, 80, /*question=*/0), 4, 0.0));
  ASSERT_EQ(warm.replica, 0);
  router.RunToCompletion();

  // Mid-repartition: replica 0 drains. A follow-up question about the same article must
  // spill to replica 1 even though all its resident blocks live on replica 0.
  router.replica(0).set_elastic_draining(true);
  const RouteDecision spilled =
      router.Submit(MakeRequest(2, ArticlePrompt(0, 80, /*question=*/1), 4, 0.0));
  EXPECT_EQ(spilled.replica, 1);
  EXPECT_EQ(spilled.reason, RouteDecision::Reason::kSpill);
  EXPECT_GT(spilled.affinity_blocks, 0);  // The affine score still pointed at replica 0.
  router.RunToCompletion();

  // Drain over: affinity routing snaps back to the warmed replica.
  router.replica(0).set_elastic_draining(false);
  const RouteDecision back =
      router.Submit(MakeRequest(3, ArticlePrompt(0, 80, /*question=*/2), 4, 0.0));
  EXPECT_EQ(back.replica, 0);
  EXPECT_EQ(back.reason, RouteDecision::Reason::kAffinity);
  router.RunToCompletion();
  EXPECT_EQ(router.counters().routed_spill, 1);
}

TEST(FleetElastic, FrontendAppliesPerReplicaPoolSizesAndServes) {
  FleetConfig config = HeterogeneousConfig(2);
  config.replica_pool_bytes = {32 * kPageBytes, 128 * kPageBytes};
  FleetFrontend fleet(std::move(config));
  fleet.Start();
  EXPECT_EQ(fleet.replica(0).engine().PoolPages(), 32);
  EXPECT_EQ(fleet.replica(1).engine().PoolPages(), 128);

  std::vector<StreamHandle> streams;
  for (int i = 0; i < 8; ++i) {
    streams.push_back(fleet.SubmitAsync(MakeRequest(
        fleet.NextRequestId(), ArticlePrompt(i % 2, 64, i), /*output_len=*/4, 0.0)));
  }
  fleet.Shutdown();
  for (const StreamHandle& stream : streams) {
    EXPECT_EQ(stream->phase.load(), StreamPhase::kFinished);
  }
}

}  // namespace
}  // namespace jenga
