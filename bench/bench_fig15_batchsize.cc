// Figure 15: decode batch-size timeline for the Ministral 8B model under the paper's
// simulated long-document workload (20 requests at once, inputs 55k–110k tokens, outputs
// 50–100), across vLLM, SGLang, TGI (homogeneous profiles), and Jenga. Paper numbers: average
// batch 5.39 for Jenga vs 2.63/2.74/2.50, finishing in ~300 steps vs ~600 (TGI ends early —
// no --ignore-eos).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

void RunProfile(const char* name, EngineConfig config) {
  config.enable_prefix_caching = false;  // The workload has no shared prefixes.
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  LongDocDataset dataset;
  Rng rng(0xF15);
  for (Request& r : GenerateBatch(dataset, 20, rng)) {
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();
  const std::vector<double> timeline = engine.metrics().decode_batch_series().Resample(60);
  // Mean decode batch over decode-active steps only (matching the paper's metric).
  double batch_sum = 0.0;
  int64_t batch_steps = 0;
  for (const auto& point : engine.metrics().decode_batch_series().points()) {
    if (point.value > 0) {
      batch_sum += point.value;
      ++batch_steps;
    }
  }
  const double mean_batch = batch_steps > 0 ? batch_sum / static_cast<double>(batch_steps) : 0.0;
  PrintRow({{10, name},
            {14, Fmt("%.2f", mean_batch)},
            {10, FmtI(engine.metrics().total_steps())},
            {12, FmtI(engine.metrics().TotalOutputTokens())},
            {12, Fmt("%.1fs", engine.now())}});
  std::printf("  batch timeline: %s\n", Sparkline(timeline).c_str());
}

void Run() {
  PrintHeader(
      "Figure 15: Decode batch size — Ministral 8B, 20 long-doc requests at once (H100)");
  PrintRow({{10, "Engine"},
            {14, "avg batch"},
            {10, "steps"},
            {12, "out tokens"},
            {12, "wall"}});
  PrintRule();
  const ModelConfig model = Ministral8B();
  RunProfile("vLLM", VllmProfile(model, H100()));
  RunProfile("SGLang", SglangProfile(model, H100()));
  RunProfile("TGI", TgiProfile(model, H100()));
  RunProfile("Jenga", JengaProfile(model, H100()));
  std::printf(
      "\nShape checks vs paper: Jenga sustains ~2x the decode batch of the homogeneous\n"
      "engines and finishes in roughly half the steps; TGI emits fewer tokens (stops at\n"
      "its simulated EOS) and so ends earlier despite a small batch.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
