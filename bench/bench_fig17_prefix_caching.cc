// Figure 17: prefix caching with a varying number of arXiv articles — Gemma-2 27B, several
// questions per article, questions for the same article maximally spaced (round-robin) so the
// cache must actually hold the articles. With few articles both systems cache everything;
// past the capacity knee Jenga's sliding-window-aware eviction rule keeps more articles
// hittable (paper: up to 1.60x hit rate → 1.77x throughput).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct CacheResult {
  double hit_rate = 0.0;
  double throughput = 0.0;
};

CacheResult RunOne(bool jenga, int num_articles, int questions_per_article) {
  const ModelConfig model = Gemma2_27B();
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.memory_sample_every = 0;
  // Closed-loop serial serving: one request at a time, so measured throughput is a pure
  // function of how much prefill the prefix cache saves (the Fig. 17 mechanism), not of
  // arrival pacing. The pool is scaled so the capacity knee falls at a few articles, as in
  // the paper's setup (parity for <=3 articles).
  config.max_num_seqs_override = 1;
  config.memory_fraction = 0.55;
  Engine engine(std::move(config));

  ArxivQaDataset dataset(num_articles, 7200, 7800, /*seed=*/0xF17 + num_articles,
                         /*output_lo=*/16, /*output_hi=*/48);
  Rng rng(0x17AA + num_articles);
  int64_t total_prompt_tokens = 0;
  RequestId id = 0;
  // Users ask questions about a uniformly random article; the cache's *effective capacity*
  // (how many articles the eviction policy keeps hittable) decides the hit rate.
  const int total_requests = num_articles * questions_per_article;
  for (int q = 0; q < total_requests; ++q) {
    const int article = static_cast<int>(rng.UniformInt(0, num_articles - 1));
    WorkloadItem item = dataset.SampleForArticle(article, rng);
    total_prompt_tokens += item.prompt.size();
    engine.Submit(MakeRequest(id++, std::move(item.prompt), item.output_len,
                              /*arrival_time=*/0.0));
  }
  engine.RunToCompletion();
  CacheResult result;
  result.hit_rate = static_cast<double>(engine.metrics().cache_hit_tokens) /
                    static_cast<double>(total_prompt_tokens);
  result.throughput = engine.metrics().RequestThroughput();
  return result;
}

void Run() {
  PrintHeader("Figure 17: Prefix caching vs number of arXiv articles — Gemma-2 27B (H100)");
  PrintRow({{10, "articles"},
            {14, "vLLM hit"},
            {14, "Jenga hit"},
            {12, "hit ratio"},
            {14, "vLLM req/s"},
            {14, "Jenga req/s"},
            {12, "speedup"}});
  PrintRule();
  constexpr int kQuestions = 12;
  const std::vector<int> kArticles = {1, 2, 3, 4, 5, 6, 8, 10, 12};
  // Each run is self-seeded by its article count, so the rows are independent: compute them
  // in parallel, print in figure order.
  std::vector<std::function<CacheResult()>> tasks;
  for (const int articles : kArticles) {
    tasks.emplace_back([articles] { return RunOne(false, articles, kQuestions); });
    tasks.emplace_back([articles] { return RunOne(true, articles, kQuestions); });
  }
  const std::vector<CacheResult> results = ParallelSweep(tasks);
  for (size_t row = 0; row < kArticles.size(); ++row) {
    const int articles = kArticles[row];
    const CacheResult& vllm = results[2 * row];
    const CacheResult& jng = results[2 * row + 1];
    PrintRow({{10, FmtI(articles)},
              {14, Pct(vllm.hit_rate)},
              {14, Pct(jng.hit_rate)},
              {12, Fmt("%.2fx", vllm.hit_rate > 0 ? jng.hit_rate / vllm.hit_rate : 0.0)},
              {14, Fmt("%.3f", vllm.throughput)},
              {14, Fmt("%.3f", jng.throughput)},
              {12, Fmt("%.2fx", vllm.throughput > 0 ? jng.throughput / vllm.throughput : 0.0)}});
  }
  std::printf(
      "\nShape checks vs paper: parity while all articles fit (small counts; Jenga pays a\n"
      "tiny two-allocation overhead), then a widening hit-rate and throughput gap once the\n"
      "article set exceeds what full-prefix caching can hold.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
