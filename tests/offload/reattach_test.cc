// TryReattachOffloadTier (ISSUE 9 satellite): the degraded offload tier re-arms only after
// sitting out a capped, doubling probe-backoff window, restores the configured host pool
// capacity, and is idempotent in both directions across detach → reattach → detach cycles.
//
// SwapManager::OnEngineStep only advances the probe clock while a FaultInjector is attached
// (the site consults gate on it), so every test wires one in — with an empty plan when no
// fires are wanted.

#include "src/offload/swap_manager.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/fault/fault_injector.h"

namespace jenga {
namespace {

SwapCostParams TestCost() {
  SwapCostParams cost;
  cost.flops_per_token = 1e9;
  cost.gpu_flops = 1e12;
  cost.gpu_mem_bandwidth = 1e12;
  cost.chunk_tokens = 1'000'000;
  return cost;
}

OffloadConfig TestConfig(int64_t host_bytes = 1ll << 20) {
  OffloadConfig config;
  config.enabled = true;
  config.host_pool_bytes = host_bytes;
  config.pcie.h2d_bandwidth = 10e9;
  config.pcie.d2h_bandwidth = 10e9;
  config.pcie.per_transfer_latency = 1e-3;
  config.pcie.overlap_fraction = 0.5;
  return config;
}

FaultConfig QuietFaults() {
  FaultConfig config;
  config.seed = 0x0FF1;
  return config;  // Empty plan: the injector is attached but never fires.
}

SwapFootprint Footprint(int64_t tokens, int64_t swappable) {
  SwapFootprint fp;
  fp.tokens = tokens;
  fp.swappable_bytes = swappable;
  fp.resident_bytes = swappable;
  fp.fingerprints = {0xFEEDu};
  return fp;
}

// Degrades the tier directly (the public entry the host-failure threshold funnels into) and
// sanity-checks the transition booked.
void Degrade(SwapManager& swap) {
  const int64_t before = swap.stats().degraded_transitions;
  swap.DegradeToGpuOnly();
  ASSERT_TRUE(swap.degraded());
  ASSERT_EQ(swap.stats().degraded_transitions, before + 1);
}

TEST(Reattach, RefusesWhileTheTierIsNotDegraded) {
  SwapManager swap(TestConfig(), TestCost());
  FaultInjector fault(QuietFaults());
  swap.SetFaultInjector(&fault);
  EXPECT_FALSE(swap.TryReattachOffloadTier());
  EXPECT_EQ(swap.reattach_probe_steps_remaining(), 0);
  EXPECT_EQ(swap.stats().reattach_transitions, 0);
}

TEST(Reattach, ProbeWindowGatesTheFirstReattach) {
  SwapManager swap(TestConfig(), TestCost());
  FaultInjector fault(QuietFaults());
  swap.SetFaultInjector(&fault);
  Degrade(swap);
  EXPECT_EQ(swap.reattach_probe_steps_remaining(),
            SwapManager::kInitialReattachBackoffSteps);

  // Every step inside the window: the probe refuses and changes nothing.
  for (int64_t i = 0; i < SwapManager::kInitialReattachBackoffSteps - 1; ++i) {
    swap.OnEngineStep();
    EXPECT_FALSE(swap.TryReattachOffloadTier()) << "step " << i;
    EXPECT_TRUE(swap.degraded());
    EXPECT_EQ(swap.reattach_probe_steps_remaining(),
              SwapManager::kInitialReattachBackoffSteps - 1 - i);
  }
  swap.OnEngineStep();  // Window elapses.
  EXPECT_EQ(swap.reattach_probe_steps_remaining(), 0);
  EXPECT_TRUE(swap.TryReattachOffloadTier());
  EXPECT_FALSE(swap.degraded());
  EXPECT_EQ(swap.stats().reattach_transitions, 1);
}

TEST(Reattach, RestoresConfiguredCapacityAndServiceAfterReattach) {
  SwapManager swap(TestConfig(/*host_bytes=*/1ll << 20), TestCost());
  FaultInjector fault(QuietFaults());
  swap.SetFaultInjector(&fault);

  // Park a swap set, then degrade: the pool drains and refuses service.
  ASSERT_TRUE(swap.TryRecordSwapOut(7, Footprint(64, 4096)).ok());
  ASSERT_EQ(swap.host().used_bytes(), 4096);
  Degrade(swap);
  EXPECT_EQ(swap.host().used_bytes(), 0);
  EXPECT_EQ(swap.PeekSwapSet(7), nullptr);
  EXPECT_FALSE(swap.TryRecordSwapOut(8, Footprint(64, 4096)).ok());

  for (int64_t i = 0; i < SwapManager::kInitialReattachBackoffSteps; ++i) {
    swap.OnEngineStep();
  }
  ASSERT_TRUE(swap.TryReattachOffloadTier());

  // The restored pool is empty at the configured capacity and serves swaps again.
  EXPECT_EQ(swap.host().capacity_bytes(), 1ll << 20);
  EXPECT_EQ(swap.host().used_bytes(), 0);
  EXPECT_TRUE(swap.TryRecordSwapOut(9, Footprint(64, 4096)).ok());
  EXPECT_NE(swap.PeekSwapSet(9), nullptr);
}

TEST(Reattach, BackoffWindowDoublesPerDegradeUpToTheCap) {
  SwapManager swap(TestConfig(), TestCost());
  FaultInjector fault(QuietFaults());
  swap.SetFaultInjector(&fault);

  int64_t expected = SwapManager::kInitialReattachBackoffSteps;
  // 8 → 16 → 32 → ... → 1024, then pinned at the cap for further flaps.
  for (int cycle = 0; cycle < 10; ++cycle) {
    Degrade(swap);
    EXPECT_EQ(swap.reattach_probe_steps_remaining(), expected) << "cycle " << cycle;
    for (int64_t i = 0; i < expected; ++i) {
      swap.OnEngineStep();
    }
    ASSERT_TRUE(swap.TryReattachOffloadTier()) << "cycle " << cycle;
    expected = std::min(expected * 2, SwapManager::kMaxReattachBackoffSteps);
  }
  EXPECT_EQ(expected, SwapManager::kMaxReattachBackoffSteps);
  EXPECT_EQ(swap.stats().reattach_transitions, 10);
  EXPECT_EQ(swap.stats().degraded_transitions, 10);
}

TEST(Reattach, IdempotentInBothDirectionsAcrossACycle) {
  SwapManager swap(TestConfig(), TestCost());
  FaultInjector fault(QuietFaults());
  swap.SetFaultInjector(&fault);

  // detach → detach: one transition.
  Degrade(swap);
  swap.DegradeToGpuOnly();
  EXPECT_EQ(swap.stats().degraded_transitions, 1);

  for (int64_t i = 0; i < SwapManager::kInitialReattachBackoffSteps; ++i) {
    swap.OnEngineStep();
  }
  // reattach → reattach: the second call refuses (not degraded), one transition.
  ASSERT_TRUE(swap.TryReattachOffloadTier());
  EXPECT_FALSE(swap.TryReattachOffloadTier());
  EXPECT_EQ(swap.stats().reattach_transitions, 1);

  // And a second full detach is again a clean, gated cycle (now a 16-step window).
  Degrade(swap);
  EXPECT_EQ(swap.stats().degraded_transitions, 2);
  EXPECT_FALSE(swap.TryReattachOffloadTier());
  EXPECT_EQ(swap.reattach_probe_steps_remaining(),
            2 * SwapManager::kInitialReattachBackoffSteps);
}

TEST(Reattach, ResetsTheHostFailureCounterSoTheNextDegradeNeedsAFullBurst) {
  // Three injected host-pool failures degrade the tier (degrade_after_host_failures = 3).
  // After a successful reattach the counter must restart from zero: two more failures do NOT
  // re-degrade, a third does.
  OffloadConfig config = TestConfig();
  config.degrade_after_host_failures = 3;
  FaultConfig fc;
  JENGA_CHECK(FaultPlan::Parse("host_alloc:every=1", &fc.plan).ok());
  fc.seed = 0x0FF2;
  FaultInjector fault(fc);
  SwapManager swap(config, TestCost());
  swap.SetFaultInjector(&fault);

  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(swap.TryRecordSwapOut(100 + i, Footprint(64, 4096)).ok());
  }
  ASSERT_TRUE(swap.degraded());
  ASSERT_EQ(swap.stats().host_failures, 3);

  for (int64_t i = 0; i < SwapManager::kInitialReattachBackoffSteps; ++i) {
    swap.OnEngineStep();
  }
  ASSERT_TRUE(swap.TryReattachOffloadTier());

  ASSERT_FALSE(swap.TryRecordSwapOut(200, Footprint(64, 4096)).ok());
  ASSERT_FALSE(swap.TryRecordSwapOut(201, Footprint(64, 4096)).ok());
  EXPECT_FALSE(swap.degraded()) << "failure counter was not reset by the reattach";
  ASSERT_FALSE(swap.TryRecordSwapOut(202, Footprint(64, 4096)).ok());
  EXPECT_TRUE(swap.degraded());
  EXPECT_EQ(swap.stats().degraded_transitions, 2);
}

TEST(Reattach, ProbeClockDoesNotAdvanceWithoutAnInjector) {
  // Without a FaultInjector OnEngineStep is a no-op (no sites to consult), so the probe
  // window never elapses — degraded-without-injector is a terminal state by design.
  SwapManager swap(TestConfig(), TestCost());
  swap.DegradeToGpuOnly();
  ASSERT_TRUE(swap.degraded());
  for (int i = 0; i < 100; ++i) {
    swap.OnEngineStep();
  }
  EXPECT_EQ(swap.reattach_probe_steps_remaining(),
            SwapManager::kInitialReattachBackoffSteps);
  EXPECT_FALSE(swap.TryReattachOffloadTier());
}

}  // namespace
}  // namespace jenga
