// Shared scaffolding for the seeded fuzz tiers (engine_fuzz_test, engine_chaos_test): the
// schedule model drawn from a single uint64 seed, prompt construction, pool sizing, and one
// harness interface over Engine and SpecDecodeEngine.
//
// The chaos tier extends the base schedule with fault-injection fields (a FaultPlan + seed,
// the shed gate, per-request deadlines, and mid-run CancelRequest events); all of them
// default to "off", so the plain fuzz tier draws byte-identical schedules to the pre-chaos
// harness.

#ifndef JENGA_TESTS_FUZZ_FUZZ_HARNESS_H_
#define JENGA_TESTS_FUZZ_FUZZ_HARNESS_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/common/random.h"
#include "src/engine/engine.h"
#include "src/engine/kv_manager.h"
#include "src/engine/spec_decode.h"
#include "src/fault/fault_injector.h"
#include "src/model/kv_spec.h"
#include "tests/engine/test_models.h"

namespace jenga {

inline int64_t FuzzEnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoll(value, nullptr, 0) : fallback;
}

inline std::optional<uint64_t> FuzzEnvSeed(const char* name = "JENGA_FUZZ_SEED") {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return std::nullopt;
  }
  return std::strtoull(value, nullptr, 0);
}

// ---------------------------------------------------------------------------------------
// Schedule model

enum class FuzzModel { kFull, kSliding, kPyramid, kMamba, kVision };

inline const char* FuzzModelName(FuzzModel model) {
  switch (model) {
    case FuzzModel::kFull:
      return "full";
    case FuzzModel::kSliding:
      return "sliding";
    case FuzzModel::kPyramid:
      return "pyramid";
    case FuzzModel::kMamba:
      return "mamba";
    case FuzzModel::kVision:
      return "vision";
  }
  return "?";
}

inline ModelConfig MakeFuzzModel(FuzzModel model) {
  switch (model) {
    case FuzzModel::kFull:
      return TinyFullModel();
    case FuzzModel::kSliding:
      return TinySlidingModel();
    case FuzzModel::kPyramid:
      return TinyPyramidModel();
    case FuzzModel::kMamba:
      return TinyMambaModel();
    case FuzzModel::kVision:
      return TinyVisionModel();
  }
  return TinyFullModel();
}

struct FuzzRequestSpec {
  int64_t prompt_len = 0;
  int64_t output_len = 1;
  double arrival = 0.0;
  int family = 0;  // Requests in one family share a token prefix of min(prompt_len).
  int images = 0;  // > 0 only for the vision model.
  bool oversized = false;  // Built to exceed the pool: must end as a failed record.
  double deadline = -1.0;  // Absolute sim-time deadline (< 0 = none; chaos tier only).
};

// A chaos cancel event: abort the request at index `request_index` once the engine has
// executed `step` steps. Indices refer to schedule order, so the minimizer can remap them
// when it drops requests.
struct FuzzCancelSpec {
  int step = 0;
  int request_index = 0;
};

// Chaos elastic events (all default-off; the plain fuzz tier never sets them). Engine
// combinations get a net-zero transient resize (grow `delta_pages` at `grow_step`, shrink
// them back from `shrink_step` on), an optional mid-run repartition (same model, schedule
// pool bytes — the quiesce/rebuild/commit path with its fault site armed), and an optional
// pressure governor (park/shed ladder only; no fallback repartition, so pool capacity always
// returns to the schedule's fit-alone sizing). kVllmManual spec combinations get a one-shot
// draft/target ShiftSplit with a reversing shift later; the schedule doubles the pool when
// this is armed so the transient imbalance cannot break the sizing guarantee.
struct FuzzElasticSpec {
  bool armed = false;
  // Engine combinations.
  int32_t delta_pages = 0;
  int grow_step = -1;
  int shrink_step = -1;
  int repartition_step = -1;
  bool governor = false;
  double high_watermark = 2.0;
  double low_watermark = 1.5;
  int cooldown_steps = 4;
  // kVllmManual spec combinations.
  int shift_from = 0;  // Donor manager: 0 = target, 1 = draft.
  int shift_step = -1;
  int shift_back_step = -1;
};

struct FuzzSchedule {
  uint64_t seed = 0;
  bool spec_engine = false;
  FuzzModel model = FuzzModel::kFull;
  bool jenga = true;                             // Engine only.
  SpecStrategy strategy = SpecStrategy::kJenga;  // SpecDecodeEngine only.
  int64_t pool_bytes = 0;
  int max_num_seqs = 2;
  int max_batched_tokens = 64;
  bool offload = false;
  bool swap_preemption = true;
  bool host_prefix_cache = false;
  int64_t host_pool_bytes = 0;
  double pcie_bandwidth = 1e15;
  std::vector<FuzzRequestSpec> requests;
  // --- Chaos extensions (all default-off; the plain fuzz tier never sets them) ---
  FaultPlan fault_plan;
  uint64_t fault_seed = 1;
  int shed_after_blocked_steps = 0;
  double shed_occupancy_watermark = 0.95;
  std::vector<FuzzCancelSpec> cancels;
  FuzzElasticSpec elastic;
};

inline Prompt BuildFuzzPrompt(const FuzzRequestSpec& r) {
  if (r.images > 0) {
    const int64_t image_tokens = static_cast<int64_t>(r.images) * 8;
    const int64_t text = std::max<int64_t>(2, r.prompt_len - image_tokens);
    return MixedPrompt(text / 2 + r.family, r.images, 8, text - text / 2);
  }
  Prompt prompt;
  prompt.tokens.reserve(static_cast<size_t>(r.prompt_len));
  // Family streams never collide (disjoint id ranges, all < 50000 so generated pseudo-tokens
  // cannot alias a prompt), and two requests of one family share exactly min(len) tokens.
  for (int64_t i = 0; i < r.prompt_len; ++i) {
    prompt.tokens.push_back(static_cast<int32_t>(1 + r.family * 1000 + i % 997));
  }
  return prompt;
}

// Worst-case bytes of per-token KV a request pays across the engine's allocators.
inline int64_t FuzzWorstBytesPerToken(const FuzzSchedule& s, const ModelConfig& target,
                                      const ModelConfig& draft) {
  if (!s.spec_engine) {
    return std::max<int64_t>(1, target.KvBytesPerTokenAllLayers());
  }
  const int64_t t = target.KvBytesPerTokenAllLayers();
  const int64_t d = draft.KvBytesPerTokenAllLayers();
  return std::max<int64_t>(1, 2 * std::max(t, d));  // kVllmMax pays the max size twice.
}

inline int64_t FuzzMambaStateBytes(const ModelConfig& model) {
  int64_t total = 0;
  for (const LayerSpec& layer : model.layers) {
    total += layer.mamba_state_bytes;
  }
  return total;
}

inline FuzzSchedule DrawFuzzSchedule(uint64_t seed, bool spec_engine, bool offload) {
  Rng rng(seed);
  rng.NextU64();  // Decorrelate adjacent seeds.
  FuzzSchedule s;
  s.seed = seed;
  s.spec_engine = spec_engine;
  s.offload = offload;

  if (spec_engine) {
    // SpecDecodeEngine has no vision scheduling; the Engine combinations cover it.
    const FuzzModel kinds[] = {FuzzModel::kFull, FuzzModel::kSliding, FuzzModel::kPyramid,
                               FuzzModel::kMamba};
    s.model = kinds[rng.UniformInt(0, 3)];
    const SpecStrategy strategies[] = {SpecStrategy::kJenga, SpecStrategy::kVllmMax,
                                       SpecStrategy::kVllmManual};
    s.strategy = strategies[rng.UniformInt(0, 2)];
  } else {
    const FuzzModel kinds[] = {FuzzModel::kFull, FuzzModel::kSliding, FuzzModel::kPyramid,
                               FuzzModel::kMamba, FuzzModel::kVision};
    s.model = kinds[rng.UniformInt(0, 4)];
    // The homogeneous baseline reserves Mamba state statically; keep the Mamba stack on the
    // Jenga allocator where the fuzzer's pool sizing model is exact.
    s.jenga = s.model == FuzzModel::kMamba ? true : rng.Bernoulli(0.75);
  }

  s.max_num_seqs = static_cast<int>(rng.UniformInt(2, 5));
  const int64_t chunks[] = {32, 48, 64, 96, 128};
  s.max_batched_tokens = static_cast<int>(chunks[rng.UniformInt(0, 4)]);

  const ModelConfig model = MakeFuzzModel(s.model);
  const ModelConfig draft = TinyDraftModel();

  // Pool sizing: every regular request must be able to finish *alone* (else FCFS livelocks by
  // design), while 2-4 concurrent requests overflow it and force eviction/preemption churn.
  const int64_t max_prompt = rng.UniformInt(64, 288);
  const double headroom = rng.UniformDouble(1.5, 3.0);
  const int64_t per_token = FuzzWorstBytesPerToken(s, model, draft);
  // Running Mamba state (a few per-sequence pages) and vision-embedding slack.
  const int64_t state_margin =
      (FuzzMambaStateBytes(model) + (spec_engine ? FuzzMambaStateBytes(draft) : 0)) * 4 +
      (s.model == FuzzModel::kVision ? 32768 : 0);
  int64_t pool = static_cast<int64_t>(static_cast<double>((max_prompt + 48) * per_token) *
                                      headroom) +
                 state_margin;
  int64_t lcm = MakeJengaSpec(model, 16, /*vision_cache=*/model.vision.present).LcmPageBytes();
  if (spec_engine) {
    // The vLLM-style strategies subtract a static Mamba reservation from their (share of
    // the) pool before sizing the allocator; compensate so the biggest request still fits
    // alone in whatever slice survives.
    const int64_t reservation = StaticMambaReservationBytes(model, s.max_num_seqs) +
                                StaticMambaReservationBytes(draft, s.max_num_seqs);
    pool += reservation;
    if (s.strategy == SpecStrategy::kVllmManual) {
      // SmartSpec splits the pool proportionally to per-token KV size; each manager's share
      // minus its own reservation must still hold one full request of *its* model.
      const int64_t wt = std::max<int64_t>(1, model.KvBytesPerTokenAllLayers());
      const int64_t wd = std::max<int64_t>(1, draft.KvBytesPerTokenAllLayers());
      const int64_t sum = wt + wd;
      const auto need_for = [&](const ModelConfig& m, int64_t w) {
        const int64_t need =
            static_cast<int64_t>(static_cast<double>((max_prompt + 48) * w) * headroom) +
            FuzzMambaStateBytes(m) * 4 + StaticMambaReservationBytes(m, s.max_num_seqs);
        return need * sum / w;
      };
      pool = std::max({pool, need_for(model, wt), need_for(draft, wd)});
    }
    lcm = std::max({lcm, MakeJengaSpec(draft, 16, false).LcmPageBytes(),
                    MakeHomogeneousSpec(model, 16).LcmPageBytes(),
                    MakeHomogeneousSpec(draft, 16).LcmPageBytes()});
  } else {
    // The homogeneous Engine also subtracts the Mamba reservation, but Mamba stacks are
    // forced onto the Jenga allocator above, so no correction term is needed here.
    lcm = std::max(lcm, MakeHomogeneousSpec(model, 16).LcmPageBytes());
  }
  // Round up to large pages (worst case across the alloc specs the engine may build) and add
  // slack for per-group rounding.
  pool = (pool / lcm + 3) * lcm;
  s.pool_bytes = pool;

  if (offload) {
    s.swap_preemption = rng.Bernoulli(0.8);
    s.host_prefix_cache = rng.Bernoulli(0.5);
    // Sometimes a tiny host pool, so swap sets get LRU-evicted and the fallback
    // (recompute-after-swap) path runs.
    s.host_pool_bytes = rng.Bernoulli(0.3) ? (1 << 16) : (1ll << 28);
    // A free link makes the crossover always choose swap; a slow one mixes both modes.
    s.pcie_bandwidth = rng.Bernoulli(0.6) ? 1e15 : 3e9;
  }

  const int num_requests = static_cast<int>(rng.UniformInt(3, 8));
  const int num_families = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_requests; ++i) {
    FuzzRequestSpec r;
    r.family = static_cast<int>(rng.UniformInt(0, num_families - 1));
    r.prompt_len = rng.UniformInt(16, max_prompt);
    r.output_len = rng.UniformInt(2, 40);
    r.arrival = (spec_engine || rng.Bernoulli(0.6)) ? 0.0 : rng.UniformDouble(0.0, 0.2);
    if (s.model == FuzzModel::kVision) {
      r.images = static_cast<int>(rng.UniformInt(1, 3));
      r.prompt_len = std::max<int64_t>(r.prompt_len, r.images * 8 + 4);
    }
    s.requests.push_back(r);
  }
  if (rng.Bernoulli(0.25)) {
    // One request whose very first admission chunk cannot fit: must fail, not deadlock.
    // Widen the chunk so the admission check sees far more than the whole pool at once:
    // every model keeps at least one full-attention layer (>= 256 B/token), so an
    // 8192-token chunk costs >= 2 MiB against pools that top out well below that.
    s.max_batched_tokens = 8192;
    FuzzRequestSpec r;
    r.family = 99;
    r.prompt_len = 16384;
    r.output_len = 1;
    r.arrival = 0.0;
    r.oversized = true;
    s.requests.push_back(r);
  }
  return s;
}

inline std::string DescribeFuzzSchedule(const FuzzSchedule& s) {
  std::ostringstream out;
  out << "seed=0x" << std::hex << s.seed << std::dec
      << " engine=" << (s.spec_engine ? "spec_decode" : "engine")
      << " model=" << FuzzModelName(s.model);
  if (s.spec_engine) {
    out << " strategy=" << SpecStrategyName(s.strategy);
  } else {
    out << " jenga=" << (s.jenga ? 1 : 0);
  }
  out << " pool_bytes=" << s.pool_bytes << " max_num_seqs=" << s.max_num_seqs
      << " max_batched_tokens=" << s.max_batched_tokens;
  if (s.offload) {
    out << " offload{swap=" << (s.swap_preemption ? 1 : 0)
        << " host_cache=" << (s.host_prefix_cache ? 1 : 0)
        << " host_bytes=" << s.host_pool_bytes << " pcie=" << s.pcie_bandwidth << "}";
  }
  if (!s.fault_plan.empty()) {
    out << " fault{plan=\"" << s.fault_plan.ToString() << "\" seed=0x" << std::hex
        << s.fault_seed << std::dec << "}";
  }
  if (s.shed_after_blocked_steps > 0) {
    out << " shed{after=" << s.shed_after_blocked_steps
        << " watermark=" << s.shed_occupancy_watermark << "}";
  }
  if (s.elastic.armed) {
    out << " elastic{";
    if (s.spec_engine) {
      out << "shift_from=" << s.elastic.shift_from << " at=" << s.elastic.shift_step
          << " back=" << s.elastic.shift_back_step;
    } else {
      out << "delta=" << s.elastic.delta_pages << " grow_at=" << s.elastic.grow_step
          << " shrink_at=" << s.elastic.shrink_step
          << " repartition_at=" << s.elastic.repartition_step;
      if (s.elastic.governor) {
        out << " governor{hi=" << s.elastic.high_watermark
            << " lo=" << s.elastic.low_watermark
            << " cooldown=" << s.elastic.cooldown_steps << "}";
      }
    }
    out << "}";
  }
  out << "\n";
  for (size_t i = 0; i < s.requests.size(); ++i) {
    const FuzzRequestSpec& r = s.requests[i];
    out << "  req[" << i << "] prompt=" << r.prompt_len << " output=" << r.output_len
        << " arrival=" << r.arrival << " family=" << r.family;
    if (r.images > 0) {
      out << " images=" << r.images;
    }
    if (r.deadline >= 0.0) {
      out << " deadline=" << r.deadline;
    }
    if (r.oversized) {
      out << " (oversized: must fail)";
    }
    out << "\n";
  }
  for (const FuzzCancelSpec& c : s.cancels) {
    out << "  cancel req[" << c.request_index << "] at step " << c.step << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------------------
// Engine harness: one interface over Engine and SpecDecodeEngine.

class FuzzHarness {
 public:
  virtual ~FuzzHarness() = default;
  virtual bool Step() = 0;
  virtual bool Cancel(RequestId id) = 0;
  [[nodiscard]] virtual const Request& Req(RequestId id) const = 0;
  [[nodiscard]] virtual const EngineMetrics& Metrics() const = 0;
  [[nodiscard]] virtual const SwapManager* Swap() const = 0;
  virtual void AttachAudit(AllocatorAuditor* auditor) = 0;
  virtual void Dump(std::ostream& os) const = 0;
  // Engine only: KvManager's own running hit total (cross-layer consistency check); -1 = n/a.
  [[nodiscard]] virtual int64_t KvCacheHitTokens() const { return -1; }
  // Chaos elastic events need the concrete engine (resize/repartition/shift are not part of
  // the shared interface); nullptr when the harness wraps the other kind.
  [[nodiscard]] virtual Engine* ElasticEngine() { return nullptr; }
  [[nodiscard]] virtual SpecDecodeEngine* ElasticSpecEngine() { return nullptr; }
};

class EngineFuzzHarness final : public FuzzHarness {
 public:
  explicit EngineFuzzHarness(const FuzzSchedule& s) {
    EngineConfig config;
    config.model = MakeFuzzModel(s.model);
    config.gpu = TestGpu();
    config.jenga = s.jenga;
    config.vision_cache = s.jenga;
    config.pool_bytes_override = s.pool_bytes;
    config.max_num_seqs_override = s.max_num_seqs;
    config.max_batched_tokens_override = s.max_batched_tokens;
    config.memory_sample_every = 4;
    if (s.offload) {
      config.offload.enabled = true;
      config.offload.swap_preemption = s.swap_preemption;
      config.offload.host_prefix_cache = s.host_prefix_cache;
      config.offload.host_pool_bytes = s.host_pool_bytes;
      config.offload.pcie.h2d_bandwidth = s.pcie_bandwidth;
      config.offload.pcie.d2h_bandwidth = s.pcie_bandwidth;
      config.offload.pcie.per_transfer_latency = 0.0;
    }
    config.fault.plan = s.fault_plan;
    config.fault.seed = s.fault_seed;
    config.shed_after_blocked_steps = s.shed_after_blocked_steps;
    config.shed_occupancy_watermark = s.shed_occupancy_watermark;
    engine_ = std::make_unique<Engine>(std::move(config));
    for (size_t i = 0; i < s.requests.size(); ++i) {
      Request request = MakeRequest(static_cast<RequestId>(i), BuildFuzzPrompt(s.requests[i]),
                                    s.requests[i].output_len, s.requests[i].arrival);
      request.deadline = s.requests[i].deadline;
      engine_->Submit(std::move(request));
    }
  }

  bool Step() override { return engine_->StepOnce(); }
  bool Cancel(RequestId id) override { return engine_->CancelRequest(id); }
  const Request& Req(RequestId id) const override { return engine_->request(id); }
  const EngineMetrics& Metrics() const override { return engine_->metrics(); }
  const SwapManager* Swap() const override { return engine_->swap(); }
  void AttachAudit(AllocatorAuditor* auditor) override {
    auditor->AttachAllocator(&engine_->kv().allocator_mutable());
    if (engine_->swap_mutable() != nullptr) {
      auditor->AttachSwapManager(engine_->swap_mutable());
    }
  }
  void Dump(std::ostream& os) const override { engine_->DumpStateForDebug(os); }
  int64_t KvCacheHitTokens() const override { return engine_->kv().total_cache_hit_tokens(); }
  Engine* ElasticEngine() override { return engine_.get(); }

 private:
  std::unique_ptr<Engine> engine_;
};

class SpecFuzzHarness final : public FuzzHarness {
 public:
  explicit SpecFuzzHarness(const FuzzSchedule& s) {
    SpecDecodeConfig config;
    config.target = MakeFuzzModel(s.model);
    config.draft = TinyDraftModel();
    config.gpu = TestGpu();
    config.gpu.max_batched_tokens = s.max_batched_tokens;
    config.strategy = s.strategy;
    config.pool_bytes_override = s.pool_bytes;
    config.max_num_seqs_override = s.max_num_seqs;
    config.seed = s.seed;
    if (s.offload) {
      config.offload.enabled = true;
      config.offload.swap_preemption = s.swap_preemption;
      config.offload.host_prefix_cache = s.host_prefix_cache;
      config.offload.host_pool_bytes = s.host_pool_bytes;
      config.offload.pcie.h2d_bandwidth = s.pcie_bandwidth;
      config.offload.pcie.d2h_bandwidth = s.pcie_bandwidth;
      config.offload.pcie.per_transfer_latency = 0.0;
    }
    config.fault.plan = s.fault_plan;
    config.fault.seed = s.fault_seed;
    config.shed_after_blocked_steps = s.shed_after_blocked_steps;
    config.shed_occupancy_watermark = s.shed_occupancy_watermark;
    engine_ = std::make_unique<SpecDecodeEngine>(std::move(config));
    for (size_t i = 0; i < s.requests.size(); ++i) {
      Request request = MakeRequest(static_cast<RequestId>(i), BuildFuzzPrompt(s.requests[i]),
                                    s.requests[i].output_len, s.requests[i].arrival);
      request.deadline = s.requests[i].deadline;
      engine_->Submit(std::move(request));
    }
  }

  bool Step() override { return engine_->StepOnce(); }
  bool Cancel(RequestId id) override { return engine_->CancelRequest(id); }
  const Request& Req(RequestId id) const override { return engine_->request(id); }
  const EngineMetrics& Metrics() const override { return engine_->metrics(); }
  const SwapManager* Swap() const override { return engine_->swap(); }
  void AttachAudit(AllocatorAuditor* auditor) override {
    for (int m = 0; m < engine_->num_managers(); ++m) {
      auditor->AttachAllocator(&engine_->manager_mutable(m).allocator_mutable());
    }
    if (engine_->swap_mutable() != nullptr) {
      auditor->AttachSwapManager(engine_->swap_mutable());
    }
  }
  void Dump(std::ostream& os) const override { engine_->DumpStateForDebug(os); }
  SpecDecodeEngine* ElasticSpecEngine() override { return engine_.get(); }

 private:
  std::unique_ptr<SpecDecodeEngine> engine_;
};

inline std::unique_ptr<FuzzHarness> MakeFuzzHarness(const FuzzSchedule& s) {
  if (s.spec_engine) {
    return std::make_unique<SpecFuzzHarness>(s);
  }
  return std::make_unique<EngineFuzzHarness>(s);
}

}  // namespace jenga

#endif  // JENGA_TESTS_FUZZ_FUZZ_HARNESS_H_
