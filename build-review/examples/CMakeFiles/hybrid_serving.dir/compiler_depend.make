# Empty compiler generated dependencies file for hybrid_serving.
# This may be replaced when dependencies are built.
