# Empty compiler generated dependencies file for jenga_baseline.
# This may be replaced when dependencies are built.
