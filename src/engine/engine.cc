#include "src/engine/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "src/common/check.h"

namespace jenga {

namespace {

// Deterministic pseudo-token for generated output (ids live above the prompt vocabulary so
// that decode blocks of different requests never alias by accident).
int32_t PseudoToken(RequestId id, int64_t position) {
  uint64_t x = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(position);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 29;
  return static_cast<int32_t>(50000 + (x % 1000000));
}

// Differential audit of the deadline heap against the brute-force queue scan. Off by default
// (the reference pass is the O(requests) scan the heap exists to avoid); the fuzz stage
// enables it.
bool DeadlineHeapAuditEnabled() {
  static const bool enabled = std::getenv("JENGA_CHECK_DEADLINES") != nullptr;
  return enabled;
}

}  // namespace

EngineConfig VllmProfile(ModelConfig model, GpuSpec gpu) {
  EngineConfig config;
  config.model = std::move(model);
  config.gpu = std::move(gpu);
  config.jenga = false;
  config.vision_cache = false;
  return config;
}

EngineConfig SglangProfile(ModelConfig model, GpuSpec gpu) {
  EngineConfig config = VllmProfile(std::move(model), std::move(gpu));
  config.memory_fraction = 1.04;  // SGLang reserves slightly less for runtime state.
  return config;
}

EngineConfig TgiProfile(ModelConfig model, GpuSpec gpu) {
  EngineConfig config = VllmProfile(std::move(model), std::move(gpu));
  config.memory_fraction = 0.95;
  config.output_fraction = 0.6;  // No --ignore-eos: generation stops early (§7.3).
  return config;
}

EngineConfig JengaProfile(ModelConfig model, GpuSpec gpu) {
  EngineConfig config;
  config.model = std::move(model);
  config.gpu = std::move(gpu);
  config.jenga = true;
  config.vision_cache = true;
  return config;
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), gpu_(config_.gpu, config_.model) {
  max_batched_tokens_ = config_.max_batched_tokens_override > 0
                            ? config_.max_batched_tokens_override
                            : config_.gpu.max_batched_tokens;
  max_num_seqs_ =
      config_.max_num_seqs_override > 0 ? config_.max_num_seqs_override : config_.gpu.max_num_seqs;

  int64_t pool = config_.pool_bytes_override > 0
                     ? config_.pool_bytes_override
                     : static_cast<int64_t>(static_cast<double>(gpu_.KvPoolBytes()) *
                                            config_.memory_fraction);
  reserved_bytes_ = config_.gpu.reserved_bytes;
  if (!config_.jenga && config_.model.HasKind(LayerKind::kMamba)) {
    // Homogeneous engines reserve Mamba state statically for the full batch capacity.
    const int64_t reservation = StaticMambaReservationBytes(config_.model, max_num_seqs_);
    JENGA_CHECK_LT(reservation, pool) << "mamba reservation exceeds the KV pool";
    pool -= reservation;
    reserved_bytes_ += reservation;
  }

  const bool vision = config_.jenga && config_.vision_cache && config_.model.vision.present;
  KvSpec alloc_spec = config_.jenga
                          ? MakeJengaSpec(config_.model, config_.tokens_per_page, vision)
                          : MakeHomogeneousSpec(config_.model, config_.tokens_per_page);
  KvSpec accounting_spec = MakeJengaSpec(config_.model, config_.tokens_per_page, vision);

  KvManager::Options options;
  options.tokens_per_page = config_.tokens_per_page;
  options.enable_prefix_caching = config_.enable_prefix_caching;
  options.memoize_admission = config_.memoize_admission;
  options.jenga = config_.jenga;
  options.tokens_per_image = config_.model.vision.tokens_per_image;
  options.alloc_shards = config_.alloc_shards;
  kv_ = std::make_unique<KvManager>(std::move(alloc_spec), std::move(accounting_spec), pool,
                                    options);

  if (config_.offload.enabled) {
    SwapCostParams cost;
    cost.flops_per_token = 2.0 * config_.model.params_b * 1e9;  // Dense forward ≈ 2·params.
    cost.gpu_flops = config_.gpu.flops;
    cost.gpu_mem_bandwidth = config_.gpu.mem_bandwidth;
    cost.chunk_tokens = max_batched_tokens_;
    swap_ = std::make_unique<SwapManager>(config_.offload, cost);
    kv_->AttachOffload(swap_.get(), /*manager_index=*/0);
  }

  if (config_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(config_.fault);
    gpu_.set_fault_injector(fault_.get());
    if (swap_ != nullptr) {
      swap_->SetFaultInjector(fault_.get());
    }
  }
}

void Engine::Submit(Request request) {
  JENGA_CHECK(request.state == RequestState::kWaiting);
  const RequestId id = request.id;
  JENGA_CHECK(!requests_.contains(id)) << "duplicate request id " << id;
  if (request.deadline >= 0.0) {
    has_deadlines_ = true;
    deadlines_.Push(request.deadline, id);
  }
  requests_.emplace(id, std::move(request));
  waiting_.PushBack(id);
}

Request& Engine::Get(RequestId id) {
  const auto it = requests_.find(id);
  JENGA_CHECK(it != requests_.end());
  return it->second;
}

const Request& Engine::request(RequestId id) const {
  const auto it = requests_.find(id);
  JENGA_CHECK(it != requests_.end());
  return it->second;
}

int64_t Engine::EffectiveOutputLen(const Request& r) const {
  if (config_.output_fraction >= 1.0) {
    return r.output_len;
  }
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(static_cast<double>(r.output_len) *
                                           config_.output_fraction)));
}

void Engine::Preempt(RequestId id, bool allow_swap) {
  // The whole preemption — TrimToComputed, the swap decision, and the release-to-cache walk —
  // bills to kEvictPreempt, pausing whatever scope drove it (e.g. kAllocate when an
  // allocation failure preempts from the back). In particular the PR 9 trim is preemption
  // work, not eviction/commit work (micro.cache_churn_offload attribution).
  StepProfiler::Scope prof_scope(prof_, StepPhase::kEvictPreempt);
  Request& r = Get(id);
  // Return any retained-but-uncomputed chunk pages (injected step fault retry window) before
  // snapshotting: the swap fingerprint and cost footprint must cover the committed state only.
  kv_->TrimToComputed(r);
  if (swap_ != nullptr && allow_swap) {
    const KvSwapFootprint kfp = kv_->GetSwapFootprint(r);
    SwapFootprint fp;
    fp.tokens = kfp.tokens;
    fp.swappable_bytes = kfp.swappable_bytes;
    fp.resident_bytes = kfp.resident_bytes;
    fp.drop_recompute_bytes = kfp.drop_recompute_bytes;
    fp.fingerprints.push_back(kfp.fingerprint);
    // An injected transfer/host fault inside TryRecordSwapOut exhausts its retry budget and
    // reports non-OK; the fallback is the same recompute path a cost-crossover loss takes.
    if (swap_->ChoosePreemptMode(fp) == PreemptMode::kSwap &&
        swap_->TryRecordSwapOut(id, fp).ok()) {
      r.swapped_out = true;
      r.swapped_out_tokens = r.num_computed_tokens;
      metrics_.swap_out_events += 1;
    } else {
      metrics_.recomputed_tokens += r.num_computed_tokens;
    }
  } else {
    metrics_.recomputed_tokens += r.num_computed_tokens;
  }
  kv_->Release(r, tick_);
  r.state = RequestState::kPreempted;
  r.preemptions += 1;
  r.num_computed_tokens = 0;
  r.vision_encoder_runs_this_admission = 0;
  running_.Erase(id);
  waiting_.PushFront(id);
  // Preempt can be driven from outside StepOnce (governor park); a swap-out that trips the
  // injected host-failure degrade must be visible in metrics without waiting for a step.
  SyncFaultMetrics();
}

void Engine::FinishRequest(Request& r, bool failed) {
  // A request can retire without a final Release(finished=true) (e.g. admission-failure abort
  // after an earlier preemption); drop its allocator affinity state and any host swap set
  // either way — both calls are idempotent.
  kv_->OnRequestRetired(r.id);
  if (swap_ != nullptr) {
    swap_->DropSwapSet(r.id);
  }
  r.state = RequestState::kFinished;
  r.failed = failed;
  r.finish_time = now_;
  RequestRecord record;
  record.id = r.id;
  record.prompt_len = r.prompt_len();
  record.output_len = r.num_generated;
  record.cached_prefix_tokens = r.cached_prefix_tokens;
  record.preemptions = r.preemptions;
  record.arrival_time = r.arrival_time;
  record.first_scheduled_time = r.first_scheduled_time;
  record.first_token_time = r.first_token_time;
  record.finish_time = now_;
  record.failed = failed;
  record.cancelled = r.cancelled;
  metrics_.RecordFinished(record);
}

bool Engine::CancelRequest(RequestId id) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) {
    return false;
  }
  Request& r = it->second;
  if (r.state == RequestState::kFinished) {
    return false;
  }
  if (r.state == RequestState::kRunning) {
    kv_->Release(r, tick_, /*finished=*/true);
    running_.Erase(id);
  } else {
    // Waiting or preempted (possibly swapped out / mid-restore): these hold no KvManager
    // pages — every preemption path Releases before re-queueing — so only the queue slot and
    // any host swap set (dropped by FinishRequest below) remain.
    waiting_.Erase(id);
    r.swapped_out = false;
    r.swapped_out_tokens = 0;
  }
  r.cancelled = true;
  metrics_.cancelled_requests += 1;
  FinishRequest(r, /*failed=*/true);
  return true;
}

std::vector<RequestId> Engine::ActiveRequests() const {
  std::vector<RequestId> ids;
  ids.reserve(running_.size() + waiting_.size());
  for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
    ids.push_back(id);
  }
  for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
    ids.push_back(id);
  }
  return ids;
}

void Engine::ExpireDeadlines() {
  // Heap-first: O(1) when the earliest deadline is still in the future (the common step),
  // O(log n) per expiry. Stale entries — requests that finished, failed, or were cancelled
  // before their deadline — surface at the top and are discarded here (lazy deletion).
  expired_buf_.clear();
  while (deadlines_.HasExpired(now_)) {
    const RequestId id = deadlines_.PopTop().id;
    const auto it = requests_.find(id);
    if (it != requests_.end() && it->second.state != RequestState::kFinished) {
      expired_buf_.push_back(id);
    }
  }
  if (expired_buf_.empty()) {
    return;
  }
  if (expired_buf_.size() > 1) {
    // Several requests expired on the same step: the heap yields them in deadline order, but
    // the cancel order must be queue order (waiting first, then running — cancellation
    // mutates the queues and every downstream release/eviction tie-break sees it), so
    // re-collect the same set by scanning the queues like the pre-heap implementation did.
    expired_buf_.clear();
    for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
      const Request& r = Get(id);
      if (r.deadline >= 0.0 && r.deadline <= now_) {
        expired_buf_.push_back(id);
      }
    }
    for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
      const Request& r = Get(id);
      if (r.deadline >= 0.0 && r.deadline <= now_) {
        expired_buf_.push_back(id);
      }
    }
  }
  if (DeadlineHeapAuditEnabled()) [[unlikely]] {
    CheckDeadlineHeapAgainstScan();
  }
  for (const RequestId id : expired_buf_) {
    metrics_.deadline_expirations += 1;
    JENGA_CHECK(CancelRequest(id));
  }
}

void Engine::CheckDeadlineHeapAgainstScan() {
  // Fuzz arm (JENGA_CHECK_DEADLINES): the heap-collected expired set must equal the
  // brute-force queue scan in content; for multi-expiry steps the order must match too
  // (the single-expiry fast path trivially agrees on order).
  std::vector<RequestId> reference;
  for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
    const Request& r = Get(id);
    if (r.deadline >= 0.0 && r.deadline <= now_) {
      reference.push_back(id);
    }
  }
  for (RequestId id = running_.front(); id != kNoRequest; id = running_.Next(id)) {
    const Request& r = Get(id);
    if (r.deadline >= 0.0 && r.deadline <= now_) {
      reference.push_back(id);
    }
  }
  JENGA_CHECK_EQ(reference.size(), expired_buf_.size())
      << "deadline heap expired-set size diverges from brute-force scan at now=" << now_;
  for (size_t i = 0; i < reference.size(); ++i) {
    JENGA_CHECK_EQ(reference[i], expired_buf_[i])
        << "deadline heap expiry order diverges from brute-force scan at now=" << now_;
  }
}

void Engine::MaybeShedHeadSlow() {
  // Only shed under genuine memory pressure: a head blocked below the watermark is waiting
  // on a transient condition (e.g. a scheduled batch), not on an over-committed pool.
  // Counter-only occupancy probe — no request-table walk on the common blocked step.
  if (kv_->allocator().Occupancy() < config_.shed_occupancy_watermark) {
    return;
  }
  const RequestId head = waiting_.PopFront();
  Request& r = Get(head);
  r.swapped_out = false;
  r.swapped_out_tokens = 0;
  r.cancelled = true;
  metrics_.shed_requests += 1;
  metrics_.cancelled_requests += 1;
  FinishRequest(r, /*failed=*/true);
  head_blocked_steps_ = 0;
}

double Engine::PoolOccupancy() const {
  // O(1): the governor calls this on every non-cooldown step (see MemoryGovernor), so it
  // must not recompute the full memory-stats walk.
  return kv_->allocator().Occupancy();
}

int32_t Engine::PoolPages() const { return kv_->allocator().lcm().num_pages(); }

int32_t Engine::GrowKvPool(int32_t pages) {
  JENGA_CHECK_GT(pages, 0);
  metrics_.pool_grow_attempts += 1;
  if (config_.alloc_shards > 1) {
    return 0;  // Sharded claim indexes have fixed geometry; resize is shards==1 only.
  }
  if (fault_ != nullptr && fault_->Fire(FaultSite::kPoolGrow)) {
    // The fault site sits before any mutation (the reservation failed), so rollback is
    // "nothing happened": the ledger records the attempt with zero net delta.
    metrics_.pool_grow_rollbacks += 1;
    SyncFaultMetrics();
    return 0;
  }
  kv_->allocator_mutable().GrowPool(pages);
  metrics_.pool_grow_pages += pages;
  SyncFaultMetrics();
  return pages;
}

int32_t Engine::ShrinkKvPool(int32_t pages) {
  JENGA_CHECK_GT(pages, 0);
  metrics_.pool_shrink_attempts += 1;
  if (config_.alloc_shards > 1) {
    return 0;
  }
  if (fault_ != nullptr && fault_->Fire(FaultSite::kPoolShrinkDrain)) {
    metrics_.pool_shrink_rollbacks += 1;
    SyncFaultMetrics();
    return 0;
  }
  // Draining the free tail can evict cached blocks whose eviction sink parks them to host;
  // an injected host failure in that path may degrade the tier outside any engine step.
  const int32_t removed = kv_->allocator_mutable().ShrinkPool(pages);
  metrics_.pool_shrink_pages += removed;
  SyncFaultMetrics();
  return removed;
}

bool Engine::RepartitionKvPool(const ModelConfig& new_model, int64_t new_pool_bytes) {
  metrics_.repartition_attempts += 1;
  if (config_.alloc_shards > 1) {
    metrics_.repartition_rollbacks += 1;
    return false;
  }
  // Quiesce: preempt every running request back to the waiting queue through the recompute
  // path. Swap sets bind their fingerprints to the layout being replaced, so parking here
  // would only produce restore failures later.
  while (!running_.empty()) {
    Preempt(running_.back(), /*allow_swap=*/false);
  }

  // Build the replacement layout exactly the way the constructor did for the old one.
  GpuSim new_gpu(config_.gpu, new_model);
  int64_t pool = new_pool_bytes > 0
                     ? new_pool_bytes
                     : static_cast<int64_t>(static_cast<double>(new_gpu.KvPoolBytes()) *
                                            config_.memory_fraction);
  int64_t reserved = config_.gpu.reserved_bytes;
  if (!config_.jenga && new_model.HasKind(LayerKind::kMamba)) {
    const int64_t reservation = StaticMambaReservationBytes(new_model, max_num_seqs_);
    JENGA_CHECK_LT(reservation, pool) << "mamba reservation exceeds the KV pool";
    pool -= reservation;
    reserved += reservation;
  }
  const bool vision = config_.jenga && config_.vision_cache && new_model.vision.present;
  KvSpec alloc_spec = config_.jenga ? MakeJengaSpec(new_model, config_.tokens_per_page, vision)
                                    : MakeHomogeneousSpec(new_model, config_.tokens_per_page);
  KvSpec accounting_spec = MakeJengaSpec(new_model, config_.tokens_per_page, vision);
  KvManager::Options options;
  options.tokens_per_page = config_.tokens_per_page;
  options.enable_prefix_caching = config_.enable_prefix_caching;
  options.memoize_admission = config_.memoize_admission;
  options.jenga = config_.jenga;
  options.tokens_per_image = new_model.vision.tokens_per_image;
  options.alloc_shards = config_.alloc_shards;
  auto fresh = std::make_unique<KvManager>(std::move(alloc_spec), std::move(accounting_spec),
                                           pool, options);

  if (fault_ != nullptr && fault_->Fire(FaultSite::kRepartitionCommit)) {
    // Rollback: discard the freshly built manager; the old layout never stopped being
    // authoritative and the quiesced requests re-admit against it on the next step.
    metrics_.repartition_rollbacks += 1;
    SyncFaultMetrics();
    return false;
  }

  // Commit. Host-tier state (swap sets, parked cache pages) is keyed by the old layout's
  // group structure and hash salts — flush it wholesale and clear the per-request swap flags
  // so every quiesced request takes the recompute admission path.
  if (swap_ != nullptr) {
    swap_->FlushHostState();
  }
  for (auto& [id, r] : requests_) {
    if (r.swapped_out) {
      r.swapped_out = false;
      metrics_.swap_fallback_events += 1;
      metrics_.recomputed_tokens += r.swapped_out_tokens;
      r.swapped_out_tokens = 0;
    }
  }
  config_.model = new_model;
  gpu_ = std::move(new_gpu);
  if (fault_ != nullptr) {
    gpu_.set_fault_injector(fault_.get());
  }
  reserved_bytes_ = reserved;
  kv_ = std::move(fresh);
  if (swap_ != nullptr) {
    kv_->AttachOffload(swap_.get(), /*manager_index=*/0);
  }
  metrics_.repartitions += 1;
  SyncFaultMetrics();
  return true;
}

bool Engine::ParkNewestRunning() {
  if (running_.size() <= 1) {
    return false;  // Parking the only runner would just stall the engine.
  }
  Preempt(running_.back());
  metrics_.elastic_parked += 1;
  return true;
}

bool Engine::ShedOldestWaiting() {
  if (waiting_.empty()) {
    return false;
  }
  const RequestId head = waiting_.front();
  Request& r = Get(head);
  if (r.arrival_time > now_) {
    return false;  // Not yet arrived: future work is never pressure.
  }
  waiting_.Erase(head);
  r.swapped_out = false;
  r.swapped_out_tokens = 0;
  r.cancelled = true;
  metrics_.shed_requests += 1;
  metrics_.elastic_shed += 1;
  metrics_.cancelled_requests += 1;
  FinishRequest(r, /*failed=*/true);
  return true;
}

void Engine::SyncFaultMetricsSlow() {
  if (fault_ != nullptr) {
    metrics_.faults_injected = fault_->total_fires();
  }
  if (swap_ != nullptr) {
    const SwapManager::Stats& s = swap_->stats();
    metrics_.fault_retries = s.fault_retries;
    metrics_.fault_backoff_time = s.backoff_time;
    metrics_.degraded_mode_transitions = s.degraded_transitions;
  }
}

double Engine::MaybeEncodeVision(Request& r, int64_t chunk_begin, int64_t chunk_end) {
  if (!config_.model.vision.present || r.image_prefix.back() == 0) {
    return 0.0;
  }
  const int64_t total_image_tokens = r.ImageTokensBefore(r.prompt_len());
  if (config_.jenga && config_.vision_cache) {
    // Encode once per admission; the embeddings then live in the vision-embedding cache.
    if (r.vision_encoder_runs_this_admission > 0) {
      return 0.0;
    }
    r.vision_encoder_runs_this_admission += 1;
    r.vision_encoder_runs += 1;
    metrics_.vision_encoder_runs += 1;
    const double t = gpu_.VisionEncodeTime(total_image_tokens);
    metrics_.vision_encode_time += t;
    return t;
  }
  // No vision cache: the encoder re-runs on every chunk that consumes image tokens (§7.4).
  const int64_t images_in_chunk =
      r.ImageTokensBefore(std::min<int64_t>(chunk_end, r.prompt_len())) -
      r.ImageTokensBefore(std::min<int64_t>(chunk_begin, r.prompt_len()));
  if (images_in_chunk <= 0) {
    return 0.0;
  }
  r.vision_encoder_runs += 1;
  metrics_.vision_encoder_runs += 1;
  const double t = gpu_.VisionEncodeTime(total_image_tokens);
  metrics_.vision_encode_time += t;
  return t;
}

Engine::SwapAdmit Engine::TryAdmitFromSwap(Request& r, bool nothing_else_runnable) {
  const HostSwapSet* set = swap_->PeekSwapSet(r.id);
  if (set == nullptr) {
    // The set was LRU-evicted from host memory while the request queued: recompute.
    r.swapped_out = false;
    metrics_.swap_fallback_events += 1;
    metrics_.recomputed_tokens += r.swapped_out_tokens;
    r.swapped_out_tokens = 0;
    return SwapAdmit::kFallthrough;
  }
  // Copy the set: restoring may evict cache pages into the host pool, which can LRU-evict
  // this set (and invalidate `set`) before the commit below.
  const HostSwapSet snapshot = *set;
  if (!swap_->BeginSwapIn(r.id).ok()) {
    // Injected H2D fault that survived its retries: the set is unusable — drop it and
    // rebuild the request through normal (recompute) admission.
    swap_->DropSwapSet(r.id);
    r.swapped_out = false;
    metrics_.swap_fallback_events += 1;
    metrics_.recomputed_tokens += r.swapped_out_tokens;
    r.swapped_out_tokens = 0;
    return SwapAdmit::kFallthrough;
  }
  const int64_t tokens = snapshot.tokens;
  JENGA_CHECK_EQ(static_cast<int64_t>(snapshot.fingerprints.size()), 1);
  if (kv_->CanAllocate(r, tokens) &&
      kv_->RestoreFromSwap(r, tokens, snapshot.fingerprints[0], tick_)) {
    swap_->CommitSwapIn(r.id, snapshot);
    metrics_.swap_in_events += 1;
    r.swapped_out = false;
    r.swapped_out_tokens = 0;
    r.state = RequestState::kRunning;
    if (r.first_scheduled_time < 0.0) {
      r.first_scheduled_time = now_;
    }
    // The vision-embedding pages came back with the swap set; don't re-run the encoder.
    if (config_.jenga && config_.vision_cache && config_.model.vision.present &&
        r.image_prefix.back() > 0) {
      r.vision_encoder_runs_this_admission = std::max(r.vision_encoder_runs_this_admission, 1);
    }
    running_.PushBack(r.id);
    return SwapAdmit::kAdmitted;
  }
  if (!nothing_else_runnable) {
    return SwapAdmit::kBlocked;  // Head-of-line blocking, same as the recompute path.
  }
  // Restoring would deadlock (nothing running to free memory): abandon the set and rebuild
  // the request from scratch through normal admission.
  swap_->DropSwapSet(r.id);
  r.swapped_out = false;
  metrics_.swap_fallback_events += 1;
  metrics_.recomputed_tokens += r.swapped_out_tokens;
  r.swapped_out_tokens = 0;
  return SwapAdmit::kFallthrough;
}

bool Engine::StepOnce() {
  if (running_.empty() && waiting_.empty()) {
    return false;
  }
  StepProfiler::StepScope prof_step(prof_);
  if (step_hook_ != nullptr) [[unlikely]] {
    // Quiesce point: no request is mid-step, so the governor may preempt, shed, resize, or
    // repartition here. It may also drain the last pending work.
    StepProfiler::Scope prof_scope(prof_, StepPhase::kHookDispatch);
    step_hook_->OnStepBoundary(*this);
    if (running_.empty() && waiting_.empty()) {
      return false;
    }
  }
  if (has_deadlines_) [[unlikely]] {
    StepProfiler::Scope prof_scope(prof_, StepPhase::kDeadlineExpiry);
    ExpireDeadlines();
  }
  if (fault_ != nullptr && swap_ != nullptr) [[unlikely]] {
    StepProfiler::Scope prof_scope(prof_, StepPhase::kHookDispatch);
    swap_->OnEngineStep();  // Host memory-pressure site (forced shrink / degrade).
  }
  // Fast-forward to the next arrival when idle.
  if (running_.empty()) {
    double next_arrival = -1.0;
    for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
      const double t = Get(id).arrival_time;
      if (next_arrival < 0.0 || t < next_arrival) {
        next_arrival = t;
      }
    }
    if (next_arrival > now_) {
      now_ = next_arrival;
    }
  }

  ++tick_;
  int64_t budget = max_batched_tokens_;
  // Reused across steps: per-step construction showed up as malloc traffic on the
  // steps-per-second path (ROADMAP item 5).
  std::vector<Scheduled>& scheduled = scheduled_buf_;
  scheduled.clear();
  double vision_time = 0.0;

  {
    StepProfiler::Scope prof_schedule(prof_, StepPhase::kSchedule);
    // Phase 1: running requests, FCFS. Decode requests take one token; prefilling requests
    // take a chunk. Allocation failure preempts from the back of the running list.
    for (RequestId id = running_.front(); id != kNoRequest;) {
      Request& r = Get(id);
      const bool prefill = r.InPrefill();
      int64_t n = prefill ? std::min<int64_t>(r.prompt_len() - r.num_computed_tokens, budget) : 1;
      if (budget <= 0 || n <= 0) {
        id = running_.Next(id);
        continue;
      }
      n = std::min<int64_t>(n, budget);
      bool self_preempted = false;
      {
        StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
        while (!kv_->AllocateForTokens(r, n, tick_)) {
          const RequestId victim = running_.back();
          Preempt(victim);
          if (victim == id) {
            self_preempted = true;
            break;
          }
        }
      }
      if (self_preempted) {
        // Every entry after `id` was preempted (back-first) before `id` itself was; nothing
        // is left to visit. The successor must be read after the preempt loop either way —
        // the loop unlinks it.
        break;
      }
      {
        StepProfiler::Scope prof_vision(prof_, StepPhase::kGpuSim);
        vision_time += MaybeEncodeVision(r, r.num_computed_tokens, r.num_computed_tokens + n);
      }
      budget -= n;
      scheduled.push_back({id, n, prefill});
      id = running_.Next(id);
    }

    // Phase 2: admissions.
    bool head_blocked = false;
    while (budget > 0 && static_cast<int>(running_.size()) < max_num_seqs_ && !waiting_.empty()) {
      const RequestId id = waiting_.front();
      Request& r = Get(id);
      if (r.arrival_time > now_) {
        break;  // Future arrival, not memory pressure: never counts toward the shed gate.
      }
      if (swap_ != nullptr && r.swapped_out) {
        SwapAdmit outcome;
        {
          StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
          outcome = TryAdmitFromSwap(
              r, /*nothing_else_runnable=*/running_.empty() && scheduled.empty());
        }
        if (outcome == SwapAdmit::kBlocked) {
          head_blocked = true;
          break;
        }
        if (outcome == SwapAdmit::kAdmitted) {
          waiting_.Erase(id);
          continue;  // No prefill chunk needed; the request decodes (or resumes) next step.
        }
        // kFallthrough: recompute from scratch via the normal path below.
      }
      const int64_t chunk_peek = std::min<int64_t>(r.prompt_len(), budget);
      bool fits;
      {
        StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
        fits = kv_->CanAllocate(r, chunk_peek);
      }
      if (!fits) {
        // Head-of-line blocking is intentional (FCFS); but if nothing is running the request
        // can never fit — fail it rather than deadlock (vLLM aborts in this case, §7.2).
        if (running_.empty() && scheduled.empty()) {
          waiting_.Erase(id);
          FinishRequest(r, /*failed=*/true);
          continue;
        }
        head_blocked = true;
        break;
      }
      waiting_.Erase(id);
      {
        StepProfiler::Scope prof_admit(prof_, StepPhase::kHitScan);
        kv_->OnAdmit(r, tick_);
      }
      metrics_.cache_hit_tokens += r.cached_prefix_tokens;
      const int64_t n = std::min<int64_t>(r.prompt_len() - r.num_computed_tokens, budget);
      JENGA_CHECK_GT(n, 0);
      bool allocated;
      {
        StepProfiler::Scope prof_alloc(prof_, StepPhase::kAllocate);
        allocated = kv_->AllocateForTokens(r, n, tick_);
      }
      if (!allocated) {
        const bool abandoned = running_.empty() && scheduled.empty();
        kv_->Release(r, tick_, /*finished=*/abandoned);
        r.num_computed_tokens = 0;
        if (abandoned) {
          FinishRequest(r, /*failed=*/true);
          continue;
        }
        waiting_.PushFront(id);
        head_blocked = true;
        break;
      }
      r.state = RequestState::kRunning;
      if (r.first_scheduled_time < 0.0) {
        r.first_scheduled_time = now_;
      }
      running_.PushBack(id);
      {
        StepProfiler::Scope prof_vision(prof_, StepPhase::kGpuSim);
        vision_time += MaybeEncodeVision(r, r.num_computed_tokens, r.num_computed_tokens + n);
      }
      budget -= n;
      scheduled.push_back({id, n, true});
    }

    if (head_blocked) {
      head_blocked_steps_ += 1;
      StepProfiler::Scope prof_shed(prof_, StepPhase::kShedGate);
      MaybeShedHead();
    } else {
      head_blocked_steps_ = 0;
    }
  }

  if (scheduled.empty()) {
    // Pending PCIe transfers have no compute to hide behind; drain them as pure stall.
    if (swap_ != nullptr && swap_->HasPendingTransfer()) {
      const double stall = swap_->ConsumeStall(/*compute_time=*/0.0);
      metrics_.swap_stall_time += stall;
      now_ += stall;
    }
    // Nothing runnable now: advance to the next arrival if one exists.
    double next_arrival = -1.0;
    for (RequestId id = waiting_.front(); id != kNoRequest; id = waiting_.Next(id)) {
      const double t = Get(id).arrival_time;
      if (t > now_ && (next_arrival < 0.0 || t < next_arrival)) {
        next_arrival = t;
      }
    }
    if (next_arrival > now_) {
      now_ = next_arrival;
      SyncFaultMetrics();
      return true;
    }
    // All waiting requests have arrived but none was schedulable. Either decodes blocked on a
    // transiently full pool (running non-empty — retry next step) or this step only drained
    // failed requests and the queues are settling.
    SyncFaultMetrics();
    return true;
  }

  // Phase 3: execute the step on the simulated GPU.
  int64_t scheduled_tokens = 0;
  int decode_batch = 0;
  bool step_failed;
  {
    StepProfiler::Scope prof_gpu(prof_, StepPhase::kGpuSim);
    int64_t new_tokens = 0;
    int64_t kv_read_bytes = 0;
    for (const Scheduled& s : scheduled) {
      new_tokens += s.tokens;
      const Request& r = Get(s.id);
      kv_read_bytes += kv_->DecodeKvReadBytes(r);
      if (!s.was_prefill) {
        ++decode_batch;
      }
    }
    scheduled_tokens = new_tokens;
    double step_time = gpu_.StepTime(new_tokens, kv_read_bytes) + vision_time;
    if (swap_ != nullptr) {
      const double stall = swap_->ConsumeStall(step_time);
      metrics_.swap_stall_time += stall;
      step_time += stall;
    }
    now_ += step_time;

    // The step's GPU time is spent either way; on an injected step fault its results are
    // lost, so the commit below is skipped. Allocations are target-based (AllocateForTokens
    // is idempotent at an unchanged num_computed_tokens), so retrying the same chunk next
    // step is safe and re-uses the pages taken this step.
    step_failed = gpu_.InjectStepFault();
    if (step_failed) {
      metrics_.gpu_step_faults += 1;
    }
  }

  // Phase 4: commit progress, emit tokens, finish requests.
  if (!step_failed) {
    StepProfiler::Scope prof_commit(prof_, StepPhase::kCommit);
    for (const Scheduled& s : scheduled) {
      Request& r = Get(s.id);
      r.num_computed_tokens += s.tokens;
      if (s.was_prefill) {
        metrics_.prefill_tokens_computed += s.tokens;
      }
      kv_->OnStepComputed(r, tick_);
      const int64_t effective_output = EffectiveOutputLen(r);
      while (r.num_generated < effective_output &&
             r.num_computed_tokens >= r.prompt_len() + r.num_generated) {
        r.AppendGenerated(PseudoToken(r.id, r.prompt_len() + r.num_generated));
        if (r.first_token_time < 0.0) {
          r.first_token_time = now_;
        }
      }
      if (r.num_generated >= effective_output) {
        kv_->Release(r, tick_, /*finished=*/true);
        running_.Erase(s.id);
        FinishRequest(r, /*failed=*/false);
      }
    }
  }

  metrics_.RecordStep(now_, step_failed ? 0 : scheduled_tokens, step_failed ? 0 : decode_batch,
                      static_cast<int>(running_.size()), static_cast<int>(waiting_.size()));
  if (config_.memory_sample_every > 0 &&
      metrics_.total_steps() % config_.memory_sample_every == 0) {
    const KvManager::MemoryStats stats = kv_->GetMemoryStats();
    MemorySample sample;
    sample.time = now_;
    sample.weight_bytes = config_.model.WeightBytes();
    sample.reserved_bytes = reserved_bytes_;
    sample.used_bytes = stats.needed_bytes;
    sample.wasted_bytes = stats.wasted_bytes;
    sample.cached_bytes = stats.cached_bytes;
    sample.unallocated_bytes = stats.unallocated_bytes;
    sample.host_bytes = swap_ != nullptr ? swap_->host().used_bytes() : 0;
    metrics_.RecordMemory(sample);
  }
  SyncFaultMetrics();
  return true;
}

void Engine::DumpStateForDebug(std::ostream& os) const {
  os << "=== engine state dump ===\n";
  os << "now=" << now_ << " tick=" << tick_ << " running=" << running_.size()
     << " waiting=" << waiting_.size() << " finished=" << metrics_.finished().size() << "\n";
  const KvManager::MemoryStats mem = kv_->GetMemoryStats();
  os << "pool: bytes=" << mem.pool_bytes << " used=" << mem.used_bytes
     << " needed=" << mem.needed_bytes << " cached=" << mem.cached_bytes
     << " unallocated=" << mem.unallocated_bytes << "\n";
  if (swap_ != nullptr) {
    const SwapManager::Stats& s = swap_->stats();
    os << "offload: degraded=" << (swap_->degraded() ? 1 : 0)
       << " host_used=" << swap_->host().used_bytes()
       << " host_cap=" << swap_->host().capacity_bytes() << " sets=" << swap_->host().num_sets()
       << " pages=" << swap_->host().num_pages() << " swap_out=" << s.swap_out_events
       << " swap_in=" << s.swap_in_events << " retries=" << s.fault_retries
       << " backoff=" << s.backoff_time << " shrinks=" << s.host_shrinks << "\n";
  }
  if (fault_ != nullptr) {
    os << "faults:";
    for (int i = 0; i < kNumFaultSites; ++i) {
      const FaultInjector::SiteCounters& c = fault_->counters(static_cast<FaultSite>(i));
      os << " " << FaultSiteName(static_cast<FaultSite>(i)) << "=" << c.fires << "/"
         << c.consults;
    }
    os << "\n";
  }
  os << "shed: head_blocked_steps=" << head_blocked_steps_
     << " shed_requests=" << metrics_.shed_requests << "\n";
  if (step_hook_ != nullptr || metrics_.pool_grow_attempts > 0 ||
      metrics_.pool_shrink_attempts > 0 || metrics_.repartition_attempts > 0) {
    os << "elastic: pool_pages=" << PoolPages() << " draining=" << (elastic_draining_ ? 1 : 0)
       << " grow=" << metrics_.pool_grow_pages << "/" << metrics_.pool_grow_attempts
       << " shrink=" << metrics_.pool_shrink_pages << "/" << metrics_.pool_shrink_attempts
       << " repart=" << metrics_.repartitions << "/" << metrics_.repartition_attempts
       << " rollbacks=" << metrics_.pool_grow_rollbacks + metrics_.pool_shrink_rollbacks +
                               metrics_.repartition_rollbacks
       << " parked=" << metrics_.elastic_parked << " eshed=" << metrics_.elastic_shed
       << " ladder=" << metrics_.ladder_activations << "\n";
  }
  std::vector<RequestId> ids;
  ids.reserve(requests_.size());
  for (const auto& [id, r] : requests_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const RequestId id : ids) {
    const Request& r = requests_.at(id);
    const char* state = r.state == RequestState::kWaiting     ? "waiting"
                        : r.state == RequestState::kRunning   ? "running"
                        : r.state == RequestState::kPreempted ? "preempted"
                                                              : "finished";
    os << "  req " << id << ": state=" << state << " prompt=" << r.prompt_len()
       << " output=" << r.output_len << " computed=" << r.num_computed_tokens
       << " generated=" << r.num_generated << " preemptions=" << r.preemptions
       << " swapped_out=" << (r.swapped_out ? 1 : 0) << " cancelled=" << (r.cancelled ? 1 : 0)
       << " arrival=" << r.arrival_time << " deadline=" << r.deadline << "\n";
  }
  os << "=== end engine state dump ===\n";
}

void Engine::RunToCompletion(int64_t max_steps) {
  int64_t steps = 0;
  while (StepOnce()) {
    ++steps;
    if (steps >= max_steps) {
      // Dump everything a postmortem needs before aborting: fuzz/chaos non-convergence must
      // be debuggable from the log alone.
      DumpStateForDebug(std::cerr);
      JENGA_CHECK_LT(steps, max_steps) << "engine did not converge";
    }
  }
}

}  // namespace jenga
