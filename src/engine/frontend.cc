#include "src/engine/frontend.h"

#include <utility>

#include "src/common/check.h"

namespace jenga {

ServingFrontend::ServingFrontend(EngineConfig config)
    : ServingFrontend(std::move(config), Options{}) {}

ServingFrontend::ServingFrontend(EngineConfig config, Options options)
    : options_(std::move(options)),
      engine_(std::move(config)),
      queue_(options_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

ServingFrontend::~ServingFrontend() { Shutdown(); }

double ServingFrontend::WallSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

StreamHandle ServingFrontend::SubmitAsync(Request request) {
  auto stream = std::make_shared<RequestStream>();
  stream->submit_wall.store(WallSeconds(), std::memory_order_release);
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  // Push blocks while the queue is full and fails only once the queue is closed (shutdown).
  if (!queue_.Push(std::move(op))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    stream->phase.store(StreamPhase::kRejected, std::memory_order_release);
    return stream;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  return stream;
}

bool ServingFrontend::TrySubmitAsync(Request request, StreamHandle* out) {
  JENGA_CHECK(out != nullptr);
  auto stream = std::make_shared<RequestStream>();
  stream->submit_wall.store(WallSeconds(), std::memory_order_release);
  Op op;
  op.kind = Op::Kind::kSubmit;
  op.id = request.id;
  op.request = std::move(request);
  op.stream = stream;
  if (queue_.closed()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    stream->phase.store(StreamPhase::kRejected, std::memory_order_release);
    *out = std::move(stream);
    return true;  // Handled: the caller can read the rejection off the stream.
  }
  if (!queue_.TryPush(op)) {
    return false;  // Full; no side effect.
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  WakeConsumer();
  *out = std::move(stream);
  return true;
}

void ServingFrontend::CancelAsync(RequestId id) {
  Op op;
  op.kind = Op::Kind::kCancel;
  op.id = id;
  // A cancel dropped because the queue closed is harmless: shutdown drains the accepted
  // work to completion either way.
  if (queue_.Push(std::move(op))) {
    WakeConsumer();
  }
}

void ServingFrontend::Start() {
  JENGA_CHECK(!started_.exchange(true)) << "ServingFrontend::Start called twice";
  loop_ = std::thread([this] { EngineLoop(/*until_idle=*/false); });
}

void ServingFrontend::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
  if (loop_.joinable()) {
    loop_.join();
  } else {
    // Start() was never called: drain whatever was enqueued on the caller's thread.
    EngineLoop(/*until_idle=*/false);
  }
}

void ServingFrontend::RunUntilIdle() {
  JENGA_CHECK(!started_.load(std::memory_order_acquire))
      << "RunUntilIdle cannot run next to the engine thread";
  EngineLoop(/*until_idle=*/true);
}

void ServingFrontend::RunClients(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    clients.emplace_back(fn, i);
  }
  for (std::thread& t : clients) {
    t.join();
  }
}

void ServingFrontend::EngineLoop(bool until_idle) {
  for (;;) {
    const int applied = DrainOps();
    const bool stepped = engine_.StepOnce();
    if (!live_.empty()) {
      PublishProgress();
    }
    if (options_.step_observer && (stepped || applied > 0)) {
      options_.step_observer(engine_);
    }
    if (stepped || applied > 0) {
      continue;
    }
    // Queue empty at drain time and the engine has no unfinished work.
    if (until_idle && queue_.SizeApprox() == 0) {
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      if (queue_.SizeApprox() == 0) {
        JENGA_CHECK(live_.empty()) << "engine idle with live streams unresolved";
        return;
      }
      continue;  // Late ops slipped in before Close(); drain them.
    }
    if (!until_idle) {
      IdleWait();
    }
  }
}

int ServingFrontend::DrainOps() {
  int applied = 0;
  while (auto op = queue_.TryPop()) {
    if (op->kind == Op::Kind::kSubmit) {
      ApplySubmit(*op);
    } else {
      ApplyCancel(op->id);
    }
    ++applied;
  }
  return applied;
}

void ServingFrontend::ApplySubmit(Op& op) {
  if (pending_cancels_.erase(op.id) > 0) {
    // Cancelled while still queued: the engine never sees the request.
    retired_.insert(op.id);
    cancelled_queued_.fetch_add(1, std::memory_order_relaxed);
    op.stream->finish_wall.store(WallSeconds(), std::memory_order_release);
    op.stream->phase.store(StreamPhase::kCancelled, std::memory_order_release);
    return;
  }
  engine_.Submit(std::move(op.request));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  live_.emplace(op.id, std::move(op.stream));
}

void ServingFrontend::ApplyCancel(RequestId id) {
  if (live_.find(id) != live_.end()) {
    (void)engine_.CancelRequest(id);  // False only if it finished this very step; fine.
    return;
  }
  if (retired_.find(id) != retired_.end()) {
    return;  // Late cancel for a finished/cancelled request.
  }
  // The submit has not been drained yet (it is behind us in the queue, or on its way from
  // another producer). Remember the cancel; the submit annihilates against it.
  pending_cancels_.insert(id);
}

void ServingFrontend::PublishProgress() {
  const double wall = WallSeconds();
  for (auto it = live_.begin(); it != live_.end();) {
    const Request& r = engine_.request(it->first);
    RequestStream& stream = *it->second;
    stream.tokens.store(r.num_generated, std::memory_order_release);
    if (r.num_generated > 0 &&
        stream.first_token_wall.load(std::memory_order_relaxed) < 0.0) {
      stream.first_token_wall.store(wall, std::memory_order_release);
    }
    if (r.state == RequestState::kFinished) {
      StreamPhase terminal = StreamPhase::kFinished;
      if (r.cancelled) {
        terminal = StreamPhase::kCancelled;
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      } else if (r.failed) {
        terminal = StreamPhase::kFailed;
        failed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        finished_.fetch_add(1, std::memory_order_relaxed);
      }
      stream.finish_wall.store(wall, std::memory_order_release);
      stream.phase.store(terminal, std::memory_order_release);
      retired_.insert(it->first);
      it = live_.erase(it);
      continue;
    }
    if (r.state != RequestState::kWaiting) {
      // Running or preempted: scheduled at least once from the client's point of view.
      StreamPhase expected = StreamPhase::kQueued;
      stream.phase.compare_exchange_strong(expected, StreamPhase::kRunning,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
    }
    ++it;
  }
}

void ServingFrontend::IdleWait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  consumer_idle_.store(true, std::memory_order_seq_cst);
  // Re-check under the lock: a producer that saw consumer_idle_ == true will block on
  // wake_mu_ before notifying, so a push that raced our store is visible here. The timeout
  // bounds the one remaining race (push before our store, idle-check before the producer's
  // load) at idle_wait_us.
  if (queue_.SizeApprox() == 0 && !stopping_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lock, std::chrono::microseconds(options_.idle_wait_us));
  }
  consumer_idle_.store(false, std::memory_order_seq_cst);
}

void ServingFrontend::WakeConsumer() {
  if (consumer_idle_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
}

ServingFrontend::Counters ServingFrontend::counters() const {
  Counters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.cancelled_queued = cancelled_queued_.load(std::memory_order_relaxed);
  c.finished = finished_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace jenga
