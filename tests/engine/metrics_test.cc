#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

namespace jenga {
namespace {

RequestRecord MakeRecord(int64_t id, double arrival, double first_token, double finish,
                         int64_t output_len, bool failed = false) {
  RequestRecord record;
  record.id = id;
  record.prompt_len = 100;
  record.output_len = output_len;
  record.arrival_time = arrival;
  record.first_scheduled_time = arrival;
  record.first_token_time = first_token;
  record.finish_time = finish;
  record.failed = failed;
  return record;
}

TEST(RequestRecord, LatencyDerivations) {
  const RequestRecord record = MakeRecord(1, 1.0, 2.0, 12.0, 11);
  EXPECT_DOUBLE_EQ(record.E2eLatency(), 11.0);
  EXPECT_DOUBLE_EQ(record.Ttft(), 1.0);
  EXPECT_DOUBLE_EQ(record.Tpot(), 1.0);  // 10 s over 10 post-first tokens.
}

TEST(RequestRecord, SingleTokenTpotIsZero) {
  EXPECT_DOUBLE_EQ(MakeRecord(1, 0.0, 1.0, 1.0, 1).Tpot(), 0.0);
}

TEST(EngineMetrics, ThroughputExcludesFailed) {
  EngineMetrics metrics;
  metrics.RecordStep(10.0, 100, 2, 2, 0);
  metrics.RecordFinished(MakeRecord(1, 0, 1, 5, 50));
  metrics.RecordFinished(MakeRecord(2, 0, 2, 8, 70));
  metrics.RecordFinished(MakeRecord(3, 0, -1, 3, 0, /*failed=*/true));
  EXPECT_EQ(metrics.CompletedRequests(), 2);
  EXPECT_EQ(metrics.FailedRequests(), 1);
  EXPECT_EQ(metrics.TotalOutputTokens(), 120);
  EXPECT_DOUBLE_EQ(metrics.RequestThroughput(), 0.2);
  EXPECT_DOUBLE_EQ(metrics.TokenThroughput(), 12.0);
}

TEST(EngineMetrics, MeansOverCompleted) {
  EngineMetrics metrics;
  metrics.RecordStep(10.0, 1, 1, 1, 0);
  metrics.RecordFinished(MakeRecord(1, 0, 1, 5, 5));
  metrics.RecordFinished(MakeRecord(2, 2, 4, 10, 9));
  EXPECT_DOUBLE_EQ(metrics.MeanE2eLatency(), (5.0 + 8.0) / 2);
  EXPECT_DOUBLE_EQ(metrics.MeanTtft(), (1.0 + 2.0) / 2);
  EXPECT_DOUBLE_EQ(metrics.MeanTpot(), (1.0 + 0.75) / 2);
}

TEST(EngineMetrics, StepAccumulation) {
  EngineMetrics metrics;
  metrics.RecordStep(1.0, 128, 3, 5, 2);
  metrics.RecordStep(2.0, 64, 4, 4, 1);
  EXPECT_EQ(metrics.total_steps(), 2);
  EXPECT_EQ(metrics.total_scheduled_tokens(), 192);
  EXPECT_DOUBLE_EQ(metrics.last_time(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.MeanDecodeBatch(), 3.5);
  EXPECT_EQ(metrics.decode_batch_series().size(), 2u);
}

TEST(EngineMetrics, EmptyMetricsAreZero) {
  EngineMetrics metrics;
  EXPECT_EQ(metrics.CompletedRequests(), 0);
  EXPECT_DOUBLE_EQ(metrics.RequestThroughput(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.MeanE2eLatency(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.MeanTpot(), 0.0);
}

TEST(EngineMetrics, PerRequestDistributions) {
  EngineMetrics metrics;
  // TTFTs 0.01..0.10 over ten finished requests, one single-token request (no TPOT), one
  // failed request (excluded from every distribution).
  for (int i = 1; i <= 10; ++i) {
    metrics.RecordFinished(MakeRecord(i, 0.0, 0.01 * i, 1.0, 8));
  }
  metrics.RecordFinished(MakeRecord(11, 0.0, 0.05, 1.0, 1));
  RequestRecord failed = MakeRecord(12, 0.0, 9.0, 99.0, 8);
  failed.failed = true;
  metrics.RecordFinished(failed);

  EXPECT_EQ(metrics.TtftDistribution().samples().size(), 11u);
  EXPECT_EQ(metrics.TpotDistribution().samples().size(), 10u);  // output_len > 1 only.
  EXPECT_EQ(metrics.E2eDistribution().samples().size(), 11u);
  EXPECT_GT(metrics.TtftPercentile(99.0), metrics.TtftPercentile(50.0));
  EXPECT_LE(metrics.TtftPercentile(99.0), 0.10);
  EXPECT_GE(metrics.TtftPercentile(0.0), 0.01);
  EXPECT_LE(metrics.TpotPercentile(50.0), metrics.TpotPercentile(99.0));
}

TEST(EngineMetrics, DistributionsEmptyWhenNothingFinished) {
  EngineMetrics metrics;
  EXPECT_TRUE(metrics.TtftDistribution().empty());
  EXPECT_TRUE(metrics.TpotDistribution().empty());
  EXPECT_DOUBLE_EQ(metrics.TtftPercentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics.TpotPercentile(99.0), 0.0);
}

TEST(EngineMetrics, MemoryTimeline) {
  EngineMetrics metrics;
  MemorySample sample;
  sample.time = 3.0;
  sample.used_bytes = 100;
  metrics.RecordMemory(sample);
  ASSERT_EQ(metrics.memory_timeline().size(), 1u);
  EXPECT_EQ(metrics.memory_timeline()[0].used_bytes, 100);
}

}  // namespace
}  // namespace jenga
