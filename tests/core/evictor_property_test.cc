// Equivalence property test for the lazy-deletion-heap Evictor: drives it in lockstep with a
// reference ordered-set model under random operation sequences and asserts the victim order
// is identical. The heap implementation is only allowed to differ in *cost*, never in which
// page PopVictim returns — eviction decisions feed every figure's determinism.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/core/evictor.h"

namespace jenga {
namespace {

// The original std::set formulation: ascending (last_access, -prefix_length, page).
class ReferenceEvictor {
 public:
  using Key = std::tuple<Tick, int64_t, SmallPageId>;

  void Insert(SmallPageId page, Tick last_access, int64_t prefix_length) {
    const Key key{last_access, -prefix_length, page};
    ASSERT_TRUE(keys_.emplace(page, key).second);
    order_.insert(key);
  }

  void Remove(SmallPageId page) {
    const auto it = keys_.find(page);
    if (it == keys_.end()) {
      return;
    }
    order_.erase(it->second);
    keys_.erase(it);
  }

  void UpdateLastAccess(SmallPageId page, Tick last_access) {
    const auto it = keys_.find(page);
    if (it == keys_.end()) {
      return;
    }
    order_.erase(it->second);
    std::get<0>(it->second) = last_access;
    order_.insert(it->second);
  }

  void SetPrefixLength(SmallPageId page, int64_t prefix_length) {
    const auto it = keys_.find(page);
    if (it == keys_.end()) {
      return;
    }
    order_.erase(it->second);
    std::get<1>(it->second) = -prefix_length;
    order_.insert(it->second);
  }

  std::optional<SmallPageId> PopVictim() {
    if (order_.empty()) {
      return std::nullopt;
    }
    const Key key = *order_.begin();
    order_.erase(order_.begin());
    keys_.erase(std::get<2>(key));
    return std::get<2>(key);
  }

  std::optional<Tick> PeekOldestAccess() const {
    if (order_.empty()) {
      return std::nullopt;
    }
    return std::get<0>(*order_.begin());
  }

  bool Contains(SmallPageId page) const { return keys_.contains(page); }
  size_t size() const { return keys_.size(); }

 private:
  std::map<SmallPageId, Key> keys_;
  std::set<Key> order_;
};

class EvictorEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvictorEquivalenceTest, MatchesOrderedSetModel) {
  Rng rng(GetParam());
  Evictor heap;
  ReferenceEvictor model;
  std::set<SmallPageId> members;
  Tick now = 0;

  constexpr int kPages = 96;
  for (int step = 0; step < 20000; ++step) {
    // Ticks advance irregularly so distinct pages frequently share a last_access (the
    // tie-break paths) while others do not.
    now += rng.UniformInt(0, 2);
    const int op = static_cast<int>(rng.UniformInt(0, 99));
    const SmallPageId page = rng.UniformInt(0, kPages - 1);
    if (op < 30) {
      if (!members.contains(page)) {
        const Tick access = now - rng.UniformInt(0, 3);
        const int64_t prefix = rng.UniformInt(0, 8);
        heap.Insert(page, access, prefix);
        model.Insert(page, access, prefix);
        members.insert(page);
      }
    } else if (op < 45) {
      heap.Remove(page);
      model.Remove(page);
      members.erase(page);
    } else if (op < 70) {
      const Tick access = now - rng.UniformInt(0, 3);
      heap.UpdateLastAccess(page, access);
      model.UpdateLastAccess(page, access);
    } else if (op < 85) {
      const int64_t prefix = rng.UniformInt(0, 8);
      heap.SetPrefixLength(page, prefix);
      model.SetPrefixLength(page, prefix);
    } else {
      const auto expected = model.PopVictim();
      const auto actual = heap.PopVictim();
      ASSERT_EQ(actual, expected) << "victim mismatch at step " << step;
      if (expected.has_value()) {
        members.erase(*expected);
      }
    }

    ASSERT_EQ(heap.PeekOldestAccess(), model.PeekOldestAccess());
    ASSERT_EQ(heap.size(), model.size());
    ASSERT_EQ(heap.Contains(page), model.Contains(page));
    // Tombstone compaction keeps the heap O(live keys): never more than the compaction
    // threshold (2x live, floored) plus the entries pushed since the last trigger point.
    ASSERT_LE(heap.heap_entries(), 2 * heap.size() + 65);
  }

  // Drain completely: the full victim sequence must match.
  while (true) {
    const auto expected = model.PopVictim();
    const auto actual = heap.PopVictim();
    ASSERT_EQ(actual, expected);
    if (!expected.has_value()) {
      break;
    }
  }
  ASSERT_EQ(heap.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictorEquivalenceTest,
                         ::testing::Values(0x1u, 0x2u, 0x3u, 0x5u, 0x8u, 0xDu, 0x15u, 0x22u));

}  // namespace
}  // namespace jenga
