#include "src/cluster/fleet_router.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/common/random.h"
#include "src/workload/datasets.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

// --- DecideRoute: the pure policy core ---

std::vector<ReplicaLoadView> IdleLoads(int n) {
  return std::vector<ReplicaLoadView>(static_cast<size_t>(n));
}

TEST(DecideRouteTest, RoundRobinRotatesFromSlot) {
  const auto loads = IdleLoads(3);
  for (int64_t slot = 0; slot < 6; ++slot) {
    const RouteDecision d = DecideRoute(RoutePolicy::kRoundRobin, 8, 0.95, loads, {}, slot);
    EXPECT_EQ(d.replica, static_cast<int>(slot % 3));
    EXPECT_EQ(d.reason, RouteDecision::Reason::kRoundRobin);
  }
}

TEST(DecideRouteTest, AffinityPicksLongestResidentPrefix) {
  const auto loads = IdleLoads(3);
  const std::vector<int64_t> affinity = {2, 5, 3};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kAffinity);
  EXPECT_EQ(d.affinity_blocks, 5);
  EXPECT_FALSE(d.all_saturated);
}

TEST(DecideRouteTest, AffinityTieBreaksToLowestIndex) {
  const auto loads = IdleLoads(3);
  const std::vector<int64_t> affinity = {0, 4, 4};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kAffinity);
}

TEST(DecideRouteTest, NoResidencyFallsBackToLeastLoaded) {
  auto loads = IdleLoads(3);
  loads[0].running = 4;
  loads[1].running = 1;
  loads[2].running = 2;
  const std::vector<int64_t> affinity = {0, 0, 0};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kLeastLoaded);
  EXPECT_EQ(d.affinity_blocks, 0);
}

TEST(DecideRouteTest, SpillsWhenAffineReplicaQueueIsDeep) {
  auto loads = IdleLoads(2);
  loads[0].waiting = 8;  // == spill_queue_depth → saturated.
  const std::vector<int64_t> affinity = {6, 0};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kSpill);
  EXPECT_EQ(d.affinity_blocks, 6);
}

TEST(DecideRouteTest, SpillsWhenAffineReplicaOccupancyIsHigh) {
  auto loads = IdleLoads(2);
  loads[0].occupancy = 0.97;
  const std::vector<int64_t> affinity = {6, 0};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 1);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kSpill);
}

TEST(DecideRouteTest, AllSaturatedStillPlacesAtLeastLoaded) {
  auto loads = IdleLoads(2);
  loads[0].waiting = 10;
  loads[0].running = 3;
  loads[1].waiting = 9;
  loads[1].running = 2;
  const std::vector<int64_t> affinity = {6, 0};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_TRUE(d.all_saturated);
  EXPECT_EQ(d.replica, 1);  // 11 total vs 13.
  EXPECT_EQ(d.reason, RouteDecision::Reason::kSpill);
}

TEST(DecideRouteTest, Names) {
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kPrefixAffinity), "prefix-affinity");
  EXPECT_STREQ(RouteReasonName(RouteDecision::Reason::kAffinity), "affinity");
  EXPECT_STREQ(RouteReasonName(RouteDecision::Reason::kSpill), "spill");
}

// --- FleetRouter integration ---

TEST(FleetRouterTest, RoutingGroupFromSpec) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kPrefixAffinity));
  EXPECT_TRUE(fleet.routing_enabled());
  EXPECT_EQ(fleet.routing_group(), 0);
  EXPECT_EQ(fleet.prefix_index().num_replicas(), 2);

  FleetConfig no_cache = TestFleetConfig(2, RoutePolicy::kPrefixAffinity);
  no_cache.engine.enable_prefix_caching = false;
  FleetRouter cold(no_cache);
  EXPECT_FALSE(cold.routing_enabled());
  EXPECT_TRUE(cold.RoutingChain(ArticlePrompt(0, 64)).empty());
}

TEST(FleetRouterTest, SecondRequestFollowsWarmPrefix) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kPrefixAffinity));

  // Warm some replica with article 7; all replicas idle, so it lands by least-loaded.
  const RouteDecision warm =
      fleet.Submit(MakeRequest(1, ArticlePrompt(7, 64, /*question=*/0), 4, 0.0));
  EXPECT_EQ(warm.reason, RouteDecision::Reason::kLeastLoaded);
  fleet.RunToCompletion();

  // A different question about the same article must follow the resident prefix.
  const RouteDecision follow =
      fleet.Submit(MakeRequest(2, ArticlePrompt(7, 96, /*question=*/1), 4, 0.0));
  EXPECT_EQ(follow.replica, warm.replica);
  EXPECT_EQ(follow.reason, RouteDecision::Reason::kAffinity);
  EXPECT_EQ(follow.affinity_blocks, 64 / 16);
  fleet.RunToCompletion();

  EXPECT_EQ(fleet.counters().submitted, 2);
  EXPECT_EQ(fleet.counters().routed_affinity, 1);
  EXPECT_EQ(fleet.counters().routed_least_loaded, 1);
  EXPECT_EQ(fleet.PlacementOf(2), warm.replica);
  EXPECT_EQ(fleet.PlacementOf(999), -1);
}

TEST(FleetRouterTest, SpilloverWhenAffineReplicaSaturated) {
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kPrefixAffinity);
  config.spill_queue_depth = 1;
  FleetRouter fleet(config);

  const RouteDecision warm = fleet.Submit(MakeRequest(1, ArticlePrompt(3, 64, 0), 4, 0.0));
  fleet.RunToCompletion();

  // Queue a request on the affine replica without stepping: its waiting depth hits the
  // spill threshold, so the next same-article request must spill to the other replica.
  const RouteDecision first = fleet.Submit(MakeRequest(2, ArticlePrompt(3, 96, 1), 4, 10.0));
  EXPECT_EQ(first.replica, warm.replica);
  EXPECT_EQ(first.reason, RouteDecision::Reason::kAffinity);

  const RouteDecision spilled = fleet.Submit(MakeRequest(3, ArticlePrompt(3, 96, 2), 4, 10.0));
  EXPECT_NE(spilled.replica, warm.replica);
  EXPECT_EQ(spilled.reason, RouteDecision::Reason::kSpill);
  EXPECT_GT(spilled.affinity_blocks, 0);
  EXPECT_EQ(fleet.counters().routed_spill, 1);
  fleet.RunToCompletion();
}

TEST(FleetRouterTest, BackpressureWhenEveryReplicaSaturated) {
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kPrefixAffinity);
  config.spill_queue_depth = 1;
  FleetRouter fleet(config);

  // Fill both waiting queues without stepping.
  EXPECT_TRUE(fleet.TrySubmit(MakeRequest(1, ArticlePrompt(0, 64), 4, 0.0)).ok());
  EXPECT_TRUE(fleet.TrySubmit(MakeRequest(2, ArticlePrompt(1, 64), 4, 0.0)).ok());
  EXPECT_TRUE(fleet.IsSaturated(0));
  EXPECT_TRUE(fleet.IsSaturated(1));

  const StatusOr<int> refused = fleet.TrySubmit(MakeRequest(3, ArticlePrompt(2, 64), 4, 0.0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fleet.counters().backpressure_rejections, 1);
  EXPECT_EQ(fleet.counters().submitted, 2);  // The refusal had no side effects.
  EXPECT_EQ(fleet.PlacementOf(3), -1);

  // Submit still places (and flags the pressure), draining restores TrySubmit.
  const RouteDecision forced = fleet.Submit(MakeRequest(3, ArticlePrompt(2, 64), 4, 0.0));
  EXPECT_TRUE(forced.all_saturated);
  EXPECT_EQ(fleet.counters().saturated_submits, 1);
  fleet.RunToCompletion();
  EXPECT_TRUE(fleet.TrySubmit(MakeRequest(4, ArticlePrompt(3, 64), 4, 100.0)).ok());
  fleet.RunToCompletion();
}

TEST(FleetRouterTest, RoundRobinSeedSetsStartSlot) {
  FleetRouter fleet(TestFleetConfig(4, RoutePolicy::kRoundRobin, /*seed=*/6));
  std::vector<int> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i, 32), 2, 0.0)).replica);
  }
  EXPECT_EQ(picks, (std::vector<int>{2, 3, 0, 1, 2, 3}));
  EXPECT_EQ(fleet.counters().routed_round_robin, 6);
  fleet.RunToCompletion();
}

TEST(FleetRouterTest, CancelRoutesToPlacedReplica) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  fleet.Submit(MakeRequest(1, ArticlePrompt(0, 64), 32, 0.0));
  fleet.Submit(MakeRequest(2, ArticlePrompt(1, 64), 32, 0.0));
  EXPECT_TRUE(fleet.CancelRequest(2));
  EXPECT_FALSE(fleet.CancelRequest(99));
  EXPECT_EQ(fleet.counters().cancelled, 1);
  fleet.RunToCompletion();
  EXPECT_EQ(ClusterMetrics::FromRouter(fleet).completed, 1);
}

// Replay contract: identical config + seed + submit sequence ⇒ identical placements,
// counters, and per-replica end state.
TEST(FleetRouterTest, SeededReplayIsDeterministic) {
  auto run = [](uint64_t seed) {
    FleetRouter fleet(TestFleetConfig(4, RoutePolicy::kPrefixAffinity, seed));
    ArxivQaDataset dataset(/*num_articles=*/6, 200, 400, /*seed=*/11);
    Rng rng(17);
    std::vector<Request> trace = GeneratePoisson(dataset, 40, /*rate=*/50.0, rng, 1);
    fleet.RunTimedTrace(std::move(trace));
    std::ostringstream os;
    for (RequestId id = 1; id <= 40; ++id) {
      os << id << ":" << fleet.PlacementOf(id) << " ";
    }
    const FleetCounters& c = fleet.counters();
    os << "| " << c.submitted << " " << c.routed_affinity << " " << c.routed_spill << " "
       << c.routed_least_loaded << " " << c.saturated_submits;
    for (int i = 0; i < fleet.num_replicas(); ++i) {
      os << "\n--- replica " << i << " ---\n";
      fleet.replica(i).DumpStateForDebug(os);
    }
    return os.str();
  };
  const std::string a = run(3);
  const std::string b = run(3);
  EXPECT_EQ(a, b);
}

// --- Failure injection & recovery (DESIGN.md §10) ---

TEST(DecideRouteTest, RoundRobinRotatesOverLiveReplicasOnly) {
  auto loads = IdleLoads(3);
  loads[1].alive = false;
  for (int64_t slot = 0; slot < 6; ++slot) {
    const RouteDecision d = DecideRoute(RoutePolicy::kRoundRobin, 8, 0.95, loads, {}, slot);
    EXPECT_NE(d.replica, 1) << "routed to a dead replica at slot " << slot;
  }
}

TEST(DecideRouteTest, AffinityIgnoresDeadReplicaResidency) {
  auto loads = IdleLoads(3);
  loads[1].alive = false;  // The replica with the best prefix is dead.
  const std::vector<int64_t> affinity = {2, 5, 3};
  const RouteDecision d =
      DecideRoute(RoutePolicy::kPrefixAffinity, 8, 0.95, loads, affinity, 0);
  EXPECT_EQ(d.replica, 2);
  EXPECT_EQ(d.reason, RouteDecision::Reason::kAffinity);
  EXPECT_EQ(d.affinity_blocks, 3);
}

TEST(FleetRouterTest, KillReplicaRevivesWorkOnSurvivor) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  for (int i = 0; i < 6; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i % 2, 64), 8, 0.0));
  }
  for (int i = 0; i < 2; ++i) {
    fleet.StepOnce();  // Let replica 0 start work before it dies.
  }
  EXPECT_TRUE(fleet.ReplicaAlive(0));
  fleet.KillReplica(0);
  EXPECT_FALSE(fleet.ReplicaAlive(0));
  EXPECT_EQ(fleet.supervisor().num_alive(), 1);
  fleet.RunToCompletion();

  const FleetCounters& c = fleet.counters();
  EXPECT_EQ(c.replica_deaths, 1);
  EXPECT_GT(c.death_cancels, 0);
  EXPECT_EQ(c.death_cancels, c.rerouted);
  // Re-routes never double-count as submits.
  EXPECT_EQ(c.submitted, 6);
  // Every request completed, and everything now lives on the survivor.
  const FleetStats stats = ClusterMetrics::FromRouter(fleet);
  EXPECT_EQ(stats.completed, 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(fleet.PlacementOf(i + 1), 1);
  }
}

TEST(FleetRouterTest, NewSubmitsNeverRouteToDeadReplica) {
  FleetRouter fleet(TestFleetConfig(3, RoutePolicy::kPrefixAffinity));
  // Warm replica routing so article 0's prefix is resident somewhere, then kill wherever
  // it landed: affinity must not follow the stale placement.
  const int warm = fleet.Submit(MakeRequest(1, ArticlePrompt(0, 96), 4, 0.0)).replica;
  fleet.RunToCompletion();
  fleet.KillReplica(warm);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(fleet.Submit(MakeRequest(10 + i, ArticlePrompt(0, 96), 4, 0.0)).replica, warm);
  }
  fleet.RunToCompletion();
}

TEST(FleetRouterTest, StalledReplicaFreezesThenResumes) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  for (int i = 0; i < 4; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i % 2, 48), 6, 0.0));
  }
  fleet.StallReplica(0, /*steps=*/16);
  EXPECT_EQ(fleet.counters().replica_stalls, 1);
  // A stall is transient: the fleet still quiesces with everything completed, nothing
  // re-routed, and the stalled replica keeps its placements.
  fleet.RunToCompletion();
  EXPECT_EQ(fleet.counters().rerouted, 0);
  EXPECT_EQ(ClusterMetrics::FromRouter(fleet).completed, 4);
  EXPECT_TRUE(fleet.ReplicaAlive(0));
}

TEST(FleetRouterTest, ArmedFleetPlanKillsViaInjector) {
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kRoundRobin);
  JENGA_CHECK(FaultPlan::Parse("replica_death:at=0", &config.fleet_fault.plan).ok());
  config.fleet_fault.seed = 5;
  FleetRouter fleet(config);
  for (int i = 0; i < 4; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i, 48), 4, 0.0));
  }
  fleet.RunToCompletion();
  // The first consult (replica 0, first step) fired and killed it.
  EXPECT_EQ(fleet.counters().replica_deaths, 1);
  EXPECT_FALSE(fleet.ReplicaAlive(0));
  EXPECT_GE(fleet.FleetFaultFires(), 1);
  EXPECT_EQ(ClusterMetrics::FromRouter(fleet).completed, 4);
}

TEST(FleetRouterTest, DeathFireOnLastReplicaIsSuppressed) {
  FleetConfig config = TestFleetConfig(2, RoutePolicy::kRoundRobin);
  // Every consult wants a death; only one replica may actually die.
  JENGA_CHECK(FaultPlan::Parse("replica_death:p=1", &config.fleet_fault.plan).ok());
  config.fleet_fault.seed = 5;
  FleetRouter fleet(config);
  for (int i = 0; i < 4; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i, 48), 4, 0.0));
  }
  fleet.RunToCompletion();
  const FleetCounters& c = fleet.counters();
  EXPECT_EQ(c.replica_deaths, 1);
  EXPECT_GT(c.death_fires_ignored, 0);
  EXPECT_EQ(fleet.supervisor().num_alive(), 1);
  EXPECT_EQ(ClusterMetrics::FromRouter(fleet).completed, 4);
}

}  // namespace
}  // namespace jenga
