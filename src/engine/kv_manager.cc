#include "src/engine/kv_manager.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <span>

#include "src/common/check.h"
#include "src/common/math_util.h"
#include "src/core/block_hash.h"
#include "src/core/policy_factory.h"
#include "src/offload/swap_manager.h"

namespace jenga {

KvSpec MakeJengaSpec(const ModelConfig& model, int tokens_per_page, bool vision_cache) {
  KvSpecOptions options;
  options.tokens_per_page = tokens_per_page;
  options.include_vision_group = vision_cache;
  return BuildKvSpec(model, options);
}

KvSpec MakeHomogeneousSpec(const ModelConfig& model, int tokens_per_page,
                           int64_t bytes_per_token_override) {
  int64_t bytes_per_token = model.KvBytesPerTokenAllLayers();
  if (bytes_per_token_override > 0) {
    bytes_per_token = bytes_per_token_override;
  }
  JENGA_CHECK_GT(bytes_per_token, 0) << "model has no attention layers";
  KvSpec spec;
  KvGroupSpec group;
  group.name = "paged_all_layers";
  group.kind = GroupKind::kFullAttention;
  group.scope = GroupScope::kAllTokens;
  group.num_layers = 1;  // Collapsed: bytes_per_token already sums every layer.
  group.bytes_per_token_per_layer = bytes_per_token;
  group.tokens_per_page = tokens_per_page;
  group.page_bytes = static_cast<int64_t>(tokens_per_page) * bytes_per_token;
  spec.groups.push_back(std::move(group));
  return spec;
}

int64_t StaticMambaReservationBytes(const ModelConfig& model, int max_num_seqs) {
  return model.MambaStateBytesTotal() * max_num_seqs;
}

namespace {

// Total tokens across a range list.
int64_t RangeTokens(const std::vector<TokenRange>& ranges) {
  int64_t total = 0;
  for (const TokenRange& range : ranges) {
    total += range.end - range.begin;
  }
  return total;
}

int64_t GroupTokensFor(const Request& r, const KvGroupSpec& group, int64_t prefix_tokens) {
  switch (group.scope) {
    case GroupScope::kAllTokens:
    case GroupScope::kPerSequence:
      return prefix_tokens;
    case GroupScope::kTextTokens:
      return r.TextTokensBefore(prefix_tokens);
    case GroupScope::kImageTokens:
      return r.ImageTokensBefore(prefix_tokens);
  }
  JENGA_CHECK(false) << "unhandled scope";
}

bool IsSubsequenceScope(GroupScope scope) {
  return scope == GroupScope::kImageTokens || scope == GroupScope::kTextTokens;
}

// Order-sensitive mix for the swap round-trip fingerprint (splitmix-style).
uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 12) + (h >> 4);
  return h * 0xFF51AFD7ED558CCDull;
}

// Differential audit of the fused hit scan against the materialized-bitmap reference. Off by
// default (the reference pass re-does every allocator lookup); the fuzz/chaos stages enable it.
bool AdmissionScanAuditEnabled() {
  static const bool enabled = std::getenv("JENGA_CHECK_ADMISSION") != nullptr;
  return enabled;
}

}  // namespace

KvManager::KvManager(KvSpec alloc_spec, KvSpec accounting_spec, int64_t pool_bytes,
                     Options options)
    : spec_(std::move(alloc_spec)),
      accounting_spec_(std::move(accounting_spec)),
      options_(options),
      allocator_(spec_, pool_bytes, /*large_page_bytes_override=*/0, options.alloc_shards) {
  JENGA_CHECK_LE(spec_.groups.size(), kMaxGroups);
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    if (options_.jenga) {
      policies_.push_back(MakeLayerPolicy(group, options_.tokens_per_image));
    } else {
      policies_.push_back(std::make_unique<FullPrefixPolicy>());
    }
    if (group.kind == GroupKind::kVisionEmbed) {
      vision_group_ = static_cast<int>(g);
    }
    if (group.scope == GroupScope::kTextTokens) {
      has_text_scope_ = true;
    }
    const LayerPolicy& policy = *policies_.back();
    // Droppable policies cover all residents only when drops actually run (Jenga mode).
    defer_refresh_.push_back(policy.RefreshCoversResidentPages() &&
                             (!policy.CanDropUnneededPages() || options_.jenga));
  }
  for (const KvGroupSpec& group : accounting_spec_.groups) {
    accounting_policies_.push_back(MakeLayerPolicy(group, std::max(options_.tokens_per_image, 1)));
  }
}

KvManager::RequestKv& KvManager::StateOf(const Request& r) {
  const auto it = requests_.find(r.id);
  JENGA_CHECK(it != requests_.end()) << "request " << r.id << " not admitted";
  return it->second;
}

int64_t KvManager::TargetPages(const Request& r, const KvGroupSpec& group,
                               int64_t prefix_tokens) const {
  switch (group.kind) {
    case GroupKind::kMamba:
      return 1;  // The running state; checkpoints are transient snapshots.
    case GroupKind::kVisionEmbed:
      // All of the request's vision embeddings exist from admission (encoder output).
      return CeilDiv(r.image_prefix.back(), group.tokens_per_page);
    default:
      break;
  }
  const int64_t tokens = GroupTokensFor(r, group, prefix_tokens);
  return CeilDiv(tokens, group.tokens_per_page);
}

void KvManager::OnAdmit(Request& r, Tick now) {
  JENGA_CHECK(!requests_.contains(r.id)) << "request " << r.id << " already admitted";
  RequestKv& state = requests_[r.id];
  state.groups.resize(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    state.groups[g].chain = InitBlockChain(GroupSalt(static_cast<int>(g)));
  }
  r.num_computed_tokens = 0;
  r.cached_prefix_tokens = 0;
  state.computed_tokens = 0;

  if (!options_.enable_prefix_caching) {
    return;
  }
  const int bs = options_.tokens_per_page;
  const int64_t prompt_len = r.prompt_len();
  const int64_t num_boundaries = prompt_len / bs;  // Boundary b covers b·bs tokens.
  if (num_boundaries == 0) {
    return;
  }

  // Per-group block-hash chains over the prompt (checkpoint-interval blocks for Mamba,
  // subsequence streams for modality-scoped groups, prompt blocks otherwise). Prompts are
  // immutable, so re-admissions of the same request reuse the memoized chains instead of
  // re-hashing the whole prompt.
  const AdmissionMemo* memo = nullptr;
  AdmissionMemo scratch;
  if (options_.memoize_admission) {
    const auto [it, inserted] = admission_memos_.try_emplace(r.id);
    if (inserted) {
      it->second = BuildAdmissionMemo(r);
    }
    memo = &it->second;
  } else {
    scratch = BuildAdmissionMemo(r);
    memo = &scratch;
  }
  const std::vector<std::vector<BlockHash>>& group_hashes = memo->group_hashes;

  // Second-chance pass: re-materialize host-resident pages on the GPU *before* scanning for
  // hits, so the scan and the reference-taking below see one consistent allocator state
  // (a promotion's allocation may evict GPU pages of any group under pressure).
  if (offload_ != nullptr) {
    PromoteHostHits(r, group_hashes, now);
  }

  int64_t boundary = ResolveHitBoundary(r, group_hashes, /*include_host=*/false);
  // Keep at least one prompt token to compute (an engine cannot "hit" the whole prompt).
  while (boundary > 0 && boundary * bs >= prompt_len) {
    --boundary;
  }
  if (boundary == 0) {
    return;
  }
  const int64_t hit_tokens = boundary * bs;

  // Take references on the covering pages of every group.
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    GroupState& gs = state.groups[g];

    if (group.kind == GroupKind::kMamba) {
      const int64_t k = hit_tokens / kMambaCheckpointInterval;
      JENGA_CHECK_EQ(hit_tokens % kMambaCheckpointInterval, 0);
      if (k > 0) {
        const auto page = alloc.LookupCached(group_hashes[g][static_cast<size_t>(k) - 1]);
        JENGA_CHECK(page.has_value()) << "mamba hit vanished";
        alloc.UpdateLastAccess(*page, now);  // Restore-from-checkpoint touches the state.
        gs.chain = group_hashes[g][static_cast<size_t>(k) - 1];
        gs.chain_tokens = k * kMambaCheckpointInterval;
        gs.checkpoints_done = k;
      }
      continue;
    }

    const int64_t blocks =
        IsSubsequenceScope(group.scope) ? GroupTokensFor(r, group, hit_tokens) / bs : boundary;
    // Only blocks the layer actually depends on are referenced and refreshed (Figure 9b:
    // update_last_access touches window tokens only). Cached out-of-window blocks stay
    // evictable with their old timestamps, so they age out first under pressure.
    const std::vector<TokenRange> needed =
        policies_[g]->NeededTokenRanges(GroupTokensFor(r, group, hit_tokens));
    gs.pages.reserve(static_cast<size_t>(blocks));
    for (int64_t j = 0; j < blocks; ++j) {
      bool block_needed = false;
      for (const TokenRange& range : needed) {
        if (range.begin < (j + 1) * bs && range.end > j * bs) {
          block_needed = true;
          break;
        }
      }
      const auto page = block_needed
                            ? alloc.LookupCached(group_hashes[g][static_cast<size_t>(j)])
                            : std::nullopt;
      if (page.has_value()) {
        alloc.AddRef(*page);
        alloc.UpdateLastAccess(*page, now);
        gs.pages.push_back(*page);
      } else {
        // A hole the policy tolerates (out-of-window block, or an unneeded one we skip).
        gs.pages.push_back(kNoSmallPage);
      }
    }
    // Blocks before the first needed one will never be re-referenced; start the drop cursor
    // past them so DropUnneededPages does not revisit.
    gs.drop_cursor = 0;
    gs.hashed_blocks = blocks;
    if (blocks > 0) {
      gs.chain = group_hashes[g][static_cast<size_t>(blocks) - 1];
      gs.chain_tokens = blocks * bs;
    }
  }

  // Modality streams consumed so far (for future chain extension) — bulk-sliced from the
  // memoized prompt streams by the O(1) image-prefix counts.
  ExtendModalityStreams(r, state, memo, 0, hit_tokens);

  r.num_computed_tokens = hit_tokens;
  r.cached_prefix_tokens = hit_tokens;
  state.computed_tokens = hit_tokens;
  state.needed_bytes = NeededBytesFor(r);
  total_cache_hit_tokens_ += hit_tokens;
}

KvManager::AdmissionMemo KvManager::BuildAdmissionMemo(const Request& r) const {
  AdmissionMemo memo;
  const int bs = options_.tokens_per_page;
  const int64_t prompt_len = r.prompt_len();
  // Prompt modality subsequences, extracted in one pass: they seed the subsequence-scope hash
  // chains below and the stream rebuilds in OnAdmit/OnStepComputed, which then slice by the
  // O(1) image-prefix counts instead of re-scanning token kinds.
  memo.prompt_image_tokens.reserve(static_cast<size_t>(r.ImageTokensBefore(prompt_len)));
  if (has_text_scope_) {
    memo.prompt_text_tokens.reserve(static_cast<size_t>(r.TextTokensBefore(prompt_len)));
  }
  for (int64_t i = 0; i < prompt_len; ++i) {
    if (r.all_kinds[static_cast<size_t>(i)] == TokenKind::kImage) {
      memo.prompt_image_tokens.push_back(r.all_tokens[static_cast<size_t>(i)]);
    } else if (has_text_scope_) {
      memo.prompt_text_tokens.push_back(r.all_tokens[static_cast<size_t>(i)]);
    }
  }
  memo.group_hashes.resize(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    if (group.kind == GroupKind::kMamba) {
      memo.group_hashes[g] = ChainBlockHashes(r.prompt.tokens, kMambaCheckpointInterval,
                                              GroupSalt(static_cast<int>(g)));
      continue;
    }
    if (IsSubsequenceScope(group.scope)) {
      const std::vector<int32_t>& sub = group.scope == GroupScope::kImageTokens
                                            ? memo.prompt_image_tokens
                                            : memo.prompt_text_tokens;
      memo.group_hashes[g] = ChainBlockHashes(sub, bs, GroupSalt(static_cast<int>(g)));
      continue;
    }
    memo.group_hashes[g] = ChainBlockHashes(r.prompt.tokens, bs, GroupSalt(static_cast<int>(g)));
  }
  return memo;
}

int64_t KvManager::ResolveHitBoundary(const Request& r,
                                      const std::vector<std::vector<BlockHash>>& group_hashes,
                                      bool include_host) const {
  const int bs = options_.tokens_per_page;
  const int64_t num_boundaries = r.prompt_len() / bs;
  // One lazy hit resolver per group; a block's cache lookup happens at most once no matter how
  // many boundary candidates probe it.
  std::vector<BlockHitResolver> resolvers;
  resolvers.reserve(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const SmallPageAllocator* alloc = &allocator_.group(static_cast<int>(g));
    const std::vector<BlockHash>* hashes = &group_hashes[g];
    const int gi = static_cast<int>(g);
    resolvers.emplace_back(static_cast<int64_t>(hashes->size()),
                           [this, alloc, hashes, gi, include_host](int64_t j) {
                             const BlockHash h = (*hashes)[static_cast<size_t>(j)];
                             return alloc->LookupCached(h).has_value() ||
                                    (include_host && offload_ != nullptr &&
                                     offload_->LookupHostPage(manager_index_, gi, h) != nullptr);
                           });
  }

  // Top-down scan, mirroring LongestCommonValidPrefix over BuildValidBitmaps: the first
  // boundary where every group's prefix is valid wins. Group evaluation short-circuits on the
  // first invalid group, and lookups are pure, so lazy evaluation cannot change the result.
  int64_t result = 0;
  for (int64_t b = num_boundaries; b > 0; --b) {
    bool all = true;
    for (size_t g = 0; g < spec_.groups.size() && all; ++g) {
      const KvGroupSpec& group = spec_.groups[g];
      const int64_t num_hashes = static_cast<int64_t>(group_hashes[g].size());
      if (group.kind == GroupKind::kMamba) {
        const int64_t tokens = b * bs;
        if (tokens % kMambaCheckpointInterval != 0) {
          all = false;  // Only checkpoint-aligned boundaries can be Mamba hits.
          continue;
        }
        const int64_t k = tokens / kMambaCheckpointInterval;
        all = k <= num_hashes &&
              policies_[g]->PrefixValid(resolvers[g], k, kMambaCheckpointInterval);
        continue;
      }
      if (IsSubsequenceScope(group.scope)) {
        const int64_t sub_count = GroupTokensFor(r, group, b * bs);
        // Conservative: only block-aligned subsequence coverage counts as a hit.
        if (sub_count % bs != 0) {
          all = false;
          continue;
        }
        const int64_t p = sub_count / bs;
        all = p <= num_hashes && policies_[g]->PrefixValid(resolvers[g], p, bs);
        continue;
      }
      // All-token groups: boundaries map 1:1 to group blocks.
      all = policies_[g]->PrefixValid(resolvers[g], b, bs);
    }
    if (all) {
      result = b;
      break;
    }
  }

  if (AdmissionScanAuditEnabled()) {
    const int64_t reference =
        LongestCommonValidPrefix(BuildValidBitmaps(r, group_hashes, include_host));
    JENGA_CHECK_EQ(result, reference) << "fused hit scan diverged from the bitmap reference";
  }
  return result;
}

void KvManager::ExtendModalityStreams(const Request& r, RequestKv& state,
                                      const AdmissionMemo* memo, int64_t from, int64_t to) {
  int64_t i = from;
  if (memo != nullptr) {
    const int64_t prompt_end = std::min<int64_t>(to, r.prompt_len());
    if (i < prompt_end) {
      const auto img = memo->prompt_image_tokens.begin();
      state.image_tokens.insert(state.image_tokens.end(), img + r.ImageTokensBefore(i),
                                img + r.ImageTokensBefore(prompt_end));
      if (has_text_scope_) {
        const auto txt = memo->prompt_text_tokens.begin();
        state.text_tokens.insert(state.text_tokens.end(), txt + r.TextTokensBefore(i),
                                 txt + r.TextTokensBefore(prompt_end));
      }
      i = prompt_end;
    }
  }
  for (; i < to; ++i) {
    if (r.all_kinds[static_cast<size_t>(i)] == TokenKind::kImage) {
      state.image_tokens.push_back(r.all_tokens[static_cast<size_t>(i)]);
    } else if (has_text_scope_) {
      state.text_tokens.push_back(r.all_tokens[static_cast<size_t>(i)]);
    }
  }
}

bool KvManager::AllocateForTokens(Request& r, int64_t n, Tick now) {
  RequestKv& state = StateOf(r);
  const int64_t upto = r.num_computed_tokens + n;
  // Completed per-group bulk allocations, for cross-group rollback (within one group
  // AllocateN rolls itself back before reporting failure). Groups are per layer *type*, so
  // the count is tiny and bounded (checked in the constructor); the inline array removes the
  // heap allocation this function used to pay per call even when nothing needed rolling
  // back (ROADMAP item 5).
  struct FreshGroup {
    int group;
    int64_t need;
  };
  std::array<FreshGroup, kMaxGroups> fresh;
  size_t num_fresh = 0;
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    GroupState& gs = state.groups[g];
    const int64_t target = TargetPages(r, group, upto);
    const int64_t need = target - static_cast<int64_t>(gs.pages.size());
    if (need <= 0) {
      continue;
    }
    if (!allocator_.group(static_cast<int>(g)).AllocateN(r.id, need, now, &gs.pages)) {
      // Roll back everything this call allocated, newest first; the caller will preempt.
      for (size_t f = num_fresh; f > 0; --f) {
        SmallPageAllocator& alloc = allocator_.group(fresh[f - 1].group);
        GroupState& owner = state.groups[static_cast<size_t>(fresh[f - 1].group)];
        for (int64_t k = 0; k < fresh[f - 1].need; ++k) {
          alloc.Release(owner.pages.back(), /*keep_cached=*/false);
          owner.pages.pop_back();
        }
      }
      return false;
    }
    fresh[num_fresh++] = FreshGroup{static_cast<int>(g), need};
  }
  return true;
}

void KvManager::RegisterHashes(Request& r, RequestKv& state, Tick now) {
  const int bs = options_.tokens_per_page;
  const int64_t c = r.num_computed_tokens;
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    if (group.kind == GroupKind::kMamba) {
      SnapshotMambaCheckpoints(r, state, static_cast<int>(g), now);
      continue;
    }
    SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    GroupState& gs = state.groups[g];
    const std::vector<int32_t>& stream = group.scope == GroupScope::kImageTokens
                                             ? state.image_tokens
                                             : (group.scope == GroupScope::kTextTokens
                                                    ? state.text_tokens
                                                    : r.all_tokens);
    const int64_t stream_len = GroupTokensFor(r, group, c);
    const int64_t num_blocks = stream_len / bs;
    for (int64_t j = gs.hashed_blocks; j < num_blocks; ++j) {
      gs.chain = ExtendBlockHash(
          gs.chain, std::span<const int32_t>(stream).subspan(static_cast<size_t>(j) * bs,
                                                             static_cast<size_t>(bs)));
      gs.chain_tokens += bs;
      if (j < static_cast<int64_t>(gs.pages.size()) &&
          gs.pages[static_cast<size_t>(j)] != kNoSmallPage) {
        alloc.SetContentHash(gs.pages[static_cast<size_t>(j)], gs.chain);
      }
    }
    gs.hashed_blocks = num_blocks;
  }
}

void KvManager::SnapshotMambaCheckpoints(Request& r, RequestKv& state, int g, Tick now) {
  // §5.3: cache the Mamba state every kMambaCheckpointInterval tokens. The snapshot page is
  // allocated, hashed, prioritized by its depth, and immediately released to evictable — the
  // running request keeps only its live state page. Snapshots are best-effort: under memory
  // pressure they are skipped rather than failing the step.
  GroupState& gs = state.groups[static_cast<size_t>(g)];
  SmallPageAllocator& alloc = allocator_.group(g);
  const int64_t target = r.num_computed_tokens / kMambaCheckpointInterval;
  for (int64_t k = gs.checkpoints_done + 1; k <= target; ++k) {
    gs.chain = ExtendBlockHash(
        gs.chain,
        std::span<const int32_t>(r.all_tokens)
            .subspan(static_cast<size_t>((k - 1) * kMambaCheckpointInterval),
                     static_cast<size_t>(kMambaCheckpointInterval)));
    gs.chain_tokens = k * kMambaCheckpointInterval;
    gs.checkpoints_done = k;
    if (alloc.LookupCached(gs.chain).has_value()) {
      continue;  // Snapshot already cached (e.g. shared prefix).
    }
    const auto page = alloc.Allocate(r.id, now);
    if (!page.has_value()) {
      continue;
    }
    alloc.SetContentHash(*page, gs.chain);
    alloc.SetPrefixLength(*page, k * kMambaCheckpointInterval);
    alloc.UpdateLastAccess(*page, now);
    alloc.Release(*page, /*keep_cached=*/true);
  }
}

void KvManager::DropUnneededPages(RequestKv& state, int g, Tick now) {
  GroupState& gs = state.groups[static_cast<size_t>(g)];
  if (gs.pages.empty()) {
    return;
  }
  SmallPageAllocator& alloc = allocator_.group(g);
  const KvGroupSpec& group = spec_.groups[static_cast<size_t>(g)];
  const int bs = group.tokens_per_page;
  const int64_t tokens = gs.drop_tokens_hint;
  const std::vector<TokenRange> ranges = policies_[static_cast<size_t>(g)]->NeededTokenRanges(tokens);
  if (ranges.empty()) {
    return;
  }
  const int64_t limit_block =
      std::min<int64_t>(ranges.back().begin / bs, static_cast<int64_t>(gs.pages.size()));
  while (gs.drop_cursor < limit_block) {
    const int64_t j = gs.drop_cursor;
    bool keep = false;
    for (size_t i = 0; i + 1 < ranges.size(); ++i) {
      if (ranges[i].begin < (j + 1) * bs && ranges[i].end > j * bs) {
        keep = true;
        break;
      }
    }
    if (!keep && gs.pages[static_cast<size_t>(j)] != kNoSmallPage) {
      const SmallPageId page = gs.pages[static_cast<size_t>(j)];
      if (defer_refresh_[static_cast<size_t>(g)] && gs.last_touch != 0) {
        // Deferred refresh: the page was inside the window through the previous step.
        alloc.UpdateLastAccess(page, gs.last_touch);
      }
      alloc.SetPrefixLength(page, (j + 1) * bs);
      alloc.Release(page, options_.enable_prefix_caching);
      gs.pages[static_cast<size_t>(j)] = kNoSmallPage;
    }
    gs.drop_cursor += 1;
  }
  (void)now;
}

void KvManager::FreeConsumedVisionPages(const Request& r, RequestKv& state, Tick now) {
  if (vision_group_ < 0) {
    return;
  }
  GroupState& gs = state.groups[static_cast<size_t>(vision_group_)];
  SmallPageAllocator& alloc = allocator_.group(vision_group_);
  const int bs = spec_.groups[static_cast<size_t>(vision_group_)].tokens_per_page;
  const int64_t consumed = r.ImageTokensBefore(r.num_computed_tokens);
  const int64_t total = r.image_prefix.back();
  while (gs.drop_cursor < static_cast<int64_t>(gs.pages.size())) {
    const int64_t j = gs.drop_cursor;
    const bool fully_consumed = (j + 1) * bs <= consumed || consumed == total;
    if (!fully_consumed) {
      break;
    }
    if (gs.pages[static_cast<size_t>(j)] != kNoSmallPage) {
      alloc.UpdateLastAccess(gs.pages[static_cast<size_t>(j)], now);
      alloc.Release(gs.pages[static_cast<size_t>(j)], options_.enable_prefix_caching);
      gs.pages[static_cast<size_t>(j)] = kNoSmallPage;
    }
    gs.drop_cursor += 1;
  }
}

RequestPages KvManager::ViewOf(const Request& r, const RequestKv& state, int g) const {
  const KvGroupSpec& group = spec_.groups[static_cast<size_t>(g)];
  RequestPages view;
  view.request = r.id;
  view.pages = state.groups[static_cast<size_t>(g)].pages;
  view.num_tokens = GroupTokensFor(r, group, r.num_computed_tokens);
  view.tokens_per_page =
      group.kind == GroupKind::kMamba ? kMambaCheckpointInterval : group.tokens_per_page;
  return view;
}

void KvManager::OnStepComputed(Request& r, Tick now) {
  RequestKv& state = StateOf(r);
  if (options_.enable_prefix_caching) {
    // Extend the modality streams with newly computed tokens (bulk copy over the prompt
    // portion when the admission memo is available — the swap-restore replay covers thousands
    // of tokens in one call).
    const auto memo_it = admission_memos_.find(r.id);
    ExtendModalityStreams(r, state,
                          memo_it == admission_memos_.end() ? nullptr : &memo_it->second,
                          state.computed_tokens, r.num_computed_tokens);
    RegisterHashes(r, state, now);
  }
  if (options_.jenga) {
    for (size_t g = 0; g < spec_.groups.size(); ++g) {
      if (static_cast<int>(g) == vision_group_) {
        continue;  // Vision pages are freed by consumption, not by windowing.
      }
      if (policies_[g]->CanDropUnneededPages()) {
        state.groups[g].drop_tokens_hint =
            GroupTokensFor(r, spec_.groups[g], r.num_computed_tokens);
        DropUnneededPages(state, static_cast<int>(g), now);
      }
    }
    FreeConsumedVisionPages(r, state, now);
  }
  // Balanced eviction (§5.1): refresh last-access of the pages this step actually touched.
  // Deferred-refresh groups record one tick instead of writing O(pages) metadata — a used
  // page's last-access is unobservable until it can become evictable, so the tick is applied
  // at release/drop/consume time (ApplyDeferredTouch), yielding the same final values.
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    if (defer_refresh_[g]) {
      state.groups[g].last_touch = now;
    } else {
      policies_[g]->UpdateLastAccess(ViewOf(r, state, static_cast<int>(g)), now,
                                     allocator_.group(static_cast<int>(g)));
    }
  }
  state.computed_tokens = r.num_computed_tokens;
  state.needed_bytes = NeededBytesFor(r);
}

void KvManager::ApplyDeferredTouch(const Request& r, RequestKv& state, int g) {
  GroupState& gs = state.groups[static_cast<size_t>(g)];
  if (!defer_refresh_[static_cast<size_t>(g)] || gs.last_touch == 0 || gs.pages.empty()) {
    return;
  }
  const KvGroupSpec& group = spec_.groups[static_cast<size_t>(g)];
  // Only blocks the eager refresh would have marked: blocks of computed tokens. The vision
  // group allocates ahead for unconsumed images — those pages keep their claim-time tick.
  const int64_t tokens = GroupTokensFor(r, group, state.computed_tokens);
  const int64_t marked = std::min<int64_t>(CeilDiv(tokens, group.tokens_per_page),
                                           static_cast<int64_t>(gs.pages.size()));
  SmallPageAllocator& alloc = allocator_.group(g);
  for (int64_t j = 0; j < marked; ++j) {
    if (gs.pages[static_cast<size_t>(j)] != kNoSmallPage) {
      alloc.UpdateLastAccess(gs.pages[static_cast<size_t>(j)], gs.last_touch);
    }
  }
}

void KvManager::Release(Request& r, Tick now, bool finished) {
  RequestKv& state = StateOf(r);
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    ApplyDeferredTouch(r, state, static_cast<int>(g));
    if (options_.enable_prefix_caching) {
      // Aligned eviction (§5.1): assign consistent per-token priorities across groups before
      // the pages become evictable.
      policies_[g]->SetPrefixLength(ViewOf(r, state, static_cast<int>(g)), alloc);
    }
    for (const SmallPageId page : state.groups[g].pages) {
      if (page != kNoSmallPage) {
        alloc.Release(page, options_.enable_prefix_caching);
      }
    }
  }
  requests_.erase(r.id);
  if (finished) {
    admission_memos_.erase(r.id);
    allocator_.ForgetRequest(r.id);
  }
  (void)now;
}

bool KvManager::CanAllocate(const Request& r, int64_t tokens) const {
  // Large-page-granular admission check: a group can consume its own empty small pages, but
  // everything beyond that must come from free (or fully-evictable) large pages. Counting
  // other groups' stranded empties would over-admit and cause preemption storms.
  const auto it = requests_.find(r.id);
  const int64_t upto = r.num_computed_tokens + tokens;
  int64_t larges_needed = 0;
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const int64_t have =
        it == requests_.end() ? 0 : static_cast<int64_t>(it->second.groups[g].pages.size());
    const int64_t target = TargetPages(r, spec_.groups[g], upto);
    const int64_t own_empties = allocator_.group(static_cast<int>(g)).GetStats().empty_pages;
    const int64_t new_pages = std::max<int64_t>(0, target - have - own_empties);
    larges_needed +=
        CeilDiv(new_pages, allocator_.group(static_cast<int>(g)).pages_per_large());
  }
  const int64_t evictable_larges =
      allocator_.GetBreakdown().evictable_bytes / allocator_.lcm().large_page_bytes();
  const int64_t available = allocator_.lcm().num_free() + evictable_larges;
  // Watermark: keep ~2% of the pool free as decode-growth headroom (vLLM-style), so steady
  // decode progress does not degenerate into preemption storms.
  const int64_t watermark = std::max<int64_t>(1, allocator_.lcm().num_pages() / 50);
  return larges_needed + watermark <= available;
}

void KvManager::AttachOffload(SwapManager* offload, int manager_index) {
  JENGA_CHECK(offload != nullptr);
  JENGA_CHECK(offload_ == nullptr) << "offload tier already attached";
  offload_ = offload;
  manager_index_ = manager_index;
  std::vector<char> eligible;
  std::vector<int64_t> page_bytes;
  eligible.reserve(spec_.groups.size());
  page_bytes.reserve(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    eligible.push_back(policies_[g]->SwapEligible() ? 1 : 0);
    page_bytes.push_back(spec_.groups[g].page_bytes);
  }
  allocator_.SetEvictionSink(
      offload_->RegisterManager(manager_index, std::move(eligible), std::move(page_bytes)));
}

uint64_t KvManager::StateFingerprint(const RequestKv& state) const {
  uint64_t h = 0x243F6A8885A308D3ull;
  for (size_t g = 0; g < state.groups.size(); ++g) {
    const GroupState& gs = state.groups[g];
    h = MixFingerprint(h, static_cast<uint64_t>(g));
    h = MixFingerprint(h, gs.chain);
    h = MixFingerprint(h, static_cast<uint64_t>(gs.chain_tokens));
    h = MixFingerprint(h, static_cast<uint64_t>(gs.pages.size()));
  }
  return h;
}

KvSwapFootprint KvManager::GetSwapFootprint(const Request& r) const {
  const auto it = requests_.find(r.id);
  JENGA_CHECK(it != requests_.end()) << "request " << r.id << " not admitted";
  const RequestKv& state = it->second;
  KvSwapFootprint fp;
  fp.tokens = r.num_computed_tokens;
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    int64_t resident = 0;
    for (const SmallPageId page : state.groups[g].pages) {
      if (page != kNoSmallPage) {
        resident += group.page_bytes;
      }
    }
    fp.resident_bytes += resident;
    if (policies_[g]->SwapEligible()) {
      fp.swappable_bytes += resident;
    } else {
      // Recompute-cheap groups are dropped on swap-out; the swap alternative still pays for
      // rebuilding what the policy needs at this progress point.
      const int64_t tokens = GroupTokensFor(r, group, r.num_computed_tokens);
      fp.drop_recompute_bytes +=
          RangeTokens(policies_[g]->NeededTokenRanges(tokens)) * group.BytesPerToken();
    }
  }
  fp.fingerprint = StateFingerprint(state);
  return fp;
}

void KvManager::TrimToComputed(const Request& r) {
  RequestKv& state = StateOf(r);
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    GroupState& gs = state.groups[g];
    const int64_t target = TargetPages(r, spec_.groups[g], r.num_computed_tokens);
    SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    while (static_cast<int64_t>(gs.pages.size()) > target) {
      // Uncomputed pages never had a content hash registered; nothing to keep cached.
      if (gs.pages.back() != kNoSmallPage) {
        alloc.Release(gs.pages.back(), /*keep_cached=*/false);
      }
      gs.pages.pop_back();
    }
  }
}

bool KvManager::RestoreFromSwap(Request& r, int64_t tokens, uint64_t expected_fingerprint,
                                Tick now) {
  JENGA_CHECK(!requests_.contains(r.id)) << "request " << r.id << " already admitted";
  JENGA_CHECK_GT(tokens, 0);
  JENGA_CHECK_GE(static_cast<int64_t>(r.all_tokens.size()), tokens);
  RequestKv& state = requests_[r.id];
  state.groups.resize(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    state.groups[g].chain = InitBlockChain(GroupSalt(static_cast<int>(g)));
  }
  r.num_computed_tokens = 0;
  r.cached_prefix_tokens = 0;
  state.computed_tokens = 0;

  // Completed bulk runs as (group, first block-table index, count) — needed pages come in
  // contiguous runs between the droppable holes, so each run is one AllocateN call.
  std::vector<std::tuple<int, size_t, int64_t>> fresh_runs;
  bool failed = false;
  for (size_t g = 0; g < spec_.groups.size() && !failed; ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    GroupState& gs = state.groups[g];
    const int64_t target = TargetPages(r, group, tokens);
    // Droppable groups (sliding window, pyramid) restore only the blocks the policy still
    // needs at `tokens`; everything else stays a hole, exactly as DropUnneededPages left it.
    const bool droppable = options_.jenga && policies_[g]->CanDropUnneededPages();
    std::vector<TokenRange> needed;
    if (droppable) {
      needed = policies_[g]->NeededTokenRanges(GroupTokensFor(r, group, tokens));
    }
    const int bs = group.tokens_per_page;
    const auto want = [&](int64_t j) {
      if (!droppable) {
        return true;
      }
      for (const TokenRange& range : needed) {
        if (range.begin < (j + 1) * bs && range.end > j * bs) {
          return true;
        }
      }
      return false;
    };
    gs.pages.reserve(static_cast<size_t>(target));
    int64_t j = 0;
    while (j < target) {
      if (!want(j)) {
        gs.pages.push_back(kNoSmallPage);
        ++j;
        continue;
      }
      int64_t run_end = j + 1;
      while (run_end < target && want(run_end)) {
        ++run_end;
      }
      const size_t start = gs.pages.size();
      if (!alloc.AllocateN(r.id, run_end - j, now, &gs.pages)) {
        failed = true;
        break;
      }
      fresh_runs.emplace_back(static_cast<int>(g), start, run_end - j);
      j = run_end;
    }
  }
  if (failed) {
    // Newest-first rollback across runs (AllocateN already rolled back the failing run).
    for (auto it = fresh_runs.rbegin(); it != fresh_runs.rend(); ++it) {
      const auto [g, start, count] = *it;
      GroupState& gs = state.groups[static_cast<size_t>(g)];
      for (int64_t k = count - 1; k >= 0; --k) {
        allocator_.group(g).Release(gs.pages[start + static_cast<size_t>(k)],
                                    /*keep_cached=*/false);
      }
    }
    requests_.erase(r.id);
    return false;
  }
  // Replay the bookkeeping a normal run reaching `tokens` computed tokens would have done:
  // stream extension, hash registration, Mamba checkpoints, drop cursors, last-access.
  r.num_computed_tokens = tokens;
  OnStepComputed(r, now);
  JENGA_CHECK_EQ(StateFingerprint(state), expected_fingerprint)
      << "swap round trip diverged for request " << r.id;
  return true;
}

void KvManager::OnRequestRetired(RequestId id) {
  admission_memos_.erase(id);
  allocator_.ForgetRequest(id);
}

std::vector<std::vector<bool>> KvManager::BuildValidBitmaps(
    const Request& r, const std::vector<std::vector<BlockHash>>& group_hashes,
    bool include_host) const {
  const int bs = options_.tokens_per_page;
  const int64_t num_boundaries = r.prompt_len() / bs;
  std::vector<std::vector<bool>> valid_global(spec_.groups.size());
  for (size_t g = 0; g < spec_.groups.size(); ++g) {
    const KvGroupSpec& group = spec_.groups[g];
    const SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
    std::vector<bool>& valid = valid_global[g];
    valid.assign(static_cast<size_t>(num_boundaries) + 1, false);
    valid[0] = true;

    std::vector<bool> is_hit(group_hashes[g].size());
    for (size_t j = 0; j < is_hit.size(); ++j) {
      is_hit[j] =
          alloc.LookupCached(group_hashes[g][j]).has_value() ||
          (include_host && offload_ != nullptr &&
           offload_->LookupHostPage(manager_index_, static_cast<int>(g), group_hashes[g][j]) !=
               nullptr);
    }

    if (group.kind == GroupKind::kMamba) {
      const std::vector<bool> gv =
          policies_[g]->GetPossiblePrefix(is_hit, kMambaCheckpointInterval);
      for (int64_t b = 1; b <= num_boundaries; ++b) {
        const int64_t tokens = b * bs;
        if (tokens % kMambaCheckpointInterval != 0) {
          continue;
        }
        const size_t k = static_cast<size_t>(tokens / kMambaCheckpointInterval);
        if (k < gv.size()) {
          valid[static_cast<size_t>(b)] = gv[k];
        }
      }
      continue;
    }

    if (IsSubsequenceScope(group.scope)) {
      const std::vector<bool> gv = policies_[g]->GetPossiblePrefix(is_hit, bs);
      for (int64_t b = 1; b <= num_boundaries; ++b) {
        const int64_t sub_count = GroupTokensFor(r, group, b * bs);
        // Conservative: only block-aligned subsequence coverage counts as a hit.
        if (sub_count % bs != 0) {
          continue;
        }
        const size_t blocks = static_cast<size_t>(sub_count / bs);
        if (blocks < gv.size()) {
          valid[static_cast<size_t>(b)] = gv[blocks];
        }
      }
      continue;
    }

    // All-token groups: boundaries map 1:1 to group blocks.
    valid = policies_[g]->GetPossiblePrefix(is_hit, bs);
  }
  return valid_global;
}

void KvManager::PromoteHostHits(const Request& r,
                                const std::vector<std::vector<BlockHash>>& group_hashes,
                                Tick now) {
  const int bs = options_.tokens_per_page;
  const int64_t prompt_len = r.prompt_len();
  // The promotion target is what the hit scan *could* find if every host-resident block were
  // on the GPU: the longest common valid prefix over GPU ∪ host residency. Promotion then
  // fills exactly the gap between that target and current GPU residency — blocks a policy
  // never reads at the target length (out-of-window tails, pyramid middles) are not worth
  // PCIe time, and each one would evict a genuinely useful page.
  int64_t boundary = ResolveHitBoundary(r, group_hashes, /*include_host=*/true);
  while (boundary > 0 && boundary * bs >= prompt_len) {
    --boundary;
  }
  if (boundary == 0) {
    return;
  }
  const int64_t hit_tokens = boundary * bs;

  // Pass 0 refreshes the last-access of every GPU-resident needed block; pass 1 promotes the
  // host-resident rest. Ordering matters: a promotion's allocation evicts under pressure, and
  // it must take other requests' stale pages, not the prefix this pass is assembling (the
  // reference pass in OnAdmit has not pinned it yet).
  for (int pass = 0; pass < 2; ++pass) {
    const bool promote = pass == 1;
    for (size_t g = 0; g < spec_.groups.size(); ++g) {
      const KvGroupSpec& group = spec_.groups[g];
      SmallPageAllocator& alloc = allocator_.group(static_cast<int>(g));
      const std::vector<BlockHash>& hashes = group_hashes[g];
      if (group.kind == GroupKind::kMamba) {
        // Only the deepest checkpoint at or before the target is restored from (the reference
        // pass reads checkpoint k−1 alone).
        const int64_t k = hit_tokens / kMambaCheckpointInterval;
        if (k <= 0 || static_cast<size_t>(k) > hashes.size()) {
          continue;
        }
        const BlockHash h = hashes[static_cast<size_t>(k) - 1];
        if (const auto page = alloc.LookupCached(h)) {
          if (!promote) {
            alloc.UpdateLastAccess(*page, now);
          }
        } else if (promote) {
          (void)TryPromoteHostBlock(static_cast<int>(g), h, k * kMambaCheckpointInterval, r.id,
                                    now);
        }
        continue;
      }
      const int64_t group_tokens = GroupTokensFor(r, group, hit_tokens);
      const int64_t blocks =
          std::min(static_cast<int64_t>(hashes.size()), group_tokens / bs);
      const std::vector<TokenRange> needed = policies_[g]->NeededTokenRanges(group_tokens);
      for (int64_t j = 0; j < blocks; ++j) {
        bool block_needed = false;
        for (const TokenRange& range : needed) {
          if (range.begin < (j + 1) * bs && range.end > j * bs) {
            block_needed = true;
            break;
          }
        }
        if (!block_needed) {
          continue;
        }
        const BlockHash h = hashes[static_cast<size_t>(j)];
        if (const auto page = alloc.LookupCached(h)) {
          if (!promote) {
            alloc.UpdateLastAccess(*page, now);
          }
        } else if (promote) {
          (void)TryPromoteHostBlock(static_cast<int>(g), h, (j + 1) * bs, r.id, now);
        }
      }
    }
  }
}

bool KvManager::TryPromoteHostBlock(int g, BlockHash hash, int64_t prefix_length, RequestId rid,
                                    Tick now) {
  if (offload_->LookupHostPage(manager_index_, g, hash) == nullptr) {
    return false;
  }
  SmallPageAllocator& alloc = allocator_.group(g);
  const auto page = alloc.Allocate(rid, now);
  if (!page.has_value()) {
    return false;
  }
  // The allocation's own eviction cascade may have pushed this very page out of the host
  // pool (new victims displacing LRU entries); re-check before claiming its content.
  const HostCachePage* host = offload_->LookupHostPage(manager_index_, g, hash);
  if (host == nullptr) {
    alloc.Release(*page, /*keep_cached=*/false);
    return false;
  }
  const int64_t host_bytes = host->bytes;
  alloc.SetContentHash(*page, hash);
  alloc.SetPrefixLength(*page, prefix_length);
  alloc.UpdateLastAccess(*page, now);
  alloc.Release(*page, /*keep_cached=*/true);
  offload_->OnHostPagePromoted(manager_index_, g, hash, host_bytes);
  return true;
}

int64_t KvManager::NeededBytesFor(const Request& r) const {
  int64_t needed = 0;
  const int64_t c = r.num_computed_tokens;
  for (size_t g = 0; g < accounting_spec_.groups.size(); ++g) {
    const KvGroupSpec& group = accounting_spec_.groups[g];
    switch (group.kind) {
      case GroupKind::kMamba:
        needed += group.page_bytes;
        break;
      case GroupKind::kVisionEmbed: {
        if (vision_group_ >= 0) {
          const int64_t unconsumed = r.image_prefix.back() - r.ImageTokensBefore(c);
          needed += unconsumed * group.bytes_per_token_per_layer;
        }
        break;
      }
      default: {
        const int64_t tokens = GroupTokensFor(r, group, c);
        needed +=
            RangeTokens(accounting_policies_[g]->NeededTokenRanges(tokens)) * group.BytesPerToken();
        break;
      }
    }
  }
  return needed;
}

KvManager::MemoryStats KvManager::GetMemoryStats() const {
  MemoryStats stats;
  const JengaAllocator::MemoryBreakdown b = allocator_.GetBreakdown();
  stats.pool_bytes = b.pool_bytes;
  stats.used_bytes = b.used_bytes;
  stats.cached_bytes = b.evictable_bytes;
  stats.internal_frag_bytes = b.empty_bytes;
  stats.unallocated_bytes = b.unallocated_bytes;
  int64_t needed = 0;
  for (const auto& [id, state] : requests_) {
    needed += state.needed_bytes;
  }
  stats.needed_bytes = needed;
  stats.wasted_bytes = std::max<int64_t>(0, stats.used_bytes - needed) + b.empty_bytes;
  return stats;
}

void KvManager::CheckConsistency() const { allocator_.CheckConsistency(); }

}  // namespace jenga
