#include "src/workload/datasets.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace jenga {
namespace {

TEST(MmluPro, LengthsWithinDatasetBounds) {
  MmluProDataset dataset;
  Rng rng(1);
  Summary lengths;
  for (int i = 0; i < 500; ++i) {
    const WorkloadItem item = dataset.Sample(rng);
    lengths.Add(static_cast<double>(item.prompt.size()));
    EXPECT_LE(item.prompt.size(), 3076);  // §7.1: MMLU-pro max length.
    EXPECT_GE(item.prompt.size(), 64);
    EXPECT_TRUE(item.prompt.kinds.empty());
    EXPECT_GT(item.output_len, 0);
  }
  EXPECT_NEAR(lengths.Mean(), 1200, 120);
}

TEST(MmmuPro, MatchesPaperTokenStatistics) {
  // §3.2: 6193 image tokens and 43 text tokens per request on average.
  MmmuProDataset dataset(/*tokens_per_image=*/1601);
  Rng rng(2);
  Summary image_tokens;
  Summary text_tokens;
  for (int i = 0; i < 400; ++i) {
    const WorkloadItem item = dataset.Sample(rng);
    const int64_t images = item.prompt.CountImageTokens();
    image_tokens.Add(static_cast<double>(images));
    text_tokens.Add(static_cast<double>(item.prompt.size() - images));
    EXPECT_EQ(images % 1601, 0);
  }
  EXPECT_NEAR(image_tokens.Mean(), 6193, 700);
  EXPECT_NEAR(text_tokens.Mean(), 43, 10);
}

TEST(ArxivQa, SharesArticlePrefixes) {
  ArxivQaDataset dataset(/*num_articles=*/3, 1000, 2000, /*seed=*/7);
  Rng rng(3);
  const WorkloadItem a = dataset.SampleForArticle(0, rng);
  const WorkloadItem b = dataset.SampleForArticle(0, rng);
  const WorkloadItem c = dataset.SampleForArticle(1, rng);
  const int64_t article_len = dataset.article_len(0);
  ASSERT_GE(a.prompt.size(), article_len);
  ASSERT_GE(b.prompt.size(), article_len);
  // Same article → identical prefix; different questions after it.
  for (int64_t i = 0; i < article_len; ++i) {
    ASSERT_EQ(a.prompt.tokens[static_cast<size_t>(i)], b.prompt.tokens[static_cast<size_t>(i)]);
  }
  EXPECT_NE(a.prompt.tokens, b.prompt.tokens);
  // Different articles diverge immediately (random content).
  EXPECT_NE(c.prompt.tokens[0], a.prompt.tokens[0]);
}

TEST(ArxivQa, DeterministicArticlesAcrossInstances) {
  ArxivQaDataset a(2, 500, 600, 42);
  ArxivQaDataset b(2, 500, 600, 42);
  EXPECT_EQ(a.article_len(0), b.article_len(0));
  Rng ra(1);
  Rng rb(1);
  EXPECT_EQ(a.SampleForArticle(0, ra).prompt.tokens, b.SampleForArticle(0, rb).prompt.tokens);
}

TEST(LongDoc, MatchesFig15Workload) {
  LongDocDataset dataset;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const WorkloadItem item = dataset.Sample(rng);
    EXPECT_GE(item.prompt.size(), 55000);
    EXPECT_LE(item.prompt.size(), 110000);
    EXPECT_GE(item.output_len, 50);
    EXPECT_LE(item.output_len, 100);
  }
}

TEST(ShareGpt, MeanNearPaperAverage) {
  ShareGptDataset dataset;
  Rng rng(5);
  Summary lengths;
  for (int i = 0; i < 3000; ++i) {
    lengths.Add(static_cast<double>(dataset.Sample(rng).prompt.size()));
  }
  EXPECT_NEAR(lengths.Mean(), 1085, 250);  // §4.4 quotes 1085.04.
}

TEST(GenerateBatch, AssignsIdsAndZeroArrival) {
  MmluProDataset dataset;
  Rng rng(6);
  const std::vector<Request> requests = GenerateBatch(dataset, 5, rng, /*first_id=*/10);
  ASSERT_EQ(requests.size(), 5u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, 10 + static_cast<RequestId>(i));
    EXPECT_EQ(requests[i].arrival_time, 0.0);
  }
}

TEST(GeneratePoisson, ArrivalsIncreaseAtRoughlyTheRate) {
  MmluProDataset dataset;
  Rng rng(7);
  const std::vector<Request> requests = GeneratePoisson(dataset, 400, /*rate=*/2.0, rng);
  double prev = 0.0;
  for (const Request& r : requests) {
    EXPECT_GE(r.arrival_time, prev);
    prev = r.arrival_time;
  }
  EXPECT_NEAR(requests.back().arrival_time, 200.0, 40.0);
}

TEST(Traces, StaticKeepsMeanDynamicRamps) {
  Rng rng1(8);
  Rng rng2(9);
  const std::vector<Request> s = StaticLongTrace(60, 0.1, rng1);
  const std::vector<Request> d = DynamicLongTrace(60, 0.1, rng2);
  Summary s_first;
  Summary s_last;
  Summary d_first;
  Summary d_last;
  for (int i = 0; i < 20; ++i) {
    s_first.Add(static_cast<double>(s[static_cast<size_t>(i)].prompt_len()));
    s_last.Add(static_cast<double>(s[static_cast<size_t>(40 + i)].prompt_len()));
    d_first.Add(static_cast<double>(d[static_cast<size_t>(i)].prompt_len()));
    d_last.Add(static_cast<double>(d[static_cast<size_t>(40 + i)].prompt_len()));
  }
  EXPECT_NEAR(s_first.Mean(), s_last.Mean(), 20000);
  EXPECT_GT(d_last.Mean(), d_first.Mean() * 2.0);  // The ramp.
}

TEST(RequestPrepare, ImagePrefixCounts) {
  Prompt prompt;
  prompt.tokens = {1, 2, 3, 4};
  prompt.kinds = {TokenKind::kText, TokenKind::kImage, TokenKind::kImage, TokenKind::kText};
  Request r = MakeRequest(1, prompt, 2, 0.0);
  EXPECT_EQ(r.ImageTokensBefore(0), 0);
  EXPECT_EQ(r.ImageTokensBefore(2), 1);
  EXPECT_EQ(r.ImageTokensBefore(4), 2);
  r.AppendGenerated(99);
  EXPECT_EQ(r.ImageTokensBefore(5), 2);
  EXPECT_EQ(r.total_len(), 5);
}

}  // namespace
}  // namespace jenga
