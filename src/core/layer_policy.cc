#include "src/core/layer_policy.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace jenga {

namespace {

// Marks blocks intersecting [range.begin, range.end) in `touched`.
void MarkBlocks(const TokenRange& range, int tokens_per_page, std::vector<bool>& touched) {
  if (range.empty()) {
    return;
  }
  const int64_t first = range.begin / tokens_per_page;
  const int64_t last = CeilDiv(range.end, tokens_per_page);  // exclusive
  for (int64_t b = first; b < last && b < static_cast<int64_t>(touched.size()); ++b) {
    touched[static_cast<size_t>(b)] = true;
  }
}

// Stable 64-bit mix for the image-randomization hash.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

bool BlockHitResolver::IsHit(int64_t block) {
  JENGA_CHECK_GE(block, 0);
  JENGA_CHECK_LT(block, num_blocks());
  int8_t& s = state_[static_cast<size_t>(block)];
  if (s == kUnknown) {
    s = probe_(block) ? 1 : 0;
  }
  return s == 1;
}

bool BlockHitResolver::AnyMiss(int64_t lo, int64_t hi) {
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, num_blocks());
  if (lo >= hi) {
    return false;
  }
  if (hi <= contig_hits_) {
    return false;  // Entirely inside the known all-hit prefix.
  }
  if (lo <= contig_hits_) {
    // The query spans the frontier of the contiguous prefix: the answer is decided by whether
    // the first miss of the stream falls before hi. Extend the frontier toward hi.
    if (first_miss_known_) {
      return true;  // Block contig_hits_ is the first miss and contig_hits_ < hi.
    }
    while (contig_hits_ < hi) {
      if (!IsHit(contig_hits_)) {
        first_miss_known_ = true;
        return true;
      }
      ++contig_hits_;
    }
    return false;
  }
  for (int64_t j = lo; j < hi; ++j) {
    if (!IsHit(j)) {
      return true;
    }
  }
  return false;
}

void LayerPolicy::UpdateLastAccess(const RequestPages& request, Tick now,
                                   GroupCacheOps& ops) const {
  std::vector<bool> touched(request.pages.size(), false);
  for (const TokenRange& range : NeededTokenRanges(request.num_tokens)) {
    MarkBlocks(range, request.tokens_per_page, touched);
  }
  for (size_t i = 0; i < request.pages.size(); ++i) {
    if (touched[i] && request.pages[i] != kNoSmallPage) {
      ops.UpdateLastAccess(request.pages[i], now);
    }
  }
}

void LayerPolicy::SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const {
  for (size_t i = 0; i < request.pages.size(); ++i) {
    if (request.pages[i] != kNoSmallPage) {
      ops.SetPrefixLength(request.pages[i],
                          static_cast<int64_t>(i + 1) * request.tokens_per_page);
    }
  }
}

std::vector<bool> LayerPolicy::GetPossiblePrefix(const std::vector<bool>& is_hit,
                                                 int tokens_per_page) const {
  JENGA_CHECK_GT(tokens_per_page, 0);
  const int64_t num_blocks = static_cast<int64_t>(is_hit.size());
  // Prefix sums of misses let each candidate prefix be validated in O(#needed-ranges).
  std::vector<int64_t> miss_prefix(static_cast<size_t>(num_blocks) + 1, 0);
  for (int64_t b = 0; b < num_blocks; ++b) {
    miss_prefix[static_cast<size_t>(b) + 1] =
        miss_prefix[static_cast<size_t>(b)] + (is_hit[static_cast<size_t>(b)] ? 0 : 1);
  }
  std::vector<bool> valid(static_cast<size_t>(num_blocks) + 1, false);
  valid[0] = true;  // The empty prefix is always valid.
  for (int64_t p = 1; p <= num_blocks; ++p) {
    bool ok = true;
    for (const TokenRange& range : NeededTokenRanges(p * tokens_per_page)) {
      if (range.empty()) {
        continue;
      }
      const int64_t lo = range.begin / tokens_per_page;
      const int64_t hi = std::min<int64_t>(p, CeilDiv(range.end, tokens_per_page));
      if (miss_prefix[static_cast<size_t>(hi)] - miss_prefix[static_cast<size_t>(lo)] > 0) {
        ok = false;
        break;
      }
    }
    valid[static_cast<size_t>(p)] = ok;
  }
  return valid;
}

bool LayerPolicy::PrefixValid(BlockHitResolver& hits, int64_t p, int tokens_per_page) const {
  JENGA_CHECK_GT(tokens_per_page, 0);
  if (p == 0) {
    return true;  // The empty prefix is always valid.
  }
  for (const TokenRange& range : NeededTokenRanges(p * tokens_per_page)) {
    if (range.empty()) {
      continue;
    }
    const int64_t lo = range.begin / tokens_per_page;
    const int64_t hi = std::min<int64_t>(p, CeilDiv(range.end, tokens_per_page));
    if (hits.AnyMiss(lo, hi)) {
      return false;
    }
  }
  return true;
}

SlidingWindowPolicy::SlidingWindowPolicy(int window) : window_(window) {
  JENGA_CHECK_GT(window, 0);
}

std::vector<TokenRange> SlidingWindowPolicy::NeededTokenRanges(int64_t num_tokens) const {
  if (num_tokens == 0) {
    return {};
  }
  const int64_t begin = std::max<int64_t>(0, num_tokens - window_);
  return {{begin, num_tokens}};
}

PyramidPolicy::PyramidPolicy(int token_budget, int num_sinks)
    : token_budget_(token_budget), num_sinks_(num_sinks) {
  JENGA_CHECK_GT(token_budget, 0);
  JENGA_CHECK_GE(num_sinks, 0);
  JENGA_CHECK_LT(num_sinks, token_budget);
}

std::vector<TokenRange> PyramidPolicy::NeededTokenRanges(int64_t num_tokens) const {
  if (num_tokens == 0) {
    return {};
  }
  if (num_tokens <= token_budget_) {
    return {{0, num_tokens}};
  }
  const int64_t recent = token_budget_ - num_sinks_;
  return {{0, num_sinks_}, {num_tokens - recent, num_tokens}};
}

MambaPolicy::MambaPolicy(int checkpoint_interval) : checkpoint_interval_(checkpoint_interval) {
  JENGA_CHECK_GT(checkpoint_interval, 0);
}

std::vector<TokenRange> MambaPolicy::NeededTokenRanges(int64_t num_tokens) const {
  // Only the current state (represented by the final page) is needed; expressed as the last
  // "token" so that default block marking touches only the final page.
  if (num_tokens == 0) {
    return {};
  }
  return {{num_tokens - 1, num_tokens}};
}

void MambaPolicy::UpdateLastAccess(const RequestPages& request, Tick now,
                                   GroupCacheOps& ops) const {
  // Only the most recent state page is accessed by decoding (§5.3): "only the last cached
  // token's access time is updated".
  if (!request.pages.empty() && request.pages.back() != kNoSmallPage) {
    ops.UpdateLastAccess(request.pages.back(), now);
  }
}

void MambaPolicy::SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const {
  for (size_t i = 0; i < request.pages.size(); ++i) {
    if (request.pages[i] != kNoSmallPage) {
      ops.SetPrefixLength(request.pages[i],
                          static_cast<int64_t>(i + 1) * checkpoint_interval_);
    }
  }
}

std::vector<bool> MambaPolicy::GetPossiblePrefix(const std::vector<bool>& is_hit,
                                                 int /*tokens_per_page*/) const {
  // Block i caches the state after (i+1)·interval tokens; restoring needs only that single
  // checkpoint, so a prefix of p checkpoints is valid iff checkpoint p itself is cached.
  std::vector<bool> valid(is_hit.size() + 1, false);
  valid[0] = true;
  for (size_t p = 1; p <= is_hit.size(); ++p) {
    valid[p] = is_hit[p - 1];
  }
  return valid;
}

bool MambaPolicy::PrefixValid(BlockHitResolver& hits, int64_t p, int /*tokens_per_page*/) const {
  if (p == 0) {
    return true;
  }
  return hits.IsHit(p - 1);
}

ImageCachePolicy::ImageCachePolicy(int tokens_per_image) : tokens_per_image_(tokens_per_image) {
  JENGA_CHECK_GT(tokens_per_image, 0);
}

void ImageCachePolicy::SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const {
  // All pages of one image share a randomized priority derived from (request, image ordinal);
  // the evictor's longest-prefix-first tie-break then evicts whole images together (§5.3).
  // Values are offset by the request length so image priorities stay comparable with the
  // token-indexed priorities that text groups assign.
  for (size_t i = 0; i < request.pages.size(); ++i) {
    if (request.pages[i] == kNoSmallPage) {
      continue;
    }
    const int64_t token = static_cast<int64_t>(i) * request.tokens_per_page;
    const int64_t image_ordinal = token / tokens_per_image_;
    const uint64_t h = Mix64(static_cast<uint64_t>(request.request) * 0x9E3779B97F4A7C15ull +
                             static_cast<uint64_t>(image_ordinal));
    ops.SetPrefixLength(request.pages[i], static_cast<int64_t>(h % 1000000));
  }
}

}  // namespace jenga
