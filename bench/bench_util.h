// Shared helpers for the paper-reproduction bench binaries: fixed-width table printing and
// common run drivers. Every bench prints the rows/series of one paper table or figure.

#ifndef JENGA_BENCH_BENCH_UTIL_H_
#define JENGA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace jenga {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

// Fixed-width row printing: columns are (width, text) pairs rendered left-aligned.
inline void PrintRow(const std::vector<std::pair<int, std::string>>& cells) {
  for (const auto& [width, text] : cells) {
    std::printf("%-*s", width, text.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

inline std::string FmtI(int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

inline std::string Gb(int64_t bytes) {
  return Fmt("%.2f GB", static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
}

inline std::string Pct(double fraction) { return Fmt("%.1f%%", fraction * 100.0); }

}  // namespace jenga

#endif  // JENGA_BENCH_BENCH_UTIL_H_
