file(REMOVE_RECURSE
  "libjenga_common.a"
)
