// Per-phase step profiler: wall-clock attribution for the StepOnce hot path (DESIGN.md §12).
//
// The engines wrap each scheduler phase in a scoped RAII timer. Detached (nullptr profiler,
// the default) every scope is a single pointer null test — the same discipline as the
// audit/fault/offload hooks — and the engine stays byte-identical to a build without the
// subsystem: the profiler only ever reads the host wall clock, never the engine's logical
// tick or simulated time, so attaching it cannot perturb scheduling, eviction order, or any
// golden output.
//
// Phase times are *exclusive*: scopes nest (e.g. AllocateForTokens inside the schedule loop),
// and a nested scope pauses its parent's clock, so the per-phase totals sum to the total
// stepped wall time and a share table always adds up to 100%.

#ifndef JENGA_SRC_METRICS_STEP_PROFILER_H_
#define JENGA_SRC_METRICS_STEP_PROFILER_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace jenga {

// One bucket per StepOnce phase. kEvictPreempt covers the whole Preempt() body — including
// the PR 9 TrimToComputed trim and the release-to-cache walk — so preemption-driven eviction
// work is attributed to preemption, never double-counted against commit/allocate (the
// micro.cache_churn_offload attribution rule; see step_profiler_test).
enum class StepPhase : int {
  kHookDispatch = 0,  // Audit/fault/elastic step-hook dispatch + host-pressure consult.
  kDeadlineExpiry,    // Deadline-heap check + expiry cancellations.
  kSchedule,          // Phase 1/2 scheduling bookkeeping (exclusive of nested phases).
  kHitScan,           // KvManager::OnAdmit — the §5.2 prefix-cache hit scan.
  kAllocate,          // CanAllocate + AllocateForTokens + RestoreFromSwap.
  kShedGate,          // MaybeShedHead watermark check + shed.
  kGpuSim,            // Cost-model evaluation: kv-read accounting + StepTime + swap stall.
  kEvictPreempt,      // Preempt(): trim, swap decision, release-to-cache, requeue.
  kCommit,            // Phase 4: progress commit, token append, finish/release.
  kOther,             // Untimed remainder (arrival scans, metrics recording).
};
inline constexpr int kNumStepPhases = static_cast<int>(StepPhase::kOther) + 1;

[[nodiscard]] const char* StepPhaseName(StepPhase phase);

class StepProfiler {
 public:
  struct PhaseStats {
    int64_t ns = 0;     // Exclusive wall time charged to this phase.
    int64_t calls = 0;  // Scope entries (kOther counts nothing; it is the remainder).
  };

  // Step bracket. Time between scopes inside a step is charged to kOther; time outside any
  // step (e.g. a governor-driven Preempt between steps) is charged only to the scope that
  // covers it, never to kOther.
  void BeginStep();
  void EndStep();
  void Reset();

  [[nodiscard]] const PhaseStats& phase(StepPhase p) const {
    return phases_[static_cast<size_t>(p)];
  }
  [[nodiscard]] int64_t steps() const { return steps_; }
  // Total wall time across all bracketed steps plus out-of-step scopes.
  [[nodiscard]] int64_t total_ns() const;
  // Fraction of total_ns() charged to `p`, in [0, 1] (0 when nothing was recorded).
  [[nodiscard]] double PhaseShare(StepPhase p) const;

  // RAII phase scope. Null profiler = one pointer test in the constructor and destructor.
  class Scope {
   public:
    Scope(StepProfiler* profiler, StepPhase phase) : profiler_(profiler) {
      if (profiler_ != nullptr) [[unlikely]] {
        profiler_->Push(phase);
      }
    }
    ~Scope() {
      if (profiler_ != nullptr) [[unlikely]] {
        profiler_->Pop();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StepProfiler* profiler_;
  };

  // RAII step bracket (BeginStep/EndStep around every StepOnce exit path).
  class StepScope {
   public:
    explicit StepScope(StepProfiler* profiler) : profiler_(profiler) {
      if (profiler_ != nullptr) [[unlikely]] {
        profiler_->BeginStep();
      }
    }
    ~StepScope() {
      if (profiler_ != nullptr) [[unlikely]] {
        profiler_->EndStep();
      }
    }
    StepScope(const StepScope&) = delete;
    StepScope& operator=(const StepScope&) = delete;

   private:
    StepProfiler* profiler_;
  };

 private:
  friend class Scope;
  void Push(StepPhase phase);
  void Pop();
  void Charge(int64_t now_ns);

  static constexpr int kMaxDepth = 8;

  std::array<PhaseStats, kNumStepPhases> phases_{};
  std::array<StepPhase, kMaxDepth> stack_{};
  int depth_ = 0;
  bool in_step_ = false;
  int64_t mark_ns_ = 0;  // Wall clock up to which elapsed time has been charged.
  int64_t steps_ = 0;
};

}  // namespace jenga

#endif  // JENGA_SRC_METRICS_STEP_PROFILER_H_
