// Deterministic, seedable fault injection for the serving simulator.
//
// Real serving stacks survive PCIe transfer errors, host-memory pressure spikes, and GPU step
// failures; the simulator's recovery paths (retry + backoff, recompute fallback, GPU-only
// degradation, load shedding) need a way to exercise those conditions reproducibly. The
// FaultInjector is consulted at a small number of named sites (FaultSite); each site can be
// armed with a probability, a scheduled consult index, or a periodic interval. All randomness
// comes from per-site SplitMix64 streams forked from a single seed, so a (plan, seed) pair
// replays the exact same fault sequence — the chaos fuzz tier prints both on failure.
//
// When no site is armed (the default), engines do not construct an injector at all and every
// consult site short-circuits on a null pointer, keeping the disabled overhead at ~0 and all
// bench/golden outputs byte-identical to a build without the subsystem.

#ifndef JENGA_SRC_FAULT_FAULT_INJECTOR_H_
#define JENGA_SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/random.h"
#include "src/common/status.h"

namespace jenga {

// Sites where the injector can be consulted. Each maps to one concrete failure the recovery
// machinery must survive.
enum class FaultSite : int {
  kPcieD2H = 0,       // Swap-out (device-to-host) transfer error.
  kPcieH2D = 1,       // Swap-in (host-to-device) transfer error.
  kPcieTimeout = 2,   // Transfer hangs until the PCIe timeout budget expires.
  kHostPoolAlloc = 3, // Host pool rejects an insert (allocation failure).
  kHostPoolShrink = 4,// Host pool capacity is forcibly halved (memory pressure spike).
  kGpuStep = 5,       // A GPU step fails; its results must be discarded and recomputed.
  kReplicaDeath = 6,  // A fleet replica dies; its work must be re-routed (cluster scope).
  kReplicaStall = 7,  // A fleet replica stops stepping for a while (cluster scope).
  kPoolGrow = 8,      // A pool-grow reservation fails mid-flight (elastic governor scope).
  kPoolShrinkDrain = 9,    // The drain phase of a pool shrink aborts (governor scope).
  kRepartitionCommit = 10, // A repartition faults at the commit point (governor scope).
  kNumSites = 11,
};

inline constexpr int kNumFaultSites = static_cast<int>(FaultSite::kNumSites);

// Canonical lower_snake names used in fault plans ("pcie_d2h", "gpu_step", ...).
const char* FaultSiteName(FaultSite site);

// Parses a canonical site name; returns kNumSites if unknown.
FaultSite FaultSiteFromName(const std::string& name);

// How one site fires. A consult fires if any armed trigger matches:
//   - probability:  Bernoulli(probability) on the site's private stream,
//   - at_consult:   exactly on the site's N-th consult (0-based),
//   - every:        on every N-th consult (consult index % every == every - 1).
struct FaultSpec {
  double probability = 0.0;
  int64_t at_consult = -1;
  int64_t every = 0;

  bool armed() const { return probability > 0.0 || at_consult >= 0 || every > 0; }
};

// A full plan: one optional spec per site. Parsed from the compact text form used by
// JENGA_FAULT_PLAN and the chaos tier:
//
//   plan      := entry (',' entry)*
//   entry     := site ':' trigger
//   trigger   := 'p=' float | 'at=' int | 'every=' int
//
// e.g. "pcie_d2h:p=0.05,gpu_step:every=100,host_alloc:at=2". Repeating a site merges triggers
// into its single spec (so "pcie_d2h:p=0.1,pcie_d2h:at=7" arms both a probability and a
// scheduled consult).
struct FaultPlan {
  std::array<FaultSpec, kNumFaultSites> specs;

  const FaultSpec& spec(FaultSite site) const { return specs[static_cast<int>(site)]; }
  FaultSpec& spec(FaultSite site) { return specs[static_cast<int>(site)]; }
  bool empty() const;
  std::string ToString() const;

  // Parses `text` into `plan`; on error returns InvalidArgument naming the bad token.
  static Status Parse(const std::string& text, FaultPlan* plan);
};

// Plan plus RNG seed — everything needed to replay a fault sequence.
struct FaultConfig {
  FaultPlan plan;
  uint64_t seed = 1;

  bool enabled() const { return !plan.empty(); }
};

// Reads JENGA_FAULT_PLAN / JENGA_FAULT_SEED. Used only by explicit chaos entry points (the
// chaos fuzz tier's replay path); engines and benches never consult the environment
// implicitly. Returns InvalidArgument if the plan text does not parse.
Status FaultConfigFromEnv(FaultConfig* config);

// The injector itself. Deterministic: consult order at a site fully determines its fires.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // Consults the site; returns true if a fault fires now.
  bool Fire(FaultSite site);

  struct SiteCounters {
    int64_t consults = 0;
    int64_t fires = 0;
  };
  const SiteCounters& counters(FaultSite site) const {
    return counters_[static_cast<int>(site)];
  }
  int64_t total_fires() const;

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::array<Rng, kNumFaultSites> streams_;
  std::array<SiteCounters, kNumFaultSites> counters_;
};

}  // namespace jenga

#endif  // JENGA_SRC_FAULT_FAULT_INJECTOR_H_
