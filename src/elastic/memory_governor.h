// Elastic memory governor: runtime pool elasticity for a serving engine. The governor
// attaches to an Engine (or SpecDecodeEngine) as its step-boundary hook and owns three
// concerns the engine itself stays agnostic of:
//
//   1. External capacity events — RequestPoolDelta() grows/shrinks the KV pool a few pages
//      per step (modeling another tenant claiming or releasing GPU memory), and
//      RequestHotSwap() repartitions the LCM layout for a new model as quiesce → rebuild →
//      commit, with full rollback when the repartition_commit fault site fires.
//   2. A watermark-driven pressure ladder replacing the engine's single shed gate:
//      park-to-host → shed → repartition-to-fallback, climbed one rung per action with a
//      cooldown between actions and a hysteresis band (engage at/above the high watermark,
//      release strictly below the low one) so the ladder cannot oscillate.
//   3. The adaptive draft/target split (spec-decode mode): when one pool sits at/above the
//      high watermark while the other has slack below the low one, capacity shifts toward
//      the pressured pool via SpecDecodeEngine::ShiftSplit (the Fig. 19 SmartSpec
//      comparison against static splits).
//
// Every transition consults the seeded FaultInjector sites (pool_grow, pool_shrink_drain,
// repartition_commit) inside the engine primitives; a fired site rolls the transition back
// with zero net change and the resize ledger in EngineMetrics records the attempt. Detached,
// the governor costs the engines one null test per step — goldens stay byte-identical.

#ifndef JENGA_SRC_ELASTIC_MEMORY_GOVERNOR_H_
#define JENGA_SRC_ELASTIC_MEMORY_GOVERNOR_H_

#include <cstdint>
#include <optional>

#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "src/model/model_config.h"

namespace jenga {

// Hysteresis band shared by the ladder and the adaptive split: engaged at or above `high`,
// released strictly below `low`, previous state preserved inside the band. Exact-boundary
// semantics are load-bearing (governor_test pins them): value == high engages, value == low
// stays engaged.
class HysteresisGate {
 public:
  HysteresisGate(double low, double high) : low_(low), high_(high) {}

  bool Update(double value) {
    if (engaged_) {
      if (value < low_) {
        engaged_ = false;
      }
    } else if (value >= high_) {
      engaged_ = true;
    }
    return engaged_;
  }

  [[nodiscard]] bool engaged() const { return engaged_; }

 private:
  double low_ = 0.0;
  double high_ = 1.0;
  bool engaged_ = false;
};

struct GovernorConfig {
  // Pressure band: the ladder engages at/above `high_watermark` and releases strictly below
  // `low_watermark`.
  double high_watermark = 0.92;
  double low_watermark = 0.80;
  // Minimum governor steps between two actions (applies to ladder rungs, external deltas,
  // and split shifts alike).
  int cooldown_steps = 4;
  // Pages applied per step toward an outstanding RequestPoolDelta.
  int32_t grow_step_pages = 1;
  int32_t shrink_step_pages = 1;
  // Spec-decode mode: bytes moved per adaptive split shift (0 = one donor large page).
  int64_t split_shift_bytes = 0;
  // Rollback retries before an outstanding hot swap is abandoned (the fault plan decides
  // how often repartition_commit fires; an every=1 plan must not wedge the engine).
  int max_hot_swap_retries = 8;
  // Ladder rung 3 (Engine mode): repartition to this model under sustained pressure. Unset
  // disables the rung. 0 pool bytes derives the pool from the GPU spec and the new weights.
  std::optional<ModelConfig> fallback_model;
  int64_t fallback_pool_bytes = 0;
};

class MemoryGovernor final : public EngineStepHook, public SpecStepHook {
 public:
  explicit MemoryGovernor(GovernorConfig config = {});

  // Installs this governor as the engine's step hook. One governor drives one engine.
  void AttachTo(Engine& engine);
  void AttachTo(SpecDecodeEngine& engine);
  void DetachFrom(Engine& engine);
  void DetachFrom(SpecDecodeEngine& engine);

  // Queues an external capacity event: positive = grow the pool by `pages`, negative =
  // shrink. Applied a few pages per step at step boundaries; shrinks blocked by a pinned
  // tail retry after the ladder frees tail pages. Deltas accumulate.
  void RequestPoolDelta(int32_t pages) { pending_pool_delta_ += pages; }

  // Queues a model hot swap, applied at the next step boundary (the quiesce point). The
  // engine advertises `elastic_draining` to the fleet router until the swap commits or is
  // abandoned after max_hot_swap_retries rollbacks.
  void RequestHotSwap(ModelConfig model, int64_t pool_bytes = 0);

  void OnStepBoundary(Engine& engine) override;
  void OnStepBoundary(SpecDecodeEngine& engine) override;

  struct Stats {
    int64_t park_actions = 0;         // Ladder rung 1 preemptions.
    int64_t shed_actions = 0;         // Ladder rung 2 sheds.
    int64_t repartition_actions = 0;  // Ladder rung 3 fallback repartitions committed.
    int64_t grow_actions = 0;         // External-delta grow steps committed.
    int64_t shrink_actions = 0;       // External-delta shrink steps committed.
    int64_t split_shifts = 0;         // Adaptive draft/target shifts committed.
    int64_t engagements = 0;          // Low→high crossings (ladder arm events).
    int64_t escalations = 0;          // Rung advances while pressure persisted.
    int64_t hot_swaps_applied = 0;
    int64_t hot_swap_rollbacks = 0;   // Includes swaps later retried successfully.
    int64_t hot_swaps_abandoned = 0;  // Retry budget exhausted; old layout kept.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool engaged() const { return gate_.engaged(); }
  [[nodiscard]] int rung() const { return rung_; }
  [[nodiscard]] int32_t pending_pool_delta() const { return pending_pool_delta_; }
  [[nodiscard]] bool hot_swap_pending() const { return pending_swap_.has_value(); }

 private:
  struct PendingSwap {
    ModelConfig model;
    int64_t pool_bytes = 0;
    int retries = 0;
  };

  // True when an action was taken (cooldown restarts).
  [[nodiscard]] bool TryRung(Engine& engine, int rung);
  [[nodiscard]] int64_t SplitShiftBytes(const SpecDecodeEngine& engine, int donor) const;

  GovernorConfig config_;
  HysteresisGate gate_;
  int rung_ = 0;
  bool acted_since_engage_ = false;
  int cooldown_ = 0;
  int32_t pending_pool_delta_ = 0;
  std::optional<PendingSwap> pending_swap_;
  bool fallback_applied_ = false;
  Stats stats_;
};

}  // namespace jenga

#endif  // JENGA_SRC_ELASTIC_MEMORY_GOVERNOR_H_
