// Whole-model architecture descriptions. A ModelConfig carries (1) the list of distinct-KV
// decoder layers — layers that share a KV cache (Character.ai-style cross-layer sharing) are
// listed once and accounted in `compute_layers` — (2) an optional vision encoder, and (3) the
// scalar quantities the analytic GPU cost model needs (parameter count, hidden size).

#ifndef JENGA_SRC_MODEL_MODEL_CONFIG_H_
#define JENGA_SRC_MODEL_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/layer.h"

namespace jenga {

// Vision-encoder description for multimodal models. The encoder turns each image into
// `tokens_per_image` image tokens, each with an `embed_bytes_per_token` vision embedding that
// is cached (or not) by the memory manager, and is consumed by the LLM's chunked prefill.
struct VisionSpec {
  bool present = false;
  int tokens_per_image = 0;
  int64_t embed_bytes_per_token = 0;
  // Encoder parameter count (billions); drives simulated encode time.
  double encoder_params_b = 0.0;
};

struct ModelConfig {
  std::string name;
  // Total parameter count in billions (drives simulated step time and weight memory).
  double params_b = 0.0;
  // Weight bytes per parameter (2 for bf16 weights, 1 for fp8-quantized models, Table 1 `*`).
  int weight_dtype_bytes = 2;
  int hidden_size = 4096;
  int max_context_len = 131072;
  // Distinct-KV decoder layers (one entry per independent KV cache).
  std::vector<LayerSpec> layers;
  // Total executed decoder layers, >= layers.size() when KV is shared across layers.
  int compute_layers = 0;
  VisionSpec vision;

  [[nodiscard]] int64_t WeightBytes() const {
    return static_cast<int64_t>(params_b * 1e9) * weight_dtype_bytes;
  }

  // Sum of per-token KV bytes across all distinct attention-like layers (Mamba excluded).
  [[nodiscard]] int64_t KvBytesPerTokenAllLayers() const;

  // Sum of per-sequence Mamba state bytes across all Mamba layers.
  [[nodiscard]] int64_t MambaStateBytesTotal() const;

  [[nodiscard]] bool HasKind(LayerKind kind) const;
  [[nodiscard]] int CountKind(LayerKind kind) const;

  [[nodiscard]] std::string DebugString() const;
};

}  // namespace jenga

#endif  // JENGA_SRC_MODEL_MODEL_CONFIG_H_
