#include "src/model/model_config.h"

#include <sstream>

namespace jenga {

std::string LayerSpec::DebugString() const {
  std::ostringstream os;
  os << LayerKindName(kind);
  switch (kind) {
    case LayerKind::kMamba:
      os << "(state=" << mamba_state_bytes << "B)";
      break;
    case LayerKind::kSlidingWindow:
      os << "(window=" << sliding_window << ", kv=" << KvBytesPerToken() << "B/tok)";
      break;
    case LayerKind::kSparsePyramid:
      os << "(budget=" << token_budget << ", kv=" << KvBytesPerToken() << "B/tok)";
      break;
    default:
      os << "(kv=" << KvBytesPerToken() << "B/tok)";
      break;
  }
  return os.str();
}

int64_t ModelConfig::KvBytesPerTokenAllLayers() const {
  int64_t total = 0;
  for (const LayerSpec& layer : layers) {
    total += layer.KvBytesPerToken();
  }
  return total;
}

int64_t ModelConfig::MambaStateBytesTotal() const {
  int64_t total = 0;
  for (const LayerSpec& layer : layers) {
    if (layer.kind == LayerKind::kMamba) {
      total += layer.mamba_state_bytes;
    }
  }
  return total;
}

bool ModelConfig::HasKind(LayerKind kind) const { return CountKind(kind) > 0; }

int ModelConfig::CountKind(LayerKind kind) const {
  int count = 0;
  for (const LayerSpec& layer : layers) {
    if (layer.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::string ModelConfig::DebugString() const {
  std::ostringstream os;
  os << name << " (" << params_b << "B params, " << layers.size() << " distinct-KV layers, "
     << compute_layers << " compute layers";
  if (vision.present) {
    os << ", vision " << vision.tokens_per_image << " tok/img";
  }
  os << ")";
  return os.str();
}

}  // namespace jenga
