#include "src/elastic/memory_governor.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace jenga {

namespace {

// Engine-mode ladder rungs, climbed in order while pressure persists.
constexpr int kRungPark = 0;
constexpr int kRungShed = 1;
constexpr int kRungRepartition = 2;
constexpr int kMaxRung = kRungRepartition;

}  // namespace

MemoryGovernor::MemoryGovernor(GovernorConfig config)
    : config_(config), gate_(config.low_watermark, config.high_watermark) {
  JENGA_CHECK_LE(config_.low_watermark, config_.high_watermark);
  JENGA_CHECK_GT(config_.grow_step_pages, 0);
  JENGA_CHECK_GT(config_.shrink_step_pages, 0);
}

void MemoryGovernor::AttachTo(Engine& engine) { engine.set_step_hook(this); }
void MemoryGovernor::AttachTo(SpecDecodeEngine& engine) { engine.set_step_hook(this); }
void MemoryGovernor::DetachFrom(Engine& engine) { engine.set_step_hook(nullptr); }
void MemoryGovernor::DetachFrom(SpecDecodeEngine& engine) { engine.set_step_hook(nullptr); }

void MemoryGovernor::RequestHotSwap(ModelConfig model, int64_t pool_bytes) {
  PendingSwap swap;
  swap.model = std::move(model);
  swap.pool_bytes = pool_bytes;
  pending_swap_ = std::move(swap);
}

bool MemoryGovernor::TryRung(Engine& engine, int rung) {
  switch (rung) {
    case kRungPark:
      if (engine.ParkNewestRunning()) {
        stats_.park_actions += 1;
        return true;
      }
      return false;
    case kRungShed:
      if (engine.ShedOldestWaiting()) {
        stats_.shed_actions += 1;
        return true;
      }
      return false;
    case kRungRepartition: {
      if (!config_.fallback_model.has_value() || fallback_applied_) {
        return false;
      }
      if (engine.RepartitionKvPool(*config_.fallback_model, config_.fallback_pool_bytes)) {
        stats_.repartition_actions += 1;
        fallback_applied_ = true;
      }
      // A rollback still consumed this step's transition; cooldown applies and the rung
      // retries after it (the fault plan decides whether the retry commits).
      return true;
    }
    default:
      return false;
  }
}

void MemoryGovernor::OnStepBoundary(Engine& engine) {
  if (cooldown_ > 0) {
    cooldown_ -= 1;
    return;
  }

  // Highest priority: an outstanding hot swap. The engine drains (the fleet router spills
  // around it) until the repartition commits or the retry budget runs out.
  if (pending_swap_.has_value()) {
    engine.set_elastic_draining(true);
    if (engine.RepartitionKvPool(pending_swap_->model, pending_swap_->pool_bytes)) {
      stats_.hot_swaps_applied += 1;
      pending_swap_.reset();
      engine.set_elastic_draining(false);
    } else {
      stats_.hot_swap_rollbacks += 1;
      pending_swap_->retries += 1;
      if (pending_swap_->retries >= config_.max_hot_swap_retries) {
        stats_.hot_swaps_abandoned += 1;
        pending_swap_.reset();
        engine.set_elastic_draining(false);
      }
    }
    cooldown_ = config_.cooldown_steps;
    return;
  }

  // External capacity deltas, a few pages per step. A grow rollback (0 pages) retries next
  // step; a shrink blocked by a pinned tail falls through to the ladder so parking/shedding
  // can free the tail first.
  if (pending_pool_delta_ > 0) {
    const int32_t ask = std::min(pending_pool_delta_, config_.grow_step_pages);
    const int32_t got = engine.GrowKvPool(ask);
    if (got > 0) {
      stats_.grow_actions += 1;
      pending_pool_delta_ -= got;
    }
    cooldown_ = config_.cooldown_steps;
    return;
  }
  bool shrink_blocked = false;
  if (pending_pool_delta_ < 0) {
    const int32_t ask = std::min(-pending_pool_delta_, config_.shrink_step_pages);
    const int32_t got = engine.ShrinkKvPool(ask);
    if (got > 0) {
      stats_.shrink_actions += 1;
      pending_pool_delta_ += got;
      cooldown_ = config_.cooldown_steps;
      return;
    }
    shrink_blocked = true;
  }

  // Pressure ladder. A blocked shrink counts as pressure even below the watermark: the tail
  // must drain, and parking/shedding is how it does.
  const bool engaged = gate_.Update(engine.PoolOccupancy()) || shrink_blocked;
  if (!engaged) {
    rung_ = 0;
    acted_since_engage_ = false;
    return;
  }
  if (acted_since_engage_ && rung_ < kMaxRung) {
    // The previous action didn't bring occupancy below the band: climb.
    rung_ += 1;
    stats_.escalations += 1;
    engine.metrics_mutable().ladder_activations += 1;
  }
  if (!acted_since_engage_) {
    stats_.engagements += 1;
    engine.metrics_mutable().ladder_activations += 1;
  }
  for (int r = rung_; r <= kMaxRung; ++r) {
    if (TryRung(engine, r)) {
      rung_ = r;
      acted_since_engage_ = true;
      cooldown_ = config_.cooldown_steps;
      return;
    }
  }
  // No rung applicable right now (e.g. a single runner, nothing waiting, no fallback
  // model): stay engaged at the current rung and re-test next step.
  acted_since_engage_ = true;
}

int64_t MemoryGovernor::SplitShiftBytes(const SpecDecodeEngine& engine, int donor) const {
  if (config_.split_shift_bytes > 0) {
    return config_.split_shift_bytes;
  }
  return engine.manager(donor).allocator().lcm().large_page_bytes();
}

void MemoryGovernor::OnStepBoundary(SpecDecodeEngine& engine) {
  if (cooldown_ > 0) {
    cooldown_ -= 1;
    return;
  }
  if (engine.config().strategy != SpecStrategy::kVllmManual || engine.num_managers() < 2) {
    return;
  }
  // Adaptive draft/target split: shift capacity toward the pressured pool, but only when the
  // other pool has genuine slack (below the low watermark) — symmetric pressure means the
  // whole GPU is full and moving pages would just thrash.
  const double target_occ = engine.PoolOccupancyOf(0);
  const double draft_occ = engine.PoolOccupancyOf(1);
  int donor = -1;
  if (target_occ >= config_.high_watermark && draft_occ < config_.low_watermark) {
    donor = 1;
  } else if (draft_occ >= config_.high_watermark && target_occ < config_.low_watermark) {
    donor = 0;
  }
  if (donor < 0) {
    return;
  }
  if (engine.ShiftSplit(donor, 1 - donor, SplitShiftBytes(engine, donor)) > 0) {
    stats_.split_shifts += 1;
    engine.metrics_mutable().ladder_activations += 1;
    cooldown_ = config_.cooldown_steps;
  }
}

}  // namespace jenga
