// Factory functions for every model evaluated in the paper (Table 1 plus the Fig. 18 VLMs and
// the Fig. 19 draft models). Architectures are derived from the public model cards; parameter
// values that only shift absolute speed (not allocator behaviour) are approximate, while the
// quantities the allocator consumes — layer mix, per-token KV bytes, window sizes, Mamba state
// sizes — follow the paper's own arithmetic (§3.2, §4.4) exactly.

#ifndef JENGA_SRC_MODEL_MODEL_ZOO_H_
#define JENGA_SRC_MODEL_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/model/model_config.h"

namespace jenga {

// --- Text models (Table 1) ---

// Standard homogeneous baseline: full attention only (overhead check in Fig. 13).
[[nodiscard]] ModelConfig Llama31_8B();
// FP8-quantized 70B used for the MMLU-pro rows.
[[nodiscard]] ModelConfig Llama3_70B_Fp8();
// Gemma-2: 1:1 interleaved sliding-window (4096) and full attention.
[[nodiscard]] ModelConfig Gemma2_27B();
[[nodiscard]] ModelConfig Gemma2_9B();
// Ministral: 3:1 sliding-window (32768) to full attention; max context 131072, so a full-length
// request wastes 0.75 × 0.75 = 56.25 % of its KV under a homogeneous allocator (§3.2).
[[nodiscard]] ModelConfig Ministral8B();
// Jamba (FP8): 4 full-attention + 28 Mamba layers; Mamba page = 84 × the attention page, the
// paper's worst-case LCM ratio (§4.4).
[[nodiscard]] ModelConfig Jamba52B_Fp8();
// Character.ai-style model: mostly sliding-window layers with cross-layer KV sharing; the
// distinct-KV layer list is shorter than the 32 executed layers.
[[nodiscard]] ModelConfig CharacterAi8B();
// PyramidKV-style sparse model: per-layer retained-token budgets shrinking with depth.
[[nodiscard]] ModelConfig PyramidKv8B();
// 70B-scale FP8 variants of the two above (the Table 1 H100 MMLU-pro rows).
[[nodiscard]] ModelConfig CharacterAi70B_Fp8();
[[nodiscard]] ModelConfig PyramidKv70B_Fp8();

// --- Draft models for speculative decoding (Fig. 19) ---

[[nodiscard]] ModelConfig Llama32_1B();
[[nodiscard]] ModelConfig Gemma2_2B();
// "An example model created by us following the model configuration of Llama 3.2 1B" (§7.4).
[[nodiscard]] ModelConfig Ministral1BDraft();

// --- Multimodal models ---

// Llama 3.2 11B Vision (mllama): 32 self-attention + 8 cross-attention layers (§3.2).
[[nodiscard]] ModelConfig Llama32_11B_Vision();
[[nodiscard]] ModelConfig LlavaOneVision7B();
[[nodiscard]] ModelConfig InternVl2_8B();
[[nodiscard]] ModelConfig Phi3Vision4B();
// Mixes three memory types: vision embeddings, sliding-window KV, and full-attention KV (§7.1).
[[nodiscard]] ModelConfig Paligemma2_10B();

// FP8-quantizes a model (Table 1's `*`): 1-byte weights and 1-byte KV, name suffixed "-fp8".
[[nodiscard]] ModelConfig Fp8(ModelConfig model);

// --- Tensor-parallel memory profiles (fleet serving of 70B+ models) ---

// One TP rank's shard of `model` under `tp_degree`-way tensor parallelism: KV heads, Mamba
// state bytes, vision-embedding bytes, and parameters split evenly across ranks, so one
// allocator (one Engine replica) per rank serves the per-rank KV pool. Name is suffixed
// "-tpN". Compute is scaled with the parameter split (ideal TP; interconnect overhead is out
// of scope for the memory simulation).
//
// Errors with kInvalidArgument — instead of silently truncating the per-rank KV bytes — when
// any layer's geometry does not divide evenly: attention-like layers need
// num_kv_heads % tp == 0, Mamba layers mamba_state_bytes % tp == 0, vision encoders
// embed_bytes_per_token % tp == 0.
[[nodiscard]] StatusOr<ModelConfig> TensorParallelShard(const ModelConfig& model, int tp_degree);

// Convenience 70B fleet configs: the per-rank shard of the Table 1 FP8 70B models.
// Check-fails on degrees that do not divide the geometry (8 KV heads → tp in {1,2,4,8}).
[[nodiscard]] ModelConfig Llama3_70B_Fp8_Tp(int tp_degree);
[[nodiscard]] ModelConfig CharacterAi70B_Fp8_Tp(int tp_degree);

// Looks a model up by its zoo name; checks-fails on unknown names.
[[nodiscard]] ModelConfig ModelByName(const std::string& name);

// All zoo models, for sweep-style tests.
[[nodiscard]] std::vector<ModelConfig> AllZooModels();

}  // namespace jenga

#endif  // JENGA_SRC_MODEL_MODEL_ZOO_H_
