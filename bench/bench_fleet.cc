// Fleet serving showcase: arXiv-QA traffic over 2- and 4-replica fleets, round-robin vs
// prefix-affinity routing. Each replica's KV pool holds only a few articles, so the routing
// policy decides whether article prefixes stay cache-resident: round-robin smears every
// article across every replica (thrash), affinity concentrates each article's requests on
// the replica that already holds its prefix. Reports cluster prefix-cache hit rate and
// per-request TTFT/TPOT percentiles (simulated seconds — deterministic).
//
// The run self-checks the fleet acceptance criteria and exits non-zero on violation (the
// check.sh fleet stage runs `bench_fleet --quick`):
//   - at 4 replicas, affinity hit rate >= 1.3x round-robin
//   - affinity does not regress p99 TTFT vs round-robin
//
// Flags:
//   --quick   smaller trace (CI-friendly; criteria still checked)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fleet_bench.h"

namespace jenga {
namespace {

struct Row {
  int replicas = 0;
  RoutePolicy policy = RoutePolicy::kRoundRobin;
  FleetBenchResult result;
};

bool Run(bool quick) {
  PrintHeader(std::string("bench_fleet: arXiv-QA fleet routing, round-robin vs "
                          "prefix-affinity (") +
              (quick ? "quick" : "full") + " mode)");

  FleetTraceOptions trace_options;
  trace_options.requests = quick ? 48 : 160;
  std::printf("trace: %d requests over %d shared articles (%lld-%lld tokens), "
              "poisson %.1f req/s, llama-3.1-8b replicas, %.1f GB KV pool each\n",
              trace_options.requests, trace_options.num_articles,
              static_cast<long long>(trace_options.min_article_len),
              static_cast<long long>(trace_options.max_article_len), trace_options.rate,
              static_cast<double>(FleetBenchConfig{}.pool_bytes) / (1024.0 * 1024.0 * 1024.0));

  std::vector<Row> rows;
  for (const int replicas : {2, 4}) {
    for (const RoutePolicy policy : {RoutePolicy::kRoundRobin, RoutePolicy::kPrefixAffinity}) {
      FleetBenchConfig bench;
      bench.num_replicas = replicas;
      bench.policy = policy;
      Row row{replicas, policy, RunFleetPolicy(bench, MakeFleetTrace(trace_options))};
      rows.push_back(std::move(row));
    }
  }

  std::printf("\n");
  PrintRow({{10, "replicas"},
            {18, "policy"},
            {10, "hit rate"},
            {12, "ttft p50"},
            {12, "ttft p99"},
            {12, "tpot p50"},
            {12, "tpot p99"},
            {16, "affinity/spill"}});
  PrintRule();
  for (const Row& row : rows) {
    PrintRow({{10, FmtI(row.replicas)},
              {18, RoutePolicyName(row.policy)},
              {10, Pct(row.result.stats.hit_rate)},
              {12, Fmt("%.3fs", row.result.stats.ttft_p50)},
              {12, Fmt("%.3fs", row.result.stats.ttft_p99)},
              {12, Fmt("%.4fs", row.result.stats.tpot_p50)},
              {12, Fmt("%.4fs", row.result.stats.tpot_p99)},
              {16, FmtI(row.result.counters.routed_affinity) + "/" +
                       FmtI(row.result.counters.routed_spill)}});
  }

  std::printf("\nper-replica occupancy/hit-rate (4 replicas):\n");
  for (const Row& row : rows) {
    if (row.replicas != 4) {
      continue;
    }
    for (const ReplicaStats& r : row.result.stats.replicas) {
      std::printf("  %-18s replica %d: hit %5.1f%%  completed %lld\n",
                  RoutePolicyName(row.policy), r.replica, r.hit_rate * 100.0,
                  static_cast<long long>(r.completed));
    }
  }

  bool ok = true;
  for (const int replicas : {2, 4}) {
    const Row* rr = nullptr;
    const Row* affinity = nullptr;
    for (const Row& row : rows) {
      if (row.replicas != replicas) {
        continue;
      }
      (row.policy == RoutePolicy::kRoundRobin ? rr : affinity) = &row;
    }
    const double ratio = rr->result.stats.hit_rate > 0
                             ? affinity->result.stats.hit_rate / rr->result.stats.hit_rate
                             : 0.0;
    std::printf("\n%d replicas: affinity/rr hit-rate ratio %.2fx, ttft p99 %.3fs vs %.3fs\n",
                replicas, ratio, affinity->result.stats.ttft_p99, rr->result.stats.ttft_p99);
    if (replicas == 4) {
      if (ratio < 1.3) {
        std::printf("FAIL: affinity hit rate must be >= 1.3x round-robin at 4 replicas\n");
        ok = false;
      }
      // Deterministic simulated time: affinity must not make the tail worse. Small epsilon
      // absorbs the p99 order statistic shifting between two nearly-identical tails.
      if (affinity->result.stats.ttft_p99 > rr->result.stats.ttft_p99 * 1.05) {
        std::printf("FAIL: affinity regresses p99 TTFT vs round-robin at 4 replicas\n");
        ok = false;
      }
    }
  }

  // Recovery scenario (DESIGN.md §10): same 4-replica affinity fleet, but a fleet-scoped
  // injector kills one replica mid-trace. The ledger must balance — every request still
  // completes, the harvested ones on a survivor — and the run stays deterministic.
  FleetBenchConfig recovery;
  recovery.num_replicas = 4;
  recovery.policy = RoutePolicy::kPrefixAffinity;
  recovery.fault_plan = quick ? "replica_death:at=400" : "replica_death:at=2000";
  const FleetBenchResult rec = RunFleetPolicy(recovery, MakeFleetTrace(trace_options));
  std::printf("\nrecovery (affinity, 4 replicas, %s): deaths=%lld death_cancels=%lld "
              "rerouted=%lld completed=%lld/%d ttft_p99=%.3fs\n",
              recovery.fault_plan.c_str(), static_cast<long long>(rec.stats.replica_deaths),
              static_cast<long long>(rec.stats.death_cancels),
              static_cast<long long>(rec.stats.rerouted),
              static_cast<long long>(rec.stats.completed), trace_options.requests,
              rec.stats.ttft_p99);
  if (rec.stats.replica_deaths != 1) {
    std::printf("FAIL: recovery scenario expected exactly one replica death\n");
    ok = false;
  }
  if (rec.stats.completed != trace_options.requests) {
    std::printf("FAIL: recovery scenario lost requests (every request must complete on a "
                "survivor)\n");
    ok = false;
  }
  if (rec.stats.death_cancels != rec.stats.rerouted ||
      rec.stats.completed + rec.stats.failed != rec.stats.submitted + rec.stats.rerouted) {
    std::printf("FAIL: recovery ledger does not balance\n");
    ok = false;
  }
  if (rec.stats.rerouted <= 0) {
    std::printf("FAIL: the death struck an idle replica — no harvest exercised\n");
    ok = false;
  }

  std::printf("\nfleet criteria: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace
}  // namespace jenga

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  return jenga::Run(quick) ? 0 : 1;
}
