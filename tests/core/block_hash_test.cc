#include "src/core/block_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace jenga {
namespace {

std::vector<int32_t> Tokens(std::initializer_list<int32_t> list) { return list; }

TEST(ChainBlockHashes, OnlyFullBlocksHashed) {
  const auto tokens = Tokens({1, 2, 3, 4, 5, 6, 7});
  const auto hashes = ChainBlockHashes(tokens, /*block_size=*/3, /*salt=*/0);
  EXPECT_EQ(hashes.size(), 2u);  // 7 tokens → 2 full blocks of 3.
}

TEST(ChainBlockHashes, DeterministicAndPrefixStable) {
  const auto a = ChainBlockHashes(Tokens({1, 2, 3, 4, 5, 6}), 3, 0);
  const auto b = ChainBlockHashes(Tokens({1, 2, 3, 4, 5, 6, 99}), 3, 0);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0], b[0]);  // Shared prefix → identical hashes.
  EXPECT_EQ(a[1], b[1]);
}

TEST(ChainBlockHashes, ChainCommitsToEarlierBlocks) {
  // Same second block, different first block → different second-block hash. This is what
  // makes a block hash identify a whole prefix.
  const auto a = ChainBlockHashes(Tokens({1, 2, 3, 7, 8, 9}), 3, 0);
  const auto b = ChainBlockHashes(Tokens({4, 5, 6, 7, 8, 9}), 3, 0);
  EXPECT_NE(a[0], b[0]);
  EXPECT_NE(a[1], b[1]);
}

TEST(ChainBlockHashes, SaltNamespaces) {
  const auto a = ChainBlockHashes(Tokens({1, 2, 3}), 3, /*salt=*/1);
  const auto b = ChainBlockHashes(Tokens({1, 2, 3}), 3, /*salt=*/2);
  EXPECT_NE(a[0], b[0]);
}

TEST(ChainBlockHashes, BlockBoundariesMatter) {
  const auto a = ChainBlockHashes(Tokens({1, 2, 3, 4}), 2, 0);
  const auto b = ChainBlockHashes(Tokens({1, 2, 3, 4}), 4, 0);
  EXPECT_NE(a.back(), b.back());
}

TEST(ChainBlockHashes, NoCollisionsOnSmallUniverse) {
  // All 2-token blocks over a small alphabet must hash distinctly (sanity, not a proof).
  std::set<BlockHash> seen;
  int count = 0;
  for (int32_t x = 0; x < 50; ++x) {
    for (int32_t y = 0; y < 50; ++y) {
      const auto h = ChainBlockHashes(Tokens({x, y}), 2, 0);
      seen.insert(h[0]);
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), count);
}

TEST(LongestCommonValidPrefix, IntersectsAcrossGroups) {
  // Group A valid up to 4, group B valid at {0, 2, 3}: the longest common boundary is 3.
  const std::vector<std::vector<bool>> valids = {
      {true, true, true, true, true},
      {true, false, true, true, false},
  };
  EXPECT_EQ(LongestCommonValidPrefix(valids), 3);
}

TEST(LongestCommonValidPrefix, ZeroWhenNothingShared) {
  const std::vector<std::vector<bool>> valids = {
      {true, true, false},
      {true, false, true},
  };
  EXPECT_EQ(LongestCommonValidPrefix(valids), 0);
}

TEST(LongestCommonValidPrefix, EmptyGroupListIsZero) {
  EXPECT_EQ(LongestCommonValidPrefix({}), 0);
}

TEST(LongestCommonValidPrefix, SingleGroupTakesItsMax) {
  const std::vector<std::vector<bool>> valids = {{true, true, true, false}};
  EXPECT_EQ(LongestCommonValidPrefix(valids), 2);
}

TEST(LongestCommonValidPrefixDeath, MismatchedSizes) {
  const std::vector<std::vector<bool>> valids = {{true, true}, {true}};
  EXPECT_DEATH((void)LongestCommonValidPrefix(valids), "same boundary count");
}

}  // namespace
}  // namespace jenga
