file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_throughput.dir/bench_fig13_throughput.cc.o"
  "CMakeFiles/bench_fig13_throughput.dir/bench_fig13_throughput.cc.o.d"
  "bench_fig13_throughput"
  "bench_fig13_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
