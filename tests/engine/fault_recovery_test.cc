// Deterministic recovery-path tests, one per injected fault class:
//
//   PCIe D2H error    → retry + sim-time backoff, then fall back to recompute preemption;
//   PCIe timeout      → charge the timeout budget once (no retry of a hung link), fall back;
//   PCIe H2D error    → swap-out succeeded, swap-in fails → drop the set, recompute;
//   host-pool failure → repeated failures degrade the tier to GPU-only mode;
//   host-pool shrink  → forced capacity halvings, degrading below the floor;
//   GPU step failure  → the step's commit is discarded and retried, work still completes.
//
// Every test runs a schedule to completion (no fault may wedge the engine) and asserts the
// new recovery counters in EngineMetrics / SwapManager::Stats.

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

FaultConfig ParsePlan(const std::string& text, uint64_t seed = 7) {
  FaultConfig config;
  JENGA_CHECK(FaultPlan::Parse(text, &config.plan).ok()) << text;
  config.seed = seed;
  return config;
}

// Pool fits ~2 requests' KV; 4 long-output requests force preemption churn, and the free
// PCIe link makes the crossover always pick swap for eligible footprints — so every armed
// transfer-fault site actually gets consulted.
EngineConfig OffloadPressureConfig() {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  config.offload.enabled = true;
  config.offload.swap_preemption = true;
  config.offload.host_prefix_cache = false;
  config.offload.host_pool_bytes = 1ll << 30;
  config.offload.pcie.h2d_bandwidth = 1e15;
  config.offload.pcie.d2h_bandwidth = 1e15;
  config.offload.pcie.per_transfer_latency = 0.0;
  return config;
}

void SubmitPressureBatch(Engine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 80, 0.0));
  }
}

TEST(FaultRecovery, PcieD2HErrorRetriesThenFallsBackToRecompute) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("pcie_d2h:p=1.0");  // Every D2H leg fails, retries and all.
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  // No swap-out can ever commit; every preemption fell back to recompute.
  EXPECT_EQ(engine.metrics().swap_out_events, 0);
  EXPECT_GT(engine.metrics().recomputed_tokens, 0);
  // The retry loop ran with exponential backoff before giving up each time.
  EXPECT_GT(engine.metrics().faults_injected, 0);
  EXPECT_GT(engine.metrics().fault_retries, 0);
  EXPECT_GT(engine.metrics().fault_backoff_time, 0.0);
  // Backoff is engine wait: it must show up in the stall clock too.
  EXPECT_GE(engine.metrics().swap_stall_time, engine.metrics().fault_backoff_time);
  EXPECT_EQ(engine.metrics().degraded_mode_transitions, 0);
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, PcieTimeoutChargesBudgetOnceWithoutRetry) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("pcie_timeout:p=1.0");
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_EQ(engine.metrics().swap_out_events, 0);
  EXPECT_GT(engine.metrics().faults_injected, 0);
  // A hung link is not retried — the engine waits out the timeout budget and gives up.
  EXPECT_EQ(engine.metrics().fault_retries, 0);
  EXPECT_GE(engine.metrics().fault_backoff_time, config.offload.pcie.timeout_seconds);
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, PcieH2DErrorDropsSwapSetAndRecomputes) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("pcie_h2d:p=1.0");  // Swap-outs succeed, every swap-in fails.
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_GT(engine.metrics().swap_out_events, 0);
  EXPECT_EQ(engine.metrics().swap_in_events, 0);
  // Every swapped-out request resolved through the fallback: set dropped, prefix recomputed.
  EXPECT_EQ(engine.metrics().swap_fallback_events, engine.metrics().swap_out_events);
  EXPECT_GT(engine.metrics().recomputed_tokens, 0);
  EXPECT_GT(engine.metrics().fault_retries, 0);
  EXPECT_GT(engine.metrics().fault_backoff_time, 0.0);
  // Nothing lingers in host memory once everything finished.
  EXPECT_EQ(engine.swap()->host().num_sets(), 0);
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, HostPoolFailureDegradesToGpuOnly) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("host_alloc:p=1.0");
  config.offload.degrade_after_host_failures = 1;
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  ASSERT_NE(engine.swap(), nullptr);
  EXPECT_TRUE(engine.swap()->degraded());
  EXPECT_EQ(engine.metrics().degraded_mode_transitions, 1);
  EXPECT_GE(engine.swap()->stats().host_failures, 1);
  // The tier drained cleanly: no sets, no pages, no bytes.
  EXPECT_EQ(engine.swap()->host().num_sets(), 0);
  EXPECT_EQ(engine.swap()->host().num_pages(), 0);
  EXPECT_EQ(engine.swap()->host().used_bytes(), 0);
  // After degradation every preemption is recompute, so the engine still finishes.
  EXPECT_GT(engine.metrics().recomputed_tokens, 0);
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, HostPoolShrinkHalvesCapacity) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("host_shrink:at=0");  // Exactly one pressure spike.
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_EQ(engine.swap()->stats().host_shrinks, 1);
  EXPECT_EQ(engine.swap()->host().capacity_bytes(), config.offload.host_pool_bytes / 2);
  EXPECT_FALSE(engine.swap()->degraded());
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, RepeatedShrinksDegradeBelowFloor) {
  EngineConfig config = OffloadPressureConfig();
  config.fault = ParsePlan("host_shrink:every=1");  // Halve on every step.
  config.offload.host_pool_bytes = 1 << 20;
  config.offload.min_host_pool_bytes = 1 << 16;
  Engine engine(config);
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_TRUE(engine.swap()->degraded());
  EXPECT_EQ(engine.metrics().degraded_mode_transitions, 1);
  // 2^20 halves 4 times before the next halving lands below 2^16.
  EXPECT_EQ(engine.swap()->stats().host_shrinks, 4);
  EXPECT_EQ(engine.swap()->host().used_bytes(), 0);
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, GpuStepFaultDiscardsCommitAndRetries) {
  EngineConfig config;
  config.model = TinyFullModel();
  config.gpu = TestGpu();
  config.fault = ParsePlan("gpu_step:at=2");
  Engine engine(config);
  engine.Submit(MakeRequest(0, TextPrompt(64), 8, 0.0));
  engine.Submit(MakeRequest(1, TextPrompt(48), 8, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().gpu_step_faults, 1);
  EXPECT_EQ(engine.metrics().faults_injected, 1);
  // The voided step's work was re-done: both requests completed with full output.
  EXPECT_EQ(engine.metrics().CompletedRequests(), 2);
  for (const RequestRecord& record : engine.metrics().finished()) {
    EXPECT_FALSE(record.failed);
    EXPECT_EQ(record.output_len, 8);
  }
  engine.kv().CheckConsistency();
}

TEST(FaultRecovery, GpuStepFaultCostsTimeButNotTokens) {
  // Same schedule with and without the fault: identical outputs, strictly more sim time.
  auto run = [](const std::string& plan) {
    EngineConfig config;
    config.model = TinyFullModel();
    config.gpu = TestGpu();
    if (!plan.empty()) {
      config.fault = ParsePlan(plan);
    }
    Engine engine(config);
    engine.Submit(MakeRequest(0, TextPrompt(64), 16, 0.0));
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
    return engine.now();
  };
  const double clean = run("");
  const double faulted = run("gpu_step:at=1");
  EXPECT_GT(faulted, clean);
}

// --- SpecDecodeEngine: same fault classes through the 5-phase step ---

SpecDecodeConfig SpecOffloadConfig() {
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.strategy = SpecStrategy::kJenga;
  config.pool_bytes_override = 384 << 10;  // Fits ~2 of the 4 requests.
  config.seed = 7;
  config.offload.enabled = true;
  config.offload.host_pool_bytes = 1ll << 30;
  config.offload.pcie.h2d_bandwidth = 1e15;
  config.offload.pcie.d2h_bandwidth = 1e15;
  config.offload.pcie.per_transfer_latency = 0.0;
  return config;
}

void SubmitSpecBatch(SpecDecodeEngine& engine) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 64, 0.0));
  }
}

TEST(FaultRecovery, SpecDecodeStepFaultVoidsDecodePass) {
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.seed = 7;
  config.fault = ParsePlan("gpu_step:p=0.2", 11);
  SpecDecodeEngine engine(config);
  engine.Submit(MakeRequest(0, TextPrompt(64), 24, 0.0));
  engine.Submit(MakeRequest(1, TextPrompt(48), 24, 0.0));
  engine.RunToCompletion();
  EXPECT_GT(engine.metrics().gpu_step_faults, 0);
  EXPECT_EQ(engine.metrics().CompletedRequests(), 2);
  for (const RequestRecord& record : engine.metrics().finished()) {
    EXPECT_FALSE(record.failed);
    EXPECT_EQ(record.output_len, 24);
  }
  for (int m = 0; m < engine.num_managers(); ++m) {
    engine.manager(m).CheckConsistency();
  }
}

TEST(FaultRecovery, SpecDecodeH2DErrorFallsBackToRecompute) {
  SpecDecodeConfig config = SpecOffloadConfig();
  config.fault = ParsePlan("pcie_h2d:p=1.0");
  SpecDecodeEngine engine(config);
  SubmitSpecBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_EQ(engine.metrics().swap_in_events, 0);
  EXPECT_EQ(engine.metrics().swap_fallback_events, engine.metrics().swap_out_events);
  EXPECT_GT(engine.metrics().fault_retries, 0);
  for (int m = 0; m < engine.num_managers(); ++m) {
    engine.manager(m).CheckConsistency();
  }
}

TEST(FaultRecovery, SpecDecodeHostFailureDegrades) {
  SpecDecodeConfig config = SpecOffloadConfig();
  config.fault = ParsePlan("host_alloc:p=1.0");
  config.offload.degrade_after_host_failures = 2;
  SpecDecodeEngine engine(config);
  SubmitSpecBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_TRUE(engine.swap()->degraded());
  EXPECT_EQ(engine.metrics().degraded_mode_transitions, 1);
  EXPECT_EQ(engine.swap()->host().used_bytes(), 0);
}

TEST(FaultRecovery, DisabledInjectorReportsZeroEverywhere) {
  // Empty plan → no injector is even constructed; all recovery counters stay zero.
  Engine engine(OffloadPressureConfig());
  SubmitPressureBatch(engine);
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_EQ(engine.metrics().faults_injected, 0);
  EXPECT_EQ(engine.metrics().fault_retries, 0);
  EXPECT_EQ(engine.metrics().fault_backoff_time, 0.0);
  EXPECT_EQ(engine.metrics().gpu_step_faults, 0);
  EXPECT_EQ(engine.metrics().degraded_mode_transitions, 0);
  EXPECT_EQ(engine.metrics().shed_requests, 0);
  EXPECT_EQ(engine.metrics().cancelled_requests, 0);
}

}  // namespace
}  // namespace jenga
