// Seeded deterministic fuzzer for the full two-tier allocator stack (ISSUE 3 tentpole).
//
// Each fuzz case ("schedule") is derived from a single uint64 seed: a model drawn from the
// five LayerPolicy families (full prefix, sliding window, PyramidKV, Mamba, vision/image
// cache), a deliberately undersized KV pool, and a batch of requests with shared-prefix
// families, staggered arrivals, and (sometimes) a request too large to ever fit. The case is
// run through `Engine` or `SpecDecodeEngine` (offload tier on and off); after every step the
// AllocatorAuditor re-derives all allocator invariants, and an oracle model cross-checks the
// externally visible outcomes:
//
//   - every submitted request finishes exactly once; non-failed records carry the exact
//     requested output length; deliberately-oversized requests fail;
//   - cache hit lengths are page-aligned, strictly shorter than the prompt, and (for
//     fresh text requests) bounded by the longest prompt prefix shared with any other
//     request — the only place hits can come from;
//   - recomputed-token accounting matches the preemption events the oracle observed
//     (exact for `Engine` without offload; interval bounds where swap resolution can hide
//     inside a single step);
//   - swap counters are mutually consistent (in + fallback <= out) and identically zero
//     when the tier is off, as is the stall clock;
//   - a second run of the same schedule produces a byte-identical outcome signature
//     (completion order, per-record fields, metrics) — the determinism differential.
//
// The schedule model and engine harnesses live in fuzz_harness.h, shared with the chaos
// tier (engine_chaos_test.cc); this file never arms the chaos fields, so its schedules are
// identical to the pre-chaos fuzzer.
//
// On failure the test prints the seed, a greedily minimized schedule trace, and the exact
// one-line command that reproduces the failing case. Env overrides:
//   JENGA_FUZZ_SCHEDULES=<n>  schedules per engine/tier combination (default 200)
//   JENGA_FUZZ_SEED=<seed>    run exactly one schedule from this seed

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "tests/fuzz/fuzz_harness.h"

namespace jenga {
namespace {

// Arm the deadline-heap cross-check (ExpireDeadlines: heap-collected expired set vs the
// brute-force queue scan, see engine.cc) for every schedule in this binary. The enable
// flag latches on the first engine step, so it must be set before main runs; overwrite=0
// keeps an explicit user setting in charge.
const bool g_arm_deadline_audit = [] {
  setenv("JENGA_CHECK_DEADLINES", "1", /*overwrite=*/0);
  return true;
}();

// ---------------------------------------------------------------------------------------
// Oracle

struct RequestSnapshot {
  RequestState state = RequestState::kWaiting;
  int64_t computed = 0;
  int64_t generated = 0;
  int preemptions = 0;
  bool swapped_out = false;
  int64_t swapped_out_tokens = 0;
};

struct MetricsSnapshot {
  int64_t recomputed = 0;
  int64_t swap_out = 0;
  int64_t swap_in = 0;
  int64_t fallback = 0;
};

// Runs one schedule to completion, auditing after every step and applying the per-step
// oracle. Returns the first violation (empty string = green). When `signature` is non-null
// the outcome signature is appended to it (for the determinism differential).
std::string RunSchedule(const FuzzSchedule& s, bool with_audit, std::string* signature) {
  std::unique_ptr<FuzzHarness> harness = MakeFuzzHarness(s);
  AllocatorAuditor auditor;
  if (with_audit) {
    harness->AttachAudit(&auditor);
    const auto seeded = auditor.Audit();
    if (!seeded.empty()) {
      return "auditor not green after attach: " + seeded.front();
    }
  }

  const int n = static_cast<int>(s.requests.size());
  std::vector<RequestSnapshot> prev(static_cast<size_t>(n));
  MetricsSnapshot prev_m;
  // For a plain-Engine preemption, the victim's num_computed_tokens at preempt time is
  // exactly the value committed by the previous step (victims are never scheduled earlier in
  // the same step), so recompute accounting is exact. SpecDecodeEngine commits prefill
  // chunks before its preemption points, so the same observation is only a lower bound.
  const bool exact_recompute = !s.spec_engine && !s.offload;

  int64_t steps = 0;
  const int64_t max_steps = 30000;
  while (harness->Step()) {
    ++steps;
    if (steps > max_steps) {
      return "schedule did not converge within " + std::to_string(max_steps) + " steps";
    }

    if (with_audit) {
      const auto violations = auditor.Audit();
      if (!violations.empty()) {
        std::string out = "auditor violation at step " + std::to_string(steps) + ": ";
        for (size_t i = 0; i < std::min<size_t>(violations.size(), 3); ++i) {
          out += "\n  " + violations[i];
        }
        if (violations.size() > 3) {
          out += "\n  (+" + std::to_string(violations.size() - 3) + " more)";
        }
        return out;
      }
    }

    const EngineMetrics& m = harness->Metrics();
    MetricsSnapshot now_m{m.recomputed_tokens, m.swap_out_events, m.swap_in_events,
                          m.swap_fallback_events};
    const int64_t d_recomputed = now_m.recomputed - prev_m.recomputed;
    const int64_t d_swap_out = now_m.swap_out - prev_m.swap_out;
    const int64_t d_swap_in = now_m.swap_in - prev_m.swap_in;
    const int64_t d_fallback = now_m.fallback - prev_m.fallback;
    if (d_recomputed < 0 || d_swap_out < 0 || d_swap_in < 0 || d_fallback < 0) {
      return "metrics counter decreased at step " + std::to_string(steps);
    }
    if (!s.offload && (now_m.swap_out != 0 || now_m.swap_in != 0 || now_m.fallback != 0 ||
                       m.swap_stall_time != 0.0)) {
      return "swap metrics nonzero with the offload tier disabled";
    }

    int64_t recompute_exact = 0;  // Sum of unambiguous recompute contributions.
    int64_t recompute_ub = 0;     // Upper bound incl. swap-resolution ambiguity.
    bool saw_swap_window = d_swap_out > 0 || d_swap_in > 0 || d_fallback > 0;
    for (int i = 0; i < n; ++i) {
      const Request& r = harness->Req(static_cast<RequestId>(i));
      RequestSnapshot snap{r.state, r.num_computed_tokens, r.num_generated, r.preemptions,
                           r.swapped_out, r.swapped_out_tokens};
      const RequestSnapshot& old = prev[static_cast<size_t>(i)];
      const std::string tag = " (req " + std::to_string(i) + ", step " +
                              std::to_string(steps) + ")";
      if (snap.generated < old.generated) {
        return "num_generated decreased" + tag;
      }
      if (snap.preemptions < old.preemptions) {
        return "preemption count decreased" + tag;
      }
      if (old.state == RequestState::kFinished && snap.state != RequestState::kFinished) {
        return "finished request came back to life" + tag;
      }
      if (snap.generated > r.output_len) {
        return "generated more than output_len" + tag;
      }
      if (snap.computed > r.prompt_len() + snap.generated) {
        return "num_computed_tokens beyond known tokens" + tag;
      }
      if (snap.swapped_out && snap.state != RequestState::kPreempted) {
        return "swapped-out request not in preempted state" + tag;
      }
      const int dpre = snap.preemptions - old.preemptions;
      if (!s.spec_engine && dpre > 1) {
        return "engine preempted one request twice in one step" + tag;
      }
      if (dpre >= 1) {
        if (!snap.swapped_out) {
          recompute_exact += old.computed;
          recompute_ub += old.computed;
        } else {
          if (r.swapped_out_tokens <= 0) {
            return "swap-out recorded zero tokens" + tag;
          }
          recompute_ub += r.swapped_out_tokens;  // May fall back later this window? No:
          // still swapped out at observation, so nothing resolved yet. Counted as slack.
        }
        if (s.spec_engine) {
          // Spec-decode victims may have advanced within the step before the preempt.
          recompute_ub += static_cast<int64_t>(dpre) * (r.prompt_len() + r.output_len);
        }
      }
      if (old.swapped_out && (!snap.swapped_out || dpre >= 1)) {
        // Pending swap set resolved: swap-in (no recompute) or fallback, which charges the
        // recorded swapped_out_tokens (num_computed_tokens is already zero for a swapped-out
        // request, so `old.computed` alone would under-bound). The `dpre >= 1` arm covers a
        // resolve-then-swap-out-again sequence hidden inside one step window.
        recompute_ub += old.computed + old.swapped_out_tokens;
      }
      prev[static_cast<size_t>(i)] = snap;
    }
    if (exact_recompute) {
      if (d_recomputed != recompute_exact) {
        return "recomputed-token delta " + std::to_string(d_recomputed) +
               " != oracle-observed " + std::to_string(recompute_exact) + " at step " +
               std::to_string(steps);
      }
    } else {
      const int64_t lower = saw_swap_window ? 0 : recompute_exact;
      if (d_recomputed < lower || d_recomputed > recompute_ub) {
        return "recomputed-token delta " + std::to_string(d_recomputed) +
               " outside oracle bounds [" + std::to_string(lower) + ", " +
               std::to_string(recompute_ub) + "] at step " + std::to_string(steps);
      }
    }
    prev_m = now_m;
  }

  // ----- End-of-run oracle -----
  const EngineMetrics& m = harness->Metrics();
  if (static_cast<int>(m.finished().size()) != n) {
    return "finished " + std::to_string(m.finished().size()) + " of " + std::to_string(n) +
           " submitted requests";
  }
  std::vector<int> seen(static_cast<size_t>(n), 0);
  for (const RequestRecord& record : m.finished()) {
    if (record.id < 0 || record.id >= n) {
      return "finished record with unknown id " + std::to_string(record.id);
    }
    seen[static_cast<size_t>(record.id)] += 1;
  }
  for (int i = 0; i < n; ++i) {
    if (seen[static_cast<size_t>(i)] != 1) {
      return "request " + std::to_string(i) + " finished " +
             std::to_string(seen[static_cast<size_t>(i)]) + " times";
    }
  }

  // Prompt-sharing upper bound on cache hits (text prompts only; vision token streams are
  // compared per modality by the engine, so the global-prefix bound does not apply).
  std::vector<Prompt> prompts;
  prompts.reserve(static_cast<size_t>(n));
  for (const FuzzRequestSpec& r : s.requests) {
    prompts.push_back(BuildFuzzPrompt(r));
  }
  const bool text_only = s.model != FuzzModel::kVision;
  int64_t sum_cached = 0;
  for (const RequestRecord& record : m.finished()) {
    const FuzzRequestSpec& rs = s.requests[static_cast<size_t>(record.id)];
    const std::string tag = " (req " + std::to_string(record.id) + ")";
    if (rs.oversized && !record.failed) {
      return "oversized request did not fail" + tag;
    }
    if (!record.failed && record.output_len != rs.output_len) {
      return "completed with output " + std::to_string(record.output_len) + " != requested " +
             std::to_string(rs.output_len) + tag;
    }
    if (record.cached_prefix_tokens < 0 || record.cached_prefix_tokens % 16 != 0) {
      return "cache hit length " + std::to_string(record.cached_prefix_tokens) +
             " not page-aligned" + tag;
    }
    if (record.cached_prefix_tokens >= record.prompt_len && record.prompt_len > 0) {
      return "cache hit covered the whole prompt" + tag;
    }
    if (s.spec_engine && record.cached_prefix_tokens != 0) {
      return "spec decode runs with prefix caching off but recorded hits" + tag;
    }
    sum_cached += record.cached_prefix_tokens;
    const Request& r = harness->Req(record.id);
    if (text_only && r.preemptions == 0 && !s.offload) {
      // A fresh request's hits can only come from prompt blocks some other request computed.
      int64_t max_share = 0;
      const Prompt& mine = prompts[static_cast<size_t>(record.id)];
      for (int j = 0; j < n; ++j) {
        if (j == record.id) {
          continue;
        }
        const Prompt& other = prompts[static_cast<size_t>(j)];
        const int64_t limit = std::min(mine.size(), other.size());
        int64_t k = 0;
        while (k < limit && mine.tokens[static_cast<size_t>(k)] ==
                                other.tokens[static_cast<size_t>(k)]) {
          ++k;
        }
        max_share = std::max(max_share, k);
      }
      if (record.cached_prefix_tokens > max_share) {
        return "cache hit " + std::to_string(record.cached_prefix_tokens) +
               " exceeds max shared prompt prefix " + std::to_string(max_share) + tag;
      }
    }
  }
  if (sum_cached > m.cache_hit_tokens) {
    return "finished-record cache hits exceed the metrics counter";
  }
  const int64_t kv_hits = harness->KvCacheHitTokens();
  if (kv_hits >= 0 && kv_hits != m.cache_hit_tokens) {
    return "KvManager hit total " + std::to_string(kv_hits) + " != engine metrics " +
           std::to_string(m.cache_hit_tokens);
  }
  if (m.swap_in_events + m.swap_fallback_events > m.swap_out_events) {
    return "swap resolutions exceed swap-outs";
  }
  if (!s.offload && m.swap_stall_time != 0.0) {
    return "stall time nonzero with the offload tier disabled";
  }

  if (signature != nullptr) {
    std::ostringstream sig;
    for (const RequestRecord& record : m.finished()) {
      char times[128];
      std::snprintf(times, sizeof(times), "%.12g/%.12g/%.12g/%.12g", record.arrival_time,
                    record.first_scheduled_time, record.first_token_time, record.finish_time);
      sig << record.id << ":" << record.prompt_len << ":" << record.output_len << ":"
          << record.cached_prefix_tokens << ":" << record.preemptions << ":" << record.failed
          << ":" << times << "\n";
    }
    sig << "hits=" << m.cache_hit_tokens << " recomputed=" << m.recomputed_tokens
        << " prefill=" << m.prefill_tokens_computed << " vision=" << m.vision_encoder_runs
        << " swap=" << m.swap_out_events << "/" << m.swap_in_events << "/"
        << m.swap_fallback_events << "\n";
    *signature += sig.str();
  }
  return std::string();
}

// Full check for one schedule: audited run + determinism differential (second, unaudited run
// must produce a byte-identical outcome signature).
std::string CheckSchedule(const FuzzSchedule& s) {
  std::string sig_a;
  std::string failure = RunSchedule(s, /*with_audit=*/true, &sig_a);
  if (!failure.empty()) {
    return failure;
  }
  std::string sig_b;
  failure = RunSchedule(s, /*with_audit=*/false, &sig_b);
  if (!failure.empty()) {
    return failure + " (second, unaudited run)";
  }
  if (sig_a != sig_b) {
    return "nondeterministic outcome:\n--- audited run ---\n" + sig_a +
           "--- unaudited run ---\n" + sig_b;
  }
  return std::string();
}

// Greedy minimization: drop requests, then shrink lengths, as long as the failure persists.
FuzzSchedule MinimizeSchedule(FuzzSchedule s) {
  bool shrunk = true;
  int budget = 128;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t i = 0; i < s.requests.size() && s.requests.size() > 1 && budget > 0; ++i) {
      FuzzSchedule candidate = s;
      candidate.requests.erase(candidate.requests.begin() + static_cast<int64_t>(i));
      --budget;
      if (!CheckSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
    for (size_t i = 0; i < s.requests.size() && budget > 0; ++i) {
      FuzzSchedule candidate = s;
      FuzzRequestSpec& r = candidate.requests[i];
      if (r.prompt_len < 32 && r.output_len < 4) {
        continue;
      }
      r.prompt_len = std::max<int64_t>(16, r.prompt_len / 2);
      r.output_len = std::max<int64_t>(2, r.output_len / 2);
      --budget;
      if (!CheckSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
  }
  return s;
}

void RunCombination(bool spec_engine, bool offload, uint64_t seed_base) {
  const std::optional<uint64_t> forced_seed = FuzzEnvSeed();
  const int64_t schedules = forced_seed ? 1 : FuzzEnvInt("JENGA_FUZZ_SCHEDULES", 200);
  for (int64_t i = 0; i < schedules; ++i) {
    const uint64_t seed = forced_seed ? *forced_seed : seed_base + static_cast<uint64_t>(i);
    const FuzzSchedule schedule = DrawFuzzSchedule(seed, spec_engine, offload);
    if (forced_seed) {
      std::fprintf(stderr, "replaying schedule:\n%s", DescribeFuzzSchedule(schedule).c_str());
    }
    const std::string failure = CheckSchedule(schedule);
    if (failure.empty()) {
      continue;
    }
    const FuzzSchedule minimized = MinimizeSchedule(schedule);
    const std::string min_failure = CheckSchedule(minimized);
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    FAIL() << "fuzz failure with seed 0x" << std::hex << seed << std::dec << ":\n"
           << failure << "\n\noriginal schedule:\n"
           << DescribeFuzzSchedule(schedule) << "\nminimized schedule ("
           << (min_failure.empty() ? "failure did not survive minimization" : min_failure)
           << "):\n"
           << DescribeFuzzSchedule(minimized) << "\nreproduce with:\n  JENGA_FUZZ_SEED=0x"
           << std::hex << seed << std::dec << " ./build/tests/engine_fuzz_test --gtest_filter="
           << info->test_suite_name() << "." << info->name();
  }
}

// ---------------------------------------------------------------------------------------
// The four engine/tier combinations (>= 200 seeded schedules each by default).

TEST(EngineFuzz, AllocatorStackNoOffload) {
  RunCombination(/*spec_engine=*/false, /*offload=*/false, 0xE1000000ull);
}

TEST(EngineFuzz, AllocatorStackWithOffload) {
  RunCombination(/*spec_engine=*/false, /*offload=*/true, 0xE2000000ull);
}

TEST(SpecDecodeFuzz, AllocatorStackNoOffload) {
  RunCombination(/*spec_engine=*/true, /*offload=*/false, 0xE3000000ull);
}

TEST(SpecDecodeFuzz, AllocatorStackWithOffload) {
  RunCombination(/*spec_engine=*/true, /*offload=*/true, 0xE4000000ull);
}

// ---------------------------------------------------------------------------------------
// Negative control: the auditor must actually detect divergence, not just stay silent.

TEST(AllocatorAuditorFuzz, DetectsInjectedShadowDivergence) {
  const FuzzSchedule s = DrawFuzzSchedule(0xD1AB0, /*spec_engine=*/false, /*offload=*/false);
  EngineFuzzHarness harness(s);
  AllocatorAuditor auditor;
  harness.AttachAudit(&auditor);
  // Run a few steps so slots exist, verifying green along the way.
  for (int i = 0; i < 6 && harness.Step(); ++i) {
    ASSERT_TRUE(auditor.Audit().empty()) << auditor.FirstViolation().value_or("");
  }
  ASSERT_GT(auditor.events_observed(), 0);
  auditor.InjectShadowFaultForTest();
  const auto violations = auditor.Audit();
  ASSERT_FALSE(violations.empty())
      << "auditor failed to flag an artificially diverged shadow state";
}

TEST(AllocatorAuditorFuzz, DetachRestoresNullSink) {
  FuzzSchedule s = DrawFuzzSchedule(0xD1AB1, /*spec_engine=*/false, /*offload=*/true);
  EngineFuzzHarness harness(s);
  AllocatorAuditor auditor;
  harness.AttachAudit(&auditor);
  for (int i = 0; i < 4 && harness.Step(); ++i) {
  }
  const int64_t seen = auditor.events_observed();
  auditor.DetachAll();
  for (int i = 0; i < 4 && harness.Step(); ++i) {
  }
  EXPECT_EQ(auditor.events_observed(), seen) << "detached auditor still received events";
  EXPECT_EQ(auditor.num_attached_allocators(), 0);
}

}  // namespace
}  // namespace jenga
